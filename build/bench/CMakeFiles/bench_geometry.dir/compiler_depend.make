# Empty compiler generated dependencies file for bench_geometry.
# This may be replaced when dependencies are built.
