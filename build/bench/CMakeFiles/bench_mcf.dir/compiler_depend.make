# Empty compiler generated dependencies file for bench_mcf.
# This may be replaced when dependencies are built.
