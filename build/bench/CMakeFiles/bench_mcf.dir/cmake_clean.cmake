file(REMOVE_RECURSE
  "CMakeFiles/bench_mcf.dir/bench_mcf.cpp.o"
  "CMakeFiles/bench_mcf.dir/bench_mcf.cpp.o.d"
  "bench_mcf"
  "bench_mcf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mcf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
