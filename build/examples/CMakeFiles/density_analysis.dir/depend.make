# Empty dependencies file for density_analysis.
# This may be replaced when dependencies are built.
