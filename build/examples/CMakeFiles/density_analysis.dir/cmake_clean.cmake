file(REMOVE_RECURSE
  "CMakeFiles/density_analysis.dir/density_analysis.cpp.o"
  "CMakeFiles/density_analysis.dir/density_analysis.cpp.o.d"
  "density_analysis"
  "density_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/density_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
