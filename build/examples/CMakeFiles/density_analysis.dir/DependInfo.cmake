
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/density_analysis.cpp" "examples/CMakeFiles/density_analysis.dir/density_analysis.cpp.o" "gcc" "examples/CMakeFiles/density_analysis.dir/density_analysis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ofl_cli.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ofl_contest.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ofl_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ofl_fill.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ofl_density.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ofl_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ofl_gds.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ofl_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ofl_mcf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ofl_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ofl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
