file(REMOVE_RECURSE
  "CMakeFiles/mcf_demo.dir/mcf_demo.cpp.o"
  "CMakeFiles/mcf_demo.dir/mcf_demo.cpp.o.d"
  "mcf_demo"
  "mcf_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcf_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
