# Empty dependencies file for mcf_demo.
# This may be replaced when dependencies are built.
