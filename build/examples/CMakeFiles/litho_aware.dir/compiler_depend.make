# Empty compiler generated dependencies file for litho_aware.
# This may be replaced when dependencies are built.
