file(REMOVE_RECURSE
  "CMakeFiles/litho_aware.dir/litho_aware.cpp.o"
  "CMakeFiles/litho_aware.dir/litho_aware.cpp.o.d"
  "litho_aware"
  "litho_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/litho_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
