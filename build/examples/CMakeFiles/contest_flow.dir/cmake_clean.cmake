file(REMOVE_RECURSE
  "CMakeFiles/contest_flow.dir/contest_flow.cpp.o"
  "CMakeFiles/contest_flow.dir/contest_flow.cpp.o.d"
  "contest_flow"
  "contest_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contest_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
