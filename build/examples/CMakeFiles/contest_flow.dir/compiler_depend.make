# Empty compiler generated dependencies file for contest_flow.
# This may be replaced when dependencies are built.
