file(REMOVE_RECURSE
  "libofl_common.a"
)
