# Empty dependencies file for ofl_common.
# This may be replaced when dependencies are built.
