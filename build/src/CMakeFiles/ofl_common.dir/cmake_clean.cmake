file(REMOVE_RECURSE
  "CMakeFiles/ofl_common.dir/common/logging.cpp.o"
  "CMakeFiles/ofl_common.dir/common/logging.cpp.o.d"
  "CMakeFiles/ofl_common.dir/common/memory_usage.cpp.o"
  "CMakeFiles/ofl_common.dir/common/memory_usage.cpp.o.d"
  "CMakeFiles/ofl_common.dir/common/rng.cpp.o"
  "CMakeFiles/ofl_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/ofl_common.dir/common/timer.cpp.o"
  "CMakeFiles/ofl_common.dir/common/timer.cpp.o.d"
  "libofl_common.a"
  "libofl_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ofl_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
