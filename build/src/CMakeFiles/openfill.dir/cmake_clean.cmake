file(REMOVE_RECURSE
  "CMakeFiles/openfill.dir/cli/main.cpp.o"
  "CMakeFiles/openfill.dir/cli/main.cpp.o.d"
  "openfill"
  "openfill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openfill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
