# Empty dependencies file for openfill.
# This may be replaced when dependencies are built.
