file(REMOVE_RECURSE
  "libofl_lp.a"
)
