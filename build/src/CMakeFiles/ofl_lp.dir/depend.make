# Empty dependencies file for ofl_lp.
# This may be replaced when dependencies are built.
