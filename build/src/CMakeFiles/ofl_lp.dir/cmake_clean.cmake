file(REMOVE_RECURSE
  "CMakeFiles/ofl_lp.dir/lp/model.cpp.o"
  "CMakeFiles/ofl_lp.dir/lp/model.cpp.o.d"
  "CMakeFiles/ofl_lp.dir/lp/simplex.cpp.o"
  "CMakeFiles/ofl_lp.dir/lp/simplex.cpp.o.d"
  "libofl_lp.a"
  "libofl_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ofl_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
