
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gds/flatten.cpp" "src/CMakeFiles/ofl_gds.dir/gds/flatten.cpp.o" "gcc" "src/CMakeFiles/ofl_gds.dir/gds/flatten.cpp.o.d"
  "/root/repo/src/gds/gds_reader.cpp" "src/CMakeFiles/ofl_gds.dir/gds/gds_reader.cpp.o" "gcc" "src/CMakeFiles/ofl_gds.dir/gds/gds_reader.cpp.o.d"
  "/root/repo/src/gds/gds_records.cpp" "src/CMakeFiles/ofl_gds.dir/gds/gds_records.cpp.o" "gcc" "src/CMakeFiles/ofl_gds.dir/gds/gds_records.cpp.o.d"
  "/root/repo/src/gds/gds_writer.cpp" "src/CMakeFiles/ofl_gds.dir/gds/gds_writer.cpp.o" "gcc" "src/CMakeFiles/ofl_gds.dir/gds/gds_writer.cpp.o.d"
  "/root/repo/src/gds/oasis.cpp" "src/CMakeFiles/ofl_gds.dir/gds/oasis.cpp.o" "gcc" "src/CMakeFiles/ofl_gds.dir/gds/oasis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ofl_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ofl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
