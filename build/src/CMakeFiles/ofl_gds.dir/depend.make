# Empty dependencies file for ofl_gds.
# This may be replaced when dependencies are built.
