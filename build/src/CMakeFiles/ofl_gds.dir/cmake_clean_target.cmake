file(REMOVE_RECURSE
  "libofl_gds.a"
)
