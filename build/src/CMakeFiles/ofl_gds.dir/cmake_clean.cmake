file(REMOVE_RECURSE
  "CMakeFiles/ofl_gds.dir/gds/flatten.cpp.o"
  "CMakeFiles/ofl_gds.dir/gds/flatten.cpp.o.d"
  "CMakeFiles/ofl_gds.dir/gds/gds_reader.cpp.o"
  "CMakeFiles/ofl_gds.dir/gds/gds_reader.cpp.o.d"
  "CMakeFiles/ofl_gds.dir/gds/gds_records.cpp.o"
  "CMakeFiles/ofl_gds.dir/gds/gds_records.cpp.o.d"
  "CMakeFiles/ofl_gds.dir/gds/gds_writer.cpp.o"
  "CMakeFiles/ofl_gds.dir/gds/gds_writer.cpp.o.d"
  "CMakeFiles/ofl_gds.dir/gds/oasis.cpp.o"
  "CMakeFiles/ofl_gds.dir/gds/oasis.cpp.o.d"
  "libofl_gds.a"
  "libofl_gds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ofl_gds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
