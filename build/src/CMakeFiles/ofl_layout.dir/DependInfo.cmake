
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/layout/design_rules.cpp" "src/CMakeFiles/ofl_layout.dir/layout/design_rules.cpp.o" "gcc" "src/CMakeFiles/ofl_layout.dir/layout/design_rules.cpp.o.d"
  "/root/repo/src/layout/drc_checker.cpp" "src/CMakeFiles/ofl_layout.dir/layout/drc_checker.cpp.o" "gcc" "src/CMakeFiles/ofl_layout.dir/layout/drc_checker.cpp.o.d"
  "/root/repo/src/layout/fill_region.cpp" "src/CMakeFiles/ofl_layout.dir/layout/fill_region.cpp.o" "gcc" "src/CMakeFiles/ofl_layout.dir/layout/fill_region.cpp.o.d"
  "/root/repo/src/layout/gds_compact.cpp" "src/CMakeFiles/ofl_layout.dir/layout/gds_compact.cpp.o" "gcc" "src/CMakeFiles/ofl_layout.dir/layout/gds_compact.cpp.o.d"
  "/root/repo/src/layout/layout.cpp" "src/CMakeFiles/ofl_layout.dir/layout/layout.cpp.o" "gcc" "src/CMakeFiles/ofl_layout.dir/layout/layout.cpp.o.d"
  "/root/repo/src/layout/litho.cpp" "src/CMakeFiles/ofl_layout.dir/layout/litho.cpp.o" "gcc" "src/CMakeFiles/ofl_layout.dir/layout/litho.cpp.o.d"
  "/root/repo/src/layout/window_grid.cpp" "src/CMakeFiles/ofl_layout.dir/layout/window_grid.cpp.o" "gcc" "src/CMakeFiles/ofl_layout.dir/layout/window_grid.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ofl_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ofl_gds.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ofl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
