file(REMOVE_RECURSE
  "libofl_layout.a"
)
