file(REMOVE_RECURSE
  "CMakeFiles/ofl_layout.dir/layout/design_rules.cpp.o"
  "CMakeFiles/ofl_layout.dir/layout/design_rules.cpp.o.d"
  "CMakeFiles/ofl_layout.dir/layout/drc_checker.cpp.o"
  "CMakeFiles/ofl_layout.dir/layout/drc_checker.cpp.o.d"
  "CMakeFiles/ofl_layout.dir/layout/fill_region.cpp.o"
  "CMakeFiles/ofl_layout.dir/layout/fill_region.cpp.o.d"
  "CMakeFiles/ofl_layout.dir/layout/gds_compact.cpp.o"
  "CMakeFiles/ofl_layout.dir/layout/gds_compact.cpp.o.d"
  "CMakeFiles/ofl_layout.dir/layout/layout.cpp.o"
  "CMakeFiles/ofl_layout.dir/layout/layout.cpp.o.d"
  "CMakeFiles/ofl_layout.dir/layout/litho.cpp.o"
  "CMakeFiles/ofl_layout.dir/layout/litho.cpp.o.d"
  "CMakeFiles/ofl_layout.dir/layout/window_grid.cpp.o"
  "CMakeFiles/ofl_layout.dir/layout/window_grid.cpp.o.d"
  "libofl_layout.a"
  "libofl_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ofl_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
