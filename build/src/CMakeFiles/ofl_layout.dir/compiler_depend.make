# Empty compiler generated dependencies file for ofl_layout.
# This may be replaced when dependencies are built.
