# Empty dependencies file for ofl_cli.
# This may be replaced when dependencies are built.
