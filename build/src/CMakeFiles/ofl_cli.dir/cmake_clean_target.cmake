file(REMOVE_RECURSE
  "libofl_cli.a"
)
