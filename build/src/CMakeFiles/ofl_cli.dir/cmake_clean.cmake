file(REMOVE_RECURSE
  "CMakeFiles/ofl_cli.dir/cli/args.cpp.o"
  "CMakeFiles/ofl_cli.dir/cli/args.cpp.o.d"
  "CMakeFiles/ofl_cli.dir/cli/commands.cpp.o"
  "CMakeFiles/ofl_cli.dir/cli/commands.cpp.o.d"
  "libofl_cli.a"
  "libofl_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ofl_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
