# Empty dependencies file for ofl_contest.
# This may be replaced when dependencies are built.
