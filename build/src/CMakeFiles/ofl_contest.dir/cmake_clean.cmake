file(REMOVE_RECURSE
  "CMakeFiles/ofl_contest.dir/contest/benchmark_generator.cpp.o"
  "CMakeFiles/ofl_contest.dir/contest/benchmark_generator.cpp.o.d"
  "CMakeFiles/ofl_contest.dir/contest/evaluator.cpp.o"
  "CMakeFiles/ofl_contest.dir/contest/evaluator.cpp.o.d"
  "CMakeFiles/ofl_contest.dir/contest/json_report.cpp.o"
  "CMakeFiles/ofl_contest.dir/contest/json_report.cpp.o.d"
  "CMakeFiles/ofl_contest.dir/contest/report.cpp.o"
  "CMakeFiles/ofl_contest.dir/contest/report.cpp.o.d"
  "CMakeFiles/ofl_contest.dir/contest/score_table.cpp.o"
  "CMakeFiles/ofl_contest.dir/contest/score_table.cpp.o.d"
  "libofl_contest.a"
  "libofl_contest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ofl_contest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
