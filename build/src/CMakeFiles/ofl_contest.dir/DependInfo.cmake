
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/contest/benchmark_generator.cpp" "src/CMakeFiles/ofl_contest.dir/contest/benchmark_generator.cpp.o" "gcc" "src/CMakeFiles/ofl_contest.dir/contest/benchmark_generator.cpp.o.d"
  "/root/repo/src/contest/evaluator.cpp" "src/CMakeFiles/ofl_contest.dir/contest/evaluator.cpp.o" "gcc" "src/CMakeFiles/ofl_contest.dir/contest/evaluator.cpp.o.d"
  "/root/repo/src/contest/json_report.cpp" "src/CMakeFiles/ofl_contest.dir/contest/json_report.cpp.o" "gcc" "src/CMakeFiles/ofl_contest.dir/contest/json_report.cpp.o.d"
  "/root/repo/src/contest/report.cpp" "src/CMakeFiles/ofl_contest.dir/contest/report.cpp.o" "gcc" "src/CMakeFiles/ofl_contest.dir/contest/report.cpp.o.d"
  "/root/repo/src/contest/score_table.cpp" "src/CMakeFiles/ofl_contest.dir/contest/score_table.cpp.o" "gcc" "src/CMakeFiles/ofl_contest.dir/contest/score_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ofl_fill.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ofl_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ofl_mcf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ofl_density.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ofl_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ofl_gds.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ofl_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ofl_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ofl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
