file(REMOVE_RECURSE
  "libofl_contest.a"
)
