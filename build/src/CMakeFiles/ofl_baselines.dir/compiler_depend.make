# Empty compiler generated dependencies file for ofl_baselines.
# This may be replaced when dependencies are built.
