
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/greedy_filler.cpp" "src/CMakeFiles/ofl_baselines.dir/baselines/greedy_filler.cpp.o" "gcc" "src/CMakeFiles/ofl_baselines.dir/baselines/greedy_filler.cpp.o.d"
  "/root/repo/src/baselines/monte_carlo_filler.cpp" "src/CMakeFiles/ofl_baselines.dir/baselines/monte_carlo_filler.cpp.o" "gcc" "src/CMakeFiles/ofl_baselines.dir/baselines/monte_carlo_filler.cpp.o.d"
  "/root/repo/src/baselines/tile_lp_filler.cpp" "src/CMakeFiles/ofl_baselines.dir/baselines/tile_lp_filler.cpp.o" "gcc" "src/CMakeFiles/ofl_baselines.dir/baselines/tile_lp_filler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ofl_density.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ofl_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ofl_fill.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ofl_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ofl_gds.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ofl_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ofl_mcf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ofl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
