file(REMOVE_RECURSE
  "CMakeFiles/ofl_baselines.dir/baselines/greedy_filler.cpp.o"
  "CMakeFiles/ofl_baselines.dir/baselines/greedy_filler.cpp.o.d"
  "CMakeFiles/ofl_baselines.dir/baselines/monte_carlo_filler.cpp.o"
  "CMakeFiles/ofl_baselines.dir/baselines/monte_carlo_filler.cpp.o.d"
  "CMakeFiles/ofl_baselines.dir/baselines/tile_lp_filler.cpp.o"
  "CMakeFiles/ofl_baselines.dir/baselines/tile_lp_filler.cpp.o.d"
  "libofl_baselines.a"
  "libofl_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ofl_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
