file(REMOVE_RECURSE
  "libofl_baselines.a"
)
