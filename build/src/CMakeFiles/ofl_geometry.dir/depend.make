# Empty dependencies file for ofl_geometry.
# This may be replaced when dependencies are built.
