file(REMOVE_RECURSE
  "libofl_geometry.a"
)
