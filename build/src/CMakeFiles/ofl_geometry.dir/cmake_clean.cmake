file(REMOVE_RECURSE
  "CMakeFiles/ofl_geometry.dir/geometry/boolean.cpp.o"
  "CMakeFiles/ofl_geometry.dir/geometry/boolean.cpp.o.d"
  "CMakeFiles/ofl_geometry.dir/geometry/contour.cpp.o"
  "CMakeFiles/ofl_geometry.dir/geometry/contour.cpp.o.d"
  "CMakeFiles/ofl_geometry.dir/geometry/decompose.cpp.o"
  "CMakeFiles/ofl_geometry.dir/geometry/decompose.cpp.o.d"
  "CMakeFiles/ofl_geometry.dir/geometry/grid_index.cpp.o"
  "CMakeFiles/ofl_geometry.dir/geometry/grid_index.cpp.o.d"
  "CMakeFiles/ofl_geometry.dir/geometry/polygon.cpp.o"
  "CMakeFiles/ofl_geometry.dir/geometry/polygon.cpp.o.d"
  "CMakeFiles/ofl_geometry.dir/geometry/rect.cpp.o"
  "CMakeFiles/ofl_geometry.dir/geometry/rect.cpp.o.d"
  "CMakeFiles/ofl_geometry.dir/geometry/region.cpp.o"
  "CMakeFiles/ofl_geometry.dir/geometry/region.cpp.o.d"
  "CMakeFiles/ofl_geometry.dir/geometry/rtree.cpp.o"
  "CMakeFiles/ofl_geometry.dir/geometry/rtree.cpp.o.d"
  "libofl_geometry.a"
  "libofl_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ofl_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
