
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geometry/boolean.cpp" "src/CMakeFiles/ofl_geometry.dir/geometry/boolean.cpp.o" "gcc" "src/CMakeFiles/ofl_geometry.dir/geometry/boolean.cpp.o.d"
  "/root/repo/src/geometry/contour.cpp" "src/CMakeFiles/ofl_geometry.dir/geometry/contour.cpp.o" "gcc" "src/CMakeFiles/ofl_geometry.dir/geometry/contour.cpp.o.d"
  "/root/repo/src/geometry/decompose.cpp" "src/CMakeFiles/ofl_geometry.dir/geometry/decompose.cpp.o" "gcc" "src/CMakeFiles/ofl_geometry.dir/geometry/decompose.cpp.o.d"
  "/root/repo/src/geometry/grid_index.cpp" "src/CMakeFiles/ofl_geometry.dir/geometry/grid_index.cpp.o" "gcc" "src/CMakeFiles/ofl_geometry.dir/geometry/grid_index.cpp.o.d"
  "/root/repo/src/geometry/polygon.cpp" "src/CMakeFiles/ofl_geometry.dir/geometry/polygon.cpp.o" "gcc" "src/CMakeFiles/ofl_geometry.dir/geometry/polygon.cpp.o.d"
  "/root/repo/src/geometry/rect.cpp" "src/CMakeFiles/ofl_geometry.dir/geometry/rect.cpp.o" "gcc" "src/CMakeFiles/ofl_geometry.dir/geometry/rect.cpp.o.d"
  "/root/repo/src/geometry/region.cpp" "src/CMakeFiles/ofl_geometry.dir/geometry/region.cpp.o" "gcc" "src/CMakeFiles/ofl_geometry.dir/geometry/region.cpp.o.d"
  "/root/repo/src/geometry/rtree.cpp" "src/CMakeFiles/ofl_geometry.dir/geometry/rtree.cpp.o" "gcc" "src/CMakeFiles/ofl_geometry.dir/geometry/rtree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ofl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
