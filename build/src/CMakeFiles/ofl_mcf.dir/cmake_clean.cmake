file(REMOVE_RECURSE
  "CMakeFiles/ofl_mcf.dir/mcf/cycle_canceling.cpp.o"
  "CMakeFiles/ofl_mcf.dir/mcf/cycle_canceling.cpp.o.d"
  "CMakeFiles/ofl_mcf.dir/mcf/dual_lp.cpp.o"
  "CMakeFiles/ofl_mcf.dir/mcf/dual_lp.cpp.o.d"
  "CMakeFiles/ofl_mcf.dir/mcf/graph.cpp.o"
  "CMakeFiles/ofl_mcf.dir/mcf/graph.cpp.o.d"
  "CMakeFiles/ofl_mcf.dir/mcf/network_simplex.cpp.o"
  "CMakeFiles/ofl_mcf.dir/mcf/network_simplex.cpp.o.d"
  "CMakeFiles/ofl_mcf.dir/mcf/ssp.cpp.o"
  "CMakeFiles/ofl_mcf.dir/mcf/ssp.cpp.o.d"
  "libofl_mcf.a"
  "libofl_mcf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ofl_mcf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
