file(REMOVE_RECURSE
  "libofl_mcf.a"
)
