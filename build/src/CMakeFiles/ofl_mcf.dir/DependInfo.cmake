
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mcf/cycle_canceling.cpp" "src/CMakeFiles/ofl_mcf.dir/mcf/cycle_canceling.cpp.o" "gcc" "src/CMakeFiles/ofl_mcf.dir/mcf/cycle_canceling.cpp.o.d"
  "/root/repo/src/mcf/dual_lp.cpp" "src/CMakeFiles/ofl_mcf.dir/mcf/dual_lp.cpp.o" "gcc" "src/CMakeFiles/ofl_mcf.dir/mcf/dual_lp.cpp.o.d"
  "/root/repo/src/mcf/graph.cpp" "src/CMakeFiles/ofl_mcf.dir/mcf/graph.cpp.o" "gcc" "src/CMakeFiles/ofl_mcf.dir/mcf/graph.cpp.o.d"
  "/root/repo/src/mcf/network_simplex.cpp" "src/CMakeFiles/ofl_mcf.dir/mcf/network_simplex.cpp.o" "gcc" "src/CMakeFiles/ofl_mcf.dir/mcf/network_simplex.cpp.o.d"
  "/root/repo/src/mcf/ssp.cpp" "src/CMakeFiles/ofl_mcf.dir/mcf/ssp.cpp.o" "gcc" "src/CMakeFiles/ofl_mcf.dir/mcf/ssp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ofl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
