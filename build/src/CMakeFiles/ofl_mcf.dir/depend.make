# Empty dependencies file for ofl_mcf.
# This may be replaced when dependencies are built.
