file(REMOVE_RECURSE
  "CMakeFiles/ofl_density.dir/density/bounds.cpp.o"
  "CMakeFiles/ofl_density.dir/density/bounds.cpp.o.d"
  "CMakeFiles/ofl_density.dir/density/cmp_model.cpp.o"
  "CMakeFiles/ofl_density.dir/density/cmp_model.cpp.o.d"
  "CMakeFiles/ofl_density.dir/density/density_map.cpp.o"
  "CMakeFiles/ofl_density.dir/density/density_map.cpp.o.d"
  "CMakeFiles/ofl_density.dir/density/heatmap.cpp.o"
  "CMakeFiles/ofl_density.dir/density/heatmap.cpp.o.d"
  "CMakeFiles/ofl_density.dir/density/metrics.cpp.o"
  "CMakeFiles/ofl_density.dir/density/metrics.cpp.o.d"
  "CMakeFiles/ofl_density.dir/density/sliding.cpp.o"
  "CMakeFiles/ofl_density.dir/density/sliding.cpp.o.d"
  "libofl_density.a"
  "libofl_density.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ofl_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
