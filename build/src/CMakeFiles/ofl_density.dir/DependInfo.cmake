
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/density/bounds.cpp" "src/CMakeFiles/ofl_density.dir/density/bounds.cpp.o" "gcc" "src/CMakeFiles/ofl_density.dir/density/bounds.cpp.o.d"
  "/root/repo/src/density/cmp_model.cpp" "src/CMakeFiles/ofl_density.dir/density/cmp_model.cpp.o" "gcc" "src/CMakeFiles/ofl_density.dir/density/cmp_model.cpp.o.d"
  "/root/repo/src/density/density_map.cpp" "src/CMakeFiles/ofl_density.dir/density/density_map.cpp.o" "gcc" "src/CMakeFiles/ofl_density.dir/density/density_map.cpp.o.d"
  "/root/repo/src/density/heatmap.cpp" "src/CMakeFiles/ofl_density.dir/density/heatmap.cpp.o" "gcc" "src/CMakeFiles/ofl_density.dir/density/heatmap.cpp.o.d"
  "/root/repo/src/density/metrics.cpp" "src/CMakeFiles/ofl_density.dir/density/metrics.cpp.o" "gcc" "src/CMakeFiles/ofl_density.dir/density/metrics.cpp.o.d"
  "/root/repo/src/density/sliding.cpp" "src/CMakeFiles/ofl_density.dir/density/sliding.cpp.o" "gcc" "src/CMakeFiles/ofl_density.dir/density/sliding.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ofl_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ofl_gds.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ofl_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ofl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
