# Empty compiler generated dependencies file for ofl_density.
# This may be replaced when dependencies are built.
