file(REMOVE_RECURSE
  "libofl_density.a"
)
