file(REMOVE_RECURSE
  "libofl_fill.a"
)
