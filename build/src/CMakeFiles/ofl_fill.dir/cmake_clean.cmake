file(REMOVE_RECURSE
  "CMakeFiles/ofl_fill.dir/fill/candidate_generator.cpp.o"
  "CMakeFiles/ofl_fill.dir/fill/candidate_generator.cpp.o.d"
  "CMakeFiles/ofl_fill.dir/fill/fill_engine.cpp.o"
  "CMakeFiles/ofl_fill.dir/fill/fill_engine.cpp.o.d"
  "CMakeFiles/ofl_fill.dir/fill/fill_sizer.cpp.o"
  "CMakeFiles/ofl_fill.dir/fill/fill_sizer.cpp.o.d"
  "CMakeFiles/ofl_fill.dir/fill/target_planner.cpp.o"
  "CMakeFiles/ofl_fill.dir/fill/target_planner.cpp.o.d"
  "libofl_fill.a"
  "libofl_fill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ofl_fill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
