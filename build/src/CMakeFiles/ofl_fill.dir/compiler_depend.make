# Empty compiler generated dependencies file for ofl_fill.
# This may be replaced when dependencies are built.
