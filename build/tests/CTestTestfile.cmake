# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_geometry "/root/repo/build/tests/test_geometry")
set_tests_properties(test_geometry PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;10;ofl_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_gds "/root/repo/build/tests/test_gds")
set_tests_properties(test_gds PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;21;ofl_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_layout "/root/repo/build/tests/test_layout")
set_tests_properties(test_layout PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;27;ofl_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_common "/root/repo/build/tests/test_common")
set_tests_properties(test_common PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;35;ofl_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_density "/root/repo/build/tests/test_density")
set_tests_properties(test_density PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;36;ofl_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_mcf "/root/repo/build/tests/test_mcf")
set_tests_properties(test_mcf PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;42;ofl_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_lp "/root/repo/build/tests/test_lp")
set_tests_properties(test_lp PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;46;ofl_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_fill "/root/repo/build/tests/test_fill")
set_tests_properties(test_fill PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;47;ofl_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_baselines "/root/repo/build/tests/test_baselines")
set_tests_properties(test_baselines PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;54;ofl_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_contest "/root/repo/build/tests/test_contest")
set_tests_properties(test_contest PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;55;ofl_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_integration "/root/repo/build/tests/test_integration")
set_tests_properties(test_integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;60;ofl_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_cli "/root/repo/build/tests/test_cli")
set_tests_properties(test_cli PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;65;ofl_add_test;/root/repo/tests/CMakeLists.txt;0;")
