file(REMOVE_RECURSE
  "CMakeFiles/test_gds.dir/gds/compact_test.cpp.o"
  "CMakeFiles/test_gds.dir/gds/compact_test.cpp.o.d"
  "CMakeFiles/test_gds.dir/gds/gds_fuzz_test.cpp.o"
  "CMakeFiles/test_gds.dir/gds/gds_fuzz_test.cpp.o.d"
  "CMakeFiles/test_gds.dir/gds/gds_test.cpp.o"
  "CMakeFiles/test_gds.dir/gds/gds_test.cpp.o.d"
  "CMakeFiles/test_gds.dir/gds/oasis_test.cpp.o"
  "CMakeFiles/test_gds.dir/gds/oasis_test.cpp.o.d"
  "test_gds"
  "test_gds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
