file(REMOVE_RECURSE
  "CMakeFiles/test_fill.dir/fill/candidate_generator_test.cpp.o"
  "CMakeFiles/test_fill.dir/fill/candidate_generator_test.cpp.o.d"
  "CMakeFiles/test_fill.dir/fill/fill_engine_test.cpp.o"
  "CMakeFiles/test_fill.dir/fill/fill_engine_test.cpp.o.d"
  "CMakeFiles/test_fill.dir/fill/fill_sizer_property_test.cpp.o"
  "CMakeFiles/test_fill.dir/fill/fill_sizer_property_test.cpp.o.d"
  "CMakeFiles/test_fill.dir/fill/fill_sizer_test.cpp.o"
  "CMakeFiles/test_fill.dir/fill/fill_sizer_test.cpp.o.d"
  "CMakeFiles/test_fill.dir/fill/target_planner_test.cpp.o"
  "CMakeFiles/test_fill.dir/fill/target_planner_test.cpp.o.d"
  "test_fill"
  "test_fill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
