file(REMOVE_RECURSE
  "CMakeFiles/test_mcf.dir/mcf/dual_lp_test.cpp.o"
  "CMakeFiles/test_mcf.dir/mcf/dual_lp_test.cpp.o.d"
  "CMakeFiles/test_mcf.dir/mcf/mcf_solver_test.cpp.o"
  "CMakeFiles/test_mcf.dir/mcf/mcf_solver_test.cpp.o.d"
  "test_mcf"
  "test_mcf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mcf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
