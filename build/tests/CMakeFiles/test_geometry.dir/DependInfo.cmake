
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/geometry/boolean_test.cpp" "tests/CMakeFiles/test_geometry.dir/geometry/boolean_test.cpp.o" "gcc" "tests/CMakeFiles/test_geometry.dir/geometry/boolean_test.cpp.o.d"
  "/root/repo/tests/geometry/contour_test.cpp" "tests/CMakeFiles/test_geometry.dir/geometry/contour_test.cpp.o" "gcc" "tests/CMakeFiles/test_geometry.dir/geometry/contour_test.cpp.o.d"
  "/root/repo/tests/geometry/decompose_test.cpp" "tests/CMakeFiles/test_geometry.dir/geometry/decompose_test.cpp.o" "gcc" "tests/CMakeFiles/test_geometry.dir/geometry/decompose_test.cpp.o.d"
  "/root/repo/tests/geometry/grid_index_test.cpp" "tests/CMakeFiles/test_geometry.dir/geometry/grid_index_test.cpp.o" "gcc" "tests/CMakeFiles/test_geometry.dir/geometry/grid_index_test.cpp.o.d"
  "/root/repo/tests/geometry/polygon_test.cpp" "tests/CMakeFiles/test_geometry.dir/geometry/polygon_test.cpp.o" "gcc" "tests/CMakeFiles/test_geometry.dir/geometry/polygon_test.cpp.o.d"
  "/root/repo/tests/geometry/rect_test.cpp" "tests/CMakeFiles/test_geometry.dir/geometry/rect_test.cpp.o" "gcc" "tests/CMakeFiles/test_geometry.dir/geometry/rect_test.cpp.o.d"
  "/root/repo/tests/geometry/region_algebra_test.cpp" "tests/CMakeFiles/test_geometry.dir/geometry/region_algebra_test.cpp.o" "gcc" "tests/CMakeFiles/test_geometry.dir/geometry/region_algebra_test.cpp.o.d"
  "/root/repo/tests/geometry/region_test.cpp" "tests/CMakeFiles/test_geometry.dir/geometry/region_test.cpp.o" "gcc" "tests/CMakeFiles/test_geometry.dir/geometry/region_test.cpp.o.d"
  "/root/repo/tests/geometry/rtree_test.cpp" "tests/CMakeFiles/test_geometry.dir/geometry/rtree_test.cpp.o" "gcc" "tests/CMakeFiles/test_geometry.dir/geometry/rtree_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ofl_cli.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ofl_contest.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ofl_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ofl_fill.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ofl_density.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ofl_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ofl_gds.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ofl_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ofl_mcf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ofl_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ofl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
