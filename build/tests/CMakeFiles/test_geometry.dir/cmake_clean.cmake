file(REMOVE_RECURSE
  "CMakeFiles/test_geometry.dir/geometry/boolean_test.cpp.o"
  "CMakeFiles/test_geometry.dir/geometry/boolean_test.cpp.o.d"
  "CMakeFiles/test_geometry.dir/geometry/contour_test.cpp.o"
  "CMakeFiles/test_geometry.dir/geometry/contour_test.cpp.o.d"
  "CMakeFiles/test_geometry.dir/geometry/decompose_test.cpp.o"
  "CMakeFiles/test_geometry.dir/geometry/decompose_test.cpp.o.d"
  "CMakeFiles/test_geometry.dir/geometry/grid_index_test.cpp.o"
  "CMakeFiles/test_geometry.dir/geometry/grid_index_test.cpp.o.d"
  "CMakeFiles/test_geometry.dir/geometry/polygon_test.cpp.o"
  "CMakeFiles/test_geometry.dir/geometry/polygon_test.cpp.o.d"
  "CMakeFiles/test_geometry.dir/geometry/rect_test.cpp.o"
  "CMakeFiles/test_geometry.dir/geometry/rect_test.cpp.o.d"
  "CMakeFiles/test_geometry.dir/geometry/region_algebra_test.cpp.o"
  "CMakeFiles/test_geometry.dir/geometry/region_algebra_test.cpp.o.d"
  "CMakeFiles/test_geometry.dir/geometry/region_test.cpp.o"
  "CMakeFiles/test_geometry.dir/geometry/region_test.cpp.o.d"
  "CMakeFiles/test_geometry.dir/geometry/rtree_test.cpp.o"
  "CMakeFiles/test_geometry.dir/geometry/rtree_test.cpp.o.d"
  "test_geometry"
  "test_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
