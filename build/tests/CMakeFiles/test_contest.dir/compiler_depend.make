# Empty compiler generated dependencies file for test_contest.
# This may be replaced when dependencies are built.
