file(REMOVE_RECURSE
  "CMakeFiles/test_contest.dir/contest/contest_test.cpp.o"
  "CMakeFiles/test_contest.dir/contest/contest_test.cpp.o.d"
  "CMakeFiles/test_contest.dir/contest/json_report_test.cpp.o"
  "CMakeFiles/test_contest.dir/contest/json_report_test.cpp.o.d"
  "CMakeFiles/test_contest.dir/contest/report_test.cpp.o"
  "CMakeFiles/test_contest.dir/contest/report_test.cpp.o.d"
  "test_contest"
  "test_contest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_contest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
