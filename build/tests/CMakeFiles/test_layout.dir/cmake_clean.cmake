file(REMOVE_RECURSE
  "CMakeFiles/test_layout.dir/layout/drc_checker_test.cpp.o"
  "CMakeFiles/test_layout.dir/layout/drc_checker_test.cpp.o.d"
  "CMakeFiles/test_layout.dir/layout/drc_injection_test.cpp.o"
  "CMakeFiles/test_layout.dir/layout/drc_injection_test.cpp.o.d"
  "CMakeFiles/test_layout.dir/layout/fill_region_test.cpp.o"
  "CMakeFiles/test_layout.dir/layout/fill_region_test.cpp.o.d"
  "CMakeFiles/test_layout.dir/layout/layout_test.cpp.o"
  "CMakeFiles/test_layout.dir/layout/layout_test.cpp.o.d"
  "CMakeFiles/test_layout.dir/layout/litho_test.cpp.o"
  "CMakeFiles/test_layout.dir/layout/litho_test.cpp.o.d"
  "CMakeFiles/test_layout.dir/layout/window_grid_test.cpp.o"
  "CMakeFiles/test_layout.dir/layout/window_grid_test.cpp.o.d"
  "test_layout"
  "test_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
