file(REMOVE_RECURSE
  "CMakeFiles/test_density.dir/density/cmp_model_test.cpp.o"
  "CMakeFiles/test_density.dir/density/cmp_model_test.cpp.o.d"
  "CMakeFiles/test_density.dir/density/density_test.cpp.o"
  "CMakeFiles/test_density.dir/density/density_test.cpp.o.d"
  "CMakeFiles/test_density.dir/density/heatmap_test.cpp.o"
  "CMakeFiles/test_density.dir/density/heatmap_test.cpp.o.d"
  "CMakeFiles/test_density.dir/density/sliding_test.cpp.o"
  "CMakeFiles/test_density.dir/density/sliding_test.cpp.o.d"
  "test_density"
  "test_density.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
