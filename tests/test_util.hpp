// Shared helpers for the OpenFill test suite.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "geometry/rect.hpp"
#include "verify/layout_gen.hpp"

namespace ofl::testutil {

/// Brute-force reference for Boolean ops: rasterize rect sets onto a unit
/// grid over [0, extent)^2. Only usable for small extents; that is the
/// point — an independently-trivial oracle.
class Raster {
 public:
  explicit Raster(int extent) : extent_(extent),
      cells_(static_cast<std::size_t>(extent) * extent, 0) {}

  void paint(const std::vector<geom::Rect>& rects) {
    for (const geom::Rect& r : rects) {
      for (geom::Coord y = std::max<geom::Coord>(r.yl, 0);
           y < std::min<geom::Coord>(r.yh, extent_); ++y) {
        for (geom::Coord x = std::max<geom::Coord>(r.xl, 0);
             x < std::min<geom::Coord>(r.xh, extent_); ++x) {
          cells_[static_cast<std::size_t>(y) * extent_ + x] = 1;
        }
      }
    }
  }

  long long area() const {
    long long a = 0;
    for (char c : cells_) a += c;
    return a;
  }

  /// Cell-wise combination of two rasters.
  static long long opArea(const Raster& a, const Raster& b, char op) {
    long long total = 0;
    for (std::size_t i = 0; i < a.cells_.size(); ++i) {
      const bool inA = a.cells_[i] != 0;
      const bool inB = b.cells_[i] != 0;
      bool keep = false;
      switch (op) {
        case '|': keep = inA || inB; break;
        case '&': keep = inA && inB; break;
        case '-': keep = inA && !inB; break;
        case '^': keep = inA != inB; break;
      }
      total += keep ? 1 : 0;
    }
    return total;
  }

 private:
  int extent_;
  std::vector<char> cells_;
};

/// Random rect fully inside [0, extent)^2 with edges in [1, maxEdge].
/// Forwards to the shared seeded generator in src/verify/layout_gen.hpp so
/// tests and the fuzzer draw from the same distribution.
inline geom::Rect randomRect(Rng& rng, geom::Coord extent,
                             geom::Coord maxEdge) {
  return testing::LayoutGen::randomRect(rng, extent, maxEdge);
}

/// True when no two rects in the set overlap (O(n^2), test-sized inputs).
inline bool pairwiseDisjoint(const std::vector<geom::Rect>& rects) {
  for (std::size_t i = 0; i < rects.size(); ++i) {
    for (std::size_t j = i + 1; j < rects.size(); ++j) {
      if (rects[i].overlaps(rects[j])) return false;
    }
  }
  return true;
}

}  // namespace ofl::testutil
