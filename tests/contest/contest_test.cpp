#include <gtest/gtest.h>

#include "contest/benchmark_generator.hpp"
#include "contest/evaluator.hpp"
#include "contest/score_table.hpp"
#include "density/bounds.hpp"
#include "layout/fill_region.hpp"
#include "layout/drc_checker.hpp"
#include "layout/window_grid.hpp"

namespace ofl::contest {
namespace {

TEST(ScoreTableTest, ScoreFunctionEqn4) {
  const ScoreCoefficients c{0.2, 10.0};
  EXPECT_DOUBLE_EQ(c.score(0.0), 1.0);
  EXPECT_DOUBLE_EQ(c.score(5.0), 0.5);
  EXPECT_DOUBLE_EQ(c.score(10.0), 0.0);
  EXPECT_DOUBLE_EQ(c.score(25.0), 0.0);  // clamped at zero
}

TEST(ScoreTableTest, AlphasMatchPublishedTable2) {
  for (const char* suite : {"s", "b", "m"}) {
    const ScoreTable t = scoreTableFor(suite);
    EXPECT_DOUBLE_EQ(t.overlay.alpha, 0.2);
    EXPECT_DOUBLE_EQ(t.variation.alpha, 0.2);
    EXPECT_DOUBLE_EQ(t.line.alpha, 0.2);
    EXPECT_DOUBLE_EQ(t.outlier.alpha, 0.15);
    EXPECT_DOUBLE_EQ(t.size.alpha, 0.05);
    EXPECT_DOUBLE_EQ(t.runtime.alpha, 0.15);
    EXPECT_DOUBLE_EQ(t.memory.alpha, 0.05);
  }
}

TEST(BenchmarkGeneratorTest, DeterministicPerSeed) {
  const BenchmarkSpec spec = BenchmarkGenerator::spec("s");
  const layout::Layout a = BenchmarkGenerator::generate(spec);
  const layout::Layout b = BenchmarkGenerator::generate(spec);
  ASSERT_EQ(a.wireCount(), b.wireCount());
  for (int l = 0; l < a.numLayers(); ++l) {
    EXPECT_EQ(a.layer(l).wires, b.layer(l).wires);
  }
}

TEST(BenchmarkGeneratorTest, GenerateStreamEmitsExactlyGenerateInOrder) {
  // generate() is a thin wrapper over generateStream(); the streamed
  // emission (layer-major, wire order) is what `openfill generate --stream`
  // and bench_scale write, so the two must stay in lockstep.
  const BenchmarkSpec spec = BenchmarkGenerator::spec("s");
  const layout::Layout batch = BenchmarkGenerator::generate(spec);

  int lastLayer = 0;
  std::vector<std::vector<geom::Rect>> streamed(
      static_cast<std::size_t>(spec.numLayers));
  BenchmarkGenerator::generateStream(
      spec, [&](int l, const geom::Rect& wire) {
        EXPECT_GE(l, lastLayer);  // layer-major emission order
        lastLayer = l;
        streamed[static_cast<std::size_t>(l)].push_back(wire);
      });

  ASSERT_EQ(batch.numLayers(), spec.numLayers);
  for (int l = 0; l < batch.numLayers(); ++l) {
    EXPECT_EQ(streamed[static_cast<std::size_t>(l)], batch.layer(l).wires)
        << "layer " << l;
  }
}

TEST(BenchmarkGeneratorTest, XlSpecIsContestScale) {
  const BenchmarkSpec xl = BenchmarkGenerator::spec("xl");
  const BenchmarkSpec m = BenchmarkGenerator::spec("m");
  EXPECT_EQ(xl.name, "xl");
  EXPECT_GT(xl.die.area(), m.die.area());
  // xl is generated and filled streamingly; pin the die so BENCH_scale
  // numbers stay comparable across runs.
  EXPECT_EQ(xl.die.xh - xl.die.xl, 160 * 1200);
}

TEST(BenchmarkGeneratorTest, SuiteSizesOrdered) {
  const auto s = BenchmarkGenerator::generate(BenchmarkGenerator::spec("s"));
  const auto b = BenchmarkGenerator::generate(BenchmarkGenerator::spec("b"));
  EXPECT_GT(s.wireCount(), 1000u);
  EXPECT_GT(b.wireCount(), s.wireCount());
}

TEST(BenchmarkGeneratorTest, WiresAreDrcCleanAndInDie) {
  const BenchmarkSpec spec = BenchmarkGenerator::spec("s");
  const layout::Layout chip = BenchmarkGenerator::generate(spec);
  for (int l = 0; l < chip.numLayers(); ++l) {
    for (const auto& w : chip.layer(l).wires) {
      EXPECT_TRUE(chip.die().contains(w)) << w.str();
      EXPECT_GE(w.width(), spec.rules.minWidth);
      EXPECT_GE(w.height(), spec.rules.minWidth);
    }
  }
}

TEST(BenchmarkGeneratorTest, DensityIsNonUniform) {
  const BenchmarkSpec spec = BenchmarkGenerator::spec("s");
  const layout::Layout chip = BenchmarkGenerator::generate(spec);
  const layout::WindowGrid grid(chip.die(), spec.windowSize);
  const auto areas = grid.coveredAreaPerWindow(chip.layer(0).wires);
  geom::Area lo = areas[0];
  geom::Area hi = areas[0];
  for (geom::Area a : areas) {
    lo = std::min(lo, a);
    hi = std::max(hi, a);
  }
  // Hotspots and channels must differ substantially for the benchmark to
  // exercise the density metrics.
  EXPECT_GT(static_cast<double>(hi),
            3.0 * std::max<double>(static_cast<double>(lo), 1.0));
}

TEST(EvaluatorTest, EmptyLayoutScoresPerfectDensity) {
  layout::Layout chip({0, 0, 1000, 1000}, 2);
  const Evaluator eval(500, scoreTableFor("s"), layout::DesignRules{});
  const RawMetrics raw = eval.measure(chip);
  EXPECT_DOUBLE_EQ(raw.variation, 0.0);
  EXPECT_DOUBLE_EQ(raw.line, 0.0);
  EXPECT_DOUBLE_EQ(raw.outlier, 0.0);
  EXPECT_DOUBLE_EQ(raw.overlay, 0.0);
  EXPECT_EQ(raw.fillCount, 0u);
}

TEST(EvaluatorTest, OverlayCountsOnlyFillInduced) {
  layout::Layout chip({0, 0, 1000, 1000}, 2);
  // Pre-existing wire-wire overlap must NOT be charged.
  chip.layer(0).wires.push_back({0, 0, 100, 100});
  chip.layer(1).wires.push_back({0, 0, 100, 100});
  const Evaluator eval(500, scoreTableFor("s"), layout::DesignRules{});
  EXPECT_DOUBLE_EQ(eval.measure(chip).overlay, 0.0);

  // A fill overlapping the upper wire IS charged.
  chip.layer(0).fills.push_back({200, 200, 300, 300});
  chip.layer(1).wires.push_back({250, 200, 350, 300});
  EXPECT_DOUBLE_EQ(eval.measure(chip).overlay, 50.0 * 100.0);
}

TEST(EvaluatorTest, FillFillOverlayCounted) {
  layout::Layout chip({0, 0, 1000, 1000}, 2);
  chip.layer(0).fills.push_back({0, 0, 100, 100});
  chip.layer(1).fills.push_back({50, 0, 150, 100});
  const Evaluator eval(500, scoreTableFor("s"), layout::DesignRules{});
  EXPECT_DOUBLE_EQ(eval.measure(chip).overlay, 50.0 * 100.0);
}

TEST(EvaluatorTest, OverlaySpanningWindowBorderCountedOnce) {
  layout::Layout chip({0, 0, 1000, 1000}, 2);
  chip.layer(0).fills.push_back({400, 400, 600, 600});  // crosses border 500
  chip.layer(1).wires.push_back({400, 400, 600, 600});
  const Evaluator eval(500, scoreTableFor("s"), layout::DesignRules{});
  EXPECT_DOUBLE_EQ(eval.measure(chip).overlay, 200.0 * 200.0);
}

TEST(EvaluatorTest, QualityAndScoreComposition) {
  ScoreTable t = scoreTableFor("s");
  const Evaluator eval(500, t, layout::DesignRules{});
  RawMetrics raw;  // all-zero raws -> every quality score is 1
  const ScoreBreakdown s = eval.score(raw, /*runtime=*/0.0, /*memory=*/0.0);
  EXPECT_NEAR(s.quality, 0.2 + 0.2 + 0.2 + 0.15 + 0.05, 1e-12);
  EXPECT_NEAR(s.total, 1.0, 1e-12);

  // Runtime at beta zeroes the runtime term only.
  const ScoreBreakdown s2 = eval.score(raw, t.runtime.beta, 0.0);
  EXPECT_NEAR(s2.total, 1.0 - 0.15, 1e-12);
  EXPECT_NEAR(s2.quality, s.quality, 1e-12);
}

TEST(EvaluatorTest, OverlayMapLocalizesCoupling) {
  layout::Layout chip({0, 0, 1000, 1000}, 2);
  // Fill-over-wire overlap only in the lower-left window.
  chip.layer(0).fills.push_back({100, 100, 300, 300});
  chip.layer(1).wires.push_back({200, 100, 400, 300});
  const Evaluator eval(500, scoreTableFor("s"), layout::DesignRules{});
  const density::DensityMap map = eval.overlayMap(chip, 0);
  ASSERT_EQ(map.cols(), 2);
  ASSERT_EQ(map.rows(), 2);
  EXPECT_NEAR(map.at(0, 0), 100.0 * 200 / (500.0 * 500), 1e-12);
  EXPECT_DOUBLE_EQ(map.at(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(map.at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(map.at(1, 1), 0.0);
}

TEST(EvaluatorTest, OverlayMapSumsToRawOverlay) {
  layout::Layout chip({0, 0, 1000, 1000}, 2);
  chip.layer(0).fills.push_back({100, 100, 700, 250});  // spans windows
  chip.layer(1).wires.push_back({0, 0, 1000, 1000});
  chip.layer(0).wires.push_back({0, 400, 900, 480});
  const Evaluator eval(500, scoreTableFor("s"), layout::DesignRules{});
  const RawMetrics raw = eval.measure(chip);
  const density::DensityMap map = eval.overlayMap(chip, 0);
  double sum = 0.0;
  for (int j = 0; j < map.rows(); ++j) {
    for (int i = 0; i < map.cols(); ++i) {
      sum += map.at(i, j) * 500.0 * 500.0;
    }
  }
  EXPECT_NEAR(sum, raw.overlay, 1e-6);
}

TEST(EvaluatorTest, OverlayMapLastLayerIsZero) {
  layout::Layout chip({0, 0, 1000, 1000}, 2);
  chip.layer(1).fills.push_back({0, 0, 100, 100});
  const Evaluator eval(500, scoreTableFor("s"), layout::DesignRules{});
  const density::DensityMap map = eval.overlayMap(chip, 1);
  for (double v : map.values()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(BoundsTest, MaxDensityRuleCapsUpperBound) {
  layout::Layout chip({0, 0, 100, 100}, 1);
  chip.layer(0).wires.push_back({0, 0, 100, 30});  // density 0.3
  const layout::WindowGrid grid(chip.die(), 100);
  layout::DesignRules rules;
  rules.minWidth = 4;
  rules.minSpacing = 4;
  rules.minArea = 16;
  rules.maxDensity = 0.55;
  const auto regions = layout::computeFillRegions(chip, 0, grid, rules);
  const auto bounds = density::computeBounds(chip, 0, grid, regions, rules);
  EXPECT_NEAR(bounds.upper[0], 0.55, 1e-12);
  // Wires above the cap: bound degrades gracefully to the wire density.
  rules.maxDensity = 0.2;
  const auto bounds2 = density::computeBounds(chip, 0, grid, regions, rules);
  EXPECT_NEAR(bounds2.upper[0], 0.3, 1e-12);
}

TEST(EvaluatorTest, DrcViolationsSurface) {
  layout::Layout chip({0, 0, 1000, 1000}, 1);
  layout::DesignRules rules;
  rules.minWidth = 10;
  rules.minArea = 150;
  chip.layer(0).fills.push_back({0, 0, 5, 100});  // too thin
  const Evaluator eval(500, scoreTableFor("s"), rules);
  EXPECT_GT(eval.measure(chip).drcViolations, 0u);
}

}  // namespace
}  // namespace ofl::contest
