#include "contest/report.hpp"

#include <gtest/gtest.h>

namespace ofl::contest {
namespace {

ResultRow row(const std::string& design, const std::string& team,
              double quality) {
  ResultRow r;
  r.design = design;
  r.team = team;
  r.scores.quality = quality;
  r.scores.total = quality + 0.1;
  r.scores.overlay = 0.5;
  return r;
}

TEST(ReportTest, Table3ContainsAllRowsAndSeparators) {
  ::testing::internal::CaptureStdout();
  printTable3({row("s", "tile-lp", 0.3), row("s", "ours", 0.7),
               row("b", "ours", 0.6)});
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("Overlay*"), std::string::npos);
  EXPECT_NE(out.find("tile-lp"), std::string::npos);
  EXPECT_NE(out.find("ours"), std::string::npos);
  EXPECT_NE(out.find("0.700"), std::string::npos);
  // Design change inserts a separator line.
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(ReportTest, Table3EmptyIsJustHeader) {
  ::testing::internal::CaptureStdout();
  printTable3({});
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("Quality"), std::string::npos);
  EXPECT_EQ(out.find("----"), std::string::npos);
}

TEST(ReportTest, Table2PrintsStatsAndCoefficients) {
  SuiteStats stats;
  stats.design = "s";
  stats.polygons = 12345;
  stats.layers = 3;
  stats.wireFileMB = 1.25;
  stats.table = scoreTableFor("s");
  ::testing::internal::CaptureStdout();
  printTable2({stats});
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("12345"), std::string::npos);
  EXPECT_NE(out.find("1.25M"), std::string::npos);
  EXPECT_NE(out.find("ov 0.20"), std::string::npos);
}

}  // namespace
}  // namespace ofl::contest
