#include "contest/json_report.hpp"

#include <gtest/gtest.h>

#include <cstdio>

namespace ofl::contest {
namespace {

ResultRow sampleRow() {
  ResultRow row;
  row.design = "s";
  row.team = "ours";
  row.runtimeSeconds = 1.25;
  row.memoryMiB = 512.0;
  row.raw.overlay = 1e6;
  row.raw.variation = 0.01;
  row.raw.fillCount = 1234;
  row.scores.quality = 0.72;
  row.scores.total = 0.9;
  return row;
}

TEST(JsonReportTest, EmptyRows) {
  EXPECT_EQ(toJson({}), "[\n]\n");
}

TEST(JsonReportTest, ContainsAllKeysAndValues) {
  const std::string json = toJson({sampleRow()});
  for (const char* needle :
       {"\"design\": \"s\"", "\"team\": \"ours\"",
        "\"runtime_seconds\": 1.25", "\"raw_overlay\": 1e+06",
        "\"fill_count\": 1234", "\"quality\": 0.72", "\"score\": 0.9"}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle << "\n" << json;
  }
}

TEST(JsonReportTest, MultipleRowsCommaSeparated) {
  ResultRow a = sampleRow();
  ResultRow b = sampleRow();
  b.team = "greedy";
  const std::string json = toJson({a, b});
  // Exactly one comma between objects, none after the last.
  EXPECT_NE(json.find("},\n"), std::string::npos);
  EXPECT_EQ(json.find("},\n]"), std::string::npos);
  EXPECT_NE(json.find("}\n]"), std::string::npos);
}

TEST(JsonReportTest, EscapesQuotes) {
  ResultRow row = sampleRow();
  row.team = "a\"b\\c";
  const std::string json = toJson({row});
  EXPECT_NE(json.find("a\\\"b\\\\c"), std::string::npos);
}

TEST(JsonReportTest, Deterministic) {
  const auto rows = std::vector<ResultRow>{sampleRow()};
  EXPECT_EQ(toJson(rows), toJson(rows));
}

TEST(JsonReportTest, WriteFile) {
  const std::string path = "/tmp/ofl_json_test.json";
  ASSERT_TRUE(writeJson({sampleRow()}, path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[8] = {};
  EXPECT_EQ(std::fread(buf, 1, 2, f), 2u);
  EXPECT_EQ(buf[0], '[');
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_FALSE(writeJson({}, "/nonexistent/dir/x.json"));
}

}  // namespace
}  // namespace ofl::contest
