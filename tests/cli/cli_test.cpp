#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "cli/args.hpp"
#include "cli/commands.hpp"
#include "common/json_util.hpp"
#include "gds/gds_writer.hpp"
#include "verify/fuzzer.hpp"
#include "verify/repro.hpp"

namespace ofl::cli {
namespace {

TEST(ArgsTest, KeyValueForms) {
  const Args args = Args::parse({"fill", "--in", "a.gds", "--window=800",
                                 "--verbose", "--eta", "2.5"});
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "fill");
  EXPECT_EQ(args.getOr("in", ""), "a.gds");
  EXPECT_EQ(args.getIntOr("window", 0), 800);
  EXPECT_TRUE(args.hasFlag("verbose"));
  EXPECT_DOUBLE_EQ(args.getDoubleOr("eta", 0.0), 2.5);
}

TEST(ArgsTest, MissingKeysUseFallbacks) {
  const Args args = Args::parse({"stats"});
  EXPECT_FALSE(args.get("in").has_value());
  EXPECT_EQ(args.getOr("in", "x"), "x");
  EXPECT_EQ(args.getIntOr("n", 7), 7);
  EXPECT_FALSE(args.hasFlag("json"));
}

TEST(ArgsTest, MalformedNumbersRejected) {
  const Args args = Args::parse({"--n", "12abc", "--d", "1.5x"});
  EXPECT_FALSE(args.getInt("n").has_value());
  EXPECT_FALSE(args.getDouble("d").has_value());
}

TEST(ArgsTest, FlagAtEndOfLine) {
  const Args args = Args::parse({"--a", "--b"});
  EXPECT_TRUE(args.hasFlag("a"));
  EXPECT_TRUE(args.hasFlag("b"));
}

TEST(ArgsTest, UnknownKeysDetected) {
  const Args args = Args::parse({"--in", "x", "--typo", "y"});
  const auto unknown = args.unknownKeys({"in", "out"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

TEST(ArgsTest, CheckedGettersThrowOnMalformedValues) {
  const Args args =
      Args::parse({"--window", "2k", "--eta", "fast", "--name", "ok",
                   "--empty="});
  EXPECT_THROW(args.getIntChecked("window", 0), ArgError);
  EXPECT_THROW(args.getDoubleChecked("eta", 0.0), ArgError);
  EXPECT_THROW(args.getChecked("empty", "x"), ArgError);
  EXPECT_EQ(args.getChecked("name", ""), "ok");
  // Absent keys still fall back instead of throwing.
  EXPECT_EQ(args.getIntChecked("missing", 7), 7);
  EXPECT_DOUBLE_EQ(args.getDoubleChecked("missing", 2.5), 2.5);
  try {
    args.getIntChecked("window", 0);
    FAIL() << "expected ArgError";
  } catch (const ArgError& e) {
    // The message names the option and echoes the bad value.
    EXPECT_NE(std::string(e.what()).find("--window"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("2k"), std::string::npos);
  }
}

TEST(CommandsTest, NoCommandPrintsUsage) {
  EXPECT_EQ(run(Args::parse(std::vector<std::string>{})), 2);
  EXPECT_EQ(run(Args::parse({"bogus"})), 2);
}

TEST(CommandsTest, GenerateRequiresOut) {
  EXPECT_EQ(runGenerate(Args::parse({"generate", "--suite", "tiny"})), 2);
}

TEST(CommandsTest, FillRequiresInput) {
  EXPECT_EQ(runFill(Args::parse({"fill", "--out", "/tmp/x.gds"})), 2);
  EXPECT_EQ(runFill(Args::parse({"fill", "--in", "/nonexistent.gds",
                                 "--out", "/tmp/x.gds"})),
            2);
}

TEST(CommandsTest, FullPipelineOnTinySuite) {
  const std::string wires = "/tmp/ofl_cli_wires.gds";
  const std::string filled = "/tmp/ofl_cli_filled.gds";
  EXPECT_EQ(runGenerate(Args::parse({"generate", "--suite", "tiny", "--out",
                                     wires})),
            0);
  EXPECT_EQ(runStats(Args::parse({"stats", "--in", wires})), 0);
  EXPECT_EQ(runFill(Args::parse({"fill", "--in", wires, "--out", filled,
                                 "--window", "1200"})),
            0);
  EXPECT_EQ(runDrc(Args::parse({"drc", "--in", filled})), 0);
  EXPECT_EQ(runEvaluate(Args::parse({"evaluate", "--in", filled, "--suite",
                                     "s", "--runtime", "1.0"})),
            0);
  std::remove(wires.c_str());
  std::remove(filled.c_str());
}

TEST(CommandsTest, FillBackendSelection) {
  const std::string wires = "/tmp/ofl_cli_wires2.gds";
  const std::string filled = "/tmp/ofl_cli_filled2.gds";
  ASSERT_EQ(runGenerate(Args::parse({"generate", "--suite", "tiny", "--out",
                                     wires})),
            0);
  EXPECT_EQ(runFill(Args::parse({"fill", "--in", wires, "--out", filled,
                                 "--backend", "ssp"})),
            0);
  EXPECT_EQ(runFill(Args::parse({"fill", "--in", wires, "--out", filled,
                                 "--backend", "nope"})),
            2);
  std::remove(wires.c_str());
  std::remove(filled.c_str());
}

TEST(CommandsTest, CompareRunsAllFillers) {
  const std::string wires = "/tmp/ofl_cli_wires3.gds";
  const std::string json = "/tmp/ofl_cli_compare.json";
  ASSERT_EQ(runGenerate(Args::parse({"generate", "--suite", "tiny", "--out",
                                     wires})),
            0);
  EXPECT_EQ(runCompare(Args::parse({"compare", "--in", wires, "--suite", "s",
                                    "--json", json})),
            0);
  std::FILE* f = std::fopen(json.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::remove(wires.c_str());
  std::remove(json.c_str());
}

TEST(CommandsTest, HeatmapCsvExport) {
  const std::string wires = "/tmp/ofl_cli_wires4.gds";
  const std::string csv = "/tmp/ofl_cli_heat.csv";
  ASSERT_EQ(runGenerate(Args::parse({"generate", "--suite", "tiny", "--out",
                                     wires})),
            0);
  EXPECT_EQ(runHeatmap(Args::parse({"heatmap", "--in", wires, "--csv", csv})),
            0);
  EXPECT_EQ(runHeatmap(Args::parse({"heatmap", "--in", wires, "--layer",
                                    "99"})),
            2);
  std::remove(wires.c_str());
  std::remove(csv.c_str());
}

TEST(CommandsTest, OasisFormatRoundTrip) {
  const std::string wires = "/tmp/ofl_cli_wires5.gds";
  const std::string filled = "/tmp/ofl_cli_filled5.oas";
  ASSERT_EQ(runGenerate(Args::parse({"generate", "--suite", "tiny", "--out",
                                     wires})),
            0);
  EXPECT_EQ(runFill(Args::parse({"fill", "--in", wires, "--out", filled,
                                 "--format", "oasis"})),
            0);
  // The OASIS output must load back (auto-detected) for stats.
  EXPECT_EQ(runStats(Args::parse({"stats", "--in", filled})), 0);
  std::remove(wires.c_str());
  std::remove(filled.c_str());
}

TEST(CommandsTest, MalformedOptionValuesExitWithStatus2) {
  EXPECT_EQ(runFill(Args::parse({"fill", "--in", "x.gds", "--out", "y.gds",
                                 "--window", "2k"})),
            2);
  EXPECT_EQ(runFill(Args::parse({"fill", "--in", "x.gds", "--out", "y.gds",
                                 "--lambda", "big"})),
            2);
  EXPECT_EQ(runEvaluate(Args::parse({"evaluate", "--in", "x.gds", "--runtime",
                                     "soon"})),
            2);
  EXPECT_EQ(runHeatmap(Args::parse({"heatmap", "--in", "x.gds", "--layer",
                                    "one"})),
            2);
  EXPECT_EQ(runBatch(Args::parse({"batch", "--manifest", "m.txt", "--out-dir",
                                  "/tmp", "--jobs", "many"})),
            2);
}

TEST(CommandsTest, BatchRequiresManifestAndOutDir) {
  EXPECT_EQ(runBatch(Args::parse({"batch", "--out-dir", "/tmp"})), 2);
  EXPECT_EQ(runBatch(Args::parse({"batch", "--manifest", "m.txt"})), 2);
  EXPECT_EQ(runBatch(Args::parse({"batch", "--manifest",
                                  "/nonexistent/m.txt", "--out-dir",
                                  "/tmp"})),
            2);
}

TEST(CommandsTest, BatchRejectsBadManifestLines) {
  const std::string manifest = "/tmp/ofl_cli_bad_manifest.txt";
  {
    std::FILE* f = std::fopen(manifest.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("a.gds --window 2k\n", f);
    std::fclose(f);
  }
  EXPECT_EQ(runBatch(Args::parse({"batch", "--manifest", manifest,
                                  "--out-dir", "/tmp"})),
            2);
  std::remove(manifest.c_str());
}

namespace {
std::string readFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return {};
  std::string bytes;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  std::fclose(f);
  return bytes;
}
}  // namespace

// The acceptance test from the batch-service issue: an 8-job manifest run
// with --jobs 4 must be byte-identical to sequential `openfill fill` runs,
// including the repeated lines that the result cache serves.
TEST(CommandsTest, BatchMatchesSequentialFillByteForByte) {
  const std::string dir = "/tmp/ofl_cli_batch";
  const std::string wires = dir + "/a_wires.gds";
  std::filesystem::create_directories(dir);
  ASSERT_EQ(runGenerate(Args::parse({"generate", "--suite", "tiny", "--out",
                                     wires})),
            0);

  // 8 jobs over 4 distinct specs (full die / cropped die x option sets),
  // with repeats so the result cache gets exercised.
  const std::string crop = "0,0,4800,4800";
  const std::string manifest = dir + "/jobs.txt";
  {
    std::FILE* f = std::fopen(manifest.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fprintf(f,
                 "%s --out j0.gds\n"
                 "%s --out j1.gds --window 800\n"
                 "%s --out j2.gds --die %s\n"
                 "%s --out j3.gds --die %s --lambda 1.5\n"
                 "%s --out j4.gds\n"                     // repeat of j0
                 "%s --out j5.gds --window 800\n"        // repeat of j1
                 "%s --out j6.gds --die %s --lambda 1.5\n"  // repeat of j3
                 "%s --out j7.gds --die %s\n",              // repeat of j2
                 wires.c_str(), wires.c_str(), wires.c_str(), crop.c_str(),
                 wires.c_str(), crop.c_str(), wires.c_str(), wires.c_str(),
                 wires.c_str(), crop.c_str(), wires.c_str(), crop.c_str());
    std::fclose(f);
  }
  ASSERT_EQ(runBatch(Args::parse({"batch", "--manifest", manifest,
                                  "--out-dir", dir, "--jobs", "4",
                                  "--threads-per-job", "2"})),
            0);

  // Sequential reference runs (the unique specs).
  ASSERT_EQ(runFill(Args::parse({"fill", "--in", wires, "--out",
                                 dir + "/seq_a.gds"})),
            0);
  ASSERT_EQ(runFill(Args::parse({"fill", "--in", wires, "--out",
                                 dir + "/seq_a800.gds", "--window", "800"})),
            0);
  ASSERT_EQ(runFill(Args::parse({"fill", "--in", wires, "--out",
                                 dir + "/seq_b.gds", "--die", crop})),
            0);
  ASSERT_EQ(runFill(Args::parse({"fill", "--in", wires, "--out",
                                 dir + "/seq_b15.gds", "--die", crop,
                                 "--lambda", "1.5"})),
            0);

  const std::string seqA = readFileBytes(dir + "/seq_a.gds");
  const std::string seqA800 = readFileBytes(dir + "/seq_a800.gds");
  const std::string seqB = readFileBytes(dir + "/seq_b.gds");
  const std::string seqB15 = readFileBytes(dir + "/seq_b15.gds");
  ASSERT_FALSE(seqA.empty());
  EXPECT_EQ(readFileBytes(dir + "/j0.gds"), seqA);
  EXPECT_EQ(readFileBytes(dir + "/j1.gds"), seqA800);
  EXPECT_EQ(readFileBytes(dir + "/j2.gds"), seqB);
  EXPECT_EQ(readFileBytes(dir + "/j3.gds"), seqB15);
  EXPECT_EQ(readFileBytes(dir + "/j4.gds"), seqA);
  EXPECT_EQ(readFileBytes(dir + "/j5.gds"), seqA800);
  EXPECT_EQ(readFileBytes(dir + "/j6.gds"), seqB15);
  EXPECT_EQ(readFileBytes(dir + "/j7.gds"), seqB);

  std::filesystem::remove_all(dir);
}

TEST(CommandsTest, DrcReportsViolationsWithExitCode) {
  // Build a GDS with an illegally thin fill (datatype 1).
  gds::Library lib;
  lib.cells.emplace_back();
  gds::Writer::addRect(lib.cells.back(), 1, {0, 0, 5, 100}, /*datatype=*/1);
  const std::string path = "/tmp/ofl_cli_bad.gds";
  ASSERT_GT(gds::Writer::writeFile(lib, path), 0);
  EXPECT_EQ(runDrc(Args::parse({"drc", "--in", path})), 1);
  std::remove(path.c_str());
}

TEST(CommandsTest, CheckVerifiesFilledLayout) {
  const std::string wires = "/tmp/ofl_cli_check_wires.gds";
  const std::string filled = "/tmp/ofl_cli_check_filled.gds";
  ASSERT_EQ(runGenerate(Args::parse({"generate", "--suite", "tiny", "--out",
                                     wires})),
            0);
  ASSERT_EQ(runFill(Args::parse({"fill", "--in", wires, "--out", filled,
                                 "--window", "1200"})),
            0);
  // All invariants hold on a real fill; --json takes the same path.
  EXPECT_EQ(runCheck(Args::parse({"check", "--in", filled, "--window", "1200",
                                  "--determinism-threads", "2"})),
            0);
  EXPECT_EQ(runCheck(Args::parse({"check", "--in", filled, "--window", "1200",
                                  "--skip-determinism", "--json"})),
            0);
  // Every injected fault class must be detected (exit 0 = net caught it).
  for (const char* fault : {"spacing", "density", "overlay", "determinism"}) {
    EXPECT_EQ(runCheck(Args::parse({"check", "--in", filled, "--window",
                                    "1200", "--determinism-threads", "2",
                                    "--inject", fault})),
              0)
        << fault;
  }
  std::remove(wires.c_str());
  std::remove(filled.c_str());
}

TEST(CommandsTest, CheckRejectsBadUsage) {
  EXPECT_EQ(runCheck(Args::parse({"check"})), 2);  // missing --in
  EXPECT_EQ(runCheck(Args::parse({"check", "--in", "/nonexistent.gds"})), 2);
  const std::string wires = "/tmp/ofl_cli_check_bad.gds";
  ASSERT_EQ(runGenerate(Args::parse({"generate", "--suite", "tiny", "--out",
                                     wires})),
            0);
  EXPECT_EQ(runCheck(Args::parse({"check", "--in", wires, "--inject",
                                  "bogus"})),
            2);
  std::remove(wires.c_str());
}

TEST(CommandsTest, FillWritesTraceAndMetricsArtifacts) {
  const std::string wires = "/tmp/ofl_cli_obs_wires.gds";
  const std::string filled = "/tmp/ofl_cli_obs_filled.gds";
  const std::string trace = "/tmp/ofl_cli_obs_trace.json";
  const std::string metrics = "/tmp/ofl_cli_obs_metrics.json";
  const std::string prom = "/tmp/ofl_cli_obs_metrics.prom";
  ASSERT_EQ(runGenerate(Args::parse({"generate", "--suite", "tiny", "--out",
                                     wires})),
            0);
  ASSERT_EQ(runFill(Args::parse({"fill", "--in", wires, "--out", filled,
                                 "--trace", trace, "--metrics-out", metrics,
                                 "--metrics-prom", prom})),
            0);
  // The trace parses and contains engine + per-window spans.
  std::ifstream traceIn(trace);
  ASSERT_TRUE(traceIn.good());
  std::stringstream traceText;
  traceText << traceIn.rdbuf();
  const auto traceDoc = json::Value::parse(traceText.str());
  ASSERT_TRUE(traceDoc.has_value());
  const json::Value* events = traceDoc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_GT(events->array.size(), 10u);
  bool sawEngineRun = false;
  bool sawWindow = false;
  for (const auto& e : events->array) {
    const json::Value* name = e.find("name");
    if (name == nullptr) continue;
    if (name->str == "engine.run") sawEngineRun = true;
    if (name->str == "window.sizing") sawWindow = true;
  }
  EXPECT_TRUE(sawEngineRun);
  EXPECT_TRUE(sawWindow);

  // The metrics snapshot pretty-prints and satisfies a --require list;
  // a missing series fails with exit 1.
  EXPECT_EQ(runStats(Args::parse(
                {"stats", "--metrics", metrics, "--require",
                 "engine.runs,prof.sizing.seconds,score.total,"
                 "quality.windows,process.peak_rss_mib,engine.run_seconds,"
                 // pre-registered schema: present (zero) even on a lone
                 // fill that never touches the cache or scheduler
                 "cache.hits,sched.tasks_submitted"})),
            0);
  EXPECT_EQ(runStats(Args::parse({"stats", "--metrics", metrics, "--require",
                                  "not.a.series"})),
            1);
  EXPECT_EQ(runStats(Args::parse({"stats", "--metrics",
                                  "/nonexistent/metrics.json"})),
            2);

  // Prometheus exposition exists and uses the openfill_ prefix.
  std::ifstream promIn(prom);
  ASSERT_TRUE(promIn.good());
  std::stringstream promText;
  promText << promIn.rdbuf();
  EXPECT_NE(promText.str().find("openfill_engine_runs_total"),
            std::string::npos);

  std::remove(wires.c_str());
  std::remove(filled.c_str());
  std::remove(trace.c_str());
  std::remove(metrics.c_str());
  std::remove(prom.c_str());
}

TEST(CommandsTest, FillOutputIdenticalWithAndWithoutTracing) {
  // Observability must never change the product: byte-compare the GDS
  // written with collection on vs off.
  const std::string wires = "/tmp/ofl_cli_obs_det_wires.gds";
  const std::string plain = "/tmp/ofl_cli_obs_det_plain.gds";
  const std::string traced = "/tmp/ofl_cli_obs_det_traced.gds";
  const std::string trace = "/tmp/ofl_cli_obs_det_trace.json";
  const std::string metrics = "/tmp/ofl_cli_obs_det_metrics.json";
  ASSERT_EQ(runGenerate(Args::parse({"generate", "--suite", "tiny", "--out",
                                     wires})),
            0);
  ASSERT_EQ(runFill(Args::parse({"fill", "--in", wires, "--out", plain})), 0);
  ASSERT_EQ(runFill(Args::parse({"fill", "--in", wires, "--out", traced,
                                 "--trace", trace, "--metrics-out", metrics})),
            0);
  std::ifstream a(plain, std::ios::binary);
  std::ifstream b(traced, std::ios::binary);
  std::stringstream abuf, bbuf;
  abuf << a.rdbuf();
  bbuf << b.rdbuf();
  ASSERT_FALSE(abuf.str().empty());
  EXPECT_EQ(abuf.str(), bbuf.str());
  std::remove(wires.c_str());
  std::remove(plain.c_str());
  std::remove(traced.c_str());
  std::remove(trace.c_str());
  std::remove(metrics.c_str());
}

TEST(CommandsTest, FuzzSweepAndReplay) {
  const std::string corpus = "/tmp/ofl_cli_fuzz_corpus";
  EXPECT_EQ(runFuzz(Args::parse({"fuzz", "--seeds", "4", "--skip-determinism",
                                 "--corpus", corpus})),
            0);

  const std::string repro = "/tmp/ofl_cli_fuzz_case.repro";
  ASSERT_TRUE(
      verify::writeReproFile(repro, verify::LayoutFuzzer::generate(2)));
  EXPECT_EQ(runFuzz(Args::parse({"fuzz", "--replay", repro,
                                 "--skip-determinism"})),
            0);
  EXPECT_EQ(runFuzz(Args::parse({"fuzz", "--replay", "/nonexistent.repro"})),
            2);
  std::remove(repro.c_str());
  std::filesystem::remove_all(corpus);
}

}  // namespace
}  // namespace ofl::cli
