#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "cli/args.hpp"
#include "cli/commands.hpp"
#include "gds/gds_writer.hpp"

namespace ofl::cli {
namespace {

TEST(ArgsTest, KeyValueForms) {
  const Args args = Args::parse({"fill", "--in", "a.gds", "--window=800",
                                 "--verbose", "--eta", "2.5"});
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "fill");
  EXPECT_EQ(args.getOr("in", ""), "a.gds");
  EXPECT_EQ(args.getIntOr("window", 0), 800);
  EXPECT_TRUE(args.hasFlag("verbose"));
  EXPECT_DOUBLE_EQ(args.getDoubleOr("eta", 0.0), 2.5);
}

TEST(ArgsTest, MissingKeysUseFallbacks) {
  const Args args = Args::parse({"stats"});
  EXPECT_FALSE(args.get("in").has_value());
  EXPECT_EQ(args.getOr("in", "x"), "x");
  EXPECT_EQ(args.getIntOr("n", 7), 7);
  EXPECT_FALSE(args.hasFlag("json"));
}

TEST(ArgsTest, MalformedNumbersRejected) {
  const Args args = Args::parse({"--n", "12abc", "--d", "1.5x"});
  EXPECT_FALSE(args.getInt("n").has_value());
  EXPECT_FALSE(args.getDouble("d").has_value());
}

TEST(ArgsTest, FlagAtEndOfLine) {
  const Args args = Args::parse({"--a", "--b"});
  EXPECT_TRUE(args.hasFlag("a"));
  EXPECT_TRUE(args.hasFlag("b"));
}

TEST(ArgsTest, UnknownKeysDetected) {
  const Args args = Args::parse({"--in", "x", "--typo", "y"});
  const auto unknown = args.unknownKeys({"in", "out"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

TEST(CommandsTest, NoCommandPrintsUsage) {
  EXPECT_EQ(run(Args::parse(std::vector<std::string>{})), 2);
  EXPECT_EQ(run(Args::parse({"bogus"})), 2);
}

TEST(CommandsTest, GenerateRequiresOut) {
  EXPECT_EQ(runGenerate(Args::parse({"generate", "--suite", "tiny"})), 2);
}

TEST(CommandsTest, FillRequiresInput) {
  EXPECT_EQ(runFill(Args::parse({"fill", "--out", "/tmp/x.gds"})), 2);
  EXPECT_EQ(runFill(Args::parse({"fill", "--in", "/nonexistent.gds",
                                 "--out", "/tmp/x.gds"})),
            2);
}

TEST(CommandsTest, FullPipelineOnTinySuite) {
  const std::string wires = "/tmp/ofl_cli_wires.gds";
  const std::string filled = "/tmp/ofl_cli_filled.gds";
  EXPECT_EQ(runGenerate(Args::parse({"generate", "--suite", "tiny", "--out",
                                     wires})),
            0);
  EXPECT_EQ(runStats(Args::parse({"stats", "--in", wires})), 0);
  EXPECT_EQ(runFill(Args::parse({"fill", "--in", wires, "--out", filled,
                                 "--window", "1200"})),
            0);
  EXPECT_EQ(runDrc(Args::parse({"drc", "--in", filled})), 0);
  EXPECT_EQ(runEvaluate(Args::parse({"evaluate", "--in", filled, "--suite",
                                     "s", "--runtime", "1.0"})),
            0);
  std::remove(wires.c_str());
  std::remove(filled.c_str());
}

TEST(CommandsTest, FillBackendSelection) {
  const std::string wires = "/tmp/ofl_cli_wires2.gds";
  const std::string filled = "/tmp/ofl_cli_filled2.gds";
  ASSERT_EQ(runGenerate(Args::parse({"generate", "--suite", "tiny", "--out",
                                     wires})),
            0);
  EXPECT_EQ(runFill(Args::parse({"fill", "--in", wires, "--out", filled,
                                 "--backend", "ssp"})),
            0);
  EXPECT_EQ(runFill(Args::parse({"fill", "--in", wires, "--out", filled,
                                 "--backend", "nope"})),
            2);
  std::remove(wires.c_str());
  std::remove(filled.c_str());
}

TEST(CommandsTest, CompareRunsAllFillers) {
  const std::string wires = "/tmp/ofl_cli_wires3.gds";
  const std::string json = "/tmp/ofl_cli_compare.json";
  ASSERT_EQ(runGenerate(Args::parse({"generate", "--suite", "tiny", "--out",
                                     wires})),
            0);
  EXPECT_EQ(runCompare(Args::parse({"compare", "--in", wires, "--suite", "s",
                                    "--json", json})),
            0);
  std::FILE* f = std::fopen(json.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::remove(wires.c_str());
  std::remove(json.c_str());
}

TEST(CommandsTest, HeatmapCsvExport) {
  const std::string wires = "/tmp/ofl_cli_wires4.gds";
  const std::string csv = "/tmp/ofl_cli_heat.csv";
  ASSERT_EQ(runGenerate(Args::parse({"generate", "--suite", "tiny", "--out",
                                     wires})),
            0);
  EXPECT_EQ(runHeatmap(Args::parse({"heatmap", "--in", wires, "--csv", csv})),
            0);
  EXPECT_EQ(runHeatmap(Args::parse({"heatmap", "--in", wires, "--layer",
                                    "99"})),
            2);
  std::remove(wires.c_str());
  std::remove(csv.c_str());
}

TEST(CommandsTest, OasisFormatRoundTrip) {
  const std::string wires = "/tmp/ofl_cli_wires5.gds";
  const std::string filled = "/tmp/ofl_cli_filled5.oas";
  ASSERT_EQ(runGenerate(Args::parse({"generate", "--suite", "tiny", "--out",
                                     wires})),
            0);
  EXPECT_EQ(runFill(Args::parse({"fill", "--in", wires, "--out", filled,
                                 "--format", "oasis"})),
            0);
  // The OASIS output must load back (auto-detected) for stats.
  EXPECT_EQ(runStats(Args::parse({"stats", "--in", filled})), 0);
  std::remove(wires.c_str());
  std::remove(filled.c_str());
}

TEST(CommandsTest, DrcReportsViolationsWithExitCode) {
  // Build a GDS with an illegally thin fill (datatype 1).
  gds::Library lib;
  lib.cells.emplace_back();
  gds::Writer::addRect(lib.cells.back(), 1, {0, 0, 5, 100}, /*datatype=*/1);
  const std::string path = "/tmp/ofl_cli_bad.gds";
  ASSERT_GT(gds::Writer::writeFile(lib, path), 0);
  EXPECT_EQ(runDrc(Args::parse({"drc", "--in", path})), 1);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ofl::cli
