// Tests for the shared benchmark harness (src/bench/): statistics
// determinism, MAD outlier rejection, bootstrap CI behaviour, the
// BENCH_*.json schema round-trip through bench/report, warmup
// suppression, and the bench-compare regression verdicts + exit codes.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "bench/report.hpp"
#include "bench/stats.hpp"
#include "cli/args.hpp"
#include "cli/commands.hpp"

namespace ofl::bench {
namespace {

namespace fs = std::filesystem;

TEST(BenchStatsTest, ComputeStatsIsDeterministic) {
  const std::vector<double> samples = {1.0, 1.2, 0.9, 1.1, 1.05, 0.95};
  const SeriesStats a = computeStats(samples);
  const SeriesStats b = computeStats(samples);
  // Bit-identical, not approximately equal: the bootstrap RNG is seeded.
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.stddev, b.stddev);
  EXPECT_EQ(a.ciLo, b.ciLo);
  EXPECT_EQ(a.ciHi, b.ciHi);
  EXPECT_EQ(a.rejectedOutliers, b.rejectedOutliers);
}

TEST(BenchStatsTest, PlantedSpikeIsRejected) {
  // 9 well-behaved samples near 1.0 plus one 50x spike (a GC pause, a
  // scheduler preemption): the spike must not drag the mean.
  std::vector<double> samples = {1.00, 1.02, 0.98, 1.01, 0.99,
                                 1.03, 0.97, 1.00, 1.01, 50.0};
  const SeriesStats s = computeStats(samples);
  EXPECT_EQ(s.rejectedOutliers, 1u);
  EXPECT_EQ(s.kept(), 9u);
  EXPECT_NEAR(s.mean, 1.0, 0.05);
  EXPECT_LT(s.max, 2.0);
}

TEST(BenchStatsTest, ZeroMadSkipsRejection) {
  // All-identical samples make MAD == 0; the modified z-score is
  // undefined there and nothing may be rejected.
  const std::vector<double> samples = {5.0, 5.0, 5.0, 7.0};
  const SeriesStats s = computeStats(samples);
  EXPECT_EQ(s.rejectedOutliers, 0u);
  EXPECT_EQ(s.kept(), 4u);
}

TEST(BenchStatsTest, TinySamplesAreNeverRejected) {
  const std::vector<double> samples = {1.0, 100.0};
  const SeriesStats s = computeStats(samples);
  EXPECT_EQ(s.rejectedOutliers, 0u);
}

TEST(BenchStatsTest, CiBracketsTheMeanOnKnownDistribution) {
  // Uniform-ish spread 1..40: the bootstrap CI must contain the sample
  // mean, sit inside [min, max], and be a proper interval.
  std::vector<double> samples;
  for (int i = 1; i <= 40; ++i) samples.push_back(static_cast<double>(i));
  const SeriesStats s = computeStats(samples);
  EXPECT_NEAR(s.mean, 20.5, 1e-9);
  EXPECT_LE(s.ciLo, s.mean);
  EXPECT_GE(s.ciHi, s.mean);
  EXPECT_LT(s.ciLo, s.ciHi);
  EXPECT_GE(s.ciLo, s.min);
  EXPECT_LE(s.ciHi, s.max);
  // ~95% CI of the mean of 40 uniform samples is a few units wide; it
  // must be much tighter than the full range.
  EXPECT_LT(s.ciHi - s.ciLo, 10.0);
}

TEST(BenchStatsTest, SingleSampleHasDegenerateCi) {
  const SeriesStats s = computeStats({3.25});
  EXPECT_EQ(s.mean, 3.25);
  EXPECT_EQ(s.ciLo, 3.25);
  EXPECT_EQ(s.ciHi, 3.25);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(BenchHarnessTest, WarmupRoundsRunButNeverRecord) {
  Harness::Options o;
  o.name = "unit";
  o.reps = 2;
  o.warmup = 1;
  Harness h(o);
  Series& s = h.series("t_s", "s");
  int executions = 0;
  h.runInterleaved({[&] {
    ++executions;
    s.record(1.0);
  }});
  // The body paid the cold round; the series did not see it.
  EXPECT_EQ(executions, 3);
  EXPECT_EQ(s.samples().size(), 2u);
}

TEST(BenchHarnessTest, SchemaRoundTripsThroughReport) {
  Harness::Options o;
  o.name = "unit";
  o.suite = "s";
  o.reps = 3;
  o.warmup = 0;
  Harness h(o);
  Series& wall = h.series("wall_s", "s");
  Series& speedup =
      h.series("speedup", "x", Direction::kHigherIsBetter, Scale::kRatio);
  h.runInterleaved({[&] {
    wall.record(1.5);
    speedup.record(2.0);
  }});
  h.param("fills", static_cast<std::int64_t>(1234));
  h.param("label", "round-trip");
  h.check("identical", true);
  h.check("budget_held", false);

  BenchDoc doc;
  std::string error;
  ASSERT_TRUE(BenchDoc::fromJson(h.json(), doc, error)) << error;
  EXPECT_EQ(doc.schema, "openfill-bench-v1");
  EXPECT_EQ(doc.benchmark, "unit");
  EXPECT_EQ(doc.suite, "s");
  EXPECT_EQ(doc.reps, 3);
  EXPECT_FALSE(doc.ok);  // one failed check
  EXPECT_GT(doc.peakRssMiB, 0.0);
  EXPECT_EQ(doc.fingerprint, h.machine().fingerprint());

  const SeriesDoc* w = doc.find("wall_s");
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->samples.size(), 3u);
  EXPECT_EQ(w->mean, 1.5);
  EXPECT_FALSE(w->higherIsBetter);
  EXPECT_TRUE(w->wallClock);
  const SeriesDoc* r = doc.find("speedup");
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->higherIsBetter);
  EXPECT_FALSE(r->wallClock);

  // Key order through the JSON object is not guaranteed; look up by name.
  ASSERT_EQ(doc.checks.size(), 2u);
  bool sawIdentical = false, sawBudget = false;
  for (const auto& [name, ok] : doc.checks) {
    if (name == "identical") {
      sawIdentical = true;
      EXPECT_TRUE(ok);
    } else if (name == "budget_held") {
      sawBudget = true;
      EXPECT_FALSE(ok);
    }
  }
  EXPECT_TRUE(sawIdentical);
  EXPECT_TRUE(sawBudget);
}

// Writes a one-series artifact whose three samples sit around `center`.
std::string writeArtifact(const fs::path& dir, const std::string& file,
                          double center) {
  Harness::Options o;
  o.name = "cmp";
  o.reps = 3;
  o.warmup = 0;
  Harness h(o);
  Series& s = h.series("t_s", "s");
  h.runInterleaved({[&] { s.record(center); }});
  // Nudge one extra sample so the CI is a real (but tight) interval.
  s.record(center * 1.001);
  const fs::path p = dir / file;
  std::ofstream out(p);
  out << h.json();
  return p.string();
}

class BenchCompareTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "ofl_bench_cmp_test";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  fs::path dir_;
};

TEST_F(BenchCompareTest, CleanRerunExitsZero) {
  const std::string base = writeArtifact(dir_, "base.json", 1.0);
  const std::string cur = writeArtifact(dir_, "cur.json", 1.0);
  const int rc = cli::run(cli::Args::parse(
      {"bench-compare", base, cur, "--fail-on-regression"}));
  EXPECT_EQ(rc, 0);
}

TEST_F(BenchCompareTest, InjectedSlowdownExitsNonzero) {
  const std::string base = writeArtifact(dir_, "base.json", 1.0);
  const std::string cur = writeArtifact(dir_, "cur.json", 2.0);
  const int rc = cli::run(cli::Args::parse(
      {"bench-compare", base, cur, "--fail-on-regression"}));
  EXPECT_NE(rc, 0);
  // Without the gate flag the verdict is reported but the exit is clean.
  EXPECT_EQ(cli::run(cli::Args::parse({"bench-compare", base, cur})), 0);
}

TEST_F(BenchCompareTest, CompareVerdictsRespectDirectionAndCi) {
  BenchDoc base, fast;
  std::string error;
  ASSERT_TRUE(
      BenchDoc::load(writeArtifact(dir_, "b.json", 1.0), base, error));
  ASSERT_TRUE(
      BenchDoc::load(writeArtifact(dir_, "f.json", 0.5), fast, error));
  const CompareResult slower = compare(base, fast, 0.05);
  ASSERT_EQ(slower.series.size(), 1u);
  EXPECT_EQ(slower.series[0].verdict, Verdict::kImproved);
  EXPECT_FALSE(slower.hasRegression());

  const CompareResult worse = compare(fast, base, 0.05);
  EXPECT_EQ(worse.series[0].verdict, Verdict::kRegressed);
  EXPECT_TRUE(worse.hasRegression());
}

TEST_F(BenchCompareTest, MissingSeriesCountsAsRegression) {
  BenchDoc base;
  std::string error;
  ASSERT_TRUE(
      BenchDoc::load(writeArtifact(dir_, "b.json", 1.0), base, error));
  BenchDoc current = base;
  current.series.clear();
  const CompareResult r = compare(base, current, 0.05);
  EXPECT_EQ(r.missing, 1u);
  EXPECT_TRUE(r.hasRegression());
}

}  // namespace
}  // namespace ofl::bench
