// End-to-end daemon tests: jobs over the wire (byte-identical to direct
// runs), per-client admission, disconnect cancellation, graceful drain,
// hot reload, persistent cache across a server restart, and the protocol
// hardening suite (garbage/oversized/truncated frames, slow-loris) — a
// malformed client must never crash or wedge the server.
#include "serve/server.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "cli/args.hpp"
#include "cli/commands.hpp"
#include "common/json_util.hpp"
#include "serve/client.hpp"
#include "serve/frame.hpp"

namespace ofl::serve {
namespace {

namespace fs = std::filesystem;

class ServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new std::string(
        (fs::path(testing::TempDir()) / "ofl_serve_test").string());
    fs::remove_all(*dir_);
    fs::create_directories(*dir_);
    ASSERT_EQ(0, cli::run(cli::Args::parse(
                     {"generate", "--suite", "tiny", "--out", wires()})));
    ASSERT_EQ(0, cli::run(cli::Args::parse(
                     {"generate", "--suite", "s", "--out", wiresSlow()})));
  }

  static std::string path(const std::string& name) {
    return (fs::path(*dir_) / name).string();
  }
  static std::string wires() { return path("wires.gds"); }
  static std::string wiresSlow() { return path("wires_s.gds"); }

  /// A fill spec that completes in well under a second.
  static std::string fastSpec(const std::string& out) {
    return wires() + " --out " + path(out);
  }
  /// A fill spec that runs for over a second at one thread — long enough
  /// that "while the job is running" test steps are not races.
  static std::string slowSpec(const std::string& out) {
    return wiresSlow() + " --out " + path(out) + " --window 100";
  }

  static ServeConfig baseConfig() {
    ServeConfig cfg;
    cfg.port = 0;
    cfg.jobs = 2;
    cfg.threadsPerJob = 1;  // keep the slow spec slow on big machines
    return cfg;
  }

  static Request fillRequest(const std::string& spec,
                             const std::string& client = "test") {
    Request req;
    req.type = Request::Type::kFill;
    req.client = client;
    req.spec = spec;
    return req;
  }

  static std::string readFile(const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
  }

  static const json::Value* field(const ParsedResponse& r,
                                  const char* name) {
    return r.body.find(name);
  }

  static std::string dumpCounters(const Server& server) {
    const Server::Counters c = server.counters();
    std::ostringstream out;
    out << "accepted=" << c.connectionsAccepted
        << " requests=" << c.requests << " jobs=" << c.jobsSubmitted;
    return out.str();
  }

  static std::string* dir_;
};

std::string* ServerTest::dir_ = nullptr;

TEST_F(ServerTest, PingStatsMetricsOverOneConnection) {
  Server server(baseConfig());
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  Client client("127.0.0.1", server.port());
  ASSERT_TRUE(client.connected()) << client.error();

  Request ping;
  ping.type = Request::Type::kPing;
  auto resp = client.call(ping);
  ASSERT_TRUE(resp.has_value()) << client.error();
  EXPECT_TRUE(resp->ok);

  Request stats;
  stats.type = Request::Type::kStats;
  resp = client.call(stats);
  ASSERT_TRUE(resp.has_value()) << client.error();
  ASSERT_TRUE(resp->ok) << resp->error;
  const json::Value* body = field(*resp, "stats");
  ASSERT_NE(nullptr, body);
  ASSERT_NE(nullptr, body->find("service"));
  ASSERT_NE(nullptr, body->find("serve"));

  Request metrics;
  metrics.type = Request::Type::kMetrics;
  resp = client.call(metrics);
  ASSERT_TRUE(resp.has_value()) << client.error();
  ASSERT_TRUE(resp->ok);
  const json::Value* text = field(*resp, "metrics");
  ASSERT_NE(nullptr, text);
  EXPECT_NE(std::string::npos,
            text->str.find("openfill_serve_requests_total"));
  EXPECT_NE(std::string::npos,
            text->str.find("openfill_serve_connections_accepted_total"));
  server.drain();
}

TEST_F(ServerTest, FillJobByteIdenticalToDirectRunAndCacheHitsRepeat) {
  Server server(baseConfig());
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  Client client("127.0.0.1", server.port());
  ASSERT_TRUE(client.connected()) << client.error();

  auto resp = client.call(fillRequest(fastSpec("served.gds")));
  ASSERT_TRUE(resp.has_value()) << client.error();
  ASSERT_TRUE(resp->ok) << resp->error;
  EXPECT_EQ("ok", field(*resp, "status")->str);
  EXPECT_FALSE(field(*resp, "cacheHit")->boolean);
  EXPECT_GT(field(*resp, "fills")->number, 0.0);

  // The exact same run through the plain CLI path.
  ASSERT_EQ(0, cli::run(cli::Args::parse({"fill", "--in", wires(), "--out",
                                          path("direct.gds")})));
  const std::string served = readFile(path("served.gds"));
  ASSERT_FALSE(served.empty());
  EXPECT_EQ(served, readFile(path("direct.gds")));

  // Identical spec to a different output: result cache replays the fills.
  resp = client.call(fillRequest(fastSpec("served2.gds")));
  ASSERT_TRUE(resp.has_value()) << client.error();
  ASSERT_TRUE(resp->ok) << resp->error;
  EXPECT_TRUE(field(*resp, "cacheHit")->boolean);
  EXPECT_EQ(served, readFile(path("served2.gds")));
  server.drain();
}

TEST_F(ServerTest, EcoJobRunsAndTraceReturnsItsSpans) {
  Server server(baseConfig());
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  Client client("127.0.0.1", server.port());
  ASSERT_TRUE(client.connected()) << client.error();

  auto resp = client.call(fillRequest(fastSpec("eco_base.gds")));
  ASSERT_TRUE(resp.has_value()) << client.error();
  ASSERT_TRUE(resp->ok) << resp->error;

  Request eco;
  eco.type = Request::Type::kEco;
  eco.client = "test";
  eco.spec = path("eco_base.gds") + " --out " + path("eco_out.gds");
  eco.changed = geom::Rect{0, 0, 1500, 1500};
  eco.hasChanged = true;
  resp = client.call(eco);
  ASSERT_TRUE(resp.has_value()) << client.error();
  ASSERT_TRUE(resp->ok) << resp->error;
  const auto ecoJobId =
      static_cast<std::int64_t>(field(*resp, "jobId")->number);
  EXPECT_TRUE(fs::exists(path("eco_out.gds")));

  Request trace;
  trace.type = Request::Type::kTrace;
  trace.jobId = ecoJobId;
  resp = client.call(trace);
  ASSERT_TRUE(resp.has_value()) << client.error();
  ASSERT_TRUE(resp->ok) << resp->error;
  const json::Value* spans = field(*resp, "spans");
  ASSERT_NE(nullptr, spans);
  ASSERT_TRUE(spans->isArray());
  EXPECT_FALSE(spans->array.empty());
  bool sawRun = false;
  for (const json::Value& s : spans->array) {
    const json::Value* name = s.find("name");
    if (name != nullptr && name->str == "job.run") sawRun = true;
  }
  EXPECT_TRUE(sawRun);
  server.drain();
}

TEST_F(ServerTest, CheckJobVerifiesAFilledLayout) {
  Server server(baseConfig());
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  Client client("127.0.0.1", server.port());
  ASSERT_TRUE(client.connected()) << client.error();

  auto resp = client.call(fillRequest(fastSpec("check_in.gds")));
  ASSERT_TRUE(resp.has_value()) << client.error();
  ASSERT_TRUE(resp->ok) << resp->error;

  Request check;
  check.type = Request::Type::kCheck;
  check.spec = path("check_in.gds");
  check.suite = "s";
  check.determinism = false;  // 3 extra engine runs; not needed here
  resp = client.call(check);
  ASSERT_TRUE(resp.has_value()) << client.error();
  EXPECT_TRUE(resp->ok) << resp->error;
  const json::Value* report = field(*resp, "report");
  ASSERT_NE(nullptr, report);
  const json::Value* checks = report->find("checks");
  ASSERT_NE(nullptr, checks);
  EXPECT_TRUE(checks->isArray());
  EXPECT_FALSE(checks->array.empty());
  server.drain();
}

TEST_F(ServerTest, MalformedRequestsAnswerPerRequestAndConnectionSurvives) {
  Server server(baseConfig());
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  Client client("127.0.0.1", server.port());
  ASSERT_TRUE(client.connected()) << client.error();

  for (const char* bad : {"not json at all", "{\"no\":\"type\"}",
                          "{\"type\":\"warp-core\"}", "{\"type\":\"fill\"}",
                          "{\"type\":\"eco\",\"spec\":\"x.gds\"}"}) {
    auto resp = client.callRaw(bad);
    ASSERT_TRUE(resp.has_value()) << client.error();
    EXPECT_FALSE(resp->ok);
    EXPECT_FALSE(resp->error.empty());
  }
  // Same connection still serves valid requests.
  Request ping;
  ping.type = Request::Type::kPing;
  const auto resp = client.call(ping);
  ASSERT_TRUE(resp.has_value()) << client.error();
  EXPECT_TRUE(resp->ok);
  server.drain();
}

TEST_F(ServerTest, GarbageAndOversizedFramesCloseOnlyThatConnection) {
  ServeConfig cfg = baseConfig();
  cfg.maxFrameBytes = 1024;
  Server server(cfg);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  {  // An HTTP client: first 4 bytes decode to a huge length.
    Fd fd = connectTo("127.0.0.1", server.port(), 5.0, &error);
    ASSERT_TRUE(fd.valid()) << error;
    ASSERT_TRUE(writeFull(fd.get(), "GET / HTTP/1.1\r\n\r\n", 18, 5.0, &error));
    std::string payload;
    ASSERT_EQ(FrameStatus::kOk, readFrame(fd.get(), &payload, 5.0));
    EXPECT_NE(std::string::npos, payload.find("bad frame"));
    // Server closed after answering.
    EXPECT_EQ(FrameStatus::kEof, readFrame(fd.get(), &payload, 5.0));
  }
  {  // A well-framed payload over the configured limit.
    Fd fd = connectTo("127.0.0.1", server.port(), 5.0, &error);
    ASSERT_TRUE(fd.valid()) << error;
    unsigned char hdr[4];
    encodeLength(2048, hdr);
    ASSERT_TRUE(writeFull(fd.get(), hdr, 4, 5.0, &error));
    std::string payload;
    ASSERT_EQ(FrameStatus::kOk, readFrame(fd.get(), &payload, 5.0));
    EXPECT_NE(std::string::npos, payload.find("too large"));
  }
  {  // Mid-frame disconnect: no one to answer, server must not wedge.
    Fd fd = connectTo("127.0.0.1", server.port(), 5.0, &error);
    ASSERT_TRUE(fd.valid()) << error;
    unsigned char hdr[4];
    encodeLength(100, hdr);
    ASSERT_TRUE(writeFull(fd.get(), hdr, 4, 5.0, &error));
    ASSERT_TRUE(writeFull(fd.get(), "0123456789", 10, 5.0, &error));
  }
  // After all that abuse, a normal client is served.
  Client client("127.0.0.1", server.port());
  ASSERT_TRUE(client.connected()) << client.error();
  Request ping;
  ping.type = Request::Type::kPing;
  const auto resp = client.call(ping);
  ASSERT_TRUE(resp.has_value()) << client.error();
  EXPECT_TRUE(resp->ok);
  EXPECT_GE(server.counters().badFrames, 2u);
  server.drain();
}

TEST_F(ServerTest, SlowLorisClientIsDisconnected) {
  ServeConfig cfg = baseConfig();
  cfg.frameTimeoutSeconds = 0.3;
  Server server(cfg);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  Fd fd = connectTo("127.0.0.1", server.port(), 5.0, &error);
  ASSERT_TRUE(fd.valid()) << error;
  // Two header bytes, then silence: the whole-frame deadline must fire.
  ASSERT_TRUE(writeFull(fd.get(), "\x00\x00", 2, 5.0, &error));
  std::string payload;
  const FrameStatus st = readFrame(fd.get(), &payload, 5.0);
  if (st == FrameStatus::kOk) {
    EXPECT_NE(std::string::npos, payload.find("bad frame"));
    EXPECT_EQ(FrameStatus::kEof, readFrame(fd.get(), &payload, 5.0));
  } else {
    EXPECT_EQ(FrameStatus::kEof, st);  // server closed without the courtesy
  }
  // The daemon itself is unharmed.
  Client client("127.0.0.1", server.port());
  ASSERT_TRUE(client.connected()) << client.error();
  Request ping;
  ping.type = Request::Type::kPing;
  const auto resp = client.call(ping);
  ASSERT_TRUE(resp.has_value()) << client.error();
  EXPECT_TRUE(resp->ok);
  server.drain();
}

TEST_F(ServerTest, PerClientAdmissionRejectsOverLimitOnly) {
  ServeConfig cfg = baseConfig();
  cfg.maxInflightPerClient = 1;
  Server server(cfg);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  // Client "a" occupies its one slot with a >1s job.
  std::optional<ParsedResponse> slowResp;
  Client slow("127.0.0.1", server.port());
  ASSERT_TRUE(slow.connected()) << slow.error();
  std::thread slowCall([&] {
    slowResp = slow.call(fillRequest(slowSpec("adm_slow.gds"), "a"));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  // A second job from "a" is rejected while the first is in flight...
  Client second("127.0.0.1", server.port());
  ASSERT_TRUE(second.connected()) << second.error();
  auto resp = second.call(fillRequest(fastSpec("adm_a2.gds"), "a"));
  ASSERT_TRUE(resp.has_value()) << second.error();
  EXPECT_FALSE(resp->ok);
  EXPECT_TRUE(resp->rejected);

  // ...but client "b" is admitted: the limit is per client, not global.
  resp = second.call(fillRequest(fastSpec("adm_b.gds"), "b"));
  ASSERT_TRUE(resp.has_value()) << second.error();
  EXPECT_TRUE(resp->ok) << resp->error;

  slowCall.join();
  ASSERT_TRUE(slowResp.has_value()) << slow.error();
  EXPECT_TRUE(slowResp->ok) << slowResp->error;
  // With its slot free again, "a" is admitted.
  resp = second.call(fillRequest(fastSpec("adm_a3.gds"), "a"));
  ASSERT_TRUE(resp.has_value()) << second.error();
  EXPECT_TRUE(resp->ok) << resp->error;
  EXPECT_EQ(1u, server.counters().jobsRejected);
  server.drain();
}

TEST_F(ServerTest, ClientDisconnectCancelsItsRunningJob) {
  Server server(baseConfig());
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  {
    Client doomed("127.0.0.1", server.port());
    ASSERT_TRUE(doomed.connected()) << doomed.error();
    ASSERT_TRUE(writeFrame(doomed.fd(),
                           fillRequest(slowSpec("dc.gds"), "doomed").toJson(),
                           5.0));
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }  // connection closes with the job still running

  // The handler notices within its poll slice and cancels via the job's
  // CancelToken; the engine unwinds at its next checkpoint.
  bool cancelled = false;
  for (int i = 0; i < 100 && !cancelled; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    cancelled = server.counters().jobsCancelledByDisconnect > 0;
  }
  EXPECT_TRUE(cancelled) << dumpCounters(server);
  server.drain();
}

TEST_F(ServerTest, DrainCancelsInFlightAndRefusesNewClients) {
  Server server(baseConfig());
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  Client victim("127.0.0.1", server.port());
  ASSERT_TRUE(victim.connected()) << victim.error();
  std::optional<ParsedResponse> victimResp;
  std::thread victimCall([&] {
    victimResp = victim.call(fillRequest(slowSpec("drain.gds"), "v"));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  server.drain();
  EXPECT_TRUE(server.draining());

  // The in-flight job was answered (as cancelled), not dropped.
  victimCall.join();
  ASSERT_TRUE(victimResp.has_value()) << victim.error();
  EXPECT_FALSE(victimResp->ok);
  EXPECT_EQ("cancelled", field(*victimResp, "status")->str);

  // New connections are refused outright (accept loop is gone).
  Fd fd = connectTo("127.0.0.1", server.port(), 1.0, &error);
  if (fd.valid()) {
    // A connect may still land in the kernel backlog; no one serves it.
    std::string payload;
    EXPECT_NE(FrameStatus::kOk, readFrame(fd.get(), &payload, 0.5));
  }
}

TEST_F(ServerTest, ShutdownRequestFlagsTheOwningLoop) {
  Server server(baseConfig());
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  EXPECT_FALSE(server.shutdownRequested());
  Client client("127.0.0.1", server.port());
  ASSERT_TRUE(client.connected()) << client.error();
  Request shutdown;
  shutdown.type = Request::Type::kShutdown;
  const auto resp = client.call(shutdown);
  ASSERT_TRUE(resp.has_value()) << client.error();
  EXPECT_TRUE(resp->ok);
  EXPECT_TRUE(server.shutdownRequested());
  server.drain();
}

TEST_F(ServerTest, ReloadAppliesHotKeysAndReportsColdOnesUnchanged) {
  const std::string cfgPath = path("serve.cfg");
  {
    std::ofstream out(cfgPath);
    out << "max_inflight_per_client = 2\nframe_timeout_s = 5\n";
  }
  ServeConfig cfg = baseConfig();
  std::vector<std::string> errors;
  ASSERT_TRUE(ServeConfig::loadFile(cfgPath, &cfg, &errors));
  ASSERT_TRUE(errors.empty());
  Server server(cfg);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  {
    std::ofstream out(cfgPath);
    out << "max_inflight_per_client = 7\nframe_timeout_s = 5\n"
        << "port = 1\n";  // cold key: ignored by a hot reload
  }
  const std::string summary = server.reload();
  EXPECT_NE(std::string::npos, summary.find("max_inflight_per_client"))
      << summary;
  EXPECT_EQ(std::string::npos, summary.find("frame_timeout_s")) << summary;
  // Still listening on the original port.
  Client client("127.0.0.1", server.port());
  ASSERT_TRUE(client.connected()) << client.error();
  Request ping;
  ping.type = Request::Type::kPing;
  const auto resp = client.call(ping);
  ASSERT_TRUE(resp.has_value()) << client.error();
  EXPECT_TRUE(resp->ok);
  server.drain();
}

TEST_F(ServerTest, PersistentCacheServesAcrossServerRestart) {
  const std::string cacheDir = path("restart_cache");
  ServeConfig cfg = baseConfig();
  cfg.cacheDir = cacheDir;
  std::string error;
  {
    Server server(cfg);
    ASSERT_TRUE(server.start(&error)) << error;
    Client client("127.0.0.1", server.port());
    ASSERT_TRUE(client.connected()) << client.error();
    const auto resp = client.call(fillRequest(fastSpec("restart1.gds")));
    ASSERT_TRUE(resp.has_value()) << client.error();
    ASSERT_TRUE(resp->ok) << resp->error;
    EXPECT_FALSE(field(*resp, "cacheHit")->boolean);
    server.drain();
  }
  // A brand-new server over the same cache directory: the identical spec
  // hits without re-running the engine, byte-identically.
  Server server(cfg);
  ASSERT_TRUE(server.start(&error)) << error;
  Client client("127.0.0.1", server.port());
  ASSERT_TRUE(client.connected()) << client.error();
  const auto resp = client.call(fillRequest(fastSpec("restart2.gds")));
  ASSERT_TRUE(resp.has_value()) << client.error();
  ASSERT_TRUE(resp->ok) << resp->error;
  EXPECT_TRUE(field(*resp, "cacheHit")->boolean);
  EXPECT_EQ(readFile(path("restart1.gds")), readFile(path("restart2.gds")));
  ASSERT_NE(nullptr, server.persistentCache());
  EXPECT_EQ(1u, server.persistentCache()->counters().loadHits);
  server.drain();
}

}  // namespace
}  // namespace ofl::serve
