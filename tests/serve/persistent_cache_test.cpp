// Persistent result cache tests: restart round-trips, integrity-hash
// rejection of corrupted entries, on-disk LRU budget enforcement, and
// concurrent access from multiple jobs.
#include "serve/persistent_cache.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "service/result_cache.hpp"

namespace ofl::serve {
namespace {

namespace fs = std::filesystem;

std::string freshDir(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / ("ofl_pcache_" + name);
  fs::remove_all(dir);
  return dir.string();
}

// A synthetic cached solution with recognizable geometry.
std::shared_ptr<const service::CachedFill> makeEntry(int seed,
                                                     int rectsPerLayer = 3) {
  layout::Layout chip(geom::Rect{0, 0, 10000, 10000}, 2);
  for (int l = 0; l < 2; ++l) {
    for (int i = 0; i < rectsPerLayer; ++i) {
      const geom::Coord base = seed * 100 + i * 20 + l;
      chip.layer(l).fills.push_back(
          geom::Rect{base, base + 1, base + 10, base + 11});
    }
  }
  fill::FillReport report;
  report.totalSeconds = 0.5 + seed;
  report.fillCount = chip.fillCount();
  report.candidateCount = 2 * report.fillCount;
  report.threadsUsed = 3;
  report.layerTargets = {0.4, 0.45};
  return service::CachedFill::capture(chip, report);
}

std::string onlyFile(const std::string& dir) {
  std::string found;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.is_regular_file()) {
      EXPECT_TRUE(found.empty()) << "expected a single file in " << dir;
      found = e.path().string();
    }
  }
  EXPECT_FALSE(found.empty());
  return found;
}

TEST(PersistentCacheTest, SerializeDeserializeRoundTrips) {
  const auto entry = makeEntry(7);
  const std::string payload = PersistentCache::serialize(*entry);
  const auto back = PersistentCache::deserialize(payload);
  ASSERT_NE(nullptr, back);
  EXPECT_EQ(entry->fillsPerLayer, back->fillsPerLayer);
  EXPECT_EQ(entry->bytes, back->bytes);
  EXPECT_DOUBLE_EQ(entry->report.totalSeconds, back->report.totalSeconds);
  EXPECT_EQ(entry->report.fillCount, back->report.fillCount);
  EXPECT_EQ(entry->report.threadsUsed, back->report.threadsUsed);
  EXPECT_EQ(entry->report.layerTargets, back->report.layerTargets);

  // Trailing garbage and truncation are both malformed.
  EXPECT_EQ(nullptr, PersistentCache::deserialize(payload + "x"));
  EXPECT_EQ(nullptr,
            PersistentCache::deserialize(payload.substr(0, payload.size() / 2)));
  EXPECT_EQ(nullptr, PersistentCache::deserialize(""));
}

TEST(PersistentCacheTest, EntriesSurviveReopen) {
  const std::string dir = freshDir("reopen");
  const auto entry = makeEntry(1);
  {
    PersistentCache cache(dir, 1 << 20);
    ASSERT_TRUE(cache.ok()) << cache.error();
    cache.store(0xabcdef12u, *entry);
    EXPECT_EQ(1u, cache.counters().stores);
  }
  // "Daemon restart": a fresh instance over the same directory.
  PersistentCache cache(dir, 1 << 20);
  ASSERT_TRUE(cache.ok()) << cache.error();
  EXPECT_EQ(1u, cache.counters().entries);
  const auto back = cache.load(0xabcdef12u);
  ASSERT_NE(nullptr, back);
  EXPECT_EQ(entry->fillsPerLayer, back->fillsPerLayer);
  EXPECT_EQ(1u, cache.counters().loadHits);
  // Wrong key misses without touching the stored entry.
  EXPECT_EQ(nullptr, cache.load(0x12345u));
}

TEST(PersistentCacheTest, BitFlippedEntryQuarantinedNotServed) {
  const std::string dir = freshDir("bitflip");
  {
    PersistentCache cache(dir, 1 << 20);
    ASSERT_TRUE(cache.ok()) << cache.error();
    cache.store(42, *makeEntry(2));
  }
  // Flip one payload byte on disk.
  const std::string path = onlyFile(dir);
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekg(0, std::ios::end);
    const auto size = static_cast<long long>(f.tellg());
    f.seekp(size - 5);
    char c = 0;
    f.seekg(size - 5);
    f.read(&c, 1);
    f.seekp(size - 5);
    c = static_cast<char>(c ^ 0x40);
    f.write(&c, 1);
  }
  PersistentCache cache(dir, 1 << 20);
  ASSERT_TRUE(cache.ok()) << cache.error();
  EXPECT_EQ(nullptr, cache.load(42));
  const auto c = cache.counters();
  EXPECT_EQ(1u, c.quarantined);
  EXPECT_EQ(0u, c.loadHits);
  EXPECT_EQ(0u, c.entries);
  // The corrupt file was moved aside, not deleted and not left in place.
  EXPECT_FALSE(fs::exists(path));
  EXPECT_TRUE(fs::exists(fs::path(dir) / "quarantine"));
  // A bit flip degrades to a miss forever, not just once.
  EXPECT_EQ(nullptr, cache.load(42));
}

TEST(PersistentCacheTest, LruEnforcesByteBudgetOnDisk) {
  const std::string dir = freshDir("lru");
  const auto entry = makeEntry(3);
  const std::size_t fileBytes = PersistentCache::serialize(*entry).size() + 36;
  // Budget for roughly three entries.
  PersistentCache cache(dir, 3 * fileBytes + fileBytes / 2);
  ASSERT_TRUE(cache.ok()) << cache.error();
  for (std::uint64_t key = 1; key <= 8; ++key) cache.store(key, *entry);
  const auto c = cache.counters();
  EXPECT_GT(c.evictions, 0u);
  EXPECT_LE(c.bytesUsed, c.byteBudget);
  EXPECT_GE(c.entries, 1u);
  EXPECT_LT(c.entries, 8u);
  // The most recently stored key survived; the earliest ones were evicted.
  EXPECT_NE(nullptr, cache.load(8));
  EXPECT_EQ(nullptr, cache.load(1));
  // On-disk file count matches the index.
  std::size_t files = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.is_regular_file()) ++files;
  }
  EXPECT_EQ(cache.counters().entries, files);
}

TEST(PersistentCacheTest, ZeroBudgetDisablesPersistence) {
  const std::string dir = freshDir("disabled");
  PersistentCache cache(dir, 0);
  ASSERT_TRUE(cache.ok()) << cache.error();
  cache.store(1, *makeEntry(4));
  EXPECT_EQ(nullptr, cache.load(1));
  EXPECT_EQ(0u, cache.counters().stores);
}

TEST(PersistentCacheTest, ConcurrentLoadsAndStoresStayConsistent) {
  const std::string dir = freshDir("concurrent");
  PersistentCache cache(dir, 8u << 20);
  ASSERT_TRUE(cache.ok()) << cache.error();
  constexpr int kThreads = 4;
  constexpr int kOps = 50;
  std::vector<std::thread> threads;
  std::atomic<int> hits{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const auto entry = makeEntry(t);
      for (int i = 0; i < kOps; ++i) {
        const std::uint64_t key = static_cast<std::uint64_t>(i % 8);
        cache.store(key, *entry);
        if (cache.load(key) != nullptr) hits.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  // Every probe follows a store of the same key: all must hit (stores of
  // other payloads under the same key are still valid entries).
  EXPECT_EQ(kThreads * kOps, hits.load());
  EXPECT_EQ(8u, cache.counters().entries);
  EXPECT_EQ(0u, cache.counters().quarantined);
}

TEST(PersistentCacheTest, ResultCachePromotesStoreHitsAcrossRestart) {
  const std::string dir = freshDir("promote");
  const auto entry = makeEntry(5);
  {
    PersistentCache store(dir, 1 << 20);
    service::ResultCache cache(1 << 20, &store);
    cache.insert(99, entry);  // write-through
  }
  PersistentCache store(dir, 1 << 20);
  service::ResultCache cache(1 << 20, &store);
  // Memory-cold probe: served from disk, promoted, counted.
  const auto back = cache.find(99);
  ASSERT_NE(nullptr, back);
  EXPECT_EQ(entry->fillsPerLayer, back->fillsPerLayer);
  auto c = cache.counters();
  EXPECT_EQ(1u, c.persistentHits);
  EXPECT_EQ(1u, c.hits);
  // Second probe is a pure memory hit — the store is not consulted again.
  EXPECT_NE(nullptr, cache.find(99));
  c = cache.counters();
  EXPECT_EQ(1u, c.persistentHits);
  EXPECT_EQ(2u, c.hits);
  EXPECT_EQ(1u, store.counters().loads);
}

}  // namespace
}  // namespace ofl::serve
