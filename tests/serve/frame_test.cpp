// Framing and signal-plumbing tests: the length-prefixed protocol must
// reject every malformed byte stream cleanly (hardening satellite of the
// serve PR) and the self-pipe signal helpers must round-trip raised
// signals.
#include "serve/frame.hpp"

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <thread>

#include "serve/net.hpp"
#include "serve/signals.hpp"

namespace ofl::serve {
namespace {

// A connected AF_UNIX pair: frame/net helpers only need a stream fd.
struct Pair {
  Fd a, b;
  Pair() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds));
    a = Fd(fds[0]);
    b = Fd(fds[1]);
  }
};

TEST(FrameTest, LengthPrefixRoundTrips) {
  unsigned char buf[4];
  for (std::uint32_t n : {0u, 1u, 255u, 256u, 1u << 20, 0xdeadbeefu}) {
    encodeLength(n, buf);
    EXPECT_EQ(n, decodeLength(buf));
  }
}

TEST(FrameTest, WriteThenReadRoundTrips) {
  Pair p;
  const std::string payload = "{\"type\":\"ping\"}";
  ASSERT_TRUE(writeFrame(p.a.get(), payload, 1.0));
  std::string got;
  ASSERT_EQ(FrameStatus::kOk, readFrame(p.b.get(), &got, 1.0));
  EXPECT_EQ(payload, got);
}

TEST(FrameTest, CleanCloseAtBoundaryIsEof) {
  Pair p;
  p.a.reset();
  std::string got;
  EXPECT_EQ(FrameStatus::kEof, readFrame(p.b.get(), &got, 1.0));
}

TEST(FrameTest, ZeroLengthFrameRejected) {
  Pair p;
  const unsigned char zero[4] = {0, 0, 0, 0};
  ASSERT_EQ(4, ::send(p.a.get(), zero, 4, 0));
  std::string got;
  EXPECT_EQ(FrameStatus::kBadFrame, readFrame(p.b.get(), &got, 1.0));
}

TEST(FrameTest, OversizedLengthRejectedBeforeAllocation) {
  Pair p;
  unsigned char hdr[4];
  encodeLength(0xffffffffu, hdr);  // 4 GiB advertised
  ASSERT_EQ(4, ::send(p.a.get(), hdr, 4, 0));
  std::string got;
  EXPECT_EQ(FrameStatus::kTooLarge,
            readFrame(p.b.get(), &got, 1.0, /*maxBytes=*/1 << 20));
}

TEST(FrameTest, GarbageHeaderOverLimitRejected) {
  Pair p;
  // "GET " as a length prefix decodes to ~1.2 GB — an HTTP client
  // poking the port must get a clean rejection.
  ASSERT_EQ(4, ::send(p.a.get(), "GET ", 4, 0));
  std::string got;
  EXPECT_EQ(FrameStatus::kTooLarge,
            readFrame(p.b.get(), &got, 1.0, kDefaultMaxFrameBytes));
}

TEST(FrameTest, MidFrameDisconnectIsBadFrame) {
  Pair p;
  unsigned char hdr[4];
  encodeLength(100, hdr);
  ASSERT_EQ(4, ::send(p.a.get(), hdr, 4, 0));
  ASSERT_EQ(10, ::send(p.a.get(), "0123456789", 10, 0));
  p.a.reset();  // die 90 bytes short
  std::string got;
  EXPECT_EQ(FrameStatus::kBadFrame, readFrame(p.b.get(), &got, 1.0));
}

TEST(FrameTest, TruncatedHeaderDisconnectIsBadFrame) {
  Pair p;
  ASSERT_EQ(2, ::send(p.a.get(), "\x00\x00", 2, 0));
  p.a.reset();
  std::string got;
  EXPECT_EQ(FrameStatus::kBadFrame, readFrame(p.b.get(), &got, 1.0));
}

TEST(FrameTest, SlowLorisTimesOutWholeFrame) {
  Pair p;
  // Dribble one byte, then stall: the whole-frame deadline must fire even
  // though the connection stays open and data keeps "trickling".
  unsigned char hdr[4];
  encodeLength(64, hdr);
  ASSERT_EQ(4, ::send(p.a.get(), hdr, 4, 0));
  std::thread dribbler([&] {
    for (int i = 0; i < 3; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(80));
      ::send(p.a.get(), "x", 1, 0);
    }
  });
  std::string got;
  EXPECT_EQ(FrameStatus::kTimeout, readFrame(p.b.get(), &got, 0.3));
  dribbler.join();
}

TEST(FrameTest, BackToBackFramesReadInOrder) {
  Pair p;
  ASSERT_TRUE(writeFrame(p.a.get(), "first", 1.0));
  ASSERT_TRUE(writeFrame(p.a.get(), "second", 1.0));
  std::string got;
  ASSERT_EQ(FrameStatus::kOk, readFrame(p.b.get(), &got, 1.0));
  EXPECT_EQ("first", got);
  ASSERT_EQ(FrameStatus::kOk, readFrame(p.b.get(), &got, 1.0));
  EXPECT_EQ("second", got);
}

TEST(SignalsTest, RaisedSignalsRoundTripThroughPipe) {
  ASSERT_TRUE(installSignalHandlers(/*withReload=*/true));
  EXPECT_EQ(SignalKind::kNone, pollSignal());
  ::raise(SIGHUP);
  EXPECT_EQ(SignalKind::kReload, waitSignal(1.0));
  ::raise(SIGTERM);
  EXPECT_EQ(SignalKind::kDrain, waitSignal(1.0));
  // Drain wins when both are pending.
  ::raise(SIGHUP);
  ::raise(SIGINT);
  EXPECT_EQ(SignalKind::kDrain, waitSignal(1.0));
  EXPECT_EQ(SignalKind::kNone, pollSignal());
  uninstallSignalHandlers();
}

}  // namespace
}  // namespace ofl::serve
