// Property test for the spatial-index fast paths: on random layouts the
// indexed candidate scorer and sizer kernels must reproduce the brute
// scans BIT-identically -- same fill rects, same contest metrics, same
// serialized GDS bytes -- at 1 and 4 threads. This is the determinism
// contract that lets Options::spatialIndex default to true.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "contest/evaluator.hpp"
#include "fill/fill_engine.hpp"
#include "gds/gds_writer.hpp"
#include "verify/layout_gen.hpp"

namespace ofl {
namespace {

layout::DesignRules rules() {
  layout::DesignRules r;
  r.minWidth = 10;
  r.minSpacing = 10;
  r.minArea = 150;
  r.maxFillSize = 200;
  return r;
}

fill::FillEngineOptions engineOptions(bool spatialIndex, int threads) {
  fill::FillEngineOptions o;
  o.windowSize = 600;
  o.rules = rules();
  o.candidate.spatialIndex = spatialIndex;
  o.sizer.spatialIndex = spatialIndex;
  o.numThreads = threads;
  return o;
}

// Dense enough that per-window neighbor sets regularly cross the
// kIndexMinShapes threshold, so the indexed paths actually execute.
layout::Layout randomLayout(std::uint64_t seed) {
  Rng rng(seed);
  testing::LayoutGen::LayoutParams params;
  params.minDieExtent = 1200;
  params.maxDieExtent = 2400;
  params.minLayers = 2;
  params.maxLayers = 3;
  params.minWiresPerLayer = 20;
  params.maxWiresPerLayer = 90;
  return testing::LayoutGen::randomLayout(rng, params);
}

struct RunResult {
  std::vector<std::vector<geom::Rect>> fills;
  std::vector<std::uint8_t> gds;
  contest::RawMetrics raw;
};

RunResult runEngine(const layout::Layout& original, bool spatialIndex,
                    int threads) {
  layout::Layout chip = original;
  fill::FillEngine(engineOptions(spatialIndex, threads)).run(chip);
  RunResult out;
  for (int l = 0; l < chip.numLayers(); ++l) {
    out.fills.push_back(chip.layer(l).fills);
  }
  out.gds = gds::Writer::serialize(chip.toGds());
  const contest::Evaluator evaluator(600, contest::scoreTableFor("s"),
                                     rules());
  out.raw = evaluator.measure(chip);
  return out;
}

void expectIdentical(const RunResult& a, const RunResult& b,
                     std::uint64_t seed, const char* what) {
  ASSERT_EQ(a.fills.size(), b.fills.size()) << what << " seed " << seed;
  for (std::size_t l = 0; l < a.fills.size(); ++l) {
    ASSERT_EQ(a.fills[l], b.fills[l])
        << what << " seed " << seed << " layer " << l;
  }
  EXPECT_EQ(a.gds, b.gds) << what << " seed " << seed;
  EXPECT_EQ(a.raw.overlay, b.raw.overlay) << what << " seed " << seed;
  EXPECT_EQ(a.raw.variation, b.raw.variation) << what << " seed " << seed;
  EXPECT_EQ(a.raw.line, b.raw.line) << what << " seed " << seed;
  EXPECT_EQ(a.raw.outlier, b.raw.outlier) << what << " seed " << seed;
  EXPECT_EQ(a.raw.fillCount, b.raw.fillCount) << what << " seed " << seed;
}

TEST(SpatialIndexPropertyTest, IndexedMatchesBruteOnRandomLayouts) {
  setLogLevel(LogLevel::kWarn);
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const layout::Layout original = randomLayout(seed);
    const RunResult reference = runEngine(original, /*spatialIndex=*/true,
                                          /*threads=*/1);
    expectIdentical(runEngine(original, false, 1), reference, seed,
                    "brute@1");
    expectIdentical(runEngine(original, true, 4), reference, seed,
                    "indexed@4");
    expectIdentical(runEngine(original, false, 4), reference, seed,
                    "brute@4");
  }
}

}  // namespace
}  // namespace ofl
