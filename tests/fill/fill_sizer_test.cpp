#include "fill/fill_sizer.hpp"

#include <gtest/gtest.h>

#include "geometry/boolean.hpp"

namespace ofl::fill {
namespace {

layout::DesignRules rules() {
  layout::DesignRules r;
  r.minWidth = 10;
  r.minSpacing = 10;
  r.minArea = 150;
  r.maxFillSize = 100;
  return r;
}

geom::Area fillArea(const WindowProblem& p, int layer) {
  geom::Area a = 0;
  for (const auto& f : p.fills[static_cast<std::size_t>(layer)]) a += f.area();
  return a;
}

WindowProblem singleLayerProblem(std::vector<geom::Rect> fills,
                                 double target) {
  WindowProblem p;
  p.window = {0, 0, 400, 400};
  p.fillRegions = {geom::Region(p.window)};
  p.wires = {{}};
  p.wireDensity = {0.0};
  p.targetDensity = {target};
  p.fills = {std::move(fills)};
  return p;
}

class FillSizerBackendTest : public ::testing::TestWithParam<bool> {
 protected:
  FillSizer::Options options() const {
    FillSizer::Options o;
    o.useLpSolver = GetParam();
    o.iterations = 3;
    return o;
  }
};

TEST_P(FillSizerBackendTest, ShrinksTowardTargetDensity) {
  // Candidates cover 4 x (100x100) = 40000 = 25% density; target is 15%.
  WindowProblem p = singleLayerProblem(
      {{0, 0, 100, 100}, {150, 0, 250, 100}, {0, 150, 100, 250},
       {150, 150, 250, 250}},
      0.15);
  const geom::Area before = fillArea(p, 0);
  FillSizer(rules(), options()).size(p);
  const geom::Area after = fillArea(p, 0);
  EXPECT_LT(after, before);
  const double density =
      static_cast<double>(after) / static_cast<double>(p.window.area());
  EXPECT_NEAR(density, 0.15, 0.04);
}

TEST_P(FillSizerBackendTest, KeepsSizeWhenBelowTarget) {
  WindowProblem p = singleLayerProblem({{0, 0, 100, 100}}, 0.5);
  FillSizer(rules(), options()).size(p);
  EXPECT_EQ(p.fills[0][0], geom::Rect(0, 0, 100, 100));
}

TEST_P(FillSizerBackendTest, RespectsDrcMinimaWhenShrinking) {
  // Absurdly low target forces maximum shrinking; every fill must stay
  // DRC-legal (Eqns. 9e/9f via Eqn. 12 bounds).
  WindowProblem p = singleLayerProblem(
      {{0, 0, 100, 100}, {150, 0, 250, 100}, {0, 150, 100, 250}}, 0.001);
  FillSizer::Options o = options();
  o.iterations = 6;
  FillSizer(rules(), o).size(p);
  const layout::DesignRules r = rules();
  for (const auto& f : p.fills[0]) {
    EXPECT_GE(f.width(), r.minWidth);
    EXPECT_GE(f.height(), r.minWidth);
    EXPECT_GE(f.area(), r.minArea);
  }
  EXPECT_LT(fillArea(p, 0), 30000);
}

TEST_P(FillSizerBackendTest, ShrinkingReducesOverlay) {
  // One big fill on layer 0 overlapping a layer-1 wire half-way; density
  // target is generous so overlay drives the shrink.
  WindowProblem p;
  p.window = {0, 0, 400, 400};
  p.fillRegions = {geom::Region(p.window), geom::Region(p.window)};
  p.wires = {{}, {{0, 0, 60, 100}}};  // wire on layer 1 under fill's left
  p.wireDensity = {0.0, 60.0 * 100 / (400.0 * 400)};
  p.targetDensity = {0.04, 0.04};  // fill is 100x100 = 0.0625 > target
  p.fills = {{{0, 0, 100, 100}}, {}};

  const geom::Area overlayBefore =
      geom::intersectionArea(p.fills[0], p.wires[1]);
  FillSizer(rules(), options()).size(p);
  const geom::Area overlayAfter =
      geom::intersectionArea(p.fills[0], p.wires[1]);
  EXPECT_LT(overlayAfter, overlayBefore);
}

TEST_P(FillSizerBackendTest, RepairsSpacingViolation) {
  // Two fills 4 apart (rule: 10). Sizing must separate them (Eqn. 13).
  WindowProblem p = singleLayerProblem(
      {{0, 0, 100, 100}, {104, 0, 204, 100}}, 0.12);
  FillSizer(rules(), options()).size(p);
  ASSERT_EQ(p.fills[0].size(), 2u);
  EXPECT_GE(p.fills[0][1].xl - p.fills[0][0].xh, 10);
}

TEST_P(FillSizerBackendTest, DropsFillWhenSpacingUnrepairable) {
  // Two overlapping fills that cannot both stay: even shrunk to the min
  // width, [0,22) and [4,24) cannot clear a 10-DBU gap, so the smaller one
  // must be dropped.
  WindowProblem p = singleLayerProblem(
      {{0, 0, 22, 100}, {4, 0, 24, 100}}, 0.12);
  FillSizer::Stats stats;
  FillSizer(rules(), options()).size(p, &stats);
  EXPECT_EQ(p.fills[0].size(), 1u);
  EXPECT_GE(stats.droppedFills, 1);
}

TEST_P(FillSizerBackendTest, EmptyLayerIsNoop) {
  WindowProblem p = singleLayerProblem({}, 0.5);
  FillSizer::Stats stats;
  FillSizer(rules(), options()).size(p, &stats);
  EXPECT_TRUE(p.fills[0].empty());
  EXPECT_EQ(stats.droppedFills, 0);
}

TEST_P(FillSizerBackendTest, FillsOnlyShrinkNeverGrow) {
  WindowProblem p = singleLayerProblem(
      {{0, 0, 100, 100}, {150, 150, 230, 260}}, 0.02);
  const auto before = p.fills[0];
  FillSizer::Options o = options();
  o.iterations = 4;
  FillSizer(rules(), o).size(p);
  ASSERT_EQ(p.fills[0].size(), before.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_TRUE(before[i].contains(p.fills[0][i]))
        << before[i].str() << " -> " << p.fills[0][i].str();
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, FillSizerBackendTest,
                         ::testing::Values(false, true),
                         [](const auto& info) {
                           return info.param ? "DenseSimplex" : "DualMcf";
                         });

TEST(FillSizerTest, McfAndLpBackendsAgreeOnFinalArea) {
  WindowProblem base = singleLayerProblem(
      {{0, 0, 100, 100}, {150, 0, 250, 80}, {0, 150, 90, 250},
       {200, 200, 300, 300}},
      0.1);
  WindowProblem viaMcf = base;
  WindowProblem viaLp = base;
  FillSizer::Options mcfOpt;
  FillSizer::Options lpOpt;
  lpOpt.useLpSolver = true;
  FillSizer(rules(), mcfOpt).size(viaMcf);
  FillSizer(rules(), lpOpt).size(viaLp);
  // Same relaxation, exact solvers: identical objective-level outcome.
  geom::Area a1 = 0, a2 = 0;
  for (const auto& f : viaMcf.fills[0]) a1 += f.area();
  for (const auto& f : viaLp.fills[0]) a2 += f.area();
  EXPECT_EQ(a1, a2);
}

}  // namespace
}  // namespace ofl::fill
