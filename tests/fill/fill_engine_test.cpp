// Direct FillEngine option tests (integration tests cover the default
// configuration; these pin the option plumbing).
#include "fill/fill_engine.hpp"

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "contest/benchmark_generator.hpp"
#include "density/density_map.hpp"
#include "geometry/boolean.hpp"
#include "layout/litho.hpp"

namespace ofl::fill {
namespace {

class FillEngineOptionsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    setLogLevel(LogLevel::kWarn);
    spec_ = contest::BenchmarkGenerator::spec("tiny");
    options_.windowSize = spec_.windowSize;
    options_.rules = spec_.rules;
  }
  contest::BenchmarkSpec spec_;
  FillEngineOptions options_;
};

TEST_F(FillEngineOptionsTest, MaxDensityCapHonoredEndToEnd) {
  options_.rules.maxDensity = 0.2;
  layout::Layout chip = contest::BenchmarkGenerator::generate(spec_);
  FillEngine(options_).run(chip);
  const layout::WindowGrid grid(chip.die(), spec_.windowSize);
  for (int l = 0; l < chip.numLayers(); ++l) {
    const auto map = density::DensityMap::compute(chip, l, grid);
    const auto wires =
        density::DensityMap::computeFromShapes(chip.layer(l).wires, grid);
    for (int j = 0; j < grid.rows(); ++j) {
      for (int i = 0; i < grid.cols(); ++i) {
        // Windows whose wires already exceed the cap are exempt; all
        // others must respect it (small epsilon for trim rounding).
        if (wires.at(i, j) <= 0.2) {
          EXPECT_LE(map.at(i, j), 0.2 + 0.01)
              << "layer " << l << " window " << i << "," << j;
        }
      }
    }
  }
}

TEST_F(FillEngineOptionsTest, EtaWireFactorReducesWireOverlay) {
  auto wireOverlay = [](const layout::Layout& chip) {
    geom::Area total = 0;
    for (int l = 0; l + 1 < chip.numLayers(); ++l) {
      total += geom::intersectionArea(chip.layer(l).fills,
                                      chip.layer(l + 1).wires);
      total += geom::intersectionArea(chip.layer(l).wires,
                                      chip.layer(l + 1).fills);
    }
    return total;
  };
  layout::Layout normal = contest::BenchmarkGenerator::generate(spec_);
  FillEngine(options_).run(normal);
  options_.sizer.etaWireFactor = 8.0;
  layout::Layout biased = contest::BenchmarkGenerator::generate(spec_);
  FillEngine(options_).run(biased);
  EXPECT_LE(wireOverlay(biased), wireOverlay(normal));
}

TEST_F(FillEngineOptionsTest, UniformCellModeYieldsRepeatedSizes) {
  options_.candidate.uniformCells = true;
  options_.sizer.iterations = 0;
  layout::Layout chip = contest::BenchmarkGenerator::generate(spec_);
  FillEngine(options_).run(chip);
  // Count distinct fill sizes; uniform mode must produce far fewer
  // distinct sizes than fills.
  std::vector<std::pair<geom::Coord, geom::Coord>> sizes;
  for (int l = 0; l < chip.numLayers(); ++l) {
    for (const auto& f : chip.layer(l).fills) {
      sizes.push_back({f.width(), f.height()});
    }
  }
  const std::size_t fills = sizes.size();
  ASSERT_GT(fills, 100u);
  std::sort(sizes.begin(), sizes.end());
  sizes.erase(std::unique(sizes.begin(), sizes.end()), sizes.end());
  // Dozens of distinct sizes (trim + small-cell refinement) against
  // thousands of fills — versus near-one-size-per-fill in default mode.
  EXPECT_LT(sizes.size() * 20, fills);
}

TEST_F(FillEngineOptionsTest, LithoOptionPlumbsThrough) {
  options_.rules.minSpacing = 14;
  const layout::LithoRules band{12, 18};
  options_.candidate.lithoAvoid = band;
  layout::Layout chip = contest::BenchmarkGenerator::generate(spec_);
  FillEngine(options_).run(chip);
  EXPECT_EQ(layout::LithoChecker(band).count(chip), 0u);
}

TEST_F(FillEngineOptionsTest, ReportAccountsAllStages) {
  layout::Layout chip = contest::BenchmarkGenerator::generate(spec_);
  const FillReport report = FillEngine(options_).run(chip);
  EXPECT_GT(report.fillCount, 0u);
  EXPECT_GE(report.candidateCount, report.fillCount);
  EXPECT_GT(report.totalSeconds, 0.0);
  EXPECT_GE(report.totalSeconds + 1e-9, report.planningSeconds +
                                            report.candidateSeconds +
                                            report.sizingSeconds);
  ASSERT_EQ(report.layerTargets.size(),
            static_cast<std::size_t>(chip.numLayers()));
  for (const double td : report.layerTargets) {
    EXPECT_GT(td, 0.0);
    EXPECT_LE(td, 1.0);
  }
  EXPECT_GT(report.sizerStats.solves, 0);
}

TEST_F(FillEngineOptionsTest, ZeroIterationsStillTrimsToTarget) {
  options_.sizer.iterations = 0;
  layout::Layout chip = contest::BenchmarkGenerator::generate(spec_);
  const FillReport report = FillEngine(options_).run(chip);
  const layout::WindowGrid grid(chip.die(), spec_.windowSize);
  const auto map = density::DensityMap::compute(chip, 0, grid);
  // Even without LP passes the exact trim keeps windows near target.
  int off = 0;
  for (int j = 0; j < grid.rows(); ++j) {
    for (int i = 0; i < grid.cols(); ++i) {
      if (map.at(i, j) > report.layerTargets[0] + 0.03) ++off;
    }
  }
  EXPECT_EQ(off, 0);
}

}  // namespace
}  // namespace ofl::fill
