#include "fill/target_planner.hpp"

#include <gtest/gtest.h>

namespace ofl::fill {
namespace {

density::DensityBounds makeBounds(std::vector<double> lower,
                                  std::vector<double> upper) {
  density::DensityBounds b;
  b.lower = std::move(lower);
  b.upper = std::move(upper);
  return b;
}

TEST(TargetPlannerTest, CaseIAllWindowsReachMaxLower) {
  // 2x2 grid; all windows can reach the max lower bound 0.5, so the plan
  // is perfectly uniform with sigma = 0 (paper Eqn. 6).
  const auto bounds =
      makeBounds({0.2, 0.5, 0.3, 0.4}, {0.9, 0.9, 0.9, 0.9});
  const TargetDensityPlanner planner(PlannerWeights{});
  const TargetPlan plan = planner.plan({bounds}, 2, 2);
  ASSERT_EQ(plan.layerTarget.size(), 1u);
  EXPECT_NEAR(plan.layerTarget[0], 0.5, 1e-9);
  for (const double d : plan.windowTarget[0]) {
    EXPECT_NEAR(d, 0.5, 1e-9);
  }
}

TEST(TargetPlannerTest, CaseIIConstrainedWindowClamps) {
  // One window is capped at 0.7 while the max lower bound is 0.9
  // (paper Eqn. 7): the target for that window must be its upper bound.
  const auto bounds =
      makeBounds({0.9, 0.2, 0.2, 0.2}, {1.0, 0.7, 1.0, 1.0});
  const TargetDensityPlanner planner(PlannerWeights{});
  const TargetPlan plan = planner.plan({bounds}, 2, 2);
  const auto& t = plan.windowTarget[0];
  EXPECT_NEAR(t[0], 0.9, 1e-9);         // lower bound binds
  EXPECT_LE(t[1], 0.7 + 1e-9);          // clamped at its cap
  // The planner may trade td below 0.9 to reduce overall spread, but every
  // window target stays within its own bounds.
  for (std::size_t w = 0; w < t.size(); ++w) {
    EXPECT_GE(t[w] + 1e-9, bounds.lower[w]);
    EXPECT_LE(t[w] - 1e-9, bounds.upper[w]);
  }
}

TEST(TargetPlannerTest, SweepBeatsNaiveMaxLowerInCaseII) {
  // Extreme Case II: one hot window at 0.95, everything else capped at
  // 0.3. Naive td = 0.95 leaves a huge outlier; the planner should pick a
  // td scoring at least as well as the naive choice.
  std::vector<double> lower(16, 0.1);
  std::vector<double> upper(16, 0.3);
  lower[5] = 0.95;
  upper[5] = 1.0;
  const auto bounds = makeBounds(lower, upper);
  const TargetDensityPlanner planner(PlannerWeights{});
  const double naive = planner.scoreLayer(bounds, 4, 4, 0.95);
  const TargetPlan plan = planner.plan({bounds}, 4, 4);
  const double chosen = planner.scoreLayer(bounds, 4, 4, plan.layerTarget[0]);
  EXPECT_GE(chosen + 1e-12, naive);
}

TEST(TargetPlannerTest, MultipleLayersPlannedIndependently) {
  const auto dense = makeBounds({0.6, 0.6}, {0.9, 0.9});
  const auto sparse = makeBounds({0.1, 0.2}, {0.8, 0.8});
  const TargetDensityPlanner planner(PlannerWeights{});
  const TargetPlan plan = planner.plan({dense, sparse}, 2, 1);
  ASSERT_EQ(plan.layerTarget.size(), 2u);
  EXPECT_NEAR(plan.layerTarget[0], 0.6, 1e-9);
  EXPECT_NEAR(plan.layerTarget[1], 0.2, 1e-9);
}

TEST(TargetPlannerTest, UniformInputNeedsNoFill) {
  const auto bounds = makeBounds({0.4, 0.4, 0.4, 0.4}, {0.8, 0.8, 0.8, 0.8});
  const TargetDensityPlanner planner(PlannerWeights{});
  const TargetPlan plan = planner.plan({bounds}, 2, 2);
  EXPECT_NEAR(plan.layerTarget[0], 0.4, 1e-9);
}

TEST(TargetPlannerTest, ScoreLayerPerfectUniformityIsMax) {
  const auto bounds = makeBounds({0.3, 0.3}, {0.9, 0.9});
  const PlannerWeights w{};
  const TargetDensityPlanner planner(w);
  const double score = planner.scoreLayer(bounds, 2, 1, 0.5);
  EXPECT_NEAR(score, w.wSigma + w.wLine + w.wOutlier, 1e-9);
}

}  // namespace
}  // namespace ofl::fill
