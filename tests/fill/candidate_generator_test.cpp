#include "fill/candidate_generator.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "geometry/boolean.hpp"

namespace ofl::fill {
namespace {

layout::DesignRules rules() {
  layout::DesignRules r;
  r.minWidth = 10;
  r.minSpacing = 10;
  r.minArea = 150;
  r.maxFillSize = 100;
  return r;
}

// Builds a two-layer window problem over [0,400)^2 with given wires.
WindowProblem makeProblem(std::vector<geom::Rect> wiresL0,
                          std::vector<geom::Rect> wiresL1, double target0,
                          double target1) {
  WindowProblem p;
  p.window = {0, 0, 400, 400};
  const auto free = [&](const std::vector<geom::Rect>& wires) {
    std::vector<geom::Rect> blocked;
    for (const auto& w : wires) blocked.push_back(w.expanded(10));
    const std::vector<geom::Rect> win{p.window};
    return geom::Region::fromDisjoint(
        geom::booleanOp(win, blocked, geom::BoolOp::kSubtract));
  };
  p.fillRegions = {free(wiresL0), free(wiresL1)};
  const auto density = [&](const std::vector<geom::Rect>& wires) {
    return static_cast<double>(geom::unionArea(wires)) /
           static_cast<double>(p.window.area());
  };
  p.wireDensity = {density(wiresL0), density(wiresL1)};
  p.targetDensity = {target0, target1};
  p.wires = {std::move(wiresL0), std::move(wiresL1)};
  return p;
}

TEST(SliceRegionTest, EmptyRegionYieldsNothing) {
  const CandidateGenerator gen(rules(), {});
  EXPECT_TRUE(gen.sliceRegion(geom::Region{}).empty());
}

TEST(SliceRegionTest, SliversBelowMinWidthDiscarded) {
  const CandidateGenerator gen(rules(), {});
  // 12 wide: after the 5-DBU inset on both sides only 2 remain < minWidth.
  EXPECT_TRUE(gen.sliceRegion(geom::Region(geom::Rect{0, 0, 12, 400})).empty());
}

TEST(SliceRegionTest, CellsAreDrcCleanAndInsideRegion) {
  const CandidateGenerator gen(rules(), {});
  const geom::Region region(geom::Rect{0, 0, 350, 270});
  const auto cells = gen.sliceRegion(region);
  ASSERT_FALSE(cells.empty());
  const layout::DesignRules r = rules();
  for (const auto& c : cells) {
    EXPECT_TRUE(r.shapeOk(c)) << c.str();
    EXPECT_LE(c.width(), r.maxFillSize);
    EXPECT_LE(c.height(), r.maxFillSize);
    EXPECT_EQ(geom::Region(c).subtract(region).area(), 0) << c.str();
  }
  EXPECT_TRUE(testutil::pairwiseDisjoint(cells));
}

TEST(SliceRegionTest, CellsRespectMutualSpacing) {
  const CandidateGenerator gen(rules(), {});
  const geom::Region region(std::vector<geom::Rect>{
      {0, 0, 400, 180}, {0, 180, 190, 400}});  // L-shape
  const auto cells = gen.sliceRegion(region);
  ASSERT_GE(cells.size(), 2u);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    for (std::size_t j = i + 1; j < cells.size(); ++j) {
      EXPECT_GE(cells[i].distance(cells[j]), 10.0)
          << cells[i].str() << " vs " << cells[j].str();
    }
  }
}

TEST(SliceRegionTest, NarrowEqualSplitFallsBackToFixedPitchTiling) {
  // minWidth close to maxFillSize: the equal division of the 1000-wide
  // span wants 4 cells of 242 < minWidth. The old fallback emitted one
  // lone maxFillSize cell (ignoring the pitch bookkeeping of the normal
  // path); the unified fallback tiles at maxFillSize pitch, keeping every
  // cell within [minWidth, maxFillSize] and the gutter between cells.
  layout::DesignRules r;
  r.minWidth = 250;
  r.minSpacing = 10;
  r.minArea = 150;
  r.maxFillSize = 300;
  const CandidateGenerator gen(r, {});
  const auto cells =
      gen.sliceRegion(geom::Region(geom::Rect{0, 0, 1010, 310}));
  ASSERT_EQ(cells.size(), 3u);
  for (const auto& c : cells) {
    EXPECT_TRUE(r.shapeOk(c)) << c.str();
    EXPECT_GE(c.width(), r.minWidth);
    EXPECT_LE(c.width(), r.maxFillSize);
  }
  for (std::size_t i = 0; i + 1 < cells.size(); ++i) {
    EXPECT_GE(cells[i + 1].xl - cells[i].xh, r.minSpacing)
        << cells[i].str() << " vs " << cells[i + 1].str();
  }
}

TEST(SliceRegionTest, SpanBetweenMinWidthAndMaxSizeYieldsFullCell) {
  // Same near-degenerate rules, span between minWidth and maxFillSize:
  // the single-cell (k = 1) division stays exact — the fixed-pitch
  // fallback must not kick in below the maxFillSize + gutter threshold.
  layout::DesignRules r;
  r.minWidth = 250;
  r.minSpacing = 10;
  r.minArea = 150;
  r.maxFillSize = 300;
  const CandidateGenerator gen(r, {});
  const auto cells =
      gen.sliceRegion(geom::Region(geom::Rect{0, 0, 270, 270}));
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0], (geom::Rect{5, 5, 265, 265}));
}

TEST(CandidateGeneratorTest, ReachesLambdaTargetWhenSpaceAllows) {
  // Empty window, target density 0.3 with lambda 1.15.
  WindowProblem p = makeProblem({}, {}, 0.3, 0.3);
  CandidateGenerator::Options opt;
  opt.lambda = 1.15;
  const CandidateGenerator gen(rules(), opt);
  gen.generate(p);
  for (int l = 0; l < 2; ++l) {
    geom::Area area = 0;
    for (const auto& f : p.fills[static_cast<std::size_t>(l)]) {
      area += f.area();
    }
    const double density =
        static_cast<double>(area) / static_cast<double>(p.window.area());
    EXPECT_GE(density, 0.3) << "layer " << l;        // at least target
    EXPECT_LE(density, 0.3 * 1.15 + 0.1) << "layer " << l;  // bounded overshoot
  }
}

TEST(CandidateGeneratorTest, ZeroTargetGeneratesNothing) {
  WindowProblem p = makeProblem({}, {}, 0.0, 0.0);
  const CandidateGenerator gen(rules(), {});
  gen.generate(p);
  EXPECT_TRUE(p.fills[0].empty());
  EXPECT_TRUE(p.fills[1].empty());
}

TEST(CandidateGeneratorTest, CandidatesAvoidWires) {
  // Paper Fig. 4/5 setup: wires block part of each layer.
  WindowProblem p = makeProblem({{0, 0, 400, 120}}, {{0, 280, 400, 400}},
                                0.5, 0.5);
  const CandidateGenerator gen(rules(), {});
  gen.generate(p);
  for (int l = 0; l < 2; ++l) {
    for (const auto& f : p.fills[static_cast<std::size_t>(l)]) {
      for (const auto& w : p.wires[static_cast<std::size_t>(l)]) {
        EXPECT_EQ(f.overlapArea(w), 0);
        EXPECT_GE(f.distance(w), 10.0);
      }
    }
  }
}

TEST(CandidateGeneratorTest, CaseIZeroOverlayAchievable) {
  // Fig. 4: wires only in disjoint halves; the shared free region (middle
  // band) is big enough for both layers' small targets, so fill-to-fill
  // overlay of the chosen candidates should be zero.
  WindowProblem p = makeProblem({{0, 0, 400, 100}}, {{0, 300, 400, 400}},
                                0.30, 0.30);
  CandidateGenerator::Options opt;
  opt.lambda = 1.0;
  const CandidateGenerator gen(rules(), opt);
  gen.generate(p);
  ASSERT_FALSE(p.fills[0].empty());
  ASSERT_FALSE(p.fills[1].empty());
  const geom::Area fillFillOverlay =
      geom::intersectionArea(p.fills[0], p.fills[1]);
  EXPECT_EQ(fillFillOverlay, 0);
}

TEST(CandidateGeneratorTest, CaseIIAcceptsOverlayForDensity) {
  // Fig. 5: targets too high for the shared region alone; candidates must
  // spill into wire-adjacent space and some overlay becomes unavoidable,
  // but density still reaches the target.
  WindowProblem p = makeProblem({{0, 0, 400, 180}}, {{0, 220, 400, 400}},
                                0.5, 0.5);
  const CandidateGenerator gen(rules(), {});
  gen.generate(p);
  for (int l = 0; l < 2; ++l) {
    geom::Area area = 0;
    for (const auto& f : p.fills[static_cast<std::size_t>(l)]) {
      area += f.area();
    }
    const double total = p.wireDensity[static_cast<std::size_t>(l)] +
                         static_cast<double>(area) /
                             static_cast<double>(p.window.area());
    EXPECT_GE(total, 0.5) << "layer " << l;
  }
}

TEST(SliceRegionTest, UniformCellsAreAllIdentical) {
  CandidateGenerator::Options opt;
  opt.uniformCells = true;
  const CandidateGenerator gen(rules(), opt);
  const geom::Region region(geom::Rect{0, 0, 800, 700});
  const auto cells = gen.sliceRegion(region);
  ASSERT_GE(cells.size(), 4u);
  const layout::DesignRules r = rules();
  for (const auto& c : cells) {
    EXPECT_EQ(c.width(), r.maxFillSize);
    EXPECT_EQ(c.height(), r.maxFillSize);
  }
  // Fixed pitch: x positions are congruent modulo (size + gutter).
  const geom::Coord pitch = r.maxFillSize + r.minSpacing;
  for (const auto& c : cells) {
    EXPECT_EQ((c.xl - cells[0].xl) % pitch, 0);
  }
}

TEST(SliceRegionTest, UniformCellsDropRemainders) {
  CandidateGenerator::Options opt;
  opt.uniformCells = true;
  const CandidateGenerator gen(rules(), opt);
  // Region smaller than one fixed cell after insets: nothing fits.
  const auto cells =
      gen.sliceRegion(geom::Region(geom::Rect{0, 0, 105, 400}));
  EXPECT_TRUE(cells.empty());
}

TEST(CandidateGeneratorTest, QualityScorePrefersLowOverlayOnEvenLayers) {
  // Layer 1 (even pass) has free space both above layer-0 fills and above
  // empty area; with gamma small, low-overlay candidates must win.
  WindowProblem p = makeProblem({{0, 0, 400, 190}}, {}, 0.0, 0.2);
  CandidateGenerator::Options opt;
  opt.gamma = 0.1;
  opt.lambda = 1.0;
  const CandidateGenerator gen(rules(), opt);
  gen.generate(p);
  ASSERT_FALSE(p.fills[1].empty());
  // All chosen layer-1 candidates should avoid the wire block of layer 0.
  geom::Area overlay = 0;
  for (const auto& f : p.fills[1]) {
    overlay += f.overlapArea({0, 0, 400, 190});
  }
  EXPECT_EQ(overlay, 0);
}

}  // namespace
}  // namespace ofl::fill
