// Property tests for FillSizer on randomized window problems: whatever
// the candidate layout, sizing may only shrink, must respect DRC minima,
// must land at or below target within trim precision, and must never
// create spacing violations that were not already present.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "fill/fill_sizer.hpp"

namespace ofl::fill {
namespace {

layout::DesignRules rules() {
  layout::DesignRules r;
  r.minWidth = 10;
  r.minSpacing = 10;
  r.minArea = 150;
  r.maxFillSize = 120;
  return r;
}

// Random spacing-clean candidate set over a 2-layer window.
WindowProblem randomProblem(Rng& rng) {
  WindowProblem p;
  p.window = {0, 0, 1000, 1000};
  p.fillRegions = {geom::Region(p.window), geom::Region(p.window)};
  p.wires = {{}, {}};
  p.wireDensity = {0.0, 0.0};
  p.targetDensity = {rng.uniformReal(0.02, 0.3), rng.uniformReal(0.02, 0.3)};
  p.fills = {{}, {}};
  // Wires on layer 1 give layer 0 something to trade overlay against.
  const int wireCount = static_cast<int>(rng.uniformInt(0, 4));
  for (int k = 0; k < wireCount; ++k) {
    const geom::Coord w = rng.uniformInt(60, 300);
    const geom::Coord h = rng.uniformInt(60, 300);
    const geom::Coord x = rng.uniformInt(0, 1000 - w);
    const geom::Coord y = rng.uniformInt(0, 1000 - h);
    p.wires[1].push_back({x, y, x + w, y + h});
  }
  // Candidates on a jittered grid, always >= minSpacing apart.
  for (geom::Coord gy = 0; gy + 130 <= 1000; gy += 140) {
    for (geom::Coord gx = 0; gx + 130 <= 1000; gx += 140) {
      if (!rng.bernoulli(0.7)) continue;
      const geom::Coord w = rng.uniformInt(40, 120);
      const geom::Coord h = rng.uniformInt(40, 120);
      p.fills[0].push_back({gx, gy, gx + w, gy + h});
    }
  }
  return p;
}

class SizerPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SizerPropertyTest, InvariantsHold) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    WindowProblem p = randomProblem(rng);
    const std::vector<geom::Rect> before = p.fills[0];
    const double targetArea =
        p.targetDensity[0] * static_cast<double>(p.window.area());

    FillSizer(rules(), {}).size(p);

    // 1. Only shrink, never move outside the original box.
    ASSERT_EQ(p.fills[0].size(), before.size()) << "seed " << GetParam();
    geom::Area after = 0;
    geom::Coord tallest = 0;
    for (std::size_t i = 0; i < before.size(); ++i) {
      EXPECT_TRUE(before[i].contains(p.fills[0][i]))
          << before[i].str() << " -> " << p.fills[0][i].str();
      after += p.fills[0][i].area();
      tallest = std::max(tallest, p.fills[0][i].height());
      // 2. DRC minima.
      EXPECT_TRUE(rules().shapeOk(p.fills[0][i])) << p.fills[0][i].str();
    }

    // 3. Density lands at/below target within one trim quantum (the trim
    // shrinks in whole columns of the tallest fill), unless the floor of
    // DRC-minimum shapes makes the target unreachable from above.
    geom::Area floorArea = 0;
    for (const auto& f : before) {
      const geom::Coord minW = std::max<geom::Coord>(
          rules().minWidth,
          (rules().minArea + f.height() - 1) / f.height());
      floorArea += minW * std::min<geom::Coord>(f.height(), f.height());
    }
    const double reachable =
        std::max(targetArea, static_cast<double>(floorArea));
    EXPECT_LE(static_cast<double>(after),
              reachable + static_cast<double>(tallest) + 1.0)
        << "seed " << GetParam() << " trial " << trial;

    // 4. No spacing violations among sized fills.
    for (std::size_t i = 0; i < p.fills[0].size(); ++i) {
      for (std::size_t j = i + 1; j < p.fills[0].size(); ++j) {
        EXPECT_GE(p.fills[0][i].distance(p.fills[0][j]),
                  static_cast<double>(rules().minSpacing))
            << p.fills[0][i].str() << " vs " << p.fills[0][j].str();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SizerPropertyTest,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u,
                                           606u, 707u, 808u));

}  // namespace
}  // namespace ofl::fill
