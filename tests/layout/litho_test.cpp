#include "layout/litho.hpp"

#include <gtest/gtest.h>

#include "fill/candidate_generator.hpp"

namespace ofl::layout {
namespace {

LithoRules band() { return {12, 18}; }

Layout chipWith(std::vector<geom::Rect> fills,
                std::vector<geom::Rect> wires = {}) {
  Layout chip({0, 0, 1000, 1000}, 1);
  chip.layer(0).fills = std::move(fills);
  chip.layer(0).wires = std::move(wires);
  return chip;
}

TEST(LithoCheckerTest, GapInsideBandFlagged) {
  const Layout chip = chipWith({{0, 0, 100, 100}, {114, 0, 200, 100}});
  const auto hotspots = LithoChecker(band()).check(chip);
  ASSERT_EQ(hotspots.size(), 1u);
  EXPECT_EQ(hotspots[0].gap, 14);
  EXPECT_EQ(hotspots[0].layer, 0);
}

TEST(LithoCheckerTest, GapBelowAndAboveBandClean) {
  EXPECT_EQ(LithoChecker(band()).count(
                chipWith({{0, 0, 100, 100}, {110, 0, 200, 100}})),
            0u);  // gap 10 < 12
  EXPECT_EQ(LithoChecker(band()).count(
                chipWith({{0, 0, 100, 100}, {118, 0, 200, 100}})),
            0u);  // gap 18 >= hi
}

TEST(LithoCheckerTest, VerticalGapsCounted) {
  const Layout chip = chipWith({{0, 0, 100, 100}, {0, 115, 100, 200}});
  const auto hotspots = LithoChecker(band()).check(chip);
  ASSERT_EQ(hotspots.size(), 1u);
  EXPECT_EQ(hotspots[0].gap, 15);
}

TEST(LithoCheckerTest, CornerAdjacencyIgnored) {
  // Diagonal neighbors have no facing edges: not a forbidden-pitch issue.
  const Layout chip = chipWith({{0, 0, 100, 100}, {114, 114, 200, 200}});
  EXPECT_EQ(LithoChecker(band()).count(chip), 0u);
}

TEST(LithoCheckerTest, FillWireGapCountedOnce) {
  const Layout chip =
      chipWith({{0, 0, 100, 100}}, {{113, 0, 200, 100}});
  EXPECT_EQ(LithoChecker(band()).count(chip), 1u);
}

TEST(LithoCheckerTest, WireWireGapNotCounted) {
  const Layout chip = chipWith({}, {{0, 0, 100, 100}, {114, 0, 200, 100}});
  EXPECT_EQ(LithoChecker(band()).count(chip), 0u);
}

TEST(LithoCheckerTest, PairCountedOncePerPair) {
  const Layout chip = chipWith(
      {{0, 0, 100, 100}, {114, 0, 200, 100}, {0, 115, 100, 200}});
  EXPECT_EQ(LithoChecker(band()).count(chip), 2u);
}

TEST(LithoAwareGenerationTest, GutterWidensOutOfBand) {
  // minSpacing 14 lies inside [12, 18): litho-aware slicing must use 18.
  DesignRules rules;
  rules.minWidth = 10;
  rules.minSpacing = 14;
  rules.minArea = 150;
  rules.maxFillSize = 100;
  fill::CandidateGenerator::Options plain;
  fill::CandidateGenerator::Options aware;
  aware.lithoAvoid = band();
  EXPECT_EQ(fill::CandidateGenerator(rules, plain).gutter(), 14);
  EXPECT_EQ(fill::CandidateGenerator(rules, aware).gutter(), 18);

  const geom::Region region(geom::Rect{0, 0, 500, 500});
  const auto cells =
      fill::CandidateGenerator(rules, aware).sliceRegion(region);
  ASSERT_GE(cells.size(), 4u);
  Layout chip({0, 0, 500, 500}, 1);
  chip.layer(0).fills = cells;
  EXPECT_EQ(LithoChecker(band()).count(chip), 0u);
}

TEST(LithoAwareGenerationTest, SpacingOutsideBandUnchanged) {
  DesignRules rules;
  rules.minSpacing = 20;  // already past the band
  fill::CandidateGenerator::Options aware;
  aware.lithoAvoid = band();
  EXPECT_EQ(fill::CandidateGenerator(rules, aware).gutter(), 20);
}

}  // namespace
}  // namespace ofl::layout
