#include "layout/window_grid.hpp"

#include <gtest/gtest.h>

#include "geometry/boolean.hpp"

namespace ofl::layout {
namespace {

TEST(WindowGridTest, ExactDivision) {
  const WindowGrid grid({0, 0, 100, 60}, 20);
  EXPECT_EQ(grid.cols(), 5);
  EXPECT_EQ(grid.rows(), 3);
  EXPECT_EQ(grid.windowCount(), 15);
  EXPECT_EQ(grid.windowRect(0, 0), geom::Rect(0, 0, 20, 20));
  EXPECT_EQ(grid.windowRect(4, 2), geom::Rect(80, 40, 100, 60));
}

TEST(WindowGridTest, PartialEdgeWindowsClipped) {
  const WindowGrid grid({0, 0, 50, 50}, 20);
  EXPECT_EQ(grid.cols(), 3);
  EXPECT_EQ(grid.windowRect(2, 2), geom::Rect(40, 40, 50, 50));
  EXPECT_EQ(grid.windowRect(2, 2).area(), 100);
}

TEST(WindowGridTest, NonZeroOrigin) {
  const WindowGrid grid({-40, 100, 0, 140}, 20);
  EXPECT_EQ(grid.cols(), 2);
  EXPECT_EQ(grid.rows(), 2);
  EXPECT_EQ(grid.windowRect(0, 0), geom::Rect(-40, 100, -20, 120));
}

TEST(WindowGridTest, WindowRangeClamps) {
  const WindowGrid grid({0, 0, 100, 100}, 25);
  int i0, j0, i1, j1;
  grid.windowRange({-10, -10, 300, 30}, i0, j0, i1, j1);
  EXPECT_EQ(i0, 0);
  EXPECT_EQ(i1, 3);
  EXPECT_EQ(j0, 0);
  EXPECT_EQ(j1, 1);
}

TEST(WindowGridTest, BucketClippedSplitsAcrossWindows) {
  const WindowGrid grid({0, 0, 40, 40}, 20);
  const auto buckets = grid.bucketClipped({{10, 10, 30, 30}});
  // The rect spans all four windows.
  int nonEmpty = 0;
  geom::Area total = 0;
  for (const auto& bucket : buckets) {
    if (!bucket.empty()) {
      ++nonEmpty;
      for (const auto& r : bucket) total += r.area();
    }
  }
  EXPECT_EQ(nonEmpty, 4);
  EXPECT_EQ(total, 400);
}

TEST(WindowGridTest, BucketClipStaysInWindow) {
  const WindowGrid grid({0, 0, 60, 60}, 20);
  const auto buckets = grid.bucketClipped({{5, 5, 55, 55}, {0, 0, 60, 8}});
  for (int j = 0; j < grid.rows(); ++j) {
    for (int i = 0; i < grid.cols(); ++i) {
      const geom::Rect w = grid.windowRect(i, j);
      for (const auto& r :
           buckets[static_cast<std::size_t>(grid.flatIndex(i, j))]) {
        EXPECT_TRUE(w.contains(r));
      }
    }
  }
}

TEST(WindowGridTest, CoveredAreaCountsOverlapOnce) {
  const WindowGrid grid({0, 0, 20, 20}, 20);
  // Two crossing wires overlap in a 4x4 square.
  const auto areas =
      grid.coveredAreaPerWindow({{0, 8, 20, 12}, {8, 0, 12, 20}});
  ASSERT_EQ(areas.size(), 1u);
  EXPECT_EQ(areas[0], 20 * 4 + 20 * 4 - 16);
}

TEST(WindowGridTest, CoveredAreaSumsToGlobalUnion) {
  const WindowGrid grid({0, 0, 100, 100}, 30);
  const std::vector<geom::Rect> shapes{
      {5, 5, 95, 15}, {5, 5, 15, 95}, {50, 50, 80, 80}, {70, 70, 99, 99}};
  const auto areas = grid.coveredAreaPerWindow(shapes);
  geom::Area sum = 0;
  for (geom::Area a : areas) sum += a;
  EXPECT_EQ(sum, geom::unionArea(shapes));
}

}  // namespace
}  // namespace ofl::layout
