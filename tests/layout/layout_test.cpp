#include "layout/layout.hpp"

#include <gtest/gtest.h>

#include "gds/gds_reader.hpp"
#include "geometry/boolean.hpp"

namespace ofl::layout {
namespace {

TEST(LayoutTest, ConstructionAndCounts) {
  Layout chip({0, 0, 500, 500}, 3);
  EXPECT_EQ(chip.numLayers(), 3);
  EXPECT_EQ(chip.wireCount(), 0u);
  chip.layer(0).wires.push_back({0, 0, 10, 10});
  chip.layer(2).wires.push_back({0, 0, 10, 10});
  chip.layer(1).fills.push_back({20, 20, 40, 40});
  EXPECT_EQ(chip.wireCount(), 2u);
  EXPECT_EQ(chip.fillCount(), 1u);
  chip.clearFills();
  EXPECT_EQ(chip.fillCount(), 0u);
  EXPECT_EQ(chip.wireCount(), 2u);
}

TEST(LayoutTest, GdsRoundTripPreservesShapes) {
  Layout chip({0, 0, 500, 500}, 2);
  chip.layer(0).wires.push_back({0, 0, 100, 20});
  chip.layer(0).fills.push_back({200, 200, 260, 260});
  chip.layer(1).wires.push_back({50, 0, 70, 300});

  const gds::Library lib = chip.toGds("RT");
  const auto bytes = gds::Writer::serialize(lib);
  const auto parsed = gds::Reader::parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  const Layout back = Layout::fromGds(*parsed, chip.die(), 2);

  EXPECT_EQ(back.layer(0).wires.size(), 1u);
  EXPECT_EQ(back.layer(0).wires[0], geom::Rect(0, 0, 100, 20));
  EXPECT_EQ(back.layer(0).fills.size(), 1u);
  EXPECT_EQ(back.layer(0).fills[0], geom::Rect(200, 200, 260, 260));
  EXPECT_EQ(back.layer(1).wires.size(), 1u);
}

TEST(LayoutTest, FromGdsDecomposesPolygons) {
  gds::Library lib;
  lib.cells.emplace_back();
  gds::Boundary b;
  b.layer = 1;
  b.vertices = {{0, 0}, {10, 0}, {10, 5}, {5, 5}, {5, 10}, {0, 10}};
  lib.cells.back().boundaries.push_back(b);
  const Layout chip = Layout::fromGds(lib, {0, 0, 100, 100}, 1);
  geom::Area total = 0;
  for (const auto& r : chip.layer(0).wires) total += r.area();
  EXPECT_EQ(total, 75);
  EXPECT_GE(chip.layer(0).wires.size(), 2u);
}

TEST(LayoutTest, FromGdsIgnoresOutOfRangeLayers) {
  gds::Library lib;
  lib.cells.emplace_back();
  gds::Boundary b;
  b.layer = 9;  // beyond numLayers
  b.vertices = {{0, 0}, {10, 0}, {10, 10}, {0, 10}};
  lib.cells.back().boundaries.push_back(b);
  const Layout chip = Layout::fromGds(lib, {0, 0, 100, 100}, 2);
  EXPECT_EQ(chip.wireCount(), 0u);
}

}  // namespace
}  // namespace ofl::layout
