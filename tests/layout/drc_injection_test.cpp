// Fault-injection property tests for the DRC checker: start from a known
// clean layout, inject one specific violation, and require the checker to
// find exactly that class. Guards against silent detector regressions.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "layout/drc_checker.hpp"

namespace ofl::layout {
namespace {

DesignRules rules() {
  DesignRules r;
  r.minWidth = 10;
  r.minSpacing = 10;
  r.minArea = 150;
  r.maxFillSize = 120;
  return r;
}

// Clean layout: a grid of 50x50 fills at pitch 80 over a 2000^2 die.
Layout cleanChip() {
  Layout chip({0, 0, 2000, 2000}, 1);
  for (geom::Coord y = 40; y + 50 <= 1960; y += 80) {
    for (geom::Coord x = 40; x + 50 <= 1960; x += 80) {
      chip.layer(0).fills.push_back({x, y, x + 50, y + 50});
    }
  }
  return chip;
}

bool onlyKind(const std::vector<DrcViolation>& vs, DrcViolationKind kind) {
  if (vs.empty()) return false;
  for (const auto& v : vs) {
    if (v.kind != kind) return false;
  }
  return true;
}

TEST(DrcInjectionTest, BaselineIsClean) {
  EXPECT_TRUE(DrcChecker(rules()).check(cleanChip()).empty());
}

TEST(DrcInjectionTest, InjectThinFill) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    Layout chip = cleanChip();
    auto& victim = chip.layer(0).fills[static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<long long>(chip.layer(0).fills.size()) - 1))];
    victim.xh = victim.xl + rng.uniformInt(1, 9);  // below min width
    const auto vs = DrcChecker(rules()).check(chip);
    ASSERT_FALSE(vs.empty()) << "trial " << trial;
    bool sawWidth = false;
    for (const auto& v : vs) {
      if (v.kind == DrcViolationKind::kMinWidth) sawWidth = true;
    }
    EXPECT_TRUE(sawWidth) << "trial " << trial;
  }
}

TEST(DrcInjectionTest, InjectSmallAreaSquare) {
  Layout chip = cleanChip();
  // 12x12 = 144 < 150 but width >= 10: pure area violation.
  chip.layer(0).fills[0] = {0, 0, 12, 12};
  const auto vs = DrcChecker(rules()).check(chip);
  EXPECT_TRUE(onlyKind(vs, DrcViolationKind::kMinArea));
}

TEST(DrcInjectionTest, InjectSpacingPinch) {
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    Layout chip = cleanChip();
    // Pick a fill not in the last column and stretch it toward its right
    // neighbor, leaving a gap in [1, 9].
    const std::size_t idx = static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<long long>(chip.layer(0).fills.size()) - 2));
    auto& victim = chip.layer(0).fills[idx];
    if (chip.layer(0).fills[idx + 1].yl != victim.yl) continue;  // row end
    victim.xh = chip.layer(0).fills[idx + 1].xl - rng.uniformInt(1, 9);
    const auto vs = DrcChecker(rules()).check(chip);
    EXPECT_TRUE(onlyKind(vs, DrcViolationKind::kSpacingFillFill))
        << "trial " << trial;
  }
}

TEST(DrcInjectionTest, InjectOverlapPair) {
  Layout chip = cleanChip();
  geom::Rect clone = chip.layer(0).fills[10];
  clone.xl += 5;
  clone.xh += 5;
  chip.layer(0).fills.push_back(clone);
  const auto vs = DrcChecker(rules()).check(chip);
  EXPECT_TRUE(onlyKind(vs, DrcViolationKind::kOverlapSameLayer));
}

TEST(DrcInjectionTest, InjectWireEncroachment) {
  Layout chip = cleanChip();
  // Drop a wire 5 DBU right of fill 0 and exactly 10 DBU (legal) left of
  // the next fill in the row.
  const geom::Rect f = chip.layer(0).fills[0];
  chip.layer(0).wires.push_back({f.xh + 5, f.yl, f.xh + 20, f.yh});
  const auto vs = DrcChecker(rules()).check(chip);
  bool sawWireSpacing = false;
  for (const auto& v : vs) {
    if (v.kind == DrcViolationKind::kSpacingFillWire) sawWireSpacing = true;
    // Injected wire may also pinch other fills; all reports must be
    // spacing-class.
    EXPECT_TRUE(v.kind == DrcViolationKind::kSpacingFillWire ||
                v.kind == DrcViolationKind::kSpacingFillFill);
  }
  EXPECT_TRUE(sawWireSpacing);
}

TEST(DrcInjectionTest, InjectEscapee) {
  Layout chip = cleanChip();
  chip.layer(0).fills.push_back({1990, 1990, 2040, 2040});
  const auto vs = DrcChecker(rules()).check(chip);
  bool sawOutside = false;
  for (const auto& v : vs) {
    if (v.kind == DrcViolationKind::kOutsideDie) sawOutside = true;
  }
  EXPECT_TRUE(sawOutside);
}

TEST(DrcInjectionTest, EveryInjectionDetectedUnderRandomSampling) {
  // Randomized meta-test: any random single mutation of a clean layout
  // that breaks a rule must be caught; mutations that keep all rules must
  // stay clean.
  Rng rng(99);
  for (int trial = 0; trial < 40; ++trial) {
    Layout chip = cleanChip();
    auto& fills = chip.layer(0).fills;
    auto& victim = fills[static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<long long>(fills.size()) - 1))];
    if (victim.xl > 1700) continue;  // ensure a right-hand neighbor exists
    // Grow the fill rightward; growth > 20 pinches the 30-DBU gap below
    // the 10-DBU rule, growth < 10 is comfortably legal.
    const geom::Coord grow = rng.uniformInt(0, 40);
    victim.xh += grow;
    const auto vs = DrcChecker(rules()).check(chip);
    if (grow > 20) {
      EXPECT_FALSE(vs.empty()) << "trial " << trial << " grow " << grow;
    } else if (grow < 10) {
      EXPECT_TRUE(vs.empty()) << "trial " << trial << " grow " << grow;
    }
  }
}

}  // namespace
}  // namespace ofl::layout
