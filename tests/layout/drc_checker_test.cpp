#include "layout/drc_checker.hpp"

#include <gtest/gtest.h>

namespace ofl::layout {
namespace {

DesignRules rules() {
  DesignRules r;
  r.minWidth = 10;
  r.minSpacing = 10;
  r.minArea = 150;
  r.maxFillSize = 100;
  return r;
}

Layout emptyChip() { return Layout({0, 0, 1000, 1000}, 2); }

bool hasKind(const std::vector<DrcViolation>& vs, DrcViolationKind kind) {
  for (const auto& v : vs) {
    if (v.kind == kind) return true;
  }
  return false;
}

TEST(DrcCheckerTest, CleanLayoutPasses) {
  Layout chip = emptyChip();
  chip.layer(0).wires.push_back({0, 0, 100, 100});
  chip.layer(0).fills.push_back({200, 200, 250, 250});
  chip.layer(0).fills.push_back({270, 200, 320, 250});  // 20 apart
  EXPECT_TRUE(DrcChecker(rules()).check(chip).empty());
}

TEST(DrcCheckerTest, DetectsMinWidth) {
  Layout chip = emptyChip();
  chip.layer(0).fills.push_back({0, 0, 5, 100});
  const auto vs = DrcChecker(rules()).check(chip);
  EXPECT_TRUE(hasKind(vs, DrcViolationKind::kMinWidth));
}

TEST(DrcCheckerTest, DetectsMinArea) {
  Layout chip = emptyChip();
  chip.layer(0).fills.push_back({0, 0, 12, 12});  // 144 < 150
  const auto vs = DrcChecker(rules()).check(chip);
  EXPECT_TRUE(hasKind(vs, DrcViolationKind::kMinArea));
  EXPECT_FALSE(hasKind(vs, DrcViolationKind::kMinWidth));
}

TEST(DrcCheckerTest, DetectsFillFillSpacing) {
  Layout chip = emptyChip();
  chip.layer(0).fills.push_back({0, 0, 50, 50});
  chip.layer(0).fills.push_back({55, 0, 105, 50});  // gap 5 < 10
  const auto vs = DrcChecker(rules()).check(chip);
  EXPECT_TRUE(hasKind(vs, DrcViolationKind::kSpacingFillFill));
}

TEST(DrcCheckerTest, DiagonalSpacingUsesEuclidean) {
  Layout chip = emptyChip();
  chip.layer(0).fills.push_back({0, 0, 50, 50});
  // Corner-to-corner gap: dx=8, dy=8 -> 11.3 > 10, legal.
  chip.layer(0).fills.push_back({58, 58, 110, 110});
  EXPECT_TRUE(DrcChecker(rules()).check(chip).empty());
  // dx=6, dy=6 -> 8.49 < 10, violation.
  chip.layer(0).fills[1] = {56, 56, 110, 110};
  EXPECT_TRUE(hasKind(DrcChecker(rules()).check(chip),
                      DrcViolationKind::kSpacingFillFill));
}

TEST(DrcCheckerTest, DetectsFillWireSpacingAndOverlap) {
  Layout chip = emptyChip();
  chip.layer(0).wires.push_back({0, 0, 50, 50});
  chip.layer(0).fills.push_back({55, 0, 110, 50});  // gap 5 to the wire
  EXPECT_TRUE(hasKind(DrcChecker(rules()).check(chip),
                      DrcViolationKind::kSpacingFillWire));
  chip.layer(0).fills[0] = {40, 0, 100, 50};  // overlapping the wire
  EXPECT_TRUE(hasKind(DrcChecker(rules()).check(chip),
                      DrcViolationKind::kOverlapSameLayer));
}

TEST(DrcCheckerTest, DetectsFillOverlapSameLayer) {
  Layout chip = emptyChip();
  chip.layer(0).fills.push_back({0, 0, 50, 50});
  chip.layer(0).fills.push_back({40, 40, 90, 90});
  EXPECT_TRUE(hasKind(DrcChecker(rules()).check(chip),
                      DrcViolationKind::kOverlapSameLayer));
}

TEST(DrcCheckerTest, CrossLayerOverlapIsLegal) {
  Layout chip = emptyChip();
  chip.layer(0).fills.push_back({0, 0, 50, 50});
  chip.layer(1).fills.push_back({0, 0, 50, 50});  // different layer: fine
  EXPECT_TRUE(DrcChecker(rules()).check(chip).empty());
}

TEST(DrcCheckerTest, DetectsOutsideDie) {
  Layout chip = emptyChip();
  chip.layer(0).fills.push_back({980, 980, 1030, 1030});
  EXPECT_TRUE(hasKind(DrcChecker(rules()).check(chip),
                      DrcViolationKind::kOutsideDie));
}

TEST(DrcCheckerTest, RespectsMaxViolationCap) {
  Layout chip = emptyChip();
  for (int k = 0; k < 30; ++k) {
    chip.layer(0).fills.push_back({k * 30, 0, k * 30 + 5, 100});  // thin
  }
  EXPECT_EQ(DrcChecker(rules()).check(chip, 10).size(), 10u);
}

}  // namespace
}  // namespace ofl::layout
