#include "layout/fill_region.hpp"

#include <gtest/gtest.h>

namespace ofl::layout {
namespace {

DesignRules rules() {
  DesignRules r;
  r.minWidth = 4;
  r.minSpacing = 6;
  r.minArea = 16;
  return r;
}

TEST(FillRegionTest, EmptyLayoutIsAllFree) {
  Layout chip({0, 0, 100, 100}, 1);
  const WindowGrid grid(chip.die(), 50);
  const auto regions = computeFillRegions(chip, 0, grid, rules());
  ASSERT_EQ(regions.size(), 4u);
  for (const auto& region : regions) {
    EXPECT_EQ(region.area(), 2500);
  }
}

TEST(FillRegionTest, WireBlocksInflatedFootprint) {
  Layout chip({0, 0, 100, 100}, 1);
  chip.layer(0).wires.push_back({40, 40, 60, 60});
  const WindowGrid grid(chip.die(), 100);
  const auto regions = computeFillRegions(chip, 0, grid, rules());
  // Blocked: wire expanded by spacing 6 -> 32x32.
  EXPECT_EQ(regions[0].area(), 10000 - 32 * 32);
  // Free space never overlaps the inflated wire.
  for (const auto& r : regions[0].rects()) {
    EXPECT_EQ(r.overlapArea({34, 34, 66, 66}), 0);
  }
}

TEST(FillRegionTest, WireNearBorderBlocksNeighborWindow) {
  Layout chip({0, 0, 100, 100}, 1);
  chip.layer(0).wires.push_back({45, 10, 49, 20});  // 1 DBU from x=50 border
  const WindowGrid grid(chip.die(), 50);
  const auto regions = computeFillRegions(chip, 0, grid, rules());
  // The right window (index 1) loses the strip [50,55)x[4,26).
  const geom::Area lost = (55 - 50) * (26 - 4);
  EXPECT_EQ(regions[1].area(), 2500 - lost);
}

TEST(FillRegionTest, LayerIndependence) {
  Layout chip({0, 0, 100, 100}, 2);
  chip.layer(0).wires.push_back({0, 0, 100, 50});
  const WindowGrid grid(chip.die(), 100);
  const auto l0 = computeFillRegions(chip, 0, grid, rules());
  const auto l1 = computeFillRegions(chip, 1, grid, rules());
  EXPECT_LT(l0[0].area(), l1[0].area());
  EXPECT_EQ(l1[0].area(), 10000);
}

TEST(FillRegionTest, WholeLayerRegionMatchesWindowSum) {
  Layout chip({0, 0, 120, 120}, 1);
  chip.layer(0).wires.push_back({10, 10, 40, 30});
  chip.layer(0).wires.push_back({70, 80, 110, 95});
  const WindowGrid grid(chip.die(), 40);
  const auto perWindow = computeFillRegions(chip, 0, grid, rules());
  geom::Area sum = 0;
  for (const auto& region : perWindow) sum += region.area();
  const auto whole = computeLayerFillRegion(chip, 0, rules());
  EXPECT_EQ(sum, whole.area());
}

TEST(FillRegionTest, FullyBlockedWindow) {
  Layout chip({0, 0, 40, 40}, 1);
  chip.layer(0).wires.push_back({0, 0, 40, 40});
  const WindowGrid grid(chip.die(), 40);
  const auto regions = computeFillRegions(chip, 0, grid, rules());
  EXPECT_TRUE(regions[0].empty());
}

}  // namespace
}  // namespace ofl::layout
