#include "mcf/dual_lp.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "lp/simplex.hpp"

namespace ofl::mcf {
namespace {

class DualLpTest : public ::testing::TestWithParam<McfBackend> {};

TEST_P(DualLpTest, PaperFig6Example) {
  // Paper Section 3.3.3: min x1 + 2x2 + 3x3 + 4x4 with x1 - x2 >= 5,
  // x4 - x3 >= 6, x in [0,10]^4. Published solution: x = (5, 0, 0, 6).
  DifferentialLp lp;
  lp.addVariable(1, 0, 10);
  lp.addVariable(2, 0, 10);
  lp.addVariable(3, 0, 10);
  lp.addVariable(4, 0, 10);
  lp.addConstraint(0, 1, 5);
  lp.addConstraint(3, 2, 6);
  const DiffLpResult r = DifferentialLpSolver(GetParam()).solve(lp);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.x, (std::vector<Value>{5, 0, 0, 6}));
  EXPECT_EQ(r.objective, 29);
}

TEST_P(DualLpTest, UnconstrainedGoesToCostMinimizingBound) {
  DifferentialLp lp;
  lp.addVariable(3, -4, 9);    // positive cost -> lower bound
  lp.addVariable(-2, -4, 9);   // negative cost -> upper bound
  lp.addVariable(0, 5, 5);     // fixed
  const DiffLpResult r = DifferentialLpSolver(GetParam()).solve(lp);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.x[0], -4);
  EXPECT_EQ(r.x[1], 9);
  EXPECT_EQ(r.x[2], 5);
}

TEST_P(DualLpTest, ChainOfConstraints) {
  // x0 >= x1 + 2 >= x2 + 4 with all costs positive pushes everything down
  // onto the chain of lower bounds.
  DifferentialLp lp;
  lp.addVariable(1, 0, 100);
  lp.addVariable(1, 0, 100);
  lp.addVariable(1, 0, 100);
  lp.addConstraint(0, 1, 2);
  lp.addConstraint(1, 2, 2);
  const DiffLpResult r = DifferentialLpSolver(GetParam()).solve(lp);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.x, (std::vector<Value>{4, 2, 0}));
}

TEST_P(DualLpTest, InfeasibleCycleDetected) {
  // x0 - x1 >= 1 and x1 - x0 >= 1 cannot both hold.
  DifferentialLp lp;
  lp.addVariable(1, 0, 10);
  lp.addVariable(1, 0, 10);
  lp.addConstraint(0, 1, 1);
  lp.addConstraint(1, 0, 1);
  EXPECT_FALSE(DifferentialLpSolver(GetParam()).solve(lp).feasible);
}

TEST_P(DualLpTest, InfeasibleBoundsVsConstraint) {
  // x0 - x1 >= 5 but x0 <= 2 and x1 >= 0.
  DifferentialLp lp;
  lp.addVariable(1, 0, 2);
  lp.addVariable(1, 0, 10);
  lp.addConstraint(0, 1, 5);
  EXPECT_FALSE(DifferentialLpSolver(GetParam()).solve(lp).feasible);
}

TEST_P(DualLpTest, EmptyProblemFeasible) {
  const DifferentialLp lp;
  const DiffLpResult r = DifferentialLpSolver(GetParam()).solve(lp);
  EXPECT_TRUE(r.feasible);
  EXPECT_TRUE(r.x.empty());
}

TEST_P(DualLpTest, NegativeBoundsWork) {
  DifferentialLp lp;
  lp.addVariable(2, -20, -5);
  lp.addVariable(-1, -20, -5);
  lp.addConstraint(1, 0, 3);  // x1 >= x0 + 3
  const DiffLpResult r = DifferentialLpSolver(GetParam()).solve(lp);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.x[0], -20);
  EXPECT_EQ(r.x[1], -5);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, DualLpTest,
    ::testing::Values(McfBackend::kNetworkSimplex,
                      McfBackend::kSuccessiveShortestPath,
                      McfBackend::kCycleCanceling),
    [](const auto& info) {
      switch (info.param) {
        case McfBackend::kNetworkSimplex: return "NetworkSimplex";
        case McfBackend::kSuccessiveShortestPath: return "Ssp";
        case McfBackend::kCycleCanceling: return "CycleCanceling";
      }
      return "Unknown";
    });

TEST(DualLpCrossCheckTest, AgreesWithDenseSimplexOnRandomSystems) {
  Rng rng(2024);
  int feasibleCount = 0;
  for (int trial = 0; trial < 150; ++trial) {
    const int n = static_cast<int>(rng.uniformInt(2, 8));
    DifferentialLp dlp;
    lp::LpModel model;
    for (int v = 0; v < n; ++v) {
      const Value c = rng.uniformInt(-10, 10);
      const Value lo = rng.uniformInt(-5, 8);
      const Value hi = lo + rng.uniformInt(0, 20);
      dlp.addVariable(c, lo, hi);
      model.addVariable(static_cast<double>(c), static_cast<double>(lo),
                        static_cast<double>(hi));
    }
    const int nc = static_cast<int>(rng.uniformInt(0, 2 * n));
    for (int k = 0; k < nc; ++k) {
      const int i = static_cast<int>(rng.uniformInt(0, n - 1));
      int j = static_cast<int>(rng.uniformInt(0, n - 1));
      if (i == j) continue;
      const Value b = rng.uniformInt(-7, 7);
      dlp.addConstraint(i, j, b);
      model.addConstraint({{i, 1.0}, {j, -1.0}}, lp::Sense::kGreaterEqual,
                          static_cast<double>(b));
    }
    const DiffLpResult mcfResult =
        DifferentialLpSolver(McfBackend::kNetworkSimplex).solve(dlp);
    const DiffLpResult sspResult =
        DifferentialLpSolver(McfBackend::kSuccessiveShortestPath).solve(dlp);
    const lp::LpResult lpResult = lp::SimplexSolver().solve(model);

    const bool lpFeasible = lpResult.status == lp::LpStatus::kOptimal;
    ASSERT_EQ(mcfResult.feasible, lpFeasible) << "trial " << trial;
    ASSERT_EQ(sspResult.feasible, lpFeasible) << "trial " << trial;
    if (lpFeasible) {
      ++feasibleCount;
      EXPECT_NEAR(static_cast<double>(mcfResult.objective),
                  lpResult.objective, 1e-5)
          << "trial " << trial;
      EXPECT_EQ(mcfResult.objective, sspResult.objective) << "trial " << trial;
      EXPECT_TRUE(dlp.isFeasible(mcfResult.x)) << "trial " << trial;
      EXPECT_TRUE(dlp.isFeasible(sspResult.x)) << "trial " << trial;
    }
  }
  EXPECT_GT(feasibleCount, 50);  // the generator must exercise both outcomes
}

// Random differential LP on a FIXED constraint topology; only costs,
// bounds and constraint offsets vary with the seed. This is the shape the
// sizer produces round after round, which DualMcfContext's network reuse
// keys on.
DifferentialLp randomLpFixedTopology(Rng& rng) {
  DifferentialLp lp;
  const int n = 6;
  for (int v = 0; v < n; ++v) {
    const Value lo = rng.uniformInt(0, 4);
    lp.addVariable(rng.uniformInt(-5, 9), lo, lo + rng.uniformInt(4, 20));
  }
  lp.addConstraint(0, 1, rng.uniformInt(0, 3));
  lp.addConstraint(1, 2, rng.uniformInt(0, 3));
  lp.addConstraint(3, 4, rng.uniformInt(0, 3));
  lp.addConstraint(4, 5, rng.uniformInt(0, 3));
  lp.addConstraint(0, 5, rng.uniformInt(-2, 2));
  return lp;
}

TEST(DualMcfContextTest, ReuseMatchesFreshSolverRunAfterRun) {
  // The context's in-place network rewrite must be invisible: every solve
  // returns exactly what a from-scratch DifferentialLpSolver returns
  // (same x vector, not just the same objective -- the pipeline's
  // byte-identity contract).
  Rng rng(71);
  DualMcfContext context;
  for (int round = 0; round < 40; ++round) {
    const DifferentialLp lp = randomLpFixedTopology(rng);
    const DiffLpResult fresh =
        DifferentialLpSolver(McfBackend::kNetworkSimplex).solve(lp);
    const DiffLpResult reused = context.solve(lp);
    ASSERT_EQ(reused.feasible, fresh.feasible) << "round " << round;
    if (fresh.feasible) {
      EXPECT_EQ(reused.x, fresh.x) << "round " << round;
      EXPECT_EQ(reused.objective, fresh.objective) << "round " << round;
    }
  }
}

TEST(DualMcfContextTest, TopologyChangeRebuildsCorrectly) {
  // Interleave two different topologies through one context: each solve
  // must still match a fresh solver even though the cached network is
  // invalidated every time.
  Rng rng(72);
  DualMcfContext context;
  for (int round = 0; round < 20; ++round) {
    DifferentialLp lp;
    if (round % 2 == 0) {
      lp = randomLpFixedTopology(rng);
    } else {
      for (int v = 0; v < 3; ++v) {
        lp.addVariable(rng.uniformInt(-4, 6), 0, rng.uniformInt(5, 15));
      }
      lp.addConstraint(2, 0, rng.uniformInt(0, 4));
    }
    const DiffLpResult fresh =
        DifferentialLpSolver(McfBackend::kNetworkSimplex).solve(lp);
    const DiffLpResult reused = context.solve(lp);
    ASSERT_EQ(reused.feasible, fresh.feasible) << "round " << round;
    if (fresh.feasible) {
      EXPECT_EQ(reused.x, fresh.x) << "round " << round;
    }
  }
}

TEST(DualMcfContextTest, WarmStartStaysOptimalAndFeasible) {
  // With warm starts on, the simplex may land on a different optimal
  // vertex, but the canonical-optimum post-pass maps every optimum to the
  // unique componentwise-least solution -- so the warm answer must equal
  // the cold answer EXACTLY, not just in objective.
  Rng rng(73);
  DualMcfContext warm(DualMcfContext::Options{
      McfBackend::kNetworkSimplex, /*warmStart=*/true});
  int feasibleCount = 0;
  int warmCount = 0;
  for (int round = 0; round < 40; ++round) {
    const DifferentialLp lp = randomLpFixedTopology(rng);
    const DiffLpResult cold =
        DifferentialLpSolver(McfBackend::kNetworkSimplex).solve(lp);
    const DiffLpResult hot = warm.solve(lp);
    if (hot.usedWarmStart) ++warmCount;
    ASSERT_EQ(hot.feasible, cold.feasible) << "round " << round;
    if (cold.feasible) {
      ++feasibleCount;
      EXPECT_EQ(hot.x, cold.x) << "round " << round;
      EXPECT_EQ(hot.objective, cold.objective) << "round " << round;
      EXPECT_TRUE(lp.isFeasible(hot.x)) << "round " << round;
    }
  }
  EXPECT_GT(feasibleCount, 20);
  EXPECT_GT(warmCount, 0);  // the retained basis must actually engage
}

TEST(DualMcfContextTest, EarlyExitSkipsUnchangedResolve) {
  // An identical repeat solve on a warm+early context is answered from
  // the sensitivity memo without touching the solver, byte-identically.
  Rng rng(74);
  DualMcfContext context(DualMcfContext::Options{
      McfBackend::kNetworkSimplex, /*warmStart=*/true, /*earlyExit=*/true});
  const DifferentialLp lp = randomLpFixedTopology(rng);
  const DiffLpResult first = context.solve(lp);
  ASSERT_TRUE(first.feasible);
  EXPECT_FALSE(first.usedEarlyExit);
  const DiffLpResult repeat = context.solve(lp);
  EXPECT_TRUE(repeat.usedEarlyExit);
  EXPECT_EQ(repeat.x, first.x);
  EXPECT_EQ(repeat.objective, first.objective);
}

TEST(DualMcfContextTest, EarlyExitDeclinesWhenBoundsChange) {
  // Any bound change disables the memo: the re-solve must run and match
  // a fresh solver on the new LP.
  DualMcfContext context(DualMcfContext::Options{
      McfBackend::kNetworkSimplex, /*warmStart=*/true, /*earlyExit=*/true});
  DifferentialLp lp;
  lp.addVariable(3, 0, 10);
  lp.addVariable(-2, 0, 10);
  lp.addConstraint(0, 1, 2);
  ASSERT_TRUE(context.solve(lp).feasible);

  DifferentialLp moved;
  moved.addVariable(3, 1, 9);  // same costs, tighter box
  moved.addVariable(-2, 0, 10);
  moved.addConstraint(0, 1, 2);
  const DiffLpResult r = context.solve(moved);
  EXPECT_FALSE(r.usedEarlyExit);
  const DiffLpResult fresh =
      DifferentialLpSolver(McfBackend::kNetworkSimplex).solve(moved);
  ASSERT_TRUE(fresh.feasible);
  EXPECT_EQ(r.x, fresh.x);
}

TEST(DualMcfContextTest, EarlyExitOnCostChangeOfFixedVariable) {
  // The sensitivity bound sum |dc_v| * (u_v - l_v) is zero when only
  // fixed (l == u) variables change cost, so the solve is skipped -- and
  // the memoized point's objective must be recomputed under the NEW
  // costs, matching a fresh solve exactly.
  DualMcfContext context(DualMcfContext::Options{
      McfBackend::kNetworkSimplex, /*warmStart=*/true, /*earlyExit=*/true});
  DifferentialLp lp;
  lp.addVariable(5, 7, 7);  // fixed
  lp.addVariable(-1, 0, 10);
  lp.addConstraint(1, 0, -4);
  ASSERT_TRUE(context.solve(lp).feasible);

  DifferentialLp recosted;
  recosted.addVariable(-9, 7, 7);  // only the fixed variable's cost moved
  recosted.addVariable(-1, 0, 10);
  recosted.addConstraint(1, 0, -4);
  const DiffLpResult r = context.solve(recosted);
  EXPECT_TRUE(r.usedEarlyExit);
  const DiffLpResult fresh =
      DifferentialLpSolver(McfBackend::kNetworkSimplex).solve(recosted);
  ASSERT_TRUE(fresh.feasible);
  EXPECT_EQ(r.x, fresh.x);
  EXPECT_EQ(r.objective, fresh.objective);
}

TEST(DualMcfContextTest, FullPivotRefreshIsByteIdentical) {
  // The bench-only full-refresh knob changes pivot bookkeeping cost, not
  // results: every solve must equal the default incremental path.
  Rng rng(75);
  DualMcfContext slow(DualMcfContext::Options{
      McfBackend::kNetworkSimplex, /*warmStart=*/true, /*earlyExit=*/false,
      /*earlyExitTolerance=*/0, /*fullPivotRefresh=*/true});
  DualMcfContext fast(DualMcfContext::Options{
      McfBackend::kNetworkSimplex, /*warmStart=*/true, /*earlyExit=*/false});
  for (int round = 0; round < 30; ++round) {
    const DifferentialLp lp = randomLpFixedTopology(rng);
    const DiffLpResult a = slow.solve(lp);
    const DiffLpResult b = fast.solve(lp);
    ASSERT_EQ(a.feasible, b.feasible) << "round " << round;
    if (a.feasible) EXPECT_EQ(a.x, b.x) << "round " << round;
  }
}

TEST(DualMcfContextTest, EmptyLpIsFeasible) {
  DualMcfContext context;
  const DiffLpResult r = context.solve(DifferentialLp{});
  EXPECT_TRUE(r.feasible);
  EXPECT_TRUE(r.x.empty());
  EXPECT_EQ(r.objective, 0);
}

}  // namespace
}  // namespace ofl::mcf
