#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "mcf/cycle_canceling.hpp"
#include "mcf/network_simplex.hpp"
#include "mcf/ssp.hpp"

namespace ofl::mcf {
namespace {

// All three backends as a parameterized axis.
enum class Backend { kNs, kSsp, kCc };

FlowResult solveWith(Backend b, const Graph& g) {
  switch (b) {
    case Backend::kNs: return NetworkSimplex().solve(g);
    case Backend::kSsp: return SuccessiveShortestPath().solve(g);
    case Backend::kCc: return CycleCanceling().solve(g);
  }
  return {};
}

class McfSolverTest : public ::testing::TestWithParam<Backend> {};

TEST_P(McfSolverTest, SimpleTransport) {
  // One source (4), one sink (-4), two parallel paths of cost 1 and 3,
  // capacities 3 each: send 3 on the cheap path, 1 on the other. Cost 6.
  Graph g;
  const int s = g.addNode(4);
  const int t = g.addNode(-4);
  g.addArc(s, t, 3, 1);
  g.addArc(s, t, 3, 3);
  const FlowResult r = solveWith(GetParam(), g);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_EQ(r.totalCost, 3 * 1 + 1 * 3);
  EXPECT_EQ(r.arcFlow[0], 3);
  EXPECT_EQ(r.arcFlow[1], 1);
}

TEST_P(McfSolverTest, TransshipmentNode) {
  Graph g;
  const int s = g.addNode(5);
  const int mid = g.addNode(0);
  const int t = g.addNode(-5);
  g.addArc(s, mid, 10, 2);
  g.addArc(mid, t, 10, 2);
  g.addArc(s, t, 2, 10);
  const FlowResult r = solveWith(GetParam(), g);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_EQ(r.totalCost, 5 * 4);  // direct arc is never worth it
}

TEST_P(McfSolverTest, NegativeCostArc) {
  // Negative arc from sink side back: optimal uses it at capacity.
  Graph g;
  const int a = g.addNode(2);
  const int b = g.addNode(-2);
  g.addArc(a, b, 5, -3);
  const FlowResult r = solveWith(GetParam(), g);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  // Only 2 units are forced by supply, but pushing more through the
  // negative arc is impossible (no return path), so flow = 2.
  EXPECT_EQ(r.totalCost, -6);
}

TEST_P(McfSolverTest, NegativeCycleSaturates) {
  // Zero supplies but a negative-cost cycle with finite capacity: the
  // optimum saturates the cycle.
  Graph g;
  const int a = g.addNode(0);
  const int b = g.addNode(0);
  g.addArc(a, b, 4, -5);
  g.addArc(b, a, 4, 2);
  const FlowResult r = solveWith(GetParam(), g);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_EQ(r.totalCost, 4 * (-5) + 4 * 2);
}

TEST_P(McfSolverTest, InfeasibleWhenCapacityTooSmall) {
  Graph g;
  const int s = g.addNode(5);
  const int t = g.addNode(-5);
  g.addArc(s, t, 3, 1);
  EXPECT_EQ(solveWith(GetParam(), g).status, SolveStatus::kInfeasible);
}

TEST_P(McfSolverTest, UnbalancedSuppliesRejected) {
  Graph g;
  g.addNode(3);
  g.addNode(-1);
  EXPECT_EQ(solveWith(GetParam(), g).status, SolveStatus::kInfeasible);
}

TEST_P(McfSolverTest, PotentialsAreDualFeasible) {
  Graph g;
  const int s = g.addNode(6);
  const int a = g.addNode(0);
  const int b = g.addNode(-2);
  const int t = g.addNode(-4);
  g.addArc(s, a, 10, 1);
  g.addArc(a, b, 10, 2);
  g.addArc(a, t, 3, 5);
  g.addArc(b, t, 10, 1);
  const FlowResult r = solveWith(GetParam(), g);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  // Residual arcs must have non-negative reduced cost
  // c - pi[tail] + pi[head] >= 0; arcs with flow have the reverse residual.
  for (int arc = 0; arc < g.numArcs(); ++arc) {
    const Arc& e = g.arc(arc);
    const Value rc = e.cost - r.nodePotential[static_cast<std::size_t>(e.tail)] +
                     r.nodePotential[static_cast<std::size_t>(e.head)];
    if (r.arcFlow[static_cast<std::size_t>(arc)] < e.capacity) {
      EXPECT_GE(rc, 0) << "arc " << arc;
    }
    if (r.arcFlow[static_cast<std::size_t>(arc)] > 0) {
      EXPECT_LE(rc, 0) << "arc " << arc;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, McfSolverTest,
                         ::testing::Values(Backend::kNs, Backend::kSsp,
                                           Backend::kCc),
                         [](const auto& info) {
                           switch (info.param) {
                             case Backend::kNs: return "NetworkSimplex";
                             case Backend::kSsp:
                               return "SuccessiveShortestPath";
                             case Backend::kCc: return "CycleCanceling";
                           }
                           return "Unknown";
                         });

TEST(McfCrossCheckTest, RandomGraphsAgree) {
  Rng rng(31337);
  for (int trial = 0; trial < 120; ++trial) {
    Graph g;
    const int n = static_cast<int>(rng.uniformInt(2, 9));
    std::vector<Value> supply(static_cast<std::size_t>(n), 0);
    // Random balanced supplies.
    for (int k = 0; k < n / 2; ++k) {
      const auto i = static_cast<std::size_t>(rng.uniformInt(0, n - 1));
      const auto j = static_cast<std::size_t>(rng.uniformInt(0, n - 1));
      const Value amount = rng.uniformInt(0, 7);
      supply[i] += amount;
      supply[j] -= amount;
    }
    for (int i = 0; i < n; ++i) {
      g.addNode(supply[static_cast<std::size_t>(i)]);
    }
    const int m = static_cast<int>(rng.uniformInt(1, 3 * n));
    for (int k = 0; k < m; ++k) {
      const int u = static_cast<int>(rng.uniformInt(0, n - 1));
      int v = static_cast<int>(rng.uniformInt(0, n - 1));
      if (u == v) v = (v + 1) % n;
      g.addArc(u, v, rng.uniformInt(0, 12), rng.uniformInt(-6, 12));
    }
    const FlowResult rNs = NetworkSimplex().solve(g);
    const FlowResult rSsp = SuccessiveShortestPath().solve(g);
    const FlowResult rCc = CycleCanceling().solve(g);
    ASSERT_EQ(rNs.status == SolveStatus::kOptimal,
              rSsp.status == SolveStatus::kOptimal)
        << "trial " << trial;
    ASSERT_EQ(rNs.status == SolveStatus::kOptimal,
              rCc.status == SolveStatus::kOptimal)
        << "trial " << trial;
    if (rNs.status == SolveStatus::kOptimal) {
      EXPECT_EQ(rNs.totalCost, rSsp.totalCost) << "trial " << trial;
      EXPECT_EQ(rNs.totalCost, rCc.totalCost) << "trial " << trial;
    }
  }
}

TEST(NetworkSimplexResolveTest, WarmResolveMatchesColdObjective) {
  // Re-solve one topology with shifted costs/capacities round after
  // round: resolve() may restart from the retained basis
  // (lastSolveWarm), and whenever it does it must still land on the
  // cold solve's optimal cost.
  Rng rng(5151);
  NetworkSimplex warm;
  int warmCount = 0;
  for (int round = 0; round < 25; ++round) {
    Graph g;
    const int a = g.addNode(4);
    const int b = g.addNode(0);
    const int c = g.addNode(-4);
    g.addArc(a, b, rng.uniformInt(2, 8), rng.uniformInt(-3, 6));
    g.addArc(b, c, rng.uniformInt(2, 8), rng.uniformInt(-3, 6));
    g.addArc(a, c, rng.uniformInt(1, 6), rng.uniformInt(-3, 6));
    const FlowResult cold = NetworkSimplex().solve(g);
    const FlowResult hot = warm.resolve(g);
    if (warm.lastSolveWarm()) ++warmCount;
    ASSERT_EQ(hot.status, cold.status) << "round " << round;
    if (cold.status == SolveStatus::kOptimal) {
      EXPECT_EQ(hot.totalCost, cold.totalCost) << "round " << round;
    }
  }
  EXPECT_GT(warmCount, 0);  // the retained basis must actually engage
}

TEST(NetworkSimplexResolveTest, CostOnlyChangeStartsWarm) {
  // Same nodes, arcs, supplies, capacities; only costs move. The retained
  // basis is always primal feasible for the new data, so the warm start
  // must engage, and the optimum must match a cold solver's.
  Rng rng(8181);
  NetworkSimplex warm;
  Graph g;
  const int a = g.addNode(5);
  const int b = g.addNode(0);
  const int c = g.addNode(-5);
  const int ab = g.addArc(a, b, 6, 1);
  const int bc = g.addArc(b, c, 6, 1);
  const int ac = g.addArc(a, c, 4, 3);
  ASSERT_EQ(warm.resolve(g).status, SolveStatus::kOptimal);
  for (int round = 0; round < 10; ++round) {
    for (const int arc : {ab, bc, ac}) {
      g.arc(arc).cost = rng.uniformInt(-4, 7);
    }
    const FlowResult cold = NetworkSimplex().solve(g);
    const FlowResult hot = warm.resolve(g);
    EXPECT_TRUE(warm.lastSolveWarm()) << "round " << round;
    ASSERT_EQ(hot.status, cold.status) << "round " << round;
    EXPECT_EQ(hot.totalCost, cold.totalCost) << "round " << round;
  }
}

TEST(NetworkSimplexResolveTest, CapacityOnlyChangeRecomputesTreeFlows) {
  // Capacity changes can make the old tree flows infeasible; resolve()
  // either repairs them within bounds (warm) or falls back cold. Either
  // way the answer must match a cold solver's optimum.
  Rng rng(8282);
  NetworkSimplex warm;
  Graph g;
  const int a = g.addNode(4);
  const int b = g.addNode(0);
  const int c = g.addNode(-4);
  const int ab = g.addArc(a, b, 8, 2);
  const int bc = g.addArc(b, c, 8, 2);
  const int ac = g.addArc(a, c, 8, 5);
  ASSERT_EQ(warm.resolve(g).status, SolveStatus::kOptimal);
  int warmCount = 0;
  for (int round = 0; round < 15; ++round) {
    for (const int arc : {ab, bc, ac}) {
      g.arc(arc).capacity = rng.uniformInt(2, 9);
    }
    const FlowResult cold = NetworkSimplex().solve(g);
    const FlowResult hot = warm.resolve(g);
    if (warm.lastSolveWarm()) ++warmCount;
    ASSERT_EQ(hot.status, cold.status) << "round " << round;
    if (cold.status == SolveStatus::kOptimal) {
      EXPECT_EQ(hot.totalCost, cold.totalCost) << "round " << round;
    }
  }
  EXPECT_GT(warmCount, 0);
}

TEST(NetworkSimplexResolveTest, SupplySignFlipReorientsArtificials) {
  // A node whose supply changes sign needs its artificial root arc
  // reoriented before the retained basis can be reused; the warm result
  // must still be the cold optimum.
  NetworkSimplex warm;
  Graph g;
  const int a = g.addNode(2);
  const int b = g.addNode(0);
  const int c = g.addNode(-2);
  g.addArc(a, c, 10, 1);
  g.addArc(b, c, 10, 1);
  g.addArc(a, b, 10, 1);
  ASSERT_EQ(warm.resolve(g).status, SolveStatus::kOptimal);

  // Flip b between source and sink. It carried no flow in the first
  // optimum, so its basis arc is the artificial root arc, whose drain
  // direction must reverse on the sign flips.
  int warmCount = 0;
  for (const Value s : {Value{1}, Value{-1}, Value{2}, Value{-2}}) {
    g.setSupply(b, s);
    g.setSupply(c, -2 - s);
    const FlowResult cold = NetworkSimplex().solve(g);
    const FlowResult hot = warm.resolve(g);
    if (warm.lastSolveWarm()) ++warmCount;
    ASSERT_EQ(hot.status, SolveStatus::kOptimal) << "supply " << s;
    EXPECT_EQ(hot.totalCost, cold.totalCost) << "supply " << s;
  }
  EXPECT_GT(warmCount, 0);
}

TEST(NetworkSimplexResolveTest, TopologyChangeFallsBackToCold) {
  NetworkSimplex solver;
  Graph g1;
  const int s1 = g1.addNode(3);
  const int t1 = g1.addNode(-3);
  g1.addArc(s1, t1, 5, 2);
  ASSERT_EQ(solver.resolve(g1).status, SolveStatus::kOptimal);
  EXPECT_FALSE(solver.lastSolveWarm());  // nothing retained yet

  Graph g2;  // different node/arc structure
  const int s2 = g2.addNode(2);
  const int m2 = g2.addNode(0);
  const int t2 = g2.addNode(-2);
  g2.addArc(s2, m2, 4, 1);
  g2.addArc(m2, t2, 4, 1);
  const FlowResult r = solver.resolve(g2);
  EXPECT_FALSE(solver.lastSolveWarm());
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_EQ(r.totalCost, 4);
}

}  // namespace
}  // namespace ofl::mcf
