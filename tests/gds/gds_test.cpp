#include <gtest/gtest.h>

#include <cstdio>

#include "gds/gds_reader.hpp"
#include "gds/gds_records.hpp"
#include "gds/gds_writer.hpp"

namespace ofl::gds {
namespace {

Library sampleLibrary() {
  Library lib;
  lib.name = "TESTLIB";
  lib.cells.emplace_back();
  Cell& cell = lib.cells.back();
  cell.name = "TOP";
  Writer::addRect(cell, 1, {0, 0, 100, 50});
  Writer::addRect(cell, 2, {-30, -40, 10, 20}, /*datatype=*/1);
  Boundary poly;
  poly.layer = 3;
  poly.vertices = {{0, 0}, {10, 0}, {10, 5}, {5, 5}, {5, 10}, {0, 10}};
  cell.boundaries.push_back(poly);
  return lib;
}

TEST(GdsRecordsTest, Real8RoundTrip) {
  for (const double v : {0.0, 1.0, -1.0, 1e-3, 1e-9, 0.25, 1e6, -2.5e-7}) {
    const double back = decodeReal8(encodeReal8(v));
    EXPECT_NEAR(back, v, std::abs(v) * 1e-12 + 1e-300) << "value " << v;
  }
}

TEST(GdsRecordsTest, BigEndianHelpers) {
  std::vector<std::uint8_t> buf;
  putU16(buf, 0x1234);
  putI32(buf, -2);
  EXPECT_EQ(buf[0], 0x12);
  EXPECT_EQ(buf[1], 0x34);
  EXPECT_EQ(getU16(buf.data()), 0x1234);
  EXPECT_EQ(getI32(buf.data() + 2), -2);
}

TEST(GdsWriterTest, StreamSizeMatchesSerializedBytes) {
  const Library lib = sampleLibrary();
  const auto bytes = Writer::serialize(lib);
  EXPECT_EQ(static_cast<long long>(bytes.size()), Writer::streamSize(lib));
}

TEST(GdsWriterTest, StreamSizeEmptyLibrary) {
  Library lib;
  lib.cells.clear();
  const auto bytes = Writer::serialize(lib);
  EXPECT_EQ(static_cast<long long>(bytes.size()), Writer::streamSize(lib));
}

TEST(GdsWriterTest, DeterministicOutput) {
  const Library lib = sampleLibrary();
  EXPECT_EQ(Writer::serialize(lib), Writer::serialize(lib));
}

TEST(GdsRoundTripTest, ParseRecoverStructure) {
  const Library lib = sampleLibrary();
  const auto bytes = Writer::serialize(lib);
  const auto parsed = Reader::parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->name, "TESTLIB");
  ASSERT_EQ(parsed->cells.size(), 1u);
  const Cell& cell = parsed->cells[0];
  EXPECT_EQ(cell.name, "TOP");
  ASSERT_EQ(cell.boundaries.size(), 3u);
  EXPECT_EQ(cell.boundaries[0].layer, 1);
  EXPECT_EQ(cell.boundaries[0].datatype, 0);
  EXPECT_EQ(cell.boundaries[1].datatype, 1);
  EXPECT_EQ(cell.boundaries[1].vertices[0], (geom::Point{-30, -40}));
  EXPECT_EQ(cell.boundaries[2].vertices.size(), 6u);
  EXPECT_NEAR(parsed->userUnitsPerDbu, lib.userUnitsPerDbu, 1e-12);
  EXPECT_NEAR(parsed->metersPerDbu, lib.metersPerDbu, 1e-18);
}

TEST(GdsRoundTripTest, FileIo) {
  const Library lib = sampleLibrary();
  const std::string path = "/tmp/ofl_gds_test.gds";
  const long long written = Writer::writeFile(lib, path);
  EXPECT_GT(written, 0);
  const auto parsed = Reader::readFile(path);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->cells[0].boundaries.size(), 3u);
  std::remove(path.c_str());
}

TEST(GdsReaderTest, RejectsTruncatedStream) {
  const auto bytes = Writer::serialize(sampleLibrary());
  for (const std::size_t cut : {1ul, 10ul, bytes.size() / 2, bytes.size() - 2}) {
    const std::span<const std::uint8_t> partial(bytes.data(), cut);
    EXPECT_FALSE(Reader::parse(partial).has_value()) << "cut " << cut;
  }
}

TEST(GdsReaderTest, RejectsGarbage) {
  const std::vector<std::uint8_t> junk{0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01};
  EXPECT_FALSE(Reader::parse(junk).has_value());
  EXPECT_FALSE(Reader::parse({}).has_value());
}

TEST(GdsReaderTest, MissingFileFails) {
  EXPECT_FALSE(Reader::readFile("/nonexistent/path.gds").has_value());
}

}  // namespace
}  // namespace ofl::gds
