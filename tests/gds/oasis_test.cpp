#include "gds/oasis.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"

namespace ofl::gds {
namespace {

TEST(VarintTest, UnsignedRoundTrip) {
  for (const std::uint64_t v :
       {0ull, 1ull, 127ull, 128ull, 300ull, 1ull << 20, 1ull << 40,
        ~0ull}) {
    std::vector<std::uint8_t> buf;
    putVarUint(buf, v);
    std::size_t pos = 0;
    const auto back = getVarUint(buf, pos);
    ASSERT_TRUE(back.has_value()) << v;
    EXPECT_EQ(*back, v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(VarintTest, SignedZigzagRoundTrip) {
  for (const std::int64_t v : {0ll, 1ll, -1ll, 63ll, -64ll, 1000000ll,
                               -1000000ll, (1ll << 40), -(1ll << 40)}) {
    std::vector<std::uint8_t> buf;
    putVarInt(buf, v);
    std::size_t pos = 0;
    const auto back = getVarInt(buf, pos);
    ASSERT_TRUE(back.has_value()) << v;
    EXPECT_EQ(*back, v);
  }
}

TEST(VarintTest, SmallMagnitudesAreOneByte) {
  for (const std::int64_t v : {0ll, 1ll, -1ll, 50ll, -63ll}) {
    std::vector<std::uint8_t> buf;
    putVarInt(buf, v);
    EXPECT_EQ(buf.size(), 1u) << v;
  }
}

TEST(VarintTest, TruncationDetected) {
  std::vector<std::uint8_t> buf;
  putVarUint(buf, 1ull << 40);
  buf.pop_back();
  std::size_t pos = 0;
  EXPECT_FALSE(getVarUint(buf, pos).has_value());
}

Library sampleLibrary() {
  Library lib;
  lib.name = "OAS";
  lib.cells.emplace_back();
  Cell& cell = lib.cells.back();
  cell.name = "TOP";
  Writer::addRect(cell, 1, {0, 0, 100, 50});
  Writer::addRect(cell, 1, {200, 0, 300, 50}, 1);
  Writer::addRect(cell, 2, {-50, -60, 10, 20});
  Boundary poly;
  poly.layer = 3;
  poly.vertices = {{0, 0}, {10, 0}, {10, 5}, {5, 5}, {5, 10}, {0, 10}};
  cell.boundaries.push_back(poly);
  cell.srefs.push_back({"SUB", {1000, 2000}});
  Aref aref;
  aref.cellName = "SUB";
  aref.origin = {0, 5000};
  aref.cols = 7;
  aref.rows = 3;
  aref.pitchX = 120;
  aref.pitchY = 140;
  cell.arefs.push_back(aref);
  lib.cells.emplace_back();
  lib.cells.back().name = "SUB";
  Writer::addRect(lib.cells.back(), 1, {0, 0, 80, 80}, 1);
  return lib;
}

// Order-insensitive boundary comparison (the OASIS writer reorders rects
// for delta locality).
void expectSameShapes(const Cell& a, const Cell& b) {
  auto key = [](const Boundary& x) {
    std::vector<std::pair<geom::Coord, geom::Coord>> v;
    for (const geom::Point& p : x.vertices) v.push_back({p.x, p.y});
    std::sort(v.begin(), v.end());
    return std::tuple(x.layer, x.datatype, v);
  };
  std::vector<decltype(key(Boundary{}))> ka, kb;
  for (const auto& x : a.boundaries) ka.push_back(key(x));
  for (const auto& x : b.boundaries) kb.push_back(key(x));
  std::sort(ka.begin(), ka.end());
  std::sort(kb.begin(), kb.end());
  EXPECT_EQ(ka, kb);
}

TEST(OasisTest, RoundTripPreservesEverything) {
  const Library lib = sampleLibrary();
  const auto bytes = OasisWriter::serialize(lib);
  EXPECT_EQ(OasisWriter::streamSize(lib),
            static_cast<long long>(bytes.size()));
  const auto parsed = OasisReader::parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->name, "OAS");
  ASSERT_EQ(parsed->cells.size(), 2u);
  expectSameShapes(parsed->cells[0], lib.cells[0]);
  expectSameShapes(parsed->cells[1], lib.cells[1]);
  ASSERT_EQ(parsed->cells[0].srefs.size(), 1u);
  EXPECT_EQ(parsed->cells[0].srefs[0].origin, (geom::Point{1000, 2000}));
  ASSERT_EQ(parsed->cells[0].arefs.size(), 1u);
  EXPECT_EQ(parsed->cells[0].arefs[0].cols, 7);
  EXPECT_EQ(parsed->cells[0].arefs[0].pitchY, 140);
}

TEST(OasisTest, SmallerThanGdsOnFillData) {
  // Regular fill rects: modal variables + deltas should crush the fixed
  // 44-byte-per-rect GDS encoding.
  Library lib;
  lib.cells.emplace_back();
  Cell& cell = lib.cells.back();
  for (int r = 0; r < 50; ++r) {
    for (int c = 0; c < 50; ++c) {
      Writer::addRect(cell, 1, {c * 300, r * 300, c * 300 + 220, r * 300 + 220},
                      1);
    }
  }
  const long long gdsSize = Writer::streamSize(lib);
  const long long oasisSize = OasisWriter::streamSize(lib);
  EXPECT_LT(oasisSize * 5, gdsSize);  // > 5x smaller
}

TEST(OasisTest, FileIo) {
  const Library lib = sampleLibrary();
  const std::string path = "/tmp/ofl_oasis_test.oas";
  ASSERT_GT(OasisWriter::writeFile(lib, path), 0);
  const auto parsed = OasisReader::readFile(path);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->cells.size(), 2u);
  std::remove(path.c_str());
}

TEST(OasisTest, RejectsBadMagicAndTruncation) {
  const auto bytes = OasisWriter::serialize(sampleLibrary());
  std::vector<std::uint8_t> bad = bytes;
  bad[0] ^= 0xFF;
  EXPECT_FALSE(OasisReader::parse(bad).has_value());
  for (const std::size_t cut : {5ul, 15ul, bytes.size() / 2, bytes.size() - 1}) {
    const std::span<const std::uint8_t> partial(bytes.data(), cut);
    EXPECT_FALSE(OasisReader::parse(partial).has_value()) << cut;
  }
}

TEST(OasisTest, FuzzNeverCrashes) {
  Rng rng(0xA515);
  const auto original = OasisWriter::serialize(sampleLibrary());
  for (int trial = 0; trial < 300; ++trial) {
    auto bytes = original;
    const int flips = static_cast<int>(rng.uniformInt(1, 6));
    for (int f = 0; f < flips; ++f) {
      const auto p = static_cast<std::size_t>(
          rng.uniformInt(0, static_cast<long long>(bytes.size()) - 1));
      bytes[p] ^= static_cast<std::uint8_t>(rng.uniformInt(1, 255));
    }
    (void)OasisReader::parse(bytes);
  }
}

}  // namespace
}  // namespace ofl::gds
