// Fuzz-style robustness tests for the GDS reader and round-trip property
// tests for random libraries. The reader must never crash or hang on
// corrupted bytes — it may only return nullopt or a best-effort parse.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "gds/gds_reader.hpp"
#include "gds/gds_writer.hpp"
#include "verify/layout_gen.hpp"

namespace ofl::gds {
namespace {

Library randomLibrary(Rng& rng) {
  return testing::LayoutGen::randomLibrary(rng);
}

TEST(GdsFuzzTest, RandomLibrariesRoundTrip) {
  Rng rng(0xF00D);
  for (int trial = 0; trial < 50; ++trial) {
    const Library lib = randomLibrary(rng);
    const auto bytes = Writer::serialize(lib);
    ASSERT_EQ(static_cast<long long>(bytes.size()), Writer::streamSize(lib))
        << "trial " << trial;
    const auto parsed = Reader::parse(bytes);
    ASSERT_TRUE(parsed.has_value()) << "trial " << trial;
    ASSERT_EQ(parsed->cells.size(), lib.cells.size());
    for (std::size_t c = 0; c < lib.cells.size(); ++c) {
      ASSERT_EQ(parsed->cells[c].boundaries.size(),
                lib.cells[c].boundaries.size());
      for (std::size_t b = 0; b < lib.cells[c].boundaries.size(); ++b) {
        EXPECT_EQ(parsed->cells[c].boundaries[b].layer,
                  lib.cells[c].boundaries[b].layer);
        EXPECT_EQ(parsed->cells[c].boundaries[b].vertices,
                  lib.cells[c].boundaries[b].vertices);
      }
    }
  }
}

TEST(GdsFuzzTest, RandomByteFlipsNeverCrash) {
  Rng rng(0xBEEF);
  const Library lib = randomLibrary(rng);
  const auto original = Writer::serialize(lib);
  for (int trial = 0; trial < 300; ++trial) {
    auto bytes = original;
    const int flips = static_cast<int>(rng.uniformInt(1, 8));
    for (int f = 0; f < flips; ++f) {
      const auto pos =
          static_cast<std::size_t>(rng.uniformInt(0, static_cast<long long>(bytes.size()) - 1));
      bytes[pos] ^= static_cast<std::uint8_t>(rng.uniformInt(1, 255));
    }
    // Must terminate without crashing; result validity is optional.
    (void)Reader::parse(bytes);
  }
}

TEST(GdsFuzzTest, RandomTruncationsNeverCrash) {
  Rng rng(0xCAFE);
  const Library lib = randomLibrary(rng);
  const auto original = Writer::serialize(lib);
  for (int trial = 0; trial < 200; ++trial) {
    const auto cut =
        static_cast<std::size_t>(rng.uniformInt(0, static_cast<long long>(original.size())));
    const std::span<const std::uint8_t> partial(original.data(), cut);
    if (cut < original.size()) {
      EXPECT_FALSE(Reader::parse(partial).has_value());
    }
  }
}

TEST(GdsFuzzTest, PureRandomBytesNeverCrash) {
  Rng rng(0xD00F);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> junk(
        static_cast<std::size_t>(rng.uniformInt(0, 512)));
    for (auto& b : junk) {
      b = static_cast<std::uint8_t>(rng.uniformInt(0, 255));
    }
    (void)Reader::parse(junk);
  }
}

}  // namespace
}  // namespace ofl::gds
