// Tests for hierarchical fill output: SREF/AREF records, flattening, and
// the lossless array compaction of regular fill patterns.
#include <gtest/gtest.h>

#include <algorithm>

#include "gds/flatten.hpp"
#include "gds/gds_reader.hpp"
#include "gds/gds_writer.hpp"
#include "layout/gds_compact.hpp"

namespace ofl::gds {
namespace {

// Canonical rect list of all datatype-1 boundaries in a flat cell.
std::vector<geom::Rect> fillRects(const Cell& cell) {
  std::vector<geom::Rect> rects;
  for (const Boundary& b : cell.boundaries) {
    if (b.datatype != 1 || b.vertices.size() != 4) continue;
    geom::Coord xl = b.vertices[0].x, xh = b.vertices[0].x;
    geom::Coord yl = b.vertices[0].y, yh = b.vertices[0].y;
    for (const geom::Point& p : b.vertices) {
      xl = std::min(xl, p.x);
      xh = std::max(xh, p.x);
      yl = std::min(yl, p.y);
      yh = std::max(yh, p.y);
    }
    rects.push_back({xl, yl, xh, yh});
  }
  std::sort(rects.begin(), rects.end(), geom::RectYXLess{});
  return rects;
}

TEST(SrefArefTest, WriterReaderRoundTrip) {
  Library lib;
  lib.cells.emplace_back();
  lib.cells[0].name = "TOP";
  lib.cells[0].srefs.push_back({"CHILD", {100, 200}});
  Aref aref;
  aref.cellName = "CHILD";
  aref.origin = {0, 0};
  aref.cols = 4;
  aref.rows = 2;
  aref.pitchX = 50;
  aref.pitchY = 70;
  lib.cells[0].arefs.push_back(aref);
  lib.cells.emplace_back();
  lib.cells[1].name = "CHILD";
  Writer::addRect(lib.cells[1], 1, {0, 0, 30, 40}, 1);

  const auto bytes = Writer::serialize(lib);
  EXPECT_EQ(static_cast<long long>(bytes.size()), Writer::streamSize(lib));
  const auto parsed = Reader::parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->cells.size(), 2u);
  ASSERT_EQ(parsed->cells[0].srefs.size(), 1u);
  EXPECT_EQ(parsed->cells[0].srefs[0].cellName, "CHILD");
  EXPECT_EQ(parsed->cells[0].srefs[0].origin, (geom::Point{100, 200}));
  ASSERT_EQ(parsed->cells[0].arefs.size(), 1u);
  const Aref& back = parsed->cells[0].arefs[0];
  EXPECT_EQ(back.cols, 4);
  EXPECT_EQ(back.rows, 2);
  EXPECT_EQ(back.pitchX, 50);
  EXPECT_EQ(back.pitchY, 70);
}

TEST(FlattenTest, ExpandsArefGrid) {
  Library lib;
  lib.cells.emplace_back();
  lib.cells[0].name = "TOP";
  Aref aref;
  aref.cellName = "CHILD";
  aref.origin = {10, 20};
  aref.cols = 3;
  aref.rows = 2;
  aref.pitchX = 100;
  aref.pitchY = 200;
  lib.cells[0].arefs.push_back(aref);
  lib.cells.emplace_back();
  lib.cells[1].name = "CHILD";
  Writer::addRect(lib.cells[1], 2, {0, 0, 30, 40}, 1);

  const Cell flat = flattenCell(lib, "TOP");
  const auto rects = fillRects(flat);
  ASSERT_EQ(rects.size(), 6u);
  EXPECT_EQ(rects.front(), geom::Rect(10, 20, 40, 60));
  EXPECT_EQ(rects.back(), geom::Rect(210, 220, 240, 260));
}

TEST(FlattenTest, MissingChildSkipped) {
  Library lib;
  lib.cells.emplace_back();
  lib.cells[0].srefs.push_back({"GHOST", {0, 0}});
  const Cell flat = flattenCell(lib);
  EXPECT_TRUE(flat.boundaries.empty());
}

TEST(FlattenTest, CycleBounded) {
  Library lib;
  lib.cells.emplace_back();
  lib.cells[0].name = "A";
  lib.cells[0].srefs.push_back({"A", {10, 0}});  // self-reference
  Writer::addRect(lib.cells[0], 1, {0, 0, 5, 5});
  const Cell flat = flattenCell(lib, "A", /*maxDepth=*/4);
  EXPECT_EQ(flat.boundaries.size(), 5u);  // 1 + 4 expansions, then stop
}

TEST(CompactTest, RegularGridBecomesOneAref) {
  layout::Layout chip({0, 0, 2000, 2000}, 1);
  for (int r = 0; r < 5; ++r) {
    for (int c = 0; c < 8; ++c) {
      chip.layer(0).fills.push_back(
          {c * 110, r * 130, c * 110 + 90, r * 130 + 100});
    }
  }
  const Library lib = layout::toCompactGds(chip);
  ASSERT_GE(lib.cells.size(), 2u);
  const Cell& top = lib.cells[0];
  EXPECT_TRUE(fillRects(top).empty());  // no flat fills remain
  ASSERT_EQ(top.arefs.size(), 1u);
  EXPECT_EQ(top.arefs[0].cols, 8);
  EXPECT_EQ(top.arefs[0].rows, 5);
  EXPECT_EQ(top.arefs[0].pitchX, 110);
  EXPECT_EQ(top.arefs[0].pitchY, 130);
}

TEST(CompactTest, FlattenReproducesFillsExactly) {
  layout::Layout chip({0, 0, 4000, 4000}, 2);
  // Mixture: a grid, an irregular scatter, two sizes, two layers.
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 6; ++c) {
      chip.layer(0).fills.push_back(
          {c * 100, r * 100, c * 100 + 80, r * 100 + 80});
    }
  }
  chip.layer(0).fills.push_back({3000, 3000, 3050, 3120});
  chip.layer(1).fills.push_back({100, 200, 400, 260});
  chip.layer(1).fills.push_back({100, 600, 400, 660});
  chip.layer(0).wires.push_back({2000, 2000, 2500, 2100});

  const Library compact = layout::toCompactGds(chip);
  const layout::Layout back =
      layout::Layout::fromGds(compact, chip.die(), chip.numLayers());
  for (int l = 0; l < chip.numLayers(); ++l) {
    auto expected = chip.layer(l).fills;
    auto actual = back.layer(l).fills;
    std::sort(expected.begin(), expected.end(), geom::RectYXLess{});
    std::sort(actual.begin(), actual.end(), geom::RectYXLess{});
    EXPECT_EQ(actual, expected) << "layer " << l;
  }
  EXPECT_EQ(back.layer(0).wires, chip.layer(0).wires);
}

TEST(CompactTest, IrregularFillsStayFlat) {
  layout::Layout chip({0, 0, 2000, 2000}, 1);
  chip.layer(0).fills.push_back({0, 0, 80, 80});
  chip.layer(0).fills.push_back({117, 13, 197, 93});   // random offsets
  chip.layer(0).fills.push_back({531, 410, 611, 490});
  const Library lib = layout::toCompactGds(chip);
  EXPECT_EQ(lib.cells[0].arefs.size(), 0u);
  EXPECT_EQ(fillRects(lib.cells[0]).size(), 3u);
}

TEST(CompactTest, ShrinksStreamOnRegularFill) {
  layout::Layout chip({0, 0, 20000, 20000}, 1);
  for (int r = 0; r < 40; ++r) {
    for (int c = 0; c < 40; ++c) {
      chip.layer(0).fills.push_back(
          {c * 300, r * 300, c * 300 + 200, r * 300 + 200});
    }
  }
  const long long flat = Writer::streamSize(chip.toGds());
  const long long compact = Writer::streamSize(layout::toCompactGds(chip));
  EXPECT_LT(compact * 10, flat);  // >10x smaller on a pure array
}

}  // namespace
}  // namespace ofl::gds
