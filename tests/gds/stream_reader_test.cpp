// Streaming reader/writer coverage (ISSUE 9 satellite): the chunked
// RecordStream must be insensitive to where chunk boundaries fall, reject
// truncated files and oversized records with clear errors, and the
// StreamReader event path must reconstruct exactly the Library that
// Reader::parse builds — pinned here over 50 random libraries.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "gds/gds_reader.hpp"
#include "gds/gds_writer.hpp"
#include "gds/stream_reader.hpp"
#include "gds/stream_writer.hpp"
#include "verify/layout_gen.hpp"

namespace ofl::gds {
namespace {

Library sampleStreamLibrary() {
  Library lib;
  lib.name = "STREAMLIB";
  lib.cells.emplace_back();
  Cell& cell = lib.cells.back();
  cell.name = "TOP";
  Writer::addRect(cell, 1, {0, 0, 100, 50});
  Writer::addRect(cell, 2, {-30, -40, 10, 20}, /*datatype=*/1);
  Boundary poly;
  poly.layer = 3;
  poly.vertices = {{0, 0}, {10, 0}, {10, 5}, {5, 5}, {5, 10}, {0, 10}};
  cell.boundaries.push_back(poly);
  cell.srefs.push_back({"SUB", {100, 200}});
  cell.arefs.push_back({"SUB", {0, 0}, 3, 2, 40, 50});
  lib.cells.emplace_back();
  lib.cells.back().name = "SUB";
  Writer::addRect(lib.cells.back(), 1, {1, 2, 3, 4});
  return lib;
}

std::string writeTemp(const std::vector<std::uint8_t>& bytes,
                      const std::string& name) {
  const std::string path = "/tmp/" + name;
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return path;
}

std::vector<std::uint8_t> readAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

TEST(StreamReaderTest, ChunkBoundarySplitsAreInvisible) {
  const Library lib = sampleStreamLibrary();
  const auto bytes = Writer::serialize(lib);
  const std::string path = writeTemp(bytes, "ofl_stream_chunks.gds");
  // Chunk sizes deliberately smaller than single records (a BOUNDARY with
  // XY data is tens of bytes), so every record straddles chunk refills.
  for (const std::size_t chunk : {16ul, 17ul, 64ul, 1024ul, bytes.size()}) {
    StreamReader::Options o;
    o.chunkBytes = chunk;
    LibraryCollector collector;
    std::string error;
    ASSERT_TRUE(StreamReader::scan(path, collector, &error, o))
        << "chunk " << chunk << ": " << error;
    EXPECT_EQ(Writer::serialize(collector.library()), bytes)
        << "chunk " << chunk;
  }
  std::remove(path.c_str());
}

TEST(StreamReaderTest, TruncatedFileFailsWithError) {
  const auto bytes = Writer::serialize(sampleStreamLibrary());
  for (const std::size_t cut :
       {1ul, 10ul, bytes.size() / 2, bytes.size() - 2}) {
    const std::vector<std::uint8_t> partial(bytes.begin(),
                                            bytes.begin() + static_cast<long>(cut));
    const std::string path = writeTemp(partial, "ofl_stream_trunc.gds");
    LibraryCollector collector;
    std::string error;
    EXPECT_FALSE(StreamReader::scan(path, collector, &error)) << "cut " << cut;
    EXPECT_FALSE(error.empty()) << "cut " << cut;
    std::remove(path.c_str());
  }
}

TEST(StreamReaderTest, MissingFileFailsWithError) {
  LibraryCollector collector;
  std::string error;
  EXPECT_FALSE(
      StreamReader::scan("/nonexistent/ofl_stream.gds", collector, &error));
  EXPECT_FALSE(error.empty());
}

TEST(StreamReaderTest, OversizedRecordRejectedWhenLimitLowered) {
  const Library lib = sampleStreamLibrary();
  const std::string path =
      writeTemp(Writer::serialize(lib), "ofl_stream_bigrec.gds");
  StreamReader::Options o;
  o.maxRecordBytes = 8;  // the 6-point polygon's XY record exceeds this
  LibraryCollector collector;
  std::string error;
  EXPECT_FALSE(StreamReader::scan(path, collector, &error, o));
  EXPECT_FALSE(error.empty());
  std::remove(path.c_str());
}

// Property: for arbitrary libraries the streamed scan, the in-memory
// parse and the buffered readFile all agree byte-for-byte.
TEST(StreamReaderPropertyTest, MatchesReaderOnRandomLibraries) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    Rng rng(seed);
    const Library lib = testing::LayoutGen::randomLibrary(rng);
    const auto bytes = Writer::serialize(lib);
    const std::string path = writeTemp(bytes, "ofl_stream_prop.gds");

    const auto parsed = Reader::parse(bytes);
    ASSERT_TRUE(parsed.has_value()) << "seed " << seed;
    const auto fromFile = Reader::readFile(path);
    ASSERT_TRUE(fromFile.has_value()) << "seed " << seed;

    StreamReader::Options o;
    o.chunkBytes = 512 + seed * 37;  // vary where refills land
    LibraryCollector collector;
    std::string error;
    ASSERT_TRUE(StreamReader::scan(path, collector, &error, o))
        << "seed " << seed << ": " << error;

    EXPECT_EQ(Writer::serialize(*parsed), bytes) << "seed " << seed;
    EXPECT_EQ(Writer::serialize(*fromFile), bytes) << "seed " << seed;
    EXPECT_EQ(Writer::serialize(collector.library()), bytes)
        << "seed " << seed;
    std::remove(path.c_str());
  }
}

// The append-only StreamWriter must emit exactly the bytes Writer::serialize
// produces — the sharded engine's byte-identity guarantee rests on this.
TEST(StreamWriterTest, ByteIdenticalToBatchSerialize) {
  const Library lib = sampleStreamLibrary();
  Library batch;  // StreamWriter defaults: name OPENFILL, 1e-3 / 1e-9 units
  batch.cells = lib.cells;
  const std::string path = "/tmp/ofl_stream_writer.gds";

  StreamWriter writer(path);
  ASSERT_TRUE(writer.ok());
  for (const Cell& cell : batch.cells) {
    writer.beginCell(cell.name);
    for (const Boundary& b : cell.boundaries) writer.addBoundary(b);
    for (const Sref& s : cell.srefs) writer.addSref(s);
    for (const Aref& a : cell.arefs) writer.addAref(a);
    writer.endCell();
  }
  const long long bytes = writer.finish();
  ASSERT_GT(bytes, 0);

  const auto expected = Writer::serialize(batch);
  EXPECT_EQ(static_cast<long long>(expected.size()), bytes);
  EXPECT_EQ(readAll(path), expected);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ofl::gds
