// ThreadPool unit tests: every index runs exactly once, exceptions
// propagate to the caller, the pool is reusable across many parallelFor
// calls, and the serial (1-thread) configuration runs inline.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"

namespace ofl {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  constexpr std::size_t kItems = 1000;
  std::vector<std::atomic<int>> hits(kItems);
  pool.parallelFor(kItems, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kItems; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, SlotWritesNeedNoSynchronization) {
  // The engine's usage pattern: item i writes only slot i, the caller
  // reduces afterwards. The reduction must see all writes.
  ThreadPool pool(4);
  constexpr std::size_t kItems = 512;
  std::vector<std::size_t> out(kItems, 0);
  pool.parallelFor(kItems, [&](std::size_t i) { out[i] = i * i; });
  for (std::size_t i = 0; i < kItems; ++i) {
    ASSERT_EQ(out[i], i * i);
  }
}

TEST(ThreadPoolTest, ReusableAcrossRuns) {
  ThreadPool pool(3);
  std::atomic<long long> total{0};
  for (int run = 0; run < 50; ++run) {
    pool.parallelFor(100, [&](std::size_t i) {
      total.fetch_add(static_cast<long long>(i));
    });
  }
  EXPECT_EQ(total.load(), 50LL * (99 * 100 / 2));
}

TEST(ThreadPoolTest, PropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallelFor(100,
                       [](std::size_t i) {
                         if (i == 37) throw std::runtime_error("item 37");
                       }),
      std::runtime_error);
  // The pool survives a throwing job and keeps working.
  std::atomic<int> count{0};
  pool.parallelFor(10, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPoolTest, SingleThreadRunsInlineOnCaller) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> ids(8);
  pool.parallelFor(8, [&](std::size_t i) {
    ids[i] = std::this_thread::get_id();
  });
  for (const auto& id : ids) EXPECT_EQ(id, caller);
}

TEST(ThreadPoolTest, ZeroItemsIsNoOp) {
  ThreadPool pool(4);
  bool ran = false;
  pool.parallelFor(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ZeroThreadsResolvesToHardware) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), ThreadPool::hardwareThreads());
  EXPECT_GE(ThreadPool::hardwareThreads(), 1);
}

TEST(ThreadPoolTest, CappedThreadsClampsRequestAndAuto) {
  EXPECT_EQ(ThreadPool::cappedThreads(4, 2), 2);
  EXPECT_EQ(ThreadPool::cappedThreads(2, 4), 2);
  EXPECT_EQ(ThreadPool::cappedThreads(3, 0), 3);   // cap 0 = uncapped
  EXPECT_EQ(ThreadPool::cappedThreads(-5, 2), std::min(
      ThreadPool::hardwareThreads(), 2));          // auto, then capped
  EXPECT_EQ(ThreadPool::cappedThreads(0, 0), ThreadPool::hardwareThreads());
  EXPECT_GE(ThreadPool::cappedThreads(0, 1), 1);   // floor 1 always
}

// Stress tests targeting the late-worker window: with far more threads
// than items, the caller routinely claims every index and reaches the
// completion wait before some workers have even woken for the job, and
// the very next iteration reposts job state. Run under TSan
// (tsan_smoke_thread_pool in tests/CMakeLists.txt) this gives a reuse
// race a realistic chance to be detected.
TEST(ThreadPoolStressTest, TinyJobsOnManyThreads) {
  ThreadPool pool(8);
  std::atomic<long long> total{0};
  constexpr int kRounds = 2000;
  for (int round = 0; round < kRounds; ++round) {
    pool.parallelFor(2, [&](std::size_t i) {
      total.fetch_add(static_cast<long long>(i) + 1);
    });
  }
  EXPECT_EQ(total.load(), kRounds * 3LL);
}

TEST(ThreadPoolStressTest, BackToBackJobsOfVaryingSize) {
  // Alternate sizes so stale-jobSize_ bugs (a late worker using a larger
  // previous size against a freshly reset nextIndex_) would claim
  // out-of-range indices and corrupt the slot vector.
  ThreadPool pool(8);
  constexpr int kRounds = 500;
  for (int round = 0; round < kRounds; ++round) {
    const std::size_t size = (round % 2 == 0) ? 64 : 2;
    std::vector<int> slots(size, 0);
    pool.parallelFor(size, [&](std::size_t i) { slots[i] = 1; });
    for (std::size_t i = 0; i < size; ++i) {
      ASSERT_EQ(slots[i], 1) << "round " << round << " index " << i;
    }
  }
}

TEST(ThreadPoolStressTest, RepostImmediatelyAfterThrow) {
  // A throwing job abandons its tail; the repost that follows must not
  // hand stale indices to workers that woke late for the aborted job.
  ThreadPool pool(8);
  for (int round = 0; round < 200; ++round) {
    EXPECT_THROW(pool.parallelFor(2,
                                  [](std::size_t) {
                                    throw std::runtime_error("boom");
                                  }),
                 std::runtime_error);
    std::atomic<int> count{0};
    pool.parallelFor(3, [&](std::size_t) { count.fetch_add(1); });
    ASSERT_EQ(count.load(), 3) << "round " << round;
  }
}

TEST(ParallelForHelperTest, RunsAllItemsWithAndWithoutThreads) {
  for (const int threads : {1, 2, 4}) {
    std::vector<int> out(64, 0);
    parallelFor(threads, out.size(), [&](std::size_t i) {
      out[i] = static_cast<int>(i) + 1;
    });
    long long sum = std::accumulate(out.begin(), out.end(), 0LL);
    EXPECT_EQ(sum, 64LL * 65 / 2) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace ofl
