// Tests for the locale-independent JSON helpers: escaping, to_chars
// number formatting (non-finite -> 0), and the minimal parser that reads
// back every artifact this project writes.
#include "common/json_util.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

namespace ofl::json {
namespace {

TEST(JsonUtilTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(escaped("plain"), "plain");
  EXPECT_EQ(escaped("a\"b"), "a\\\"b");
  EXPECT_EQ(escaped("a\\b"), "a\\\\b");
  EXPECT_EQ(escaped("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(escaped(std::string("a\x01z")), "a\\u0001z");
}

TEST(JsonUtilTest, NumbersUseDotDecimalAndRoundTrip) {
  std::string out;
  appendNumber(out, 0.05);
  EXPECT_EQ(out, "0.05");  // never "0,05", whatever the C locale says
  out.clear();
  appendNumber(out, static_cast<std::uint64_t>(18446744073709551615ull));
  EXPECT_EQ(out, "18446744073709551615");
  out.clear();
  appendNumber(out, static_cast<std::int64_t>(-42));
  EXPECT_EQ(out, "-42");
}

TEST(JsonUtilTest, NonFiniteNumbersRenderAsZero) {
  std::string out;
  appendNumber(out, std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(out, "0");
  out.clear();
  appendNumber(out, std::numeric_limits<double>::infinity());
  EXPECT_EQ(out, "0");
}

TEST(JsonUtilTest, ParserReadsScalarsArraysAndObjects) {
  const auto doc = Value::parse(
      R"({"n": -1.5e2, "s": "a\"b", "t": true, "z": null,
          "arr": [1, 2, 3], "obj": {"inner": {"k": 7}}})");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("n")->number, -150.0);
  EXPECT_EQ(doc->find("s")->str, "a\"b");
  EXPECT_TRUE(doc->find("t")->boolean);
  EXPECT_EQ(doc->find("z")->kind, Value::Kind::kNull);
  ASSERT_EQ(doc->find("arr")->array.size(), 3u);
  EXPECT_EQ(doc->find("arr")->array[2].number, 3.0);
  EXPECT_EQ(doc->findPath("obj.inner.k")->number, 7.0);
}

TEST(JsonUtilTest, FindPathPrefersLiteralDottedKeys) {
  // Metric names contain dots ("cache.hits"); a literal member must win
  // over nested descent.
  const auto doc =
      Value::parse(R"({"cache.hits": 5, "cache": {"hits": 9}})");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->findPath("cache.hits")->number, 5.0);
}

TEST(JsonUtilTest, ParserRejectsMalformedInput) {
  EXPECT_FALSE(Value::parse("{").has_value());
  EXPECT_FALSE(Value::parse("[1, 2,]").has_value());
  EXPECT_FALSE(Value::parse("{\"a\": }").has_value());
  EXPECT_FALSE(Value::parse("hello").has_value());
  EXPECT_FALSE(Value::parse("{} trailing").has_value());
}

TEST(JsonUtilTest, RoundTripOfEscapedStrings) {
  const std::string original = "stage \"x\"\t\\nested\n";
  std::string doc = "{\"k\": \"";
  appendEscaped(doc, original);
  doc += "\"}";
  const auto parsed = Value::parse(doc);
  ASSERT_TRUE(parsed.has_value()) << doc;
  EXPECT_EQ(parsed->find("k")->str, original);
}

}  // namespace
}  // namespace ofl::json
