#include <gtest/gtest.h>

#include <thread>

#include "common/logging.hpp"
#include "common/memory_usage.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"

namespace ofl {
namespace {

TEST(RngTest, DeterministicPerSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniformInt(0, 1000000), b.uniformInt(0, 1000000));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.uniformInt(0, 1 << 30) == b.uniformInt(0, 1 << 30)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformIntRespectsBoundsIncludingDegenerate) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const auto v = rng.uniformInt(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
  EXPECT_EQ(rng.uniformInt(9, 9), 9);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, WeightedIndexRespectsZeroWeights) {
  Rng rng(9);
  const std::vector<double> weights{0.0, 1.0, 0.0};
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rng.weightedIndex(weights), 1u);
  }
}

TEST(TimerTest, ElapsedIsMonotone) {
  Timer t;
  const double a = t.elapsedSeconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const double b = t.elapsedSeconds();
  EXPECT_GE(b, a);
  EXPECT_GE(b, 0.001);
  t.reset();
  EXPECT_LT(t.elapsedSeconds(), b);
}

TEST(StageTimerTest, AccumulatesAcrossStartStop) {
  StageTimer t;
  EXPECT_DOUBLE_EQ(t.totalSeconds(), 0.0);
  t.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  t.stop();
  const double first = t.totalSeconds();
  EXPECT_GT(first, 0.0);
  t.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  t.stop();
  EXPECT_GT(t.totalSeconds(), first);
  // stop without start is harmless
  t.stop();
}

TEST(MemoryUsageTest, ProbesReturnPlausibleValues) {
  const double peak = peakMemoryMiB();
  const double current = currentMemoryMiB();
  EXPECT_GT(peak, 1.0);      // a running gtest binary uses > 1 MiB
  EXPECT_GT(current, 1.0);
  EXPECT_GE(peak + 1.0, current);  // peak >= current (1 MiB slack)
}

TEST(LoggingTest, LevelGating) {
  const LogLevel saved = logLevel();
  setLogLevel(LogLevel::kError);
  EXPECT_EQ(logLevel(), LogLevel::kError);
  {
    ScopedLogLevel scope(LogLevel::kSilent);
    EXPECT_EQ(logLevel(), LogLevel::kSilent);
    logError("suppressed at silent level");
  }
  EXPECT_EQ(logLevel(), LogLevel::kError);
  setLogLevel(saved);
}

}  // namespace
}  // namespace ofl
