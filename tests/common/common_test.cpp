#include <gtest/gtest.h>

#include <thread>

#include "common/cancel.hpp"
#include "common/logging.hpp"
#include "common/memory_usage.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"

namespace ofl {
namespace {

TEST(RngTest, DeterministicPerSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniformInt(0, 1000000), b.uniformInt(0, 1000000));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.uniformInt(0, 1 << 30) == b.uniformInt(0, 1 << 30)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformIntRespectsBoundsIncludingDegenerate) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const auto v = rng.uniformInt(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
  EXPECT_EQ(rng.uniformInt(9, 9), 9);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, WeightedIndexRespectsZeroWeights) {
  Rng rng(9);
  const std::vector<double> weights{0.0, 1.0, 0.0};
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rng.weightedIndex(weights), 1u);
  }
}

TEST(TimerTest, ElapsedIsMonotone) {
  Timer t;
  const double a = t.elapsedSeconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const double b = t.elapsedSeconds();
  EXPECT_GE(b, a);
  EXPECT_GE(b, 0.001);
  t.reset();
  EXPECT_LT(t.elapsedSeconds(), b);
}

TEST(StageTimerTest, AccumulatesAcrossStartStop) {
  StageTimer t;
  EXPECT_DOUBLE_EQ(t.totalSeconds(), 0.0);
  t.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  t.stop();
  const double first = t.totalSeconds();
  EXPECT_GT(first, 0.0);
  t.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  t.stop();
  EXPECT_GT(t.totalSeconds(), first);
  // stop without start is harmless
  t.stop();
}

TEST(MemoryUsageTest, ProbesReturnPlausibleValues) {
  const double peak = peakMemoryMiB();
  const double current = currentMemoryMiB();
  EXPECT_GT(peak, 1.0);      // a running gtest binary uses > 1 MiB
  EXPECT_GT(current, 1.0);
  EXPECT_GE(peak + 1.0, current);  // peak >= current (1 MiB slack)
}

TEST(LoggingTest, LevelGating) {
  const LogLevel saved = logLevel();
  setLogLevel(LogLevel::kError);
  EXPECT_EQ(logLevel(), LogLevel::kError);
  {
    ScopedLogLevel scope(LogLevel::kSilent);
    EXPECT_EQ(logLevel(), LogLevel::kSilent);
    logError("suppressed at silent level");
  }
  EXPECT_EQ(logLevel(), LogLevel::kError);
  setLogLevel(saved);
}

TEST(CancelTokenTest, ZeroAndNegativeDeadlinesNeverArm) {
  // armDeadline documents <= 0 as "no deadline": the token must not
  // expire, now or later — a zero --timeout-s means unlimited, not
  // instant timeout.
  CancelToken zero;
  zero.armDeadline(0.0);
  EXPECT_FALSE(zero.hasDeadline);
  EXPECT_FALSE(zero.expired());
  EXPECT_NO_THROW(zero.throwIfExpired());

  CancelToken negative;
  negative.armDeadline(-3.0);
  EXPECT_FALSE(negative.hasDeadline);
  EXPECT_FALSE(negative.expired());

  // Repeated non-positive arms on an already-armed token do not disturb
  // the existing deadline either.
  CancelToken armed;
  armed.armDeadline(3600.0);
  EXPECT_TRUE(armed.hasDeadline);
  armed.armDeadline(0.0);
  armed.armDeadline(-1.0);
  EXPECT_TRUE(armed.hasDeadline);
  EXPECT_FALSE(armed.expired());
}

TEST(CancelTokenTest, ExplicitCancelBeatsMissingDeadline) {
  CancelToken token;
  token.armDeadline(-1.0);
  EXPECT_FALSE(token.expired());
  token.cancel();
  EXPECT_TRUE(token.expired());
  EXPECT_THROW(token.throwIfExpired(), CancelledError);
}

TEST(CancelTokenTest, PastDeadlineExpires) {
  CancelToken token;
  token.armDeadline(1e-9);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_TRUE(token.expired());
}

}  // namespace
}  // namespace ofl
