// Unit tests for the hot-path profiling registry. The registry is
// process-global, so every test restores the disabled/empty state it
// found.
#include "common/prof.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/json_util.hpp"

namespace ofl::prof {
namespace {

class ProfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry::instance().setEnabled(true);
    Registry::instance().reset();
  }
  void TearDown() override {
    Registry::instance().setEnabled(false);
    Registry::instance().reset();
  }
};

TEST_F(ProfTest, DisabledProbesRecordNothing) {
  Registry::instance().setEnabled(false);
  {
    ScopedTimer timer(Stage::kCandidates);
  }
  count(Counter::kWindows, 3);
  EXPECT_TRUE(Registry::instance().snapshot().empty());
}

TEST_F(ProfTest, TimerAndCounterAccumulate) {
  {
    ScopedTimer timer(Stage::kSizing);
  }
  {
    ScopedTimer timer(Stage::kSizing);
  }
  count(Counter::kMcfSolves, 5);
  count(Counter::kMcfSolves);
  const Snapshot snap = Registry::instance().snapshot();
  EXPECT_FALSE(snap.empty());
  EXPECT_EQ(snap.stage(Stage::kSizing).calls, 2u);
  EXPECT_EQ(snap.counter(Counter::kMcfSolves), 6u);
  EXPECT_EQ(snap.stage(Stage::kCandidates).calls, 0u);
}

TEST_F(ProfTest, ResetClears) {
  count(Counter::kWindows, 7);
  Registry::instance().reset();
  EXPECT_TRUE(Registry::instance().snapshot().empty());
}

TEST_F(ProfTest, ConcurrentProbesSumExactly) {
  // Thread-seconds semantics: every worker's probes land in one table.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        ScopedTimer timer(Stage::kCandidates);
        count(Counter::kCandidates, 2);
      }
    });
  }
  for (auto& w : workers) w.join();
  const Snapshot snap = Registry::instance().snapshot();
  EXPECT_EQ(snap.stage(Stage::kCandidates).calls,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(snap.counter(Counter::kCandidates),
            static_cast<std::uint64_t>(kThreads) * kPerThread * 2);
}

TEST_F(ProfTest, RendersStageNamesInBothFormats) {
  {
    ScopedTimer timer(Stage::kMcfSolve);
  }
  count(Counter::kIndexBuilds, 4);
  const Snapshot snap = Registry::instance().snapshot();
  const std::string human = snap.human();
  EXPECT_NE(human.find("mcf-solve"), std::string::npos);
  EXPECT_NE(human.find("index-builds"), std::string::npos);
  const std::string json = snap.json();
  EXPECT_NE(json.find("\"mcf-solve\""), std::string::npos);
  EXPECT_NE(json.find("\"index-builds\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"stages\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
}

TEST_F(ProfTest, JsonRoundTripsThroughParser) {
  // The snapshot JSON must parse back with exact values: stage names are
  // escaped and every number goes through std::to_chars, so the output is
  // identical under any C locale (no "0,05" decimal commas).
  {
    ScopedTimer timer(Stage::kSizing);
  }
  {
    ScopedTimer timer(Stage::kMcfSolve);  // indented name "  mcf-solve"
  }
  count(Counter::kIndexQueries, 12345);
  const Snapshot snap = Registry::instance().snapshot();
  const std::string text = snap.json();
  const auto doc = json::Value::parse(text);
  ASSERT_TRUE(doc.has_value()) << text;

  const json::Value* stages = doc->find("stages");
  ASSERT_NE(stages, nullptr);
  const json::Value* sizing = stages->find("sizing");
  ASSERT_NE(sizing, nullptr);
  EXPECT_EQ(sizing->find("calls")->number, 1.0);
  EXPECT_DOUBLE_EQ(sizing->find("seconds")->number,
                   snap.stage(Stage::kSizing).seconds());
  // Nested-kernel names carry no indentation in the JSON keys.
  EXPECT_NE(stages->find("mcf-solve"), nullptr);
  EXPECT_EQ(stages->find("  mcf-solve"), nullptr);

  const json::Value* counters = doc->find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->find("index-queries")->number, 12345.0);

  // Byte-stable: re-rendering the same snapshot yields identical text.
  EXPECT_EQ(text, snap.json());
}

}  // namespace
}  // namespace ofl::prof
