// LayoutFuzzer: seed determinism, clean sweeps, repro round-trip, the
// shrinking minimizer against synthetic predicates, and replay of the
// committed corpus in tests/corpus/ (OFL_CORPUS_DIR).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <vector>

#include "common/cancel.hpp"
#include "verify/fuzzer.hpp"
#include "verify/repro.hpp"

namespace ofl::verify {
namespace {

std::size_t wireCount(const FuzzCase& fuzzCase) {
  std::size_t n = 0;
  for (int l = 0; l < fuzzCase.layout.numLayers(); ++l) {
    n += fuzzCase.layout.layer(l).wires.size();
  }
  return n;
}

TEST(FuzzerGenerateTest, SameSeedSameCase) {
  const FuzzCase a = LayoutFuzzer::generate(42);
  const FuzzCase b = LayoutFuzzer::generate(42);
  EXPECT_EQ(writeRepro(a), writeRepro(b));
  const FuzzCase c = LayoutFuzzer::generate(43);
  EXPECT_NE(writeRepro(a), writeRepro(c));
}

TEST(FuzzerGenerateTest, CasesAreValid) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const FuzzCase fuzzCase = LayoutFuzzer::generate(seed);
    EXPECT_EQ(fuzzCase.seed, seed);
    EXPECT_FALSE(fuzzCase.layout.die().empty());
    EXPECT_GE(fuzzCase.layout.numLayers(), 1);
    EXPECT_GT(fuzzCase.engine.windowSize, 0);
    for (int l = 0; l < fuzzCase.layout.numLayers(); ++l) {
      for (const geom::Rect& w : fuzzCase.layout.layer(l).wires) {
        EXPECT_TRUE(fuzzCase.layout.die().contains(w));
      }
    }
  }
}

TEST(FuzzerRunTest, CleanSweepFindsNoFailures) {
  FuzzOptions options;
  options.firstSeed = 1;
  options.seeds = 12;
  options.checkDeterminism = false;  // 3x engine runs; keep the test fast
  const FuzzStats stats = LayoutFuzzer(options).run();
  EXPECT_EQ(stats.executed, 12);
  EXPECT_TRUE(stats.failures.empty());
  EXPECT_GT(stats.seconds, 0.0);
}

TEST(FuzzerRunTest, DeterminismCheckedSweep) {
  FuzzOptions options;
  options.firstSeed = 100;
  options.seeds = 3;
  options.checkDeterminism = true;
  const FuzzStats stats = LayoutFuzzer(options).run();
  EXPECT_EQ(stats.executed, 3);
  EXPECT_TRUE(stats.failures.empty());
}

TEST(ReproTest, RoundTripPreservesCase) {
  const FuzzCase original = LayoutFuzzer::generate(7);
  const std::string text = writeRepro(original);
  const auto parsed = readRepro(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->seed, original.seed);
  EXPECT_EQ(parsed->layout.die(), original.layout.die());
  ASSERT_EQ(parsed->layout.numLayers(), original.layout.numLayers());
  for (int l = 0; l < original.layout.numLayers(); ++l) {
    EXPECT_EQ(parsed->layout.layer(l).wires, original.layout.layer(l).wires)
        << "layer " << l;
  }
  EXPECT_EQ(parsed->engine.windowSize, original.engine.windowSize);
  EXPECT_EQ(parsed->engine.rules.minWidth, original.engine.rules.minWidth);
  EXPECT_EQ(parsed->engine.rules.minSpacing, original.engine.rules.minSpacing);
  EXPECT_EQ(parsed->engine.rules.maxFillSize, original.engine.rules.maxFillSize);
  EXPECT_DOUBLE_EQ(parsed->engine.candidate.lambda,
                   original.engine.candidate.lambda);
  EXPECT_DOUBLE_EQ(parsed->engine.candidate.gamma,
                   original.engine.candidate.gamma);
  EXPECT_EQ(parsed->engine.candidate.uniformCells,
            original.engine.candidate.uniformCells);
  EXPECT_DOUBLE_EQ(parsed->engine.sizer.eta, original.engine.sizer.eta);
  EXPECT_EQ(parsed->engine.sizer.backend, original.engine.sizer.backend);
  EXPECT_EQ(parsed->engine.sizer.iterations, original.engine.sizer.iterations);
  // Re-serializing the parsed case is byte-stable.
  EXPECT_EQ(writeRepro(*parsed), text);
}

TEST(ReproTest, RejectsMalformedInput) {
  EXPECT_FALSE(readRepro("").has_value());
  EXPECT_FALSE(readRepro("not-a-repro v1\n").has_value());
  EXPECT_FALSE(readRepro("openfill-repro v1\nseed 1\n").has_value());  // no die
  EXPECT_FALSE(
      readRepro("openfill-repro v1\ndie 0 0 0 0\nlayers 1\nwindow 10\n")
          .has_value());  // empty die
}

TEST(ReproTest, ToleratesCommentsAndUnknownKeys) {
  const FuzzCase original = LayoutFuzzer::generate(9);
  std::string text = writeRepro(original);
  text += "# trailing comment\nfuture-key 1 2 3\n";
  const auto parsed = readRepro(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->seed, original.seed);
}

TEST(ReproTest, FileRoundTrip) {
  const FuzzCase original = LayoutFuzzer::generate(11);
  const std::string path =
      (std::filesystem::temp_directory_path() / "ofl_repro_test.repro")
          .string();
  ASSERT_TRUE(writeReproFile(path, original));
  const auto parsed = readReproFile(path);
  std::filesystem::remove(path);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(writeRepro(*parsed), writeRepro(original));
  EXPECT_FALSE(readReproFile("/nonexistent/path.repro").has_value());
}

TEST(MinimizerTest, ShrinksToSingleCulpritWire) {
  // Synthetic bug: the case "fails" iff layer 0 still contains a wire
  // overlapping a magic hotspot. ddmin should discard everything else.
  FuzzCase fuzzCase = LayoutFuzzer::generate(5);
  const geom::Rect hotspot{100, 100, 160, 160};
  fuzzCase.layout.layer(0).wires.push_back(hotspot);
  const auto failing = [&hotspot](const FuzzCase& candidate) {
    if (candidate.layout.numLayers() < 1) return false;
    const auto& wires = candidate.layout.layer(0).wires;
    return std::any_of(wires.begin(), wires.end(), [&](const geom::Rect& w) {
      return w.overlaps(hotspot);
    });
  };
  ASSERT_TRUE(failing(fuzzCase));

  const FuzzCase minimized = LayoutFuzzer::minimize(fuzzCase, failing, 400);
  EXPECT_TRUE(failing(minimized));
  EXPECT_LT(wireCount(minimized), wireCount(fuzzCase));
  EXPECT_LE(wireCount(minimized), 2u);
  EXPECT_EQ(minimized.layout.numLayers(), 1);
  // The die is cropped around the surviving wires.
  EXPECT_LE(minimized.layout.die().area(), fuzzCase.layout.die().area());
}

TEST(MinimizerTest, AlwaysFailingPredicateShrinksToTiny) {
  const FuzzCase fuzzCase = LayoutFuzzer::generate(6);
  const auto alwaysFails = [](const FuzzCase&) { return true; };
  const FuzzCase minimized =
      LayoutFuzzer::minimize(fuzzCase, alwaysFails, 400);
  EXPECT_EQ(wireCount(minimized), 0u);
  EXPECT_EQ(minimized.layout.numLayers(), 1);
}

TEST(MinimizerTest, RespectsEvaluationBudget) {
  const FuzzCase fuzzCase = LayoutFuzzer::generate(8);
  int evaluations = 0;
  const auto countingPredicate = [&evaluations](const FuzzCase&) {
    ++evaluations;
    return true;
  };
  (void)LayoutFuzzer::minimize(fuzzCase, countingPredicate, 10);
  EXPECT_LE(evaluations, 10);
}

TEST(FuzzerFailureTest, EngineThrowSurfacesAsEngineRunFailure) {
  // A pre-cancelled token makes FillEngine::run throw CancelledError at
  // its first checkpoint; check() must catch it and report a failed
  // "engine-run" outcome instead of propagating.
  FuzzCase fuzzCase = LayoutFuzzer::generate(3);
  CancelToken cancelled;
  cancelled.cancel();
  fuzzCase.engine.cancel = &cancelled;
  const FuzzOutcome outcome = LayoutFuzzer::check(fuzzCase, false);
  EXPECT_FALSE(outcome.passed);
  EXPECT_EQ(outcome.check, "engine-run");
}

TEST(CorpusTest, CommittedReprosReplayClean) {
  const std::filesystem::path corpus(OFL_CORPUS_DIR);
  ASSERT_TRUE(std::filesystem::exists(corpus)) << corpus;
  int replayed = 0;
  for (const auto& entry : std::filesystem::directory_iterator(corpus)) {
    if (entry.path().extension() != ".repro") continue;
    SCOPED_TRACE(entry.path().string());
    const auto fuzzCase = readReproFile(entry.path().string());
    ASSERT_TRUE(fuzzCase.has_value());
    const FuzzOutcome outcome = LayoutFuzzer::check(*fuzzCase, true);
    EXPECT_TRUE(outcome.passed)
        << outcome.check << ": " << outcome.detail;
    ++replayed;
  }
  // The corpus ships with at least one case; an empty directory would
  // silently skip the replay.
  EXPECT_GE(replayed, 1);
}

}  // namespace
}  // namespace ofl::verify
