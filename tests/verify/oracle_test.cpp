// Differential tests of the reference oracles: hand-computable cases, the
// brute-force raster oracle from test_util.hpp, and randomized agreement
// with the optimized production implementations at the documented
// tolerances (oracle.hpp).
#include <gtest/gtest.h>

#include <cmath>

#include "contest/benchmark_generator.hpp"
#include "contest/evaluator.hpp"
#include "contest/score_table.hpp"
#include "density/density_map.hpp"
#include "density/metrics.hpp"
#include "density/sliding.hpp"
#include "fill/fill_engine.hpp"
#include "geometry/boolean.hpp"
#include "../test_util.hpp"
#include "verify/layout_gen.hpp"
#include "verify/oracle.hpp"

namespace ofl::verify {
namespace {

TEST(OracleAreaTest, HandCases) {
  const std::vector<geom::Rect> none;
  EXPECT_EQ(oracleUnionArea(none), 0);

  const std::vector<geom::Rect> one = {{0, 0, 10, 10}};
  EXPECT_EQ(oracleUnionArea(one), 100);

  // Overlapping pair: 100 + 100 - 25.
  const std::vector<geom::Rect> pair = {{0, 0, 10, 10}, {5, 5, 15, 15}};
  EXPECT_EQ(oracleUnionArea(pair), 175);

  // Duplicate rects count once.
  const std::vector<geom::Rect> dup = {{0, 0, 10, 10}, {0, 0, 10, 10}};
  EXPECT_EQ(oracleUnionArea(dup), 100);

  // Abutting rects (half-open) add exactly.
  const std::vector<geom::Rect> abut = {{0, 0, 10, 10}, {10, 0, 20, 10}};
  EXPECT_EQ(oracleUnionArea(abut), 200);

  const std::vector<geom::Rect> a = {{0, 0, 10, 10}};
  const std::vector<geom::Rect> b = {{5, 5, 15, 15}};
  EXPECT_EQ(oracleIntersectionArea(a, b), 25);
  EXPECT_EQ(oracleIntersectionArea(a, a), 100);
  const std::vector<geom::Rect> far = {{50, 50, 60, 60}};
  EXPECT_EQ(oracleIntersectionArea(a, far), 0);
}

TEST(OracleAreaTest, MatchesRasterOracleOnRandomSets) {
  Rng rng(2024);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<geom::Rect> a;
    std::vector<geom::Rect> b;
    const int n = static_cast<int>(rng.uniformInt(0, 25));
    for (int i = 0; i < n; ++i)
      a.push_back(testutil::randomRect(rng, 64, 20));
    const int m = static_cast<int>(rng.uniformInt(0, 25));
    for (int i = 0; i < m; ++i)
      b.push_back(testutil::randomRect(rng, 64, 20));

    testutil::Raster ra(64);
    ra.paint(a);
    testutil::Raster rb(64);
    rb.paint(b);
    EXPECT_EQ(oracleUnionArea(a), ra.area()) << "trial " << trial;
    EXPECT_EQ(oracleIntersectionArea(a, b),
              testutil::Raster::opArea(ra, rb, '&'))
        << "trial " << trial;
  }
}

TEST(OracleAreaTest, MatchesBooleanEngineOnRandomSets) {
  Rng rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<geom::Rect> a;
    std::vector<geom::Rect> b;
    const int n = static_cast<int>(rng.uniformInt(1, 60));
    for (int i = 0; i < n; ++i)
      a.push_back(testutil::randomRect(rng, 5000, 800));
    const int m = static_cast<int>(rng.uniformInt(1, 60));
    for (int i = 0; i < m; ++i)
      b.push_back(testutil::randomRect(rng, 5000, 800));
    EXPECT_EQ(oracleUnionArea(a), geom::unionArea(a)) << "trial " << trial;
    EXPECT_EQ(oracleIntersectionArea(a, b), geom::intersectionArea(a, b))
        << "trial " << trial;
  }
}

TEST(OracleDensityTest, MatchesProductionOnRandomLayouts) {
  Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    const layout::Layout chip = testing::LayoutGen::randomLayout(rng);
    const layout::WindowGrid grid(chip.die(), 700);
    for (int l = 0; l < chip.numLayers(); ++l) {
      const density::DensityMap prod =
          density::DensityMap::computeFromShapes(chip.layer(l).wires, grid);
      const density::DensityMap ref =
          oracleWindowDensity(chip.layer(l).wires, grid);
      ASSERT_EQ(prod.count(), ref.count());
      for (int w = 0; w < prod.count(); ++w) {
        EXPECT_NEAR(prod.values()[static_cast<std::size_t>(w)],
                    ref.values()[static_cast<std::size_t>(w)], 1e-12)
            << "trial " << trial << " layer " << l << " window " << w;
      }
    }
  }
}

TEST(OracleDensityTest, SlidingMatchesProductionOnDivisibleWindows) {
  Rng rng(12);
  density::SlidingDensityOptions opt;
  opt.windowSize = 800;  // divisible by steps = 4 (see oracle.hpp)
  opt.steps = 4;
  for (int trial = 0; trial < 10; ++trial) {
    const layout::Layout chip = testing::LayoutGen::randomLayout(rng);
    for (int l = 0; l < chip.numLayers(); ++l) {
      const density::DensityMap prod = density::computeSlidingDensity(
          chip.layer(l).wires, chip.die(), opt);
      const density::DensityMap ref =
          oracleSlidingDensity(chip.layer(l).wires, chip.die(), opt);
      ASSERT_EQ(prod.cols(), ref.cols());
      ASSERT_EQ(prod.rows(), ref.rows());
      for (int w = 0; w < prod.count(); ++w) {
        EXPECT_NEAR(prod.values()[static_cast<std::size_t>(w)],
                    ref.values()[static_cast<std::size_t>(w)], 1e-12)
            << "trial " << trial << " layer " << l << " position " << w;
      }
    }
  }
}

TEST(OracleMetricsTest, HandComputedMap) {
  // 2 x 2 map: densities 0.1, 0.3 / 0.1, 0.3 (columns constant).
  const density::DensityMap map(2, 2, {0.1, 0.3, 0.1, 0.3});
  const density::DensityMetrics m = oracleMetrics(map);
  EXPECT_NEAR(m.mean, 0.2, 1e-15);
  EXPECT_NEAR(m.sigma, 0.1, 1e-15);
  // Column means equal the column values -> zero line hotspots.
  EXPECT_NEAR(m.lineHotspot, 0.0, 1e-15);
  // |d - mean| = 0.1 < 3 sigma = 0.3 everywhere -> zero outliers.
  EXPECT_NEAR(m.outlierHotspot, 0.0, 1e-15);
}

TEST(OracleMetricsTest, MatchesProductionOnRandomMaps) {
  Rng rng(13);
  for (int trial = 0; trial < 25; ++trial) {
    const int cols = static_cast<int>(rng.uniformInt(1, 12));
    const int rows = static_cast<int>(rng.uniformInt(1, 12));
    std::vector<double> values(static_cast<std::size_t>(cols) * rows);
    for (double& v : values) v = rng.uniformReal(0.0, 1.0);
    const density::DensityMap map(cols, rows, values);
    const density::DensityMetrics prod = density::computeMetrics(map);
    const density::DensityMetrics ref = oracleMetrics(map);
    EXPECT_NEAR(prod.mean, ref.mean, 1e-12) << "trial " << trial;
    EXPECT_NEAR(prod.sigma, ref.sigma, 1e-12) << "trial " << trial;
    EXPECT_NEAR(prod.lineHotspot, ref.lineHotspot,
                1e-9 * std::max(1.0, ref.lineHotspot))
        << "trial " << trial;
    EXPECT_NEAR(prod.outlierHotspot, ref.outlierHotspot,
                1e-9 * std::max(1.0, ref.outlierHotspot))
        << "trial " << trial;
  }
}

TEST(OracleEvaluatorTest, OverlayHandCase) {
  // Two layers; lower wire 0..100 x 0..10, upper wire 50..150 x 0..10
  // overlap 50*10 = 500. A lower fill overlapping the upper wire by
  // 20 x 10 = 200 is fill-induced.
  layout::Layout chip({0, 0, 200, 20}, 2);
  chip.layer(0).wires.push_back({0, 0, 100, 10});
  chip.layer(1).wires.push_back({50, 0, 150, 10});
  chip.layer(0).fills.push_back({110, 0, 130, 10});
  const std::vector<double> overlay = oracleOverlay(chip);
  ASSERT_EQ(overlay.size(), 1u);
  EXPECT_DOUBLE_EQ(overlay[0], 200.0);
}

TEST(OracleEvaluatorTest, MeasureMatchesEvaluatorOnFilledSuite) {
  const layout::Layout wires = contest::BenchmarkGenerator::generate(
      contest::BenchmarkGenerator::spec("tiny"));
  layout::Layout chip = wires;
  fill::FillEngineOptions options;
  options.windowSize = 800;
  options.numThreads = 1;
  fill::FillEngine(options).run(chip);

  const contest::ScoreTable table = contest::scoreTableFor("s");
  const contest::Evaluator evaluator(options.windowSize, table, options.rules);
  const contest::RawMetrics prod = evaluator.measure(chip);
  const contest::RawMetrics ref = oracleMeasure(chip, options.windowSize);

  const auto near = [](double a, double b) {
    return std::abs(a - b) <= 1e-9 * std::max({std::abs(a), std::abs(b), 1.0});
  };
  EXPECT_TRUE(near(prod.overlay, ref.overlay))
      << prod.overlay << " vs " << ref.overlay;
  EXPECT_TRUE(near(prod.variation, ref.variation))
      << prod.variation << " vs " << ref.variation;
  EXPECT_TRUE(near(prod.line, ref.line)) << prod.line << " vs " << ref.line;
  EXPECT_TRUE(near(prod.outlier, ref.outlier))
      << prod.outlier << " vs " << ref.outlier;
  ASSERT_EQ(prod.pairOverlay.size(), ref.pairOverlay.size());
  for (std::size_t p = 0; p < prod.pairOverlay.size(); ++p) {
    EXPECT_TRUE(near(prod.pairOverlay[p], ref.pairOverlay[p])) << "pair " << p;
  }

  const contest::ScoreBreakdown prodScore = evaluator.score(prod, 2.0, 128.0);
  const contest::ScoreBreakdown refScore = oracleScore(table, prod, 2.0, 128.0);
  EXPECT_NEAR(prodScore.quality, refScore.quality, 1e-12);
  EXPECT_NEAR(prodScore.total, refScore.total, 1e-12);
}

TEST(OracleScoreTest, DirectFromDefinition) {
  contest::ScoreTable table;
  table.overlay = {0.2, 100.0};
  table.variation = {0.2, 1.0};
  table.line = {0.2, 10.0};
  table.outlier = {0.15, 1.0};
  table.size = {0.05, 10.0};
  table.runtime = {0.15, 100.0};
  table.memory = {0.05, 1000.0};
  contest::RawMetrics raw;
  raw.overlay = 50.0;    // f = 0.5
  raw.variation = 2.0;   // f = 0 (clamped)
  raw.line = 5.0;        // f = 0.5
  raw.outlier = 0.5;     // f = 0.5
  raw.fileSizeMB = 5.0;  // f = 0.5
  const contest::ScoreBreakdown s = oracleScore(table, raw, 50.0, 500.0);
  EXPECT_DOUBLE_EQ(s.overlay, 0.5);
  EXPECT_DOUBLE_EQ(s.variation, 0.0);
  EXPECT_DOUBLE_EQ(s.quality,
                   0.2 * 0.5 + 0.2 * 0.0 + 0.2 * 0.5 + 0.15 * 0.5 + 0.05 * 0.5);
  EXPECT_DOUBLE_EQ(s.total, s.quality + 0.15 * 0.5 + 0.05 * 0.5);
}

}  // namespace
}  // namespace ofl::verify
