// InvariantChecker: a clean fill passes every check; each fault-injection
// class is detected by its targeted check; report plumbing (find, toJson).
#include <gtest/gtest.h>

#include <string>

#include "common/logging.hpp"
#include "contest/benchmark_generator.hpp"
#include "fill/fill_engine.hpp"
#include "verify/invariants.hpp"

namespace ofl::verify {
namespace {

class InvariantsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    filled_ = new layout::Layout(contest::BenchmarkGenerator::generate(
        contest::BenchmarkGenerator::spec("tiny")));
    ScopedLogLevel quiet(LogLevel::kWarn);
    fill::FillEngine(engineOptions()).run(*filled_);
  }

  static void TearDownTestSuite() {
    delete filled_;
    filled_ = nullptr;
  }

  static fill::FillEngineOptions engineOptions() {
    fill::FillEngineOptions options;
    options.windowSize = 800;
    options.numThreads = 1;
    return options;
  }

  static VerifyReport runCheck(FaultClass inject) {
    ScopedLogLevel quiet(LogLevel::kWarn);
    InvariantChecker::Options options;
    options.engine = engineOptions();
    options.inject = inject;
    options.determinismThreads = 2;
    return InvariantChecker(options).check(*filled_);
  }

  static layout::Layout* filled_;
};

layout::Layout* InvariantsTest::filled_ = nullptr;

TEST_F(InvariantsTest, CleanFillPassesAllChecks) {
  const VerifyReport report = runCheck(FaultClass::kNone);
  for (const CheckResult& check : report.checks) {
    EXPECT_TRUE(check.passed) << check.name << ": " << check.detail;
  }
  EXPECT_TRUE(report.allPassed());
  EXPECT_TRUE(report.ok());
  EXPECT_FALSE(report.injectionDetected);

  // The full check list must be present.
  for (const char* name :
       {"fills-inside-region", "drc-clean", "density-bounds", "gds-roundtrip",
        "oasis-roundtrip", "oracle-density", "oracle-sliding",
        "oracle-metrics", "oracle-evaluator", "oracle-score", "determinism"}) {
    EXPECT_NE(report.find(name), nullptr) << name;
  }
  EXPECT_EQ(report.find("no-such-check"), nullptr);
}

TEST_F(InvariantsTest, SpacingInjectionDetected) {
  const VerifyReport report = runCheck(FaultClass::kSpacing);
  EXPECT_TRUE(report.injectionDetected);
  EXPECT_TRUE(report.ok());
  EXPECT_FALSE(report.allPassed());
}

TEST_F(InvariantsTest, DensityInjectionDetected) {
  const VerifyReport report = runCheck(FaultClass::kDensity);
  EXPECT_TRUE(report.injectionDetected);
  EXPECT_TRUE(report.ok());
  const CheckResult* density = report.find("density-bounds");
  ASSERT_NE(density, nullptr);
  EXPECT_FALSE(density->passed);
}

TEST_F(InvariantsTest, OverlayInjectionDetected) {
  const VerifyReport report = runCheck(FaultClass::kOverlay);
  EXPECT_TRUE(report.injectionDetected);
  EXPECT_TRUE(report.ok());
  const CheckResult* evaluator = report.find("oracle-evaluator");
  ASSERT_NE(evaluator, nullptr);
  EXPECT_FALSE(evaluator->passed);
}

TEST_F(InvariantsTest, DeterminismInjectionDetected) {
  const VerifyReport report = runCheck(FaultClass::kDeterminism);
  EXPECT_TRUE(report.injectionDetected);
  EXPECT_TRUE(report.ok());
  const CheckResult* determinism = report.find("determinism");
  ASSERT_NE(determinism, nullptr);
  EXPECT_FALSE(determinism->passed);
}

TEST_F(InvariantsTest, JsonContainsEveryCheck) {
  const VerifyReport report = runCheck(FaultClass::kNone);
  const std::string json = toJson(report);
  for (const CheckResult& check : report.checks) {
    EXPECT_NE(json.find('"' + check.name + '"'), std::string::npos)
        << check.name;
  }
  EXPECT_NE(json.find("\"ok\""), std::string::npos);
}

TEST(FaultClassTest, StringRoundTrip) {
  for (FaultClass fault : {FaultClass::kSpacing, FaultClass::kDensity,
                           FaultClass::kOverlay, FaultClass::kDeterminism}) {
    const auto parsed = faultClassFromString(toString(fault));
    ASSERT_TRUE(parsed.has_value()) << toString(fault);
    EXPECT_EQ(*parsed, fault);
  }
  EXPECT_FALSE(faultClassFromString("bogus").has_value());
}

}  // namespace
}  // namespace ofl::verify
