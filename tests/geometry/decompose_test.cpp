#include "geometry/decompose.hpp"

#include <gtest/gtest.h>

#include "geometry/boolean.hpp"

#include "../test_util.hpp"

namespace ofl::geom {
namespace {

TEST(DecomposeTest, RectDecomposesToItself) {
  const auto rects = decompose(Polygon::fromRect({2, 3, 9, 8}));
  ASSERT_EQ(rects.size(), 1u);
  EXPECT_EQ(rects[0], Rect(2, 3, 9, 8));
}

TEST(DecomposeTest, LShape) {
  const Polygon p({{0, 0}, {10, 0}, {10, 5}, {5, 5}, {5, 10}, {0, 10}});
  const auto rects = decompose(p);
  Area total = 0;
  for (const Rect& r : rects) total += r.area();
  EXPECT_EQ(total, p.area());
  EXPECT_TRUE(testutil::pairwiseDisjoint(rects));
  EXPECT_LE(rects.size(), 2u);  // L-shape needs exactly two rects
}

TEST(DecomposeTest, UShape) {
  // U: 12 wide, 10 tall, 4-wide slot from the top.
  const Polygon p({{0, 0}, {12, 0}, {12, 10}, {8, 10}, {8, 4}, {4, 4},
                   {4, 10}, {0, 10}});
  const auto rects = decompose(p);
  Area total = 0;
  for (const Rect& r : rects) total += r.area();
  EXPECT_EQ(total, p.area());
  EXPECT_EQ(total, 12 * 10 - 4 * 6);
  EXPECT_TRUE(testutil::pairwiseDisjoint(rects));
}

TEST(DecomposeTest, DonutViaEvenOdd) {
  // Outer 10x10, hole 4x4 in the middle, expressed as two loops.
  const std::vector<Polygon> loops{Polygon::fromRect({0, 0, 10, 10}),
                                   Polygon::fromRect({3, 3, 7, 7})};
  const auto rects = decomposeEvenOdd(loops);
  Area total = 0;
  for (const Rect& r : rects) {
    total += r.area();
    EXPECT_EQ(r.overlapArea({3, 3, 7, 7}), 0) << "rect covers the hole";
  }
  EXPECT_EQ(total, 100 - 16);
  EXPECT_TRUE(testutil::pairwiseDisjoint(rects));
}

TEST(DecomposeTest, AreaPreservedOnRandomStaircases) {
  // Random rectilinear staircase polygons: x-monotone, built from columns
  // of random heights — area is trivially the sum of column areas.
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    const int columns = static_cast<int>(rng.uniformInt(1, 8));
    std::vector<Point> upper;
    Area expected = 0;
    std::vector<Coord> heights;
    for (int c = 0; c < columns; ++c) {
      Coord h = rng.uniformInt(1, 20);
      if (!heights.empty() && h == heights.back()) ++h;  // avoid collinear
      heights.push_back(h);
      expected += 10 * h;
    }
    // Build the loop: along the bottom, then back across the top.
    std::vector<Point> loop;
    loop.push_back({0, 0});
    loop.push_back({static_cast<Coord>(columns) * 10, 0});
    for (int c = columns - 1; c >= 0; --c) {
      const Coord xr = static_cast<Coord>(c + 1) * 10;
      const Coord xl = static_cast<Coord>(c) * 10;
      loop.push_back({xr, heights[static_cast<std::size_t>(c)]});
      loop.push_back({xl, heights[static_cast<std::size_t>(c)]});
    }
    // Remove the final duplicate corner at (0, h0) -> (0,0) handled by close.
    const Polygon poly(loop);
    const auto rects = decompose(poly);
    Area total = 0;
    for (const Rect& r : rects) total += r.area();
    EXPECT_EQ(total, expected) << "trial " << trial;
    EXPECT_TRUE(testutil::pairwiseDisjoint(rects)) << "trial " << trial;
  }
}

TEST(MergeTest, HorizontalMergeJoinsAbuttingSameRow) {
  std::vector<Rect> rects{{0, 0, 5, 10}, {5, 0, 9, 10}, {9, 0, 12, 10}};
  const auto merged = mergeHorizontal(rects);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0], Rect(0, 0, 12, 10));
}

TEST(MergeTest, HorizontalMergeKeepsDifferentRows) {
  std::vector<Rect> rects{{0, 0, 5, 10}, {5, 0, 9, 11}};
  EXPECT_EQ(mergeHorizontal(rects).size(), 2u);
}

TEST(MergeTest, VerticalMergeJoinsAbuttingSameColumn) {
  std::vector<Rect> rects{{0, 0, 10, 4}, {0, 4, 10, 9}};
  const auto merged = mergeVertical(rects);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0], Rect(0, 0, 10, 9));
}

TEST(MergeTest, InPlaceVariantMatchesAllocating) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Rect> input;
    for (int k = 0; k < 12; ++k) {
      input.push_back(testutil::randomRect(rng, 40, 15));
    }
    const auto disjoint = booleanOp(input, {}, BoolOp::kUnion);
    std::vector<Rect> inPlace = disjoint;
    mergeVerticalInPlace(inPlace);
    EXPECT_EQ(inPlace, mergeVertical(disjoint)) << "trial " << trial;
  }
}

TEST(MergeTest, MergePreservesArea) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    // Build a disjoint set by decomposing a union of random rects.
    std::vector<Rect> input;
    for (int k = 0; k < 12; ++k) {
      input.push_back(testutil::randomRect(rng, 40, 15));
    }
    const auto disjoint = booleanOp(input, {}, BoolOp::kUnion);
    const Area base = unionArea(disjoint);
    for (auto merged : {mergeHorizontal(disjoint), mergeVertical(disjoint)}) {
      Area total = 0;
      for (const Rect& r : merged) total += r.area();
      EXPECT_EQ(total, base);
      EXPECT_TRUE(testutil::pairwiseDisjoint(merged));
      EXPECT_LE(merged.size(), disjoint.size());
    }
  }
}

}  // namespace
}  // namespace ofl::geom
