// Property tests: Region operations satisfy set-algebra laws on random
// inputs. These catch subtle sweep bugs that example-based tests miss.
#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "geometry/region.hpp"

namespace ofl::geom {
namespace {

Region randomRegion(Rng& rng, int maxRects) {
  std::vector<Rect> rects;
  const int n = static_cast<int>(rng.uniformInt(0, maxRects));
  for (int k = 0; k < n; ++k) {
    rects.push_back(testutil::randomRect(rng, 100, 40));
  }
  return Region(rects);
}

class RegionAlgebraTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override { rng_ = Rng(GetParam()); }
  Rng rng_{0};
};

TEST_P(RegionAlgebraTest, UnionCommutes) {
  const Region a = randomRegion(rng_, 10);
  const Region b = randomRegion(rng_, 10);
  EXPECT_EQ(a.unite(b), b.unite(a));
}

TEST_P(RegionAlgebraTest, IntersectCommutes) {
  const Region a = randomRegion(rng_, 10);
  const Region b = randomRegion(rng_, 10);
  EXPECT_EQ(a.intersect(b), b.intersect(a));
}

TEST_P(RegionAlgebraTest, UnionAssociates) {
  const Region a = randomRegion(rng_, 7);
  const Region b = randomRegion(rng_, 7);
  const Region c = randomRegion(rng_, 7);
  EXPECT_EQ(a.unite(b).unite(c).area(), a.unite(b.unite(c)).area());
}

TEST_P(RegionAlgebraTest, IdempotentOps) {
  const Region a = randomRegion(rng_, 10);
  EXPECT_EQ(a.unite(a), a);
  EXPECT_EQ(a.intersect(a), a);
  EXPECT_TRUE(a.subtract(a).empty());
}

TEST_P(RegionAlgebraTest, InclusionExclusion) {
  const Region a = randomRegion(rng_, 10);
  const Region b = randomRegion(rng_, 10);
  EXPECT_EQ(a.unite(b).area() + a.intersect(b).area(), a.area() + b.area());
}

TEST_P(RegionAlgebraTest, SubtractDisjointFromRemainder) {
  const Region a = randomRegion(rng_, 10);
  const Region b = randomRegion(rng_, 10);
  const Region diff = a.subtract(b);
  EXPECT_EQ(diff.overlapArea(b), 0);
  EXPECT_EQ(diff.area() + a.intersect(b).area(), a.area());
}

TEST_P(RegionAlgebraTest, DeMorganViaBoundingBox) {
  // Complement within a universe box: U - (A u B) == (U-A) n (U-B).
  const Region universe(Rect{-10, -10, 120, 120});
  const Region a = randomRegion(rng_, 8);
  const Region b = randomRegion(rng_, 8);
  const Region lhs = universe.subtract(a.unite(b));
  const Region rhs = universe.subtract(a).intersect(universe.subtract(b));
  EXPECT_EQ(lhs.area(), rhs.area());
  EXPECT_EQ(lhs, rhs);
}

TEST_P(RegionAlgebraTest, ClipDistributesOverUnion) {
  const Region a = randomRegion(rng_, 8);
  const Region b = randomRegion(rng_, 8);
  const Rect window = testutil::randomRect(rng_, 100, 80);
  // clipped() preserves the covered set but not the canonical rect list
  // (it clips rect-by-rect), so compare as point sets.
  const Region lhs = a.unite(b).clipped(window);
  const Region rhs = a.clipped(window).unite(b.clipped(window));
  EXPECT_TRUE(lhs.subtract(rhs).empty());
  EXPECT_TRUE(rhs.subtract(lhs).empty());
}

TEST_P(RegionAlgebraTest, NormalFormIsCanonical) {
  // The same point set given as different rect covers normalizes to the
  // same canonical rect list.
  const Region a = randomRegion(rng_, 10);
  // Re-cover: split every rect of a into left/right halves.
  std::vector<Rect> cover;
  for (const Rect& r : a.rects()) {
    if (r.width() >= 2) {
      const Coord mid = r.xl + r.width() / 2;
      cover.push_back({r.xl, r.yl, mid, r.yh});
      cover.push_back({mid, r.yl, r.xh, r.yh});
    } else {
      cover.push_back(r);
    }
  }
  EXPECT_EQ(Region(cover), a);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegionAlgebraTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u));

}  // namespace
}  // namespace ofl::geom
