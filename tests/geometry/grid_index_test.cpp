#include "geometry/grid_index.hpp"

#include <algorithm>
#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace ofl::geom {
namespace {

TEST(GridIndexTest, FindsInsertedRect) {
  GridIndex index({0, 0, 100, 100}, 10);
  index.insert(7, {15, 15, 25, 25});
  const auto hits = index.query({20, 20, 22, 22});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 7u);
}

TEST(GridIndexTest, MissesFarQuery) {
  GridIndex index({0, 0, 100, 100}, 10);
  index.insert(1, {0, 0, 5, 5});
  EXPECT_TRUE(index.query({80, 80, 95, 95}).empty());
}

TEST(GridIndexTest, DeduplicatesAcrossCells) {
  GridIndex index({0, 0, 100, 100}, 10);
  index.insert(3, {5, 5, 95, 95});  // spans many cells
  const auto hits = index.query({0, 0, 100, 100});
  EXPECT_EQ(hits.size(), 1u);
}

TEST(GridIndexTest, VisitEachIdOnce) {
  GridIndex index({0, 0, 100, 100}, 10);
  index.insert(1, {0, 0, 50, 50});
  index.insert(2, {40, 40, 90, 90});
  int count = 0;
  index.visit({0, 0, 100, 100}, [&count](std::uint32_t) { ++count; });
  EXPECT_EQ(count, 2);
}

TEST(GridIndexTest, QueryIsSupersetOfTrueOverlaps) {
  Rng rng(4242);
  const Rect extent{0, 0, 200, 200};
  GridIndex index(extent, 16);
  std::vector<Rect> rects;
  for (std::uint32_t id = 0; id < 60; ++id) {
    rects.push_back(testutil::randomRect(rng, 200, 30));
    index.insert(id, rects.back());
  }
  for (int trial = 0; trial < 40; ++trial) {
    const Rect q = testutil::randomRect(rng, 200, 50);
    const auto hits = index.query(q);
    for (std::uint32_t id = 0; id < rects.size(); ++id) {
      if (rects[id].overlaps(q)) {
        EXPECT_TRUE(std::find(hits.begin(), hits.end(), id) != hits.end())
            << "missed id " << id << " trial " << trial;
      }
    }
  }
}

TEST(GridIndexTest, OutOfExtentRectClampedButDiscoverable) {
  GridIndex index({0, 0, 100, 100}, 10);
  index.insert(9, {-20, -20, -5, -5});  // fully outside; clamps to border
  const auto hits = index.query({0, 0, 15, 15});
  EXPECT_EQ(hits.size(), 1u);
}

}  // namespace
}  // namespace ofl::geom
