#include "geometry/grid_index.hpp"

#include <algorithm>
#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace ofl::geom {
namespace {

TEST(GridIndexTest, FindsInsertedRect) {
  GridIndex index({0, 0, 100, 100}, 10);
  index.insert(7, {15, 15, 25, 25});
  const auto hits = index.query({20, 20, 22, 22});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 7u);
}

TEST(GridIndexTest, MissesFarQuery) {
  GridIndex index({0, 0, 100, 100}, 10);
  index.insert(1, {0, 0, 5, 5});
  EXPECT_TRUE(index.query({80, 80, 95, 95}).empty());
}

TEST(GridIndexTest, DeduplicatesAcrossCells) {
  GridIndex index({0, 0, 100, 100}, 10);
  index.insert(3, {5, 5, 95, 95});  // spans many cells
  const auto hits = index.query({0, 0, 100, 100});
  EXPECT_EQ(hits.size(), 1u);
}

TEST(GridIndexTest, VisitEachIdOnce) {
  GridIndex index({0, 0, 100, 100}, 10);
  index.insert(1, {0, 0, 50, 50});
  index.insert(2, {40, 40, 90, 90});
  int count = 0;
  index.visit({0, 0, 100, 100}, [&count](std::uint32_t) { ++count; });
  EXPECT_EQ(count, 2);
}

TEST(GridIndexTest, QueryIsSupersetOfTrueOverlaps) {
  Rng rng(4242);
  const Rect extent{0, 0, 200, 200};
  GridIndex index(extent, 16);
  std::vector<Rect> rects;
  for (std::uint32_t id = 0; id < 60; ++id) {
    rects.push_back(testutil::randomRect(rng, 200, 30));
    index.insert(id, rects.back());
  }
  for (int trial = 0; trial < 40; ++trial) {
    const Rect q = testutil::randomRect(rng, 200, 50);
    const auto hits = index.query(q);
    for (std::uint32_t id = 0; id < rects.size(); ++id) {
      if (rects[id].overlaps(q)) {
        EXPECT_TRUE(std::find(hits.begin(), hits.end(), id) != hits.end())
            << "missed id " << id << " trial " << trial;
      }
    }
  }
}

TEST(GridIndexTest, ResetDropsStaleEntriesAndRetargets) {
  GridIndex index({0, 0, 100, 100}, 10);
  index.insert(1, {5, 5, 15, 15});
  index.reset({0, 0, 50, 50}, 5);
  EXPECT_TRUE(index.query({0, 0, 50, 50}).empty());
  index.insert(2, {10, 10, 20, 20});
  const auto hits = index.query({12, 12, 14, 14});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 2u);
}

TEST(GridIndexTest, DefaultConstructedUsableAfterReset) {
  GridIndex index;
  index.reset({0, 0, 80, 80}, 8);
  index.insert(5, {40, 40, 48, 48});
  const auto hits = index.query({42, 42, 44, 44});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 5u);
}

TEST(GridIndexTest, RepeatedResetMatchesFreshIndex) {
  // The per-window scratch pattern: one index reset across many windows
  // must answer exactly like a freshly built one every time.
  Rng rng(77);
  GridIndex reused;
  for (int window = 0; window < 10; ++window) {
    const Coord extent = rng.uniformInt(60, 300);
    const Coord pitch = rng.uniformInt(4, 40);
    reused.reset({0, 0, extent, extent}, pitch);
    GridIndex fresh({0, 0, extent, extent}, pitch);
    std::vector<Rect> rects;
    for (std::uint32_t id = 0; id < 25; ++id) {
      rects.push_back(testutil::randomRect(rng, extent, 50));
      reused.insert(id, rects.back());
      fresh.insert(id, rects.back());
    }
    for (int trial = 0; trial < 10; ++trial) {
      const Rect q = testutil::randomRect(rng, extent, 80);
      auto a = reused.query(q);
      auto b = fresh.query(q);
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      EXPECT_EQ(a, b) << "window " << window << " trial " << trial;
    }
  }
}

TEST(GridIndexTest, WindowCellSizeClampsToTargetAndWindow) {
  // Target pitch dominates when it is coarser than 1/64 of the window.
  EXPECT_EQ(windowCellSize({0, 0, 2000, 2000}, 200), 200);
  // Large windows floor the pitch at minDim/64 to bound the cell table.
  EXPECT_EQ(windowCellSize({0, 0, 6400, 6400}, 10), 100);
  // Degenerate windows and zero targets still yield a positive pitch.
  EXPECT_EQ(windowCellSize({0, 0, 1, 1}, 0), 1);
}

TEST(GridIndexTest, OutOfExtentRectClampedButDiscoverable) {
  GridIndex index({0, 0, 100, 100}, 10);
  index.insert(9, {-20, -20, -5, -5});  // fully outside; clamps to border
  const auto hits = index.query({0, 0, 15, 15});
  EXPECT_EQ(hits.size(), 1u);
}

}  // namespace
}  // namespace ofl::geom
