#include "geometry/contour.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "geometry/decompose.hpp"

namespace ofl::geom {
namespace {

// Round-trip helper: contours -> even-odd decompose must reproduce the
// region exactly.
void expectRoundTrip(const Region& region) {
  const std::vector<Polygon> loops = contours(region);
  // decomposeEvenOdd produces a different (equally valid) disjoint cover;
  // re-normalizing through the Region constructor makes both canonical.
  const Region back(decomposeEvenOdd(loops));
  EXPECT_EQ(back, region);
}

TEST(ContourTest, EmptyRegion) {
  EXPECT_TRUE(contours(Region{}).empty());
}

TEST(ContourTest, SingleRect) {
  const Region region(Rect{2, 3, 12, 9});
  const auto loops = contours(region);
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_TRUE(loops[0].isValidRectilinear());
  EXPECT_EQ(loops[0].size(), 4u);
  EXPECT_EQ(loops[0].area(), 60);
  expectRoundTrip(region);
}

TEST(ContourTest, LShapeSingleLoopSixVertices) {
  const Region region(std::vector<Rect>{{0, 0, 10, 5}, {0, 5, 5, 10}});
  const auto loops = contours(region);
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_TRUE(loops[0].isValidRectilinear());
  EXPECT_EQ(loops[0].size(), 6u);
  EXPECT_EQ(loops[0].area(), 75);
  expectRoundTrip(region);
}

TEST(ContourTest, TwoIslandsTwoLoops) {
  const Region region(std::vector<Rect>{{0, 0, 5, 5}, {10, 10, 15, 15}});
  const auto loops = contours(region);
  EXPECT_EQ(loops.size(), 2u);
  expectRoundTrip(region);
}

TEST(ContourTest, DonutProducesHoleLoop) {
  // 12x12 ring with a 4x4 hole.
  const Region outer(Rect{0, 0, 12, 12});
  const Region region = outer.subtract(Region(Rect{4, 4, 8, 8}));
  const auto loops = contours(region);
  ASSERT_EQ(loops.size(), 2u);
  // One loop has area 144 (outer), the other 16 (hole).
  Area a0 = loops[0].area();
  Area a1 = loops[1].area();
  if (a0 < a1) std::swap(a0, a1);
  EXPECT_EQ(a0, 144);
  EXPECT_EQ(a1, 16);
  expectRoundTrip(region);
}

TEST(ContourTest, AbuttingRectsMergeIntoOneLoop) {
  const Region region(std::vector<Rect>{{0, 0, 5, 10}, {5, 0, 10, 10}});
  const auto loops = contours(region);
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_EQ(loops[0].size(), 4u);  // interior edge cancelled
  expectRoundTrip(region);
}

TEST(ContourTest, CornerTouchingRectsRoundTrip) {
  // Pinch point at (5,5): loops may be degenerate there but the even-odd
  // round trip must still be exact.
  const Region region(std::vector<Rect>{{0, 0, 5, 5}, {5, 5, 10, 10}});
  expectRoundTrip(region);
}

TEST(ContourTest, RandomRegionsRoundTrip) {
  Rng rng(314);
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<Rect> rects;
    const int n = static_cast<int>(rng.uniformInt(1, 14));
    for (int k = 0; k < n; ++k) {
      rects.push_back(testutil::randomRect(rng, 64, 24));
    }
    const Region region(rects);
    expectRoundTrip(region);
  }
}

TEST(ContourTest, LoopCountMatchesComponentsPlusHoles) {
  // A plus-shape (one component, no holes) -> one loop.
  const Region plus(std::vector<Rect>{{4, 0, 8, 12}, {0, 4, 12, 8}});
  EXPECT_EQ(contours(plus).size(), 1u);
}

}  // namespace
}  // namespace ofl::geom
