#include "geometry/rect.hpp"

#include <gtest/gtest.h>

namespace ofl::geom {
namespace {

TEST(RectTest, BasicDimensions) {
  const Rect r{2, 3, 10, 7};
  EXPECT_EQ(r.width(), 8);
  EXPECT_EQ(r.height(), 4);
  EXPECT_EQ(r.area(), 32);
  EXPECT_FALSE(r.empty());
}

TEST(RectTest, EmptyWhenDegenerate) {
  EXPECT_TRUE(Rect(5, 5, 5, 9).empty());
  EXPECT_TRUE(Rect(5, 5, 9, 5).empty());
  EXPECT_TRUE(Rect(9, 9, 5, 5).empty());
  EXPECT_TRUE(Rect{}.empty());
}

TEST(RectTest, HalfOpenContainsPoint) {
  const Rect r{0, 0, 10, 10};
  EXPECT_TRUE(r.contains(Point{0, 0}));
  EXPECT_TRUE(r.contains(Point{9, 9}));
  EXPECT_FALSE(r.contains(Point{10, 0}));
  EXPECT_FALSE(r.contains(Point{0, 10}));
}

TEST(RectTest, ContainsRect) {
  const Rect outer{0, 0, 10, 10};
  EXPECT_TRUE(outer.contains(Rect{0, 0, 10, 10}));
  EXPECT_TRUE(outer.contains(Rect{2, 2, 8, 8}));
  EXPECT_FALSE(outer.contains(Rect{2, 2, 11, 8}));
}

TEST(RectTest, AbuttingRectsDoNotOverlap) {
  const Rect a{0, 0, 5, 5};
  const Rect b{5, 0, 10, 5};
  EXPECT_FALSE(a.overlaps(b));
  EXPECT_TRUE(a.touches(b));
  EXPECT_EQ(a.overlapArea(b), 0);
}

TEST(RectTest, OverlapArea) {
  const Rect a{0, 0, 10, 10};
  const Rect b{5, 5, 15, 15};
  EXPECT_EQ(a.overlapArea(b), 25);
  EXPECT_EQ(b.overlapArea(a), 25);
}

TEST(RectTest, IntersectionOfDisjointIsEmpty) {
  const Rect a{0, 0, 4, 4};
  const Rect b{6, 6, 9, 9};
  EXPECT_TRUE(a.intersection(b).empty());
  EXPECT_EQ(a.overlapArea(b), 0);
}

TEST(RectTest, ExpandedGrowsAndShrinks) {
  const Rect r{10, 10, 20, 20};
  EXPECT_EQ(r.expanded(3), Rect(7, 7, 23, 23));
  EXPECT_EQ(r.expanded(-3), Rect(13, 13, 17, 17));
  EXPECT_TRUE(r.expanded(-6).empty());
}

TEST(RectTest, BboxUnionHandlesEmpty) {
  const Rect a{0, 0, 4, 4};
  EXPECT_EQ(Rect{}.bboxUnion(a), a);
  EXPECT_EQ(a.bboxUnion(Rect{}), a);
  EXPECT_EQ(a.bboxUnion(Rect{8, 8, 9, 9}), Rect(0, 0, 9, 9));
}

TEST(RectTest, DistanceAxisAligned) {
  const Rect a{0, 0, 10, 10};
  EXPECT_DOUBLE_EQ(a.distance(Rect{15, 0, 20, 10}), 5.0);
  EXPECT_DOUBLE_EQ(a.distance(Rect{0, 13, 10, 20}), 3.0);
  EXPECT_DOUBLE_EQ(a.distance(Rect{10, 0, 20, 10}), 0.0);  // abutting
  EXPECT_DOUBLE_EQ(a.distance(Rect{2, 2, 5, 5}), 0.0);     // overlapping
}

TEST(RectTest, DistanceDiagonal) {
  const Rect a{0, 0, 10, 10};
  const Rect b{13, 14, 20, 20};
  EXPECT_DOUBLE_EQ(a.distance(b), 5.0);  // 3-4-5 triangle
}

TEST(IntervalTest, Basics) {
  const Interval iv{3, 9};
  EXPECT_EQ(iv.length(), 6);
  EXPECT_TRUE(iv.contains(3));
  EXPECT_FALSE(iv.contains(9));
  EXPECT_TRUE(iv.overlaps(Interval{8, 12}));
  EXPECT_FALSE(iv.overlaps(Interval{9, 12}));
  EXPECT_EQ(iv.intersection(Interval{5, 20}), (Interval{5, 9}));
  EXPECT_TRUE(iv.intersection(Interval{10, 20}).empty());
}

}  // namespace
}  // namespace ofl::geom
