#include "geometry/rtree.hpp"

#include <algorithm>
#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace ofl::geom {
namespace {

TEST(RTreeTest, EmptyTree) {
  const RTree tree({});
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.query({0, 0, 100, 100}).empty());
}

TEST(RTreeTest, SingleRect) {
  const RTree tree({{10, 10, 20, 20}});
  EXPECT_EQ(tree.query({0, 0, 15, 15}), std::vector<std::uint32_t>{0});
  EXPECT_TRUE(tree.query({30, 30, 40, 40}).empty());
  EXPECT_TRUE(tree.query({20, 10, 30, 20}).empty());  // half-open abutment
}

TEST(RTreeTest, ExactResultsNotJustCandidates) {
  // Two far-apart rects whose bounding box covers the middle: a query in
  // the middle must return nothing.
  const RTree tree({{0, 0, 10, 10}, {90, 90, 100, 100}});
  EXPECT_TRUE(tree.query({40, 40, 60, 60}).empty());
}

TEST(RTreeTest, MatchesBruteForceOnRandomSets) {
  Rng rng(0x7EE);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<Rect> rects;
    const int n = static_cast<int>(rng.uniformInt(1, 400));
    for (int k = 0; k < n; ++k) {
      rects.push_back(testutil::randomRect(rng, 1000, 120));
    }
    const RTree tree(rects, static_cast<int>(rng.uniformInt(2, 16)));
    EXPECT_EQ(tree.size(), rects.size());
    for (int q = 0; q < 20; ++q) {
      const Rect query = testutil::randomRect(rng, 1000, 300);
      std::vector<std::uint32_t> expected;
      for (std::uint32_t id = 0; id < rects.size(); ++id) {
        if (rects[id].overlaps(query)) expected.push_back(id);
      }
      EXPECT_EQ(tree.query(query), expected)
          << "trial " << trial << " query " << q;
    }
  }
}

TEST(RTreeTest, MixedScalesHandled) {
  // One die-sized rect among thousands of tiny ones — the case that
  // degrades a uniform grid.
  Rng rng(5);
  std::vector<Rect> rects;
  rects.push_back({0, 0, 10000, 10000});
  for (int k = 0; k < 2000; ++k) {
    rects.push_back(testutil::randomRect(rng, 10000, 40));
  }
  const RTree tree(rects);
  const auto hits = tree.query({5000, 5000, 5001, 5001});
  EXPECT_FALSE(hits.empty());
  EXPECT_TRUE(std::find(hits.begin(), hits.end(), 0u) != hits.end());
}

TEST(RTreeTest, HeightLogarithmic) {
  std::vector<Rect> rects;
  for (int k = 0; k < 4096; ++k) {
    rects.push_back({k * 10, 0, k * 10 + 5, 5});
  }
  const RTree tree(rects, 8);
  EXPECT_LE(tree.height(), 5);  // ceil(log8(4096)) = 4 (+1 slack)
}

TEST(RTreeTest, VisitSeesEveryMatchOnce) {
  std::vector<Rect> rects;
  for (int k = 0; k < 100; ++k) {
    rects.push_back({k, 0, k + 1, 10});
  }
  const RTree tree(rects);
  std::vector<int> seen(100, 0);
  tree.visit({0, 0, 100, 10}, [&seen](std::uint32_t id) { ++seen[id]; });
  for (int k = 0; k < 100; ++k) EXPECT_EQ(seen[static_cast<std::size_t>(k)], 1);
}

}  // namespace
}  // namespace ofl::geom
