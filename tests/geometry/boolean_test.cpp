#include "geometry/boolean.hpp"

#include <algorithm>

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace ofl::geom {
namespace {

TEST(BooleanTest, UnionOfDisjoint) {
  const std::vector<Rect> a{{0, 0, 5, 5}};
  const std::vector<Rect> b{{10, 10, 15, 15}};
  EXPECT_EQ(booleanArea(a, b, BoolOp::kUnion), 50);
  EXPECT_EQ(booleanArea(a, b, BoolOp::kIntersect), 0);
}

TEST(BooleanTest, UnionMergesOverlap) {
  const std::vector<Rect> a{{0, 0, 10, 10}};
  const std::vector<Rect> b{{5, 5, 15, 15}};
  EXPECT_EQ(booleanArea(a, b, BoolOp::kUnion), 175);
  EXPECT_EQ(booleanArea(a, b, BoolOp::kIntersect), 25);
  EXPECT_EQ(booleanArea(a, b, BoolOp::kSubtract), 75);
  EXPECT_EQ(booleanArea(a, b, BoolOp::kXor), 150);
}

TEST(BooleanTest, SelfOverlappingInputNormalized) {
  const std::vector<Rect> a{{0, 0, 10, 10}, {0, 0, 10, 10}, {5, 0, 15, 10}};
  EXPECT_EQ(unionArea(a), 150);
  const auto rects = booleanOp(a, {}, BoolOp::kUnion);
  EXPECT_TRUE(testutil::pairwiseDisjoint(rects));
  Area sum = 0;
  for (const Rect& r : rects) sum += r.area();
  EXPECT_EQ(sum, 150);
}

TEST(BooleanTest, SubtractPunchesHole) {
  const std::vector<Rect> a{{0, 0, 10, 10}};
  const std::vector<Rect> b{{3, 3, 7, 7}};
  const auto rects = booleanOp(a, b, BoolOp::kSubtract);
  Area sum = 0;
  for (const Rect& r : rects) {
    sum += r.area();
    EXPECT_EQ(r.overlapArea({3, 3, 7, 7}), 0);
  }
  EXPECT_EQ(sum, 84);
  EXPECT_TRUE(testutil::pairwiseDisjoint(rects));
}

TEST(BooleanTest, AbuttingRectsUnionWithoutDoubleCount) {
  const std::vector<Rect> a{{0, 0, 5, 10}};
  const std::vector<Rect> b{{5, 0, 10, 10}};
  EXPECT_EQ(booleanArea(a, b, BoolOp::kUnion), 100);
  EXPECT_EQ(booleanArea(a, b, BoolOp::kIntersect), 0);
  EXPECT_EQ(booleanArea(a, b, BoolOp::kXor), 100);
}

TEST(BooleanTest, EmptyOperands) {
  const std::vector<Rect> a{{0, 0, 5, 5}};
  EXPECT_EQ(booleanArea(a, {}, BoolOp::kUnion), 25);
  EXPECT_EQ(booleanArea({}, a, BoolOp::kUnion), 25);
  EXPECT_EQ(booleanArea({}, {}, BoolOp::kUnion), 0);
  EXPECT_EQ(booleanArea(a, {}, BoolOp::kIntersect), 0);
  EXPECT_EQ(booleanArea({}, a, BoolOp::kSubtract), 0);
  EXPECT_TRUE(booleanOp({}, {}, BoolOp::kXor).empty());
}

TEST(BooleanTest, DegenerateInputRectsIgnored) {
  const std::vector<Rect> a{{0, 0, 0, 10}, {3, 3, 3, 3}};
  const std::vector<Rect> b{{0, 0, 4, 4}};
  EXPECT_EQ(booleanArea(a, b, BoolOp::kUnion), 16);
}

// Property test: every op agrees with brute-force rasterization on random
// inputs, and booleanOp output is always disjoint with area matching
// booleanArea.
struct BooleanCase {
  char opChar;
  BoolOp op;
};

class BooleanPropertyTest : public ::testing::TestWithParam<BooleanCase> {};

TEST_P(BooleanPropertyTest, MatchesRasterOracle) {
  const auto [opChar, op] = GetParam();
  Rng rng(0xB001 + static_cast<unsigned>(opChar));
  constexpr int kExtent = 48;
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<Rect> a;
    std::vector<Rect> b;
    const int na = static_cast<int>(rng.uniformInt(0, 12));
    const int nb = static_cast<int>(rng.uniformInt(0, 12));
    for (int k = 0; k < na; ++k) a.push_back(testutil::randomRect(rng, kExtent, 20));
    for (int k = 0; k < nb; ++k) b.push_back(testutil::randomRect(rng, kExtent, 20));

    testutil::Raster ra(kExtent);
    testutil::Raster rb(kExtent);
    ra.paint(a);
    rb.paint(b);
    const long long expected = testutil::Raster::opArea(ra, rb, opChar);

    EXPECT_EQ(booleanArea(a, b, op), expected) << "trial " << trial;

    const auto rects = booleanOp(a, b, op);
    Area sum = 0;
    for (const Rect& r : rects) sum += r.area();
    EXPECT_EQ(sum, expected) << "trial " << trial;
    EXPECT_TRUE(testutil::pairwiseDisjoint(rects)) << "trial " << trial;
  }
}

TEST(OverlapSumTest, MatchesPerShapeAccumulation) {
  Rng rng(911);
  for (int trial = 0; trial < 50; ++trial) {
    const Rect query = testutil::randomRect(rng, 200, 60);
    std::vector<Rect> shapes;
    const int n = static_cast<int>(rng.uniformInt(0, 15));
    for (int k = 0; k < n; ++k) {
      shapes.push_back(testutil::randomRect(rng, 200, 40));
    }
    Area expected = 0;
    for (const Rect& s : shapes) expected += query.overlapArea(s);
    EXPECT_EQ(overlapAreaSum(query, shapes), expected) << "trial " << trial;
  }
}

TEST(OverlapSumTest, CountsSelfOverlappingShapesPairwise) {
  // The Eqn. 8 neighbor set legitimately self-overlaps (layers l-1 and
  // l+1 both project onto the plane): the pairwise sum counts every
  // covering shape once, unlike coverage-based intersectionArea.
  const Rect query{0, 0, 10, 10};
  const std::vector<Rect> shapes{{2, 2, 8, 8}, {2, 2, 8, 8}};
  EXPECT_EQ(overlapAreaSum(query, shapes), 72);
  const std::vector<Rect> q{query};
  EXPECT_EQ(intersectionArea(q, shapes), 36);
}

TEST(OverlapSumTest, DisjointVariantAgreesOnDisjointInput) {
  // A disjoint grid of shapes: both kernels and the coverage-based sweep
  // agree exactly.
  const Rect query{3, 3, 47, 47};
  std::vector<Rect> shapes;
  for (Coord y = 0; y < 50; y += 10) {
    for (Coord x = 0; x < 50; x += 10) {
      shapes.push_back({x, y, x + 8, y + 8});
    }
  }
  ASSERT_TRUE(testutil::pairwiseDisjoint(shapes));
  const Area sum = overlapAreaSum(query, shapes);
  EXPECT_EQ(overlapAreaDisjoint(query, shapes), sum);
  const std::vector<Rect> q{query};
  EXPECT_EQ(intersectionArea(q, shapes), sum);
}

// The two coverage-table kernels must be interchangeable: same canonical
// decomposition, rect for rect. booleanOpInto emits that decomposition in
// sweep order, so it must match after a canonical sort.
TEST_P(BooleanPropertyTest, KernelsBitIdenticalAndIntoMatches) {
  const auto [opChar, op] = GetParam();
  Rng rng(0x5EEB + static_cast<unsigned>(opChar));
  constexpr int kExtent = 48;
  std::vector<Rect> into;
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<Rect> a;
    std::vector<Rect> b;
    const int na = static_cast<int>(rng.uniformInt(0, 12));
    const int nb = static_cast<int>(rng.uniformInt(0, 12));
    for (int k = 0; k < na; ++k) a.push_back(testutil::randomRect(rng, kExtent, 20));
    for (int k = 0; k < nb; ++k) b.push_back(testutil::randomRect(rng, kExtent, 20));

    const auto flat = booleanOp(a, b, op, SweepKernel::kFlat);
    const auto tree = booleanOp(a, b, op, SweepKernel::kTree);
    EXPECT_EQ(flat, tree) << "trial " << trial;

    booleanOpInto(a, b, op, into);  // reused across trials on purpose
    std::sort(into.begin(), into.end(), RectYXLess{});
    EXPECT_EQ(into, flat) << "trial " << trial;
  }
}

TEST(OverlapSumTest, DisjointVariantAssertsOnOverlappingInput) {
  // The documented precondition is debug-asserted: feeding a
  // self-overlapping set to the disjoint kernel is the bug class the
  // assert exists to catch.
  const Rect query{0, 0, 10, 10};
  const std::vector<Rect> shapes{{1, 1, 6, 6}, {4, 4, 9, 9}};
  EXPECT_DEBUG_DEATH(overlapAreaDisjoint(query, shapes), "disjoint");
}

INSTANTIATE_TEST_SUITE_P(AllOps, BooleanPropertyTest,
                         ::testing::Values(BooleanCase{'|', BoolOp::kUnion},
                                           BooleanCase{'&', BoolOp::kIntersect},
                                           BooleanCase{'-', BoolOp::kSubtract},
                                           BooleanCase{'^', BoolOp::kXor}),
                         [](const auto& info) {
                           switch (info.param.op) {
                             case BoolOp::kUnion: return "Union";
                             case BoolOp::kIntersect: return "Intersect";
                             case BoolOp::kSubtract: return "Subtract";
                             case BoolOp::kXor: return "Xor";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace ofl::geom
