#include "geometry/boolean.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace ofl::geom {
namespace {

TEST(BooleanTest, UnionOfDisjoint) {
  const std::vector<Rect> a{{0, 0, 5, 5}};
  const std::vector<Rect> b{{10, 10, 15, 15}};
  EXPECT_EQ(booleanArea(a, b, BoolOp::kUnion), 50);
  EXPECT_EQ(booleanArea(a, b, BoolOp::kIntersect), 0);
}

TEST(BooleanTest, UnionMergesOverlap) {
  const std::vector<Rect> a{{0, 0, 10, 10}};
  const std::vector<Rect> b{{5, 5, 15, 15}};
  EXPECT_EQ(booleanArea(a, b, BoolOp::kUnion), 175);
  EXPECT_EQ(booleanArea(a, b, BoolOp::kIntersect), 25);
  EXPECT_EQ(booleanArea(a, b, BoolOp::kSubtract), 75);
  EXPECT_EQ(booleanArea(a, b, BoolOp::kXor), 150);
}

TEST(BooleanTest, SelfOverlappingInputNormalized) {
  const std::vector<Rect> a{{0, 0, 10, 10}, {0, 0, 10, 10}, {5, 0, 15, 10}};
  EXPECT_EQ(unionArea(a), 150);
  const auto rects = booleanOp(a, {}, BoolOp::kUnion);
  EXPECT_TRUE(testutil::pairwiseDisjoint(rects));
  Area sum = 0;
  for (const Rect& r : rects) sum += r.area();
  EXPECT_EQ(sum, 150);
}

TEST(BooleanTest, SubtractPunchesHole) {
  const std::vector<Rect> a{{0, 0, 10, 10}};
  const std::vector<Rect> b{{3, 3, 7, 7}};
  const auto rects = booleanOp(a, b, BoolOp::kSubtract);
  Area sum = 0;
  for (const Rect& r : rects) {
    sum += r.area();
    EXPECT_EQ(r.overlapArea({3, 3, 7, 7}), 0);
  }
  EXPECT_EQ(sum, 84);
  EXPECT_TRUE(testutil::pairwiseDisjoint(rects));
}

TEST(BooleanTest, AbuttingRectsUnionWithoutDoubleCount) {
  const std::vector<Rect> a{{0, 0, 5, 10}};
  const std::vector<Rect> b{{5, 0, 10, 10}};
  EXPECT_EQ(booleanArea(a, b, BoolOp::kUnion), 100);
  EXPECT_EQ(booleanArea(a, b, BoolOp::kIntersect), 0);
  EXPECT_EQ(booleanArea(a, b, BoolOp::kXor), 100);
}

TEST(BooleanTest, EmptyOperands) {
  const std::vector<Rect> a{{0, 0, 5, 5}};
  EXPECT_EQ(booleanArea(a, {}, BoolOp::kUnion), 25);
  EXPECT_EQ(booleanArea({}, a, BoolOp::kUnion), 25);
  EXPECT_EQ(booleanArea({}, {}, BoolOp::kUnion), 0);
  EXPECT_EQ(booleanArea(a, {}, BoolOp::kIntersect), 0);
  EXPECT_EQ(booleanArea({}, a, BoolOp::kSubtract), 0);
  EXPECT_TRUE(booleanOp({}, {}, BoolOp::kXor).empty());
}

TEST(BooleanTest, DegenerateInputRectsIgnored) {
  const std::vector<Rect> a{{0, 0, 0, 10}, {3, 3, 3, 3}};
  const std::vector<Rect> b{{0, 0, 4, 4}};
  EXPECT_EQ(booleanArea(a, b, BoolOp::kUnion), 16);
}

// Property test: every op agrees with brute-force rasterization on random
// inputs, and booleanOp output is always disjoint with area matching
// booleanArea.
struct BooleanCase {
  char opChar;
  BoolOp op;
};

class BooleanPropertyTest : public ::testing::TestWithParam<BooleanCase> {};

TEST_P(BooleanPropertyTest, MatchesRasterOracle) {
  const auto [opChar, op] = GetParam();
  Rng rng(0xB001 + static_cast<unsigned>(opChar));
  constexpr int kExtent = 48;
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<Rect> a;
    std::vector<Rect> b;
    const int na = static_cast<int>(rng.uniformInt(0, 12));
    const int nb = static_cast<int>(rng.uniformInt(0, 12));
    for (int k = 0; k < na; ++k) a.push_back(testutil::randomRect(rng, kExtent, 20));
    for (int k = 0; k < nb; ++k) b.push_back(testutil::randomRect(rng, kExtent, 20));

    testutil::Raster ra(kExtent);
    testutil::Raster rb(kExtent);
    ra.paint(a);
    rb.paint(b);
    const long long expected = testutil::Raster::opArea(ra, rb, opChar);

    EXPECT_EQ(booleanArea(a, b, op), expected) << "trial " << trial;

    const auto rects = booleanOp(a, b, op);
    Area sum = 0;
    for (const Rect& r : rects) sum += r.area();
    EXPECT_EQ(sum, expected) << "trial " << trial;
    EXPECT_TRUE(testutil::pairwiseDisjoint(rects)) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, BooleanPropertyTest,
                         ::testing::Values(BooleanCase{'|', BoolOp::kUnion},
                                           BooleanCase{'&', BoolOp::kIntersect},
                                           BooleanCase{'-', BoolOp::kSubtract},
                                           BooleanCase{'^', BoolOp::kXor}),
                         [](const auto& info) {
                           switch (info.param.op) {
                             case BoolOp::kUnion: return "Union";
                             case BoolOp::kIntersect: return "Intersect";
                             case BoolOp::kSubtract: return "Subtract";
                             case BoolOp::kXor: return "Xor";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace ofl::geom
