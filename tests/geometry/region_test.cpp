#include "geometry/region.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace ofl::geom {
namespace {

TEST(RegionTest, NormalizesOverlappingInput) {
  const std::vector<Rect> rects{{0, 0, 10, 10}, {5, 0, 15, 10}};
  const Region region(rects);
  EXPECT_EQ(region.area(), 150);
  EXPECT_TRUE(testutil::pairwiseDisjoint(region.rects()));
}

TEST(RegionTest, SetOperations) {
  const Region a(Rect{0, 0, 10, 10});
  const Region b(Rect{5, 5, 15, 15});
  EXPECT_EQ(a.unite(b).area(), 175);
  EXPECT_EQ(a.intersect(b).area(), 25);
  EXPECT_EQ(a.subtract(b).area(), 75);
  EXPECT_EQ(a.overlapArea(b), 25);
}

TEST(RegionTest, EmptyRegion) {
  const Region empty;
  const Region a(Rect{0, 0, 4, 4});
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.area(), 0);
  EXPECT_EQ(a.intersect(empty).area(), 0);
  EXPECT_EQ(a.unite(empty).area(), 16);
  EXPECT_EQ(a.subtract(empty).area(), 16);
  EXPECT_TRUE(Region(Rect{3, 3, 3, 9}).empty());  // degenerate rect
}

TEST(RegionTest, ClippedToWindow) {
  const Region a(std::vector<Rect>{{0, 0, 10, 10}, {20, 20, 30, 30}});
  const Region c = a.clipped({5, 5, 25, 25});
  EXPECT_EQ(c.area(), 25 + 25);
  for (const Rect& r : c.rects()) {
    EXPECT_TRUE(Rect(5, 5, 25, 25).contains(r));
  }
}

TEST(RegionTest, BboxCoversAll) {
  const Region a(std::vector<Rect>{{2, 3, 4, 5}, {10, 1, 12, 9}});
  EXPECT_EQ(a.bbox(), Rect(2, 1, 12, 9));
}

TEST(RegionTest, ShrunkOfRect) {
  const Region a(Rect{0, 0, 20, 20});
  const Region s = a.shrunk(3);
  EXPECT_EQ(s.area(), 14 * 14);
  EXPECT_EQ(s.bbox(), Rect(3, 3, 17, 17));
}

TEST(RegionTest, ShrunkEliminatesSlivers) {
  // A 20x20 square with a 4-wide corridor attached: eroding by 3 must
  // remove the corridor entirely (4 < 2*3 + 1).
  const Region a(std::vector<Rect>{{0, 0, 20, 20}, {20, 8, 40, 12}});
  const Region s = a.shrunk(3);
  EXPECT_EQ(s.area(), 14 * 14);
}

TEST(RegionTest, ShrunkZeroIsIdentity) {
  const Region a(std::vector<Rect>{{0, 0, 10, 10}, {20, 0, 25, 5}});
  EXPECT_EQ(a.shrunk(0), a);
}

TEST(RegionTest, ShrunkPointStaysInsideOriginal) {
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Rect> rects;
    for (int k = 0; k < 8; ++k) rects.push_back(testutil::randomRect(rng, 60, 25));
    const Region region(rects);
    const Region eroded = region.shrunk(2);
    // Erosion is anti-extensive and every eroded point keeps a 2-margin:
    // growing the eroded rects back by 2 must stay inside the original.
    for (Rect r : eroded.rects()) {
      r = r.expanded(2);
      EXPECT_EQ(Region(r).subtract(region).area(), 0) << "trial " << trial;
    }
  }
}

}  // namespace
}  // namespace ofl::geom
