#include "geometry/polygon.hpp"

#include <gtest/gtest.h>

namespace ofl::geom {
namespace {

TEST(PolygonTest, FromRect) {
  const Polygon p = Polygon::fromRect({0, 0, 10, 5});
  EXPECT_EQ(p.size(), 4u);
  EXPECT_TRUE(p.isValidRectilinear());
  EXPECT_EQ(p.area(), 50);
  EXPECT_EQ(p.bbox(), Rect(0, 0, 10, 5));
}

TEST(PolygonTest, LShapeAreaAndValidity) {
  // 10x10 square minus 5x5 upper-right notch = 75.
  const Polygon p({{0, 0}, {10, 0}, {10, 5}, {5, 5}, {5, 10}, {0, 10}});
  EXPECT_TRUE(p.isValidRectilinear());
  EXPECT_EQ(p.area(), 75);
  EXPECT_EQ(p.bbox(), Rect(0, 0, 10, 10));
}

TEST(PolygonTest, ClockwiseAreaIsPositive) {
  const Polygon ccw({{0, 0}, {10, 0}, {10, 10}, {0, 10}});
  const Polygon cw({{0, 0}, {0, 10}, {10, 10}, {10, 0}});
  EXPECT_EQ(ccw.area(), 100);
  EXPECT_EQ(cw.area(), 100);
}

TEST(PolygonTest, RejectsDiagonalEdges) {
  const Polygon p({{0, 0}, {10, 10}, {0, 10}, {0, 5}});
  EXPECT_FALSE(p.isValidRectilinear());
}

TEST(PolygonTest, RejectsCollinearRedundantVertices) {
  const Polygon p({{0, 0}, {5, 0}, {10, 0}, {10, 10}, {0, 10}, {0, 5}});
  EXPECT_FALSE(p.isValidRectilinear());
}

TEST(PolygonTest, RejectsTooFewOrOddVertexCount) {
  EXPECT_FALSE(Polygon({{0, 0}, {10, 0}, {10, 10}}).isValidRectilinear());
  EXPECT_FALSE(Polygon{}.isValidRectilinear());
}

TEST(PolygonTest, EmptyPolygon) {
  const Polygon p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.area(), 0);
  EXPECT_TRUE(p.bbox().empty());
}

}  // namespace
}  // namespace ofl::geom
