#include "density/heatmap.hpp"

#include <gtest/gtest.h>

#include <cstdio>

namespace ofl::density {
namespace {

TEST(HeatmapTest, AsciiDimensionsAndOrientation) {
  // 2 cols x 3 rows; row 0 must print LAST (bottom).
  const DensityMap map(2, 3, {0.0, 0.0,    // row 0
                              0.5, 0.5,    // row 1
                              0.99, 0.99}); // row 2
  HeatmapOptions opt;
  opt.ramp = "abc";
  const std::string art = renderAscii(map, opt);
  EXPECT_EQ(art, "cc\nbb\naa\n");
}

TEST(HeatmapTest, ValuesClampedToRange) {
  const DensityMap map(2, 1, {-0.5, 2.0});
  HeatmapOptions opt;
  opt.ramp = "ab";
  EXPECT_EQ(renderAscii(map, opt), "ab\n");
}

TEST(HeatmapTest, AutoscaleUsesMapExtrema) {
  const DensityMap map(3, 1, {0.40, 0.45, 0.50});
  HeatmapOptions opt;
  opt.ramp = "ab";
  opt.autoscale = true;
  // Without autoscale all three values land on 'a'; with it the spread
  // covers the ramp (t = 0, 0.5, 1.0 -> indices 0, 1, 1 on a 2-char ramp).
  EXPECT_EQ(renderAscii(map, opt), "abb\n");
  // Without autoscale the full [0,1] range maps 0.40/0.45 to 'a' and the
  // 0.50 midpoint exactly to 'b'.
  opt.autoscale = false;
  EXPECT_EQ(renderAscii(map, opt), "aab\n");
}

TEST(HeatmapTest, EmptyMap) {
  EXPECT_EQ(renderAscii(DensityMap{}), "");
  EXPECT_EQ(renderCsv(DensityMap{}), "");
}

TEST(HeatmapTest, CsvRoundTripParsable) {
  const DensityMap map(2, 2, {0.1, 0.2, 0.3, 0.4});
  const std::string csv = renderCsv(map);
  double a, b, c, d;
  ASSERT_EQ(std::sscanf(csv.c_str(), "%lf,%lf\n%lf,%lf", &a, &b, &c, &d), 4);
  EXPECT_DOUBLE_EQ(a, 0.1);
  EXPECT_DOUBLE_EQ(b, 0.2);
  EXPECT_DOUBLE_EQ(c, 0.3);
  EXPECT_DOUBLE_EQ(d, 0.4);
}

TEST(HeatmapTest, WriteCsvFile) {
  const DensityMap map(1, 1, {0.75});
  const std::string path = "/tmp/ofl_heatmap_test.csv";
  ASSERT_TRUE(writeCsv(map, path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  double v = 0;
  EXPECT_EQ(std::fscanf(f, "%lf", &v), 1);
  EXPECT_DOUBLE_EQ(v, 0.75);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_FALSE(writeCsv(map, "/nonexistent/dir/x.csv"));
}

}  // namespace
}  // namespace ofl::density
