#include <gtest/gtest.h>

#include <cmath>

#include "density/bounds.hpp"
#include "density/density_map.hpp"
#include "density/metrics.hpp"
#include "layout/fill_region.hpp"

namespace ofl::density {
namespace {

TEST(DensityMapTest, UniformCoverage) {
  layout::Layout chip({0, 0, 100, 100}, 1);
  chip.layer(0).wires.push_back({0, 0, 100, 50});  // covers half of each col
  const layout::WindowGrid grid(chip.die(), 50);
  const DensityMap map = DensityMap::compute(chip, 0, grid);
  EXPECT_DOUBLE_EQ(map.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(map.at(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(map.at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(map.at(1, 1), 0.0);
}

TEST(DensityMapTest, OverlappingShapesCountOnce) {
  const layout::WindowGrid grid({0, 0, 10, 10}, 10);
  const DensityMap map = DensityMap::computeFromShapes(
      {{0, 0, 10, 5}, {0, 0, 5, 10}}, grid);
  EXPECT_DOUBLE_EQ(map.at(0, 0), 0.75);
}

TEST(DensityMapTest, FillsIncludedInLayerDensity) {
  layout::Layout chip({0, 0, 10, 10}, 1);
  chip.layer(0).wires.push_back({0, 0, 10, 2});
  chip.layer(0).fills.push_back({0, 5, 10, 8});
  const layout::WindowGrid grid(chip.die(), 10);
  EXPECT_DOUBLE_EQ(DensityMap::compute(chip, 0, grid).at(0, 0), 0.5);
}

TEST(MetricsTest, UniformMapHasZeroEverything) {
  const DensityMap map(4, 4, std::vector<double>(16, 0.42));
  const DensityMetrics m = computeMetrics(map);
  EXPECT_DOUBLE_EQ(m.mean, 0.42);
  EXPECT_DOUBLE_EQ(m.sigma, 0.0);
  EXPECT_DOUBLE_EQ(m.lineHotspot, 0.0);
  EXPECT_DOUBLE_EQ(m.outlierHotspot, 0.0);
}

TEST(MetricsTest, SigmaOfTwoPointDistribution) {
  // Half the windows at 0.2, half at 0.6: sigma = 0.2.
  std::vector<double> v(16, 0.2);
  for (int i = 8; i < 16; ++i) v[static_cast<std::size_t>(i)] = 0.6;
  const DensityMap map(4, 4, v);
  EXPECT_NEAR(variation(map), 0.2, 1e-12);
  EXPECT_NEAR(meanDensity(map), 0.4, 1e-12);
}

TEST(MetricsTest, LineHotspotsPerColumn) {
  // Column 0: densities 0 and 1 (column mean .5, deviation sum 1);
  // column 1: uniform (deviation 0). Eqn. (1) total = 1.
  const DensityMap map(2, 2, {0.0, 0.3, 1.0, 0.3});
  EXPECT_NEAR(lineHotspots(map), 1.0, 1e-12);
}

TEST(MetricsTest, ColumnUniformMapHasZeroLineHotspotsButPositiveSigma) {
  // Each column is internally uniform but columns differ: lh = 0, sigma > 0.
  const DensityMap map(2, 2, {0.1, 0.9, 0.1, 0.9});
  EXPECT_NEAR(lineHotspots(map), 0.0, 1e-12);
  EXPECT_GT(variation(map), 0.3);
}

TEST(MetricsTest, OutlierHotspotsOnlyBeyondThreeSigma) {
  // 99 windows at 0.5 and one at 1.0: the outlier exceeds 3 sigma.
  std::vector<double> v(100, 0.5);
  v[0] = 1.0;
  const DensityMap map(10, 10, v);
  const double sigma = variation(map);
  const double mean = meanDensity(map);
  const double expected = std::max(0.0, (1.0 - mean) - 3 * sigma);
  EXPECT_NEAR(outlierHotspots(map), expected + 99 * std::max(0.0, (mean - 0.5) - 3 * sigma), 1e-9);
  EXPECT_GT(outlierHotspots(map), 0.0);
}

TEST(MetricsTest, NoOutliersInTightDistribution) {
  const DensityMap map(2, 2, {0.50, 0.51, 0.49, 0.50});
  EXPECT_DOUBLE_EQ(outlierHotspots(map), 0.0);
}

TEST(BoundsTest, LowerIsWireDensityUpperAddsFreeSpace) {
  layout::Layout chip({0, 0, 100, 100}, 1);
  chip.layer(0).wires.push_back({0, 0, 100, 40});
  const layout::WindowGrid grid(chip.die(), 100);
  layout::DesignRules rules;
  rules.minWidth = 4;
  rules.minSpacing = 4;
  rules.minArea = 16;
  const auto regions = layout::computeFillRegions(chip, 0, grid, rules);
  const DensityBounds bounds = computeBounds(chip, 0, grid, regions, rules);
  ASSERT_EQ(bounds.lower.size(), 1u);
  EXPECT_NEAR(bounds.lower[0], 0.4, 1e-12);
  // Free space: y in [44, 100) -> 0.56 of the window.
  EXPECT_NEAR(bounds.upper[0], 0.4 + 0.56, 1e-12);
  EXPECT_LE(bounds.upper[0], 1.0);
}

TEST(BoundsTest, FullyWiredWindowHasNoHeadroom) {
  layout::Layout chip({0, 0, 50, 50}, 1);
  chip.layer(0).wires.push_back({0, 0, 50, 50});
  const layout::WindowGrid grid(chip.die(), 50);
  layout::DesignRules rules;
  const auto regions = layout::computeFillRegions(chip, 0, grid, rules);
  const DensityBounds bounds = computeBounds(chip, 0, grid, regions, rules);
  EXPECT_DOUBLE_EQ(bounds.lower[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds.upper[0], 1.0);
}

TEST(BoundsTest, UpperNeverBelowLower) {
  layout::Layout chip({0, 0, 200, 200}, 1);
  for (int k = 0; k < 12; ++k) {
    chip.layer(0).wires.push_back({k * 16, 0, k * 16 + 8, 200});
  }
  const layout::WindowGrid grid(chip.die(), 50);
  layout::DesignRules rules;
  rules.minSpacing = 6;
  rules.minWidth = 6;
  const auto regions = layout::computeFillRegions(chip, 0, grid, rules);
  const DensityBounds bounds = computeBounds(chip, 0, grid, regions, rules);
  for (std::size_t w = 0; w < bounds.lower.size(); ++w) {
    EXPECT_GE(bounds.upper[w] + 1e-12, bounds.lower[w]) << "window " << w;
  }
}

}  // namespace
}  // namespace ofl::density
