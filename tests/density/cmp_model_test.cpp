#include "density/cmp_model.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace ofl::density {
namespace {

TEST(CmpModelTest, UniformMapIsFixedPoint) {
  const DensityMap map(6, 6, std::vector<double>(36, 0.37));
  const DensityMap eff = effectiveDensity(map);
  for (const double v : eff.values()) {
    EXPECT_NEAR(v, 0.37, 1e-12);
  }
  const CmpSummary s = summarizeCmp(map);
  EXPECT_NEAR(s.thicknessRangeNm, 0.0, 1e-9);
}

TEST(CmpModelTest, KernelPreservesMassOnInterior) {
  // A centered impulse on a large map: the filtered values must sum back
  // to the impulse mass (kernel is normalized; borders untouched).
  std::vector<double> v(21 * 21, 0.0);
  v[static_cast<std::size_t>(10 * 21 + 10)] = 1.0;
  const DensityMap map(21, 21, v);
  const DensityMap eff = effectiveDensity(map);
  double sum = 0.0;
  for (const double x : eff.values()) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // Peak moved down, stays at the center, symmetric.
  EXPECT_GT(eff.at(10, 10), eff.at(9, 10));
  EXPECT_NEAR(eff.at(9, 10), eff.at(11, 10), 1e-12);
  EXPECT_NEAR(eff.at(10, 9), eff.at(10, 11), 1e-12);
  EXPECT_LT(eff.at(10, 10), 1.0);
}

TEST(CmpModelTest, SmoothingReducesRange) {
  Rng rng(12);
  std::vector<double> v(16 * 16);
  for (double& x : v) x = rng.uniformReal(0.0, 1.0);
  const DensityMap map(16, 16, v);
  const CmpSummary raw = summarizeCmp(map, {.planarizationWindows = 1e-6});
  const CmpSummary smooth = summarizeCmp(map, {.planarizationWindows = 2.0});
  EXPECT_LT(smooth.maxEffective - smooth.minEffective,
            raw.maxEffective - raw.minEffective);
}

TEST(CmpModelTest, LargerPlanarizationLengthSmoothsMore) {
  std::vector<double> v(16 * 16, 0.2);
  for (int j = 0; j < 16; ++j) {
    for (int i = 8; i < 16; ++i) v[static_cast<std::size_t>(j * 16 + i)] = 0.8;
  }
  const DensityMap map(16, 16, v);
  const CmpSummary s1 = summarizeCmp(map, {.planarizationWindows = 1.0});
  const CmpSummary s3 = summarizeCmp(map, {.planarizationWindows = 3.0});
  EXPECT_LT(s3.thicknessRangeNm, s1.thicknessRangeNm);
  EXPECT_GT(s1.thicknessRangeNm, 0.0);
}

TEST(CmpModelTest, ThicknessScalesWithStepHeight) {
  std::vector<double> v(8 * 8, 0.1);
  v[0] = 0.9;
  const DensityMap map(8, 8, v);
  const CmpSummary a = summarizeCmp(map, {.stepHeightNm = 50.0});
  const CmpSummary b = summarizeCmp(map, {.stepHeightNm = 100.0});
  EXPECT_NEAR(b.thicknessRangeNm, 2.0 * a.thicknessRangeNm, 1e-9);
}

TEST(CmpModelTest, EmptyMap) {
  const CmpSummary s = summarizeCmp(DensityMap{});
  EXPECT_DOUBLE_EQ(s.thicknessRangeNm, 0.0);
}

}  // namespace
}  // namespace ofl::density
