#include "density/sliding.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "geometry/boolean.hpp"

namespace ofl::density {
namespace {

TEST(SlidingDensityTest, UniformCoverageIsUniform) {
  const geom::Rect die{0, 0, 400, 400};
  const std::vector<geom::Rect> shapes{{0, 0, 400, 200}};  // lower half
  SlidingDensityOptions opt;
  opt.windowSize = 200;
  opt.steps = 2;
  const DensityMap map = computeSlidingDensity(shapes, die, opt);
  // Positions anchored at y=0 see full coverage; y=100 half/half ... check
  // a few known values. Grid: 3x3 positions (stride 100, 4x4 tiles).
  EXPECT_EQ(map.cols(), 3);
  EXPECT_EQ(map.rows(), 3);
  EXPECT_DOUBLE_EQ(map.at(0, 0), 1.0);    // window [0,200)^2 fully covered
  EXPECT_DOUBLE_EQ(map.at(0, 1), 0.5);    // window y in [100,300)
  EXPECT_DOUBLE_EQ(map.at(0, 2), 0.0);    // window y in [200,400)
}

TEST(SlidingDensityTest, CatchesHotspotFixedDissectionMisses) {
  // A dense 200x200 block centered on the corner of four fixed windows:
  // each fixed window sees only 25% of it, the sliding window centered on
  // it sees all of it.
  const geom::Rect die{0, 0, 800, 800};
  const std::vector<geom::Rect> shapes{{300, 300, 500, 500}};
  SlidingDensityOptions opt;
  opt.windowSize = 200;

  // Fixed dissection (stride == window size).
  opt.steps = 1;
  const SlidingExtrema fixed = slidingExtrema(shapes, die, opt);
  // Overlapping analysis at stride 50.
  opt.steps = 4;
  const SlidingExtrema sliding = slidingExtrema(shapes, die, opt);

  EXPECT_DOUBLE_EQ(fixed.maxDensity, 0.25);
  EXPECT_DOUBLE_EQ(sliding.maxDensity, 1.0);
}

TEST(SlidingDensityTest, StrideOneEqualsFixedDissection) {
  Rng rng(21);
  const geom::Rect die{0, 0, 600, 600};
  std::vector<geom::Rect> shapes;
  for (int k = 0; k < 30; ++k) {
    const geom::Coord w = rng.uniformInt(10, 120);
    const geom::Coord h = rng.uniformInt(10, 120);
    const geom::Coord x = rng.uniformInt(0, 600 - w);
    const geom::Coord y = rng.uniformInt(0, 600 - h);
    shapes.push_back({x, y, x + w, y + h});
  }
  SlidingDensityOptions opt;
  opt.windowSize = 200;
  opt.steps = 1;
  const DensityMap sliding = computeSlidingDensity(shapes, die, opt);
  const layout::WindowGrid grid(die, 200);
  const DensityMap fixed = DensityMap::computeFromShapes(shapes, grid);
  ASSERT_EQ(sliding.cols(), fixed.cols());
  ASSERT_EQ(sliding.rows(), fixed.rows());
  for (int j = 0; j < fixed.rows(); ++j) {
    for (int i = 0; i < fixed.cols(); ++i) {
      EXPECT_NEAR(sliding.at(i, j), fixed.at(i, j), 1e-12);
    }
  }
}

TEST(SlidingDensityTest, EveryPositionMatchesDirectMeasurement) {
  Rng rng(22);
  const geom::Rect die{0, 0, 400, 400};
  std::vector<geom::Rect> shapes;
  for (int k = 0; k < 20; ++k) {
    const geom::Coord w = rng.uniformInt(10, 90);
    const geom::Coord h = rng.uniformInt(10, 90);
    const geom::Coord x = rng.uniformInt(0, 400 - w);
    const geom::Coord y = rng.uniformInt(0, 400 - h);
    shapes.push_back({x, y, x + w, y + h});
  }
  SlidingDensityOptions opt;
  opt.windowSize = 100;
  opt.steps = 4;  // stride 25
  const DensityMap map = computeSlidingDensity(shapes, die, opt);
  for (int j = 0; j < map.rows(); ++j) {
    for (int i = 0; i < map.cols(); ++i) {
      const geom::Rect window{i * 25, j * 25,
                              std::min<geom::Coord>(i * 25 + 100, 400),
                              std::min<geom::Coord>(j * 25 + 100, 400)};
      std::vector<geom::Rect> clipped;
      for (const auto& s : shapes) {
        const geom::Rect c = s.intersection(window);
        if (!c.empty()) clipped.push_back(c);
      }
      const double expected =
          static_cast<double>(geom::unionArea(clipped)) /
          static_cast<double>(window.area());
      ASSERT_NEAR(map.at(i, j), expected, 1e-12)
          << "position " << i << "," << j;
    }
  }
}

TEST(SlidingDensityTest, EmptyShapesGiveZero) {
  SlidingDensityOptions opt;
  opt.windowSize = 100;
  const SlidingExtrema e = slidingExtrema({}, {0, 0, 300, 300}, opt);
  EXPECT_DOUBLE_EQ(e.minDensity, 0.0);
  EXPECT_DOUBLE_EQ(e.maxDensity, 0.0);
}

}  // namespace
}  // namespace ofl::density
