// FftDensity equivalence (ISSUE 9): the O(n log n) FFT smoothing pass must
// match the direct O(n * k^2) convolution it replaces — same truncated
// Gaussian kernel, same zero-padding and edge renormalization — to within
// floating-point roundoff, on grids that are not powers of two.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "density/density_map.hpp"
#include "density/fft_density.hpp"

namespace ofl::density {
namespace {

DensityMap randomMap(Rng& rng, int cols, int rows) {
  std::vector<double> v(static_cast<std::size_t>(cols) * rows);
  for (double& d : v) d = rng.uniformReal(0.0, 1.0);
  return DensityMap(cols, rows, std::move(v));
}

void expectMapsNear(const DensityMap& a, const DensityMap& b, double tol) {
  ASSERT_EQ(a.cols(), b.cols());
  ASSERT_EQ(a.rows(), b.rows());
  for (int j = 0; j < a.rows(); ++j) {
    for (int i = 0; i < a.cols(); ++i) {
      EXPECT_NEAR(a.at(i, j), b.at(i, j), tol) << "(" << i << "," << j << ")";
    }
  }
}

TEST(FftDensityTest, FftRoundTripRecoversInput) {
  Rng rng(11);
  std::vector<double> re(64), im(64);
  for (std::size_t i = 0; i < re.size(); ++i) {
    re[i] = rng.uniformReal(-1.0, 1.0);
    im[i] = rng.uniformReal(-1.0, 1.0);
  }
  std::vector<double> fre = re, fim = im;
  FftDensity::fft(fre, fim, /*inverse=*/false);
  FftDensity::fft(fre, fim, /*inverse=*/true);
  for (std::size_t i = 0; i < re.size(); ++i) {
    EXPECT_NEAR(fre[i], re[i], 1e-12);
    EXPECT_NEAR(fim[i], im[i], 1e-12);
  }
}

TEST(FftDensityTest, SmoothMatchesDirectConvolution) {
  Rng rng(42);
  // Non-power-of-two grids and sigmas whose 3-sigma kernel both fits
  // inside and overhangs the grid.
  const int dims[][2] = {{1, 1}, {3, 5}, {7, 7}, {16, 9}, {33, 21}};
  for (const auto& d : dims) {
    const DensityMap map = randomMap(rng, d[0], d[1]);
    for (const double sigma : {0.4, 1.0, 1.5, 4.0}) {
      const DensityMap viaFft = FftDensity::smooth(map, sigma);
      const DensityMap direct = FftDensity::smoothDirect(map, sigma);
      SCOPED_TRACE(::testing::Message()
                   << d[0] << "x" << d[1] << " sigma " << sigma);
      expectMapsNear(viaFft, direct, 1e-9);
    }
  }
}

TEST(FftDensityTest, NonPositiveSigmaIsIdentity) {
  Rng rng(7);
  const DensityMap map = randomMap(rng, 5, 4);
  for (const double sigma : {0.0, -1.0}) {
    const DensityMap out = FftDensity::smooth(map, sigma);
    expectMapsNear(out, map, 0.0);
  }
}

TEST(FftDensityTest, UniformMapIsFixedPoint) {
  // Edge renormalization exists exactly so a constant field stays constant
  // under smoothing (no darkening at the die boundary).
  const DensityMap map(9, 6, std::vector<double>(54, 0.37));
  const DensityMap out = FftDensity::smooth(map, 2.0);
  expectMapsNear(out, map, 1e-9);
}

TEST(FftDensityTest, SmoothingPreservesMassInterior) {
  // A single unit spike far from the edges spreads but keeps total mass.
  std::vector<double> v(31 * 31, 0.0);
  v[static_cast<std::size_t>(15 * 31 + 15)] = 1.0;
  const DensityMap map(31, 31, std::move(v));
  const DensityMap out = FftDensity::smooth(map, 2.0);
  double mass = 0.0;
  for (int j = 0; j < out.rows(); ++j)
    for (int i = 0; i < out.cols(); ++i) mass += out.at(i, j);
  EXPECT_NEAR(mass, 1.0, 1e-6);
  EXPECT_LT(out.at(15, 15), 1.0);
  EXPECT_GT(out.at(15, 15), out.at(0, 0));
}

}  // namespace
}  // namespace ofl::density
