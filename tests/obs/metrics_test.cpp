// Metrics registry unit tests: counter/gauge semantics, histogram bucket
// placement and quantile interpolation, snapshot export (JSON round-trip
// through the project parser, Prometheus exposition) and reset-in-place.
// The registry is process-global, so every test restores the disabled,
// zeroed state.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/json_util.hpp"
#include "common/prof.hpp"

namespace ofl::obs {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::instance().setEnabled(true);
    MetricsRegistry::instance().reset();
  }
  void TearDown() override {
    MetricsRegistry::instance().setEnabled(false);
    MetricsRegistry::instance().reset();
  }
};

TEST_F(MetricsTest, CounterAndGaugeBasics) {
  Counter& c = MetricsRegistry::instance().counter("unit.count");
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);
  Gauge& g = MetricsRegistry::instance().gauge("unit.gauge");
  g.set(2.5);
  EXPECT_EQ(g.value(), 2.5);
  // Find-or-create returns the same series (stable addresses).
  EXPECT_EQ(&c, &MetricsRegistry::instance().counter("unit.count"));
  EXPECT_EQ(&g, &MetricsRegistry::instance().gauge("unit.gauge"));
}

TEST_F(MetricsTest, HistogramBucketsPlaceObservationsAtUpperBoundInclusive) {
  Histogram h(std::vector<double>{1.0, 2.0, 4.0});
  h.observe(0.5);  // bucket 0 (<= 1)
  h.observe(1.0);  // bucket 0 (inclusive upper bound)
  h.observe(1.5);  // bucket 1
  h.observe(4.0);  // bucket 2
  h.observe(9.0);  // +Inf bucket
  const Histogram::Snapshot s = h.snapshot();
  ASSERT_EQ(s.counts.size(), 4u);
  EXPECT_EQ(s.counts[0], 2u);
  EXPECT_EQ(s.counts[1], 1u);
  EXPECT_EQ(s.counts[2], 1u);
  EXPECT_EQ(s.counts[3], 1u);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.sum, 16.0);
  EXPECT_DOUBLE_EQ(s.min, 0.5);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.2);
}

TEST_F(MetricsTest, EmptyHistogramReportsZeros) {
  Histogram h(Histogram::latencyBounds());
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.min, 0.0);
  EXPECT_EQ(s.max, 0.0);
  EXPECT_EQ(s.quantile(0.5), 0.0);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST_F(MetricsTest, QuantilesInterpolateWithinBuckets) {
  // 100 uniform observations in (0, 1]: p50 ~ 0.5, p95 ~ 0.95, p99 ~ 0.99
  // with linear interpolation inside 0.1-wide buckets.
  Histogram h(Histogram::unitBounds());
  for (int i = 1; i <= 100; ++i) h.observe(0.01 * i);
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_NEAR(s.quantile(0.50), 0.50, 0.05);
  EXPECT_NEAR(s.quantile(0.95), 0.95, 0.05);
  EXPECT_NEAR(s.quantile(0.99), 0.99, 0.05);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), s.max);
  EXPECT_LE(s.quantile(0.0), s.quantile(0.5));
}

TEST_F(MetricsTest, SingleBucketQuantileStaysWithinObservedRange) {
  Histogram h(std::vector<double>{10.0});
  h.observe(3.0);
  h.observe(3.0);
  h.observe(3.0);
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_GE(s.quantile(0.5), 3.0);
  EXPECT_LE(s.quantile(0.5), 3.0);
}

TEST_F(MetricsTest, ConcurrentObservationsSumExactly) {
  Histogram& h = MetricsRegistry::instance().histogram(
      "unit.lat", std::vector<double>{0.5, 1.0});
  Counter& c = MetricsRegistry::instance().counter("unit.hits");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        h.observe(0.25);
        c.add();
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(s.counts[0], s.count);
}

TEST_F(MetricsTest, SnapshotJsonRoundTripsThroughParser) {
  MetricsRegistry& reg = MetricsRegistry::instance();
  reg.counter("unit.requests").add(42);
  reg.gauge("unit.depth").set(3.25);
  reg.histogram("unit.seconds", std::vector<double>{0.1, 1.0}).observe(0.05);
  const MetricsSnapshot snap = reg.snapshot();
  const auto doc = json::Value::parse(snap.json());
  ASSERT_TRUE(doc.has_value()) << snap.json();
  EXPECT_EQ(doc->findPath("counters")->find("unit.requests")->number, 42.0);
  EXPECT_EQ(doc->findPath("gauges")->find("unit.depth")->number, 3.25);
  const json::Value* hist = doc->findPath("histograms")->find("unit.seconds");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->find("count")->number, 1.0);
  EXPECT_EQ(hist->find("counts")->array.size(), 3u);
  EXPECT_EQ(hist->find("bounds")->array.size(), 2u);
}

TEST_F(MetricsTest, PrometheusExpositionFormat) {
  MetricsRegistry& reg = MetricsRegistry::instance();
  reg.counter("cache.hits").add(3);
  reg.gauge("sched.queue_depth").set(2);
  reg.histogram("job.run_seconds", std::vector<double>{1.0}).observe(0.5);
  const std::string text = reg.snapshot().prometheus();
  EXPECT_NE(text.find("# TYPE openfill_cache_hits_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("openfill_cache_hits_total 3"), std::string::npos);
  EXPECT_NE(text.find("openfill_sched_queue_depth 2"), std::string::npos);
  EXPECT_NE(text.find("openfill_job_run_seconds_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("openfill_job_run_seconds_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("openfill_job_run_seconds_count 1"), std::string::npos);
}

TEST_F(MetricsTest, ResetZeroesInPlaceKeepingAddresses) {
  MetricsRegistry& reg = MetricsRegistry::instance();
  Counter& c = reg.counter("unit.count");
  Gauge& g = reg.gauge("unit.gauge");
  Histogram& h = reg.histogram("unit.hist", std::vector<double>{1.0});
  c.add(9);
  g.set(9);
  h.observe(0.5);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(h.snapshot().count, 0u);
  // Same addresses after reset (the static-reference caching contract).
  EXPECT_EQ(&c, &reg.counter("unit.count"));
  EXPECT_EQ(&g, &reg.gauge("unit.gauge"));
  EXPECT_EQ(&h, &reg.histogram("unit.hist"));
  // And the series still work.
  h.observe(0.5);
  EXPECT_EQ(h.snapshot().count, 1u);
  EXPECT_DOUBLE_EQ(h.snapshot().min, 0.5);
}

TEST_F(MetricsTest, AbsorbProfStripsIndentationFromStageNames) {
  prof::Registry::instance().setEnabled(true);
  prof::Registry::instance().reset();
  {
    prof::ScopedTimer timer(prof::Stage::kMcfSolve);  // name "  mcf-solve"
  }
  prof::count(prof::Counter::kWindows, 6);
  absorbProf(prof::Registry::instance().snapshot());
  prof::Registry::instance().setEnabled(false);
  prof::Registry::instance().reset();

  const MetricsSnapshot snap = MetricsRegistry::instance().snapshot();
  EXPECT_TRUE(snap.has("prof.mcf-solve.seconds"));
  EXPECT_EQ(snap.gauges.at("prof.mcf-solve.calls"), 1.0);
  EXPECT_EQ(snap.gauges.at("prof.windows"), 6.0);
}

TEST_F(MetricsTest, UpdateProcessGaugesReportsPositiveRss) {
  updateProcessGauges();
  const MetricsSnapshot snap = MetricsRegistry::instance().snapshot();
  EXPECT_GT(snap.gauges.at("process.peak_rss_mib"), 0.0);
  EXPECT_GT(snap.gauges.at("process.rss_mib"), 0.0);
}

}  // namespace
}  // namespace ofl::obs
