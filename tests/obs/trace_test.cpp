// Tracer unit tests: gating, span/instant recording, arg capture, and a
// concurrency test (N threads x M spans -> every event collected, the
// Chrome JSON parses) that doubles as the TSan smoke workload
// (tsan_smoke_obs). The tracer is process-global, so every test restores
// the disabled state and clears the buffers it filled.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/json_util.hpp"

namespace ofl::obs {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::instance().clear();
    Tracer::instance().setEnabled(true);
  }
  void TearDown() override {
    Tracer::instance().setEnabled(false);
    Tracer::instance().clear();
  }
};

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  Tracer::instance().setEnabled(false);
  {
    ScopedSpan span("unit.disabled", "test");
  }
  instant("unit.disabled_instant", "test", {});
  completeSpan("unit.disabled_complete", "test", 0, 10, {});
  EXPECT_EQ(Tracer::instance().eventCount(), 0u);
}

TEST_F(TraceTest, ScopedSpanRecordsNameCategoryAndArgs) {
  {
    ScopedSpan span("unit.work", "test", {{"job", 7}, {"w", 3}});
  }
  const auto events = Tracer::instance().collect();
  ASSERT_EQ(events.size(), 1u);
  const TraceEvent& e = events[0].event;
  EXPECT_STREQ(e.name, "unit.work");
  EXPECT_STREQ(e.cat, "test");
  EXPECT_EQ(e.phase, 'X');
  ASSERT_EQ(e.argCount, 2);
  EXPECT_STREQ(e.argKeys[0], "job");
  EXPECT_EQ(e.argValues[0], 7.0);
  EXPECT_STREQ(e.argKeys[1], "w");
  EXPECT_EQ(e.argValues[1], 3.0);
}

TEST_F(TraceTest, ExtraArgsBeyondCapAreDropped) {
  {
    ScopedSpan span("unit.args", "test", {{"a", 1}, {"b", 2}, {"c", 3}, {"d", 4}});
  }
  const auto events = Tracer::instance().collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].event.argCount, TraceEvent::kMaxArgs);
}

TEST_F(TraceTest, InstantAndCompleteEventsRecord) {
  instant("unit.tick", "test", {{"n", 1}});
  completeSpan("unit.window", "test", 100, 50, {{"w", 2}});
  const auto events = Tracer::instance().collect();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].event.phase, 'i');
  EXPECT_EQ(events[1].event.phase, 'X');
  EXPECT_EQ(events[1].event.startNs, 100u);
  EXPECT_EQ(events[1].event.durNs, 50u);
}

TEST_F(TraceTest, SpanArmedStateLatchedAtConstruction) {
  // A span opened while tracing is on must close (and record) even if
  // tracing is switched off mid-flight, and vice versa.
  Tracer::instance().setEnabled(false);
  {
    ScopedSpan off("unit.off", "test");
    Tracer::instance().setEnabled(true);
  }
  EXPECT_EQ(Tracer::instance().eventCount(), 0u);
  {
    ScopedSpan on("unit.on", "test");
    Tracer::instance().setEnabled(false);
  }
  EXPECT_EQ(Tracer::instance().eventCount(), 1u);
}

TEST_F(TraceTest, ChromeJsonIsValidAndCarriesEvents) {
  {
    ScopedSpan span("unit.render \"quoted\"", "test", {{"job", 11}});
  }
  instant("unit.mark", "test", {});
  const std::string jsonText = Tracer::instance().chromeJson();
  const auto doc = json::Value::parse(jsonText);
  ASSERT_TRUE(doc.has_value()) << jsonText;
  const json::Value* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->isArray());
  ASSERT_EQ(events->array.size(), 2u);
  const json::Value& span = events->array[0];
  EXPECT_EQ(span.find("name")->str, "unit.render \"quoted\"");
  EXPECT_EQ(span.find("ph")->str, "X");
  EXPECT_EQ(span.findPath("args.job")->number, 11.0);
  EXPECT_EQ(events->array[1].find("ph")->str, "i");
}

TEST_F(TraceTest, ConcurrentSpansAllCollectedAndJsonParses) {
  // N threads x M spans each: per-thread buffers mean no event may be
  // lost or torn, every thread gets a distinct tid, and the resulting
  // Chrome JSON still parses. Run under -DOFL_SANITIZE=thread as the
  // tsan_smoke_obs ctest entry.
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 250;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        ScopedSpan span("unit.worker", "test",
                        {{"job", static_cast<double>(t)},
                         {"i", static_cast<double>(i)}});
        if (i % 16 == 0) instant("unit.beat", "test", {{"job", static_cast<double>(t)}});
      }
    });
  }
  for (auto& w : workers) w.join();

  const auto events = Tracer::instance().collect();
  std::size_t spans = 0;
  std::set<int> tids;
  for (const auto& ce : events) {
    tids.insert(ce.tid);
    if (ce.event.phase == 'X') {
      ++spans;
      EXPECT_STREQ(ce.event.name, "unit.worker");
      ASSERT_EQ(ce.event.argCount, 2);
      EXPECT_GE(ce.event.argValues[0], 0.0);
      EXPECT_LT(ce.event.argValues[0], kThreads);
    }
  }
  EXPECT_EQ(spans, static_cast<std::size_t>(kThreads) * kSpansPerThread);
  EXPECT_GE(tids.size(), static_cast<std::size_t>(kThreads));

  const auto doc = json::Value::parse(Tracer::instance().chromeJson());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("traceEvents")->array.size(), events.size());
}

TEST_F(TraceTest, ClearDropsEventsButKeepsRecording) {
  {
    ScopedSpan span("unit.before", "test");
  }
  Tracer::instance().clear();
  EXPECT_EQ(Tracer::instance().eventCount(), 0u);
  {
    ScopedSpan span("unit.after", "test");
  }
  EXPECT_EQ(Tracer::instance().eventCount(), 1u);
}

}  // namespace
}  // namespace ofl::obs
