#include "service/fill_service.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>

#include "contest/benchmark_generator.hpp"
#include "fill/fill_engine.hpp"
#include "gds/gds_writer.hpp"
#include "service/fingerprint.hpp"
#include "service/manifest.hpp"

namespace ofl::service {
namespace {

std::shared_ptr<const layout::Layout> makeInput(geom::Coord shift = 0) {
  auto chip = std::make_shared<layout::Layout>(geom::Rect{0, 0, 4000, 4000}, 2);
  chip->layer(0).wires.push_back({200 + shift, 200, 1800 + shift, 500});
  chip->layer(0).wires.push_back({2200, 2600, 3800, 2900});
  chip->layer(0).wires.push_back({600, 1400, 900, 3400});
  chip->layer(1).wires.push_back({1000, 1000, 1400, 3000});
  chip->layer(1).wires.push_back({2000, 400, 2300, 3600});
  return chip;
}

fill::FillEngineOptions fastOptions() {
  fill::FillEngineOptions opt = defaultEngineOptions();
  opt.windowSize = 1000;
  return opt;
}

JobSpec makeSpec(std::shared_ptr<const layout::Layout> chip,
                 fill::FillEngineOptions opt) {
  JobSpec spec;
  spec.layout = std::move(chip);
  spec.engine = opt;
  spec.keepLayout = true;
  return spec;
}

TEST(FillServiceTest, ResultsInSubmissionOrder) {
  ServiceOptions so;
  so.maxConcurrentJobs = 2;
  so.threadsPerJob = 1;
  FillService service(so);

  // Four distinct specs whose cache keys we can predict independently.
  std::vector<std::uint64_t> expectedKeys;
  for (int i = 0; i < 4; ++i) {
    auto chip = makeInput(/*shift=*/i * 40);
    fill::FillEngineOptions opt = fastOptions();
    expectedKeys.push_back(cacheKey(*chip, opt));
    const std::uint64_t id = service.submit(makeSpec(std::move(chip), opt));
    EXPECT_EQ(id, static_cast<std::uint64_t>(i));
  }

  const std::vector<JobResult> results = service.waitAll();
  ASSERT_EQ(results.size(), 4u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].status, JobStatus::kSucceeded) << results[i].error;
    EXPECT_EQ(results[i].cacheKey, expectedKeys[i]);
    EXPECT_GT(results[i].fillCount, 0u);
  }

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 4u);
  EXPECT_EQ(stats.succeeded, 4u);
  EXPECT_GT(stats.jobsPerSecond, 0.0);

  // Every job samples the process peak RSS at completion and the service
  // aggregates the high-water mark.
  for (const JobResult& r : results) {
    EXPECT_GT(r.peakRssMiB, 0.0);
  }
  EXPECT_GT(stats.peakRssMiB, 0.0);
  EXPECT_GE(stats.peakRssMiB, results[0].peakRssMiB * 0.999);
}

TEST(FillServiceTest, PeakRssAppearsInStatsJson) {
  ServiceOptions so;
  so.maxConcurrentJobs = 1;
  so.threadsPerJob = 1;
  FillService service(so);
  service.submit(makeSpec(makeInput(), fastOptions()));
  ASSERT_EQ(service.wait(0).status, JobStatus::kSucceeded);

  const ServiceStats stats = service.stats();
  EXPECT_GT(stats.peakRssMiB, 0.0);
  const std::string json = toJson(stats);
  EXPECT_NE(json.find("\"peak_rss_mib\""), std::string::npos) << json;
}

TEST(FillServiceTest, RepeatedJobHitsCache) {
  ServiceOptions so;
  so.maxConcurrentJobs = 1;  // serialize so the second probe sees the insert
  so.threadsPerJob = 1;
  FillService service(so);

  const auto chip = makeInput();
  service.submit(makeSpec(chip, fastOptions()));
  service.submit(makeSpec(chip, fastOptions()));
  const std::vector<JobResult> results = service.waitAll();
  ASSERT_EQ(results.size(), 2u);
  ASSERT_EQ(results[0].status, JobStatus::kSucceeded) << results[0].error;
  ASSERT_EQ(results[1].status, JobStatus::kSucceeded) << results[1].error;
  EXPECT_FALSE(results[0].cacheHit);
  EXPECT_TRUE(results[1].cacheHit);
  EXPECT_EQ(results[0].cacheKey, results[1].cacheKey);
  EXPECT_EQ(results[0].fillCount, results[1].fillCount);

  // The replayed geometry is identical to the computed one.
  ASSERT_NE(results[0].layout, nullptr);
  ASSERT_NE(results[1].layout, nullptr);
  for (int l = 0; l < results[0].layout->numLayers(); ++l) {
    EXPECT_EQ(results[0].layout->layer(l).fills,
              results[1].layout->layer(l).fills);
  }

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.jobCacheHits, 1u);
  EXPECT_GE(stats.cache.hits, 1u);
  EXPECT_GT(stats.cacheHitRate, 0.0);
}

TEST(FillServiceTest, MatchesDirectEngineRun) {
  const auto input = makeInput();
  const fill::FillEngineOptions opt = fastOptions();

  layout::Layout direct = *input;
  fill::FillEngineOptions directOpt = opt;
  directOpt.numThreads = 1;
  fill::FillEngine(directOpt).run(direct);

  ServiceOptions so;
  so.maxConcurrentJobs = 2;
  so.threadsPerJob = 2;  // thread count must not change the bytes
  FillService service(so);
  service.submit(makeSpec(input, opt));
  const JobResult result = service.wait(0);
  ASSERT_EQ(result.status, JobStatus::kSucceeded) << result.error;
  ASSERT_NE(result.layout, nullptr);
  ASSERT_EQ(result.layout->numLayers(), direct.numLayers());
  for (int l = 0; l < direct.numLayers(); ++l) {
    EXPECT_EQ(result.layout->layer(l).fills, direct.layer(l).fills)
        << "layer " << l;
  }
}

TEST(FillServiceTest, ExpiredDeadlineSurfacesAsTimeout) {
  ServiceOptions so;
  so.maxConcurrentJobs = 1;
  so.threadsPerJob = 1;
  FillService service(so);

  JobSpec spec = makeSpec(makeInput(), fastOptions());
  spec.timeoutSeconds = 1e-6;  // expires long before a worker picks it up
  service.submit(spec);
  const JobResult result = service.wait(0);
  EXPECT_EQ(result.status, JobStatus::kTimedOut);
  EXPECT_NE(result.error.find("deadline"), std::string::npos);
}

TEST(FillServiceTest, ZeroTimeoutMeansNoDeadline) {
  // spec.timeoutSeconds = 0 with the default service timeout of 0 must
  // mean "no deadline" — the job runs to completion, never kTimedOut.
  ServiceOptions so;
  so.maxConcurrentJobs = 1;
  so.threadsPerJob = 1;
  FillService service(so);

  JobSpec spec = makeSpec(makeInput(), fastOptions());
  spec.timeoutSeconds = 0.0;
  service.submit(spec);
  const JobResult result = service.wait(0);
  EXPECT_EQ(result.status, JobStatus::kSucceeded) << result.error;
  EXPECT_GT(result.fillCount, 0u);
}

TEST(FillServiceTest, NegativeTimeoutFallsBackToServiceDefault) {
  // A negative per-job timeout is "unset": the service default applies.
  // With a microscopic default the job must time out; with no default it
  // must run unlimited.
  ServiceOptions tight;
  tight.maxConcurrentJobs = 1;
  tight.threadsPerJob = 1;
  tight.defaultTimeoutSeconds = 1e-6;
  {
    FillService service(tight);
    JobSpec spec = makeSpec(makeInput(), fastOptions());
    spec.timeoutSeconds = -5.0;
    service.submit(spec);
    EXPECT_EQ(service.wait(0).status, JobStatus::kTimedOut);
  }

  ServiceOptions unlimited;
  unlimited.maxConcurrentJobs = 1;
  unlimited.threadsPerJob = 1;
  {
    FillService service(unlimited);
    JobSpec spec = makeSpec(makeInput(), fastOptions());
    spec.timeoutSeconds = -5.0;
    service.submit(spec);
    EXPECT_EQ(service.wait(0).status, JobStatus::kSucceeded);
  }
}

TEST(FillServiceTest, PositiveSpecTimeoutOverridesDefault) {
  // A generous per-job timeout must beat a microscopic service default.
  ServiceOptions so;
  so.maxConcurrentJobs = 1;
  so.threadsPerJob = 1;
  so.defaultTimeoutSeconds = 1e-6;
  FillService service(so);

  JobSpec spec = makeSpec(makeInput(), fastOptions());
  spec.timeoutSeconds = 3600.0;
  service.submit(spec);
  EXPECT_EQ(service.wait(0).status, JobStatus::kSucceeded);
}

TEST(FillServiceTest, CancelQueuedJob) {
  ServiceOptions so;
  so.maxConcurrentJobs = 1;  // one worker keeps later jobs queued
  so.threadsPerJob = 1;
  FillService service(so);

  service.submit(makeSpec(makeInput(), fastOptions()));
  service.submit(makeSpec(makeInput(10), fastOptions()));
  const std::uint64_t victim = service.submit(makeSpec(makeInput(20),
                                                       fastOptions()));
  EXPECT_TRUE(service.cancel(victim));
  const JobResult result = service.wait(victim);
  EXPECT_EQ(result.status, JobStatus::kCancelled);

  // Earlier jobs are unaffected.
  EXPECT_EQ(service.wait(0).status, JobStatus::kSucceeded);
  EXPECT_EQ(service.wait(1).status, JobStatus::kSucceeded);
  EXPECT_FALSE(service.cancel(victim));  // already finished

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.succeeded, 2u);
}

TEST(FillServiceTest, MissingInputFileFailsCleanly) {
  ServiceOptions so;
  so.maxConcurrentJobs = 1;
  FillService service(so);

  JobSpec spec;
  spec.inputPath = "/nonexistent/input.gds";
  spec.engine = fastOptions();
  service.submit(spec);
  const JobResult result = service.wait(0);
  EXPECT_EQ(result.status, JobStatus::kFailed);
  EXPECT_FALSE(result.error.empty());
}

// --stream jobs run the bounded-memory sharded pipeline; modes that need
// the whole layout resident must be rejected up front, not half-run.
TEST(FillServiceStreamTest, EcoIsRejectedWithClearError) {
  ServiceOptions so;
  so.maxConcurrentJobs = 1;
  FillService service(so);

  JobSpec spec;
  spec.kind = JobKind::kEco;
  spec.stream = true;
  spec.inputPath = "in.gds";
  spec.outputPath = "out.gds";
  service.submit(spec);
  const JobResult result = service.wait(0);
  EXPECT_EQ(result.status, JobStatus::kFailed);
  EXPECT_NE(result.error.find("not supported with --stream"),
            std::string::npos)
      << result.error;
}

TEST(FillServiceStreamTest, CompactAndInMemoryInputsAreRejected) {
  ServiceOptions so;
  so.maxConcurrentJobs = 1;
  FillService service(so);

  JobSpec compacted;
  compacted.stream = true;
  compacted.compact = true;
  compacted.inputPath = "in.gds";
  compacted.outputPath = "out.gds";
  service.submit(compacted);

  JobSpec inMemory = makeSpec(makeInput(), fastOptions());
  inMemory.stream = true;
  inMemory.outputPath = "out.gds";
  service.submit(inMemory);

  JobSpec pathless;
  pathless.stream = true;
  service.submit(pathless);

  const std::vector<JobResult> results = service.waitAll();
  ASSERT_EQ(results.size(), 3u);
  for (const JobResult& r : results) {
    EXPECT_EQ(r.status, JobStatus::kFailed);
    EXPECT_FALSE(r.error.empty());
  }
  EXPECT_NE(results[0].error.find("--compact"), std::string::npos)
      << results[0].error;
}

TEST(FillServiceStreamTest, StreamedJobMatchesInMemoryFillCount) {
  const contest::BenchmarkSpec bench = contest::BenchmarkGenerator::spec("tiny");
  layout::Layout chip = contest::BenchmarkGenerator::generate(bench);
  const std::string inputPath = "/tmp/ofl_service_stream_in.gds";
  const std::string outputPath = "/tmp/ofl_service_stream_out.gds";
  ASSERT_GT(gds::Writer::writeFile(chip.toGds(), inputPath), 0);

  fill::FillEngineOptions engine;
  engine.windowSize = bench.windowSize;
  engine.rules = bench.rules;
  const fill::FillReport reference = fill::FillEngine(engine).run(chip);

  ServiceOptions so;
  so.maxConcurrentJobs = 1;
  so.threadsPerJob = 1;
  FillService service(so);
  JobSpec spec;
  spec.stream = true;
  spec.inputPath = inputPath;
  spec.outputPath = outputPath;
  spec.die = bench.die;
  spec.engine = engine;
  spec.memBudgetMiB = 64;
  service.submit(spec);

  const JobResult result = service.wait(0);
  ASSERT_EQ(result.status, JobStatus::kSucceeded) << result.error;
  EXPECT_EQ(result.fillCount, reference.fillCount);
  EXPECT_FALSE(result.cacheHit);  // streamed jobs bypass the result cache
  EXPECT_GT(result.outputBytes, 0);
  std::remove(inputPath.c_str());
  std::remove(outputPath.c_str());
}

TEST(FillServiceTest, EngineThrowsOnPreExpiredToken) {
  // The engine-level cancellation contract the service relies on.
  CancelToken token;
  token.cancel();
  fill::FillEngineOptions opt = fastOptions();
  opt.numThreads = 1;
  opt.cancel = &token;
  layout::Layout chip = *makeInput();
  EXPECT_THROW(fill::FillEngine(opt).run(chip), CancelledError);
}

}  // namespace
}  // namespace ofl::service
