#include "service/scheduler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

namespace ofl::service {
namespace {

TEST(SchedulerTest, RunsEverySubmittedTask) {
  std::atomic<int> ran{0};
  {
    Scheduler sched(3, 4);
    for (int i = 0; i < 50; ++i) {
      sched.submit([&ran] { ran.fetch_add(1); });
    }
    sched.waitIdle();
    EXPECT_EQ(ran.load(), 50);
  }
}

TEST(SchedulerTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    Scheduler sched(1, 16);
    for (int i = 0; i < 10; ++i) {
      sched.submit([&ran] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ran.fetch_add(1);
      });
    }
    // No waitIdle: destruction itself must run everything admitted.
  }
  EXPECT_EQ(ran.load(), 10);
}

TEST(SchedulerTest, SingleWorkerStartsTasksInSubmissionOrder) {
  std::vector<int> order;
  std::mutex m;
  {
    Scheduler sched(1, 8);
    for (int i = 0; i < 8; ++i) {
      sched.submit([&order, &m, i] {
        std::lock_guard<std::mutex> lock(m);
        order.push_back(i);
      });
    }
    sched.waitIdle();
  }
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SchedulerTest, BoundedQueueBlocksProducerWithoutDeadlock) {
  // Capacity 1 with a slow worker: submit() must block and then make
  // progress — this deadlocks (and times out) if back-pressure is broken.
  std::atomic<int> ran{0};
  {
    Scheduler sched(1, 1);
    for (int i = 0; i < 12; ++i) {
      sched.submit([&ran] {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        ran.fetch_add(1);
      });
    }
    sched.waitIdle();
  }
  EXPECT_EQ(ran.load(), 12);
}

TEST(SchedulerTest, ConcurrencyNeverExceedsWorkerCount) {
  std::atomic<int> active{0};
  std::atomic<int> peak{0};
  {
    Scheduler sched(2, 32);
    for (int i = 0; i < 24; ++i) {
      sched.submit([&active, &peak] {
        const int now = active.fetch_add(1) + 1;
        int seen = peak.load();
        while (now > seen && !peak.compare_exchange_weak(seen, now)) {
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        active.fetch_sub(1);
      });
    }
    sched.waitIdle();
  }
  EXPECT_LE(peak.load(), 2);
  EXPECT_GE(peak.load(), 1);
}

}  // namespace
}  // namespace ofl::service
