#include "service/result_cache.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <vector>

#include "service/fingerprint.hpp"

namespace ofl::service {
namespace {

layout::Layout makeLayout(geom::Coord shift = 0) {
  layout::Layout chip({0, 0, 4000, 4000}, 2);
  chip.layer(0).wires.push_back({100 + shift, 100, 900 + shift, 300});
  chip.layer(0).wires.push_back({1500, 2000, 3200, 2300});
  chip.layer(1).wires.push_back({400, 400, 600, 3600});
  return chip;
}

TEST(FingerprintTest, StableAcrossCalls) {
  const layout::Layout a = makeLayout();
  const layout::Layout b = makeLayout();
  fill::FillEngineOptions opt;
  EXPECT_EQ(layoutContentHash(a), layoutContentHash(b));
  EXPECT_EQ(cacheKey(a, opt), cacheKey(b, opt));
}

TEST(FingerprintTest, LayoutChangesChangeKey) {
  const layout::Layout a = makeLayout();
  const layout::Layout moved = makeLayout(/*shift=*/10);
  EXPECT_NE(layoutContentHash(a), layoutContentHash(moved));

  layout::Layout extraLayer({0, 0, 4000, 4000}, 3);
  extraLayer.layer(0).wires = a.layer(0).wires;
  extraLayer.layer(1).wires = a.layer(1).wires;
  EXPECT_NE(layoutContentHash(a), layoutContentHash(extraLayer));

  layout::Layout otherDie({0, 0, 4001, 4000}, 2);
  otherDie.layer(0).wires = a.layer(0).wires;
  otherDie.layer(1).wires = a.layer(1).wires;
  EXPECT_NE(layoutContentHash(a), layoutContentHash(otherDie));
}

TEST(FingerprintTest, FillsDoNotAffectLayoutHash) {
  // The engine clears existing fills before running, so they must not
  // perturb the key.
  layout::Layout a = makeLayout();
  const std::uint64_t before = layoutContentHash(a);
  a.layer(0).fills.push_back({10, 10, 50, 50});
  EXPECT_EQ(before, layoutContentHash(a));
}

TEST(FingerprintTest, SolutionAffectingOptionsChangeFingerprint) {
  const fill::FillEngineOptions base;
  const std::uint64_t h = optionsFingerprint(base);

  fill::FillEngineOptions o = base;
  o.windowSize = 1234;
  EXPECT_NE(optionsFingerprint(o), h);

  o = base;
  o.rules.minSpacing += 5;
  EXPECT_NE(optionsFingerprint(o), h);

  o = base;
  o.candidate.lambda += 0.25;
  EXPECT_NE(optionsFingerprint(o), h);

  o = base;
  o.sizer.iterations += 1;
  EXPECT_NE(optionsFingerprint(o), h);
}

TEST(FingerprintTest, EverySolutionAffectingFieldChangesFingerprint) {
  // Property test over the full hashed field list of optionsFingerprint
  // (src/service/fingerprint.cpp): flipping any single solution-affecting
  // field must change the key, and every single-field mutation must yield
  // a distinct key (no two fields may alias in the hash).
  struct Mutator {
    const char* name;
    std::function<void(fill::FillEngineOptions&)> apply;
  };
  const std::vector<Mutator> mutators = {
      {"windowSize", [](auto& o) { o.windowSize += 100; }},
      {"rules.minWidth", [](auto& o) { o.rules.minWidth += 1; }},
      {"rules.minSpacing", [](auto& o) { o.rules.minSpacing += 1; }},
      {"rules.minArea", [](auto& o) { o.rules.minArea += 1; }},
      {"rules.maxFillSize", [](auto& o) { o.rules.maxFillSize += 1; }},
      {"rules.maxDensity", [](auto& o) { o.rules.maxDensity -= 0.05; }},
      {"planner.wSigma", [](auto& o) { o.plannerWeights.wSigma += 0.01; }},
      {"planner.wLine", [](auto& o) { o.plannerWeights.wLine += 0.01; }},
      {"planner.wOutlier", [](auto& o) { o.plannerWeights.wOutlier += 0.01; }},
      {"planner.betaSigma",
       [](auto& o) { o.plannerWeights.betaSigma += 0.01; }},
      {"planner.betaLine", [](auto& o) { o.plannerWeights.betaLine += 0.01; }},
      {"planner.betaOutlier",
       [](auto& o) { o.plannerWeights.betaOutlier += 0.01; }},
      {"candidate.lambda", [](auto& o) { o.candidate.lambda += 0.01; }},
      {"candidate.gamma", [](auto& o) { o.candidate.gamma += 0.01; }},
      {"candidate.lithoAvoid",
       [](auto& o) { o.candidate.lithoAvoid = layout::LithoRules{}; }},
      {"candidate.uniformCells",
       [](auto& o) { o.candidate.uniformCells = !o.candidate.uniformCells; }},
      {"sizer.eta", [](auto& o) { o.sizer.eta += 0.01; }},
      {"sizer.etaWireFactor", [](auto& o) { o.sizer.etaWireFactor += 0.01; }},
      {"sizer.iterations", [](auto& o) { o.sizer.iterations += 1; }},
      {"sizer.backend",
       [](auto& o) { o.sizer.backend = mcf::McfBackend::kSuccessiveShortestPath; }},
      {"sizer.useLpSolver",
       [](auto& o) { o.sizer.useLpSolver = !o.sizer.useLpSolver; }},
  };

  const fill::FillEngineOptions base;
  const std::uint64_t baseKey = optionsFingerprint(base);
  std::map<std::uint64_t, const char*> seen;
  for (const Mutator& m : mutators) {
    fill::FillEngineOptions mutated = base;
    m.apply(mutated);
    const std::uint64_t key = optionsFingerprint(mutated);
    EXPECT_NE(key, baseKey) << m.name << " must affect the fingerprint";
    const auto [it, inserted] = seen.emplace(key, m.name);
    EXPECT_TRUE(inserted) << m.name << " collides with " << it->second;
  }
}

TEST(FingerprintTest, LithoRuleValuesAreHashed) {
  // The optional litho band is hashed by value, not just by presence.
  fill::FillEngineOptions a;
  a.candidate.lithoAvoid = layout::LithoRules{};
  fill::FillEngineOptions b = a;
  b.candidate.lithoAvoid->forbiddenLo += 1;
  fill::FillEngineOptions c = a;
  c.candidate.lithoAvoid->forbiddenHi += 1;
  EXPECT_NE(optionsFingerprint(a), optionsFingerprint(b));
  EXPECT_NE(optionsFingerprint(a), optionsFingerprint(c));
  EXPECT_NE(optionsFingerprint(b), optionsFingerprint(c));
}

TEST(FingerprintTest, ThreadCountDoesNotChangeFingerprint) {
  // PR-1 determinism contract: output is bit-identical for any thread
  // count, so a cached result is valid across --threads-per-job settings.
  fill::FillEngineOptions a;
  fill::FillEngineOptions b;
  a.numThreads = 1;
  b.numThreads = 8;
  EXPECT_EQ(optionsFingerprint(a), optionsFingerprint(b));

  CancelToken token;
  b.cancel = &token;
  EXPECT_EQ(optionsFingerprint(a), optionsFingerprint(b));
}

std::shared_ptr<const CachedFill> makeEntry(int fills) {
  layout::Layout chip({0, 0, 1000, 1000}, 1);
  for (int i = 0; i < fills; ++i) {
    chip.layer(0).fills.push_back({i * 10, 0, i * 10 + 5, 5});
  }
  fill::FillReport report;
  report.fillCount = static_cast<std::size_t>(fills);
  return CachedFill::capture(chip, report);
}

TEST(ResultCacheTest, HitRefreshesAndReplays) {
  ResultCache cache(1 << 20);
  EXPECT_EQ(cache.find(1), nullptr);
  cache.insert(1, makeEntry(3));

  const auto hit = cache.find(1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->report.fillCount, 3u);

  layout::Layout chip({0, 0, 1000, 1000}, 1);
  chip.layer(0).fills.push_back({900, 900, 950, 950});  // stale; replaced
  hit->applyTo(chip);
  EXPECT_EQ(chip.fillCount(), 3u);

  const auto c = cache.counters();
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(c.entries, 1u);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsedUnderTightBudget) {
  const auto entry = makeEntry(2);
  // Budget fits exactly two entries of this size.
  ResultCache cache(2 * entry->bytes);
  cache.insert(1, makeEntry(2));
  cache.insert(2, makeEntry(2));
  EXPECT_EQ(cache.counters().entries, 2u);

  // Touch 1 so 2 becomes the LRU victim.
  ASSERT_NE(cache.find(1), nullptr);
  cache.insert(3, makeEntry(2));

  auto c = cache.counters();
  EXPECT_EQ(c.entries, 2u);
  EXPECT_EQ(c.evictions, 1u);
  EXPECT_NE(cache.find(1), nullptr);
  EXPECT_EQ(cache.find(2), nullptr);  // evicted
  EXPECT_NE(cache.find(3), nullptr);

  c = cache.counters();
  EXPECT_LE(c.bytesUsed, c.byteBudget);
}

TEST(ResultCacheTest, OversizedEntryDroppedNotInserted) {
  ResultCache cache(64);  // smaller than any real entry
  cache.insert(7, makeEntry(100));
  const auto c = cache.counters();
  EXPECT_EQ(c.entries, 0u);
  EXPECT_EQ(c.oversized, 1u);
  EXPECT_EQ(c.evictions, 0u);
  EXPECT_EQ(cache.find(7), nullptr);
}

TEST(ResultCacheTest, ZeroBudgetDisablesCache) {
  ResultCache cache(0);
  cache.insert(1, makeEntry(1));
  EXPECT_EQ(cache.find(1), nullptr);
  const auto c = cache.counters();
  EXPECT_EQ(c.entries, 0u);
  EXPECT_EQ(c.insertions, 0u);
}

TEST(ResultCacheTest, ReplacingSameKeyKeepsOneEntry) {
  ResultCache cache(1 << 20);
  cache.insert(5, makeEntry(1));
  cache.insert(5, makeEntry(4));
  const auto c = cache.counters();
  EXPECT_EQ(c.entries, 1u);
  const auto hit = cache.find(5);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->report.fillCount, 4u);  // second insert wins
}

}  // namespace
}  // namespace ofl::service
