#include "service/manifest.hpp"

#include <gtest/gtest.h>

namespace ofl::service {
namespace {

TEST(ManifestTest, ParsesOptionsAndDefaults) {
  const ManifestParse p = parseManifestText(
      "a.gds --out a_filled.gds --window 800 --lambda 1.3 --backend ssp\n"
      "\n"
      "# full-line comment\n"
      "b.gds --compact --format oasis --timeout-s 2.5  # trailing comment\n"
      "c.gds\n");
  ASSERT_TRUE(p.ok());
  ASSERT_EQ(p.jobs.size(), 3u);

  const JobSpec& a = p.jobs[0];
  EXPECT_EQ(a.inputPath, "a.gds");
  EXPECT_EQ(a.outputPath, "a_filled.gds");
  EXPECT_EQ(a.engine.windowSize, 800);
  EXPECT_DOUBLE_EQ(a.engine.candidate.lambda, 1.3);
  EXPECT_EQ(a.engine.sizer.backend, mcf::McfBackend::kSuccessiveShortestPath);

  const JobSpec& b = p.jobs[1];
  EXPECT_TRUE(b.compact);
  EXPECT_EQ(b.format, OutputFormat::kOasis);
  EXPECT_DOUBLE_EQ(b.timeoutSeconds, 2.5);

  // A bare line gets exactly the `openfill fill` defaults.
  const JobSpec& c = p.jobs[2];
  const fill::FillEngineOptions d = defaultEngineOptions();
  EXPECT_EQ(c.engine.windowSize, d.windowSize);
  EXPECT_EQ(c.engine.rules.minWidth, d.rules.minWidth);
  EXPECT_EQ(c.engine.rules.minSpacing, d.rules.minSpacing);
  EXPECT_EQ(c.engine.rules.minArea, d.rules.minArea);
  EXPECT_EQ(c.engine.rules.maxFillSize, d.rules.maxFillSize);
  EXPECT_EQ(c.outputPath, "");
  EXPECT_FALSE(c.compact);
}

TEST(ManifestTest, KeyEqualsValueForm) {
  const ManifestParse p =
      parseManifestText("a.gds --window=900 --die=0,0,100,200\n");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.jobs[0].engine.windowSize, 900);
  ASSERT_TRUE(p.jobs[0].die.has_value());
  EXPECT_EQ(p.jobs[0].die->xh, 100);
  EXPECT_EQ(p.jobs[0].die->yh, 200);
}

TEST(ManifestTest, BadLinesReportedWithLineNumbers) {
  const ManifestParse p = parseManifestText(
      "a.gds --window 2k\n"          // malformed int
      "b.gds --frobnicate 3\n"       // unknown option
      "--window 800\n"               // option before input path
      "c.gds --backend quantum\n"    // bad enum
      "d.gds --lambda\n"             // missing value
      "e.gds --window 700\n");       // fine
  EXPECT_FALSE(p.ok());
  ASSERT_EQ(p.errors.size(), 5u);
  EXPECT_EQ(p.errors[0].line, 1);
  EXPECT_NE(p.errors[0].message.find("--window"), std::string::npos);
  EXPECT_NE(p.errors[0].message.find("2k"), std::string::npos);
  EXPECT_EQ(p.errors[1].line, 2);
  EXPECT_NE(p.errors[1].message.find("frobnicate"), std::string::npos);
  EXPECT_EQ(p.errors[2].line, 3);
  EXPECT_EQ(p.errors[3].line, 4);
  EXPECT_EQ(p.errors[4].line, 5);
  // The good line still parses: all-or-nothing is the caller's policy.
  ASSERT_EQ(p.jobs.size(), 1u);
  EXPECT_EQ(p.jobs[0].inputPath, "e.gds");
}

TEST(ManifestTest, ParsesStreamAndMemBudget) {
  const ManifestParse p = parseManifestText(
      "a.gds --out a_f.gds --stream --mem-budget-mb 128\n"
      "b.gds --out b_f.gds\n");
  ASSERT_TRUE(p.ok());
  ASSERT_EQ(p.jobs.size(), 2u);
  EXPECT_TRUE(p.jobs[0].stream);
  EXPECT_EQ(p.jobs[0].memBudgetMiB, 128u);
  EXPECT_FALSE(p.jobs[1].stream);
  EXPECT_EQ(p.jobs[1].memBudgetMiB, 512u);  // default
}

TEST(ManifestTest, RejectsBadStreamAndMemBudgetValues) {
  const ManifestParse p = parseManifestText(
      "a.gds --stream=yes\n"        // flag takes no value
      "b.gds --mem-budget-mb 0\n"   // must be positive
      "c.gds --mem-budget-mb -4\n"  // must be positive
      "d.gds --mem-budget-mb\n");   // missing value
  EXPECT_FALSE(p.ok());
  ASSERT_EQ(p.errors.size(), 4u);
  EXPECT_NE(p.errors[0].message.find("--stream"), std::string::npos);
  EXPECT_NE(p.errors[1].message.find("positive"), std::string::npos);
  EXPECT_NE(p.errors[2].message.find("positive"), std::string::npos);
  EXPECT_NE(p.errors[3].message.find("--mem-budget-mb"), std::string::npos);
}

TEST(ManifestTest, MissingFileReportsIoError) {
  ManifestParse p;
  std::string err;
  EXPECT_FALSE(parseManifestFile("/nonexistent/manifest.txt", &p, &err));
  EXPECT_NE(err.find("/nonexistent/manifest.txt"), std::string::npos);
}

}  // namespace
}  // namespace ofl::service
