#include "lp/simplex.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace ofl::lp {
namespace {

TEST(SimplexTest, TwoVariableMaximization) {
  // max x + 2y == min -x - 2y s.t. x+y <= 4, x <= 3, y <= 2.
  LpModel m;
  const int x = m.addVariable(-1, 0, 3);
  const int y = m.addVariable(-2, 0, 2);
  m.addConstraint({{x, 1}, {y, 1}}, Sense::kLessEqual, 4);
  const LpResult r = SimplexSolver().solve(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -6.0, 1e-9);
  EXPECT_NEAR(r.x[0], 2.0, 1e-9);
  EXPECT_NEAR(r.x[1], 2.0, 1e-9);
}

TEST(SimplexTest, EqualityConstraint) {
  LpModel m;
  const int x = m.addVariable(1, 1, 5);
  const int y = m.addVariable(1, 2, 6);
  m.addConstraint({{x, 1}, {y, 1}}, Sense::kEqual, 7);
  const LpResult r = SimplexSolver().solve(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 7.0, 1e-9);
  EXPECT_NEAR(r.x[0] + r.x[1], 7.0, 1e-9);
}

TEST(SimplexTest, GreaterEqualWithShiftedBounds) {
  // min 2x + y s.t. x + y >= 10, x in [3, 20], y in [1, 4].
  LpModel m;
  const int x = m.addVariable(2, 3, 20);
  const int y = m.addVariable(1, 1, 4);
  m.addConstraint({{x, 1}, {y, 1}}, Sense::kGreaterEqual, 10);
  const LpResult r = SimplexSolver().solve(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[1], 4.0, 1e-9);
  EXPECT_NEAR(r.x[0], 6.0, 1e-9);
  EXPECT_NEAR(r.objective, 16.0, 1e-9);
}

TEST(SimplexTest, InfeasibleDetected) {
  LpModel m;
  const int x = m.addVariable(1, 0, 2);
  m.addConstraint({{x, 1}}, Sense::kGreaterEqual, 5);
  EXPECT_EQ(SimplexSolver().solve(m).status, LpStatus::kInfeasible);
}

TEST(SimplexTest, ContradictoryRowsInfeasible) {
  LpModel m;
  const int x = m.addVariable(0.0, 0.0, kInfinity);
  const int y = m.addVariable(0.0, 0.0, kInfinity);
  m.addConstraint({{x, 1}, {y, 1}}, Sense::kEqual, 4);
  m.addConstraint({{x, 1}, {y, 1}}, Sense::kEqual, 6);
  EXPECT_EQ(SimplexSolver().solve(m).status, LpStatus::kInfeasible);
}

TEST(SimplexTest, UnboundedDetected) {
  LpModel m;
  const int x = m.addVariable(-1, 0, kInfinity);
  m.addConstraint({{x, -1}}, Sense::kLessEqual, 0);  // x >= 0, no upper
  EXPECT_EQ(SimplexSolver().solve(m).status, LpStatus::kUnbounded);
}

TEST(SimplexTest, NegativeRhsNormalization) {
  // min x s.t. -x <= -3 (i.e. x >= 3).
  LpModel m;
  const int x = m.addVariable(1, 0, 10);
  m.addConstraint({{x, -1}}, Sense::kLessEqual, -3);
  const LpResult r = SimplexSolver().solve(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[0], 3.0, 1e-9);
}

TEST(SimplexTest, NoConstraintsBoundsOnly) {
  LpModel m;
  m.addVariable(5, -2, 7);
  m.addVariable(-5, -2, 7);
  const LpResult r = SimplexSolver().solve(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[0], -2.0, 1e-9);
  EXPECT_NEAR(r.x[1], 7.0, 1e-9);
}

TEST(SimplexTest, DegenerateRhsZero) {
  LpModel m;
  const int x = m.addVariable(-1, 0, 5);
  const int y = m.addVariable(-1, 0, 5);
  m.addConstraint({{x, 1}, {y, -1}}, Sense::kLessEqual, 0);
  m.addConstraint({{x, 1}}, Sense::kLessEqual, 3);
  const LpResult r = SimplexSolver().solve(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[0], 3.0, 1e-9);
  EXPECT_NEAR(r.x[1], 5.0, 1e-9);
}

TEST(SimplexTest, SolutionAlwaysFeasibleOnRandomLps) {
  Rng rng(777);
  int optimalCount = 0;
  for (int trial = 0; trial < 100; ++trial) {
    LpModel m;
    const int n = static_cast<int>(rng.uniformInt(1, 6));
    for (int v = 0; v < n; ++v) {
      const double lo = rng.uniformReal(-5, 5);
      m.addVariable(rng.uniformReal(-3, 3), lo, lo + rng.uniformReal(0, 10));
    }
    const int rows = static_cast<int>(rng.uniformInt(0, 5));
    for (int c = 0; c < rows; ++c) {
      std::vector<std::pair<int, double>> terms;
      for (int v = 0; v < n; ++v) {
        if (rng.bernoulli(0.6)) {
          terms.push_back({v, rng.uniformReal(-2, 2)});
        }
      }
      if (terms.empty()) continue;
      const Sense sense = rng.bernoulli(0.5) ? Sense::kLessEqual
                                             : Sense::kGreaterEqual;
      m.addConstraint(std::move(terms), sense, rng.uniformReal(-6, 6));
    }
    const LpResult r = SimplexSolver().solve(m);
    if (r.status == LpStatus::kOptimal) {
      ++optimalCount;
      EXPECT_LT(m.infeasibility(r.x), 1e-6) << "trial " << trial;
    }
  }
  EXPECT_GT(optimalCount, 30);
}

}  // namespace
}  // namespace ofl::lp
