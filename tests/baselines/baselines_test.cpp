#include <gtest/gtest.h>

#include <memory>

#include "baselines/greedy_filler.hpp"
#include "baselines/monte_carlo_filler.hpp"
#include "baselines/tile_lp_filler.hpp"
#include "density/density_map.hpp"
#include "density/metrics.hpp"
#include "layout/drc_checker.hpp"

namespace ofl::baselines {
namespace {

layout::DesignRules rules() {
  layout::DesignRules r;
  r.minWidth = 10;
  r.minSpacing = 10;
  r.minArea = 150;
  r.maxFillSize = 150;
  return r;
}

// A 3x3-window layout: one dense window, the rest sparse.
layout::Layout unevenChip() {
  layout::Layout chip({0, 0, 1500, 1500}, 2);
  for (geom::Coord y = 20; y < 480; y += 40) {
    chip.layer(0).wires.push_back({20, y, 480, y + 20});
  }
  chip.layer(0).wires.push_back({700, 700, 900, 760});
  chip.layer(1).wires.push_back({100, 100, 160, 900});
  return chip;
}

std::unique_ptr<Filler> makeFiller(const std::string& which) {
  if (which == "tile-lp") {
    TileLpFiller::Options o;
    o.windowSize = 500;
    o.rules = rules();
    return std::make_unique<TileLpFiller>(o);
  }
  if (which == "monte-carlo") {
    MonteCarloFiller::Options o;
    o.windowSize = 500;
    o.rules = rules();
    return std::make_unique<MonteCarloFiller>(o);
  }
  GreedyFiller::Options o;
  o.windowSize = 500;
  o.rules = rules();
  return std::make_unique<GreedyFiller>(o);
}

class BaselineTest : public ::testing::TestWithParam<std::string> {};

TEST_P(BaselineTest, InsertsFills) {
  layout::Layout chip = unevenChip();
  auto filler = makeFiller(GetParam());
  filler->fill(chip);
  EXPECT_GT(chip.fillCount(), 0u);
}

TEST_P(BaselineTest, OutputIsDrcClean) {
  layout::Layout chip = unevenChip();
  makeFiller(GetParam())->fill(chip);
  const auto violations = layout::DrcChecker(rules()).check(chip, 20);
  for (const auto& v : violations) {
    ADD_FAILURE() << GetParam() << ": " << v.str();
  }
}

TEST_P(BaselineTest, ReducesDensityVariation) {
  layout::Layout chip = unevenChip();
  const layout::WindowGrid grid(chip.die(), 500);
  const double sigmaBefore =
      density::variation(density::DensityMap::compute(chip, 0, grid));
  makeFiller(GetParam())->fill(chip);
  const double sigmaAfter =
      density::variation(density::DensityMap::compute(chip, 0, grid));
  EXPECT_LT(sigmaAfter, sigmaBefore) << GetParam();
}

TEST_P(BaselineTest, RefillingReplacesOldFills) {
  layout::Layout chip = unevenChip();
  auto filler = makeFiller(GetParam());
  filler->fill(chip);
  const std::size_t first = chip.fillCount();
  filler->fill(chip);
  EXPECT_EQ(chip.fillCount(), first);
}

INSTANTIATE_TEST_SUITE_P(All, BaselineTest,
                         ::testing::Values("tile-lp", "monte-carlo",
                                           "greedy"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(MonteCarloFillerTest, DeterministicPerSeed) {
  MonteCarloFiller::Options o;
  o.windowSize = 500;
  o.rules = rules();
  o.seed = 42;
  layout::Layout a = unevenChip();
  layout::Layout b = unevenChip();
  MonteCarloFiller(o).fill(a);
  MonteCarloFiller(o).fill(b);
  ASSERT_EQ(a.fillCount(), b.fillCount());
  for (int l = 0; l < a.numLayers(); ++l) {
    EXPECT_EQ(a.layer(l).fills, b.layer(l).fills);
  }
}

TEST(GreedyFillerTest, ProducesFewerFillsThanTileLp) {
  // The characteristic Table 3 trade-off: greedy's big rects vs the tile
  // method's many small ones.
  layout::Layout greedyChip = unevenChip();
  layout::Layout tileChip = unevenChip();
  makeFiller("greedy")->fill(greedyChip);
  makeFiller("tile-lp")->fill(tileChip);
  ASSERT_GT(greedyChip.fillCount(), 0u);
  ASSERT_GT(tileChip.fillCount(), 0u);
  EXPECT_LT(greedyChip.fillCount(), tileChip.fillCount());
}

}  // namespace
}  // namespace ofl::baselines
