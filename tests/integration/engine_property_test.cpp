// Property tests for the full FillEngine on randomized layouts: every run,
// whatever the wire texture, must produce DRC-clean fills that never
// overlap wires, stay inside the die, and never raise density variation.
#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "density/density_map.hpp"
#include "density/metrics.hpp"
#include "fill/fill_engine.hpp"
#include "layout/drc_checker.hpp"

namespace ofl {
namespace {

layout::DesignRules rules() {
  layout::DesignRules r;
  r.minWidth = 10;
  r.minSpacing = 10;
  r.minArea = 150;
  r.maxFillSize = 200;
  return r;
}

// Random layout: 2 layers, random blocks and wire runs over a 4x4-window
// die, density wildly non-uniform on purpose.
layout::Layout randomLayout(std::uint64_t seed) {
  Rng rng(seed);
  layout::Layout chip({0, 0, 3200, 3200}, 2);
  for (int l = 0; l < 2; ++l) {
    const int blocks = static_cast<int>(rng.uniformInt(0, 5));
    for (int b = 0; b < blocks; ++b) {
      const geom::Coord w = rng.uniformInt(100, 900);
      const geom::Coord h = rng.uniformInt(100, 900);
      const geom::Coord x = rng.uniformInt(0, 3200 - w);
      const geom::Coord y = rng.uniformInt(0, 3200 - h);
      chip.layer(l).wires.push_back({x, y, x + w, y + h});
    }
    const int runs = static_cast<int>(rng.uniformInt(5, 60));
    for (int k = 0; k < runs; ++k) {
      const geom::Coord len = rng.uniformInt(100, 1500);
      const geom::Coord x = rng.uniformInt(0, 3200 - len);
      const geom::Coord y = rng.uniformInt(0, 3200 - 24);
      if (l % 2 == 0) {
        chip.layer(l).wires.push_back({x, y, x + len, y + 24});
      } else {
        chip.layer(l).wires.push_back({y, x, y + 24, x + len});
      }
    }
  }
  return chip;
}

class EnginePropertyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override { setLogLevel(LogLevel::kWarn); }
};

TEST_P(EnginePropertyTest, InvariantsOnRandomLayout) {
  layout::Layout chip = randomLayout(GetParam());
  const layout::WindowGrid grid(chip.die(), 800);
  std::vector<double> sigmaBefore;
  for (int l = 0; l < chip.numLayers(); ++l) {
    sigmaBefore.push_back(
        density::variation(density::DensityMap::compute(chip, l, grid)));
  }

  fill::FillEngineOptions options;
  options.windowSize = 800;
  options.rules = rules();
  fill::FillEngine(options).run(chip);

  // DRC-clean, including fill-wire spacing and die containment.
  const auto violations = layout::DrcChecker(rules()).check(chip, 10);
  for (const auto& v : violations) {
    ADD_FAILURE() << "seed " << GetParam() << ": " << v.str();
  }

  // Fills never overlap same-layer wires (stronger than spacing alone).
  for (int l = 0; l < chip.numLayers(); ++l) {
    for (const auto& f : chip.layer(l).fills) {
      EXPECT_TRUE(chip.die().contains(f));
      for (const auto& w : chip.layer(l).wires) {
        ASSERT_EQ(f.overlapArea(w), 0)
            << "seed " << GetParam() << " layer " << l;
      }
    }
  }

  // Density variation never increases.
  for (int l = 0; l < chip.numLayers(); ++l) {
    const double sigmaAfter =
        density::variation(density::DensityMap::compute(chip, l, grid));
    EXPECT_LE(sigmaAfter,
              sigmaBefore[static_cast<std::size_t>(l)] + 1e-9)
        << "seed " << GetParam() << " layer " << l;
  }
}

TEST_P(EnginePropertyTest, LpBackendSatisfiesSameInvariants) {
  layout::Layout chip = randomLayout(GetParam() + 1000);
  fill::FillEngineOptions options;
  options.windowSize = 800;
  options.rules = rules();
  options.sizer.useLpSolver = true;
  options.sizer.iterations = 1;  // keep the dense solver affordable
  fill::FillEngine(options).run(chip);
  EXPECT_TRUE(layout::DrcChecker(rules()).check(chip, 5).empty())
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnginePropertyTest,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

}  // namespace
}  // namespace ofl
