// Batch observability integration: a FillService run under tracing +
// metrics produces a parseable Chrome trace whose span count covers every
// job and engine stage (correlated by job id), a metrics snapshot carrying
// the engine/cache/scheduler/RSS series, and — the PR-1 contract extended
// to observability — fills that are byte-identical with collection on or
// off.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/json_util.hpp"
#include "fill/fill_engine.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/fill_service.hpp"
#include "service/manifest.hpp"

namespace ofl {
namespace {

std::shared_ptr<const layout::Layout> makeInput(geom::Coord shift) {
  auto chip =
      std::make_shared<layout::Layout>(geom::Rect{0, 0, 4000, 4000}, 2);
  chip->layer(0).wires.push_back({200 + shift, 200, 1800 + shift, 500});
  chip->layer(0).wires.push_back({2200, 2600, 3800, 2900});
  chip->layer(0).wires.push_back({600, 1400, 900, 3400});
  chip->layer(1).wires.push_back({1000, 1000, 1400, 3000});
  chip->layer(1).wires.push_back({2000, 400, 2300, 3600});
  return chip;
}

fill::FillEngineOptions fastOptions() {
  fill::FillEngineOptions opt = service::defaultEngineOptions();
  opt.windowSize = 1000;
  return opt;
}

class ObservabilityIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Tracer::instance().clear();
    obs::Tracer::instance().setEnabled(true);
    obs::MetricsRegistry::instance().reset();
    obs::MetricsRegistry::instance().setEnabled(true);
  }
  void TearDown() override {
    obs::Tracer::instance().setEnabled(false);
    obs::Tracer::instance().clear();
    obs::MetricsRegistry::instance().setEnabled(false);
    obs::MetricsRegistry::instance().reset();
  }
};

TEST_F(ObservabilityIntegrationTest, BatchProducesTraceAndMetrics) {
  constexpr int kJobs = 3;
  std::vector<std::vector<std::vector<geom::Rect>>> fills(kJobs);
  {
    service::ServiceOptions so;
    so.maxConcurrentJobs = 2;
    so.threadsPerJob = 1;
    service::FillService svc(so);
    for (int i = 0; i < kJobs; ++i) {
      service::JobSpec spec;
      spec.layout = makeInput(/*shift=*/i * 40);
      spec.engine = fastOptions();
      spec.keepLayout = true;
      svc.submit(std::move(spec));
    }
    const std::vector<service::JobResult> results = svc.waitAll();
    ASSERT_EQ(results.size(), static_cast<std::size_t>(kJobs));
    for (int i = 0; i < kJobs; ++i) {
      ASSERT_EQ(results[i].status, service::JobStatus::kSucceeded)
          << results[i].error;
      for (int l = 0; l < results[i].layout->numLayers(); ++l) {
        fills[static_cast<std::size_t>(i)].push_back(
            results[i].layout->layer(l).fills);
      }
    }
    service::exportToMetrics(svc.stats());
  }  // service destroyed: every worker joined, all probes flushed

  // --- Trace: every engine stage spans every job, correlated by job id.
  const auto events = obs::Tracer::instance().collect();
  const char* kPerJobSpans[] = {"engine.run",      "engine.planning",
                                "engine.candidates", "engine.sizing",
                                "engine.output",   "job.run",
                                "job.queue_wait",  "sched.execute",
                                "sched.queue_wait"};
  std::map<std::string, std::size_t> counts;
  std::set<int> jobIdsOnEngineRuns;
  for (const auto& ce : events) {
    counts[ce.event.name] += 1;
    if (std::string(ce.event.name) == "engine.run") {
      for (int a = 0; a < ce.event.argCount; ++a) {
        if (std::string(ce.event.argKeys[a]) == "job") {
          jobIdsOnEngineRuns.insert(static_cast<int>(ce.event.argValues[a]));
        }
      }
    }
  }
  for (const char* name : kPerJobSpans) {
    EXPECT_GE(counts[name], static_cast<std::size_t>(kJobs)) << name;
  }
  // Span count >= jobs x engine stages, with per-window spans on top.
  EXPECT_GE(events.size(),
            static_cast<std::size_t>(kJobs) * std::size(kPerJobSpans));
  EXPECT_GE(counts["window.candidates"], static_cast<std::size_t>(kJobs));
  EXPECT_GE(counts["window.sizing"], static_cast<std::size_t>(kJobs));
  EXPECT_EQ(jobIdsOnEngineRuns, (std::set<int>{0, 1, 2}));

  // The emitted artifact parses as Chrome trace JSON.
  const auto doc = json::Value::parse(obs::Tracer::instance().chromeJson());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("traceEvents")->array.size(), events.size());

  // --- Metrics: engine, cache, scheduler, service and RSS series exist.
  obs::updateProcessGauges();
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::instance().snapshot();
  for (const char* name :
       {"engine.runs", "engine.windows", "cache.misses",
        "sched.tasks_submitted", "sched.tasks_completed",
        "service.jobs_completed", "job.run_seconds", "job.queue_seconds",
        "sched.queue_wait_seconds", "quality.windows",
        "service.succeeded", "process.peak_rss_mib"}) {
    EXPECT_TRUE(snap.has(name)) << name;
  }
  EXPECT_EQ(snap.counters.at("engine.runs"), static_cast<std::uint64_t>(kJobs));
  EXPECT_EQ(snap.counters.at("service.jobs_completed"),
            static_cast<std::uint64_t>(kJobs));
  EXPECT_EQ(snap.histograms.at("job.run_seconds").data.count,
            static_cast<std::uint64_t>(kJobs));
  EXPECT_GT(snap.gauges.at("process.peak_rss_mib"), 0.0);

  // --- Determinism: rerun with collection OFF; fills byte-identical.
  obs::Tracer::instance().setEnabled(false);
  obs::MetricsRegistry::instance().setEnabled(false);
  for (int i = 0; i < kJobs; ++i) {
    layout::Layout quiet = *makeInput(/*shift=*/i * 40);
    fill::FillEngineOptions opt = fastOptions();
    opt.numThreads = 1;
    fill::FillEngine(opt).run(quiet);
    for (int l = 0; l < quiet.numLayers(); ++l) {
      EXPECT_EQ(quiet.layer(l).fills,
                fills[static_cast<std::size_t>(i)][static_cast<std::size_t>(l)])
          << "job " << i << " layer " << l;
    }
  }
}

TEST_F(ObservabilityIntegrationTest, TracingDoesNotPerturbSingleRun) {
  // Same layout, tracing on vs off, single engine run: identical fills.
  layout::Layout traced = *makeInput(0);
  fill::FillEngineOptions opt = fastOptions();
  opt.numThreads = 2;
  fill::FillEngine(opt).run(traced);

  obs::Tracer::instance().setEnabled(false);
  obs::MetricsRegistry::instance().setEnabled(false);
  layout::Layout plain = *makeInput(0);
  fill::FillEngine(opt).run(plain);

  for (int l = 0; l < traced.numLayers(); ++l) {
    EXPECT_EQ(traced.layer(l).fills, plain.layer(l).fills) << "layer " << l;
  }
}

TEST_F(ObservabilityIntegrationTest, JobIdFlowsIntoWindowSpans) {
  // FillEngineOptions::jobId tags per-window spans so cross-thread work is
  // attributable to its job in Perfetto.
  layout::Layout chip = *makeInput(0);
  fill::FillEngineOptions opt = fastOptions();
  opt.numThreads = 1;
  opt.jobId = 42;
  fill::FillEngine(opt).run(chip);

  bool sawWindowSpanWithJob = false;
  for (const auto& ce : obs::Tracer::instance().collect()) {
    if (std::string(ce.event.name) != "window.candidates") continue;
    for (int a = 0; a < ce.event.argCount; ++a) {
      if (std::string(ce.event.argKeys[a]) == "job" &&
          ce.event.argValues[a] == 42.0) {
        sawWindowSpanWithJob = true;
      }
    }
  }
  EXPECT_TRUE(sawWindowSpanWithJob);
}

}  // namespace
}  // namespace ofl
