// ECO incremental fill tests: after a local wire change, runIncremental
// must repair only the affected windows, preserve everything else
// bit-exactly, and restore DRC cleanliness and density quality.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/logging.hpp"
#include "contest/benchmark_generator.hpp"
#include "density/density_map.hpp"
#include "density/metrics.hpp"
#include "fill/fill_engine.hpp"
#include "layout/drc_checker.hpp"

namespace ofl {
namespace {

class EcoFillTest : public ::testing::Test {
 protected:
  void SetUp() override {
    setLogLevel(LogLevel::kWarn);
    spec_ = contest::BenchmarkGenerator::spec("tiny");
    chip_ = contest::BenchmarkGenerator::generate(spec_);
    options_.windowSize = spec_.windowSize;
    options_.rules = spec_.rules;
    fill::FillEngine(options_).run(chip_);
  }

  // Adds a wire block inside window (2, 2) and returns the changed rect.
  geom::Rect mutateWires() {
    const geom::Rect block{2 * 1200 + 200, 2 * 1200 + 200, 2 * 1200 + 800,
                           2 * 1200 + 800};
    // Remove wires overlapping the block so the input stays DRC-clean,
    // then place the block.
    for (int l = 0; l < chip_.numLayers(); ++l) {
      auto& wires = chip_.layer(l).wires;
      wires.erase(
          std::remove_if(wires.begin(), wires.end(),
                         [&](const geom::Rect& w) {
                           return w.expanded(spec_.rules.minSpacing)
                               .overlaps(block);
                         }),
          wires.end());
    }
    chip_.layer(0).wires.push_back(block);
    return block;
  }

  contest::BenchmarkSpec spec_;
  layout::Layout chip_{{}, 0};
  fill::FillEngineOptions options_;
};

TEST_F(EcoFillTest, PreservesFillsOutsideAffectedWindows) {
  // Record fills far from the change.
  std::vector<std::vector<geom::Rect>> farFills(
      static_cast<std::size_t>(chip_.numLayers()));
  const geom::Rect changed = mutateWires();
  const geom::Rect affectedArea =
      changed.expanded(spec_.rules.minSpacing + spec_.windowSize);
  for (int l = 0; l < chip_.numLayers(); ++l) {
    for (const auto& f : chip_.layer(l).fills) {
      if (!f.overlaps(affectedArea)) {
        farFills[static_cast<std::size_t>(l)].push_back(f);
      }
    }
  }
  fill::FillEngine(options_).runIncremental(chip_, changed);
  for (int l = 0; l < chip_.numLayers(); ++l) {
    for (const auto& f : farFills[static_cast<std::size_t>(l)]) {
      const auto& fills = chip_.layer(l).fills;
      EXPECT_TRUE(std::find(fills.begin(), fills.end(), f) != fills.end())
          << "layer " << l << " lost " << f.str();
    }
  }
}

TEST_F(EcoFillTest, RepairsDrcAfterWireChange) {
  const geom::Rect changed = mutateWires();
  // The new wire overlaps old fills: DRC is broken before the ECO pass.
  EXPECT_FALSE(layout::DrcChecker(spec_.rules).check(chip_, 5).empty());
  fill::FillEngine(options_).runIncremental(chip_, changed);
  const auto violations = layout::DrcChecker(spec_.rules).check(chip_, 10);
  for (const auto& v : violations) {
    ADD_FAILURE() << v.str();
  }
}

TEST_F(EcoFillTest, DensityQualityStaysClose) {
  const layout::WindowGrid grid(chip_.die(), spec_.windowSize);
  const geom::Rect changed = mutateWires();
  fill::FillEngine(options_).runIncremental(chip_, changed);
  for (int l = 0; l < chip_.numLayers(); ++l) {
    const auto after =
        density::computeMetrics(density::DensityMap::compute(chip_, l, grid));
    // The block raised one window's floor; sigma may grow but must stay
    // far below the unfilled layout's (~0.06).
    EXPECT_LT(after.sigma, 0.03) << "layer " << l;
  }
}

TEST_F(EcoFillTest, MuchCheaperThanFullRerun) {
  const geom::Rect changed = mutateWires();
  const fill::FillReport eco =
      fill::FillEngine(options_).runIncremental(chip_, changed);
  // The tiny suite has 8x8 windows; the change touches ~1-4 of them, so
  // the ECO candidate count must be a small fraction of a full run's.
  layout::Layout fresh = contest::BenchmarkGenerator::generate(spec_);
  const fill::FillReport full = fill::FillEngine(options_).run(fresh);
  EXPECT_LT(eco.candidateCount * 4, full.candidateCount);
}

TEST_F(EcoFillTest, WindowCacheSkipsUnchangedWindowsByteIdentically) {
  // With a WindowCache attached, the full run deposits per-window results
  // and its target plans; the ECO pass must then serve every window whose
  // sizing inputs are unchanged from the cache -- and produce EXACTLY the
  // fills of an identical ECO pass that recomputes every window
  // (ecoWindowReuse = false is the A/B switch for that contract).
  fill::WindowCache cache;
  fill::FillEngineOptions cachedOptions = options_;
  cachedOptions.windowCache = &cache;
  layout::Layout cachedChip = contest::BenchmarkGenerator::generate(spec_);
  fill::FillEngine(cachedOptions).run(cachedChip);
  ASSERT_GT(cache.size(), 0u);

  // Same wire edit on the cached chip as mutateWires() applies to chip_.
  // Declare a change region one window wider than the edit: the ring
  // windows get re-solved with unchanged wires, which is exactly the case
  // the cache must serve.
  chip_ = cachedChip;
  const geom::Rect changed = mutateWires().expanded(spec_.windowSize);
  layout::Layout recomputeChip = chip_;

  const fill::FillReport served =
      fill::FillEngine(cachedOptions).runIncremental(chip_, changed);
  EXPECT_GT(served.ecoWindowsSkipped, 0u);

  fill::FillEngineOptions recomputeOptions = cachedOptions;
  recomputeOptions.ecoWindowReuse = false;
  const fill::FillReport recomputed =
      fill::FillEngine(recomputeOptions).runIncremental(recomputeChip,
                                                        changed);
  EXPECT_EQ(recomputed.ecoWindowsSkipped, 0u);

  for (int l = 0; l < chip_.numLayers(); ++l) {
    EXPECT_EQ(chip_.layer(l).fills, recomputeChip.layer(l).fills)
        << "layer " << l << " diverged between served and recomputed ECO";
  }

  // Quality and DRC must hold on the served result like any ECO pass.
  EXPECT_TRUE(layout::DrcChecker(spec_.rules).check(chip_, 5).empty());
  const layout::WindowGrid grid(chip_.die(), spec_.windowSize);
  for (int l = 0; l < chip_.numLayers(); ++l) {
    const auto after =
        density::computeMetrics(density::DensityMap::compute(chip_, l, grid));
    EXPECT_LT(after.sigma, 0.03) << "layer " << l;
  }
}

TEST_F(EcoFillTest, NoChangeIsNoOp) {
  // An ECO over an empty region (no wire edits) must keep the solution
  // essentially intact outside the designated windows and stay DRC-clean.
  std::size_t before = chip_.fillCount();
  fill::FillEngine(options_).runIncremental(chip_, {0, 0, 10, 10});
  EXPECT_TRUE(layout::DrcChecker(spec_.rules).check(chip_, 5).empty());
  // Fill count may differ slightly in the one re-filled corner window.
  EXPECT_NEAR(static_cast<double>(chip_.fillCount()),
              static_cast<double>(before), 60.0);
}

}  // namespace
}  // namespace ofl
