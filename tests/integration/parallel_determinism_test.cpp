// Parallel determinism: the engine's contract is that the thread count is
// invisible in the result — workers write into pre-sized per-window slots
// and the engine merges them in window order, so the fill lists (order
// included) and every derived metric are bit-identical for any thread
// count. This test is also the TSan smoke workload (tsan_smoke_parallel_fill
// in tests/CMakeLists.txt): it drives candidate generation, sizing and the
// ECO path with 4 worker threads.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/logging.hpp"
#include "common/thread_pool.hpp"
#include "contest/benchmark_generator.hpp"
#include "contest/evaluator.hpp"
#include "contest/score_table.hpp"
#include "fill/fill_engine.hpp"
#include "gds/gds_writer.hpp"
#include "service/fill_service.hpp"
#include "service/result_cache.hpp"

namespace ofl {
namespace {

class ParallelDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    setLogLevel(LogLevel::kWarn);
    spec_ = contest::BenchmarkGenerator::spec("tiny");
    original_ = contest::BenchmarkGenerator::generate(spec_);
    options_.windowSize = spec_.windowSize;
    options_.rules = spec_.rules;
  }

  layout::Layout runWithThreads(int threads) {
    layout::Layout chip = original_;
    fill::FillEngineOptions o = options_;
    o.numThreads = threads;
    const fill::FillReport report = fill::FillEngine(o).run(chip);
    EXPECT_EQ(report.threadsUsed, threads);
    return chip;
  }

  static void expectIdenticalFills(const layout::Layout& a,
                                   const layout::Layout& b, int threads) {
    ASSERT_EQ(a.numLayers(), b.numLayers());
    for (int l = 0; l < a.numLayers(); ++l) {
      const auto& fa = a.layer(l).fills;
      const auto& fb = b.layer(l).fills;
      ASSERT_EQ(fa.size(), fb.size())
          << "layer " << l << ", " << threads << " threads";
      for (std::size_t i = 0; i < fa.size(); ++i) {
        ASSERT_EQ(fa[i], fb[i]) << "layer " << l << " fill " << i << ", "
                                << threads << " threads: " << fa[i].str()
                                << " vs " << fb[i].str();
      }
    }
  }

  contest::BenchmarkSpec spec_;
  layout::Layout original_{{}, 0};
  fill::FillEngineOptions options_;
};

TEST_F(ParallelDeterminismTest, FillListsIdenticalAcrossThreadCounts) {
  const layout::Layout serial = runWithThreads(1);
  EXPECT_GT(serial.fillCount(), 0u);
  for (const int threads : {2, 4}) {
    const layout::Layout parallel = runWithThreads(threads);
    expectIdenticalFills(serial, parallel, threads);
  }
}

TEST_F(ParallelDeterminismTest, ContestScoresIdenticalAcrossThreadCounts) {
  const contest::Evaluator evaluator(spec_.windowSize,
                                     contest::scoreTableFor("tiny"),
                                     spec_.rules);
  const layout::Layout serial = runWithThreads(1);
  // Fixed runtime/memory inputs so the score depends on geometry only.
  const contest::ScoreBreakdown ref =
      evaluator.score(evaluator.measure(serial), 1.0, 100.0);
  const layout::Layout parallel = runWithThreads(4);
  const contest::ScoreBreakdown got =
      evaluator.score(evaluator.measure(parallel), 1.0, 100.0);
  EXPECT_EQ(ref.total, got.total);
  EXPECT_EQ(ref.quality, got.quality);
  EXPECT_EQ(ref.overlay, got.overlay);
  EXPECT_EQ(ref.variation, got.variation);
  EXPECT_EQ(ref.line, got.line);
  EXPECT_EQ(ref.outlier, got.outlier);
}

TEST_F(ParallelDeterminismTest, RepeatedRunsWithManyThreadsStayIdentical) {
  // Regression stress for the pool-reuse race: with more threads than the
  // benchmark has layers, the per-layer stages finish before some workers
  // wake, and FillEngine::run immediately reposts the next stage on the
  // same pool. Repeat whole runs back-to-back so the TSan smoke
  // (gtest_filter=ParallelDeterminism*) exercises that repost window many
  // times; every run must still match the serial result bit-for-bit.
  const int threads = std::max(8, ThreadPool::hardwareThreads());
  const layout::Layout serial = runWithThreads(1);
  for (int round = 0; round < 8; ++round) {
    const layout::Layout parallel = runWithThreads(threads);
    expectIdenticalFills(serial, parallel, threads);
  }
}

TEST_F(ParallelDeterminismTest, EcoRefillIdenticalAcrossThreadCounts) {
  // Mutate a window's wires, then ECO-refill serially and with 4 threads:
  // the repaired layouts must match fill-for-fill.
  auto mutate = [&](layout::Layout& chip) {
    const geom::Rect block{2 * 1200 + 200, 2 * 1200 + 200, 2 * 1200 + 700,
                           2 * 1200 + 700};
    for (int l = 0; l < chip.numLayers(); ++l) {
      auto& wires = chip.layer(l).wires;
      wires.erase(std::remove_if(wires.begin(), wires.end(),
                                 [&](const geom::Rect& w) {
                                   return w.expanded(spec_.rules.minSpacing)
                                       .overlaps(block);
                                 }),
                  wires.end());
    }
    chip.layer(0).wires.push_back(block);
    return block;
  };
  layout::Layout serial = runWithThreads(1);
  layout::Layout parallel = serial;
  const geom::Rect changed = mutate(serial);
  mutate(parallel);

  fill::FillEngineOptions serialOpts = options_;
  serialOpts.numThreads = 1;
  fill::FillEngine(serialOpts).runIncremental(serial, changed);
  fill::FillEngineOptions parallelOpts = options_;
  parallelOpts.numThreads = 4;
  fill::FillEngine(parallelOpts).runIncremental(parallel, changed);
  expectIdenticalFills(serial, parallel, 4);
}

TEST_F(ParallelDeterminismTest, EcoRefillByteIdenticalMatrix) {
  // Full matrix on the ECO path: fill + incremental refill at 1, 2 and 4
  // threads must produce byte-identical GDS streams, not merely equal fill
  // lists — byte identity is what the batch service caches and what
  // `openfill check` verifies.
  const geom::Rect block{2 * 1200 + 200, 2 * 1200 + 200, 2 * 1200 + 700,
                         2 * 1200 + 700};
  auto runMatrixCell = [&](int threads) {
    layout::Layout chip = runWithThreads(threads);
    for (int l = 0; l < chip.numLayers(); ++l) {
      auto& wires = chip.layer(l).wires;
      wires.erase(std::remove_if(wires.begin(), wires.end(),
                                 [&](const geom::Rect& w) {
                                   return w.expanded(spec_.rules.minSpacing)
                                       .overlaps(block);
                                 }),
                  wires.end());
    }
    chip.layer(0).wires.push_back(block);
    fill::FillEngineOptions o = options_;
    o.numThreads = threads;
    fill::FillEngine(o).runIncremental(chip, block);
    return gds::Writer::serialize(chip.toGds());
  };
  const auto serial = runMatrixCell(1);
  for (const int threads : {2, 4}) {
    EXPECT_EQ(runMatrixCell(threads), serial) << threads << " threads";
  }
}

TEST_F(ParallelDeterminismTest, CachedFillReplaysEcoResultExactly) {
  // capture/applyTo must reproduce an ECO-repaired solution byte for byte:
  // the result cache stores post-ECO states too.
  layout::Layout repaired = runWithThreads(1);
  const geom::Rect block{200, 200, 700, 700};
  repaired.layer(0).wires.push_back(block);
  fill::FillEngineOptions o = options_;
  o.numThreads = 1;
  const fill::FillReport report =
      fill::FillEngine(o).runIncremental(repaired, block);

  const auto cached = service::CachedFill::capture(repaired, report);
  layout::Layout replayed = original_;
  replayed.layer(0).wires.push_back(block);
  cached->applyTo(replayed);
  EXPECT_EQ(gds::Writer::serialize(replayed.toGds()),
            gds::Writer::serialize(repaired.toGds()));
}

TEST_F(ParallelDeterminismTest, ServiceJobsAndCacheHitsByteIdentical) {
  // Batch-service corner of the matrix: the same spec run at --jobs 1 and
  // --jobs 3, as a cache miss and as a cache hit, must all serialize to
  // the same bytes as a direct serial engine run.
  const auto direct = gds::Writer::serialize(runWithThreads(1).toGds());
  const auto shared = std::make_shared<const layout::Layout>(original_);

  for (const int jobs : {1, 3}) {
    service::ServiceOptions serviceOptions;
    serviceOptions.maxConcurrentJobs = jobs;
    serviceOptions.threadsPerJob = 2;
    service::FillService fillService(serviceOptions);

    service::JobSpec spec;
    spec.name = "determinism";
    spec.layout = shared;
    spec.engine = options_;
    spec.keepLayout = true;
    // First wave populates the cache (concurrent submissions may all miss);
    // the second wave, submitted after the first drains, must hit.
    for (int i = 0; i < jobs; ++i) fillService.submit(spec);
    for (const service::JobResult& result : fillService.waitAll()) {
      ASSERT_EQ(result.status, service::JobStatus::kSucceeded)
          << result.error;
      ASSERT_NE(result.layout, nullptr);
      EXPECT_EQ(gds::Writer::serialize(result.layout->toGds()), direct)
          << jobs << " jobs, cacheHit=" << result.cacheHit;
    }
    const std::uint64_t hitJob = fillService.submit(spec);
    const service::JobResult hit = fillService.wait(hitJob);
    ASSERT_EQ(hit.status, service::JobStatus::kSucceeded) << hit.error;
    EXPECT_TRUE(hit.cacheHit) << jobs << " jobs";
    ASSERT_NE(hit.layout, nullptr);
    EXPECT_EQ(gds::Writer::serialize(hit.layout->toGds()), direct)
        << jobs << " jobs, cache-hit replay";
  }
}

}  // namespace
}  // namespace ofl
