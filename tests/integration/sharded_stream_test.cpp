// Sharded streaming pipeline vs in-memory engine (ISSUE 9 acceptance):
// for the same wires, rules and die, fill::ShardedEngine::runFile must
// produce a byte-identical output file to FillEngine::run followed by
// Writer::writeFile — at any thread count, any shard partition, and under
// a memory budget tight enough to force multiple shards and disk spill.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/logging.hpp"
#include "contest/benchmark_generator.hpp"
#include "fill/fill_engine.hpp"
#include "fill/sharded_engine.hpp"
#include "gds/gds_writer.hpp"

namespace ofl {
namespace {

std::vector<char> readAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

class ShardedStreamTest : public ::testing::Test {
 protected:
  void SetUp() override { setLogLevel(LogLevel::kWarn); }

  // Writes the suite's wires-only GDS, fills in memory for the reference
  // bytes, then runs the sharded engine and compares output files.
  void expectByteIdentical(const std::string& suite, int threads,
                           std::size_t memBudgetMiB, int rowsPerShard,
                           fill::ShardedReport* reportOut = nullptr) {
    const contest::BenchmarkSpec spec = contest::BenchmarkGenerator::spec(suite);
    layout::Layout chip = contest::BenchmarkGenerator::generate(spec);

    const std::string tag = suite + "_" + std::to_string(threads) + "_" +
                            std::to_string(memBudgetMiB);
    const std::string inputPath = "/tmp/ofl_shard_" + tag + "_in.gds";
    const std::string refPath = "/tmp/ofl_shard_" + tag + "_ref.gds";
    const std::string outPath = "/tmp/ofl_shard_" + tag + "_out.gds";
    ASSERT_GT(gds::Writer::writeFile(chip.toGds(), inputPath), 0);

    fill::FillEngineOptions engine;
    engine.windowSize = spec.windowSize;
    engine.rules = spec.rules;
    engine.numThreads = threads;
    const fill::FillReport inMemory = fill::FillEngine(engine).run(chip);
    ASSERT_GT(inMemory.fillCount, 0u);
    ASSERT_GT(gds::Writer::writeFile(chip.toGds(), refPath), 0);

    fill::ShardedOptions options;
    options.engine = engine;
    options.memBudgetMiB = memBudgetMiB;
    options.rowsPerShard = rowsPerShard;
    fill::ShardedReport report;
    std::string error;
    ASSERT_TRUE(fill::ShardedEngine(options).runFile(
        inputPath, outPath, std::optional<geom::Rect>(spec.die), &report,
        &error))
        << error;
    EXPECT_EQ(report.fill.fillCount, inMemory.fillCount);
    EXPECT_EQ(report.fill.candidateCount, inMemory.candidateCount);

    const std::vector<char> expected = readAll(refPath);
    const std::vector<char> streamed = readAll(outPath);
    ASSERT_FALSE(expected.empty());
    EXPECT_EQ(static_cast<long long>(streamed.size()), report.outputBytes);
    EXPECT_TRUE(streamed == expected)
        << suite << " with " << threads << " threads, budget " << memBudgetMiB
        << " MiB: streamed output diverged (" << streamed.size() << " vs "
        << expected.size() << " bytes)";

    if (reportOut != nullptr) *reportOut = report;
    std::remove(inputPath.c_str());
    std::remove(refPath.c_str());
    std::remove(outPath.c_str());
  }
};

TEST_F(ShardedStreamTest, ByteIdenticalAtOneAndFourThreads) {
  for (const int threads : {1, 4}) {
    // rowsPerShard = 1 maximizes shard seams: every window row is its own
    // candidate/sizing pass, so any halo or ordering bug shows up.
    expectByteIdentical("tiny", threads, /*memBudgetMiB=*/64,
                        /*rowsPerShard=*/1);
  }
}

TEST_F(ShardedStreamTest, TightBudgetForcesShardsAndSpillIdentically) {
  fill::ShardedReport report;
  expectByteIdentical("s", /*threads=*/2, /*memBudgetMiB=*/1,
                      /*rowsPerShard=*/0, &report);
  // A 1 MiB budget on suite s cannot hold the spools in memory: the run
  // must split into several shards and spill to disk, and still match.
  EXPECT_GT(report.shardCount, 1);
  EXPECT_GT(report.spillEvents, 0u);
  EXPECT_GT(report.spilledBytes, 0u);
}

TEST_F(ShardedStreamTest, EmptyInputWithoutDieFails) {
  const std::string inputPath = "/tmp/ofl_shard_empty_in.gds";
  const std::string outPath = "/tmp/ofl_shard_empty_out.gds";
  gds::Library lib;
  lib.cells.emplace_back();
  ASSERT_GT(gds::Writer::writeFile(lib, inputPath), 0);

  fill::ShardedOptions options;
  fill::ShardedReport report;
  std::string error;
  EXPECT_FALSE(fill::ShardedEngine(options).runFile(
      inputPath, outPath, std::nullopt, &report, &error));
  EXPECT_NE(error.find("empty"), std::string::npos) << error;
  std::remove(inputPath.c_str());
}

TEST_F(ShardedStreamTest, ScanExtentsMatchesLayoutBounds) {
  const contest::BenchmarkSpec spec = contest::BenchmarkGenerator::spec("tiny");
  const layout::Layout chip = contest::BenchmarkGenerator::generate(spec);
  const std::string inputPath = "/tmp/ofl_shard_scan_in.gds";
  ASSERT_GT(gds::Writer::writeFile(chip.toGds(), inputPath), 0);

  geom::Rect bbox;
  int maxLayer = 0;
  std::string error;
  ASSERT_TRUE(
      fill::ShardedEngine::scanExtents(inputPath, &bbox, &maxLayer, &error))
      << error;
  EXPECT_EQ(maxLayer, chip.numLayers());
  EXPECT_TRUE(spec.die.contains(bbox)) << bbox.str();
  std::remove(inputPath.c_str());
}

}  // namespace
}  // namespace ofl
