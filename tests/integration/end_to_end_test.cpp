// End-to-end flow tests: generator -> FillEngine -> evaluator -> GDS, on a
// small but structurally complete benchmark.
#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "contest/benchmark_generator.hpp"
#include "contest/evaluator.hpp"
#include "density/density_map.hpp"
#include "density/metrics.hpp"
#include "fill/fill_engine.hpp"
#include "gds/gds_reader.hpp"
#include "layout/drc_checker.hpp"

namespace ofl {
namespace {

contest::BenchmarkSpec tinySpec() {
  return contest::BenchmarkGenerator::spec("tiny");
}

fill::FillEngineOptions engineOptions(const contest::BenchmarkSpec& spec) {
  fill::FillEngineOptions o;
  o.windowSize = spec.windowSize;
  o.rules = spec.rules;
  return o;
}

class EndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    setLogLevel(LogLevel::kWarn);
    spec_ = tinySpec();
    chip_ = contest::BenchmarkGenerator::generate(spec_);
  }
  contest::BenchmarkSpec spec_;
  layout::Layout chip_{{}, 0};
};

TEST_F(EndToEndTest, EngineInsertsFillsAndImprovesAllDensityMetrics) {
  const layout::WindowGrid grid(chip_.die(), spec_.windowSize);
  std::vector<density::DensityMetrics> before;
  for (int l = 0; l < chip_.numLayers(); ++l) {
    before.push_back(
        density::computeMetrics(density::DensityMap::compute(chip_, l, grid)));
  }
  const fill::FillReport report = fill::FillEngine(engineOptions(spec_)).run(chip_);
  EXPECT_GT(report.fillCount, 0u);
  EXPECT_EQ(report.fillCount, chip_.fillCount());
  for (int l = 0; l < chip_.numLayers(); ++l) {
    const auto after =
        density::computeMetrics(density::DensityMap::compute(chip_, l, grid));
    EXPECT_LT(after.sigma, before[static_cast<std::size_t>(l)].sigma)
        << "layer " << l;
    EXPECT_LT(after.lineHotspot,
              before[static_cast<std::size_t>(l)].lineHotspot)
        << "layer " << l;
  }
}

TEST_F(EndToEndTest, EngineOutputIsDrcClean) {
  fill::FillEngine(engineOptions(spec_)).run(chip_);
  const auto violations =
      layout::DrcChecker(spec_.rules).check(chip_, 25);
  for (const auto& v : violations) {
    ADD_FAILURE() << v.str();
  }
}

TEST_F(EndToEndTest, EngineIsDeterministic) {
  layout::Layout other = contest::BenchmarkGenerator::generate(spec_);
  fill::FillEngine(engineOptions(spec_)).run(chip_);
  fill::FillEngine(engineOptions(spec_)).run(other);
  for (int l = 0; l < chip_.numLayers(); ++l) {
    EXPECT_EQ(chip_.layer(l).fills, other.layer(l).fills) << "layer " << l;
  }
}

TEST_F(EndToEndTest, RunningTwiceReplacesFills) {
  const fill::FillEngine engine(engineOptions(spec_));
  engine.run(chip_);
  const std::size_t first = chip_.fillCount();
  engine.run(chip_);
  EXPECT_EQ(chip_.fillCount(), first);
}

TEST_F(EndToEndTest, McfBackendsProduceIdenticalFills) {
  fill::FillEngineOptions nsOpt = engineOptions(spec_);
  nsOpt.sizer.backend = mcf::McfBackend::kNetworkSimplex;
  fill::FillEngineOptions sspOpt = engineOptions(spec_);
  sspOpt.sizer.backend = mcf::McfBackend::kSuccessiveShortestPath;
  layout::Layout other = contest::BenchmarkGenerator::generate(spec_);
  fill::FillEngine(nsOpt).run(chip_);
  fill::FillEngine(sspOpt).run(other);
  // Both backends solve each relaxation exactly but may return different
  // optimal vertices (ties between density and overlay shrinks), and the
  // iterations compound the divergence. The per-layer fill area must still
  // agree closely, and both solutions must be DRC-clean.
  for (int l = 0; l < chip_.numLayers(); ++l) {
    geom::Area a = 0;
    geom::Area b = 0;
    for (const auto& f : chip_.layer(l).fills) a += f.area();
    for (const auto& f : other.layer(l).fills) b += f.area();
    EXPECT_NEAR(static_cast<double>(a), static_cast<double>(b),
                0.03 * static_cast<double>(a))
        << "layer " << l;
  }
  EXPECT_TRUE(layout::DrcChecker(spec_.rules).check(chip_, 5).empty());
  EXPECT_TRUE(layout::DrcChecker(spec_.rules).check(other, 5).empty());
}

TEST_F(EndToEndTest, GdsRoundTripPreservesFillSolution) {
  fill::FillEngine(engineOptions(spec_)).run(chip_);
  const auto bytes = gds::Writer::serialize(chip_.toGds());
  const auto parsed = gds::Reader::parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  const layout::Layout back =
      layout::Layout::fromGds(*parsed, chip_.die(), chip_.numLayers());
  EXPECT_EQ(back.fillCount(), chip_.fillCount());
  EXPECT_EQ(back.wireCount(), chip_.wireCount());
}

TEST_F(EndToEndTest, EvaluatorScoresImproveWithFill) {
  const contest::Evaluator eval(spec_.windowSize,
                                contest::scoreTableFor("s"), spec_.rules);
  const contest::RawMetrics rawBefore = eval.measure(chip_);
  fill::FillEngine(engineOptions(spec_)).run(chip_);
  const contest::RawMetrics rawAfter = eval.measure(chip_);
  EXPECT_LT(rawAfter.variation, rawBefore.variation);
  EXPECT_EQ(rawAfter.drcViolations, 0u);
  const auto sBefore = eval.score(rawBefore, 1.0, 100.0);
  const auto sAfter = eval.score(rawAfter, 1.0, 100.0);
  EXPECT_GT(sAfter.variation, sBefore.variation);
}

TEST_F(EndToEndTest, GoldenDeterminismAnchors) {
  // Behavior-drift tripwire: integer-exact pipeline on a fixed seed must
  // keep producing the same solution. Update these anchors deliberately
  // when an algorithm change is intended (and note it in EXPERIMENTS.md).
  const fill::FillReport report =
      fill::FillEngine(engineOptions(spec_)).run(chip_);
  EXPECT_EQ(report.fillCount, chip_.fillCount());
  geom::Area totalArea = 0;
  for (int l = 0; l < chip_.numLayers(); ++l) {
    for (const auto& f : chip_.layer(l).fills) totalArea += f.area();
  }
  // Two independent anchors: count and exact total area.
  const std::size_t goldenCount = chip_.fillCount();
  const geom::Area goldenArea = totalArea;
  layout::Layout again = contest::BenchmarkGenerator::generate(spec_);
  fill::FillEngine(engineOptions(spec_)).run(again);
  geom::Area areaAgain = 0;
  for (int l = 0; l < again.numLayers(); ++l) {
    for (const auto& f : again.layer(l).fills) areaAgain += f.area();
  }
  EXPECT_EQ(again.fillCount(), goldenCount);
  EXPECT_EQ(areaAgain, goldenArea);
  // Values stay in a sane band even across intended algorithm changes.
  EXPECT_GT(goldenCount, 500u);
  EXPECT_LT(goldenCount, 50000u);
}

TEST_F(EndToEndTest, LambdaSweepTradesCandidatesForDensity) {
  // Higher lambda generates more candidates (Alg. 1's over-generation).
  fill::FillEngineOptions lowOpt = engineOptions(spec_);
  lowOpt.candidate.lambda = 1.0;
  fill::FillEngineOptions highOpt = engineOptions(spec_);
  highOpt.candidate.lambda = 1.5;
  layout::Layout other = contest::BenchmarkGenerator::generate(spec_);
  const auto lowReport = fill::FillEngine(lowOpt).run(chip_);
  const auto highReport = fill::FillEngine(highOpt).run(other);
  EXPECT_GE(highReport.candidateCount, lowReport.candidateCount);
}

}  // namespace
}  // namespace ofl
