// Byte-identity property test for the sizer's default-on MCF warm starts
// and early exits: across randomized layouts, warm-ON and warm-OFF engine
// runs must serialize to the SAME GDS bytes, single- and multi-threaded.
// This is the contract that lets mcfWarmStart/mcfEarlyExit default on --
// DualMcfContext canonicalizes every optimum, so solver shortcuts may
// never show up in the output.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "fill/fill_engine.hpp"
#include "gds/gds_writer.hpp"
#include "layout/layout.hpp"

namespace ofl {
namespace {

layout::DesignRules rules() {
  layout::DesignRules r;
  r.minWidth = 10;
  r.minSpacing = 10;
  r.minArea = 150;
  r.maxFillSize = 200;
  return r;
}

// Random 2-layer layout over a 2x2-window die: blocks plus wire runs,
// deliberately non-uniform so sizing has real work (and real spacing
// constraints) in every window.
layout::Layout randomLayout(std::uint64_t seed) {
  Rng rng(seed);
  layout::Layout chip({0, 0, 1600, 1600}, 2);
  for (int l = 0; l < 2; ++l) {
    const int blocks = static_cast<int>(rng.uniformInt(0, 3));
    for (int b = 0; b < blocks; ++b) {
      const geom::Coord w = rng.uniformInt(100, 600);
      const geom::Coord h = rng.uniformInt(100, 600);
      const geom::Coord x = rng.uniformInt(0, 1600 - w);
      const geom::Coord y = rng.uniformInt(0, 1600 - h);
      chip.layer(l).wires.push_back({x, y, x + w, y + h});
    }
    const int runs = static_cast<int>(rng.uniformInt(4, 30));
    for (int k = 0; k < runs; ++k) {
      const geom::Coord len = rng.uniformInt(80, 900);
      const geom::Coord x = rng.uniformInt(0, 1600 - len);
      const geom::Coord y = rng.uniformInt(0, 1600 - 20);
      if (l % 2 == 0) {
        chip.layer(l).wires.push_back({x, y, x + len, y + 20});
      } else {
        chip.layer(l).wires.push_back({y, x, y + 20, x + len});
      }
    }
  }
  return chip;
}

std::vector<std::uint8_t> gdsBytes(const layout::Layout& original,
                                   bool warm, int threads,
                                   fill::FillReport* report = nullptr) {
  layout::Layout chip = original;
  fill::FillEngineOptions o;
  o.windowSize = 800;
  o.rules = rules();
  o.numThreads = threads;
  o.sizer.mcfWarmStart = warm;
  o.sizer.mcfEarlyExit = warm;
  const fill::FillReport r = fill::FillEngine(o).run(chip);
  if (report != nullptr) *report = r;
  return gds::Writer::serialize(chip.toGds());
}

TEST(SizerWarmEquivalence, FiftyLayoutsByteIdenticalGdsAt1And4Threads) {
  setLogLevel(LogLevel::kWarn);
  long long totalWarmStarts = 0;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const layout::Layout chip = randomLayout(seed);
    fill::FillReport warmReport;
    const auto warm1 = gdsBytes(chip, true, 1, &warmReport);
    const auto cold1 = gdsBytes(chip, false, 1);
    ASSERT_EQ(warm1, cold1) << "seed " << seed << " diverged at 1 thread";
    const auto warm4 = gdsBytes(chip, true, 4);
    const auto cold4 = gdsBytes(chip, false, 4);
    ASSERT_EQ(warm4, cold4) << "seed " << seed << " diverged at 4 threads";
    ASSERT_EQ(warm1, warm4) << "seed " << seed
                            << " thread count changed the output";
    totalWarmStarts += warmReport.sizerStats.warmStarts;
  }
  // The equivalence is vacuous if the warm path never engages.
  EXPECT_GT(totalWarmStarts, 0);
}

}  // namespace
}  // namespace ofl
