// Oracle-vs-production micro-benchmarks: how much slower are the
// reference implementations in src/verify/ than the optimized paths they
// cross-check? Keeps `openfill check` latency honest — the oracles must
// stay usable on full contest suites (seconds, not minutes). The oracle
// and production slowdown ratios are published as ratio series so the
// trend report tracks them across machines. BENCH_oracle.json.
//
// Usage: bench_oracle [reps] [--reps N] [--warmup N] [--out F]
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "contest/benchmark_generator.hpp"
#include "contest/evaluator.hpp"
#include "contest/score_table.hpp"
#include "fill/fill_engine.hpp"
#include "geometry/boolean.hpp"
#include "layout/window_grid.hpp"
#include "verify/invariants.hpp"
#include "verify/oracle.hpp"

using namespace ofl;

namespace {

volatile std::uint64_t gSink = 0;

std::vector<geom::Rect> randomRects(int n, geom::Coord extent,
                                    geom::Coord maxEdge, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<geom::Rect> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    const geom::Coord w = rng.uniformInt(4, maxEdge);
    const geom::Coord h = rng.uniformInt(4, maxEdge);
    const geom::Coord x = rng.uniformInt(0, extent - w);
    const geom::Coord y = rng.uniformInt(0, extent - h);
    out.push_back({x, y, x + w, y + h});
  }
  return out;
}

const layout::Layout& filledTiny() {
  static const layout::Layout chip = [] {
    ScopedLogLevel quiet(LogLevel::kWarn);
    layout::Layout c = contest::BenchmarkGenerator::generate(
        contest::BenchmarkGenerator::spec("tiny"));
    fill::FillEngineOptions options;
    options.windowSize = 800;
    fill::FillEngine(options).run(c);
    return c;
  }();
  return chip;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ofl::bench;
  BenchArgs args = BenchArgs::parse(argc, argv, "", /*reps=*/3,
                                    /*warmup=*/1);
  if (!args.suite.empty() &&
      args.suite.find_first_not_of("0123456789") == std::string::npos) {
    args.reps = std::max(1, std::atoi(args.suite.c_str()));
    args.suite = "";
  }
  Harness h(args.harnessOptions("oracle"));

  struct Case {
    std::string name;
    std::function<void()> op;
  };
  std::vector<Case> cases;

  for (const int n : {100, 1000, 10000}) {
    auto rects = std::make_shared<std::vector<geom::Rect>>(
        randomRects(n, 4000, 120, 3));
    const std::string tag = std::to_string(n);
    cases.push_back({"oracle_union_area_" + tag, [rects] {
                       gSink = gSink + static_cast<std::uint64_t>(
                           verify::oracleUnionArea(*rects));
                     }});
    cases.push_back({"union_area_" + tag, [rects] {
                       gSink = gSink + static_cast<std::uint64_t>(
                           geom::unionArea(*rects));
                     }});
  }
  for (const int n : {100, 1000, 10000}) {
    auto a = std::make_shared<std::vector<geom::Rect>>(
        randomRects(n, 4000, 120, 3));
    auto b = std::make_shared<std::vector<geom::Rect>>(
        randomRects(n, 4000, 120, 4));
    cases.push_back({"oracle_intersection_area_" + std::to_string(n),
                     [a, b] {
                       gSink = gSink + static_cast<std::uint64_t>(
                           verify::oracleIntersectionArea(*a, *b));
                     }});
  }

  const layout::Layout& chip = filledTiny();
  cases.push_back({"oracle_measure_ns", [&chip] {
                     gSink = gSink + verify::oracleMeasure(chip, 800).fillCount;
                   }});
  {
    auto evaluator = std::make_shared<contest::Evaluator>(
        800, contest::scoreTableFor("tiny"), layout::DesignRules{});
    cases.push_back({"measure_ns", [evaluator, &chip] {
                       gSink = gSink + evaluator->measure(chip).fillCount;
                     }});
  }
  {
    auto grid = std::make_shared<layout::WindowGrid>(chip.die(), 800);
    auto shapes = std::make_shared<std::vector<geom::Rect>>(
        chip.layer(0).wires);
    shapes->insert(shapes->end(), chip.layer(0).fills.begin(),
                   chip.layer(0).fills.end());
    cases.push_back({"oracle_window_density_ns", [grid, shapes] {
                       gSink = gSink + static_cast<std::uint64_t>(
                           verify::oracleWindowDensity(*shapes, *grid).count());
                     }});
  }
  {
    // The complete `openfill check` pass (determinism included: three full
    // engine runs) on the tiny suite.
    verify::InvariantChecker::Options options;
    options.engine.windowSize = 800;
    options.determinismThreads = 2;
    auto checker = std::make_shared<verify::InvariantChecker>(options);
    cases.push_back({"full_invariant_check_ns", [checker, &chip] {
                       ScopedLogLevel quiet(LogLevel::kWarn);
                       gSink = gSink + (checker->check(chip).ok() ? 1 : 0);
                     }});
  }

  std::vector<std::function<void()>> bodies;
  bodies.reserve(cases.size());
  for (Case& c : cases) {
    Series& s = h.series(c.name, "ns");
    bodies.push_back([&c, series = &s] {
      series->record(Harness::nsPerOp(c.op));
    });
  }
  h.runInterleaved(bodies);

  // Headline ratios: oracle cost over the production path it cross-checks.
  h.recordRatio("oracle_union_slowdown_10000",
                h.series("oracle_union_area_10000", "ns"),
                h.series("union_area_10000", "ns"),
                Direction::kLowerIsBetter);
  h.recordRatio("oracle_measure_slowdown", h.series("oracle_measure_ns", "ns"),
                h.series("measure_ns", "ns"), Direction::kLowerIsBetter);
  return h.finish();
}
