// Oracle-vs-production micro-benchmarks: how much slower are the
// reference implementations in src/verify/ than the optimized paths they
// cross-check? Keeps `openfill check` latency honest — the oracles must
// stay usable on full contest suites (seconds, not minutes).
#include <benchmark/benchmark.h>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "contest/benchmark_generator.hpp"
#include "contest/evaluator.hpp"
#include "contest/score_table.hpp"
#include "density/density_map.hpp"
#include "density/metrics.hpp"
#include "fill/fill_engine.hpp"
#include "geometry/boolean.hpp"
#include "verify/invariants.hpp"
#include "verify/oracle.hpp"

using namespace ofl;

namespace {

std::vector<geom::Rect> randomRects(int n, geom::Coord extent,
                                    geom::Coord maxEdge, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<geom::Rect> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    const geom::Coord w = rng.uniformInt(4, maxEdge);
    const geom::Coord h = rng.uniformInt(4, maxEdge);
    const geom::Coord x = rng.uniformInt(0, extent - w);
    const geom::Coord y = rng.uniformInt(0, extent - h);
    out.push_back({x, y, x + w, y + h});
  }
  return out;
}

void BM_OracleUnionArea(benchmark::State& state) {
  const auto rects =
      randomRects(static_cast<int>(state.range(0)), 4000, 120, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify::oracleUnionArea(rects));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OracleUnionArea)->Arg(100)->Arg(1000)->Arg(10000);

void BM_ProductionUnionArea(benchmark::State& state) {
  const auto rects =
      randomRects(static_cast<int>(state.range(0)), 4000, 120, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geom::unionArea(rects));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ProductionUnionArea)->Arg(100)->Arg(1000)->Arg(10000);

void BM_OracleIntersectionArea(benchmark::State& state) {
  const auto a = randomRects(static_cast<int>(state.range(0)), 4000, 120, 3);
  const auto b = randomRects(static_cast<int>(state.range(0)), 4000, 120, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify::oracleIntersectionArea(a, b));
  }
}
BENCHMARK(BM_OracleIntersectionArea)->Arg(100)->Arg(1000)->Arg(10000);

const layout::Layout& filledTiny() {
  static const layout::Layout chip = [] {
    ScopedLogLevel quiet(LogLevel::kWarn);
    layout::Layout c = contest::BenchmarkGenerator::generate(
        contest::BenchmarkGenerator::spec("tiny"));
    fill::FillEngineOptions options;
    options.windowSize = 800;
    fill::FillEngine(options).run(c);
    return c;
  }();
  return chip;
}

void BM_OracleMeasure(benchmark::State& state) {
  const layout::Layout& chip = filledTiny();
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify::oracleMeasure(chip, 800));
  }
}
BENCHMARK(BM_OracleMeasure)->Unit(benchmark::kMillisecond);

void BM_ProductionMeasure(benchmark::State& state) {
  const layout::Layout& chip = filledTiny();
  const contest::Evaluator evaluator(800, contest::scoreTableFor("tiny"),
                                     layout::DesignRules{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.measure(chip));
  }
}
BENCHMARK(BM_ProductionMeasure)->Unit(benchmark::kMillisecond);

void BM_OracleWindowDensity(benchmark::State& state) {
  const layout::Layout& chip = filledTiny();
  const layout::WindowGrid grid(chip.die(), 800);
  std::vector<geom::Rect> shapes = chip.layer(0).wires;
  shapes.insert(shapes.end(), chip.layer(0).fills.begin(),
                chip.layer(0).fills.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify::oracleWindowDensity(shapes, grid));
  }
}
BENCHMARK(BM_OracleWindowDensity)->Unit(benchmark::kMillisecond);

void BM_FullInvariantCheck(benchmark::State& state) {
  // The complete `openfill check` pass (determinism included: three full
  // engine runs) on the tiny suite.
  const layout::Layout& chip = filledTiny();
  ScopedLogLevel quiet(LogLevel::kWarn);
  verify::InvariantChecker::Options options;
  options.engine.windowSize = 800;
  options.determinismThreads = 2;
  const verify::InvariantChecker checker(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.check(chip));
  }
}
BENCHMARK(BM_FullInvariantCheck)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
