// MCF warm-start / early-exit study: the solver-level A/B behind the
// sizer's default-on warm starts.
//
// Two measurements, both gated on byte-identical results:
//
//  1. Solver level: fill-sizing-shaped differential LP sequences (each
//     "window" solves H1,V1,H2,V2 — round 2 repeats the topology with
//     perturbed costs, the exact pattern FillSizer emits) are replayed
//     through three context configurations — cold (network reuse only),
//     warm (basis reuse), warm+early (sensitivity memo). Per-solve ns and
//     the warm/early hit counts come from here.
//
//  2. Engine level: a contest suite is filled twice, sizer warm+early ON
//     vs OFF, single-threaded, and the sizing-stage thread-seconds are
//     compared. This is the end-to-end "dominant stage" speedup.
//
// Repetitions interleave configurations (like bench_hotpath) so load
// spikes land on every config evenly; each config keeps its best rep.
// Results go to BENCH_mcf.json. The bench exits nonzero when any config
// diverges or when no warm start fired (the CI perf-smoke gate).
//
// Usage: bench_mcf [suite] [reps]   (s|b|m|tiny, default s; reps default 3)
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/logging.hpp"
#include "common/prof.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "contest/benchmark_generator.hpp"
#include "fill/fill_engine.hpp"
#include "mcf/dual_lp.hpp"

using namespace ofl;
using namespace ofl::mcf;

namespace {

// Fill-sizing-shaped differential LP: n fills in a row, each with lo/hi
// edge variables, min-width constraints and spacing constraints to the
// next fill — the structure FillSizer emits.
DifferentialLp sizingShapedLp(int fills, std::uint64_t seed) {
  Rng rng(seed);
  DifferentialLp lp;
  Value cursor = 0;
  for (int f = 0; f < fills; ++f) {
    const Value width = rng.uniformInt(40, 120);
    const Value height = rng.uniformInt(40, 120);
    const Value shrink = 25;
    const int lo = lp.addVariable(-height, cursor, cursor + shrink);
    const int hi =
        lp.addVariable(height, cursor + width - shrink, cursor + width);
    lp.addConstraint(hi, lo, 10);
    if (f > 0) lp.addConstraint(lo, hi - 3, 10);  // spacing to previous hi
    cursor += width + rng.uniformInt(5, 30);
  }
  return lp;
}

// Same topology, costs nudged — a "round 2" solve. Every third sequence
// keeps its costs, which is what lets the early-exit memo fire.
DifferentialLp perturbCosts(const DifferentialLp& base, std::uint64_t seed,
                            bool keepCosts) {
  Rng rng(seed);
  DifferentialLp lp;
  for (int v = 0; v < base.numVariables(); ++v) {
    const Value dc = keepCosts ? 0 : rng.uniformInt(-15, 15);
    lp.addVariable(base.cost(v) + dc, base.lower(v), base.upper(v));
  }
  for (const DiffConstraint& c : base.constraints()) {
    lp.addConstraint(c.i, c.j, c.bound);
  }
  return lp;
}

struct SolverRun {
  std::string config;
  double seconds = 0.0;
  long long solves = 0;
  long long warmStarts = 0;
  long long earlyExits = 0;
  std::uint64_t xHash = 0;  // FNV over every solve's x, in order
};

// Replays every sequence (4 solves each) through fresh contexts with the
// given options; one context per sequence, exactly like the sizer's
// per-(layer,direction) contexts.
SolverRun replay(const std::vector<std::vector<DifferentialLp>>& sequences,
                 const char* config, bool warm, bool early,
                 bool fullRefresh = false) {
  SolverRun run;
  run.config = config;
  std::uint64_t h = 1469598103934665603ull;
  Timer t;
  for (const auto& seq : sequences) {
    DualMcfContext context(DualMcfContext::Options{
        McfBackend::kNetworkSimplex, warm, early, 0, fullRefresh});
    for (const DifferentialLp& lp : seq) {
      const DiffLpResult r = context.solve(lp);
      ++run.solves;
      if (r.usedWarmStart) ++run.warmStarts;
      if (r.usedEarlyExit) ++run.earlyExits;
      for (const Value v : r.x) {
        h ^= static_cast<std::uint64_t>(v);
        h *= 1099511628211ull;
      }
    }
  }
  run.seconds = t.elapsedSeconds();
  run.xHash = h;
  return run;
}

void keepBestSolver(SolverRun& best, const SolverRun& next) {
  if (next.xHash != best.xHash) {
    std::printf("FAIL: %s diverged across repetitions\n", best.config.c_str());
    std::exit(1);
  }
  if (next.seconds < best.seconds) best = next;
}

// Engine-level sizing A/B on one suite, single-threaded.
struct EngineRun {
  double sizingSeconds = 0.0;
  double wall = 0.0;
  long long solves = 0;
  long long warmStarts = 0;
  long long earlyExits = 0;
  std::size_t fills = 0;
  std::uint64_t hash = 0;
};

std::uint64_t fillHash(const layout::Layout& chip) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](geom::Coord v) {
    h ^= static_cast<std::uint64_t>(v);
    h *= 1099511628211ull;
  };
  for (int l = 0; l < chip.numLayers(); ++l) {
    for (const geom::Rect& f : chip.layer(l).fills) {
      mix(f.xl);
      mix(f.yl);
      mix(f.xh);
      mix(f.yh);
    }
  }
  return h;
}

EngineRun engineOnce(const layout::Layout& original,
                     const contest::BenchmarkSpec& spec, bool warm,
                     bool fullRefresh) {
  layout::Layout chip = original;
  fill::FillEngineOptions o;
  o.windowSize = spec.windowSize;
  o.rules = spec.rules;
  o.numThreads = 1;
  o.sizer.mcfWarmStart = warm;
  o.sizer.mcfEarlyExit = warm;
  o.sizer.mcfFullRefresh = fullRefresh;
  prof::Registry::instance().reset();
  EngineRun run;
  Timer t;
  const fill::FillReport report = fill::FillEngine(o).run(chip);
  run.wall = t.elapsedSeconds();
  run.sizingSeconds = report.profile.stage(prof::Stage::kSizing).seconds();
  run.solves = report.sizerStats.solves;
  run.warmStarts = report.sizerStats.warmStarts;
  run.earlyExits = report.sizerStats.earlyExits;
  run.fills = report.fillCount;
  run.hash = fillHash(chip);
  return run;
}

void keepBestEngine(EngineRun& best, const EngineRun& next) {
  if (next.hash != best.hash || next.fills != best.fills) {
    std::printf("FAIL: engine run diverged across repetitions\n");
    std::exit(1);
  }
  if (next.sizingSeconds < best.sizingSeconds) best = next;
}

double perSolveNs(const SolverRun& r) {
  return r.solves > 0 ? r.seconds * 1e9 / static_cast<double>(r.solves) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  setLogLevel(LogLevel::kWarn);
  const std::string suite = argc > 1 ? argv[1] : "s";
  const int reps = argc > 2 ? std::max(1, std::atoi(argv[2])) : 3;

  // --- Solver-level replay ---
  const int kSequences = 400;
  const int kFills = 24;
  std::vector<std::vector<DifferentialLp>> sequences;
  sequences.reserve(kSequences);
  for (int s = 0; s < kSequences; ++s) {
    const auto seed = static_cast<std::uint64_t>(s) * 7919 + 11;
    const bool repeatCosts = (s % 3 == 0);
    const DifferentialLp h1 = sizingShapedLp(kFills, seed);
    const DifferentialLp v1 = sizingShapedLp(kFills, seed + 1);
    // H2/V2 repeat the round-1 topology with nudged (or repeated) costs.
    std::vector<DifferentialLp> seq;
    seq.push_back(h1);
    seq.push_back(perturbCosts(h1, seed + 2, repeatCosts));
    seq.push_back(v1);
    seq.push_back(perturbCosts(v1, seed + 3, repeatCosts));
    sequences.push_back(std::move(seq));
  }

  // "baseline" is the pre-incremental solver: cold starts plus a full
  // tree rebuild after every pivot. "cold" isolates the always-on solver
  // improvements; "warm"/"warm+early" add the optional reuse layers.
  SolverRun base = replay(sequences, "baseline", false, false, true);
  SolverRun cold = replay(sequences, "cold", false, false);
  SolverRun warm = replay(sequences, "warm", true, false);
  SolverRun warmEarly = replay(sequences, "warm+early", true, true);
  for (int r = 1; r < reps; ++r) {
    keepBestSolver(base, replay(sequences, "baseline", false, false, true));
    keepBestSolver(cold, replay(sequences, "cold", false, false));
    keepBestSolver(warm, replay(sequences, "warm", true, false));
    keepBestSolver(warmEarly, replay(sequences, "warm+early", true, true));
  }
  const bool solverIdentical = base.xHash == cold.xHash &&
                               cold.xHash == warm.xHash &&
                               cold.xHash == warmEarly.xHash;

  std::printf("== MCF replay: %d sequences x 4 solves, %d fills each, "
              "best of %d ==\n",
              kSequences, kFills, reps);
  for (const SolverRun* r : {&base, &cold, &warm, &warmEarly}) {
    std::printf("  %-10s %8.3f ms  %6lld solves  %5lld warm  %5lld early  "
                "%7.0f ns/solve\n",
                r->config.c_str(), r->seconds * 1e3, r->solves, r->warmStarts,
                r->earlyExits, perSolveNs(*r));
  }
  std::printf("  solutions %s\n",
              solverIdentical ? "BYTE-IDENTICAL" : "DIVERGED (BUG!)");

  // --- Engine-level sizing A/B ---
  const contest::BenchmarkSpec spec = contest::BenchmarkGenerator::spec(suite);
  const layout::Layout original = contest::BenchmarkGenerator::generate(spec);
  prof::Registry::instance().setEnabled(true);
  EngineRun engBase = engineOnce(original, spec, false, true);
  EngineRun engCold = engineOnce(original, spec, false, false);
  EngineRun engWarm = engineOnce(original, spec, true, false);
  for (int r = 1; r < reps; ++r) {
    keepBestEngine(engBase, engineOnce(original, spec, false, true));
    keepBestEngine(engCold, engineOnce(original, spec, false, false));
    keepBestEngine(engWarm, engineOnce(original, spec, true, false));
  }
  prof::Registry::instance().setEnabled(false);

  const bool engineIdentical =
      engBase.hash == engCold.hash && engCold.hash == engWarm.hash &&
      engBase.fills == engCold.fills && engCold.fills == engWarm.fills;
  // The headline number: warm incremental sizer vs the pre-PR solver.
  const double sizingSpeedup =
      engBase.sizingSeconds / std::max(engWarm.sizingSeconds, 1e-9);
  const double warmVsCold =
      engCold.sizingSeconds / std::max(engWarm.sizingSeconds, 1e-9);
  const double warmHitRate =
      engWarm.solves > 0 ? static_cast<double>(engWarm.warmStarts) /
                               static_cast<double>(engWarm.solves)
                         : 0.0;
  std::printf("\n== Engine sizing A/B: suite %s, %zu wires, 1 thread ==\n",
              spec.name.c_str(), original.wireCount());
  std::printf("  baseline    sizing %.3fs (%lld solves; pre-PR solver)\n",
              engBase.sizingSeconds, engBase.solves);
  std::printf("  cold-sizer  sizing %.3fs (%lld solves)\n",
              engCold.sizingSeconds, engCold.solves);
  std::printf("  warm-sizer  sizing %.3fs (%lld solves, %lld warm [%.0f%%], "
              "%lld early exits)\n",
              engWarm.sizingSeconds, engWarm.solves, engWarm.warmStarts,
              warmHitRate * 100.0, engWarm.earlyExits);
  std::printf("  sizing speedup %.2fx vs baseline (%.2fx vs cold); "
              "fills %s\n",
              sizingSpeedup, warmVsCold,
              engineIdentical ? "BYTE-IDENTICAL" : "DIVERGED (BUG!)");

  std::FILE* json = std::fopen("BENCH_mcf.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"benchmark\": \"mcf_warm_start\",\n"
                 "  \"suite\": \"%s\",\n  \"reps\": %d,\n"
                 "  \"solver_identical\": %s,\n  \"engine_identical\": %s,\n"
                 "  \"sizing_speedup_vs_baseline\": %.3f,\n"
                 "  \"sizing_speedup_vs_cold\": %.3f,\n"
                 "  \"warm_start_hit_rate\": %.4f,\n"
                 "  \"solver_runs\": [\n",
                 spec.name.c_str(), reps, solverIdentical ? "true" : "false",
                 engineIdentical ? "true" : "false", sizingSpeedup,
                 warmVsCold, warmHitRate);
    const SolverRun* runs[] = {&base, &cold, &warm, &warmEarly};
    for (std::size_t i = 0; i < 4; ++i) {
      const SolverRun& r = *runs[i];
      std::fprintf(json,
                   "    {\"config\": \"%s\", \"seconds\": %.6f, "
                   "\"solves\": %lld, \"warm_starts\": %lld, "
                   "\"early_exits\": %lld, \"per_solve_ns\": %.1f}%s\n",
                   r.config.c_str(), r.seconds, r.solves, r.warmStarts,
                   r.earlyExits, perSolveNs(r), i + 1 < 4 ? "," : "");
    }
    std::fprintf(json,
                 "  ],\n  \"engine_runs\": [\n"
                 "    {\"config\": \"baseline-sizer\", "
                 "\"sizing_seconds\": %.4f, \"wall_seconds\": %.4f, "
                 "\"solves\": %lld, \"fill_count\": %zu, "
                 "\"fill_hash\": \"%llx\"},\n"
                 "    {\"config\": \"cold-sizer\", \"sizing_seconds\": %.4f, "
                 "\"wall_seconds\": %.4f, \"solves\": %lld, "
                 "\"fill_count\": %zu, \"fill_hash\": \"%llx\"},\n"
                 "    {\"config\": \"warm-sizer\", \"sizing_seconds\": %.4f, "
                 "\"wall_seconds\": %.4f, \"solves\": %lld, "
                 "\"warm_starts\": %lld, \"early_exits\": %lld, "
                 "\"fill_count\": %zu, \"fill_hash\": \"%llx\"}\n  ]\n}\n",
                 engBase.sizingSeconds, engBase.wall, engBase.solves,
                 engBase.fills,
                 static_cast<unsigned long long>(engBase.hash),
                 engCold.sizingSeconds, engCold.wall, engCold.solves,
                 engCold.fills,
                 static_cast<unsigned long long>(engCold.hash),
                 engWarm.sizingSeconds, engWarm.wall, engWarm.solves,
                 engWarm.warmStarts, engWarm.earlyExits, engWarm.fills,
                 static_cast<unsigned long long>(engWarm.hash));
    std::fclose(json);
    std::printf("wrote BENCH_mcf.json\n");
  }

  if (!solverIdentical || !engineIdentical) return 1;
  if (warm.warmStarts == 0 || engWarm.warmStarts == 0) {
    std::printf("FAIL: no warm start fired\n");
    return 1;
  }
  return 0;
}
