// Micro-benchmarks of the min-cost flow substrate: NetworkSimplex vs
// SuccessiveShortestPath on random transportation networks and on
// fill-sizing-shaped differential LPs (chains of fills with spacing
// constraints), across instance sizes.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "mcf/dual_lp.hpp"
#include "mcf/network_simplex.hpp"
#include "mcf/ssp.hpp"

using namespace ofl;
using namespace ofl::mcf;

namespace {

// Random balanced transportation instance: k sources, k sinks, dense-ish
// arc set with random costs.
Graph randomTransport(int k, std::uint64_t seed) {
  Rng rng(seed);
  Graph g;
  for (int i = 0; i < k; ++i) g.addNode(rng.uniformInt(1, 20));
  Value total = 0;
  for (int i = 0; i < k; ++i) total += g.supply(i);
  for (int i = 0; i < k; ++i) {
    const Value take = (i == k - 1) ? total : std::min<Value>(total, rng.uniformInt(0, 2 * total / k + 1));
    g.addNode(-take);
    total -= take;
  }
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < k; ++j) {
      if ((i + j) % 3 == 0 || i == j) {
        g.addArc(i, k + j, 1000, rng.uniformInt(1, 50));
      }
    }
  }
  return g;
}

// Fill-sizing-shaped differential LP: n fills in a row, each with lo/hi
// edge variables, min-width constraints and spacing constraints to the
// next fill — the exact structure FillSizer emits.
DifferentialLp sizingShapedLp(int fills, std::uint64_t seed) {
  Rng rng(seed);
  DifferentialLp lp;
  Value cursor = 0;
  for (int f = 0; f < fills; ++f) {
    const Value width = rng.uniformInt(40, 120);
    const Value height = rng.uniformInt(40, 120);
    const Value shrink = 25;
    const int lo = lp.addVariable(-height, cursor, cursor + shrink);
    const int hi =
        lp.addVariable(height, cursor + width - shrink, cursor + width);
    lp.addConstraint(hi, lo, 10);
    if (f > 0) lp.addConstraint(lo, hi - 3, 10);  // spacing to previous hi
    cursor += width + rng.uniformInt(5, 30);
  }
  return lp;
}

void BM_TransportNetworkSimplex(benchmark::State& state) {
  const Graph g = randomTransport(static_cast<int>(state.range(0)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(NetworkSimplex().solve(g));
  }
}
BENCHMARK(BM_TransportNetworkSimplex)->Arg(8)->Arg(32)->Arg(128);

void BM_TransportSsp(benchmark::State& state) {
  const Graph g = randomTransport(static_cast<int>(state.range(0)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SuccessiveShortestPath().solve(g));
  }
}
BENCHMARK(BM_TransportSsp)->Arg(8)->Arg(32)->Arg(128);

void BM_SizingLpNetworkSimplex(benchmark::State& state) {
  const DifferentialLp lp =
      sizingShapedLp(static_cast<int>(state.range(0)), 11);
  const DifferentialLpSolver solver(McfBackend::kNetworkSimplex);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(lp));
  }
}
BENCHMARK(BM_SizingLpNetworkSimplex)->Arg(16)->Arg(64)->Arg(256);

void BM_SizingLpSsp(benchmark::State& state) {
  const DifferentialLp lp =
      sizingShapedLp(static_cast<int>(state.range(0)), 11);
  const DifferentialLpSolver solver(McfBackend::kSuccessiveShortestPath);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(lp));
  }
}
BENCHMARK(BM_SizingLpSsp)->Arg(16)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
