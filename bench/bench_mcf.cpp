// MCF warm-start / early-exit study: the solver-level A/B behind the
// sizer's default-on warm starts.
//
// Two measurements, both gated on byte-identical results:
//
//  1. Solver level: fill-sizing-shaped differential LP sequences (each
//     "window" solves H1,V1,H2,V2 — round 2 repeats the topology with
//     perturbed costs, the exact pattern FillSizer emits) are replayed
//     through four context configurations — baseline (pre-incremental),
//     cold (network reuse only), warm (basis reuse), warm+early
//     (sensitivity memo). Per-solve ns and the warm/early hit counts
//     come from here.
//
//  2. Engine level: a contest suite is filled, sizer warm+early ON vs
//     OFF, single-threaded, and the sizing-stage thread-seconds are
//     compared. This is the end-to-end "dominant stage" speedup.
//
// The harness interleaves configurations within each rep so load spikes
// land on every config evenly, and discards shared warmup rounds. The
// bench exits nonzero when any config diverges or when no warm start
// fired (the CI perf-smoke gate). Results go to BENCH_mcf.json.
//
// Usage: bench_mcf [suite] [reps] [--reps N] [--warmup N] [--out F]
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "common/logging.hpp"
#include "common/prof.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "contest/benchmark_generator.hpp"
#include "fill/fill_engine.hpp"
#include "mcf/dual_lp.hpp"

using namespace ofl;
using namespace ofl::mcf;

namespace {

// Fill-sizing-shaped differential LP: n fills in a row, each with lo/hi
// edge variables, min-width constraints and spacing constraints to the
// next fill — the structure FillSizer emits.
DifferentialLp sizingShapedLp(int fills, std::uint64_t seed) {
  Rng rng(seed);
  DifferentialLp lp;
  Value cursor = 0;
  for (int f = 0; f < fills; ++f) {
    const Value width = rng.uniformInt(40, 120);
    const Value height = rng.uniformInt(40, 120);
    const Value shrink = 25;
    const int lo = lp.addVariable(-height, cursor, cursor + shrink);
    const int hi =
        lp.addVariable(height, cursor + width - shrink, cursor + width);
    lp.addConstraint(hi, lo, 10);
    if (f > 0) lp.addConstraint(lo, hi - 3, 10);  // spacing to previous hi
    cursor += width + rng.uniformInt(5, 30);
  }
  return lp;
}

// Same topology, costs nudged — a "round 2" solve. Every third sequence
// keeps its costs, which is what lets the early-exit memo fire.
DifferentialLp perturbCosts(const DifferentialLp& base, std::uint64_t seed,
                            bool keepCosts) {
  Rng rng(seed);
  DifferentialLp lp;
  for (int v = 0; v < base.numVariables(); ++v) {
    const Value dc = keepCosts ? 0 : rng.uniformInt(-15, 15);
    lp.addVariable(base.cost(v) + dc, base.lower(v), base.upper(v));
  }
  for (const DiffConstraint& c : base.constraints()) {
    lp.addConstraint(c.i, c.j, c.bound);
  }
  return lp;
}

struct SolverRun {
  double seconds = 0.0;
  long long solves = 0;
  long long warmStarts = 0;
  long long earlyExits = 0;
  std::uint64_t xHash = 0;  // FNV over every solve's x, in order
};

// Replays every sequence (4 solves each) through fresh contexts with the
// given options; one context per sequence, exactly like the sizer's
// per-(layer,direction) contexts.
SolverRun replay(const std::vector<std::vector<DifferentialLp>>& sequences,
                 bool warm, bool early, bool fullRefresh = false) {
  SolverRun run;
  std::uint64_t h = 1469598103934665603ull;
  Timer t;
  for (const auto& seq : sequences) {
    DualMcfContext context(DualMcfContext::Options{
        McfBackend::kNetworkSimplex, warm, early, 0, fullRefresh});
    for (const DifferentialLp& lp : seq) {
      const DiffLpResult r = context.solve(lp);
      ++run.solves;
      if (r.usedWarmStart) ++run.warmStarts;
      if (r.usedEarlyExit) ++run.earlyExits;
      for (const Value v : r.x) {
        h ^= static_cast<std::uint64_t>(v);
        h *= 1099511628211ull;
      }
    }
  }
  run.seconds = t.elapsedSeconds();
  run.xHash = h;
  return run;
}

// Engine-level sizing A/B on one suite, single-threaded.
struct EngineRun {
  double sizingSeconds = 0.0;
  double wall = 0.0;
  long long solves = 0;
  long long warmStarts = 0;
  long long earlyExits = 0;
  std::size_t fills = 0;
  std::uint64_t hash = 0;
};

std::uint64_t fillHash(const layout::Layout& chip) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](geom::Coord v) {
    h ^= static_cast<std::uint64_t>(v);
    h *= 1099511628211ull;
  };
  for (int l = 0; l < chip.numLayers(); ++l) {
    for (const geom::Rect& f : chip.layer(l).fills) {
      mix(f.xl);
      mix(f.yl);
      mix(f.xh);
      mix(f.yh);
    }
  }
  return h;
}

EngineRun engineOnce(const layout::Layout& original,
                     const contest::BenchmarkSpec& spec, bool warm,
                     bool fullRefresh) {
  layout::Layout chip = original;
  fill::FillEngineOptions o;
  o.windowSize = spec.windowSize;
  o.rules = spec.rules;
  o.numThreads = 1;
  o.sizer.mcfWarmStart = warm;
  o.sizer.mcfEarlyExit = warm;
  o.sizer.mcfFullRefresh = fullRefresh;
  prof::Registry::instance().reset();
  EngineRun run;
  Timer t;
  const fill::FillReport report = fill::FillEngine(o).run(chip);
  run.wall = t.elapsedSeconds();
  run.sizingSeconds = report.profile.stage(prof::Stage::kSizing).seconds();
  run.solves = report.sizerStats.solves;
  run.warmStarts = report.sizerStats.warmStarts;
  run.earlyExits = report.sizerStats.earlyExits;
  run.fills = report.fillCount;
  run.hash = fillHash(chip);
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  setLogLevel(LogLevel::kWarn);
  using namespace ofl::bench;
  const BenchArgs args = BenchArgs::parse(argc, argv, "s", 3);

  // --- Solver-level replay ---
  const int kSequences = 400;
  const int kFills = 24;
  std::vector<std::vector<DifferentialLp>> sequences;
  sequences.reserve(kSequences);
  for (int s = 0; s < kSequences; ++s) {
    const auto seed = static_cast<std::uint64_t>(s) * 7919 + 11;
    const bool repeatCosts = (s % 3 == 0);
    const DifferentialLp h1 = sizingShapedLp(kFills, seed);
    const DifferentialLp v1 = sizingShapedLp(kFills, seed + 1);
    // H2/V2 repeat the round-1 topology with nudged (or repeated) costs.
    std::vector<DifferentialLp> seq;
    seq.push_back(h1);
    seq.push_back(perturbCosts(h1, seed + 2, repeatCosts));
    seq.push_back(v1);
    seq.push_back(perturbCosts(v1, seed + 3, repeatCosts));
    sequences.push_back(std::move(seq));
  }

  Harness h(args.harnessOptions("mcf"));
  const contest::BenchmarkSpec spec =
      contest::BenchmarkGenerator::spec(args.suite);
  h.param("suite", spec.name);
  h.param("sequences", static_cast<std::int64_t>(kSequences));
  h.param("fills_per_lp", static_cast<std::int64_t>(kFills));

  // "baseline" is the pre-incremental solver: cold starts plus a full
  // tree rebuild after every pivot. "cold" isolates the always-on solver
  // improvements; "warm"/"warm+early" add the optional reuse layers.
  struct SolverSlot {
    const char* config;
    bool warm, early, fullRefresh;
    Series* seconds;
    SolverRun last;
    std::uint64_t refHash = 0;
    bool haveRef = false;
    bool identical = true;
  };
  std::vector<SolverSlot> solver = {
      {"baseline", false, false, true, nullptr, {}},
      {"cold", false, false, false, nullptr, {}},
      {"warm", true, false, false, nullptr, {}},
      {"warm_early", true, true, false, nullptr, {}},
  };
  for (SolverSlot& s : solver) {
    s.seconds = &h.series(std::string("solver_") + s.config + "_s", "s");
  }
  std::vector<std::function<void()>> solverBodies;
  solverBodies.reserve(solver.size());
  for (SolverSlot& s : solver) {
    solverBodies.push_back([&s, &sequences] {
      const SolverRun r = replay(sequences, s.warm, s.early, s.fullRefresh);
      if (!s.haveRef) {
        s.refHash = r.xHash;
        s.haveRef = true;
      } else if (r.xHash != s.refHash) {
        s.identical = false;
      }
      s.seconds->record(r.seconds);
      s.last = r;
    });
  }
  h.runInterleaved(solverBodies);

  bool solverIdentical = true;
  for (const SolverSlot& s : solver) {
    if (!s.identical || s.last.xHash != solver.front().last.xHash) {
      solverIdentical = false;
    }
  }

  std::printf("== MCF replay: %d sequences x 4 solves, %d fills each, "
              "%d reps + %d warmup ==\n",
              kSequences, kFills, args.reps, args.warmup);
  for (const SolverSlot& s : solver) {
    const SolverRun& r = s.last;
    const double ns =
        r.solves > 0 ? r.seconds * 1e9 / static_cast<double>(r.solves) : 0.0;
    std::printf("  %-10s %8.3f ms  %6lld solves  %5lld warm  %5lld early  "
                "%7.0f ns/solve\n",
                s.config, r.seconds * 1e3, r.solves, r.warmStarts,
                r.earlyExits, ns);
  }
  std::printf("  solutions %s\n",
              solverIdentical ? "BYTE-IDENTICAL" : "DIVERGED (BUG!)");

  h.recordRatio("solver_warm_speedup", *solver[0].seconds,
                *solver[2].seconds);
  h.recordRatio("solver_warm_early_speedup", *solver[0].seconds,
                *solver[3].seconds);
  h.param("solver_warm_starts",
          static_cast<std::int64_t>(solver[2].last.warmStarts));
  h.param("solver_early_exits",
          static_cast<std::int64_t>(solver[3].last.earlyExits));

  // --- Engine-level sizing A/B ---
  const layout::Layout original = contest::BenchmarkGenerator::generate(spec);
  struct EngineSlot {
    const char* config;
    bool warm, fullRefresh;
    Series* sizing;
    Series* wall;
    EngineRun last;
    std::uint64_t refHash = 0;
    std::size_t refFills = 0;
    bool haveRef = false;
    bool identical = true;
  };
  std::vector<EngineSlot> engine = {
      {"baseline", false, true, nullptr, nullptr, {}},
      {"cold", false, false, nullptr, nullptr, {}},
      {"warm", true, false, nullptr, nullptr, {}},
  };
  for (EngineSlot& e : engine) {
    e.sizing = &h.series(std::string("engine_sizing_") + e.config + "_s", "s");
    e.wall = &h.series(std::string("engine_wall_") + e.config + "_s", "s");
  }
  std::vector<std::function<void()>> engineBodies;
  engineBodies.reserve(engine.size());
  for (EngineSlot& e : engine) {
    engineBodies.push_back([&e, &original, &spec] {
      const EngineRun r = engineOnce(original, spec, e.warm, e.fullRefresh);
      if (!e.haveRef) {
        e.refHash = r.hash;
        e.refFills = r.fills;
        e.haveRef = true;
      } else if (r.hash != e.refHash || r.fills != e.refFills) {
        e.identical = false;
      }
      e.sizing->record(r.sizingSeconds);
      e.wall->record(r.wall);
      e.last = r;
    });
  }
  prof::Registry::instance().setEnabled(true);
  h.runInterleaved(engineBodies);
  prof::Registry::instance().setEnabled(false);

  bool engineIdentical = true;
  for (const EngineSlot& e : engine) {
    if (!e.identical || e.last.hash != engine.front().last.hash ||
        e.last.fills != engine.front().last.fills) {
      engineIdentical = false;
    }
  }
  const EngineRun& engBase = engine[0].last;
  const EngineRun& engCold = engine[1].last;
  const EngineRun& engWarm = engine[2].last;
  const double warmHitRate =
      engWarm.solves > 0 ? static_cast<double>(engWarm.warmStarts) /
                               static_cast<double>(engWarm.solves)
                         : 0.0;
  std::printf("\n== Engine sizing A/B: suite %s, %zu wires, 1 thread ==\n",
              spec.name.c_str(), original.wireCount());
  std::printf("  baseline    sizing %.3fs (%lld solves; pre-PR solver)\n",
              engBase.sizingSeconds, engBase.solves);
  std::printf("  cold-sizer  sizing %.3fs (%lld solves)\n",
              engCold.sizingSeconds, engCold.solves);
  std::printf("  warm-sizer  sizing %.3fs (%lld solves, %lld warm [%.0f%%], "
              "%lld early exits)\n",
              engWarm.sizingSeconds, engWarm.solves, engWarm.warmStarts,
              warmHitRate * 100.0, engWarm.earlyExits);
  std::printf("  fills %s\n",
              engineIdentical ? "BYTE-IDENTICAL" : "DIVERGED (BUG!)");

  h.recordRatio("sizing_speedup_vs_baseline", *engine[0].sizing,
                *engine[2].sizing);
  h.recordRatio("sizing_speedup_vs_cold", *engine[1].sizing,
                *engine[2].sizing);
  h.series("warm_start_hit_rate", "ratio", Direction::kHigherIsBetter,
           Scale::kRatio)
      .record(warmHitRate);
  h.param("fill_count", static_cast<std::int64_t>(engWarm.fills));
  h.param("engine_solves", static_cast<std::int64_t>(engWarm.solves));

  h.check("solver_identical", solverIdentical);
  h.check("engine_identical", engineIdentical);
  h.check("warm_start_fired",
          solver[2].last.warmStarts > 0 && engWarm.warmStarts > 0);
  return h.finish();
}
