// Observability overhead study: one contest benchmark, single-threaded,
// run with collection off and on (interleaved inside every harness rep).
// The contract under test:
//
//   1. Fills are BIT-IDENTICAL in every configuration (observability can
//      never perturb the product), and
//   2. disabled probes cost <= 2% of engine wall time.
//
// Wall-clock deltas between two runs of the *same* disabled binary are
// dominated by machine noise (several percent on shared CI runners), so
// the disabled-probe budget is checked directly instead: a microbenchmark
// times the disabled ScopedSpan/metricsEnabled probe (one relaxed atomic
// load each), and the per-run cost is bounded as
//   probes-per-run (counted from the enabled run's trace) x ns-per-probe
// against the disabled engine wall time. The enabled-vs-disabled wall
// ratio is reported as well (informational -- tracing pays for real
// buffer appends).
//
// Results go to BENCH_obs.json; exits nonzero on fill divergence or a
// busted probe budget.
//
// Usage: bench_obs [suite] [reps] [--reps N] [--warmup N] [--out F]
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "common/logging.hpp"
#include "common/timer.hpp"
#include "contest/benchmark_generator.hpp"
#include "fill/fill_engine.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

using namespace ofl;

namespace {

// Order-sensitive fingerprint of the fill solution (same scheme as
// bench_hotpath): identical hashes mean bit-identical fill lists.
std::uint64_t fillHash(const layout::Layout& chip) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a over fill coords
  auto mix = [&h](geom::Coord v) {
    h ^= static_cast<std::uint64_t>(v);
    h *= 1099511628211ull;
  };
  for (int l = 0; l < chip.numLayers(); ++l) {
    for (const geom::Rect& f : chip.layer(l).fills) {
      mix(f.xl);
      mix(f.yl);
      mix(f.xh);
      mix(f.yh);
    }
  }
  return h;
}

struct Sample {
  double wall = 0.0;
  std::size_t fills = 0;
  std::uint64_t hash = 0;
};

Sample runOnce(const layout::Layout& original,
               const contest::BenchmarkSpec& spec, bool collect) {
  obs::Tracer::instance().clear();
  obs::Tracer::instance().setEnabled(collect);
  obs::MetricsRegistry::instance().reset();
  obs::MetricsRegistry::instance().setEnabled(collect);

  layout::Layout chip = original;
  fill::FillEngineOptions o;
  o.windowSize = spec.windowSize;
  o.rules = spec.rules;
  o.numThreads = 1;

  Sample s;
  Timer t;
  const fill::FillReport report = fill::FillEngine(o).run(chip);
  s.wall = t.elapsedSeconds();
  s.fills = report.fillCount;
  s.hash = fillHash(chip);

  obs::Tracer::instance().setEnabled(false);
  obs::MetricsRegistry::instance().setEnabled(false);
  return s;
}

// Nanoseconds per disabled probe pair (one ScopedSpan + one
// metricsEnabled() check -- the shape of every gated site). The volatile
// sink stops the optimizer from hoisting the enabled_ load out of the
// loop entirely.
double disabledProbeNanos() {
  obs::Tracer::instance().setEnabled(false);
  obs::MetricsRegistry::instance().setEnabled(false);
  constexpr int kIters = 5'000'000;
  volatile bool sink = false;
  Timer t;
  for (int i = 0; i < kIters; ++i) {
    obs::ScopedSpan span("bench.noop", "bench");
    sink = sink || obs::metricsEnabled();
  }
  return t.elapsedSeconds() * 1e9 / kIters;
}

}  // namespace

int main(int argc, char** argv) {
  setLogLevel(LogLevel::kWarn);
  using namespace ofl::bench;
  const BenchArgs args = BenchArgs::parse(argc, argv, "s", 3);
  const contest::BenchmarkSpec spec =
      contest::BenchmarkGenerator::spec(args.suite);
  const layout::Layout original = contest::BenchmarkGenerator::generate(spec);
  std::printf("== Observability overhead: suite %s, %zu wires, 1 thread, "
              "%d reps + %d warmup ==\n",
              spec.name.c_str(), original.wireCount(), args.reps,
              args.warmup);

  Harness h(args.harnessOptions("obs"));
  h.param("suite", spec.name);
  h.param("threads", static_cast<std::int64_t>(1));

  Series& wallOff = h.series("wall_disabled_s", "s");
  Series& wallOn = h.series("wall_enabled_s", "s");
  Series& probeNs = h.series("disabled_probe_ns", "ns");

  std::uint64_t hash = 0;
  std::size_t fills = 0;
  std::size_t tracedEvents = 0;
  bool haveRef = false;
  bool identical = true;
  const auto note = [&](const Sample& s) {
    if (!haveRef) {
      hash = s.hash;
      fills = s.fills;
      haveRef = true;
    } else if (s.hash != hash || s.fills != fills) {
      identical = false;
    }
  };
  h.runInterleaved({
      [&] {
        const Sample a = runOnce(original, spec, /*collect=*/false);
        note(a);
        wallOff.record(a.wall);
      },
      [&] {
        const Sample b = runOnce(original, spec, /*collect=*/true);
        note(b);
        tracedEvents = obs::Tracer::instance().eventCount();
        wallOn.record(b.wall);
      },
      [&] { probeNs.record(disabledProbeNanos()); },
  });

  const SeriesStats offStats = computeStats(wallOff.samples());
  const SeriesStats onStats = computeStats(wallOn.samples());
  const SeriesStats probeStats = computeStats(probeNs.samples());
  const double enabledOverhead =
      onStats.mean / std::max(offStats.mean, 1e-9) - 1.0;

  // Disabled-probe budget: every span recorded by the enabled run is one
  // probe site the disabled run also crossed (x2 for the metrics gates
  // that accompany most spans, conservatively).
  const double probeSeconds =
      static_cast<double>(tracedEvents) * 2.0 * probeStats.mean * 1e-9;
  const double disabledOverhead = probeSeconds / std::max(offStats.mean, 1e-9);

  std::printf("disabled: %.4fs, enabled: %.4fs (%zu trace events), "
              "enabled overhead %.2f%% (informational)\n",
              offStats.mean, onStats.mean, tracedEvents,
              100.0 * enabledOverhead);
  std::printf("disabled probe: %.2f ns x %zu sites x2 = %.2f us/run = "
              "%.5f%% of wall (budget 2%%); output %s\n",
              probeStats.mean, tracedEvents, probeSeconds * 1e6,
              100.0 * disabledOverhead,
              identical ? "BIT-IDENTICAL" : "DIVERGED (BUG!)");

  h.series("disabled_overhead_pct", "%", Direction::kLowerIsBetter,
           Scale::kRatio)
      .record(100.0 * disabledOverhead);
  h.series("enabled_overhead_pct", "%", Direction::kLowerIsBetter,
           Scale::kRatio)
      .record(100.0 * enabledOverhead);
  h.param("trace_events", static_cast<std::int64_t>(tracedEvents));
  h.param("fill_count", static_cast<std::int64_t>(fills));

  h.check("identical", identical);
  h.check("disabled_probe_budget", disabledOverhead <= 0.02);
  return h.finish();
}
