// Batch service throughput — replays one workload (16 jobs over 4 distinct
// layouts, so each unique solution is requested 4 times) through the
// FillService at several --jobs / cache settings:
//
//   * cache off vs on at one worker isolates the result-cache win
//     (repeated inputs replay captured fills instead of re-running the
//     engine);
//   * 1 -> 2 -> 4 workers shows scheduler scaling (bounded by hardware
//     cores — on a 1-core container the jobs/s stays flat and that is the
//     expected reading, not a regression);
//   * a submission-order fill hash is asserted identical across every
//     configuration: concurrency and caching must never change the bytes.
//
// Results go to BENCH_service.json so later PRs can track the batch
// throughput trajectory machine-readably.
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/hash.hpp"
#include "common/logging.hpp"
#include "common/thread_pool.hpp"
#include "contest/benchmark_generator.hpp"
#include "service/fill_service.hpp"
#include "service/manifest.hpp"

using namespace ofl;

namespace {

constexpr int kUniqueLayouts = 4;
constexpr int kJobs = 16;

// Order-sensitive fingerprint over every job's fills, in submission order.
std::uint64_t workloadHash(const std::vector<service::JobResult>& results) {
  Fnv1a64 h;
  for (const service::JobResult& r : results) {
    if (r.layout == nullptr) continue;
    for (int l = 0; l < r.layout->numLayers(); ++l) {
      for (const geom::Rect& f : r.layout->layer(l).fills) {
        h.i64(f.xl);
        h.i64(f.yl);
        h.i64(f.xh);
        h.i64(f.yh);
      }
    }
  }
  return h.digest();
}

}  // namespace

int main() {
  setLogLevel(LogLevel::kWarn);

  std::vector<std::shared_ptr<const layout::Layout>> inputs;
  for (int i = 0; i < kUniqueLayouts; ++i) {
    contest::BenchmarkSpec spec = contest::BenchmarkGenerator::spec("s");
    spec.seed = 9000 + static_cast<std::uint64_t>(i);
    inputs.push_back(std::make_shared<layout::Layout>(
        contest::BenchmarkGenerator::generate(spec)));
  }
  const fill::FillEngineOptions engine = service::defaultEngineOptions();

  std::printf("== Batch service throughput (%d jobs, %d unique layouts, "
              "%d hardware cores) ==\n",
              kJobs, kUniqueLayouts, ThreadPool::hardwareThreads());
  std::printf("%6s %8s %9s | %8s %8s %9s | %18s\n", "jobs", "thr/job",
              "cache", "wall[s]", "jobs/s", "hit-rate", "hash");

  struct Config {
    int jobs;
    int threadsPerJob;
    std::size_t cacheMb;
  };
  const std::vector<Config> configs = {
      {1, 1, 0}, {1, 1, 64}, {2, 1, 64}, {4, 1, 64}, {2, 2, 64}};

  struct Row {
    Config config;
    service::ServiceStats stats;
    std::uint64_t hash;
  };
  std::vector<Row> rows;
  for (const Config& config : configs) {
    service::ServiceOptions so;
    so.maxConcurrentJobs = config.jobs;
    so.threadsPerJob = config.threadsPerJob;
    so.cacheBytes = config.cacheMb << 20;
    service::FillService svc(so);
    for (int i = 0; i < kJobs; ++i) {
      service::JobSpec spec;
      spec.layout = inputs[static_cast<std::size_t>(i % kUniqueLayouts)];
      spec.engine = engine;
      spec.keepLayout = true;
      svc.submit(spec);
    }
    const std::vector<service::JobResult> results = svc.waitAll();
    bool allOk = results.size() == kJobs;
    for (const service::JobResult& r : results) {
      allOk = allOk && r.status == service::JobStatus::kSucceeded;
    }
    if (!allOk) {
      std::fprintf(stderr, "FAILED: not every job succeeded\n");
      return 1;
    }
    rows.push_back({config, svc.stats(), workloadHash(results)});
    const Row& r = rows.back();
    std::printf("%6d %8d %8zuM | %8.2f %8.2f %8.0f%% | %18llx\n", config.jobs,
                svc.threadsPerJob(), config.cacheMb, r.stats.wallSeconds,
                r.stats.jobsPerSecond, r.stats.cacheHitRate * 100.0,
                static_cast<unsigned long long>(r.hash));
  }

  bool identical = true;
  for (const Row& r : rows) identical = identical && r.hash == rows.front().hash;
  const Row* cold = &rows[0];   // one worker, cache off
  const Row* warm = &rows[1];   // one worker, cache on
  std::printf("\nCache win at one worker: %.2fx; output %s across every "
              "jobs/threads/cache configuration.\n",
              cold->stats.wallSeconds /
                  std::max(warm->stats.wallSeconds, 1e-9),
              identical ? "BIT-IDENTICAL" : "DIVERGED (BUG!)");

  std::FILE* json = std::fopen("BENCH_service.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"benchmark\": \"batch_fill_service\",\n"
                 "  \"jobs_submitted\": %d,\n  \"unique_layouts\": %d,\n"
                 "  \"hardware_threads\": %d,\n  \"deterministic\": %s,\n"
                 "  \"runs\": [\n",
                 kJobs, kUniqueLayouts, ThreadPool::hardwareThreads(),
                 identical ? "true" : "false");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(json,
                   "    {\"jobs\": %d, \"threads_per_job\": %d, "
                   "\"cache_mb\": %zu, \"fill_hash\": \"%llx\",\n"
                   "     \"stats\": %s}%s\n",
                   r.config.jobs, r.config.threadsPerJob, r.config.cacheMb,
                   static_cast<unsigned long long>(r.hash),
                   service::toJson(r.stats).c_str(),
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("wrote BENCH_service.json\n");
  }
  return identical ? 0 : 1;
}
