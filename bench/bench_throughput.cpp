// Batch service throughput — replays one workload (16 jobs over 4 distinct
// layouts, so each unique solution is requested 4 times) through the
// FillService at several --jobs / cache settings:
//
//   * cache off vs on at one worker isolates the result-cache win
//     (repeated inputs replay captured fills instead of re-running the
//     engine);
//   * 1 -> 2 -> 4 workers shows scheduler scaling (bounded by hardware
//     cores — on a 1-core container the jobs/s stays flat and that is the
//     expected reading, not a regression);
//   * a submission-order fill hash is asserted identical across every
//     configuration: concurrency and caching must never change the bytes.
//
// Results go to BENCH_service.json (harness schema) so later PRs can
// track the batch throughput trajectory machine-readably.
//
// Usage: bench_throughput [reps] [--reps N] [--warmup N] [--out F]
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "common/hash.hpp"
#include "common/logging.hpp"
#include "common/thread_pool.hpp"
#include "contest/benchmark_generator.hpp"
#include "service/fill_service.hpp"
#include "service/manifest.hpp"

using namespace ofl;

namespace {

constexpr int kUniqueLayouts = 4;
constexpr int kJobs = 16;

// Order-sensitive fingerprint over every job's fills, in submission order.
std::uint64_t workloadHash(const std::vector<service::JobResult>& results) {
  Fnv1a64 h;
  for (const service::JobResult& r : results) {
    if (r.layout == nullptr) continue;
    for (int l = 0; l < r.layout->numLayers(); ++l) {
      for (const geom::Rect& f : r.layout->layer(l).fills) {
        h.i64(f.xl);
        h.i64(f.yl);
        h.i64(f.xh);
        h.i64(f.yh);
      }
    }
  }
  return h.digest();
}

}  // namespace

int main(int argc, char** argv) {
  setLogLevel(LogLevel::kWarn);
  using namespace ofl::bench;
  BenchArgs args = BenchArgs::parse(argc, argv, "", /*reps=*/1,
                                    /*warmup=*/0);
  // Legacy `bench_throughput 3` form: bare number = rep count.
  if (!args.suite.empty() &&
      args.suite.find_first_not_of("0123456789") == std::string::npos) {
    args.reps = std::max(1, std::atoi(args.suite.c_str()));
    args.suite = "";
  }

  std::vector<std::shared_ptr<const layout::Layout>> inputs;
  for (int i = 0; i < kUniqueLayouts; ++i) {
    contest::BenchmarkSpec spec = contest::BenchmarkGenerator::spec("s");
    spec.seed = 9000 + static_cast<std::uint64_t>(i);
    inputs.push_back(std::make_shared<layout::Layout>(
        contest::BenchmarkGenerator::generate(spec)));
  }
  const fill::FillEngineOptions engine = service::defaultEngineOptions();

  std::printf("== Batch service throughput (%d jobs, %d unique layouts, "
              "%d hardware cores) ==\n",
              kJobs, kUniqueLayouts, ThreadPool::hardwareThreads());
  std::printf("%6s %8s %9s | %8s %8s %9s | %18s\n", "jobs", "thr/job",
              "cache", "wall[s]", "jobs/s", "hit-rate", "hash");

  struct Config {
    const char* tag;
    int jobs;
    int threadsPerJob;
    std::size_t cacheMb;
  };
  const std::vector<Config> configs = {{"j1_nocache", 1, 1, 0},
                                       {"j1_cache", 1, 1, 64},
                                       {"j2_cache", 2, 1, 64},
                                       {"j4_cache", 4, 1, 64},
                                       {"j2_t2_cache", 2, 2, 64}};

  Harness h(args.harnessOptions("service"));
  h.param("jobs_submitted", static_cast<std::int64_t>(kJobs));
  h.param("unique_layouts", static_cast<std::int64_t>(kUniqueLayouts));
  h.param("hardware_threads",
          static_cast<std::int64_t>(ThreadPool::hardwareThreads()));

  std::uint64_t refHash = 0;
  bool haveRef = false;
  bool identical = true;
  bool allSucceeded = true;
  double lastHitRate = 0.0;

  std::vector<std::function<void()>> bodies;
  bodies.reserve(configs.size());
  for (const Config& config : configs) {
    Series& wall = h.series(std::string("wall_") + config.tag + "_s", "s");
    Series& rate = h.series(std::string("jobs_per_s_") + config.tag, "1/s",
                            Direction::kHigherIsBetter, Scale::kWallClock);
    bodies.push_back([&, config, wall = &wall, rate = &rate] {
      service::ServiceOptions so;
      so.maxConcurrentJobs = config.jobs;
      so.threadsPerJob = config.threadsPerJob;
      so.cacheBytes = config.cacheMb << 20;
      service::FillService svc(so);
      for (int i = 0; i < kJobs; ++i) {
        service::JobSpec spec;
        spec.layout = inputs[static_cast<std::size_t>(i % kUniqueLayouts)];
        spec.engine = engine;
        spec.keepLayout = true;
        svc.submit(spec);
      }
      const std::vector<service::JobResult> results = svc.waitAll();
      bool ok = results.size() == kJobs;
      for (const service::JobResult& r : results) {
        ok = ok && r.status == service::JobStatus::kSucceeded;
      }
      if (!ok) {
        allSucceeded = false;
        return;
      }
      const service::ServiceStats stats = svc.stats();
      const std::uint64_t hash = workloadHash(results);
      if (!haveRef) {
        refHash = hash;
        haveRef = true;
      } else if (hash != refHash) {
        identical = false;
      }
      wall->record(stats.wallSeconds);
      rate->record(stats.jobsPerSecond);
      if (config.cacheMb > 0 && config.jobs == 1) {
        lastHitRate = stats.cacheHitRate;
      }
      std::printf("%6d %8d %8zuM | %8.2f %8.2f %8.0f%% | %18llx\n",
                  config.jobs, svc.threadsPerJob(), config.cacheMb,
                  stats.wallSeconds, stats.jobsPerSecond,
                  stats.cacheHitRate * 100.0,
                  static_cast<unsigned long long>(hash));
    });
  }
  h.runInterleaved(bodies);

  Series& cacheWin =
      h.recordRatio("cache_win", h.series("wall_j1_nocache_s", "s"),
                    h.series("wall_j1_cache_s", "s"));
  h.series("cache_hit_rate", "ratio", Direction::kHigherIsBetter,
           Scale::kRatio)
      .record(lastHitRate);
  const SeriesStats win = computeStats(cacheWin.samples());
  std::printf("\nCache win at one worker: %.2fx; output %s across every "
              "jobs/threads/cache configuration.\n",
              win.mean, identical ? "BIT-IDENTICAL" : "DIVERGED (BUG!)");

  h.check("all_jobs_succeeded", allSucceeded);
  h.check("deterministic", identical);
  return h.finish();
}
