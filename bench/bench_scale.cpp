// Contest-scale streaming benchmark (ISSUE 9 tentpole).
//
// Generates a suite streamingly (default "xl", millions of wires — never
// materialized in memory), runs the bounded-memory sharded fill
// (fill::ShardedEngine) under a fixed --mem-budget, and records wall
// time, peak RSS, shard/spill figures to BENCH_scale.json.
//
// The memory budget is a HARD assertion: the process exits nonzero when
// peak RSS exceeds it, so CI catches a regression that quietly
// re-materializes the layout.
//
// Usage: bench_scale [suite] [mem_budget_mib] [threads]
//   suite           s|b|m|xl (default xl)
//   mem_budget_mib  RSS ceiling, default 512
//   threads         engine threads, default 0 (= hardware)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/logging.hpp"
#include "common/memory_usage.hpp"
#include "common/timer.hpp"
#include "contest/benchmark_generator.hpp"
#include "fill/sharded_engine.hpp"
#include "gds/stream_writer.hpp"

using namespace ofl;

int main(int argc, char** argv) {
  setLogLevel(LogLevel::kWarn);
  const std::string suite = argc > 1 ? argv[1] : "xl";
  const std::size_t budgetMiB =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 512;
  const int threads = argc > 3 ? std::atoi(argv[3]) : 0;

  const contest::BenchmarkSpec spec = contest::BenchmarkGenerator::spec(suite);
  const std::string inputPath = "bench_scale_" + suite + ".gds";
  const std::string outputPath = "bench_scale_" + suite + "_filled.gds";

  std::printf("== Contest-scale streaming fill: suite %s, budget %zu MiB ==\n",
              spec.name.c_str(), budgetMiB);

  // Streamed generation: O(1) memory regardless of suite size.
  Timer genTimer;
  std::size_t wires = 0;
  long long inputBytes = -1;
  {
    gds::StreamWriter writer(inputPath);
    if (!writer.ok()) {
      std::fprintf(stderr, "bench_scale: cannot write %s\n",
                   inputPath.c_str());
      return 1;
    }
    writer.beginCell("TOP");
    contest::BenchmarkGenerator::generateStream(
        spec, [&](int l, const geom::Rect& wire) {
          writer.addRect(static_cast<std::int16_t>(l + 1), wire);
          ++wires;
        });
    writer.endCell();
    inputBytes = writer.finish();
  }
  if (inputBytes < 0) {
    std::fprintf(stderr, "bench_scale: write failed: %s\n", inputPath.c_str());
    return 1;
  }
  const double genSeconds = genTimer.elapsedSeconds();
  std::printf("generated %zu wires (%lld bytes) in %.2fs, RSS %.0f MiB\n",
              wires, inputBytes, genSeconds, peakMemoryMiB());

  fill::ShardedOptions options;
  options.engine.windowSize = spec.windowSize;
  options.engine.rules = spec.rules;
  options.engine.numThreads = threads;
  options.memBudgetMiB = budgetMiB;

  Timer fillTimer;
  fill::ShardedReport report;
  std::string error;
  if (!fill::ShardedEngine(options).runFile(inputPath, outputPath,
                                            std::optional<geom::Rect>(spec.die),
                                            &report, &error)) {
    std::fprintf(stderr, "bench_scale: %s\n", error.c_str());
    return 1;
  }
  const double wallSeconds = fillTimer.elapsedSeconds();
  const double peakMiB = peakMemoryMiB();
  const bool budgetHeld = peakMiB <= static_cast<double>(budgetMiB);

  std::printf(
      "filled: %zu fills from %zu candidates in %.2fs\n"
      "  shards %d over %d rows (%d cols), ingest %.2fs, fft %.3fs\n"
      "  spilled %.1f MiB in %llu events, output %lld bytes\n"
      "  peak RSS %.0f MiB vs budget %zu MiB -> %s\n",
      report.fill.fillCount, report.fill.candidateCount, wallSeconds,
      report.shardCount, report.rows, report.cols, report.ingestSeconds,
      report.fftSeconds,
      static_cast<double>(report.spilledBytes) / (1 << 20),
      static_cast<unsigned long long>(report.spillEvents), report.outputBytes,
      peakMiB, budgetMiB, budgetHeld ? "OK" : "OVER BUDGET");

  std::FILE* json = std::fopen("BENCH_scale.json", "w");
  if (json != nullptr) {
    std::fprintf(
        json,
        "{\n  \"benchmark\": \"streaming_sharded_fill\",\n"
        "  \"suite\": \"%s\",\n  \"wires\": %zu,\n"
        "  \"input_bytes\": %lld,\n  \"output_bytes\": %lld,\n"
        "  \"fills\": %zu,\n  \"candidates\": %zu,\n"
        "  \"generate_seconds\": %.3f,\n  \"wall_seconds\": %.3f,\n"
        "  \"ingest_seconds\": %.3f,\n  \"fft_seconds\": %.4f,\n"
        "  \"threads\": %d,\n  \"cols\": %d,\n  \"rows\": %d,\n"
        "  \"shards\": %d,\n  \"spilled_bytes\": %llu,\n"
        "  \"spill_events\": %llu,\n  \"mem_budget_mib\": %zu,\n"
        "  \"peak_rss_mib\": %.1f,\n  \"budget_held\": %s\n}\n",
        spec.name.c_str(), wires, inputBytes, report.outputBytes,
        report.fill.fillCount, report.fill.candidateCount, genSeconds,
        wallSeconds, report.ingestSeconds, report.fftSeconds,
        report.fill.threadsUsed, report.cols, report.rows, report.shardCount,
        static_cast<unsigned long long>(report.spilledBytes),
        static_cast<unsigned long long>(report.spillEvents), budgetMiB,
        peakMiB, budgetHeld ? "true" : "false");
    std::fclose(json);
    std::printf("wrote BENCH_scale.json\n");
  }

  // The multi-hundred-MB artifacts have served their purpose.
  std::remove(inputPath.c_str());
  std::remove(outputPath.c_str());

  if (!budgetHeld) {
    std::fprintf(stderr,
                 "bench_scale: peak RSS %.0f MiB exceeded the %zu MiB "
                 "budget\n",
                 peakMiB, budgetMiB);
    return 1;
  }
  return 0;
}
