// Contest-scale streaming benchmark (ISSUE 9 tentpole).
//
// Generates a suite streamingly (default "xl", millions of wires — never
// materialized in memory), runs the bounded-memory sharded fill
// (fill::ShardedEngine) under a fixed --budget, and records wall time,
// peak RSS, shard/spill figures to BENCH_scale.json via the shared
// harness (default 1 rep + 0 warmup — the run is minutes long).
//
// The memory budget is a HARD assertion: the process exits nonzero when
// peak RSS exceeds it, so CI catches a regression that quietly
// re-materializes the layout.
//
// Usage: bench_scale [suite] [reps] [--budget MIB] [--threads N]
//        [--reps N] [--warmup N] [--out F]
//   suite    s|b|m|xl (default xl)
//   --budget RSS ceiling in MiB, default 512
//   --threads engine threads, default 0 (= hardware)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/harness.hpp"
#include "common/logging.hpp"
#include "common/memory_usage.hpp"
#include "common/timer.hpp"
#include "contest/benchmark_generator.hpp"
#include "fill/sharded_engine.hpp"
#include "gds/stream_writer.hpp"

using namespace ofl;

int main(int argc, char** argv) {
  setLogLevel(LogLevel::kWarn);
  using namespace ofl::bench;
  const BenchArgs args = BenchArgs::parse(argc, argv, "xl", /*reps=*/1,
                                          /*warmup=*/0);
  std::size_t budgetMiB = 512;
  int threads = 0;
  for (std::size_t i = 0; i + 1 < args.positional.size(); ++i) {
    if (args.positional[i] == "--budget") {
      budgetMiB = static_cast<std::size_t>(
          std::atoll(args.positional[i + 1].c_str()));
    } else if (args.positional[i] == "--threads") {
      threads = std::atoi(args.positional[i + 1].c_str());
    }
  }

  const contest::BenchmarkSpec spec =
      contest::BenchmarkGenerator::spec(args.suite);
  const std::string inputPath = "bench_scale_" + args.suite + ".gds";
  const std::string outputPath = "bench_scale_" + args.suite + "_filled.gds";

  std::printf("== Contest-scale streaming fill: suite %s, budget %zu MiB ==\n",
              spec.name.c_str(), budgetMiB);

  // Streamed generation: O(1) memory regardless of suite size.
  Timer genTimer;
  std::size_t wires = 0;
  long long inputBytes = -1;
  {
    gds::StreamWriter writer(inputPath);
    if (!writer.ok()) {
      std::fprintf(stderr, "bench_scale: cannot write %s\n",
                   inputPath.c_str());
      return 1;
    }
    writer.beginCell("TOP");
    contest::BenchmarkGenerator::generateStream(
        spec, [&](int l, const geom::Rect& wire) {
          writer.addRect(static_cast<std::int16_t>(l + 1), wire);
          ++wires;
        });
    writer.endCell();
    inputBytes = writer.finish();
  }
  if (inputBytes < 0) {
    std::fprintf(stderr, "bench_scale: write failed: %s\n", inputPath.c_str());
    return 1;
  }
  const double genSeconds = genTimer.elapsedSeconds();
  std::printf("generated %zu wires (%lld bytes) in %.2fs, RSS %.0f MiB\n",
              wires, inputBytes, genSeconds, peakMemoryMiB());

  fill::ShardedOptions options;
  options.engine.windowSize = spec.windowSize;
  options.engine.rules = spec.rules;
  options.engine.numThreads = threads;
  options.memBudgetMiB = budgetMiB;

  Harness h(args.harnessOptions("scale"));
  h.param("suite", spec.name);
  h.param("wires", static_cast<std::int64_t>(wires));
  h.param("input_bytes", static_cast<std::int64_t>(inputBytes));
  h.param("mem_budget_mib", static_cast<std::int64_t>(budgetMiB));

  Series& genS = h.series("generate_s", "s");
  genS.record(genSeconds);
  Series& wallS = h.series("wall_s", "s");
  Series& ingestS = h.series("ingest_s", "s");
  Series& fftS = h.series("fft_s", "s");

  fill::ShardedReport report;
  bool ranOk = true;
  bool budgetHeld = true;
  h.runInterleaved({[&] {
    Timer fillTimer;
    std::string error;
    if (!fill::ShardedEngine(options).runFile(
            inputPath, outputPath, std::optional<geom::Rect>(spec.die),
            &report, &error)) {
      std::fprintf(stderr, "bench_scale: %s\n", error.c_str());
      ranOk = false;
      return;
    }
    wallS.record(fillTimer.elapsedSeconds());
    ingestS.record(report.ingestSeconds);
    fftS.record(report.fftSeconds);
    const double peakMiB = peakMemoryMiB();
    if (peakMiB > static_cast<double>(budgetMiB)) budgetHeld = false;
  }});

  const double peakMiB = peakMemoryMiB();
  if (ranOk) {
    std::printf(
        "filled: %zu fills from %zu candidates\n"
        "  shards %d over %d rows (%d cols), ingest %.2fs, fft %.3fs\n"
        "  spilled %.1f MiB in %llu events, output %lld bytes\n"
        "  peak RSS %.0f MiB vs budget %zu MiB -> %s\n",
        report.fill.fillCount, report.fill.candidateCount, report.shardCount,
        report.rows, report.cols, report.ingestSeconds, report.fftSeconds,
        static_cast<double>(report.spilledBytes) / (1 << 20),
        static_cast<unsigned long long>(report.spillEvents),
        report.outputBytes, peakMiB, budgetMiB,
        budgetHeld ? "OK" : "OVER BUDGET");
    h.param("fills", static_cast<std::int64_t>(report.fill.fillCount));
    h.param("candidates",
            static_cast<std::int64_t>(report.fill.candidateCount));
    h.param("threads", static_cast<std::int64_t>(report.fill.threadsUsed));
    h.param("shards", static_cast<std::int64_t>(report.shardCount));
    h.param("spilled_bytes", static_cast<std::int64_t>(report.spilledBytes));
    h.param("output_bytes", static_cast<std::int64_t>(report.outputBytes));
  }

  // The multi-hundred-MB artifacts have served their purpose.
  std::remove(inputPath.c_str());
  std::remove(outputPath.c_str());

  h.check("fill_ok", ranOk);
  h.check("budget_held", budgetHeld);
  return h.finish();
}
