// Fill-daemon load bench: boots an in-process `openfill serve` core, runs
// a multi-client mixed fill+ECO workload against it over real loopback
// sockets, and reports throughput plus p50/p95/p99 request latency to
// BENCH_serve.json (harness schema). Two contracts are asserted, not just
// measured:
//
//   * every layout served over the wire is byte-identical to the direct
//     `openfill fill` run with the same options;
//   * after a daemon "kill" (drain) and restart over the same cache
//     directory, resubmitting the workload hits the persistent cache
//     (persistent hits > 0) and still returns identical bytes.
//
// Usage: bench_serve [reps] [--reps N] [--warmup N] [--out F]
//   (the mixed-load phase repeats per rep; contracts are checked once)
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.hpp"
#include "cli/args.hpp"
#include "cli/commands.hpp"
#include "common/logging.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "contest/benchmark_generator.hpp"
#include "gds/gds_writer.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

using namespace ofl;

namespace {

namespace fs = std::filesystem;

constexpr int kUniqueLayouts = 3;
constexpr int kClients = 4;
constexpr int kRequestsPerClient = 10;

std::string gDir;

std::string path(const std::string& name) {
  return (fs::path(gDir) / name).string();
}

std::string readFile(const std::string& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

serve::Request jobRequest(serve::Request::Type type, const std::string& spec,
                          const std::string& client) {
  serve::Request req;
  req.type = type;
  req.client = client;
  req.spec = spec;
  return req;
}

double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

struct ClientRun {
  std::vector<double> latenciesMs;
  int fills = 0;
  int ecos = 0;
  int failures = 0;
};

// One client's slice of the mixed workload: alternating fill and ECO
// requests, each over its own spec so outputs never collide.
ClientRun runClient(int clientIdx, int port) {
  ClientRun run;
  serve::Client client("127.0.0.1", port, 120.0);
  if (!client.connected()) {
    ++run.failures;
    return run;
  }
  const std::string name = "bench" + std::to_string(clientIdx);
  for (int i = 0; i < kRequestsPerClient; ++i) {
    const int layoutIdx = (clientIdx + i) % kUniqueLayouts;
    const bool eco = i % 2 == 1;
    const std::string out =
        path("mix_c" + std::to_string(clientIdx) + "_" + std::to_string(i) +
             ".gds");
    serve::Request req;
    if (eco) {
      req = jobRequest(serve::Request::Type::kEco,
                       path("filled" + std::to_string(layoutIdx) + ".gds") +
                           " --out " + out,
                       name);
      // Vary the changed region so ECO cache keys differ across requests.
      const geom::Coord lo = 200 * ((i + clientIdx) % 5);
      req.changed = geom::Rect{lo, lo, lo + 2400, lo + 2400};
      req.hasChanged = true;
    } else {
      req = jobRequest(serve::Request::Type::kFill,
                       path("wires" + std::to_string(layoutIdx) + ".gds") +
                           " --out " + out,
                       name);
    }
    Timer timer;
    const auto resp = client.call(req);
    const double ms = timer.elapsedSeconds() * 1e3;
    if (!resp.has_value()) {
      std::fprintf(stderr, "client %d: transport error: %s\n", clientIdx,
                   client.error().c_str());
      ++run.failures;
      // The connection is gone; reconnect for the remaining requests.
      client = serve::Client("127.0.0.1", port, 120.0);
      continue;
    }
    if (resp->rejected) {
      // Admission backoff: retry once after a beat; count as one request.
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      --i;
      continue;
    }
    if (!resp->ok) {
      std::fprintf(stderr, "client %d: %s\n", clientIdx, resp->error.c_str());
      ++run.failures;
      continue;
    }
    run.latenciesMs.push_back(ms);
    (eco ? run.ecos : run.fills) += 1;
  }
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  setLogLevel(LogLevel::kWarn);
  using namespace ofl::bench;
  BenchArgs args = BenchArgs::parse(argc, argv, "", /*reps=*/1,
                                    /*warmup=*/0);
  if (!args.suite.empty() &&
      args.suite.find_first_not_of("0123456789") == std::string::npos) {
    args.reps = std::max(1, std::atoi(args.suite.c_str()));
    args.suite = "";
  }
  gDir = (fs::temp_directory_path() / "ofl_bench_serve").string();
  fs::remove_all(gDir);
  fs::create_directories(gDir);

  // Inputs: a few distinct suite-s layouts written as GDS files.
  for (int i = 0; i < kUniqueLayouts; ++i) {
    contest::BenchmarkSpec spec = contest::BenchmarkGenerator::spec("s");
    spec.seed = 7000 + static_cast<std::uint64_t>(i);
    const layout::Layout chip = contest::BenchmarkGenerator::generate(spec);
    if (gds::Writer::writeFile(chip.toGds(),
                               path("wires" + std::to_string(i) + ".gds")) <
        0) {
      std::fprintf(stderr, "FAILED: cannot write input %d\n", i);
      return 1;
    }
  }

  serve::ServeConfig cfg;
  cfg.port = 0;
  cfg.jobs = 4;
  cfg.threadsPerJob = 1;
  cfg.cacheDir = path("cache");
  cfg.maxInflightPerClient = 4;
  serve::Server server(cfg);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "FAILED: %s\n", error.c_str());
    return 1;
  }
  std::printf("== Serve load bench: %d clients x %d requests, %d unique "
              "layouts, %d workers (%d hardware cores) ==\n",
              kClients, kRequestsPerClient, kUniqueLayouts, cfg.jobs,
              ThreadPool::hardwareThreads());

  // Warm-up / ECO seed: fill each unique layout through the daemon; these
  // outputs are the ECO phase's inputs AND the byte-identity specimens.
  {
    serve::Client client("127.0.0.1", server.port(), 120.0);
    for (int i = 0; i < kUniqueLayouts; ++i) {
      const auto resp = client.call(jobRequest(
          serve::Request::Type::kFill,
          path("wires" + std::to_string(i) + ".gds") + " --out " +
              path("filled" + std::to_string(i) + ".gds"),
          "seed"));
      if (!resp.has_value() || !resp->ok) {
        std::fprintf(stderr, "FAILED: seed fill %d\n", i);
        return 1;
      }
    }
  }

  Harness h(args.harnessOptions("serve"));
  h.param("clients", static_cast<std::int64_t>(kClients));
  h.param("requests_per_client", static_cast<std::int64_t>(kRequestsPerClient));
  h.param("unique_layouts", static_cast<std::int64_t>(kUniqueLayouts));
  h.param("workers", static_cast<std::int64_t>(cfg.jobs));
  h.param("hardware_threads",
          static_cast<std::int64_t>(ThreadPool::hardwareThreads()));

  Series& reqRate = h.series("requests_per_s", "1/s",
                             Direction::kHigherIsBetter, Scale::kWallClock);
  Series& p50s = h.series("latency_p50_ms", "ms");
  Series& p95s = h.series("latency_p95_ms", "ms");
  Series& p99s = h.series("latency_p99_ms", "ms");

  int failures = 0;
  std::size_t requestCount = 0;
  h.runInterleaved({[&] {
    // Mixed multi-client load.
    Timer wall;
    std::vector<ClientRun> runs(kClients);
    {
      std::vector<std::thread> threads;
      for (int c = 0; c < kClients; ++c) {
        threads.emplace_back([&runs, c, port = server.port()] {
          runs[c] = runClient(c, port);
        });
      }
      for (auto& t : threads) t.join();
    }
    const double wallSeconds = wall.elapsedSeconds();

    std::vector<double> latencies;
    int fills = 0, ecos = 0;
    for (const ClientRun& r : runs) {
      latencies.insert(latencies.end(), r.latenciesMs.begin(),
                       r.latenciesMs.end());
      fills += r.fills;
      ecos += r.ecos;
      failures += r.failures;
    }
    std::sort(latencies.begin(), latencies.end());
    const double p50 = percentile(latencies, 0.50);
    const double p95 = percentile(latencies, 0.95);
    const double p99 = percentile(latencies, 0.99);
    const double throughput =
        wallSeconds > 0 ? static_cast<double>(latencies.size()) / wallSeconds
                        : 0.0;
    requestCount = latencies.size();
    std::printf("mixed load: %zu requests (%d fill, %d eco, %d failures) in "
                "%.2fs = %.2f req/s\n",
                latencies.size(), fills, ecos, failures, wallSeconds,
                throughput);
    std::printf("latency ms: p50 %.1f  p95 %.1f  p99 %.1f\n", p50, p95, p99);
    reqRate.record(throughput);
    p50s.record(p50);
    p95s.record(p95);
    p99s.record(p99);
  }});

  // Byte-identity: served outputs vs the direct CLI path.
  bool identical = true;
  for (int i = 0; i < kUniqueLayouts; ++i) {
    const std::string direct = path("direct" + std::to_string(i) + ".gds");
    if (cli::run(cli::Args::parse(
            {"fill", "--in", path("wires" + std::to_string(i) + ".gds"),
             "--out", direct})) != 0) {
      identical = false;
      break;
    }
    identical = identical &&
                readFile(path("filled" + std::to_string(i) + ".gds")) ==
                    readFile(direct);
  }
  std::printf("served vs direct fill: %s\n",
              identical ? "BYTE-IDENTICAL" : "DIVERGED (BUG!)");

  // Kill + restart: a fresh daemon over the same cache directory must
  // serve the same specs from the persistent cache.
  server.drain();
  std::uint64_t persistentHits = 0;
  bool restartIdentical = true;
  bool restartOk = true;
  {
    serve::Server revived(cfg);
    if (!revived.start(&error)) {
      std::fprintf(stderr, "FAILED: restart: %s\n", error.c_str());
      return 1;
    }
    serve::Client client("127.0.0.1", revived.port(), 120.0);
    for (int i = 0; i < kUniqueLayouts; ++i) {
      const std::string out = path("revived" + std::to_string(i) + ".gds");
      const auto resp = client.call(jobRequest(
          serve::Request::Type::kFill,
          path("wires" + std::to_string(i) + ".gds") + " --out " + out,
          "revived"));
      if (!resp.has_value() || !resp->ok) {
        std::fprintf(stderr, "FAILED: post-restart fill %d\n", i);
        restartOk = false;
        break;
      }
      restartIdentical =
          restartIdentical &&
          readFile(out) ==
              readFile(path("filled" + std::to_string(i) + ".gds"));
    }
    persistentHits = revived.service().stats().cache.persistentHits;
    revived.drain();
  }
  std::printf("restart: %llu persistent cache hits, outputs %s\n",
              static_cast<unsigned long long>(persistentHits),
              restartIdentical ? "BYTE-IDENTICAL" : "DIVERGED (BUG!)");

  h.series("restart_persistent_hits", "count", Direction::kHigherIsBetter,
           Scale::kRatio)
      .record(static_cast<double>(persistentHits));
  h.param("requests", static_cast<std::int64_t>(requestCount));

  h.check("no_request_failures", failures == 0 && requestCount > 0);
  h.check("byte_identical_to_direct_fill", identical);
  h.check("restart_ok", restartOk);
  h.check("restart_byte_identical", restartIdentical);
  h.check("persistent_cache_hit", persistentHits > 0);
  return h.finish();
}
