// Ablation benches for the design choices DESIGN.md calls out:
//   1. sizing backend: dual min-cost flow (Section 3.3.3) vs dense-simplex
//      LP (Section 3.3.2) — the paper's motivation for the MCF transform;
//   2. lambda sweep (candidate over-generation, Alg. 1);
//   3. eta sweep (overlay weight, Eqn. 9);
//   4. window size sweep (dissection granularity);
//   5-7. litho gutters, hierarchical output, CMP/sliding-window analysis.
//
// Each section prints quality-relevant raw metrics on the "s" suite so the
// trends are directly comparable; per-variant runtime and density-variation
// series land in BENCH_ablation.json.
//
// Usage: bench_ablation [reps] [--reps N] [--warmup N] [--out F]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/harness.hpp"
#include "common/logging.hpp"
#include "common/timer.hpp"
#include "contest/benchmark_generator.hpp"
#include "contest/evaluator.hpp"
#include "baselines/greedy_filler.hpp"
#include "density/cmp_model.hpp"
#include "density/sliding.hpp"
#include "fill/fill_engine.hpp"
#include "gds/gds_writer.hpp"
#include "gds/oasis.hpp"
#include "layout/gds_compact.hpp"
#include "layout/litho.hpp"

using namespace ofl;

namespace {

struct RunOutcome {
  double seconds;
  contest::RawMetrics raw;
  fill::FillReport report;
};

RunOutcome runEngine(const contest::BenchmarkSpec& spec,
                     const fill::FillEngineOptions& options) {
  layout::Layout chip = contest::BenchmarkGenerator::generate(spec);
  Timer timer;
  RunOutcome out;
  out.report = fill::FillEngine(options).run(chip);
  out.seconds = timer.elapsedSeconds();
  const contest::Evaluator evaluator(
      spec.windowSize, contest::scoreTableFor(spec.name), spec.rules);
  out.raw = evaluator.measure(chip);
  return out;
}

void printRow(const std::string& label, const RunOutcome& o) {
  std::printf(
      "%-28s %7.2fs  sizing %6.2fs  fills %7zu  sigma %.4f  line %7.3f  "
      "overlay %.3fM  size %.2fMB\n",
      label.c_str(), o.seconds, o.report.sizingSeconds, o.raw.fillCount,
      o.raw.variation, o.raw.line, o.raw.overlay / 1e6, o.raw.fileSizeMB);
}

}  // namespace

int main(int argc, char** argv) {
  setLogLevel(LogLevel::kWarn);
  using namespace ofl::bench;
  BenchArgs args = BenchArgs::parse(argc, argv, "", /*reps=*/1,
                                    /*warmup=*/0);
  if (!args.suite.empty() &&
      args.suite.find_first_not_of("0123456789") == std::string::npos) {
    args.reps = std::max(1, std::atoi(args.suite.c_str()));
    args.suite = "";
  }
  Harness h(args.harnessOptions("ablation"));

  const contest::BenchmarkSpec spec = contest::BenchmarkGenerator::spec("s");
  fill::FillEngineOptions base;
  base.windowSize = spec.windowSize;
  base.rules = spec.rules;

  // A timed+measured engine run recorded under `tag`: wall seconds as a
  // wall-clock series, density variation (sigma) as a machine-independent
  // ratio series.
  auto record = [&h](const std::string& tag, const RunOutcome& o) {
    h.series("wall_" + tag + "_s", "s").record(o.seconds);
    h.series("sigma_" + tag, "sigma", Direction::kLowerIsBetter,
             Scale::kRatio)
        .record(o.raw.variation);
  };

  bool lithoAwareWins = true;
  bool compactWinsOnCells = true;

  h.runInterleaved({[&] {
    std::printf("== Ablation 1: sizing backend (paper 3.3.2 vs 3.3.3) ==\n");
    {
      fill::FillEngineOptions mcfOpt = base;
      RunOutcome o = runEngine(spec, mcfOpt);
      printRow("dual-mcf (network simplex)", o);
      record("mcf_nsx", o);
      fill::FillEngineOptions sspOpt = base;
      sspOpt.sizer.backend = mcf::McfBackend::kSuccessiveShortestPath;
      o = runEngine(spec, sspOpt);
      printRow("dual-mcf (ssp)", o);
      record("mcf_ssp", o);
      fill::FillEngineOptions lpOpt = base;
      lpOpt.sizer.useLpSolver = true;
      o = runEngine(spec, lpOpt);
      printRow("dense simplex LP", o);
      record("dense_lp", o);
    }

    std::printf("\n== Ablation 2: lambda (candidate over-generation) ==\n");
    for (const double lambda : {1.0, 1.15, 1.3, 1.6}) {
      fill::FillEngineOptions o = base;
      o.candidate.lambda = lambda;
      char label[64];
      std::snprintf(label, sizeof(label), "lambda = %.2f", lambda);
      const RunOutcome out = runEngine(spec, o);
      printRow(label, out);
      char tag[32];
      std::snprintf(tag, sizeof(tag), "lambda_%d",
                    static_cast<int>(lambda * 100));
      record(tag, out);
    }

    std::printf("\n== Ablation 3: eta (overlay weight, Eqn. 9) ==\n");
    for (const double eta : {0.0, 0.5, 1.0, 4.0}) {
      fill::FillEngineOptions o = base;
      o.sizer.eta = eta;
      char label[64];
      std::snprintf(label, sizeof(label), "eta = %.1f", eta);
      const RunOutcome out = runEngine(spec, o);
      printRow(label, out);
      char tag[32];
      std::snprintf(tag, sizeof(tag), "eta_%d", static_cast<int>(eta * 10));
      record(tag, out);
    }

    std::printf("\n== Ablation 4: window size ==\n");
    for (const geom::Coord w : {600, 1200, 2400}) {
      fill::FillEngineOptions o = base;
      o.windowSize = w;
      char label[64];
      std::snprintf(label, sizeof(label), "window = %lld",
                    static_cast<long long>(w));
      // Evaluate against the suite's canonical window size regardless of
      // the engine's internal dissection.
      layout::Layout chip = contest::BenchmarkGenerator::generate(spec);
      Timer timer;
      RunOutcome out;
      out.report = fill::FillEngine(o).run(chip);
      out.seconds = timer.elapsedSeconds();
      const contest::Evaluator evaluator(
          spec.windowSize, contest::scoreTableFor(spec.name), spec.rules);
      out.raw = evaluator.measure(chip);
      printRow(label, out);
      record("window_" + std::to_string(static_cast<long long>(w)), out);
    }

    std::printf("\n== Ablation 5: litho-aware gutters (paper future work) ==\n");
    {
      // Rules whose min spacing lands inside the forbidden-pitch band, so
      // plain slicing creates litho hotspots and the litho-aware mode must
      // remove the fill-induced ones.
      contest::BenchmarkSpec lithoSpec = spec;
      lithoSpec.rules.minSpacing = 14;
      const layout::LithoRules band{12, 18};
      std::size_t hotspots[2] = {0, 0};
      for (const bool aware : {false, true}) {
        layout::Layout chip = contest::BenchmarkGenerator::generate(lithoSpec);
        fill::FillEngineOptions o = base;
        o.rules = lithoSpec.rules;
        if (aware) o.candidate.lithoAvoid = band;
        Timer timer;
        fill::FillEngine(o).run(chip);
        const double seconds = timer.elapsedSeconds();
        hotspots[aware ? 1 : 0] = layout::LithoChecker(band).count(chip);
        const contest::Evaluator evaluator(spec.windowSize,
                                           contest::scoreTableFor(spec.name),
                                           lithoSpec.rules);
        const contest::RawMetrics raw = evaluator.measure(chip);
        std::printf("%-28s %7.2fs  litho hotspots %6zu  sigma %.4f  "
                    "size %.2fMB\n",
                    aware ? "litho-aware gutters" : "plain gutters", seconds,
                    hotspots[aware ? 1 : 0], raw.variation, raw.fileSizeMB);
        h.series(aware ? "litho_hotspots_aware" : "litho_hotspots_plain",
                 "count", Direction::kLowerIsBetter, Scale::kRatio)
            .record(static_cast<double>(hotspots[aware ? 1 : 0]));
      }
      lithoAwareWins = lithoAwareWins && hotspots[1] <= hotspots[0];
    }

    std::printf("\n== Ablation 5b: hierarchical (AREF) fill output ==\n");
    {
      // The engine's sizing stage individualizes fill shapes (that is what
      // hits the density target to DBU precision), so its output arrays
      // poorly; a greedy filler's untouched grid cells compact massively.
      // This quantifies the regularity/precision trade-off.
      auto measure = [&](const char* label, const std::string& tag,
                         layout::Layout& chip) {
        const long long flat = gds::Writer::streamSize(chip.toGds());
        const long long compact =
            gds::Writer::streamSize(layout::toCompactGds(chip));
        const long long oasis = gds::OasisWriter::streamSize(chip.toGds());
        std::printf(
            "%-28s flat %7.2fMB  compact %7.2fMB (%.2fx)  oasis %6.2fMB "
            "(%.2fx)\n",
            label, static_cast<double>(flat) / 1e6,
            static_cast<double>(compact) / 1e6,
            static_cast<double>(flat) / static_cast<double>(compact),
            static_cast<double>(oasis) / 1e6,
            static_cast<double>(flat) / static_cast<double>(oasis));
        const double ratio =
            static_cast<double>(flat) / static_cast<double>(compact);
        h.series("compact_ratio_" + tag, "x", Direction::kHigherIsBetter,
                 Scale::kRatio)
            .record(ratio);
        return ratio;
      };
      {
        layout::Layout chip = contest::BenchmarkGenerator::generate(spec);
        fill::FillEngine(base).run(chip);
        measure("engine (sized fills)", "sized", chip);
      }
      double greedyRatio = 0.0;
      {
        layout::Layout chip = contest::BenchmarkGenerator::generate(spec);
        baselines::GreedyFiller::Options o;
        o.windowSize = spec.windowSize;
        o.rules = spec.rules;
        baselines::GreedyFiller(o).fill(chip);
        greedyRatio = measure("greedy (grid cells)", "greedy", chip);
      }
      {
        // Industrial fill-cell mode: fixed-size cells + light sizing keep
        // the pattern regular, so AREF compaction collapses it.
        layout::Layout chip = contest::BenchmarkGenerator::generate(spec);
        fill::FillEngineOptions o = base;
        o.candidate.uniformCells = true;
        o.sizer.iterations = 0;  // preserve cell regularity
        fill::FillEngine(o).run(chip);
        const double cellRatio =
            measure("engine (uniform fill cells)", "cells", chip);
        compactWinsOnCells = compactWinsOnCells && cellRatio > 1.0 &&
                             greedyRatio > 1.0;
      }
    }

    std::printf("\n== Ablation 6: predicted CMP topography ==\n");
    {
      // The physical effect behind the density scores: predicted post-CMP
      // thickness range (effective-density model) before and after fill.
      layout::Layout chip = contest::BenchmarkGenerator::generate(spec);
      const layout::WindowGrid grid(chip.die(), spec.windowSize);
      auto report = [&](const char* label, const char* tag) {
        for (int l = 0; l < chip.numLayers(); ++l) {
          const auto map = density::DensityMap::compute(chip, l, grid);
          const auto cmp = density::summarizeCmp(map);
          std::printf("%-16s layer %d effective density [%.3f, %.3f], "
                      "predicted thickness range %.1f nm\n",
                      label, l + 1, cmp.minEffective, cmp.maxEffective,
                      cmp.thicknessRangeNm);
          if (l == 0) {
            h.series(std::string("cmp_thickness_range_") + tag, "nm",
                     Direction::kLowerIsBetter, Scale::kRatio)
                .record(cmp.thicknessRangeNm);
          }
        }
      };
      report("before fill", "before");
      fill::FillEngine(base).run(chip);
      report("after fill", "after");
    }

    std::printf("\n== Ablation 7: multi-window (overlapping) analysis ==\n");
    {
      layout::Layout chip = contest::BenchmarkGenerator::generate(spec);
      density::SlidingDensityOptions sopt;
      sopt.windowSize = spec.windowSize;
      sopt.steps = 4;
      auto report = [&](const char* label) {
        for (int l = 0; l < chip.numLayers(); ++l) {
          std::vector<geom::Rect> shapes = chip.layer(l).wires;
          shapes.insert(shapes.end(), chip.layer(l).fills.begin(),
                        chip.layer(l).fills.end());
          const auto e = density::slidingExtrema(shapes, chip.die(), sopt);
          std::printf("%-16s layer %d sliding-window density range "
                      "[%.3f, %.3f] spread %.3f\n",
                      label, l + 1, e.minDensity, e.maxDensity,
                      e.maxDensity - e.minDensity);
        }
      };
      report("before fill");
      fill::FillEngine(base).run(chip);
      report("after fill");
    }
  }});

  h.check("litho_aware_removes_hotspots", lithoAwareWins);
  h.check("compaction_wins_on_regular_fill", compactWinsOnCells);
  return h.finish();
}
