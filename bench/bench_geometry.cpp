// Micro-benchmarks of the geometry substrate: Boolean sweeps, polygon
// decomposition and window bucketing at fill-flow-realistic sizes.
// Each kernel/size pair is one harness series (ns/op via the self-scaling
// micro helper); the indexed overlap-sum kernels first verify exact
// equality against the brute-force sums — the byte-identity contract —
// and the bench fails if any probe diverges. BENCH_geometry.json.
//
// Usage: bench_geometry [reps] [--reps N] [--warmup N] [--out F]
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "common/rng.hpp"
#include "geometry/boolean.hpp"
#include "geometry/contour.hpp"
#include "geometry/decompose.hpp"
#include "geometry/grid_index.hpp"
#include "geometry/rtree.hpp"
#include "layout/window_grid.hpp"

using namespace ofl;
using namespace ofl::geom;

namespace {

// Keeps results observable so the optimizer cannot delete kernel calls.
volatile std::uint64_t gSink = 0;

std::vector<Rect> randomRects(int n, Coord extent, Coord maxEdge,
                              std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Rect> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    const Coord w = rng.uniformInt(4, maxEdge);
    const Coord h = rng.uniformInt(4, maxEdge);
    const Coord x = rng.uniformInt(0, extent - w);
    const Coord y = rng.uniformInt(0, extent - h);
    out.push_back({x, y, x + w, y + h});
  }
  return out;
}

std::vector<Rect> probeQueries(int count, std::uint64_t seed) {
  return randomRects(count, 19200, 400, seed);
}

struct Case {
  std::string name;
  std::function<void()> op;  // one kernel invocation
};

}  // namespace

int main(int argc, char** argv) {
  using namespace ofl::bench;
  BenchArgs args = BenchArgs::parse(argc, argv, "", /*reps=*/3,
                                    /*warmup=*/1);
  if (!args.suite.empty() &&
      args.suite.find_first_not_of("0123456789") == std::string::npos) {
    args.reps = std::max(1, std::atoi(args.suite.c_str()));
    args.suite = "";
  }
  Harness h(args.harnessOptions("geometry"));

  std::vector<Case> cases;
  bool overlapSumsExact = true;

  for (const int n : {100, 1000, 10000}) {
    auto rects = randomRects(n, 4000, 120, 3);
    cases.push_back({"union_area_" + std::to_string(n),
                     [rects = std::move(rects)] {
                       gSink = gSink + static_cast<std::uint64_t>(unionArea(rects));
                     }});
  }
  for (const int n : {100, 1000, 10000}) {
    auto a = randomRects(n, 4000, 120, 3);
    auto b = randomRects(n, 4000, 120, 4);
    cases.push_back({"intersection_area_" + std::to_string(n),
                     [a = std::move(a), b = std::move(b)] {
                       gSink = gSink +
                           static_cast<std::uint64_t>(intersectionArea(a, b));
                     }});
  }
  for (const int n : {100, 1000}) {
    auto a = randomRects(n, 4000, 200, 5);
    auto b = randomRects(n, 4000, 60, 6);
    cases.push_back({"boolean_subtract_" + std::to_string(n),
                     [a = std::move(a), b = std::move(b)] {
                       gSink = gSink + booleanOp(a, b, BoolOp::kSubtract).size();
                     }});
  }
  for (const int steps : {10, 100, 1000}) {
    // x-monotone staircase with n steps.
    Rng rng(9);
    std::vector<Point> loop;
    loop.push_back({0, 0});
    loop.push_back({static_cast<Coord>(steps) * 10, 0});
    Coord prev = -1;
    for (int c = steps - 1; c >= 0; --c) {
      Coord hgt = rng.uniformInt(5, 200);
      if (hgt == prev) ++hgt;
      prev = hgt;
      loop.push_back({static_cast<Coord>(c + 1) * 10, hgt});
      loop.push_back({static_cast<Coord>(c) * 10, hgt});
    }
    Polygon poly(loop);
    cases.push_back({"decompose_staircase_" + std::to_string(steps),
                     [poly = std::move(poly)] {
                       gSink = gSink + decompose(poly).size();
                     }});
  }
  for (const int n : {1000, 20000}) {
    auto rects = randomRects(n, 19200, 120, 31);
    auto index = std::make_shared<GridIndex>(Rect{0, 0, 19200, 19200}, 600);
    for (std::uint32_t id = 0; id < rects.size(); ++id) {
      index->insert(id, rects[id]);
    }
    auto queries = std::make_shared<std::vector<Rect>>(probeQueries(256, 32));
    auto qi = std::make_shared<std::size_t>(0);
    cases.push_back({"grid_index_query_" + std::to_string(n),
                     [index, queries, qi] {
                       std::size_t hits = 0;
                       index->visit((*queries)[(*qi)++ & 255],
                                    [&hits](std::uint32_t) { ++hits; });
                       gSink = gSink + hits;
                     }});
  }
  for (const int n : {1000, 20000}) {
    auto rects = randomRects(n, 19200, 120, 31);
    auto tree = std::make_shared<RTree>(rects);
    auto queries = std::make_shared<std::vector<Rect>>(probeQueries(256, 32));
    auto qi = std::make_shared<std::size_t>(0);
    cases.push_back({"rtree_query_" + std::to_string(n),
                     [tree, queries, qi] {
                       std::size_t hits = 0;
                       tree->visit((*queries)[(*qi)++ & 255],
                                   [&hits](std::uint32_t) { ++hits; });
                       gSink = gSink + hits;
                     }});
  }
  // Eqn. 8 overlap-sum kernel, brute vs indexed. The fill pipeline's
  // byte-identity contract rests on the indexed accumulations returning
  // EXACTLY the brute-force sums, so the indexed cases verify equality on
  // every probe query up front.
  for (const int n : {100, 1000, 20000}) {
    auto shapes = std::make_shared<std::vector<Rect>>(
        randomRects(n, 19200, 120, 77));
    auto queries = std::make_shared<std::vector<Rect>>(probeQueries(256, 78));
    const std::string tag = std::to_string(n);
    {
      auto qi = std::make_shared<std::size_t>(0);
      cases.push_back({"overlap_sum_brute_" + tag,
                       [shapes, queries, qi] {
                         gSink = gSink + static_cast<std::uint64_t>(overlapAreaSum(
                             (*queries)[(*qi)++ & 255], *shapes));
                       }});
    }
    {
      auto index = std::make_shared<GridIndex>(
          Rect{0, 0, 19200, 19200},
          windowCellSize({0, 0, 19200, 19200}, 400));
      for (std::uint32_t id = 0; id < shapes->size(); ++id) {
        index->insert(id, (*shapes)[id]);
      }
      auto indexedSum = [index, shapes](const Rect& q) {
        Area total = 0;
        index->visit(q, [&](std::uint32_t id) {
          total += q.overlapArea((*shapes)[id]);
        });
        return total;
      };
      for (const Rect& q : *queries) {
        if (indexedSum(q) != overlapAreaSum(q, *shapes)) {
          std::fprintf(stderr,
                       "FAIL: GridIndex overlap sum diverges from brute\n");
          overlapSumsExact = false;
        }
      }
      auto qi = std::make_shared<std::size_t>(0);
      cases.push_back({"overlap_sum_grid_" + tag,
                       [indexedSum, queries, qi] {
                         gSink = gSink + static_cast<std::uint64_t>(
                             indexedSum((*queries)[(*qi)++ & 255]));
                       }});
    }
    {
      auto tree = std::make_shared<RTree>(*shapes);
      auto indexedSum = [tree, shapes](const Rect& q) {
        Area total = 0;
        tree->visit(q, [&](std::uint32_t id) {
          total += q.overlapArea((*shapes)[id]);
        });
        return total;
      };
      for (const Rect& q : *queries) {
        if (indexedSum(q) != overlapAreaSum(q, *shapes)) {
          std::fprintf(stderr,
                       "FAIL: RTree overlap sum diverges from brute\n");
          overlapSumsExact = false;
        }
      }
      auto qi = std::make_shared<std::size_t>(0);
      cases.push_back({"overlap_sum_rtree_" + tag,
                       [indexedSum, queries, qi] {
                         gSink = gSink + static_cast<std::uint64_t>(
                             indexedSum((*queries)[(*qi)++ & 255]));
                       }});
    }
  }
  for (const int n : {100, 1000}) {
    auto region = std::make_shared<Region>(randomRects(n, 2000, 80, 21));
    cases.push_back({"contour_extraction_" + std::to_string(n),
                     [region] { gSink = gSink + contours(*region).size(); }});
  }
  for (const int n : {1000, 10000, 50000}) {
    auto rects = std::make_shared<std::vector<Rect>>(
        randomRects(n, 19200, 240, 12));
    auto grid = std::make_shared<layout::WindowGrid>(
        Rect{0, 0, 19200, 19200}, 1200);
    const std::string tag = std::to_string(n);
    cases.push_back({"window_bucketing_" + tag,
                     [rects, grid] {
                       gSink = gSink + grid->bucketClipped(*rects).size();
                     }});
    cases.push_back({"covered_area_" + tag,
                     [rects, grid] {
                       gSink = gSink + grid->coveredAreaPerWindow(*rects).size();
                     }});
  }

  std::vector<std::function<void()>> bodies;
  bodies.reserve(cases.size());
  for (Case& c : cases) {
    Series& s = h.series(c.name, "ns");
    bodies.push_back([&c, series = &s] {
      series->record(Harness::nsPerOp(c.op));
    });
  }
  h.runInterleaved(bodies);

  h.check("overlap_sums_exact", overlapSumsExact);
  return h.finish();
}
