// Micro-benchmarks of the geometry substrate: Boolean sweeps, polygon
// decomposition and window bucketing at fill-flow-realistic sizes.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "geometry/boolean.hpp"
#include "geometry/contour.hpp"
#include "geometry/decompose.hpp"
#include "geometry/grid_index.hpp"
#include "geometry/rtree.hpp"
#include "layout/window_grid.hpp"

using namespace ofl;
using namespace ofl::geom;

namespace {

std::vector<Rect> randomRects(int n, Coord extent, Coord maxEdge,
                              std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Rect> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    const Coord w = rng.uniformInt(4, maxEdge);
    const Coord h = rng.uniformInt(4, maxEdge);
    const Coord x = rng.uniformInt(0, extent - w);
    const Coord y = rng.uniformInt(0, extent - h);
    out.push_back({x, y, x + w, y + h});
  }
  return out;
}

void BM_UnionArea(benchmark::State& state) {
  const auto rects =
      randomRects(static_cast<int>(state.range(0)), 4000, 120, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(unionArea(rects));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_UnionArea)->Arg(100)->Arg(1000)->Arg(10000);

void BM_IntersectionArea(benchmark::State& state) {
  const auto a = randomRects(static_cast<int>(state.range(0)), 4000, 120, 3);
  const auto b = randomRects(static_cast<int>(state.range(0)), 4000, 120, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(intersectionArea(a, b));
  }
}
BENCHMARK(BM_IntersectionArea)->Arg(100)->Arg(1000)->Arg(10000);

void BM_BooleanSubtractRects(benchmark::State& state) {
  const auto a = randomRects(static_cast<int>(state.range(0)), 4000, 200, 5);
  const auto b = randomRects(static_cast<int>(state.range(0)), 4000, 60, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(booleanOp(a, b, BoolOp::kSubtract));
  }
}
BENCHMARK(BM_BooleanSubtractRects)->Arg(100)->Arg(1000);

void BM_DecomposeStaircase(benchmark::State& state) {
  // x-monotone staircase with n steps.
  const int steps = static_cast<int>(state.range(0));
  Rng rng(9);
  std::vector<Point> loop;
  loop.push_back({0, 0});
  loop.push_back({static_cast<Coord>(steps) * 10, 0});
  Coord prev = -1;
  for (int c = steps - 1; c >= 0; --c) {
    Coord h = rng.uniformInt(5, 200);
    if (h == prev) ++h;
    prev = h;
    loop.push_back({static_cast<Coord>(c + 1) * 10, h});
    loop.push_back({static_cast<Coord>(c) * 10, h});
  }
  const Polygon poly(loop);
  for (auto _ : state) {
    benchmark::DoNotOptimize(decompose(poly));
  }
}
BENCHMARK(BM_DecomposeStaircase)->Arg(10)->Arg(100)->Arg(1000);

void BM_GridIndexQuery(benchmark::State& state) {
  const auto rects =
      randomRects(static_cast<int>(state.range(0)), 19200, 120, 31);
  GridIndex index({0, 0, 19200, 19200}, 600);
  for (std::uint32_t id = 0; id < rects.size(); ++id) {
    index.insert(id, rects[id]);
  }
  Rng rng(32);
  std::size_t hits = 0;
  for (auto _ : state) {
    const Rect q = randomRects(1, 19200, 400, rng.uniformInt(0, 1 << 30))[0];
    index.visit(q, [&hits](std::uint32_t) { ++hits; });
  }
  benchmark::DoNotOptimize(hits);
}
BENCHMARK(BM_GridIndexQuery)->Arg(1000)->Arg(20000);

void BM_RTreeQuery(benchmark::State& state) {
  const auto rects =
      randomRects(static_cast<int>(state.range(0)), 19200, 120, 31);
  const RTree tree(rects);
  Rng rng(32);
  std::size_t hits = 0;
  for (auto _ : state) {
    const Rect q = randomRects(1, 19200, 400, rng.uniformInt(0, 1 << 30))[0];
    tree.visit(q, [&hits](std::uint32_t) { ++hits; });
  }
  benchmark::DoNotOptimize(hits);
}
BENCHMARK(BM_RTreeQuery)->Arg(1000)->Arg(20000);

// Eqn. 8 overlap-sum kernel, brute vs indexed. The fill pipeline's
// byte-identity contract rests on the indexed accumulations returning
// EXACTLY the brute-force sums, so each indexed benchmark first verifies
// equality on every probe query and aborts the benchmark on divergence;
// the reported time is then ns/query.
Area bruteOverlapSum(const Rect& query, const std::vector<Rect>& shapes) {
  return overlapAreaSum(query, shapes);
}

std::vector<Rect> probeQueries(int count, std::uint64_t seed) {
  return randomRects(count, 19200, 400, seed);
}

void BM_OverlapSumBrute(benchmark::State& state) {
  const auto shapes =
      randomRects(static_cast<int>(state.range(0)), 19200, 120, 77);
  const auto queries = probeQueries(256, 78);
  std::size_t qi = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bruteOverlapSum(queries[qi++ & 255], shapes));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OverlapSumBrute)->Arg(100)->Arg(1000)->Arg(20000);

void BM_OverlapSumGridIndex(benchmark::State& state) {
  const auto shapes =
      randomRects(static_cast<int>(state.range(0)), 19200, 120, 77);
  GridIndex index({0, 0, 19200, 19200}, windowCellSize({0, 0, 19200, 19200},
                                                       400));
  for (std::uint32_t id = 0; id < shapes.size(); ++id) {
    index.insert(id, shapes[id]);
  }
  const auto queries = probeQueries(256, 78);
  auto indexedSum = [&](const Rect& q) {
    Area total = 0;
    index.visit(q, [&](std::uint32_t id) { total += q.overlapArea(shapes[id]); });
    return total;
  };
  for (const Rect& q : queries) {
    if (indexedSum(q) != bruteOverlapSum(q, shapes)) {
      state.SkipWithError("GridIndex overlap sum diverges from brute force");
      return;
    }
  }
  std::size_t qi = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(indexedSum(queries[qi++ & 255]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OverlapSumGridIndex)->Arg(100)->Arg(1000)->Arg(20000);

void BM_OverlapSumRTree(benchmark::State& state) {
  const auto shapes =
      randomRects(static_cast<int>(state.range(0)), 19200, 120, 77);
  const RTree tree(shapes);
  const auto queries = probeQueries(256, 78);
  auto indexedSum = [&](const Rect& q) {
    Area total = 0;
    tree.visit(q, [&](std::uint32_t id) { total += q.overlapArea(shapes[id]); });
    return total;
  };
  for (const Rect& q : queries) {
    if (indexedSum(q) != bruteOverlapSum(q, shapes)) {
      state.SkipWithError("RTree overlap sum diverges from brute force");
      return;
    }
  }
  std::size_t qi = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(indexedSum(queries[qi++ & 255]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OverlapSumRTree)->Arg(100)->Arg(1000)->Arg(20000);

void BM_ContourExtraction(benchmark::State& state) {
  const auto rects =
      randomRects(static_cast<int>(state.range(0)), 2000, 80, 21);
  const Region region(rects);
  for (auto _ : state) {
    benchmark::DoNotOptimize(contours(region));
  }
}
BENCHMARK(BM_ContourExtraction)->Arg(100)->Arg(1000);

void BM_WindowBucketing(benchmark::State& state) {
  const auto rects =
      randomRects(static_cast<int>(state.range(0)), 19200, 240, 12);
  const layout::WindowGrid grid({0, 0, 19200, 19200}, 1200);
  for (auto _ : state) {
    benchmark::DoNotOptimize(grid.bucketClipped(rects));
  }
}
BENCHMARK(BM_WindowBucketing)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_CoveredAreaPerWindow(benchmark::State& state) {
  const auto rects =
      randomRects(static_cast<int>(state.range(0)), 19200, 240, 13);
  const layout::WindowGrid grid({0, 0, 19200, 19200}, 1200);
  for (auto _ : state) {
    benchmark::DoNotOptimize(grid.coveredAreaPerWindow(rects));
  }
}
BENCHMARK(BM_CoveredAreaPerWindow)->Arg(1000)->Arg(10000)->Arg(50000);

}  // namespace

BENCHMARK_MAIN();
