// Reproduces paper Table 2: benchmark statistics (#polygons, #layers, file
// size) and the alpha/beta scoring coefficients for each suite.
//
// The suites are the scaled synthetic analogues of the contest designs
// (see DESIGN.md Section 2); the columns match Table 2's schema.
#include <cstdio>
#include <string>
#include <vector>

#include "common/logging.hpp"
#include "contest/benchmark_generator.hpp"
#include "contest/report.hpp"
#include "gds/gds_writer.hpp"

using namespace ofl;

int main() {
  setLogLevel(LogLevel::kWarn);
  std::printf("== Table 2: benchmark statistics (scaled suites) ==\n");
  std::vector<contest::SuiteStats> stats;
  for (const std::string suite : {"s", "b", "m"}) {
    const contest::BenchmarkSpec spec = contest::BenchmarkGenerator::spec(suite);
    const layout::Layout chip = contest::BenchmarkGenerator::generate(spec);
    contest::SuiteStats row;
    row.design = suite;
    row.polygons = chip.wireCount();
    row.layers = chip.numLayers();
    row.wireFileMB =
        static_cast<double>(gds::Writer::streamSize(chip.toGds())) / 1e6;
    row.table = contest::scoreTableFor(suite);
    stats.push_back(row);
  }
  contest::printTable2(stats);
  return 0;
}
