// Reproduces paper Table 2: benchmark statistics (#polygons, #layers, file
// size) and the alpha/beta scoring coefficients for each suite.
//
// The suites are the scaled synthetic analogues of the contest designs
// (see DESIGN.md Section 2); the columns match Table 2's schema. The
// harness records per-suite generation time and emits BENCH_table2.json.
//
// Usage: bench_table2 [reps] [--reps N] [--warmup N] [--out F]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "common/logging.hpp"
#include "common/timer.hpp"
#include "contest/benchmark_generator.hpp"
#include "contest/report.hpp"
#include "gds/gds_writer.hpp"

using namespace ofl;

int main(int argc, char** argv) {
  setLogLevel(LogLevel::kWarn);
  using namespace ofl::bench;
  BenchArgs args = BenchArgs::parse(argc, argv, "", /*reps=*/1,
                                    /*warmup=*/0);
  if (!args.suite.empty() &&
      args.suite.find_first_not_of("0123456789") == std::string::npos) {
    args.reps = std::max(1, std::atoi(args.suite.c_str()));
    args.suite = "";
  }

  Harness h(args.harnessOptions("table2"));
  std::printf("== Table 2: benchmark statistics (scaled suites) ==\n");
  std::vector<contest::SuiteStats> stats;
  h.runInterleaved({[&] {
    stats.clear();
    for (const std::string suite : {"s", "b", "m"}) {
      const contest::BenchmarkSpec spec =
          contest::BenchmarkGenerator::spec(suite);
      Timer t;
      const layout::Layout chip = contest::BenchmarkGenerator::generate(spec);
      h.series("generate_" + suite + "_s", "s").record(t.elapsedSeconds());
      contest::SuiteStats row;
      row.design = suite;
      row.polygons = chip.wireCount();
      row.layers = chip.numLayers();
      row.wireFileMB =
          static_cast<double>(gds::Writer::streamSize(chip.toGds())) / 1e6;
      row.table = contest::scoreTableFor(suite);
      stats.push_back(row);
    }
  }});
  contest::printTable2(stats);
  for (const contest::SuiteStats& row : stats) {
    h.series("polygons_" + row.design, "count", Direction::kHigherIsBetter,
             Scale::kRatio)
        .record(static_cast<double>(row.polygons));
  }
  h.check("suites_generated", stats.size() == 3);
  return h.finish();
}
