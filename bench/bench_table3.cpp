// Reproduces paper Table 3: per-design score grid for the three baseline
// fillers (stand-ins for the contest top-3; DESIGN.md Section 2) and the
// paper's engine ("ours"), on the scaled suites s/b/m.
//
// The paper's headline claims to check against the printed grid:
//   * "ours" has the highest Testcase Quality on every design (~13% over
//     the best baseline on average) and the highest Testcase Score (~10%).
//   * the tile-based method pays for uniformity with file size;
//     greedy is the mirror image.
//
//   usage: bench_table3 [suites] [--json FILE]   e.g. "bench_table3 s,b"
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "baselines/greedy_filler.hpp"
#include "baselines/monte_carlo_filler.hpp"
#include "baselines/tile_lp_filler.hpp"
#include "common/logging.hpp"
#include "common/memory_usage.hpp"
#include "common/timer.hpp"
#include "contest/benchmark_generator.hpp"
#include "contest/evaluator.hpp"
#include "contest/json_report.hpp"
#include "contest/report.hpp"
#include "fill/fill_engine.hpp"

using namespace ofl;

namespace {

std::vector<std::string> parseSuites(int argc, char** argv) {
  if (argc < 2 || std::string(argv[1]).rfind("--", 0) == 0) {
    return {"s", "b", "m"};
  }
  std::vector<std::string> suites;
  std::string arg = argv[1];
  std::size_t pos = 0;
  while (pos != std::string::npos) {
    const std::size_t comma = arg.find(',', pos);
    suites.push_back(arg.substr(pos, comma == std::string::npos
                                         ? std::string::npos
                                         : comma - pos));
    pos = comma == std::string::npos ? comma : comma + 1;
  }
  return suites;
}

}  // namespace

int main(int argc, char** argv) {
  setLogLevel(LogLevel::kWarn);
  std::vector<contest::ResultRow> rows;

  for (const std::string& suite : parseSuites(argc, argv)) {
    const contest::BenchmarkSpec spec = contest::BenchmarkGenerator::spec(suite);
    const layout::Layout original = contest::BenchmarkGenerator::generate(spec);
    const contest::Evaluator evaluator(
        spec.windowSize, contest::scoreTableFor(spec.name), spec.rules);
    std::fprintf(stderr, "suite %s: %zu wires\n", suite.c_str(),
                 original.wireCount());

    auto runOne = [&](const std::string& team, auto&& fillFn) {
      layout::Layout chip = original;
      Timer timer;
      fillFn(chip);
      const double seconds = timer.elapsedSeconds();
      contest::ResultRow row;
      row.design = spec.name;
      row.team = team;
      row.runtimeSeconds = seconds;
      // Peak RSS is process-wide and monotone; per-filler deltas are not
      // separable in one process, so all rows in a suite share the probe
      // (noted in EXPERIMENTS.md).
      row.memoryMiB = peakMemoryMiB();
      row.raw = evaluator.measure(chip);
      row.scores = evaluator.score(row.raw, seconds, row.memoryMiB);
      rows.push_back(row);
      std::fprintf(stderr, "  %-12s %7.2fs  fills=%zu  quality=%.3f\n",
                   team.c_str(), seconds, row.raw.fillCount,
                   row.scores.quality);
    };

    runOne("tile-lp", [&](layout::Layout& chip) {
      baselines::TileLpFiller::Options o;
      o.windowSize = spec.windowSize;
      o.rules = spec.rules;
      baselines::TileLpFiller(o).fill(chip);
    });
    runOne("monte-carlo", [&](layout::Layout& chip) {
      baselines::MonteCarloFiller::Options o;
      o.windowSize = spec.windowSize;
      o.rules = spec.rules;
      baselines::MonteCarloFiller(o).fill(chip);
    });
    runOne("greedy", [&](layout::Layout& chip) {
      baselines::GreedyFiller::Options o;
      o.windowSize = spec.windowSize;
      o.rules = spec.rules;
      baselines::GreedyFiller(o).fill(chip);
    });
    runOne("ours", [&](layout::Layout& chip) {
      fill::FillEngineOptions o;
      o.windowSize = spec.windowSize;
      o.rules = spec.rules;
      fill::FillEngine(o).run(chip);
    });
  }

  std::printf("== Table 3: experimental results on scaled suites ==\n");
  contest::printTable3(rows);

  // Paper headline check: ours wins quality on every design.
  bool oursWins = true;
  for (const auto& r : rows) {
    if (r.team == "ours") continue;
    for (const auto& o : rows) {
      if (o.team == "ours" && o.design == r.design &&
          o.scores.quality < r.scores.quality) {
        oursWins = false;
      }
    }
  }
  std::printf("\nheadline (ours has best quality on every design): %s\n",
              oursWins ? "REPRODUCED" : "NOT reproduced");

  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      if (contest::writeJson(rows, argv[i + 1])) {
        std::printf("wrote JSON results -> %s\n", argv[i + 1]);
      } else {
        std::fprintf(stderr, "cannot write %s\n", argv[i + 1]);
        return 1;
      }
    }
  }
  return 0;
}
