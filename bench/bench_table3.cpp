// Reproduces paper Table 3: per-design score grid for the three baseline
// fillers (stand-ins for the contest top-3; DESIGN.md Section 2) and the
// paper's engine ("ours"), on the scaled suites s/b/m.
//
// The paper's headline claims to check against the printed grid:
//   * "ours" has the highest Testcase Quality on every design (~13% over
//     the best baseline on average) and the highest Testcase Score (~10%).
//   * the tile-based method pays for uniformity with file size;
//     greedy is the mirror image.
//
// The harness records per-filler runtime and quality series and emits
// BENCH_table3.json; the --json flag still writes the contest-schema
// result file used by EXPERIMENTS.md.
//
// Usage: bench_table3 [suites] [reps] [--json FILE] [--reps N]
//        [--warmup N] [--out F]        e.g. "bench_table3 s,b"
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "baselines/greedy_filler.hpp"
#include "baselines/monte_carlo_filler.hpp"
#include "baselines/tile_lp_filler.hpp"
#include "bench/harness.hpp"
#include "common/logging.hpp"
#include "common/memory_usage.hpp"
#include "common/timer.hpp"
#include "contest/benchmark_generator.hpp"
#include "contest/evaluator.hpp"
#include "contest/json_report.hpp"
#include "contest/report.hpp"
#include "fill/fill_engine.hpp"

using namespace ofl;

namespace {

std::vector<std::string> splitSuites(const std::string& arg) {
  std::vector<std::string> suites;
  std::size_t pos = 0;
  while (pos != std::string::npos) {
    const std::size_t comma = arg.find(',', pos);
    suites.push_back(arg.substr(pos, comma == std::string::npos
                                         ? std::string::npos
                                         : comma - pos));
    pos = comma == std::string::npos ? comma : comma + 1;
  }
  return suites;
}

}  // namespace

int main(int argc, char** argv) {
  setLogLevel(LogLevel::kWarn);
  using namespace ofl::bench;
  const BenchArgs args = BenchArgs::parse(argc, argv, "s,b,m", /*reps=*/1,
                                          /*warmup=*/0);
  const std::vector<std::string> suites = splitSuites(args.suite);
  std::string jsonOut;
  for (std::size_t i = 0; i + 1 < args.positional.size(); ++i) {
    if (args.positional[i] == "--json") jsonOut = args.positional[i + 1];
  }

  Harness h(args.harnessOptions("table3"));
  std::vector<contest::ResultRow> rows;

  h.runInterleaved({[&] {
    rows.clear();
    for (const std::string& suite : suites) {
      const contest::BenchmarkSpec spec =
          contest::BenchmarkGenerator::spec(suite);
      const layout::Layout original =
          contest::BenchmarkGenerator::generate(spec);
      const contest::Evaluator evaluator(
          spec.windowSize, contest::scoreTableFor(spec.name), spec.rules);
      std::fprintf(stderr, "suite %s: %zu wires\n", suite.c_str(),
                   original.wireCount());

      auto runOne = [&](const std::string& team, auto&& fillFn) {
        layout::Layout chip = original;
        Timer timer;
        fillFn(chip);
        const double seconds = timer.elapsedSeconds();
        contest::ResultRow row;
        row.design = spec.name;
        row.team = team;
        row.runtimeSeconds = seconds;
        // Peak RSS is process-wide and monotone; per-filler deltas are not
        // separable in one process, so all rows in a suite share the probe
        // (noted in EXPERIMENTS.md).
        row.memoryMiB = peakMemoryMiB();
        row.raw = evaluator.measure(chip);
        row.scores = evaluator.score(row.raw, seconds, row.memoryMiB);
        rows.push_back(row);
        h.series("runtime_" + team + "_" + suite + "_s", "s").record(seconds);
        h.series("quality_" + team + "_" + suite, "score",
                 Direction::kHigherIsBetter, Scale::kRatio)
            .record(row.scores.quality);
        std::fprintf(stderr, "  %-12s %7.2fs  fills=%zu  quality=%.3f\n",
                     team.c_str(), seconds, row.raw.fillCount,
                     row.scores.quality);
      };

      runOne("tile-lp", [&](layout::Layout& chip) {
        baselines::TileLpFiller::Options o;
        o.windowSize = spec.windowSize;
        o.rules = spec.rules;
        baselines::TileLpFiller(o).fill(chip);
      });
      runOne("monte-carlo", [&](layout::Layout& chip) {
        baselines::MonteCarloFiller::Options o;
        o.windowSize = spec.windowSize;
        o.rules = spec.rules;
        baselines::MonteCarloFiller(o).fill(chip);
      });
      runOne("greedy", [&](layout::Layout& chip) {
        baselines::GreedyFiller::Options o;
        o.windowSize = spec.windowSize;
        o.rules = spec.rules;
        baselines::GreedyFiller(o).fill(chip);
      });
      runOne("ours", [&](layout::Layout& chip) {
        fill::FillEngineOptions o;
        o.windowSize = spec.windowSize;
        o.rules = spec.rules;
        fill::FillEngine(o).run(chip);
      });
    }
  }});

  std::printf("== Table 3: experimental results on scaled suites ==\n");
  contest::printTable3(rows);

  // Paper headline check: ours wins quality on every design.
  bool oursWins = true;
  for (const auto& r : rows) {
    if (r.team == "ours") continue;
    for (const auto& o : rows) {
      if (o.team == "ours" && o.design == r.design &&
          o.scores.quality < r.scores.quality) {
        oursWins = false;
      }
    }
  }
  std::printf("\nheadline (ours has best quality on every design): %s\n",
              oursWins ? "REPRODUCED" : "NOT reproduced");

  if (!jsonOut.empty()) {
    if (contest::writeJson(rows, jsonOut)) {
      std::printf("wrote JSON results -> %s\n", jsonOut.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", jsonOut.c_str());
      return 1;
    }
  }

  h.check("ours_best_quality", oursWins);
  return h.finish();
}
