// Reproduces paper Fig. 6: the worked dual min-cost flow example.
//
//   min x1 + 2x2 + 3x3 + 4x4,  x1-x2>=5, x4-x3>=6, x in [0,10]^4
//
// The paper's solution graph (Fig. 6b) yields x = (5, 0, 0, 6). This bench
// verifies both MCF backends reproduce it and times them on scaled-up
// versions of the same chain structure (google-benchmark).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "mcf/dual_lp.hpp"

using namespace ofl::mcf;

namespace {

DifferentialLp fig6Lp() {
  DifferentialLp lp;
  lp.addVariable(1, 0, 10);
  lp.addVariable(2, 0, 10);
  lp.addVariable(3, 0, 10);
  lp.addVariable(4, 0, 10);
  lp.addConstraint(0, 1, 5);
  lp.addConstraint(3, 2, 6);
  return lp;
}

// Fig. 6 structure replicated k times with fresh variables: same shape,
// bigger instance, used for the timing curves.
DifferentialLp scaledFig6(int copies) {
  DifferentialLp lp;
  for (int k = 0; k < copies; ++k) {
    const int base = 4 * k;
    for (int v = 0; v < 4; ++v) lp.addVariable(v + 1, 0, 10);
    lp.addConstraint(base + 0, base + 1, 5);
    lp.addConstraint(base + 3, base + 2, 6);
  }
  return lp;
}

void BM_Fig6NetworkSimplex(benchmark::State& state) {
  const DifferentialLp lp = scaledFig6(static_cast<int>(state.range(0)));
  const DifferentialLpSolver solver(McfBackend::kNetworkSimplex);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(lp));
  }
}
BENCHMARK(BM_Fig6NetworkSimplex)->Arg(1)->Arg(16)->Arg(64)->Arg(256);

void BM_Fig6Ssp(benchmark::State& state) {
  const DifferentialLp lp = scaledFig6(static_cast<int>(state.range(0)));
  const DifferentialLpSolver solver(McfBackend::kSuccessiveShortestPath);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(lp));
  }
}
BENCHMARK(BM_Fig6Ssp)->Arg(1)->Arg(16)->Arg(64)->Arg(256);

}  // namespace

int main(int argc, char** argv) {
  // Correctness gate first: the bench aborts if the published solution is
  // not reproduced exactly.
  const DifferentialLp lp = fig6Lp();
  std::printf("== Fig. 6 worked example ==\n");
  for (const auto& [backend, name] :
       {std::pair{McfBackend::kNetworkSimplex, "network-simplex"},
        std::pair{McfBackend::kSuccessiveShortestPath, "ssp"},
        std::pair{McfBackend::kCycleCanceling, "cycle-canceling"}}) {
    const DiffLpResult r = DifferentialLpSolver(backend).solve(lp);
    const bool ok = r.feasible && r.x == std::vector<Value>{5, 0, 0, 6} &&
                    r.objective == 29;
    std::printf("%-16s x=(%lld,%lld,%lld,%lld) obj=%lld  [%s]\n", name,
                static_cast<long long>(r.x[0]), static_cast<long long>(r.x[1]),
                static_cast<long long>(r.x[2]), static_cast<long long>(r.x[3]),
                static_cast<long long>(r.objective),
                ok ? "MATCHES PAPER" : "MISMATCH");
    if (!ok) return EXIT_FAILURE;
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
