// Reproduces paper Fig. 6: the worked dual min-cost flow example.
//
//   min x1 + 2x2 + 3x3 + 4x4,  x1-x2>=5, x4-x3>=6, x in [0,10]^4
//
// The paper's solution graph (Fig. 6b) yields x = (5, 0, 0, 6). This bench
// asserts all three MCF backends reproduce it exactly (harness checks) and
// times NetworkSimplex/SSP on scaled-up copies of the same chain structure.
// BENCH_fig6.json.
//
// Usage: bench_fig6 [reps] [--reps N] [--warmup N] [--out F]
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "bench/harness.hpp"
#include "mcf/dual_lp.hpp"

using namespace ofl::mcf;

namespace {

volatile std::int64_t gSink = 0;

DifferentialLp fig6Lp() {
  DifferentialLp lp;
  lp.addVariable(1, 0, 10);
  lp.addVariable(2, 0, 10);
  lp.addVariable(3, 0, 10);
  lp.addVariable(4, 0, 10);
  lp.addConstraint(0, 1, 5);
  lp.addConstraint(3, 2, 6);
  return lp;
}

// Fig. 6 structure replicated k times with fresh variables: same shape,
// bigger instance, used for the timing curves.
DifferentialLp scaledFig6(int copies) {
  DifferentialLp lp;
  for (int k = 0; k < copies; ++k) {
    const int base = 4 * k;
    for (int v = 0; v < 4; ++v) lp.addVariable(v + 1, 0, 10);
    lp.addConstraint(base + 0, base + 1, 5);
    lp.addConstraint(base + 3, base + 2, 6);
  }
  return lp;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ofl::bench;
  BenchArgs args = BenchArgs::parse(argc, argv, "", /*reps=*/3,
                                    /*warmup=*/1);
  if (!args.suite.empty() &&
      args.suite.find_first_not_of("0123456789") == std::string::npos) {
    args.reps = std::max(1, std::atoi(args.suite.c_str()));
    args.suite = "";
  }
  Harness h(args.harnessOptions("fig6"));

  // Correctness gate first: every backend must reproduce the published
  // solution exactly.
  const DifferentialLp lp = fig6Lp();
  std::printf("== Fig. 6 worked example ==\n");
  for (const auto& [backend, name] :
       {std::pair{McfBackend::kNetworkSimplex, "network_simplex"},
        std::pair{McfBackend::kSuccessiveShortestPath, "ssp"},
        std::pair{McfBackend::kCycleCanceling, "cycle_canceling"}}) {
    const DiffLpResult r = DifferentialLpSolver(backend).solve(lp);
    const bool ok = r.feasible && r.x == std::vector<Value>{5, 0, 0, 6} &&
                    r.objective == 29;
    std::printf("%-16s x=(%lld,%lld,%lld,%lld) obj=%lld  [%s]\n", name,
                static_cast<long long>(r.x[0]), static_cast<long long>(r.x[1]),
                static_cast<long long>(r.x[2]), static_cast<long long>(r.x[3]),
                static_cast<long long>(r.objective),
                ok ? "MATCHES PAPER" : "MISMATCH");
    h.check(std::string("matches_paper_") + name, ok);
  }

  // Timing curves over replicated chains.
  std::vector<std::function<void()>> bodies;
  for (const auto& [backend, tag] :
       {std::pair{McfBackend::kNetworkSimplex, "nsx"},
        std::pair{McfBackend::kSuccessiveShortestPath, "ssp"}}) {
    for (const int copies : {1, 16, 64, 256}) {
      Series& s = h.series(std::string("fig6_") + tag + "_" +
                               std::to_string(copies) + "_ns",
                           "ns");
      bodies.push_back([series = &s, backend = backend, copies] {
        const DifferentialLp scaled = scaledFig6(copies);
        const DifferentialLpSolver solver(backend);
        series->record(Harness::nsPerOp([&] {
          gSink = gSink + solver.solve(scaled).objective;
        }));
      });
    }
  }
  h.runInterleaved(bodies);

  return h.finish();
}
