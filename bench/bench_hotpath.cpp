// Hot-path study for the spatial-index geometry kernels: one contest
// benchmark, single-threaded, run twice -- spatialIndex ON (the default
// GridIndex-backed candidate scorer and sizer kernels) and OFF (the
// original brute scans). The profiling registry records per-stage
// thread-seconds for both runs; the key number is the candidate-stage
// speedup (the O(C*N) overlay scoring this PR replaces).
//
// The two runs must produce BIT-IDENTICAL fills -- that is the contract
// that lets the index default on -- so the bench exits nonzero when the
// fill hashes diverge or when the indexed run is slower than brute
// (the CI perf-smoke gate). Results go to BENCH_hotpath.json.
//
// Usage: bench_hotpath [suite] [reps]   (s|b|m|tiny, default m; reps
// default 3 -- each config runs `reps` times and reports its best
// candidate-stage time, which strips scheduler noise the same way for
// both configs. Hashes must agree across every rep.)
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.hpp"
#include "common/prof.hpp"
#include "common/timer.hpp"
#include "contest/benchmark_generator.hpp"
#include "fill/fill_engine.hpp"

using namespace ofl;

namespace {

// Order-sensitive fingerprint of the fill solution (same scheme as
// bench_scaling): identical hashes mean bit-identical fill lists.
std::uint64_t fillHash(const layout::Layout& chip) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a over fill coords
  auto mix = [&h](geom::Coord v) {
    h ^= static_cast<std::uint64_t>(v);
    h *= 1099511628211ull;
  };
  for (int l = 0; l < chip.numLayers(); ++l) {
    for (const geom::Rect& f : chip.layer(l).fills) {
      mix(f.xl);
      mix(f.yl);
      mix(f.xh);
      mix(f.yh);
    }
  }
  return h;
}

struct Run {
  std::string config;
  double wall = 0.0;
  std::size_t fills = 0;
  std::uint64_t hash = 0;
  prof::Snapshot profile;
};

Run runOnce(const layout::Layout& original, const contest::BenchmarkSpec& spec,
            bool spatialIndex, bool warmSizer = true) {
  layout::Layout chip = original;
  fill::FillEngineOptions o;
  o.windowSize = spec.windowSize;
  o.rules = spec.rules;
  o.numThreads = 1;
  o.candidate.spatialIndex = spatialIndex;
  o.sizer.spatialIndex = spatialIndex;
  if (!warmSizer) {
    // Pre-warm-start sizer baseline: cold solves, full per-pivot tree
    // rebuild. Feeds the warm_sizing_speedup series.
    o.sizer.mcfWarmStart = false;
    o.sizer.mcfEarlyExit = false;
    o.sizer.mcfFullRefresh = true;
  }

  prof::Registry::instance().reset();
  Run run;
  run.config = !warmSizer ? "basesizer" : (spatialIndex ? "indexed" : "brute");
  Timer t;
  const fill::FillReport report = fill::FillEngine(o).run(chip);
  run.wall = t.elapsedSeconds();
  run.fills = report.fillCount;
  run.hash = fillHash(chip);
  run.profile = report.profile;
  return run;
}

double stageSeconds(const Run& run, prof::Stage stage) {
  return run.profile.stage(stage).seconds();
}

// Folds one more rep into the best-so-far for its config: every rep must
// produce the same fills (the determinism contract extends across
// repetitions); the rep fastest in the stage that config measures is kept
// as the noise-free measurement.
void keepBest(Run& best, Run next,
              prof::Stage stage = prof::Stage::kCandidates) {
  if (next.hash != best.hash || next.fills != best.fills) {
    std::printf("FAIL: %s run diverged across repetitions\n",
                best.config.c_str());
    std::exit(1);
  }
  if (stageSeconds(next, stage) < stageSeconds(best, stage)) {
    best = std::move(next);
  }
}

}  // namespace

int main(int argc, char** argv) {
  setLogLevel(LogLevel::kWarn);
  const std::string suite = argc > 1 ? argv[1] : "m";
  const int reps = argc > 2 ? std::max(1, std::atoi(argv[2])) : 3;
  const contest::BenchmarkSpec spec = contest::BenchmarkGenerator::spec(suite);
  const layout::Layout original = contest::BenchmarkGenerator::generate(spec);
  std::printf("== Hot-path profile: suite %s, %zu wires, 1 thread, "
              "best of %d ==\n",
              spec.name.c_str(), original.wireCount(), reps);

  // Reps interleave the two configs so a background-load spike lands on
  // both rather than skewing whichever config happened to run during it.
  prof::Registry::instance().setEnabled(true);
  Run brute = runOnce(original, spec, /*spatialIndex=*/false);
  Run indexed = runOnce(original, spec, /*spatialIndex=*/true);
  Run baseSizer = runOnce(original, spec, true, /*warmSizer=*/false);
  for (int r = 1; r < reps; ++r) {
    keepBest(brute, runOnce(original, spec, /*spatialIndex=*/false));
    keepBest(indexed, runOnce(original, spec, /*spatialIndex=*/true));
    keepBest(baseSizer, runOnce(original, spec, true, /*warmSizer=*/false),
             prof::Stage::kSizing);
  }
  prof::Registry::instance().setEnabled(false);

  for (const Run* run : {&brute, &indexed, &baseSizer}) {
    std::printf("\n-- %s (wall %.2fs, %zu fills, hash %llx) --\n",
                run->config.c_str(), run->wall, run->fills,
                static_cast<unsigned long long>(run->hash));
    std::fputs(run->profile.human().c_str(), stdout);
  }

  const bool identical = brute.hash == indexed.hash &&
                         brute.fills == indexed.fills &&
                         brute.hash == baseSizer.hash &&
                         brute.fills == baseSizer.fills;
  const double candidateSpeedup =
      stageSeconds(brute, prof::Stage::kCandidates) /
      std::max(stageSeconds(indexed, prof::Stage::kCandidates), 1e-9);
  const double sizingSpeedup =
      stageSeconds(brute, prof::Stage::kSizing) /
      std::max(stageSeconds(indexed, prof::Stage::kSizing), 1e-9);
  const double warmSizingSpeedup =
      stageSeconds(baseSizer, prof::Stage::kSizing) /
      std::max(stageSeconds(indexed, prof::Stage::kSizing), 1e-9);
  const double totalSpeedup = brute.wall / std::max(indexed.wall, 1e-9);
  std::printf("\nspeedup (brute/indexed): candidates %.2fx, sizing %.2fx, "
              "total %.2fx; warm sizer vs pre-warm baseline %.2fx; "
              "output %s\n",
              candidateSpeedup, sizingSpeedup, totalSpeedup,
              warmSizingSpeedup,
              identical ? "BIT-IDENTICAL" : "DIVERGED (BUG!)");

  std::FILE* json = std::fopen("BENCH_hotpath.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"benchmark\": \"hotpath_spatial_index\",\n"
                 "  \"suite\": \"%s\",\n  \"threads\": 1,\n"
                 "  \"identical\": %s,\n"
                 "  \"candidate_speedup\": %.3f,\n"
                 "  \"sizing_speedup\": %.3f,\n"
                 "  \"warm_sizing_speedup\": %.3f,\n"
                 "  \"total_speedup\": %.3f,\n  \"runs\": [\n",
                 spec.name.c_str(), identical ? "true" : "false",
                 candidateSpeedup, sizingSpeedup, warmSizingSpeedup,
                 totalSpeedup);
    const Run* runs[] = {&brute, &indexed, &baseSizer};
    for (std::size_t i = 0; i < 3; ++i) {
      const Run& r = *runs[i];
      std::fprintf(json,
                   "    {\"config\": \"%s\", \"wall_seconds\": %.4f, "
                   "\"fill_count\": %zu, \"fill_hash\": \"%llx\",\n"
                   "     \"profile\": %s}%s\n",
                   r.config.c_str(), r.wall, r.fills,
                   static_cast<unsigned long long>(r.hash),
                   r.profile.json().c_str(), i + 1 < 3 ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("wrote BENCH_hotpath.json\n");
  }

  if (!identical) return 1;
  if (candidateSpeedup < 1.0) {
    std::printf("FAIL: indexed candidate stage slower than brute\n");
    return 1;
  }
  return 0;
}
