// Hot-path study for the spatial-index geometry kernels: one contest
// benchmark, single-threaded, run per-rep in three configs -- spatialIndex
// ON (the default GridIndex-backed candidate scorer and sizer kernels),
// OFF (the original brute scans), and the pre-warm-start sizer baseline.
// The profiling registry records per-stage thread-seconds for every run;
// the key series is the candidate-stage speedup (the O(C*N) overlay
// scoring the index replaced).
//
// All configs must produce BIT-IDENTICAL fills -- that is the contract
// that lets the index default on -- so the bench exits nonzero when fill
// hashes diverge or when the indexed candidate stage is slower than brute
// on average (the CI perf-smoke gate). The harness interleaves configs
// within each rep and discards shared warmup rounds, so no variant is
// stuck paying the cold-cache start (the old hand-rolled best-of-3 loop
// always charged it to the brute config). Results: BENCH_hotpath.json.
//
// Usage: bench_hotpath [suite] [reps] [--reps N] [--warmup N] [--out F]
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "common/logging.hpp"
#include "common/prof.hpp"
#include "common/timer.hpp"
#include "contest/benchmark_generator.hpp"
#include "fill/fill_engine.hpp"

using namespace ofl;

namespace {

// Order-sensitive fingerprint of the fill solution (same scheme as
// bench_scaling): identical hashes mean bit-identical fill lists.
std::uint64_t fillHash(const layout::Layout& chip) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a over fill coords
  auto mix = [&h](geom::Coord v) {
    h ^= static_cast<std::uint64_t>(v);
    h *= 1099511628211ull;
  };
  for (int l = 0; l < chip.numLayers(); ++l) {
    for (const geom::Rect& f : chip.layer(l).fills) {
      mix(f.xl);
      mix(f.yl);
      mix(f.xh);
      mix(f.yh);
    }
  }
  return h;
}

struct Run {
  double wall = 0.0;
  std::size_t fills = 0;
  std::uint64_t hash = 0;
  prof::Snapshot profile;
};

Run runOnce(const layout::Layout& original, const contest::BenchmarkSpec& spec,
            bool spatialIndex, bool warmSizer = true) {
  layout::Layout chip = original;
  fill::FillEngineOptions o;
  o.windowSize = spec.windowSize;
  o.rules = spec.rules;
  o.numThreads = 1;
  o.candidate.spatialIndex = spatialIndex;
  o.sizer.spatialIndex = spatialIndex;
  if (!warmSizer) {
    // Pre-warm-start sizer baseline: cold solves, full per-pivot tree
    // rebuild. Feeds the warm_sizing_speedup series.
    o.sizer.mcfWarmStart = false;
    o.sizer.mcfEarlyExit = false;
    o.sizer.mcfFullRefresh = true;
  }

  prof::Registry::instance().reset();
  Run run;
  Timer t;
  const fill::FillReport report = fill::FillEngine(o).run(chip);
  run.wall = t.elapsedSeconds();
  run.fills = report.fillCount;
  run.hash = fillHash(chip);
  run.profile = report.profile;
  return run;
}

double stageSeconds(const Run& run, prof::Stage stage) {
  return run.profile.stage(stage).seconds();
}

}  // namespace

int main(int argc, char** argv) {
  setLogLevel(LogLevel::kWarn);
  using namespace ofl::bench;
  const BenchArgs args = BenchArgs::parse(argc, argv, "m", 3);
  const contest::BenchmarkSpec spec =
      contest::BenchmarkGenerator::spec(args.suite);
  const layout::Layout original = contest::BenchmarkGenerator::generate(spec);
  std::printf("== Hot-path profile: suite %s, %zu wires, 1 thread, "
              "%d reps + %d warmup ==\n",
              spec.name.c_str(), original.wireCount(), args.reps,
              args.warmup);

  Harness h(args.harnessOptions("hotpath"));
  h.param("suite", spec.name);
  h.param("threads", static_cast<std::int64_t>(1));

  Series& candBrute = h.series("candidates_brute_s", "s");
  Series& candIndexed = h.series("candidates_indexed_s", "s");
  Series& sizBrute = h.series("sizing_brute_s", "s");
  Series& sizIndexed = h.series("sizing_indexed_s", "s");
  Series& sizBase = h.series("sizing_basesizer_s", "s");
  Series& wallBrute = h.series("wall_brute_s", "s");
  Series& wallIndexed = h.series("wall_indexed_s", "s");

  std::uint64_t refHash = 0;
  std::size_t refFills = 0;
  bool haveRef = false;
  bool identical = true;
  Run lastBrute, lastIndexed, lastBase;
  const auto note = [&](const Run& r) {
    if (!haveRef) {
      refHash = r.hash;
      refFills = r.fills;
      haveRef = true;
    } else if (r.hash != refHash || r.fills != refFills) {
      identical = false;
    }
  };

  prof::Registry::instance().setEnabled(true);
  h.runInterleaved({
      [&] {
        Run r = runOnce(original, spec, /*spatialIndex=*/false);
        note(r);
        candBrute.record(stageSeconds(r, prof::Stage::kCandidates));
        sizBrute.record(stageSeconds(r, prof::Stage::kSizing));
        wallBrute.record(r.wall);
        lastBrute = std::move(r);
      },
      [&] {
        Run r = runOnce(original, spec, /*spatialIndex=*/true);
        note(r);
        candIndexed.record(stageSeconds(r, prof::Stage::kCandidates));
        sizIndexed.record(stageSeconds(r, prof::Stage::kSizing));
        wallIndexed.record(r.wall);
        lastIndexed = std::move(r);
      },
      [&] {
        Run r = runOnce(original, spec, true, /*warmSizer=*/false);
        note(r);
        sizBase.record(stageSeconds(r, prof::Stage::kSizing));
        lastBase = std::move(r);
      },
  });
  prof::Registry::instance().setEnabled(false);

  const struct {
    const char* name;
    const Run* run;
  } views[] = {{"brute", &lastBrute},
               {"indexed", &lastIndexed},
               {"basesizer", &lastBase}};
  for (const auto& v : views) {
    std::printf("\n-- %s (wall %.2fs, %zu fills, hash %llx) --\n", v.name,
                v.run->wall, v.run->fills,
                static_cast<unsigned long long>(v.run->hash));
    std::fputs(v.run->profile.human().c_str(), stdout);
  }
  std::printf("\n");

  Series& candSpeedup =
      h.recordRatio("candidate_speedup", candBrute, candIndexed);
  h.recordRatio("sizing_speedup", sizBrute, sizIndexed);
  h.recordRatio("warm_sizing_speedup", sizBase, sizIndexed);
  h.recordRatio("total_speedup", wallBrute, wallIndexed);
  h.param("fill_count", static_cast<std::int64_t>(refFills));

  h.check("identical", identical);
  const SeriesStats speedup = computeStats(candSpeedup.samples());
  h.check("indexed_not_slower", speedup.mean >= 1.0);
  return h.finish();
}
