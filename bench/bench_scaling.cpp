// Scaling study — the paper's motivating claim (Section 1): "as the
// advancement of technology node ... LP-based method reaches their
// limitation due to problem sizes", citing 160K-variable LPs as the
// runtime bottleneck, while the geometric dual-MCF flow stays fast.
//
// Part 1 grows the die and prints, per size: engine runtime and its
// sizing share, GLOBAL tile-LP runtime (one LP per layer over every tile —
// the classical formulation), and the speedup. The expected shape:
// the global LP's runtime grows superlinearly with the tile count while
// the engine grows ~linearly with the window count, so the speedup widens
// with design size — the paper's Section 1 argument.
//
// Part 2 sweeps the engine's thread count (1/2/4/8) on a fixed contest
// benchmark: per-window independence makes the hot stages embarrassingly
// parallel, and the deterministic merge keeps the fill output bit-identical
// across thread counts (asserted here and in the integration suite).
// Results go to BENCH_parallel.json so later PRs can track the perf
// trajectory machine-readably.
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/tile_lp_filler.hpp"
#include "common/logging.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "contest/benchmark_generator.hpp"
#include "fill/fill_engine.hpp"

using namespace ofl;

namespace {

// Order-sensitive fingerprint of the fill solution; bit-identical output
// across thread counts means identical hashes.
std::uint64_t fillHash(const layout::Layout& chip) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a over fill coords
  auto mix = [&h](geom::Coord v) {
    h ^= static_cast<std::uint64_t>(v);
    h *= 1099511628211ull;
  };
  for (int l = 0; l < chip.numLayers(); ++l) {
    for (const geom::Rect& f : chip.layer(l).fills) {
      mix(f.xl);
      mix(f.yl);
      mix(f.xh);
      mix(f.yh);
    }
  }
  return h;
}

}  // namespace

int main() {
  setLogLevel(LogLevel::kWarn);
  std::printf(
      "== Scaling: geometric dual-MCF engine vs global tile LP ==\n");
  std::printf("%8s %10s %8s | %10s %10s | %12s %10s\n", "windows", "wires",
              "tiles", "engine[s]", "sizing[s]", "global-lp[s]", "speedup");

  double prevEngine = 0.0;
  double prevLp = 0.0;
  for (const int edge : {8, 16, 24, 32, 48, 64}) {
    contest::BenchmarkSpec spec = contest::BenchmarkGenerator::spec("s");
    spec.die = {0, 0, edge * spec.windowSize, edge * spec.windowSize};
    spec.seed = 4000 + static_cast<std::uint64_t>(edge);
    spec.macroCount = std::max(2, edge / 4);
    spec.channelCount = std::max(1, edge / 6);
    const layout::Layout original = contest::BenchmarkGenerator::generate(spec);

    double engineSeconds = 0.0;
    double sizingSeconds = 0.0;
    {
      layout::Layout chip = original;
      fill::FillEngineOptions o;
      o.windowSize = spec.windowSize;
      o.rules = spec.rules;
      o.numThreads = 1;  // part 1 compares single-threaded algorithms
      Timer t;
      const fill::FillReport report = fill::FillEngine(o).run(chip);
      engineSeconds = t.elapsedSeconds();
      sizingSeconds = report.sizingSeconds;
    }
    double tileSeconds = 0.0;
    {
      layout::Layout chip = original;
      baselines::TileLpFiller::Options o;
      o.windowSize = spec.windowSize;
      o.rules = spec.rules;
      o.blockEdge = 0;  // the classical global LP
      Timer t;
      baselines::TileLpFiller(o).fill(chip);
      tileSeconds = t.elapsedSeconds();
    }
    const int tiles = edge * edge * 4;  // tilesPerWindow = 2
    std::printf("%4dx%-4d %10zu %8d | %10.2f %10.2f | %12.2f %9.2fx\n", edge,
                edge, original.wireCount(), tiles, engineSeconds,
                sizingSeconds, tileSeconds,
                tileSeconds / std::max(engineSeconds, 1e-9));
    prevEngine = engineSeconds;
    prevLp = tileSeconds;
  }
  std::printf("\nAt the largest size the global LP costs %.1fx the engine;"
              " the gap keeps widening with design size (the paper's 160K-"
              "variable instances are far past the crossover).\n",
              prevLp / std::max(prevEngine, 1e-9));

  // == Part 2: thread scaling of the parallel per-window pipeline ==
  std::printf("\n== Thread scaling (%d hardware cores) ==\n",
              ThreadPool::hardwareThreads());
  std::printf("%8s | %10s %10s %10s | %12s %18s\n", "threads", "wall[s]",
              "cand[s]", "size[s]", "fills", "hash");

  contest::BenchmarkSpec spec = contest::BenchmarkGenerator::spec("s");
  spec.die = {0, 0, 32 * spec.windowSize, 32 * spec.windowSize};
  spec.seed = 4032;
  spec.macroCount = 8;
  spec.channelCount = 5;
  const layout::Layout original = contest::BenchmarkGenerator::generate(spec);

  struct Row {
    int threads;
    double wall, cand, size;
    std::size_t fills;
    std::uint64_t hash;
  };
  std::vector<Row> rows;
  for (const int threads : {1, 2, 4, 8}) {
    layout::Layout chip = original;
    fill::FillEngineOptions o;
    o.windowSize = spec.windowSize;
    o.rules = spec.rules;
    o.numThreads = threads;
    Timer t;
    const fill::FillReport report = fill::FillEngine(o).run(chip);
    rows.push_back({threads, t.elapsedSeconds(), report.candidateSeconds,
                    report.sizingSeconds, report.fillCount, fillHash(chip)});
    std::printf("%8d | %10.2f %10.2f %10.2f | %12zu %18llx\n", threads,
                rows.back().wall, rows.back().cand, rows.back().size,
                rows.back().fills,
                static_cast<unsigned long long>(rows.back().hash));
  }
  bool identical = true;
  for (const Row& r : rows) {
    identical = identical && r.hash == rows.front().hash &&
                r.fills == rows.front().fills;
  }
  const double base = rows.front().wall;
  std::printf("\nSpeedup at 8 threads: %.2fx; output %s across thread "
              "counts.\n",
              base / std::max(rows.back().wall, 1e-9),
              identical ? "BIT-IDENTICAL" : "DIVERGED (BUG!)");

  std::FILE* json = std::fopen("BENCH_parallel.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"benchmark\": \"parallel_fill_pipeline\",\n"
                 "  \"die_windows\": \"32x32\",\n  \"hardware_threads\": %d,\n"
                 "  \"deterministic\": %s,\n  \"runs\": [\n",
                 ThreadPool::hardwareThreads(), identical ? "true" : "false");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(json,
                   "    {\"threads\": %d, \"wall_seconds\": %.4f, "
                   "\"candidate_seconds\": %.4f, \"sizing_seconds\": %.4f, "
                   "\"fill_count\": %zu, \"speedup\": %.3f, "
                   "\"fill_hash\": \"%llx\"}%s\n",
                   r.threads, r.wall, r.cand, r.size, r.fills,
                   base / std::max(r.wall, 1e-9),
                   static_cast<unsigned long long>(r.hash),
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("wrote BENCH_parallel.json\n");
  }
  return identical ? 0 : 1;
}
