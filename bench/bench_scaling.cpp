// Scaling study — the paper's motivating claim (Section 1): "as the
// advancement of technology node ... LP-based method reaches their
// limitation due to problem sizes", citing 160K-variable LPs as the
// runtime bottleneck, while the geometric dual-MCF flow stays fast.
//
// This bench grows the die and prints, per size: engine runtime and its
// sizing share, GLOBAL tile-LP runtime (one LP per layer over every tile —
// the classical formulation), and the speedup. The expected shape:
// the global LP's runtime grows superlinearly with the tile count while
// the engine grows ~linearly with the window count, so the speedup widens
// with design size — the paper's Section 1 argument.
#include <cstdio>

#include "baselines/tile_lp_filler.hpp"
#include "common/logging.hpp"
#include "common/timer.hpp"
#include "contest/benchmark_generator.hpp"
#include "fill/fill_engine.hpp"

using namespace ofl;

int main() {
  setLogLevel(LogLevel::kWarn);
  std::printf(
      "== Scaling: geometric dual-MCF engine vs global tile LP ==\n");
  std::printf("%8s %10s %8s | %10s %10s | %12s %10s\n", "windows", "wires",
              "tiles", "engine[s]", "sizing[s]", "global-lp[s]", "speedup");

  double prevEngine = 0.0;
  double prevLp = 0.0;
  for (const int edge : {8, 16, 24, 32, 48, 64}) {
    contest::BenchmarkSpec spec = contest::BenchmarkGenerator::spec("s");
    spec.die = {0, 0, edge * spec.windowSize, edge * spec.windowSize};
    spec.seed = 4000 + static_cast<std::uint64_t>(edge);
    spec.macroCount = std::max(2, edge / 4);
    spec.channelCount = std::max(1, edge / 6);
    const layout::Layout original = contest::BenchmarkGenerator::generate(spec);

    double engineSeconds = 0.0;
    double sizingSeconds = 0.0;
    {
      layout::Layout chip = original;
      fill::FillEngineOptions o;
      o.windowSize = spec.windowSize;
      o.rules = spec.rules;
      Timer t;
      const fill::FillReport report = fill::FillEngine(o).run(chip);
      engineSeconds = t.elapsedSeconds();
      sizingSeconds = report.sizingSeconds;
    }
    double tileSeconds = 0.0;
    {
      layout::Layout chip = original;
      baselines::TileLpFiller::Options o;
      o.windowSize = spec.windowSize;
      o.rules = spec.rules;
      o.blockEdge = 0;  // the classical global LP
      Timer t;
      baselines::TileLpFiller(o).fill(chip);
      tileSeconds = t.elapsedSeconds();
    }
    const int tiles = edge * edge * 4;  // tilesPerWindow = 2
    std::printf("%4dx%-4d %10zu %8d | %10.2f %10.2f | %12.2f %9.2fx\n", edge,
                edge, original.wireCount(), tiles, engineSeconds,
                sizingSeconds, tileSeconds,
                tileSeconds / std::max(engineSeconds, 1e-9));
    prevEngine = engineSeconds;
    prevLp = tileSeconds;
  }
  std::printf("\nAt the largest size the global LP costs %.1fx the engine;"
              " the gap keeps widening with design size (the paper's 160K-"
              "variable instances are far past the crossover).\n",
              prevLp / std::max(prevEngine, 1e-9));
  return 0;
}
