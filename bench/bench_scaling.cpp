// Scaling study — the paper's motivating claim (Section 1): "as the
// advancement of technology node ... LP-based method reaches their
// limitation due to problem sizes", citing 160K-variable LPs as the
// runtime bottleneck, while the geometric dual-MCF flow stays fast.
//
// Part 1 grows the die and prints, per size: engine runtime and its
// sizing share, GLOBAL tile-LP runtime (one LP per layer over every tile —
// the classical formulation), and the speedup. The expected shape:
// the global LP's runtime grows superlinearly with the tile count while
// the engine grows ~linearly with the window count, so the speedup widens
// with design size — the paper's Section 1 argument.
//
// Part 2 sweeps the engine's thread count (1/2/4/8) on a fixed contest
// benchmark: per-window independence makes the hot stages embarrassingly
// parallel, and the deterministic merge keeps the fill output bit-identical
// across thread counts (asserted here and in the integration suite).
// Results go to BENCH_parallel.json (harness schema) so later PRs track
// the perf trajectory machine-readably.
//
// Usage: bench_scaling [reps] [--reps N] [--warmup N] [--out F]
//   (default 1 rep + 0 warmup — the sweep itself is minutes long)
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/tile_lp_filler.hpp"
#include "bench/harness.hpp"
#include "common/logging.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "contest/benchmark_generator.hpp"
#include "fill/fill_engine.hpp"

using namespace ofl;

namespace {

// Order-sensitive fingerprint of the fill solution; bit-identical output
// across thread counts means identical hashes.
std::uint64_t fillHash(const layout::Layout& chip) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a over fill coords
  auto mix = [&h](geom::Coord v) {
    h ^= static_cast<std::uint64_t>(v);
    h *= 1099511628211ull;
  };
  for (int l = 0; l < chip.numLayers(); ++l) {
    for (const geom::Rect& f : chip.layer(l).fills) {
      mix(f.xl);
      mix(f.yl);
      mix(f.xh);
      mix(f.yh);
    }
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  setLogLevel(LogLevel::kWarn);
  using namespace ofl::bench;
  BenchArgs args = BenchArgs::parse(argc, argv, "s", /*reps=*/1,
                                    /*warmup=*/0);
  // Legacy `bench_scaling 3` form: a bare number as the first positional
  // is a rep count, not a suite.
  if (!args.suite.empty() &&
      args.suite.find_first_not_of("0123456789") == std::string::npos) {
    args.reps = std::max(1, std::atoi(args.suite.c_str()));
    args.suite = "s";
  }

  Harness h(args.harnessOptions("parallel"));
  h.param("hardware_threads",
          static_cast<std::int64_t>(ThreadPool::hardwareThreads()));
  h.param("die_windows", "32x32");

  const std::vector<int> edges = {8, 16, 24, 32, 48, 64};
  const std::vector<int> threadCounts = {1, 2, 4, 8};

  double lastEngine = 0.0;
  double lastLp = 0.0;
  bool identical = true;
  std::uint64_t refHash = 0;
  std::size_t refFills = 0;
  bool haveRef = false;

  const auto part1 = [&] {
    std::printf(
        "== Scaling: geometric dual-MCF engine vs global tile LP ==\n");
    std::printf("%8s %10s %8s | %10s %10s | %12s %10s\n", "windows", "wires",
                "tiles", "engine[s]", "sizing[s]", "global-lp[s]", "speedup");
    for (const int edge : edges) {
      contest::BenchmarkSpec spec = contest::BenchmarkGenerator::spec("s");
      spec.die = {0, 0, edge * spec.windowSize, edge * spec.windowSize};
      spec.seed = 4000 + static_cast<std::uint64_t>(edge);
      spec.macroCount = std::max(2, edge / 4);
      spec.channelCount = std::max(1, edge / 6);
      const layout::Layout original =
          contest::BenchmarkGenerator::generate(spec);

      double engineSeconds = 0.0;
      double sizingSeconds = 0.0;
      {
        layout::Layout chip = original;
        fill::FillEngineOptions o;
        o.windowSize = spec.windowSize;
        o.rules = spec.rules;
        o.numThreads = 1;  // part 1 compares single-threaded algorithms
        Timer t;
        const fill::FillReport report = fill::FillEngine(o).run(chip);
        engineSeconds = t.elapsedSeconds();
        sizingSeconds = report.sizingSeconds;
      }
      double tileSeconds = 0.0;
      {
        layout::Layout chip = original;
        baselines::TileLpFiller::Options o;
        o.windowSize = spec.windowSize;
        o.rules = spec.rules;
        o.blockEdge = 0;  // the classical global LP
        Timer t;
        baselines::TileLpFiller(o).fill(chip);
        tileSeconds = t.elapsedSeconds();
      }
      const int tiles = edge * edge * 4;  // tilesPerWindow = 2
      std::printf("%4dx%-4d %10zu %8d | %10.2f %10.2f | %12.2f %9.2fx\n",
                  edge, edge, original.wireCount(), tiles, engineSeconds,
                  sizingSeconds, tileSeconds,
                  tileSeconds / std::max(engineSeconds, 1e-9));
      const std::string tag = std::to_string(edge);
      h.series("engine_" + tag + "_s", "s").record(engineSeconds);
      h.series("global_lp_" + tag + "_s", "s").record(tileSeconds);
      h.series("lp_vs_engine_" + tag, "x", Direction::kHigherIsBetter,
               Scale::kRatio)
          .record(tileSeconds / std::max(engineSeconds, 1e-9));
      lastEngine = engineSeconds;
      lastLp = tileSeconds;
    }
    std::printf("\nAt the largest size the global LP costs %.1fx the engine;"
                " the gap keeps widening with design size (the paper's 160K-"
                "variable instances are far past the crossover).\n",
                lastLp / std::max(lastEngine, 1e-9));
  };

  const auto part2 = [&] {
    std::printf("\n== Thread scaling (%d hardware cores) ==\n",
                ThreadPool::hardwareThreads());
    std::printf("%8s | %10s %10s %10s | %12s %18s\n", "threads", "wall[s]",
                "cand[s]", "size[s]", "fills", "hash");
    contest::BenchmarkSpec spec = contest::BenchmarkGenerator::spec("s");
    spec.die = {0, 0, 32 * spec.windowSize, 32 * spec.windowSize};
    spec.seed = 4032;
    spec.macroCount = 8;
    spec.channelCount = 5;
    const layout::Layout original =
        contest::BenchmarkGenerator::generate(spec);
    for (const int threads : threadCounts) {
      layout::Layout chip = original;
      fill::FillEngineOptions o;
      o.windowSize = spec.windowSize;
      o.rules = spec.rules;
      o.numThreads = threads;
      Timer t;
      const fill::FillReport report = fill::FillEngine(o).run(chip);
      const double wall = t.elapsedSeconds();
      const std::uint64_t hash = fillHash(chip);
      std::printf("%8d | %10.2f %10.2f %10.2f | %12zu %18llx\n", threads,
                  wall, report.candidateSeconds, report.sizingSeconds,
                  report.fillCount, static_cast<unsigned long long>(hash));
      if (!haveRef) {
        refHash = hash;
        refFills = report.fillCount;
        haveRef = true;
      } else if (hash != refHash || report.fillCount != refFills) {
        identical = false;
      }
      h.series("wall_t" + std::to_string(threads) + "_s", "s").record(wall);
    }
  };

  h.runInterleaved({part1, part2});

  h.recordRatio("thread_speedup_8", h.series("wall_t1_s", "s"),
                h.series("wall_t8_s", "s"));
  std::printf("\nOutput %s across thread counts.\n",
              identical ? "BIT-IDENTICAL" : "DIVERGED (BUG!)");

  h.check("deterministic", identical);
  return h.finish();
}
