#include "cli/args.hpp"

#include <algorithm>
#include <cstdlib>

namespace ofl::cli {

Args Args::parse(int argc, const char* const* argv) {
  std::vector<std::string> tokens;
  for (int i = 1; i < argc; ++i) tokens.emplace_back(argv[i]);
  return parse(tokens);
}

Args Args::parse(const std::vector<std::string>& tokens) {
  Args args;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::string& tok = tokens[i];
    if (tok.rfind("--", 0) != 0) {
      args.positional_.push_back(tok);
      continue;
    }
    const std::string body = tok.substr(2);
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      args.values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--key value" when the next token is not itself an option; else a
    // bare flag.
    if (i + 1 < tokens.size() && tokens[i + 1].rfind("--", 0) != 0) {
      args.values_[body] = tokens[i + 1];
      ++i;
    } else {
      args.values_[body] = "";
    }
  }
  return args;
}

bool Args::hasFlag(const std::string& key) const {
  return values_.count(key) > 0;
}

std::optional<std::string> Args::get(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Args::getOr(const std::string& key,
                        const std::string& fallback) const {
  return get(key).value_or(fallback);
}

std::optional<long long> Args::getInt(const std::string& key) const {
  const auto v = get(key);
  if (!v.has_value() || v->empty()) return std::nullopt;
  char* end = nullptr;
  const long long parsed = std::strtoll(v->c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return std::nullopt;
  return parsed;
}

long long Args::getIntOr(const std::string& key, long long fallback) const {
  return getInt(key).value_or(fallback);
}

std::optional<double> Args::getDouble(const std::string& key) const {
  const auto v = get(key);
  if (!v.has_value() || v->empty()) return std::nullopt;
  char* end = nullptr;
  const double parsed = std::strtod(v->c_str(), &end);
  if (end == nullptr || *end != '\0') return std::nullopt;
  return parsed;
}

double Args::getDoubleOr(const std::string& key, double fallback) const {
  return getDouble(key).value_or(fallback);
}

long long Args::getIntChecked(const std::string& key,
                              long long fallback) const {
  const auto v = get(key);
  if (!v.has_value()) return fallback;
  const auto parsed = getInt(key);
  if (!parsed.has_value()) {
    throw ArgError(v->empty()
                       ? "--" + key + " expects an integer value"
                       : "--" + key + " expects an integer, got \"" + *v +
                             "\"");
  }
  return *parsed;
}

double Args::getDoubleChecked(const std::string& key, double fallback) const {
  const auto v = get(key);
  if (!v.has_value()) return fallback;
  const auto parsed = getDouble(key);
  if (!parsed.has_value()) {
    throw ArgError(v->empty()
                       ? "--" + key + " expects a numeric value"
                       : "--" + key + " expects a number, got \"" + *v + "\"");
  }
  return *parsed;
}

std::string Args::getChecked(const std::string& key,
                             const std::string& fallback) const {
  const auto v = get(key);
  if (!v.has_value()) return fallback;
  if (v->empty()) throw ArgError("--" + key + " expects a value");
  return *v;
}

std::vector<std::string> Args::unknownKeys(
    const std::vector<std::string>& known) const {
  std::vector<std::string> unknown;
  for (const auto& [key, value] : values_) {
    if (std::find(known.begin(), known.end(), key) == known.end()) {
      unknown.push_back(key);
    }
  }
  return unknown;
}

}  // namespace ofl::cli
