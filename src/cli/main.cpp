// openfill — command-line front end of the OpenFill library.
#include "cli/commands.hpp"

int main(int argc, char** argv) {
  return ofl::cli::run(ofl::cli::Args::parse(argc, argv));
}
