// Minimal command-line argument parser for the openfill CLI.
//
// Supports "--key value", "--key=value" and bare "--flag" forms, plus
// positional arguments. Deliberately tiny: the CLI surface is a handful of
// subcommands, each with a dozen options.
#pragma once

#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace ofl::cli {

/// Thrown by the *Checked getters on malformed option values; the command
/// dispatcher catches it, prints the message and exits with status 2.
struct ArgError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class Args {
 public:
  /// Parses argv[1..). Returns nullopt on malformed input ("--key" at the
  /// end expecting a value is treated as a flag).
  static Args parse(int argc, const char* const* argv);
  static Args parse(const std::vector<std::string>& tokens);

  bool hasFlag(const std::string& key) const;
  std::optional<std::string> get(const std::string& key) const;
  std::string getOr(const std::string& key, const std::string& fallback) const;
  std::optional<long long> getInt(const std::string& key) const;
  long long getIntOr(const std::string& key, long long fallback) const;
  std::optional<double> getDouble(const std::string& key) const;
  double getDoubleOr(const std::string& key, double fallback) const;

  /// Like getIntOr/getDoubleOr, but a PRESENT-yet-malformed value throws
  /// ArgError naming the option instead of silently using the fallback
  /// ("--window 2k" must be an error, not windowSize=2000... or 2).
  long long getIntChecked(const std::string& key, long long fallback) const;
  double getDoubleChecked(const std::string& key, double fallback) const;
  /// Present-with-a-value or fallback; a bare "--key" (no value) throws.
  std::string getChecked(const std::string& key,
                         const std::string& fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Keys that were provided but never queried; used to reject typos.
  std::vector<std::string> unknownKeys(
      const std::vector<std::string>& known) const;

 private:
  std::map<std::string, std::string> values_;  // "" for bare flags
  std::vector<std::string> positional_;
};

}  // namespace ofl::cli
