#include "cli/commands.hpp"

#include <cstdio>

#include "common/memory_usage.hpp"
#include "common/timer.hpp"
#include "contest/benchmark_generator.hpp"
#include "contest/evaluator.hpp"
#include "contest/json_report.hpp"
#include "contest/report.hpp"
#include "baselines/tile_lp_filler.hpp"
#include "baselines/monte_carlo_filler.hpp"
#include "baselines/greedy_filler.hpp"
#include "density/heatmap.hpp"
#include "density/metrics.hpp"
#include "fill/fill_engine.hpp"
#include "gds/gds_reader.hpp"
#include "gds/gds_writer.hpp"
#include "gds/oasis.hpp"
#include "layout/drc_checker.hpp"
#include "layout/gds_compact.hpp"

namespace ofl::cli {
namespace {

layout::DesignRules rulesFrom(const Args& args) {
  layout::DesignRules rules;
  rules.minWidth = args.getIntOr("min-width", 10);
  rules.minSpacing = args.getIntOr("min-spacing", 10);
  rules.minArea = args.getIntOr("min-area", 200);
  rules.maxFillSize = args.getIntOr("max-fill", 300);
  return rules;
}

// Loads a layout from GDS or OFL-OASIS (auto-detected); die from
// --die "xl,yl,xh,yh" or the shape bbox.
bool loadLayout(const Args& args, layout::Layout& out, std::string* error) {
  const auto path = args.get("in");
  if (!path.has_value() || path->empty()) {
    *error = "missing --in <file.gds>";
    return false;
  }
  auto lib = gds::Reader::readFile(*path);
  if (!lib.has_value()) lib = gds::OasisReader::readFile(*path);
  if (!lib.has_value()) {
    *error = "cannot read layout file: " + *path;
    return false;
  }
  int maxLayer = 0;
  geom::Rect bbox;
  for (const auto& cell : lib->cells) {
    for (const auto& b : cell.boundaries) {
      maxLayer = std::max<int>(maxLayer, b.layer);
      bbox = bbox.bboxUnion(geom::Polygon(b.vertices).bbox());
    }
  }
  geom::Rect die = bbox;
  if (const auto dieSpec = args.get("die"); dieSpec.has_value()) {
    long long xl, yl, xh, yh;
    if (std::sscanf(dieSpec->c_str(), "%lld,%lld,%lld,%lld", &xl, &yl, &xh,
                    &yh) != 4) {
      *error = "--die expects xl,yl,xh,yh";
      return false;
    }
    die = {xl, yl, xh, yh};
  }
  if (die.empty()) {
    *error = "layout is empty and no --die given";
    return false;
  }
  out = layout::Layout::fromGds(*lib, die, std::max(maxLayer, 1));
  return true;
}

}  // namespace

std::string usage() {
  return
      "openfill <command> [options]\n"
      "\n"
      "commands:\n"
      "  generate --suite s|b|m|tiny --out FILE.gds\n"
      "      Generate a synthetic benchmark suite (wires only).\n"
      "  fill --in FILE.gds --out FILE.gds [--window N] [--lambda X]\n"
      "       [--eta X] [--iterations N] [--backend ns|ssp|lp] [--compact]\n"
      "       [--threads N]\n"
      "       [--min-width N --min-spacing N --min-area N --max-fill N]\n"
      "      Insert dummy fills; --compact writes fill arrays as AREFs;\n"
      "      --threads 0 (default) uses every hardware core, results are\n"
      "      identical for any thread count.\n"
      "  evaluate --in FILE.gds --suite s|b|m [--window N] [--runtime S]\n"
      "       [--memory MiB]\n"
      "      Score a filled layout with the contest metric.\n"
      "  drc --in FILE.gds [rule options]\n"
      "      Check fills against the design rules.\n"
      "  stats --in FILE.gds\n"
      "      Print shape counts and file statistics.\n"
      "  heatmap --in FILE.gds [--window N] [--layer N] [--csv FILE]\n"
      "      Render a window-density heatmap (ASCII to stdout, or CSV).\n"
      "  compare --in FILE.gds --suite s|b|m [--window N] [--threads N]\n"
      "       [--json FILE]\n"
      "      Run all fillers (3 baselines + engine) and print the score "
      "grid.\n";
}

int run(const Args& args) {
  if (args.positional().empty()) {
    std::fputs(usage().c_str(), stderr);
    return 2;
  }
  const std::string& command = args.positional().front();
  if (command == "generate") return runGenerate(args);
  if (command == "fill") return runFill(args);
  if (command == "evaluate") return runEvaluate(args);
  if (command == "drc") return runDrc(args);
  if (command == "stats") return runStats(args);
  if (command == "heatmap") return runHeatmap(args);
  if (command == "compare") return runCompare(args);
  std::fprintf(stderr, "unknown command: %s\n%s", command.c_str(),
               usage().c_str());
  return 2;
}

int runGenerate(const Args& args) {
  const std::string suite = args.getOr("suite", "s");
  const std::string out = args.getOr("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "generate: missing --out\n");
    return 2;
  }
  const contest::BenchmarkSpec spec = contest::BenchmarkGenerator::spec(suite);
  const layout::Layout chip = contest::BenchmarkGenerator::generate(spec);
  const long long bytes = gds::Writer::writeFile(chip.toGds(), out);
  if (bytes < 0) {
    std::fprintf(stderr, "generate: cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("generated suite %s: %zu wires, %d layers, die %s, %lld bytes "
              "-> %s\n",
              spec.name.c_str(), chip.wireCount(), chip.numLayers(),
              chip.die().str().c_str(), bytes, out.c_str());
  return 0;
}

int runFill(const Args& args) {
  layout::Layout chip({}, 0);
  std::string error;
  if (!loadLayout(args, chip, &error)) {
    std::fprintf(stderr, "fill: %s\n", error.c_str());
    return 2;
  }
  const std::string out = args.getOr("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "fill: missing --out\n");
    return 2;
  }

  fill::FillEngineOptions options;
  options.rules = rulesFrom(args);
  options.windowSize = args.getIntOr("window", 1200);
  options.candidate.lambda = args.getDoubleOr("lambda", options.candidate.lambda);
  options.candidate.gamma = args.getDoubleOr("gamma", options.candidate.gamma);
  options.sizer.eta = args.getDoubleOr("eta", options.sizer.eta);
  options.sizer.iterations =
      static_cast<int>(args.getIntOr("iterations", options.sizer.iterations));
  options.numThreads =
      static_cast<int>(args.getIntOr("threads", options.numThreads));
  const std::string backend = args.getOr("backend", "ns");
  if (backend == "ssp") {
    options.sizer.backend = mcf::McfBackend::kSuccessiveShortestPath;
  } else if (backend == "lp") {
    options.sizer.useLpSolver = true;
  } else if (backend != "ns") {
    std::fprintf(stderr, "fill: unknown --backend %s\n", backend.c_str());
    return 2;
  }

  Timer timer;
  const fill::FillReport report = fill::FillEngine(options).run(chip);
  const gds::Library outLib = args.hasFlag("compact")
                                  ? layout::toCompactGds(chip)
                                  : chip.toGds();
  const std::string format = args.getOr("format", "gds");
  long long bytes = -1;
  if (format == "gds") {
    bytes = gds::Writer::writeFile(outLib, out);
  } else if (format == "oasis") {
    bytes = gds::OasisWriter::writeFile(outLib, out);
  } else {
    std::fprintf(stderr, "fill: unknown --format %s (gds|oasis)\n",
                 format.c_str());
    return 2;
  }
  if (bytes < 0) {
    std::fprintf(stderr, "fill: cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("filled: %zu fills (%zu candidates) in %.2fs "
              "(plan %.2fs, candidates %.2fs, sizing %.2fs), %lld bytes -> %s\n",
              report.fillCount, report.candidateCount, timer.elapsedSeconds(),
              report.planningSeconds, report.candidateSeconds,
              report.sizingSeconds, bytes, out.c_str());
  return 0;
}

int runEvaluate(const Args& args) {
  layout::Layout chip({}, 0);
  std::string error;
  if (!loadLayout(args, chip, &error)) {
    std::fprintf(stderr, "evaluate: %s\n", error.c_str());
    return 2;
  }
  const std::string suite = args.getOr("suite", "s");
  const geom::Coord window = args.getIntOr("window", 1200);
  const contest::Evaluator evaluator(window, contest::scoreTableFor(suite),
                                     rulesFrom(args));
  const contest::RawMetrics raw = evaluator.measure(chip);
  const double runtime = args.getDoubleOr("runtime", 0.0);
  const double memory = args.getDoubleOr("memory", peakMemoryMiB());
  const contest::ScoreBreakdown s = evaluator.score(raw, runtime, memory);

  std::printf("raw: overlay=%.0f variation=%.6f line=%.4f outlier=%.6f "
              "size=%.2fMB fills=%zu drc=%zu\n",
              raw.overlay, raw.variation, raw.line, raw.outlier,
              raw.fileSizeMB, raw.fillCount, raw.drcViolations);
  std::printf("scores: overlay=%.3f variation=%.3f line=%.3f outlier=%.3f "
              "size=%.3f runtime=%.3f memory=%.3f\n",
              s.overlay, s.variation, s.line, s.outlier, s.size, s.runtime,
              s.memory);
  std::printf("testcase quality=%.3f score=%.3f\n", s.quality, s.total);
  return 0;
}

int runDrc(const Args& args) {
  layout::Layout chip({}, 0);
  std::string error;
  if (!loadLayout(args, chip, &error)) {
    std::fprintf(stderr, "drc: %s\n", error.c_str());
    return 2;
  }
  const auto limit =
      static_cast<std::size_t>(args.getIntOr("max-violations", 100));
  const auto violations =
      layout::DrcChecker(rulesFrom(args)).check(chip, limit);
  for (const auto& v : violations) {
    std::printf("VIOLATION %s\n", v.str().c_str());
  }
  std::printf("%zu violation(s)%s\n", violations.size(),
              violations.size() >= limit ? " (capped)" : "");
  return violations.empty() ? 0 : 1;
}

int runStats(const Args& args) {
  layout::Layout chip({}, 0);
  std::string error;
  if (!loadLayout(args, chip, &error)) {
    std::fprintf(stderr, "stats: %s\n", error.c_str());
    return 2;
  }
  std::printf("die: %s  layers: %d\n", chip.die().str().c_str(),
              chip.numLayers());
  for (int l = 0; l < chip.numLayers(); ++l) {
    geom::Area wireArea = 0;
    geom::Area fillArea = 0;
    for (const auto& r : chip.layer(l).wires) wireArea += r.area();
    for (const auto& r : chip.layer(l).fills) fillArea += r.area();
    std::printf("layer %d: %zu wires (%lld DBU^2), %zu fills (%lld DBU^2)\n",
                l + 1, chip.layer(l).wires.size(),
                static_cast<long long>(wireArea), chip.layer(l).fills.size(),
                static_cast<long long>(fillArea));
  }
  const gds::Library flat = chip.toGds();
  std::printf("GDS stream size: %lld bytes; OFL-OASIS: %lld bytes; "
              "compact GDS: %lld bytes\n",
              gds::Writer::streamSize(flat),
              gds::OasisWriter::streamSize(flat),
              gds::Writer::streamSize(layout::toCompactGds(chip)));
  return 0;
}

int runHeatmap(const Args& args) {
  layout::Layout chip({}, 0);
  std::string error;
  if (!loadLayout(args, chip, &error)) {
    std::fprintf(stderr, "heatmap: %s\n", error.c_str());
    return 2;
  }
  const geom::Coord window = args.getIntOr("window", 1200);
  const auto layer = static_cast<int>(args.getIntOr("layer", 1)) - 1;
  if (layer < 0 || layer >= chip.numLayers()) {
    std::fprintf(stderr, "heatmap: layer out of range (1..%d)\n",
                 chip.numLayers());
    return 2;
  }
  const layout::WindowGrid grid(chip.die(), window);
  const density::DensityMap map = density::DensityMap::compute(chip, layer, grid);
  if (const auto csv = args.get("csv"); csv.has_value() && !csv->empty()) {
    if (!density::writeCsv(map, *csv)) {
      std::fprintf(stderr, "heatmap: cannot write %s\n", csv->c_str());
      return 1;
    }
    std::printf("wrote %dx%d density CSV -> %s\n", map.cols(), map.rows(),
                csv->c_str());
    return 0;
  }
  density::HeatmapOptions options;
  options.autoscale = args.hasFlag("autoscale");
  std::fputs(density::renderAscii(map, options).c_str(), stdout);
  const density::DensityMetrics m = density::computeMetrics(map);
  std::printf("layer %d: mean=%.3f sigma=%.4f line=%.3f outlier=%.4f\n",
              layer + 1, m.mean, m.sigma, m.lineHotspot, m.outlierHotspot);
  return 0;
}

int runCompare(const Args& args) {
  layout::Layout original({}, 0);
  std::string error;
  if (!loadLayout(args, original, &error)) {
    std::fprintf(stderr, "compare: %s\n", error.c_str());
    return 2;
  }
  original.clearFills();
  const std::string suite = args.getOr("suite", "s");
  const geom::Coord window = args.getIntOr("window", 1200);
  const layout::DesignRules rules = rulesFrom(args);
  const contest::Evaluator evaluator(window, contest::scoreTableFor(suite),
                                     rules);

  std::vector<contest::ResultRow> rows;
  auto runOne = [&](const std::string& team, auto&& fillFn) {
    layout::Layout chip = original;
    Timer timer;
    fillFn(chip);
    contest::ResultRow row;
    row.design = suite;
    row.team = team;
    row.runtimeSeconds = timer.elapsedSeconds();
    row.memoryMiB = peakMemoryMiB();
    row.raw = evaluator.measure(chip);
    row.scores = evaluator.score(row.raw, row.runtimeSeconds, row.memoryMiB);
    rows.push_back(row);
  };

  runOne("tile-lp", [&](layout::Layout& chip) {
    baselines::TileLpFiller::Options o;
    o.windowSize = window;
    o.rules = rules;
    baselines::TileLpFiller(o).fill(chip);
  });
  runOne("monte-carlo", [&](layout::Layout& chip) {
    baselines::MonteCarloFiller::Options o;
    o.windowSize = window;
    o.rules = rules;
    baselines::MonteCarloFiller(o).fill(chip);
  });
  runOne("greedy", [&](layout::Layout& chip) {
    baselines::GreedyFiller::Options o;
    o.windowSize = window;
    o.rules = rules;
    baselines::GreedyFiller(o).fill(chip);
  });
  runOne("ours", [&](layout::Layout& chip) {
    fill::FillEngineOptions o;
    o.windowSize = window;
    o.rules = rules;
    o.numThreads = static_cast<int>(args.getIntOr("threads", o.numThreads));
    fill::FillEngine(o).run(chip);
  });

  contest::printTable3(rows);
  if (const auto json = args.get("json"); json.has_value() && !json->empty()) {
    if (!contest::writeJson(rows, *json)) {
      std::fprintf(stderr, "compare: cannot write %s\n", json->c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace ofl::cli
