#include "cli/commands.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <system_error>
#include <thread>

#include "common/json_util.hpp"
#include "common/memory_usage.hpp"
#include "common/prof.hpp"
#include "common/timer.hpp"
#include "contest/benchmark_generator.hpp"
#include "contest/evaluator.hpp"
#include "contest/json_report.hpp"
#include "contest/report.hpp"
#include "baselines/tile_lp_filler.hpp"
#include "baselines/monte_carlo_filler.hpp"
#include "baselines/greedy_filler.hpp"
#include "density/heatmap.hpp"
#include "density/metrics.hpp"
#include "fill/fill_engine.hpp"
#include "fill/sharded_engine.hpp"
#include "gds/gds_writer.hpp"
#include "gds/oasis.hpp"
#include "gds/stream_writer.hpp"
#include "layout/drc_checker.hpp"
#include "layout/gds_compact.hpp"
#include "obs/metrics.hpp"
#include "obs/quality.hpp"
#include "obs/trace.hpp"
#include "serve/client.hpp"
#include "serve/config.hpp"
#include "serve/server.hpp"
#include "serve/signals.hpp"
#include "service/fill_service.hpp"
#include "service/layout_io.hpp"
#include "service/manifest.hpp"
#include "verify/fuzzer.hpp"
#include "verify/invariants.hpp"
#include "verify/repro.hpp"

namespace ofl::cli {
namespace {

// Every command body runs under this guard: a malformed option value
// (Args::getIntChecked and friends) surfaces as a one-line error naming
// the option and exit status 2, instead of silently running with a
// half-parsed number.
template <typename Fn>
int guarded(const char* command, Fn&& body) {
  try {
    return body();
  } catch (const ArgError& e) {
    std::fprintf(stderr, "%s: %s\n", command, e.what());
    return 2;
  }
}

// --profile / --profile-json FILE (fill and batch): turn on the hot-path
// registry for this invocation. The registry is process-global, so the CLI
// resets it here and the run's snapshot covers exactly this command.
bool profilingRequested(const Args& args) {
  return args.hasFlag("profile") || args.get("profile-json").has_value();
}

void enableProfiling() {
  prof::Registry::instance().setEnabled(true);
  prof::Registry::instance().reset();
}

// Human table to stderr (keeps stdout parseable), JSON to --profile-json.
int emitProfile(const char* command, const Args& args,
                const prof::Snapshot& snapshot) {
  if (args.hasFlag("profile")) {
    std::fputs(snapshot.human().c_str(), stderr);
  }
  if (const auto path = args.get("profile-json");
      path.has_value() && !path->empty()) {
    FILE* f = std::fopen(path->c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "%s: cannot write %s\n", command, path->c_str());
      return 1;
    }
    std::fputs(snapshot.json().c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
  }
  return 0;
}

// --trace FILE / --metrics-out FILE / --metrics-prom FILE (fill and
// batch): observability collection for this invocation. Like --profile,
// the tracer and metrics registry are process-global, so the CLI clears
// them here and the artifacts cover exactly this command. Enabling
// metrics also enables the prof registry: the snapshot absorbs the stage
// timers as prof.* gauges.
struct ObsRequest {
  std::string tracePath;
  std::string metricsJsonPath;
  std::string metricsPromPath;
  bool tracing() const { return !tracePath.empty(); }
  bool metrics() const {
    return !metricsJsonPath.empty() || !metricsPromPath.empty();
  }
  bool any() const { return tracing() || metrics(); }
};

ObsRequest obsRequestFrom(const Args& args) {
  ObsRequest req;
  req.tracePath = args.getOr("trace", "");
  req.metricsJsonPath = args.getOr("metrics-out", "");
  req.metricsPromPath = args.getOr("metrics-prom", "");
  return req;
}

void enableObservability(const ObsRequest& req) {
  if (req.tracing()) {
    obs::Tracer::instance().clear();
    obs::Tracer::instance().setEnabled(true);
  }
  if (req.metrics()) {
    obs::MetricsRegistry::instance().reset();
    obs::MetricsRegistry::instance().setEnabled(true);
    obs::registerCoreSeries();  // stable snapshot schema: zero > absent
    enableProfiling();
  }
}

bool writeTextFile(const std::string& path, const std::string& content) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok =
      std::fwrite(content.data(), 1, content.size(), f) == content.size();
  return std::fclose(f) == 0 && ok;
}

// Snapshot the metrics registry (prof + process gauges refreshed first)
// into the requested JSON/Prometheus files. Safe to call repeatedly (the
// batch periodic dump overwrites in place).
int writeMetricsSnapshot(const char* command, const ObsRequest& req) {
  obs::absorbProf(prof::Registry::instance().snapshot());
  obs::updateProcessGauges();
  const obs::MetricsSnapshot snap =
      obs::MetricsRegistry::instance().snapshot();
  int rc = 0;
  if (!req.metricsJsonPath.empty() &&
      !writeTextFile(req.metricsJsonPath, snap.json())) {
    std::fprintf(stderr, "%s: cannot write %s\n", command,
                 req.metricsJsonPath.c_str());
    rc = 1;
  }
  if (!req.metricsPromPath.empty() &&
      !writeTextFile(req.metricsPromPath, snap.prometheus())) {
    std::fprintf(stderr, "%s: cannot write %s\n", command,
                 req.metricsPromPath.c_str());
    rc = 1;
  }
  return rc;
}

// Final artifact emission: metrics snapshot, then the trace (collection
// stopped first so the write itself is not traced).
int emitObservability(const char* command, const ObsRequest& req) {
  int rc = 0;
  if (req.metrics()) {
    rc = writeMetricsSnapshot(command, req);
    obs::MetricsRegistry::instance().setEnabled(false);
  }
  if (req.tracing()) {
    obs::Tracer::instance().setEnabled(false);
    if (!obs::Tracer::instance().writeChromeJson(req.tracePath)) {
      std::fprintf(stderr, "%s: cannot write %s\n", command,
                   req.tracePath.c_str());
      rc = 1;
    }
  }
  return rc;
}

layout::DesignRules rulesFrom(const Args& args) {
  // Fallbacks shared with the batch manifest parser, so `openfill fill`
  // and a manifest line agree byte for byte.
  layout::DesignRules rules = service::defaultEngineOptions().rules;
  rules.minWidth = args.getIntChecked("min-width", rules.minWidth);
  rules.minSpacing = args.getIntChecked("min-spacing", rules.minSpacing);
  rules.minArea = args.getIntChecked("min-area", rules.minArea);
  rules.maxFillSize = args.getIntChecked("max-fill", rules.maxFillSize);
  return rules;
}

bool parseDie(const Args& args, std::optional<geom::Rect>* die,
              std::string* error) {
  if (const auto dieSpec = args.get("die"); dieSpec.has_value()) {
    long long xl, yl, xh, yh;
    if (std::sscanf(dieSpec->c_str(), "%lld,%lld,%lld,%lld", &xl, &yl, &xh,
                    &yh) != 4) {
      *error = "--die expects xl,yl,xh,yh";
      return false;
    }
    *die = geom::Rect{xl, yl, xh, yh};
  }
  return true;
}

// Loads a layout from GDS or OFL-OASIS (auto-detected); die from
// --die "xl,yl,xh,yh" or the shape bbox.
bool loadLayout(const Args& args, layout::Layout& out, std::string* error) {
  const auto path = args.get("in");
  if (!path.has_value() || path->empty()) {
    *error = "missing --in <file.gds>";
    return false;
  }
  std::optional<geom::Rect> die;
  if (!parseDie(args, &die, error)) return false;
  return service::loadFlatLayout(*path, die, &out, error);
}

int generateImpl(const Args& args) {
  const std::string suite = args.getOr("suite", "s");
  const std::string out = args.getOr("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "generate: missing --out\n");
    return 2;
  }
  const contest::BenchmarkSpec spec = contest::BenchmarkGenerator::spec(suite);
  if (suite == "xl" || args.hasFlag("stream")) {
    // Contest scale: stream wires straight to disk instead of holding the
    // layout (xl would need gigabytes). Identical bytes to the in-memory
    // path — same generator RNG order, same record encoders.
    gds::StreamWriter writer(out);
    if (!writer.ok()) {
      std::fprintf(stderr, "generate: cannot write %s\n", out.c_str());
      return 1;
    }
    writer.beginCell("TOP");
    std::size_t wires = 0;
    contest::BenchmarkGenerator::generateStream(
        spec, [&](int l, const geom::Rect& wire) {
          writer.addRect(static_cast<std::int16_t>(l + 1), wire);
          ++wires;
        });
    writer.endCell();
    const long long bytes = writer.finish();
    if (bytes < 0) {
      std::fprintf(stderr, "generate: cannot write %s\n", out.c_str());
      return 1;
    }
    std::printf("generated suite %s (streamed): %zu wires, %d layers, die "
                "%s, %lld bytes -> %s\n",
                spec.name.c_str(), wires, spec.numLayers,
                spec.die.str().c_str(), bytes, out.c_str());
    return 0;
  }
  const layout::Layout chip = contest::BenchmarkGenerator::generate(spec);
  const long long bytes = gds::Writer::writeFile(chip.toGds(), out);
  if (bytes < 0) {
    std::fprintf(stderr, "generate: cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("generated suite %s: %zu wires, %d layers, die %s, %lld bytes "
              "-> %s\n",
              spec.name.c_str(), chip.wireCount(), chip.numLayers(),
              chip.die().str().c_str(), bytes, out.c_str());
  return 0;
}

// Engine options from CLI flags, shared by `fill` and `check` so a
// solution verifies under exactly the options that produced it.
bool engineOptionsFrom(const Args& args, fill::FillEngineOptions& options,
                       std::string* error) {
  options = service::defaultEngineOptions();
  options.rules = rulesFrom(args);
  options.windowSize = args.getIntChecked("window", options.windowSize);
  options.candidate.lambda =
      args.getDoubleChecked("lambda", options.candidate.lambda);
  options.candidate.gamma =
      args.getDoubleChecked("gamma", options.candidate.gamma);
  options.sizer.eta = args.getDoubleChecked("eta", options.sizer.eta);
  options.sizer.iterations = static_cast<int>(
      args.getIntChecked("iterations", options.sizer.iterations));
  options.numThreads =
      static_cast<int>(args.getIntChecked("threads", options.numThreads));
  const std::string backend = args.getOr("backend", "ns");
  if (backend == "ssp") {
    options.sizer.backend = mcf::McfBackend::kSuccessiveShortestPath;
  } else if (backend == "lp") {
    options.sizer.useLpSolver = true;
  } else if (backend != "ns") {
    *error = "unknown --backend " + backend;
    return false;
  }
  // Both default ON and byte-identical either way (see FillSizer::Options);
  // the opt-outs exist for A/B timing and the equivalence tests.
  if (args.hasFlag("no-warm-start")) options.sizer.mcfWarmStart = false;
  if (args.hasFlag("no-early-exit")) options.sizer.mcfEarlyExit = false;
  return true;
}

// `fill --json`: one-line machine-readable run summary on stdout (peak
// RSS, wall time, output size, shard/spill figures for --stream).
void printFillJson(const fill::FillReport& report, double seconds,
                   long long bytes, const fill::ShardedReport* sharded) {
  std::ostringstream json;
  json << "{\"fills\": " << report.fillCount
       << ", \"candidates\": " << report.candidateCount
       << ", \"seconds\": " << seconds
       << ", \"output_bytes\": " << bytes
       << ", \"threads\": " << report.threadsUsed
       << ", \"peak_rss_mib\": " << peakMemoryMiB();
  if (sharded != nullptr) {
    json << ", \"stream\": true, \"shards\": " << sharded->shardCount
         << ", \"rows\": " << sharded->rows
         << ", \"spilled_bytes\": " << sharded->spilledBytes
         << ", \"spill_events\": " << sharded->spillEvents
         << ", \"wires\": " << sharded->wireCount
         << ", \"ingest_seconds\": " << sharded->ingestSeconds;
  } else {
    json << ", \"stream\": false";
  }
  json << "}";
  std::printf("%s\n", json.str().c_str());
}

// Run summary into the fill.* metrics series (satellite of the streaming
// PR: peak RSS was previously only visible in contest score runs).
void recordFillMetrics(double seconds, long long bytes) {
  if (!obs::metricsEnabled()) return;
  obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
  reg.gauge("fill.peak_rss_mib").set(peakMemoryMiB());
  reg.gauge("fill.seconds").set(seconds);
  reg.gauge("fill.output_bytes").set(static_cast<double>(bytes));
}

int fillImpl(const Args& args) {
  const std::string out = args.getOr("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "fill: missing --out\n");
    return 2;
  }
  std::string error;
  fill::FillEngineOptions options;
  if (!engineOptionsFrom(args, options, &error)) {
    std::fprintf(stderr, "fill: %s\n", error.c_str());
    return 2;
  }
  const std::string format = args.getOr("format", "gds");
  if (format != "gds" && format != "oasis") {
    std::fprintf(stderr, "fill: unknown --format %s (gds|oasis)\n",
                 format.c_str());
    return 2;
  }

  if (args.hasFlag("stream")) {
    // Bounded-memory path: never loads the layout; byte-identical output.
    if (args.hasFlag("compact")) {
      std::fprintf(stderr, "fill: --compact is not supported with --stream\n");
      return 2;
    }
    if (format == "oasis") {
      std::fprintf(stderr,
                   "fill: --format oasis is not supported with --stream\n");
      return 2;
    }
    const auto in = args.get("in");
    if (!in.has_value() || in->empty()) {
      std::fprintf(stderr, "fill: missing --in <file.gds>\n");
      return 2;
    }
    std::optional<geom::Rect> die;
    if (!parseDie(args, &die, &error)) {
      std::fprintf(stderr, "fill: %s\n", error.c_str());
      return 2;
    }
    fill::ShardedOptions sharded;
    sharded.engine = options;
    sharded.memBudgetMiB = static_cast<std::size_t>(
        args.getIntChecked("mem-budget-mb", 512));
    sharded.rowsPerShard =
        static_cast<int>(args.getIntChecked("rows-per-shard", 0));
    const bool profiling = profilingRequested(args);
    if (profiling) enableProfiling();
    const ObsRequest obsReq = obsRequestFrom(args);
    enableObservability(obsReq);

    Timer timer;
    fill::ShardedReport report;
    if (!fill::ShardedEngine(sharded).runFile(*in, out, die, &report,
                                              &error)) {
      std::fprintf(stderr, "fill: %s\n", error.c_str());
      return 1;
    }
    const double seconds = timer.elapsedSeconds();
    recordFillMetrics(seconds, report.outputBytes);
    if (args.hasFlag("json")) {
      printFillJson(report.fill, seconds, report.outputBytes, &report);
    } else {
      std::printf(
          "filled (streamed): %zu fills (%zu candidates) in %.2fs "
          "(%d shards over %d rows, %.1f MiB spilled, peak RSS %.0f MiB), "
          "%lld bytes -> %s\n",
          report.fill.fillCount, report.fill.candidateCount, seconds,
          report.shardCount, report.rows,
          static_cast<double>(report.spilledBytes) / (1 << 20),
          peakMemoryMiB(), report.outputBytes, out.c_str());
    }
    int rc = 0;
    if (obsReq.any()) rc = emitObservability("fill", obsReq);
    if (profiling) {
      const int prc = emitProfile("fill", args, report.fill.profile);
      if (prc != 0) return prc;
    }
    return rc;
  }

  layout::Layout chip({}, 0);
  if (!loadLayout(args, chip, &error)) {
    std::fprintf(stderr, "fill: %s\n", error.c_str());
    return 2;
  }
  const bool profiling = profilingRequested(args);
  if (profiling) enableProfiling();
  const ObsRequest obsReq = obsRequestFrom(args);
  enableObservability(obsReq);

  Timer timer;
  const fill::FillReport report = fill::FillEngine(options).run(chip);
  const gds::Library outLib = args.hasFlag("compact")
                                  ? layout::toCompactGds(chip)
                                  : chip.toGds();
  long long bytes = -1;
  if (format == "gds") {
    bytes = gds::Writer::writeFile(outLib, out);
  } else {
    bytes = gds::OasisWriter::writeFile(outLib, out);
  }
  if (bytes < 0) {
    std::fprintf(stderr, "fill: cannot write %s\n", out.c_str());
    return 1;
  }
  const double seconds = timer.elapsedSeconds();
  recordFillMetrics(seconds, bytes);
  if (args.hasFlag("json")) {
    printFillJson(report, seconds, bytes, nullptr);
  } else {
    std::printf(
        "filled: %zu fills (%zu candidates) in %.2fs "
        "(plan %.2fs, candidates %.2fs, sizing %.2fs), %lld bytes -> %s\n",
        report.fillCount, report.candidateCount, seconds,
        report.planningSeconds, report.candidateSeconds,
        report.sizingSeconds, bytes, out.c_str());
  }
  int rc = 0;
  if (obsReq.metrics()) {
    // Per-term score decomposition (Eqns. 3-4) into the quality channel,
    // so the metrics artifact explains the score, not just the runtime.
    const std::string suite = args.getOr("suite", "s");
    const contest::Evaluator evaluator(
        options.windowSize, contest::scoreTableFor(suite), options.rules);
    const contest::RawMetrics raw = evaluator.measure(chip);
    const contest::ScoreBreakdown sb =
        evaluator.score(raw, seconds, peakMemoryMiB());
    obs::recordScoreTerms(sb.overlay, sb.variation, sb.line, sb.outlier,
                          sb.size, sb.quality, sb.total);
  }
  if (obsReq.any()) rc = emitObservability("fill", obsReq);
  if (profiling) {
    const int prc = emitProfile("fill", args, report.profile);
    if (prc != 0) return prc;
  }
  return rc;
}

int evaluateImpl(const Args& args) {
  layout::Layout chip({}, 0);
  std::string error;
  if (!loadLayout(args, chip, &error)) {
    std::fprintf(stderr, "evaluate: %s\n", error.c_str());
    return 2;
  }
  const std::string suite = args.getOr("suite", "s");
  const geom::Coord window = args.getIntChecked("window", 1200);
  const contest::Evaluator evaluator(window, contest::scoreTableFor(suite),
                                     rulesFrom(args));
  const contest::RawMetrics raw = evaluator.measure(chip);
  const double runtime = args.getDoubleChecked("runtime", 0.0);
  const double memory = args.getDoubleChecked("memory", peakMemoryMiB());
  const contest::ScoreBreakdown s = evaluator.score(raw, runtime, memory);

  std::printf("raw: overlay=%.0f variation=%.6f line=%.4f outlier=%.6f "
              "size=%.2fMB fills=%zu drc=%zu\n",
              raw.overlay, raw.variation, raw.line, raw.outlier,
              raw.fileSizeMB, raw.fillCount, raw.drcViolations);
  std::printf("scores: overlay=%.3f variation=%.3f line=%.3f outlier=%.3f "
              "size=%.3f runtime=%.3f memory=%.3f\n",
              s.overlay, s.variation, s.line, s.outlier, s.size, s.runtime,
              s.memory);
  std::printf("testcase quality=%.3f score=%.3f\n", s.quality, s.total);
  return 0;
}

int drcImpl(const Args& args) {
  layout::Layout chip({}, 0);
  std::string error;
  if (!loadLayout(args, chip, &error)) {
    std::fprintf(stderr, "drc: %s\n", error.c_str());
    return 2;
  }
  const auto limit =
      static_cast<std::size_t>(args.getIntChecked("max-violations", 100));
  const auto violations =
      layout::DrcChecker(rulesFrom(args)).check(chip, limit);
  for (const auto& v : violations) {
    std::printf("VIOLATION %s\n", v.str().c_str());
  }
  std::printf("%zu violation(s)%s\n", violations.size(),
              violations.size() >= limit ? " (capped)" : "");
  return violations.empty() ? 0 : 1;
}

// Shell-style glob match (`*` any run, `?` any one char) with greedy `*`
// backtracking — enough for `--require 'bench.*'` patterns.
bool globMatch(const std::string& pattern, const std::string& text) {
  std::size_t p = 0, t = 0;
  std::size_t star = std::string::npos, starT = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      starT = t;
    } else if (star != std::string::npos) {
      p = star + 1;
      t = ++starT;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

// `openfill stats --metrics FILE`: pretty-print a --metrics-out snapshot
// and optionally (--require a,b,c) fail when named series are absent —
// CI uses this to assert an observability artifact is complete.
int metricsStatsImpl(const Args& args, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "stats: cannot read %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const auto doc = json::Value::parse(buffer.str());
  if (!doc.has_value() || !doc->isObject()) {
    std::fprintf(stderr, "stats: %s is not a JSON metrics snapshot\n",
                 path.c_str());
    return 2;
  }

  const json::Value* counters = doc->find("counters");
  const json::Value* gauges = doc->find("gauges");
  const json::Value* histograms = doc->find("histograms");
  const auto sectionHas = [](const json::Value* section,
                             const std::string& name) {
    return section != nullptr && section->isObject() &&
           section->find(name) != nullptr;
  };

  if (counters != nullptr && counters->isObject() &&
      !counters->object.empty()) {
    std::printf("counters:\n");
    for (const auto& [name, v] : counters->object) {
      std::printf("  %-36s %14.0f\n", name.c_str(), v.number);
    }
  }
  if (gauges != nullptr && gauges->isObject() && !gauges->object.empty()) {
    std::printf("gauges:\n");
    for (const auto& [name, v] : gauges->object) {
      std::printf("  %-36s %14.6g\n", name.c_str(), v.number);
    }
  }
  if (histograms != nullptr && histograms->isObject() &&
      !histograms->object.empty()) {
    std::printf("%-38s %10s %12s %12s %12s\n", "histogram", "count", "p50",
                "p95", "p99");
    for (const auto& [name, h] : histograms->object) {
      const auto field = [&h](const char* key) {
        const json::Value* v = h.find(key);
        return v != nullptr ? v->number : 0.0;
      };
      std::printf("  %-36s %10.0f %12.6g %12.6g %12.6g\n", name.c_str(),
                  field("count"), field("p50"), field("p95"), field("p99"));
    }
  }

  if (const auto require = args.get("require"); require.has_value()) {
    // Patterns may use shell-style globs: `--require 'bench.*'` asserts
    // at least one series under the bench. prefix exists.
    const auto sectionGlob = [](const json::Value* section,
                                const std::string& pattern) {
      if (section == nullptr || !section->isObject()) return false;
      for (const auto& [name, v] : section->object) {
        (void)v;
        if (globMatch(pattern, name)) return true;
      }
      return false;
    };
    int missing = 0;
    std::stringstream list(*require);
    std::string name;
    while (std::getline(list, name, ',')) {
      if (name.empty()) continue;
      const bool isGlob = name.find_first_of("*?") != std::string::npos;
      const bool found =
          isGlob ? (sectionGlob(counters, name) || sectionGlob(gauges, name) ||
                    sectionGlob(histograms, name))
                 : (sectionHas(counters, name) || sectionHas(gauges, name) ||
                    sectionHas(histograms, name));
      if (!found) {
        std::fprintf(stderr, "stats: missing metric series: %s\n",
                     name.c_str());
        ++missing;
      }
    }
    if (missing > 0) return 1;
  }
  return 0;
}

int statsImpl(const Args& args) {
  if (const auto metricsPath = args.get("metrics");
      metricsPath.has_value() && !metricsPath->empty()) {
    return metricsStatsImpl(args, *metricsPath);
  }
  layout::Layout chip({}, 0);
  std::string error;
  if (!loadLayout(args, chip, &error)) {
    std::fprintf(stderr, "stats: %s\n", error.c_str());
    return 2;
  }
  std::printf("die: %s  layers: %d\n", chip.die().str().c_str(),
              chip.numLayers());
  for (int l = 0; l < chip.numLayers(); ++l) {
    geom::Area wireArea = 0;
    geom::Area fillArea = 0;
    for (const auto& r : chip.layer(l).wires) wireArea += r.area();
    for (const auto& r : chip.layer(l).fills) fillArea += r.area();
    std::printf("layer %d: %zu wires (%lld DBU^2), %zu fills (%lld DBU^2)\n",
                l + 1, chip.layer(l).wires.size(),
                static_cast<long long>(wireArea), chip.layer(l).fills.size(),
                static_cast<long long>(fillArea));
  }
  const gds::Library flat = chip.toGds();
  std::printf("GDS stream size: %lld bytes; OFL-OASIS: %lld bytes; "
              "compact GDS: %lld bytes\n",
              gds::Writer::streamSize(flat),
              gds::OasisWriter::streamSize(flat),
              gds::Writer::streamSize(layout::toCompactGds(chip)));
  return 0;
}

int heatmapImpl(const Args& args) {
  layout::Layout chip({}, 0);
  std::string error;
  if (!loadLayout(args, chip, &error)) {
    std::fprintf(stderr, "heatmap: %s\n", error.c_str());
    return 2;
  }
  const geom::Coord window = args.getIntChecked("window", 1200);
  const auto layer = static_cast<int>(args.getIntChecked("layer", 1)) - 1;
  if (layer < 0 || layer >= chip.numLayers()) {
    std::fprintf(stderr, "heatmap: layer out of range (1..%d)\n",
                 chip.numLayers());
    return 2;
  }
  const layout::WindowGrid grid(chip.die(), window);
  const density::DensityMap map = density::DensityMap::compute(chip, layer, grid);
  if (const auto csv = args.get("csv"); csv.has_value() && !csv->empty()) {
    if (!density::writeCsv(map, *csv)) {
      std::fprintf(stderr, "heatmap: cannot write %s\n", csv->c_str());
      return 1;
    }
    std::printf("wrote %dx%d density CSV -> %s\n", map.cols(), map.rows(),
                csv->c_str());
    return 0;
  }
  density::HeatmapOptions options;
  options.autoscale = args.hasFlag("autoscale");
  std::fputs(density::renderAscii(map, options).c_str(), stdout);
  const density::DensityMetrics m = density::computeMetrics(map);
  std::printf("layer %d: mean=%.3f sigma=%.4f line=%.3f outlier=%.4f\n",
              layer + 1, m.mean, m.sigma, m.lineHotspot, m.outlierHotspot);
  return 0;
}

int compareImpl(const Args& args) {
  layout::Layout original({}, 0);
  std::string error;
  if (!loadLayout(args, original, &error)) {
    std::fprintf(stderr, "compare: %s\n", error.c_str());
    return 2;
  }
  original.clearFills();
  const std::string suite = args.getOr("suite", "s");
  const geom::Coord window = args.getIntChecked("window", 1200);
  const layout::DesignRules rules = rulesFrom(args);
  const contest::Evaluator evaluator(window, contest::scoreTableFor(suite),
                                     rules);

  std::vector<contest::ResultRow> rows;
  auto runOne = [&](const std::string& team, auto&& fillFn) {
    layout::Layout chip = original;
    Timer timer;
    fillFn(chip);
    contest::ResultRow row;
    row.design = suite;
    row.team = team;
    row.runtimeSeconds = timer.elapsedSeconds();
    row.memoryMiB = peakMemoryMiB();
    row.raw = evaluator.measure(chip);
    row.scores = evaluator.score(row.raw, row.runtimeSeconds, row.memoryMiB);
    rows.push_back(row);
  };

  runOne("tile-lp", [&](layout::Layout& chip) {
    baselines::TileLpFiller::Options o;
    o.windowSize = window;
    o.rules = rules;
    baselines::TileLpFiller(o).fill(chip);
  });
  runOne("monte-carlo", [&](layout::Layout& chip) {
    baselines::MonteCarloFiller::Options o;
    o.windowSize = window;
    o.rules = rules;
    baselines::MonteCarloFiller(o).fill(chip);
  });
  runOne("greedy", [&](layout::Layout& chip) {
    baselines::GreedyFiller::Options o;
    o.windowSize = window;
    o.rules = rules;
    baselines::GreedyFiller(o).fill(chip);
  });
  runOne("ours", [&](layout::Layout& chip) {
    fill::FillEngineOptions o;
    o.windowSize = window;
    o.rules = rules;
    o.numThreads = static_cast<int>(args.getIntChecked("threads", o.numThreads));
    fill::FillEngine(o).run(chip);
  });

  contest::printTable3(rows);
  if (const auto json = args.get("json"); json.has_value() && !json->empty()) {
    if (!contest::writeJson(rows, *json)) {
      std::fprintf(stderr, "compare: cannot write %s\n", json->c_str());
      return 1;
    }
  }
  return 0;
}

int batchImpl(const Args& args) {
  const std::string manifestPath = args.getOr("manifest", "");
  if (manifestPath.empty()) {
    std::fprintf(stderr, "batch: missing --manifest <file>\n");
    return 2;
  }
  const std::string outDir = args.getOr("out-dir", "");
  if (outDir.empty()) {
    std::fprintf(stderr, "batch: missing --out-dir <dir>\n");
    return 2;
  }

  service::ManifestParse manifest;
  std::string ioError;
  if (!service::parseManifestFile(manifestPath, &manifest, &ioError)) {
    std::fprintf(stderr, "batch: %s\n", ioError.c_str());
    return 2;
  }
  if (!manifest.ok()) {
    for (const auto& e : manifest.errors) {
      std::fprintf(stderr, "batch: %s:%d: %s\n", manifestPath.c_str(), e.line,
                   e.message.c_str());
    }
    return 2;
  }
  if (manifest.jobs.empty()) {
    std::fprintf(stderr, "batch: manifest %s lists no jobs\n",
                 manifestPath.c_str());
    return 2;
  }

  std::error_code ec;
  std::filesystem::create_directories(outDir, ec);
  if (ec) {
    std::fprintf(stderr, "batch: cannot create --out-dir %s: %s\n",
                 outDir.c_str(), ec.message().c_str());
    return 2;
  }

  const bool profiling = profilingRequested(args);
  if (profiling) enableProfiling();
  const ObsRequest obsReq = obsRequestFrom(args);
  enableObservability(obsReq);
  const double metricsInterval = args.getDoubleChecked("metrics-interval-s", 0.0);

  service::ServiceOptions so;
  so.maxConcurrentJobs =
      static_cast<int>(args.getIntChecked("jobs", so.maxConcurrentJobs));
  so.threadsPerJob =
      static_cast<int>(args.getIntChecked("threads-per-job", so.threadsPerJob));
  so.cacheBytes = static_cast<std::size_t>(
                      std::max(0ll, args.getIntChecked("cache-mb", 64)))
                  << 20;
  so.defaultTimeoutSeconds = args.getDoubleChecked("timeout-s", 0.0);

  // Resolve output paths: manifest --out names are relative to --out-dir,
  // unnamed jobs get a deterministic "job<i>_<stem>" name so repeated
  // inputs in one manifest never collide.
  for (std::size_t i = 0; i < manifest.jobs.size(); ++i) {
    service::JobSpec& job = manifest.jobs[i];
    std::string name = job.outputPath;
    if (name.empty()) {
      const std::string stem =
          std::filesystem::path(job.inputPath).stem().string();
      name = "job" + std::to_string(i) + "_" + stem +
             (job.format == service::OutputFormat::kOasis ? ".oas" : ".gds");
    }
    job.outputPath = (std::filesystem::path(outDir) / name).string();
  }

  // Periodic metrics dump (long batches): rewrite the --metrics-out /
  // --metrics-prom files every --metrics-interval-s seconds so an operator
  // (or a Prometheus file-based scrape) can watch a run in flight.
  std::mutex dumpMutex;
  std::condition_variable dumpCv;
  bool dumpStop = false;
  std::thread dumpThread;
  if (obsReq.metrics() && metricsInterval > 0) {
    dumpThread = std::thread([&] {
      std::unique_lock<std::mutex> lock(dumpMutex);
      while (!dumpCv.wait_for(
          lock, std::chrono::duration<double>(metricsInterval),
          [&] { return dumpStop; })) {
        writeMetricsSnapshot("batch", obsReq);
      }
    });
  }

  // The service lives in a scope so its destructor joins every worker
  // before the final metrics/trace artifacts are written — otherwise a
  // worker could still be between publishing its last result and bumping
  // its completion counters when the snapshot is taken.
  std::vector<service::JobResult> results;
  service::ServiceStats stats;
  int resolvedThreadsPerJob = 0;
  // SIGINT/SIGTERM drain: stop submitting, cancel queued + running jobs
  // through their CancelTokens, then report what did finish and exit
  // nonzero — never kill workers mid-write.
  const bool signalsInstalled = serve::installSignalHandlers(false);
  std::atomic<bool> interrupted{false};
  {
    service::FillService svc(so);
    resolvedThreadsPerJob = svc.threadsPerJob();
    std::atomic<bool> watcherStop{false};
    std::thread watcher;
    if (signalsInstalled) {
      watcher = std::thread([&] {
        while (!watcherStop.load(std::memory_order_acquire)) {
          if (serve::waitSignal(0.2) == serve::SignalKind::kDrain) {
            interrupted.store(true, std::memory_order_release);
            std::fprintf(stderr, "batch: interrupted, draining...\n");
            svc.cancelAll();
            return;
          }
        }
      });
    }
    for (service::JobSpec& job : manifest.jobs) {
      if (interrupted.load(std::memory_order_acquire)) break;
      svc.submit(std::move(job));
    }
    results = svc.waitAll();
    stats = svc.stats();
    watcherStop.store(true, std::memory_order_release);
    if (watcher.joinable()) watcher.join();
  }
  if (signalsInstalled) serve::uninstallSignalHandlers();

  if (dumpThread.joinable()) {
    {
      std::lock_guard<std::mutex> lock(dumpMutex);
      dumpStop = true;
    }
    dumpCv.notify_all();
    dumpThread.join();
  }

  bool allOk = true;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const service::JobResult& r = results[i];
    if (r.status == service::JobStatus::kSucceeded) {
      std::printf("job %zu: ok  %zu fills%s  %.2fs  %lld bytes\n", i,
                  r.fillCount, r.cacheHit ? "  (cache hit)" : "",
                  r.runSeconds, r.outputBytes);
    } else {
      allOk = false;
      std::printf("job %zu: %s  %s\n", i, service::toString(r.status),
                  r.error.c_str());
    }
  }
  std::printf("batch: %llu/%llu jobs ok in %.2fs (%.2f jobs/s, %d workers x "
              "%d threads, cache hit rate %.0f%%)\n",
              static_cast<unsigned long long>(stats.succeeded),
              static_cast<unsigned long long>(stats.submitted),
              stats.wallSeconds, stats.jobsPerSecond, so.maxConcurrentJobs,
              resolvedThreadsPerJob, 100.0 * stats.cacheHitRate);
  if (args.hasFlag("json")) {
    std::printf("%s\n", service::toJson(stats).c_str());
  }
  if (obsReq.any()) {
    service::exportToMetrics(stats);  // batch summary as service.* gauges
    if (emitObservability("batch", obsReq) != 0) return 1;
  }
  if (profiling) {
    const int rc = emitProfile("batch", args, stats.profile);
    if (rc != 0) return rc;
  }
  if (interrupted.load(std::memory_order_acquire)) return 130;
  return allOk ? 0 : 1;
}

int checkImpl(const Args& args) {
  layout::Layout chip({}, 0);
  std::string error;
  if (!loadLayout(args, chip, &error)) {
    std::fprintf(stderr, "check: %s\n", error.c_str());
    return 2;
  }

  verify::InvariantChecker::Options vopts;
  if (!engineOptionsFrom(args, vopts.engine, &error)) {
    std::fprintf(stderr, "check: %s\n", error.c_str());
    return 2;
  }
  vopts.suite = args.getOr("suite", "s");
  vopts.checkDeterminism = !args.hasFlag("skip-determinism");
  vopts.determinismThreads = static_cast<int>(
      args.getIntChecked("determinism-threads", vopts.determinismThreads));
  if (const auto inject = args.get("inject"); inject.has_value()) {
    const auto fault = verify::faultClassFromString(*inject);
    if (!fault.has_value()) {
      std::fprintf(stderr,
                   "check: unknown --inject %s "
                   "(spacing|density|overlay|determinism)\n",
                   inject->c_str());
      return 2;
    }
    vopts.inject = *fault;
  }

  const verify::VerifyReport report =
      verify::InvariantChecker(vopts).check(chip);
  if (args.hasFlag("json")) {
    std::fputs(verify::toJson(report).c_str(), stdout);
  } else {
    for (const verify::CheckResult& c : report.checks) {
      std::printf("  [%s] %-20s %s\n", c.passed ? "PASS" : "FAIL",
                  c.name.c_str(), c.detail.c_str());
    }
    if (report.injected != verify::FaultClass::kNone) {
      std::printf("injected %s fault: %s\n",
                  verify::toString(report.injected).c_str(),
                  report.injectionDetected ? "DETECTED" : "MISSED");
    }
    std::printf("check: %s\n", report.ok() ? "OK" : "FAILED");
  }
  return report.ok() ? 0 : 1;
}

int fuzzImpl(const Args& args) {
  // Replay mode: re-run one minimized repro (e.g. a CI artifact).
  if (const auto replay = args.get("replay"); replay.has_value()) {
    const auto fuzzCase = verify::readReproFile(*replay);
    if (!fuzzCase.has_value()) {
      std::fprintf(stderr, "fuzz: cannot read repro %s\n", replay->c_str());
      return 2;
    }
    const verify::FuzzOutcome outcome = verify::LayoutFuzzer::check(
        *fuzzCase, !args.hasFlag("skip-determinism"));
    if (outcome.passed) {
      std::printf("fuzz: repro %s passes (seed %llu)\n", replay->c_str(),
                  static_cast<unsigned long long>(fuzzCase->seed));
      return 0;
    }
    std::printf("fuzz: repro %s FAILS check %s: %s\n", replay->c_str(),
                outcome.check.c_str(), outcome.detail.c_str());
    return 1;
  }

  verify::FuzzOptions fopts;
  fopts.seeds = static_cast<int>(args.getIntChecked("seeds", 100));
  fopts.firstSeed =
      static_cast<std::uint64_t>(args.getIntChecked("seed-start", 1));
  fopts.maxSeconds = args.getDoubleChecked("minutes", 0.0) * 60.0;
  fopts.corpusDir = args.getOr("corpus", "fuzz-repros");
  fopts.checkDeterminism = !args.hasFlag("skip-determinism");
  fopts.minimize = !args.hasFlag("no-minimize");

  const verify::FuzzStats stats = verify::LayoutFuzzer(fopts).run();
  for (const verify::FuzzFailure& f : stats.failures) {
    std::printf("fuzz: seed %llu FAILS check %s: %s\n",
                static_cast<unsigned long long>(f.seed), f.check.c_str(),
                f.detail.c_str());
    if (!f.reproPath.empty()) {
      std::printf("      minimized %zu -> %zu wires, repro: %s\n",
                  f.originalWireCount, f.minimizedWireCount,
                  f.reproPath.c_str());
    }
  }
  std::printf("fuzz: %d seeds in %.1fs, %zu failure%s\n", stats.executed,
              stats.seconds, stats.failures.size(),
              stats.failures.size() == 1 ? "" : "s");
  return stats.failures.empty() ? 0 : 1;
}

int serveImpl(const Args& args) {
  serve::ServeConfig cfg;
  if (const auto cfgPath = args.get("config");
      cfgPath.has_value() && !cfgPath->empty()) {
    std::vector<std::string> errors;
    const bool loaded = serve::ServeConfig::loadFile(*cfgPath, &cfg, &errors);
    for (const std::string& e : errors) {
      std::fprintf(stderr, "serve: %s: %s\n", cfgPath->c_str(), e.c_str());
    }
    if (!loaded || !errors.empty()) return 2;
  }
  // Flags override the file.
  cfg.host = args.getOr("host", cfg.host);
  cfg.port = static_cast<int>(args.getIntChecked("port", cfg.port));
  cfg.jobs = static_cast<int>(args.getIntChecked("jobs", cfg.jobs));
  cfg.threadsPerJob = static_cast<int>(
      args.getIntChecked("threads-per-job", cfg.threadsPerJob));
  cfg.cacheBytes = static_cast<std::size_t>(args.getIntChecked(
                       "cache-mb",
                       static_cast<long long>(cfg.cacheBytes >> 20)))
                   << 20;
  cfg.cacheDir = args.getOr("cache-dir", cfg.cacheDir);
  cfg.persistentCacheBytes =
      static_cast<std::size_t>(args.getIntChecked(
          "persist-mb",
          static_cast<long long>(cfg.persistentCacheBytes >> 20)))
      << 20;
  cfg.maxConnections = static_cast<int>(
      args.getIntChecked("max-connections", cfg.maxConnections));
  cfg.maxInflightPerClient = static_cast<int>(
      args.getIntChecked("max-inflight", cfg.maxInflightPerClient));
  cfg.defaultTimeoutSeconds =
      args.getDoubleChecked("timeout-s", cfg.defaultTimeoutSeconds);

  serve::Server server(cfg);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "serve: %s\n", error.c_str());
    return 1;
  }
  if (!serve::installSignalHandlers(/*withReload=*/true)) {
    std::fprintf(stderr, "serve: cannot install signal handlers\n");
    return 1;
  }
  std::printf("serve: listening on %s:%d\n", cfg.host.c_str(), server.port());
  if (server.persistentCache() != nullptr) {
    std::printf("serve: persistent cache at %s\n",
                server.persistentCache()->dir().c_str());
  }
  std::fflush(stdout);

  while (true) {
    const serve::SignalKind sig = serve::waitSignal(0.2);
    if (sig == serve::SignalKind::kDrain || server.shutdownRequested()) break;
    if (sig == serve::SignalKind::kReload) {
      const std::string summary = server.reload();
      std::printf("serve: %s\n", summary.c_str());
      std::fflush(stdout);
    }
  }
  std::printf("serve: draining...\n");
  std::fflush(stdout);
  server.drain();
  const serve::Server::Counters c = server.counters();
  std::printf("serve: drained; %llu connections, %llu requests, %llu jobs "
              "(%llu rejected, %llu cancelled by disconnect)\n",
              static_cast<unsigned long long>(c.connectionsAccepted),
              static_cast<unsigned long long>(c.requests),
              static_cast<unsigned long long>(c.jobsSubmitted),
              static_cast<unsigned long long>(c.jobsRejected),
              static_cast<unsigned long long>(c.jobsCancelledByDisconnect));
  serve::uninstallSignalHandlers();
  return 0;
}

int submitImpl(const Args& args) {
  const int port = static_cast<int>(args.getIntChecked("port", 0));
  if (port <= 0) {
    std::fprintf(stderr, "submit: missing --port <port>\n");
    return 2;
  }
  serve::Request req;
  const std::string type = args.getOr("type", "fill");
  const auto parsedType = serve::Request::typeFromName(type);
  if (!parsedType.has_value()) {
    std::fprintf(stderr, "submit: unknown --type %s\n", type.c_str());
    return 2;
  }
  req.type = *parsedType;
  req.client = args.getOr("client", "");
  req.spec = args.getOr("spec", "");
  req.timeoutSeconds = args.getDoubleChecked("timeout-s", 0.0);
  req.suite = args.getOr("suite", "s");
  req.determinism = args.hasFlag("determinism");
  req.jobId = args.getIntChecked("job-id", -1);
  if (const auto changed = args.get("changed"); changed.has_value()) {
    long long v[4];
    if (std::sscanf(changed->c_str(), "%lld,%lld,%lld,%lld", &v[0], &v[1],
                    &v[2], &v[3]) != 4) {
      std::fprintf(stderr, "submit: --changed expects xl,yl,xh,yh\n");
      return 2;
    }
    req.changed = geom::Rect{v[0], v[1], v[2], v[3]};
    req.hasChanged = true;
  }

  serve::Client client(args.getOr("host", "127.0.0.1"), port,
                       args.getDoubleChecked("connect-timeout-s", 30.0));
  if (!client.connected()) {
    std::fprintf(stderr, "submit: %s\n", client.error().c_str());
    return 1;
  }
  const auto resp = client.call(req);
  if (!resp.has_value()) {
    std::fprintf(stderr, "submit: %s\n", client.error().c_str());
    return 1;
  }
  std::printf("%s\n", resp->raw.c_str());
  return resp->ok ? 0 : 1;
}

}  // namespace

std::string usage() {
  return
      "openfill <command> [options]\n"
      "\n"
      "commands:\n"
      "  generate --suite s|b|m|xl|tiny --out FILE.gds [--stream]\n"
      "      Generate a synthetic benchmark suite (wires only). --stream\n"
      "      (implied by xl, ~2M+ wires) writes rects as they are\n"
      "      generated instead of building the layout in memory —\n"
      "      identical bytes either way.\n"
      "  fill --in FILE.gds --out FILE.gds [--window N] [--lambda X]\n"
      "       [--eta X] [--iterations N] [--backend ns|ssp|lp] [--compact]\n"
      "       [--no-warm-start] [--no-early-exit] [--json]\n"
      "       [--stream] [--mem-budget-mb N] [--rows-per-shard N]\n"
      "       [--threads N] [--profile] [--profile-json FILE]\n"
      "       [--trace FILE] [--metrics-out FILE] [--metrics-prom FILE]\n"
      "       [--min-width N --min-spacing N --min-area N --max-fill N]\n"
      "      Insert dummy fills; --compact writes fill arrays as AREFs;\n"
      "      --stream runs the bounded-memory window-sharded pipeline\n"
      "      (byte-identical output; peak RSS targets --mem-budget-mb,\n"
      "      default 512; incompatible with --compact/--format oasis);\n"
      "      --json prints a machine-readable summary (incl. peak RSS);\n"
      "      --threads 0 (default) uses every hardware core, results are\n"
      "      identical for any thread count. Sizer solves warm-start and\n"
      "      early-exit by default (byte-identical, faster; the --no-*\n"
      "      opt-outs are for A/B timing). --profile prints the hot-path\n"
      "      stage table (thread-seconds) to stderr; --profile-json writes\n"
      "      the same snapshot as JSON (schema: docs/architecture.md).\n"
      "      --trace writes a Chrome trace-event JSON (open in Perfetto);\n"
      "      --metrics-out / --metrics-prom write the unified metrics\n"
      "      snapshot (stage timers, per-window quality telemetry, score\n"
      "      decomposition, peak RSS) as JSON / Prometheus text.\n"
      "  evaluate --in FILE.gds --suite s|b|m [--window N] [--runtime S]\n"
      "       [--memory MiB]\n"
      "      Score a filled layout with the contest metric.\n"
      "  drc --in FILE.gds [rule options]\n"
      "      Check fills against the design rules.\n"
      "  stats --in FILE.gds\n"
      "      Print shape counts and file statistics.\n"
      "  stats --metrics FILE [--require name,name,...]\n"
      "      Pretty-print a --metrics-out snapshot; --require exits 1 if\n"
      "      any named series is missing (CI artifact check). Names may\n"
      "      use shell globs: --require 'bench.*' asserts the prefix is\n"
      "      populated.\n"
      "  heatmap --in FILE.gds [--window N] [--layer N] [--csv FILE]\n"
      "      Render a window-density heatmap (ASCII to stdout, or CSV).\n"
      "  compare --in FILE.gds --suite s|b|m [--window N] [--threads N]\n"
      "       [--json FILE]\n"
      "      Run all fillers (3 baselines + engine) and print the score "
      "grid.\n"
      "  batch --manifest FILE --out-dir DIR [--jobs N] [--threads-per-job M]\n"
      "       [--cache-mb K] [--timeout-s S] [--json] [--profile]\n"
      "       [--profile-json FILE] [--trace FILE] [--metrics-out FILE]\n"
      "       [--metrics-prom FILE] [--metrics-interval-s S]\n"
      "      Run a manifest of fill jobs (one per line: input path + fill\n"
      "      options) with N concurrent jobs over a shared result cache;\n"
      "      outputs are byte-identical to sequential `openfill fill` runs\n"
      "      for any --jobs/--threads-per-job setting. --profile/-json\n"
      "      report hot-path stages aggregated over every job (and appear\n"
      "      under \"profile\" in --json output). --trace/--metrics-out\n"
      "      work as for fill, with spans tagged by job id;\n"
      "      --metrics-interval-s rewrites the metrics files periodically\n"
      "      while the batch runs.\n"
      "  check --in FILE.gds --suite s|b|m [--json] [--skip-determinism]\n"
      "       [--inject spacing|density|overlay|determinism]\n"
      "       [engine options as for fill]\n"
      "      Verify a fill solution against every invariant: fill-region\n"
      "      containment, DRC, planned density bounds, GDS/OASIS round-trip\n"
      "      stability, independent metric/score oracles, and thread/cache\n"
      "      determinism. --inject corrupts the solution (or comparison)\n"
      "      and exits 0 only if the targeted violation class is caught.\n"
      "  fuzz [--seeds N] [--seed-start S] [--minutes M] [--corpus DIR]\n"
      "       [--skip-determinism] [--no-minimize] [--replay FILE.repro]\n"
      "      Run the seeded random-layout fuzzer over the full\n"
      "      fill->evaluate pipeline; failures are shrunk to minimal\n"
      "      repros in DIR (default fuzz-repros). --replay re-runs one\n"
      "      repro file and reports its verdict.\n"
      "  serve --port P [--host H] [--config FILE] [--jobs N]\n"
      "       [--threads-per-job M] [--cache-mb K] [--cache-dir DIR]\n"
      "       [--persist-mb K] [--max-connections N] [--max-inflight N]\n"
      "       [--timeout-s S]\n"
      "      Run the fill daemon: accepts fill/eco/check jobs from\n"
      "      concurrent clients over a length-prefixed JSON protocol\n"
      "      (frame format: docs/architecture.md). --port 0 binds an\n"
      "      ephemeral port (printed on stdout). --cache-dir persists the\n"
      "      result cache across restarts (integrity-checked; corrupt\n"
      "      entries quarantined). SIGTERM/SIGINT drain gracefully (finish\n"
      "      in-flight jobs, exit 0); SIGHUP or a reload request re-reads\n"
      "      --config.\n"
      "  submit --port P [--host H] [--type fill|eco|check|ping|stats|\n"
      "       metrics|metrics-json|trace|reload|shutdown]\n"
      "       [--spec \"in.gds --out out.gds [fill options]\"]\n"
      "       [--changed xl,yl,xh,yh] [--client NAME] [--timeout-s S]\n"
      "       [--suite s|b|m] [--determinism] [--job-id N]\n"
      "      Send one request to a running daemon and print the JSON\n"
      "      response; exits 0 only when the server reports ok. --spec\n"
      "      uses the batch manifest line syntax, so a served job is\n"
      "      byte-identical to the matching `openfill fill` run.\n"
      "  bench-report --dir DIR [--out FILE] [--html] [--threshold P]\n"
      "      Render a trend table over a directory of accumulated\n"
      "      BENCH_*.json artifacts (oldest run per benchmark/suite is the\n"
      "      baseline), flagging series whose CI excludes the baseline\n"
      "      mean. Markdown to stdout by default; --html for HTML.\n"
      "  bench-compare BASELINE.json CURRENT.json [--threshold P]\n"
      "       [--fail-on-regression]\n"
      "      Compare two benchmark artifacts; a series regresses when its\n"
      "      mean moved > P (default 0.05) in the worse direction AND the\n"
      "      current CI excludes the baseline mean. Wall-clock series are\n"
      "      skipped across differing machines; ratio series always gate.\n"
      "      --fail-on-regression exits 1 on any regression or missing\n"
      "      series (otherwise the verdict is informational, exit 0).\n";
}

int run(const Args& args) {
  if (args.positional().empty()) {
    std::fputs(usage().c_str(), stderr);
    return 2;
  }
  const std::string& command = args.positional().front();
  if (command == "generate") return runGenerate(args);
  if (command == "fill") return runFill(args);
  if (command == "evaluate") return runEvaluate(args);
  if (command == "drc") return runDrc(args);
  if (command == "stats") return runStats(args);
  if (command == "heatmap") return runHeatmap(args);
  if (command == "compare") return runCompare(args);
  if (command == "batch") return runBatch(args);
  if (command == "check") return runCheck(args);
  if (command == "fuzz") return runFuzz(args);
  if (command == "serve") return runServe(args);
  if (command == "submit") return runSubmit(args);
  if (command == "bench-report") return runBenchReport(args);
  if (command == "bench-compare") return runBenchCompare(args);
  std::fprintf(stderr, "unknown command: %s\n%s", command.c_str(),
               usage().c_str());
  return 2;
}

int runGenerate(const Args& args) {
  return guarded("generate", [&] { return generateImpl(args); });
}
int runFill(const Args& args) {
  return guarded("fill", [&] { return fillImpl(args); });
}
int runEvaluate(const Args& args) {
  return guarded("evaluate", [&] { return evaluateImpl(args); });
}
int runDrc(const Args& args) {
  return guarded("drc", [&] { return drcImpl(args); });
}
int runStats(const Args& args) {
  return guarded("stats", [&] { return statsImpl(args); });
}
int runHeatmap(const Args& args) {
  return guarded("heatmap", [&] { return heatmapImpl(args); });
}
int runCompare(const Args& args) {
  return guarded("compare", [&] { return compareImpl(args); });
}
int runBatch(const Args& args) {
  return guarded("batch", [&] { return batchImpl(args); });
}
int runCheck(const Args& args) {
  return guarded("check", [&] { return checkImpl(args); });
}
int runFuzz(const Args& args) {
  return guarded("fuzz", [&] { return fuzzImpl(args); });
}
int runServe(const Args& args) {
  return guarded("serve", [&] { return serveImpl(args); });
}
int runSubmit(const Args& args) {
  return guarded("submit", [&] { return submitImpl(args); });
}

}  // namespace ofl::cli
