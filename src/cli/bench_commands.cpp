// `openfill bench-report` / `bench-compare`: the CLI surfaces over the
// BENCH_*.json artifacts every bench_* binary emits (bench/report.hpp has
// the schema and the gating rules).
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench/report.hpp"
#include "cli/commands.hpp"

namespace ofl::cli {
namespace {

int benchCompareImpl(const Args& args) {
  const auto& pos = args.positional();
  // pos[0] is the subcommand name itself.
  if (pos.size() < 3) {
    std::fprintf(stderr,
                 "bench-compare: usage: openfill bench-compare "
                 "BASELINE.json CURRENT.json [--threshold P] "
                 "[--fail-on-regression]\n");
    return 2;
  }
  const double threshold = args.getDoubleChecked("threshold", 0.05);
  if (threshold < 0.0) {
    std::fprintf(stderr, "bench-compare: --threshold must be >= 0\n");
    return 2;
  }
  bench::BenchDoc baseline;
  bench::BenchDoc current;
  std::string error;
  if (!bench::BenchDoc::load(pos[1], baseline, error) ||
      !bench::BenchDoc::load(pos[2], current, error)) {
    std::fprintf(stderr, "bench-compare: %s\n", error.c_str());
    return 2;
  }
  if (baseline.benchmark != current.benchmark) {
    std::fprintf(stderr,
                 "bench-compare: artifacts are from different benchmarks "
                 "(%s vs %s)\n",
                 baseline.benchmark.c_str(), current.benchmark.c_str());
    return 2;
  }
  const bench::CompareResult result =
      bench::compare(baseline, current, threshold);
  std::fputs(bench::renderCompareText(baseline, current, result).c_str(),
             stdout);
  if (args.hasFlag("fail-on-regression") &&
      (result.hasRegression() || result.checksFailed)) {
    return 1;
  }
  return 0;
}

int benchReportImpl(const Args& args) {
  const std::string dir = args.getOr("dir", ".");
  const double threshold = args.getDoubleChecked("threshold", 0.05);
  const bool html = args.hasFlag("html");

  std::vector<std::string> paths;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) == 0 && name.size() > 5 &&
        name.substr(name.size() - 5) == ".json") {
      paths.push_back(entry.path().string());
    }
  }
  if (ec) {
    std::fprintf(stderr, "bench-report: cannot read %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    return 2;
  }
  if (paths.empty()) {
    std::fprintf(stderr, "bench-report: no BENCH_*.json under %s\n",
                 dir.c_str());
    return 2;
  }
  std::sort(paths.begin(), paths.end());

  std::vector<bench::BenchDoc> docs;
  for (const std::string& path : paths) {
    bench::BenchDoc doc;
    std::string error;
    if (!bench::BenchDoc::load(path, doc, error)) {
      std::fprintf(stderr, "bench-report: skipping %s\n", error.c_str());
      continue;
    }
    docs.push_back(std::move(doc));
  }
  if (docs.empty()) {
    std::fprintf(stderr, "bench-report: no parseable artifacts under %s\n",
                 dir.c_str());
    return 2;
  }

  const std::string report =
      bench::renderTrendReport(std::move(docs), threshold, html);
  if (const auto out = args.get("out"); out.has_value()) {
    std::ofstream f(*out);
    if (!f) {
      std::fprintf(stderr, "bench-report: cannot write %s\n", out->c_str());
      return 2;
    }
    f << report;
    std::printf("bench-report: wrote %s\n", out->c_str());
  } else {
    std::fputs(report.c_str(), stdout);
  }
  return 0;
}

}  // namespace

int runBenchReport(const Args& args) {
  try {
    return benchReportImpl(args);
  } catch (const ArgError& e) {
    std::fprintf(stderr, "bench-report: %s\n", e.what());
    return 2;
  }
}

int runBenchCompare(const Args& args) {
  try {
    return benchCompareImpl(args);
  } catch (const ArgError& e) {
    std::fprintf(stderr, "bench-compare: %s\n", e.what());
    return 2;
  }
}

}  // namespace ofl::cli
