// openfill CLI subcommands, exposed as functions so tests can drive them
// without spawning processes.
//
//   openfill generate --suite s --out wires.gds
//   openfill fill     --in wires.gds --out filled.gds [engine options]
//   openfill evaluate --in filled.gds --suite s [--runtime S] [--json]
//   openfill drc      --in filled.gds [rule options]
//   openfill stats    --in layout.gds
//   openfill heatmap  --in layout.gds [--layer N] [--csv FILE]
//   openfill compare  --in wires.gds --suite s [--json FILE]
//   openfill batch    --manifest jobs.txt --out-dir DIR [--jobs N]
//   openfill check    --in filled.gds --suite s [--json] [--inject CLASS]
//   openfill fuzz     [--seeds N] [--minutes M] [--corpus DIR]
//   openfill serve    --port P [--config FILE] [--cache-dir DIR]
//   openfill submit   --port P --type fill --spec "wires.gds --out f.gds"
//   openfill bench-report  --dir DIR [--html] [--out FILE]
//   openfill bench-compare BASE.json CUR.json --fail-on-regression
//
// Malformed numeric option values are hard errors: the command prints a
// message naming the option and exits with status 2 (Args::getIntChecked).
#pragma once

#include <string>

#include "cli/args.hpp"

namespace ofl::cli {

/// Dispatches to the subcommand named by the first positional argument.
/// Returns a process exit code; all output goes to stdout/stderr.
int run(const Args& args);

int runGenerate(const Args& args);
int runFill(const Args& args);
int runEvaluate(const Args& args);
int runDrc(const Args& args);
int runStats(const Args& args);
int runHeatmap(const Args& args);
int runCompare(const Args& args);
int runBatch(const Args& args);
int runCheck(const Args& args);
int runFuzz(const Args& args);
int runServe(const Args& args);
int runSubmit(const Args& args);
int runBenchReport(const Args& args);   // cli/bench_commands.cpp
int runBenchCompare(const Args& args);  // cli/bench_commands.cpp

/// Usage text.
std::string usage();

}  // namespace ofl::cli
