// Chunked GDSII stream reader.
//
// Parses records from a bounded sliding buffer (gds/byte_source.hpp) and
// reports shapes through an event sink, so arbitrarily large inputs are
// read with O(record) memory instead of O(file). Two consumers share the
// machinery:
//   - Reader::readFile builds a full Library through LibraryCollector
//     (the non-streamed path no longer slurps the file);
//   - fill::ShardedEngine routes boundaries straight into per-window-row
//     spools without materializing a Layout at all.
//
// The record state machine mirrors Reader::parse (same skipped unknown
// records, same closing-vertex strip, same malformed-input rejections);
// the StreamReader-vs-Reader property test pins the equivalence.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "gds/byte_source.hpp"
#include "gds/gds_records.hpp"
#include "gds/gds_writer.hpp"

namespace ofl::gds {

/// Pull-based record source: yields (tag, payload) pairs from a bounded
/// buffer. Payload spans are valid until the next next() call.
class RecordStream {
 public:
  struct Options {
    std::size_t chunkBytes = 256 * 1024;
    /// Upper bound on one record (header + payload). GDSII length fields
    /// are 16-bit so 65535 always suffices; tests lower it to exercise
    /// the oversized-record rejection.
    std::size_t maxRecordBytes = 65535;
  };

  enum class Status { kRecord, kEnd, kError };

  explicit RecordStream(const std::string& path);
  RecordStream(const std::string& path, const Options& options);

  /// kRecord: tag/payload filled. kEnd: clean end of file. kError: IO or
  /// framing failure, error() explains.
  Status next(RecordTag& tag, std::span<const std::uint8_t>& payload);

  const std::string& error() const { return error_; }

 private:
  ByteSource source_;
  std::size_t maxRecordBytes_;
  std::size_t pendingConsume_ = 0;  // previous record, consumed lazily
  std::string error_;
};

/// Event sink for StreamReader::scan. Default implementations ignore the
/// event, so consumers override only what they need.
class StreamEvents {
 public:
  virtual ~StreamEvents() = default;
  /// Library name and UNITS, reported as the records arrive.
  virtual void onLibraryName(const std::string& /*name*/) {}
  virtual void onUnits(double /*userUnitsPerDbu*/, double /*metersPerDbu*/) {}
  /// A structure begins (BGNSTR); its name follows via onCellName.
  virtual void onBeginCell() {}
  virtual void onCellName(const std::string& /*name*/) {}
  /// Completed elements (at ENDEL / structure end / next element).
  virtual void onBoundary(const Boundary& /*b*/) {}
  virtual void onSref(const Sref& /*s*/) {}
  virtual void onAref(const Aref& /*a*/) {}
  virtual void onEndCell() {}
};

class StreamReader {
 public:
  using Options = RecordStream::Options;

  /// Scans `path`, firing events in stream order. Returns false (with
  /// `*error` set when non-null) on IO failure or malformed input — the
  /// same inputs Reader::parse rejects.
  static bool scan(const std::string& path, StreamEvents& events,
                   std::string* error, const Options& options = {});
};

/// StreamEvents sink that assembles a full Library (Reader::readFile's
/// backing store; also used by the stream-vs-batch equivalence tests).
class LibraryCollector : public StreamEvents {
 public:
  void onLibraryName(const std::string& name) override { lib_.name = name; }
  void onUnits(double uu, double mu) override {
    lib_.userUnitsPerDbu = uu;
    lib_.metersPerDbu = mu;
  }
  void onBeginCell() override { lib_.cells.emplace_back(); }
  void onCellName(const std::string& name) override {
    if (!lib_.cells.empty()) lib_.cells.back().name = name;
  }
  void onBoundary(const Boundary& b) override {
    if (!lib_.cells.empty()) lib_.cells.back().boundaries.push_back(b);
  }
  void onSref(const Sref& s) override {
    if (!lib_.cells.empty()) lib_.cells.back().srefs.push_back(s);
  }
  void onAref(const Aref& a) override {
    if (!lib_.cells.empty()) lib_.cells.back().arefs.push_back(a);
  }

  Library& library() { return lib_; }
  Library takeLibrary() { return std::move(lib_); }

 private:
  Library lib_;
};

}  // namespace ofl::gds
