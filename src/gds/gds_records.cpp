#include "gds/gds_records.hpp"

#include <cmath>

namespace ofl::gds {

void putU16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

void putI32(std::vector<std::uint8_t>& out, std::int32_t v) {
  const auto u = static_cast<std::uint32_t>(v);
  out.push_back(static_cast<std::uint8_t>(u >> 24));
  out.push_back(static_cast<std::uint8_t>((u >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((u >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>(u & 0xFF));
}

std::uint16_t getU16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

std::int32_t getI32(const std::uint8_t* p) {
  const std::uint32_t u = (static_cast<std::uint32_t>(p[0]) << 24) |
                          (static_cast<std::uint32_t>(p[1]) << 16) |
                          (static_cast<std::uint32_t>(p[2]) << 8) |
                          static_cast<std::uint32_t>(p[3]);
  return static_cast<std::int32_t>(u);
}

std::uint64_t encodeReal8(double value) {
  if (value == 0.0) return 0;
  std::uint64_t sign = 0;
  if (value < 0) {
    sign = 1ull << 63;
    value = -value;
  }
  // Normalize mantissa into [1/16, 1) with a base-16 exponent.
  int exponent = 0;
  while (value >= 1.0) {
    value /= 16.0;
    ++exponent;
  }
  while (value < 1.0 / 16.0) {
    value *= 16.0;
    --exponent;
  }
  const auto mantissa =
      static_cast<std::uint64_t>(std::round(value * std::pow(2.0, 56)));
  return sign | (static_cast<std::uint64_t>(exponent + 64) << 56) | mantissa;
}

double decodeReal8(std::uint64_t bits) {
  if (bits == 0) return 0.0;
  const bool negative = (bits >> 63) != 0;
  const int exponent = static_cast<int>((bits >> 56) & 0x7F) - 64;
  const std::uint64_t mantissa = bits & 0x00FFFFFFFFFFFFFFull;
  double value = static_cast<double>(mantissa) / std::pow(2.0, 56);
  value *= std::pow(16.0, exponent);
  return negative ? -value : value;
}

}  // namespace ofl::gds
