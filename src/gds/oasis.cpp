#include "gds/oasis.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace ofl::gds {
namespace {

constexpr char kMagic[] = "OFLOASIS1\n";
constexpr std::size_t kMagicLen = sizeof(kMagic) - 1;

enum RecordId : std::uint8_t {
  kEnd = 0x00,
  kStart = 0x01,
  kCellRec = 0x02,
  kRectRec = 0x03,
  kPolygonRec = 0x04,
  kPlacementRec = 0x05,
  kArrayRec = 0x06,
};

// Info-byte bits for kRectRec.
enum RectBits : std::uint8_t {
  kLayerChanged = 1 << 0,
  kDatatypeChanged = 1 << 1,
  kWidthChanged = 1 << 2,
  kHeightChanged = 1 << 3,
};

void putString(std::vector<std::uint8_t>& out, const std::string& s) {
  putVarUint(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

void putDouble(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
  }
}

std::optional<std::string> getString(std::span<const std::uint8_t> bytes,
                                     std::size_t& pos) {
  const auto len = getVarUint(bytes, pos);
  if (!len.has_value() || pos + *len > bytes.size()) return std::nullopt;
  std::string s(reinterpret_cast<const char*>(bytes.data() + pos),
                static_cast<std::size_t>(*len));
  pos += static_cast<std::size_t>(*len);
  return s;
}

std::optional<double> getDouble(std::span<const std::uint8_t> bytes,
                                std::size_t& pos) {
  if (pos + 8 > bytes.size()) return std::nullopt;
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<std::uint64_t>(bytes[pos + i]) << (8 * i);
  }
  pos += 8;
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

// True when the boundary is an axis-aligned rectangle; fills dims.
bool asRect(const Boundary& b, geom::Rect& out) {
  if (b.vertices.size() != 4) return false;
  geom::Coord xl = b.vertices[0].x, xh = xl, yl = b.vertices[0].y, yh = yl;
  for (const geom::Point& p : b.vertices) {
    xl = std::min(xl, p.x);
    xh = std::max(xh, p.x);
    yl = std::min(yl, p.y);
    yh = std::max(yh, p.y);
  }
  // All four corners must be hit exactly once.
  int corners = 0;
  for (const geom::Point& p : b.vertices) {
    if ((p.x == xl || p.x == xh) && (p.y == yl || p.y == yh)) ++corners;
  }
  if (corners != 4 || xl == xh || yl == yh) return false;
  // Distinct corners check (reject bow-ties that still touch 4 extremes).
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = i + 1; j < 4; ++j) {
      if (b.vertices[i] == b.vertices[j]) return false;
    }
  }
  out = {xl, yl, xh, yh};
  return true;
}

// Modal state shared by writer and reader; reset per cell.
struct Modal {
  std::int64_t layer = -1;
  std::int64_t datatype = -1;
  geom::Coord width = -1;
  geom::Coord height = -1;
  geom::Coord x = 0;
  geom::Coord y = 0;
};

}  // namespace

void putVarUint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

void putVarInt(std::vector<std::uint8_t>& out, std::int64_t v) {
  // Zigzag encoding.
  putVarUint(out, (static_cast<std::uint64_t>(v) << 1) ^
                      static_cast<std::uint64_t>(v >> 63));
}

std::optional<std::uint64_t> getVarUint(std::span<const std::uint8_t> bytes,
                                        std::size_t& pos) {
  std::uint64_t v = 0;
  int shift = 0;
  while (pos < bytes.size()) {
    const std::uint8_t byte = bytes[pos++];
    if (shift >= 64) return std::nullopt;
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
  }
  return std::nullopt;
}

std::optional<std::int64_t> getVarInt(std::span<const std::uint8_t> bytes,
                                      std::size_t& pos) {
  const auto raw = getVarUint(bytes, pos);
  if (!raw.has_value()) return std::nullopt;
  return static_cast<std::int64_t>(*raw >> 1) ^
         -static_cast<std::int64_t>(*raw & 1);
}

std::vector<std::uint8_t> OasisWriter::serialize(const Library& lib) {
  std::vector<std::uint8_t> out;
  out.insert(out.end(), kMagic, kMagic + kMagicLen);
  out.push_back(kStart);
  putString(out, lib.name);
  putDouble(out, lib.userUnitsPerDbu);
  putDouble(out, lib.metersPerDbu);

  for (const Cell& cell : lib.cells) {
    out.push_back(kCellRec);
    putString(out, cell.name);
    Modal modal;

    // Rect-shaped boundaries sorted for delta locality; general polygons
    // and references follow in input order.
    struct RectEntry {
      std::int64_t layer;
      std::int64_t datatype;
      geom::Rect rect;
    };
    std::vector<RectEntry> rects;
    std::vector<const Boundary*> polygons;
    for (const Boundary& b : cell.boundaries) {
      geom::Rect r;
      if (asRect(b, r)) {
        rects.push_back({b.layer, b.datatype, r});
      } else {
        polygons.push_back(&b);
      }
    }
    std::sort(rects.begin(), rects.end(),
              [](const RectEntry& a, const RectEntry& b) {
                if (a.layer != b.layer) return a.layer < b.layer;
                if (a.datatype != b.datatype) return a.datatype < b.datatype;
                return geom::RectYXLess{}(a.rect, b.rect);
              });

    for (const RectEntry& e : rects) {
      std::uint8_t info = 0;
      if (e.layer != modal.layer) info |= kLayerChanged;
      if (e.datatype != modal.datatype) info |= kDatatypeChanged;
      if (e.rect.width() != modal.width) info |= kWidthChanged;
      if (e.rect.height() != modal.height) info |= kHeightChanged;
      out.push_back(kRectRec);
      out.push_back(info);
      if (info & kLayerChanged) putVarUint(out, static_cast<std::uint64_t>(e.layer));
      if (info & kDatatypeChanged) {
        putVarUint(out, static_cast<std::uint64_t>(e.datatype));
      }
      if (info & kWidthChanged) putVarUint(out, static_cast<std::uint64_t>(e.rect.width()));
      if (info & kHeightChanged) {
        putVarUint(out, static_cast<std::uint64_t>(e.rect.height()));
      }
      putVarInt(out, e.rect.xl - modal.x);
      putVarInt(out, e.rect.yl - modal.y);
      modal.layer = e.layer;
      modal.datatype = e.datatype;
      modal.width = e.rect.width();
      modal.height = e.rect.height();
      modal.x = e.rect.xl;
      modal.y = e.rect.yl;
    }

    for (const Boundary* b : polygons) {
      out.push_back(kPolygonRec);
      putVarUint(out, static_cast<std::uint64_t>(b->layer));
      putVarUint(out, static_cast<std::uint64_t>(b->datatype));
      putVarUint(out, b->vertices.size());
      geom::Point prev{modal.x, modal.y};
      for (const geom::Point& p : b->vertices) {
        putVarInt(out, p.x - prev.x);
        putVarInt(out, p.y - prev.y);
        prev = p;
      }
      modal.x = prev.x;
      modal.y = prev.y;
    }

    for (const Sref& s : cell.srefs) {
      out.push_back(kPlacementRec);
      putString(out, s.cellName);
      putVarInt(out, s.origin.x - modal.x);
      putVarInt(out, s.origin.y - modal.y);
      modal.x = s.origin.x;
      modal.y = s.origin.y;
    }
    for (const Aref& a : cell.arefs) {
      out.push_back(kArrayRec);
      putString(out, a.cellName);
      putVarInt(out, a.origin.x - modal.x);
      putVarInt(out, a.origin.y - modal.y);
      putVarUint(out, static_cast<std::uint64_t>(a.cols));
      putVarUint(out, static_cast<std::uint64_t>(a.rows));
      putVarInt(out, a.pitchX);
      putVarInt(out, a.pitchY);
      modal.x = a.origin.x;
      modal.y = a.origin.y;
    }
  }
  out.push_back(kEnd);
  return out;
}

long long OasisWriter::writeFile(const Library& lib, const std::string& path) {
  const auto bytes = serialize(lib);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return -1;
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  return written == bytes.size() ? static_cast<long long>(bytes.size()) : -1;
}

long long OasisWriter::streamSize(const Library& lib) {
  return static_cast<long long>(serialize(lib).size());
}

std::optional<Library> OasisReader::parse(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kMagicLen ||
      std::memcmp(bytes.data(), kMagic, kMagicLen) != 0) {
    return std::nullopt;
  }
  std::size_t pos = kMagicLen;
  if (pos >= bytes.size() || bytes[pos++] != kStart) return std::nullopt;

  Library lib;
  {
    auto name = getString(bytes, pos);
    auto uu = getDouble(bytes, pos);
    auto mu = getDouble(bytes, pos);
    if (!name || !uu || !mu) return std::nullopt;
    lib.name = *name;
    lib.userUnitsPerDbu = *uu;
    lib.metersPerDbu = *mu;
  }

  Cell* cell = nullptr;
  Modal modal;
  while (pos < bytes.size()) {
    const std::uint8_t rec = bytes[pos++];
    switch (rec) {
      case kEnd:
        return lib;
      case kCellRec: {
        auto name = getString(bytes, pos);
        if (!name) return std::nullopt;
        lib.cells.emplace_back();
        cell = &lib.cells.back();
        cell->name = *name;
        modal = Modal{};
        break;
      }
      case kRectRec: {
        if (cell == nullptr || pos >= bytes.size()) return std::nullopt;
        const std::uint8_t info = bytes[pos++];
        if (info & kLayerChanged) {
          auto v = getVarUint(bytes, pos);
          if (!v) return std::nullopt;
          modal.layer = static_cast<std::int64_t>(*v);
        }
        if (info & kDatatypeChanged) {
          auto v = getVarUint(bytes, pos);
          if (!v) return std::nullopt;
          modal.datatype = static_cast<std::int64_t>(*v);
        }
        if (info & kWidthChanged) {
          auto v = getVarUint(bytes, pos);
          if (!v) return std::nullopt;
          modal.width = static_cast<geom::Coord>(*v);
        }
        if (info & kHeightChanged) {
          auto v = getVarUint(bytes, pos);
          if (!v) return std::nullopt;
          modal.height = static_cast<geom::Coord>(*v);
        }
        auto dx = getVarInt(bytes, pos);
        auto dy = getVarInt(bytes, pos);
        if (!dx || !dy || modal.layer < 0 || modal.width <= 0 ||
            modal.height <= 0) {
          return std::nullopt;
        }
        modal.x += *dx;
        modal.y += *dy;
        Writer::addRect(*cell, static_cast<std::int16_t>(modal.layer),
                        {modal.x, modal.y, modal.x + modal.width,
                         modal.y + modal.height},
                        static_cast<std::int16_t>(modal.datatype));
        break;
      }
      case kPolygonRec: {
        if (cell == nullptr) return std::nullopt;
        auto layer = getVarUint(bytes, pos);
        auto datatype = getVarUint(bytes, pos);
        auto count = getVarUint(bytes, pos);
        if (!layer || !datatype || !count || *count > 1u << 20) {
          return std::nullopt;
        }
        Boundary b;
        b.layer = static_cast<std::int16_t>(*layer);
        b.datatype = static_cast<std::int16_t>(*datatype);
        geom::Point prev{modal.x, modal.y};
        for (std::uint64_t i = 0; i < *count; ++i) {
          auto dx = getVarInt(bytes, pos);
          auto dy = getVarInt(bytes, pos);
          if (!dx || !dy) return std::nullopt;
          prev = {prev.x + *dx, prev.y + *dy};
          b.vertices.push_back(prev);
        }
        modal.x = prev.x;
        modal.y = prev.y;
        cell->boundaries.push_back(std::move(b));
        break;
      }
      case kPlacementRec: {
        if (cell == nullptr) return std::nullopt;
        auto name = getString(bytes, pos);
        auto dx = getVarInt(bytes, pos);
        auto dy = getVarInt(bytes, pos);
        if (!name || !dx || !dy) return std::nullopt;
        modal.x += *dx;
        modal.y += *dy;
        cell->srefs.push_back({*name, {modal.x, modal.y}});
        break;
      }
      case kArrayRec: {
        if (cell == nullptr) return std::nullopt;
        auto name = getString(bytes, pos);
        auto dx = getVarInt(bytes, pos);
        auto dy = getVarInt(bytes, pos);
        auto cols = getVarUint(bytes, pos);
        auto rows = getVarUint(bytes, pos);
        auto px = getVarInt(bytes, pos);
        auto py = getVarInt(bytes, pos);
        if (!name || !dx || !dy || !cols || !rows || !px || !py ||
            *cols > 1u << 20 || *rows > 1u << 20) {
          return std::nullopt;
        }
        modal.x += *dx;
        modal.y += *dy;
        Aref a;
        a.cellName = *name;
        a.origin = {modal.x, modal.y};
        a.cols = static_cast<int>(*cols);
        a.rows = static_cast<int>(*rows);
        a.pitchX = *px;
        a.pitchY = *py;
        cell->arefs.push_back(std::move(a));
        break;
      }
      default:
        return std::nullopt;  // unknown record
    }
  }
  return std::nullopt;  // missing END
}

std::optional<Library> OasisReader::readFile(const std::string& path) {
  // Route through the bounded-buffer scanner so the non-streamed path no
  // longer pays 1x file size of extra RSS before parsing.
  LibraryCollector collector;
  if (!OasisStreamReader::scan(path, collector, nullptr)) return std::nullopt;
  return collector.takeLibrary();
}

namespace {

// Incremental varint/string decoders over a ByteSource; std::nullopt on
// truncation or overflow, matching the span-based getVarUint family.
std::optional<std::uint64_t> readVarUint(ByteSource& src) {
  std::uint64_t v = 0;
  int shift = 0;
  while (src.ensure(1) >= 1) {
    const std::uint8_t byte = src.data()[0];
    src.consume(1);
    if (shift >= 64) return std::nullopt;
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
  }
  return std::nullopt;
}

std::optional<std::int64_t> readVarInt(ByteSource& src) {
  const auto raw = readVarUint(src);
  if (!raw.has_value()) return std::nullopt;
  return static_cast<std::int64_t>(*raw >> 1) ^
         -static_cast<std::int64_t>(*raw & 1);
}

std::optional<std::string> readString(ByteSource& src, std::size_t maxBytes) {
  const auto len = readVarUint(src);
  if (!len.has_value() || *len > maxBytes) return std::nullopt;
  const std::size_t n = static_cast<std::size_t>(*len);
  if (src.ensure(n) < n) return std::nullopt;
  std::string s(reinterpret_cast<const char*>(src.data()), n);
  src.consume(n);
  return s;
}

std::optional<double> readDouble(ByteSource& src) {
  if (src.ensure(8) < 8) return std::nullopt;
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<std::uint64_t>(src.data()[i]) << (8 * i);
  }
  src.consume(8);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace

bool OasisStreamReader::scan(const std::string& path, StreamEvents& events,
                             std::string* error) {
  return scan(path, events, error, Options{});
}

bool OasisStreamReader::scan(const std::string& path, StreamEvents& events,
                             std::string* error, const Options& options) {
  const auto fail = [error](const char* message) {
    if (error != nullptr) *error = message;
    return false;
  };
  ByteSource src(path, ByteSource::Options{options.chunkBytes});
  if (!src.ok()) return fail("cannot open file");

  if (src.ensure(kMagicLen + 1) < kMagicLen + 1 ||
      std::memcmp(src.data(), kMagic, kMagicLen) != 0 ||
      src.data()[kMagicLen] != kStart) {
    return fail("not an OFL-OASIS stream");
  }
  src.consume(kMagicLen + 1);
  {
    const auto name = readString(src, options.maxStringBytes);
    const auto uu = readDouble(src);
    const auto mu = readDouble(src);
    if (!name || !uu || !mu) return fail("truncated START record");
    events.onLibraryName(*name);
    events.onUnits(*uu, *mu);
  }

  bool inCell = false;
  Modal modal;
  while (true) {
    if (src.ensure(1) < 1) {
      return fail(src.ioError() ? "read error" : "missing END record");
    }
    const std::uint8_t rec = src.data()[0];
    src.consume(1);
    switch (rec) {
      case kEnd:
        if (inCell) events.onEndCell();
        return true;
      case kCellRec: {
        const auto name = readString(src, options.maxStringBytes);
        if (!name) return fail("truncated CELL record");
        if (inCell) events.onEndCell();
        inCell = true;
        events.onBeginCell();
        events.onCellName(*name);
        modal = Modal{};
        break;
      }
      case kRectRec: {
        if (!inCell || src.ensure(1) < 1) return fail("malformed RECT record");
        const std::uint8_t info = src.data()[0];
        src.consume(1);
        if (info & kLayerChanged) {
          const auto v = readVarUint(src);
          if (!v) return fail("malformed RECT record");
          modal.layer = static_cast<std::int64_t>(*v);
        }
        if (info & kDatatypeChanged) {
          const auto v = readVarUint(src);
          if (!v) return fail("malformed RECT record");
          modal.datatype = static_cast<std::int64_t>(*v);
        }
        if (info & kWidthChanged) {
          const auto v = readVarUint(src);
          if (!v) return fail("malformed RECT record");
          modal.width = static_cast<geom::Coord>(*v);
        }
        if (info & kHeightChanged) {
          const auto v = readVarUint(src);
          if (!v) return fail("malformed RECT record");
          modal.height = static_cast<geom::Coord>(*v);
        }
        const auto dx = readVarInt(src);
        const auto dy = readVarInt(src);
        if (!dx || !dy || modal.layer < 0 || modal.width <= 0 ||
            modal.height <= 0) {
          return fail("malformed RECT record");
        }
        modal.x += *dx;
        modal.y += *dy;
        Boundary b;
        b.layer = static_cast<std::int16_t>(modal.layer);
        b.datatype = static_cast<std::int16_t>(modal.datatype);
        b.vertices = {{modal.x, modal.y},
                      {modal.x + modal.width, modal.y},
                      {modal.x + modal.width, modal.y + modal.height},
                      {modal.x, modal.y + modal.height}};
        events.onBoundary(b);
        break;
      }
      case kPolygonRec: {
        if (!inCell) return fail("POLYGON outside cell");
        const auto layer = readVarUint(src);
        const auto datatype = readVarUint(src);
        const auto count = readVarUint(src);
        if (!layer || !datatype || !count || *count > 1u << 20) {
          return fail("malformed POLYGON record");
        }
        Boundary b;
        b.layer = static_cast<std::int16_t>(*layer);
        b.datatype = static_cast<std::int16_t>(*datatype);
        geom::Point prev{modal.x, modal.y};
        for (std::uint64_t i = 0; i < *count; ++i) {
          const auto dx = readVarInt(src);
          const auto dy = readVarInt(src);
          if (!dx || !dy) return fail("malformed POLYGON record");
          prev = {prev.x + *dx, prev.y + *dy};
          b.vertices.push_back(prev);
        }
        modal.x = prev.x;
        modal.y = prev.y;
        events.onBoundary(b);
        break;
      }
      case kPlacementRec: {
        if (!inCell) return fail("PLACEMENT outside cell");
        const auto name = readString(src, options.maxStringBytes);
        const auto dx = readVarInt(src);
        const auto dy = readVarInt(src);
        if (!name || !dx || !dy) return fail("malformed PLACEMENT record");
        modal.x += *dx;
        modal.y += *dy;
        events.onSref({*name, {modal.x, modal.y}});
        break;
      }
      case kArrayRec: {
        if (!inCell) return fail("ARRAY outside cell");
        const auto name = readString(src, options.maxStringBytes);
        const auto dx = readVarInt(src);
        const auto dy = readVarInt(src);
        const auto cols = readVarUint(src);
        const auto rows = readVarUint(src);
        const auto px = readVarInt(src);
        const auto py = readVarInt(src);
        if (!name || !dx || !dy || !cols || !rows || !px || !py ||
            *cols > 1u << 20 || *rows > 1u << 20) {
          return fail("malformed ARRAY record");
        }
        modal.x += *dx;
        modal.y += *dy;
        Aref a;
        a.cellName = *name;
        a.origin = {modal.x, modal.y};
        a.cols = static_cast<int>(*cols);
        a.rows = static_cast<int>(*rows);
        a.pitchX = *px;
        a.pitchY = *py;
        events.onAref(a);
        break;
      }
      default:
        return fail("unknown record");
    }
  }
}

}  // namespace ofl::gds
