// Hierarchy flattening: resolves SREF/AREF instances into plain
// boundaries. Used to read back hierarchical (compacted) fill output and
// by tests to verify compaction is lossless.
#pragma once

#include "gds/gds_writer.hpp"

namespace ofl::gds {

/// Returns a library whose cells contain only boundaries; every reference
/// is expanded recursively (translation only — the subset this library
/// writes). Unresolvable cell names are skipped. `maxDepth` bounds
/// recursion against reference cycles.
Library flatten(const Library& lib, int maxDepth = 8);

/// Flattens and returns only the cell named `top` (default: first cell).
Cell flattenCell(const Library& lib, const std::string& top = "",
                 int maxDepth = 8);

}  // namespace ofl::gds
