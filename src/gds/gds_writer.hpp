// Minimal GDSII stream writer.
//
// The contest's file-size score is measured on the output GDSII, so the
// library writes real stream bytes (BOUNDARY elements). Rectangles are the
// only shape fills need; general polygons are also accepted.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geometry/polygon.hpp"
#include "geometry/rect.hpp"

namespace ofl::gds {

struct Boundary {
  std::int16_t layer = 0;
  std::int16_t datatype = 0;
  // Closed loop; the writer appends the repeated first vertex GDS requires.
  std::vector<geom::Point> vertices;
};

/// Cell reference (SREF): one translated instance of another cell.
struct Sref {
  std::string cellName;
  geom::Point origin;
};

/// Array reference (AREF): cols x rows translated instances on a regular
/// grid with the given pitches. This is the structure that makes regular
/// dummy-fill patterns cheap to store — the contest's file-size metric is
/// the reason hierarchical fill output matters (paper Section 1).
struct Aref {
  std::string cellName;
  geom::Point origin;
  int cols = 1;
  int rows = 1;
  geom::Coord pitchX = 0;
  geom::Coord pitchY = 0;
};

struct Cell {
  std::string name = "TOP";
  std::vector<Boundary> boundaries;
  std::vector<Sref> srefs;
  std::vector<Aref> arefs;
};

struct Library {
  std::string name = "OPENFILL";
  double userUnitsPerDbu = 1e-3;   // database units per user unit
  double metersPerDbu = 1e-9;      // database unit in meters (1 nm default)
  std::vector<Cell> cells;
};

class Writer {
 public:
  /// Serializes the library to GDSII stream bytes.
  static std::vector<std::uint8_t> serialize(const Library& lib);

  /// Writes to a file; returns the byte count (the "file size" metric),
  /// or -1 on IO failure.
  static long long writeFile(const Library& lib, const std::string& path);

  /// Size in bytes the library would occupy, without materializing it.
  static long long streamSize(const Library& lib);

  /// Convenience: appends one rect as a BOUNDARY to a cell.
  static void addRect(Cell& cell, std::int16_t layer, const geom::Rect& r,
                      std::int16_t datatype = 0);
};

}  // namespace ofl::gds
