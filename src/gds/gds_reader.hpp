// Minimal GDSII stream reader: parses the subset the Writer emits
// (BOUNDARY elements in flat cells). Used for round-trip verification and
// for loading externally generated benchmarks.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "gds/gds_writer.hpp"

namespace ofl::gds {

class Reader {
 public:
  /// Parses stream bytes; returns nullopt on malformed input.
  static std::optional<Library> parse(std::span<const std::uint8_t> bytes);

  /// Reads and parses a file; nullopt on IO or parse failure.
  static std::optional<Library> readFile(const std::string& path);
};

}  // namespace ofl::gds
