// Streaming hierarchy flattener.
//
// Adapts StreamReader events into the flat boundary sequence flattenCell
// would produce for the first (top) structure: the top cell's own
// boundaries pass straight through as they are parsed, while non-top
// structures — small master cells by construction — are buffered and
// expanded through the top cell's SREF/AREF lists at finish(), in
// flattenCell's exact order (boundaries, then srefs, then arefs,
// depth-first, unresolvable names skipped, same depth cap).
//
// One deliberate restriction: a reference that flattenCell would resolve
// to the top cell itself (self-referential hierarchies) is an error here,
// because the top cell's geometry has already been streamed away. The
// batch path (Reader::readFile + flattenCell) still handles those.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "gds/stream_reader.hpp"

namespace ofl::gds {

class FlattenStream : public StreamEvents {
 public:
  /// Receives every flat (already translated) boundary, in flattenCell
  /// order. The reference is only valid during the call.
  using Sink = std::function<void(const Boundary&)>;

  explicit FlattenStream(Sink sink, int maxDepth = 8)
      : sink_(std::move(sink)), maxDepth_(maxDepth) {}

  void onBeginCell() override;
  void onCellName(const std::string& name) override;
  void onBoundary(const Boundary& b) override;
  void onSref(const Sref& s) override;
  void onAref(const Aref& a) override;

  /// Expands the buffered top-level references. Call once after the scan
  /// succeeds; returns false (with `*error` set when non-null) on a
  /// reference the streaming path cannot expand.
  bool finish(std::string* error);

  const std::string& topName() const { return topName_; }

 private:
  bool expandNamed(const std::string& name, geom::Coord dx, geom::Coord dy,
                   int depth, const std::map<std::string, const Cell*>& byName,
                   std::string* error);
  bool expandCell(const Cell& cell, geom::Coord dx, geom::Coord dy, int depth,
                  const std::map<std::string, const Cell*>& byName,
                  std::string* error);

  Sink sink_;
  int maxDepth_;
  bool sawTop_ = false;
  bool inTop_ = false;
  std::string topName_ = "TOP";  // Cell's default name, matching collectors
  std::vector<Sref> topSrefs_;
  std::vector<Aref> topArefs_;
  std::vector<Cell> masters_;
};

}  // namespace ofl::gds
