#include "gds/stream_reader.hpp"

namespace ofl::gds {

RecordStream::RecordStream(const std::string& path)
    : RecordStream(path, Options{}) {}

RecordStream::RecordStream(const std::string& path, const Options& options)
    : source_(path, ByteSource::Options{options.chunkBytes}),
      maxRecordBytes_(options.maxRecordBytes) {
  if (!source_.ok()) error_ = "cannot open file";
}

RecordStream::Status RecordStream::next(RecordTag& tag,
                                        std::span<const std::uint8_t>& payload) {
  if (!error_.empty()) return Status::kError;
  source_.consume(pendingConsume_);
  pendingConsume_ = 0;

  const std::size_t headerAvail = source_.ensure(4);
  if (headerAvail == 0) {
    if (source_.ioError()) {
      error_ = "read error";
      return Status::kError;
    }
    return Status::kEnd;
  }
  if (headerAvail < 4) {
    error_ = "truncated record header";
    return Status::kError;
  }
  const std::uint16_t len = getU16(source_.data());
  if (len < 4) {
    error_ = "record length below header size";
    return Status::kError;
  }
  if (len > maxRecordBytes_) {
    error_ = "oversized record (" + std::to_string(len) + " bytes)";
    return Status::kError;
  }
  if (source_.ensure(len) < len) {
    error_ = source_.ioError() ? "read error" : "truncated record payload";
    return Status::kError;
  }
  tag = static_cast<RecordTag>(getU16(source_.data() + 2));
  payload = std::span<const std::uint8_t>(source_.data() + 4, len - 4u);
  pendingConsume_ = len;  // consumed on the next call; payload stays valid
  return Status::kRecord;
}

namespace {

std::string asciiFrom(std::span<const std::uint8_t> payload) {
  std::string s(payload.begin(), payload.end());
  while (!s.empty() && s.back() == '\0') s.pop_back();
  return s;
}

std::uint64_t u64From(std::span<const std::uint8_t> p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | p[i];
  return v;
}

// Record-level state machine mirroring Reader::parse: elements are
// accumulated across their LAYER/DATATYPE/XY/SNAME/COLROW records and
// committed to the sink when the element (or its structure) ends.
class RecordMachine {
 public:
  explicit RecordMachine(StreamEvents& events) : events_(events) {}

  enum class Status { kContinue, kDone, kError };

  const std::string& error() const { return error_; }

  Status feed(RecordTag tag, std::span<const std::uint8_t> payload) {
    switch (tag) {
      case RecordTag::kHeader:
        sawHeader_ = true;
        break;
      case RecordTag::kBgnLib:
        break;
      case RecordTag::kLibName:
        events_.onLibraryName(asciiFrom(payload));
        break;
      case RecordTag::kUnits:
        if (payload.size() != 16) return fail("UNITS payload not 16 bytes");
        events_.onUnits(decodeReal8(u64From(payload.subspan(0, 8))),
                        decodeReal8(u64From(payload.subspan(8, 8))));
        break;
      case RecordTag::kBgnStr:
        commitElement();
        if (inCell_) events_.onEndCell();
        inCell_ = true;
        events_.onBeginCell();
        break;
      case RecordTag::kStrName:
        if (!inCell_) return fail("STRNAME outside structure");
        events_.onCellName(asciiFrom(payload));
        break;
      case RecordTag::kBoundary:
        if (!inCell_) return fail("BOUNDARY outside structure");
        commitElement();
        element_ = Element::kBoundary;
        boundary_ = Boundary{};
        break;
      case RecordTag::kSref:
        if (!inCell_) return fail("SREF outside structure");
        commitElement();
        element_ = Element::kSref;
        sref_ = Sref{};
        break;
      case RecordTag::kAref:
        if (!inCell_) return fail("AREF outside structure");
        commitElement();
        element_ = Element::kAref;
        aref_ = Aref{};
        break;
      case RecordTag::kSname:
        if (element_ == Element::kSref) {
          sref_.cellName = asciiFrom(payload);
        } else if (element_ == Element::kAref) {
          aref_.cellName = asciiFrom(payload);
        } else {
          return fail("SNAME outside reference");
        }
        break;
      case RecordTag::kColRow:
        if (element_ != Element::kAref || payload.size() < 4) {
          return fail("malformed COLROW");
        }
        aref_.cols = getU16(payload.data());
        aref_.rows = getU16(payload.data() + 2);
        break;
      case RecordTag::kLayer:
        if (element_ != Element::kBoundary || payload.size() < 2) {
          return fail("malformed LAYER");
        }
        boundary_.layer = static_cast<std::int16_t>(getU16(payload.data()));
        break;
      case RecordTag::kDataType:
        if (element_ != Element::kBoundary || payload.size() < 2) {
          return fail("malformed DATATYPE");
        }
        boundary_.datatype = static_cast<std::int16_t>(getU16(payload.data()));
        break;
      case RecordTag::kXy: {
        if (payload.size() % 8 != 0) return fail("XY payload not 8-aligned");
        if (element_ == Element::kSref) {
          if (payload.size() < 8) return fail("short SREF XY");
          sref_.origin = {getI32(payload.data()), getI32(payload.data() + 4)};
          break;
        }
        if (element_ == Element::kAref) {
          if (payload.size() < 24) return fail("short AREF XY");
          const geom::Coord x0 = getI32(payload.data());
          const geom::Coord y0 = getI32(payload.data() + 4);
          const geom::Coord xc = getI32(payload.data() + 8);
          const geom::Coord yr = getI32(payload.data() + 20);
          aref_.origin = {x0, y0};
          aref_.pitchX = aref_.cols > 0 ? (xc - x0) / aref_.cols : 0;
          aref_.pitchY = aref_.rows > 0 ? (yr - y0) / aref_.rows : 0;
          break;
        }
        if (element_ != Element::kBoundary) return fail("XY outside element");
        const std::size_t n = payload.size() / 8;
        boundary_.vertices.clear();
        for (std::size_t i = 0; i < n; ++i) {
          boundary_.vertices.push_back({getI32(payload.data() + 8 * i),
                                        getI32(payload.data() + 8 * i + 4)});
        }
        // Strip the repeated closing vertex GDS stores on disk.
        if (boundary_.vertices.size() >= 2 &&
            boundary_.vertices.front() == boundary_.vertices.back()) {
          boundary_.vertices.pop_back();
        }
        break;
      }
      case RecordTag::kEndEl:
        commitElement();
        break;
      case RecordTag::kEndStr:
        commitElement();
        if (inCell_) events_.onEndCell();
        inCell_ = false;
        break;
      case RecordTag::kEndLib:
        commitElement();
        if (inCell_) events_.onEndCell();
        inCell_ = false;
        if (!sawHeader_) return fail("ENDLIB without HEADER");
        return Status::kDone;
      default:
        // Unknown records are skipped (forward compatibility).
        break;
    }
    return Status::kContinue;
  }

 private:
  enum class Element { kNone, kBoundary, kSref, kAref };

  Status fail(const char* message) {
    error_ = message;
    return Status::kError;
  }

  void commitElement() {
    switch (element_) {
      case Element::kBoundary:
        events_.onBoundary(boundary_);
        break;
      case Element::kSref:
        events_.onSref(sref_);
        break;
      case Element::kAref:
        events_.onAref(aref_);
        break;
      case Element::kNone:
        break;
    }
    element_ = Element::kNone;
  }

  StreamEvents& events_;
  bool sawHeader_ = false;
  bool inCell_ = false;
  Element element_ = Element::kNone;
  Boundary boundary_;
  Sref sref_;
  Aref aref_;
  std::string error_;
};

}  // namespace

bool StreamReader::scan(const std::string& path, StreamEvents& events,
                        std::string* error, const Options& options) {
  RecordStream records(path, options);
  RecordMachine machine(events);
  RecordTag tag;
  std::span<const std::uint8_t> payload;
  while (true) {
    switch (records.next(tag, payload)) {
      case RecordStream::Status::kError:
        if (error != nullptr) *error = records.error();
        return false;
      case RecordStream::Status::kEnd:
        if (error != nullptr) *error = "missing ENDLIB";
        return false;
      case RecordStream::Status::kRecord:
        break;
    }
    switch (machine.feed(tag, payload)) {
      case RecordMachine::Status::kError:
        if (error != nullptr) *error = machine.error();
        return false;
      case RecordMachine::Status::kDone:
        return true;
      case RecordMachine::Status::kContinue:
        break;
    }
  }
}

}  // namespace ofl::gds
