// Buffered file byte source for the streaming readers.
//
// Reads a file in fixed-size chunks into a sliding buffer so a parser can
// consume records incrementally without ever holding the whole file in
// memory (the contest inputs run to gigabytes; see ROADMAP "Contest-scale
// inputs"). The buffer grows only to the largest single ensure() request,
// which the record-level readers bound (GDS records are <= 64 KiB by
// format; the OASIS reader caps strings explicitly).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace ofl::gds {

class ByteSource {
 public:
  struct Options {
    /// Read granularity. Small values are used by tests to force record
    /// headers to straddle chunk boundaries.
    std::size_t chunkBytes = 256 * 1024;
  };

  explicit ByteSource(const std::string& path);
  ByteSource(const std::string& path, const Options& options);
  ~ByteSource();

  ByteSource(const ByteSource&) = delete;
  ByteSource& operator=(const ByteSource&) = delete;

  /// False when the file could not be opened.
  bool ok() const { return file_ != nullptr; }
  /// True after a read() syscall failed (distinct from clean EOF).
  bool ioError() const { return ioError_; }

  /// Tops up the buffer until at least `n` bytes are available or the file
  /// is exhausted; returns the bytes actually available (< n only at EOF
  /// or on IO error). The returned view is invalidated by the next
  /// ensure() call.
  std::size_t ensure(std::size_t n);

  /// Start of the unconsumed bytes (valid for available() bytes).
  const std::uint8_t* data() const { return buffer_.data() + pos_; }
  std::size_t available() const { return buffer_.size() - pos_; }

  /// Advances past `n` buffered bytes (n <= available()).
  void consume(std::size_t n);

  /// Total bytes consumed so far (= current stream offset).
  std::uint64_t consumed() const { return consumed_; }

  /// True when every byte has been consumed and the file is exhausted.
  bool atEnd() { return ensure(1) == 0; }

 private:
  std::FILE* file_ = nullptr;
  std::vector<std::uint8_t> buffer_;
  std::size_t pos_ = 0;  // consumed prefix of buffer_
  std::uint64_t consumed_ = 0;
  std::size_t chunkBytes_;
  bool fileDone_ = false;
  bool ioError_ = false;
};

}  // namespace ofl::gds
