// Append-only GDSII file writer with bounded memory.
//
// Emits the same bytes Writer::serialize produces (both go through
// gds/record_builder.hpp) but flushes to disk as elements are appended, so
// the sharded fill path can write multi-gigabyte outputs while holding
// only one flush buffer. Usage:
//
//   StreamWriter w(path);
//   w.beginCell("TOP");
//   w.addBoundary(...); w.addRect(...);   // any number, in final order
//   w.endCell();
//   long long bytes = w.finish();         // ENDLIB + flush; -1 on IO error
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "gds/gds_writer.hpp"

namespace ofl::gds {

class StreamWriter {
 public:
  struct Options {
    std::string libName = "OPENFILL";
    double userUnitsPerDbu = 1e-3;
    double metersPerDbu = 1e-9;
    /// Flush threshold for the in-memory record buffer.
    std::size_t flushBytes = 1 << 20;
  };

  explicit StreamWriter(const std::string& path);
  StreamWriter(const std::string& path, const Options& options);
  ~StreamWriter();

  StreamWriter(const StreamWriter&) = delete;
  StreamWriter& operator=(const StreamWriter&) = delete;

  /// False when the file could not be opened or a write failed.
  bool ok() const { return opened_ && !ioError_; }

  void beginCell(const std::string& name);
  void addBoundary(const Boundary& b);
  void addRect(std::int16_t layer, const geom::Rect& r,
               std::int16_t datatype = 0);
  void addSref(const Sref& s);
  void addAref(const Aref& a);
  void endCell();

  /// Writes ENDLIB, flushes, and closes. Returns total bytes written (the
  /// file-size metric) or -1 on IO failure. Idempotent.
  long long finish();

  /// Bytes emitted so far (buffered + flushed).
  long long bytesWritten() const { return bytesWritten_; }

 private:
  void maybeFlush();
  void flush();

  std::FILE* file_ = nullptr;
  std::vector<std::uint8_t> buffer_;
  std::size_t flushBytes_;
  long long bytesWritten_ = 0;
  bool opened_ = false;
  bool inCell_ = false;
  bool finished_ = false;
  bool ioError_ = false;
};

}  // namespace ofl::gds
