#include "gds/flatten.hpp"

#include <map>

namespace ofl::gds {
namespace {

void appendTranslated(Cell& out, const Cell& source, geom::Coord dx,
                      geom::Coord dy) {
  for (const Boundary& b : source.boundaries) {
    Boundary moved = b;
    for (geom::Point& p : moved.vertices) {
      p.x += dx;
      p.y += dy;
    }
    out.boundaries.push_back(std::move(moved));
  }
}

void expandInto(Cell& out, const Cell& cell,
                const std::map<std::string, const Cell*>& byName,
                geom::Coord dx, geom::Coord dy, int depth) {
  appendTranslated(out, cell, dx, dy);
  if (depth <= 0) return;
  for (const Sref& s : cell.srefs) {
    const auto it = byName.find(s.cellName);
    if (it == byName.end()) continue;
    expandInto(out, *it->second, byName, dx + s.origin.x, dy + s.origin.y,
               depth - 1);
  }
  for (const Aref& a : cell.arefs) {
    const auto it = byName.find(a.cellName);
    if (it == byName.end()) continue;
    for (int r = 0; r < a.rows; ++r) {
      for (int c = 0; c < a.cols; ++c) {
        expandInto(out, *it->second, byName,
                   dx + a.origin.x + c * a.pitchX,
                   dy + a.origin.y + r * a.pitchY, depth - 1);
      }
    }
  }
}

std::map<std::string, const Cell*> indexCells(const Library& lib) {
  std::map<std::string, const Cell*> byName;
  for (const Cell& cell : lib.cells) byName[cell.name] = &cell;
  return byName;
}

}  // namespace

Library flatten(const Library& lib, int maxDepth) {
  const auto byName = indexCells(lib);
  Library out;
  out.name = lib.name;
  out.userUnitsPerDbu = lib.userUnitsPerDbu;
  out.metersPerDbu = lib.metersPerDbu;
  for (const Cell& cell : lib.cells) {
    Cell flat;
    flat.name = cell.name;
    expandInto(flat, cell, byName, 0, 0, maxDepth);
    out.cells.push_back(std::move(flat));
  }
  return out;
}

Cell flattenCell(const Library& lib, const std::string& top, int maxDepth) {
  const auto byName = indexCells(lib);
  Cell flat;
  const Cell* source = nullptr;
  if (top.empty()) {
    source = lib.cells.empty() ? nullptr : &lib.cells.front();
  } else {
    const auto it = byName.find(top);
    source = it == byName.end() ? nullptr : it->second;
  }
  if (source == nullptr) return flat;
  flat.name = source->name;
  expandInto(flat, *source, byName, 0, 0, maxDepth);
  return flat;
}

}  // namespace ofl::gds
