#include "gds/stream_writer.hpp"

#include "gds/record_builder.hpp"

namespace ofl::gds {

StreamWriter::StreamWriter(const std::string& path)
    : StreamWriter(path, Options{}) {}

StreamWriter::StreamWriter(const std::string& path, const Options& options)
    : flushBytes_(options.flushBytes) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) return;
  opened_ = true;
  record::appendFilePrologue(buffer_, options.libName, options.userUnitsPerDbu,
                             options.metersPerDbu);
  bytesWritten_ = static_cast<long long>(buffer_.size());
}

StreamWriter::~StreamWriter() {
  finish();
}

void StreamWriter::beginCell(const std::string& name) {
  if (inCell_) endCell();
  const std::size_t before = buffer_.size();
  record::appendCellBegin(buffer_, name);
  bytesWritten_ += static_cast<long long>(buffer_.size() - before);
  inCell_ = true;
  maybeFlush();
}

void StreamWriter::addBoundary(const Boundary& b) {
  const std::size_t before = buffer_.size();
  record::appendBoundary(buffer_, b);
  bytesWritten_ += static_cast<long long>(buffer_.size() - before);
  maybeFlush();
}

void StreamWriter::addRect(std::int16_t layer, const geom::Rect& r,
                           std::int16_t datatype) {
  const std::size_t before = buffer_.size();
  record::appendRect(buffer_, layer, r, datatype);
  bytesWritten_ += static_cast<long long>(buffer_.size() - before);
  maybeFlush();
}

void StreamWriter::addSref(const Sref& s) {
  const std::size_t before = buffer_.size();
  record::appendSref(buffer_, s);
  bytesWritten_ += static_cast<long long>(buffer_.size() - before);
  maybeFlush();
}

void StreamWriter::addAref(const Aref& a) {
  const std::size_t before = buffer_.size();
  record::appendAref(buffer_, a);
  bytesWritten_ += static_cast<long long>(buffer_.size() - before);
  maybeFlush();
}

void StreamWriter::endCell() {
  if (!inCell_) return;
  const std::size_t before = buffer_.size();
  record::appendCellEnd(buffer_);
  bytesWritten_ += static_cast<long long>(buffer_.size() - before);
  inCell_ = false;
  maybeFlush();
}

long long StreamWriter::finish() {
  if (finished_) return ok() ? bytesWritten_ : -1;
  finished_ = true;
  if (!opened_) return -1;
  if (inCell_) endCell();
  record::appendFileEpilogue(buffer_);
  bytesWritten_ += 4;  // ENDLIB
  flush();
  if (std::fclose(file_) != 0) ioError_ = true;
  file_ = nullptr;
  return ioError_ ? -1 : bytesWritten_;
}

void StreamWriter::maybeFlush() {
  if (buffer_.size() >= flushBytes_) flush();
}

void StreamWriter::flush() {
  if (file_ == nullptr || buffer_.empty()) return;
  const std::size_t written =
      std::fwrite(buffer_.data(), 1, buffer_.size(), file_);
  if (written != buffer_.size()) ioError_ = true;
  buffer_.clear();
}

}  // namespace ofl::gds
