#include "gds/stream_flatten.hpp"

namespace ofl::gds {

void FlattenStream::onBeginCell() {
  if (!sawTop_) {
    sawTop_ = true;
    inTop_ = true;
    return;
  }
  inTop_ = false;
  masters_.emplace_back();
}

void FlattenStream::onCellName(const std::string& name) {
  if (inTop_) {
    topName_ = name;
  } else if (!masters_.empty()) {
    masters_.back().name = name;
  }
}

void FlattenStream::onBoundary(const Boundary& b) {
  if (inTop_) {
    sink_(b);
  } else if (!masters_.empty()) {
    masters_.back().boundaries.push_back(b);
  }
}

void FlattenStream::onSref(const Sref& s) {
  if (inTop_) {
    topSrefs_.push_back(s);
  } else if (!masters_.empty()) {
    masters_.back().srefs.push_back(s);
  }
}

void FlattenStream::onAref(const Aref& a) {
  if (inTop_) {
    topArefs_.push_back(a);
  } else if (!masters_.empty()) {
    masters_.back().arefs.push_back(a);
  }
}

bool FlattenStream::finish(std::string* error) {
  // Later duplicates overwrite earlier ones, like flatten's indexCells.
  std::map<std::string, const Cell*> byName;
  for (const Cell& c : masters_) byName[c.name] = &c;
  // Mirrors the top-level expandInto call: srefs in order, then arefs,
  // children expanded with one less depth budget.
  for (const Sref& s : topSrefs_) {
    if (!expandNamed(s.cellName, s.origin.x, s.origin.y, maxDepth_ - 1,
                     byName, error)) {
      return false;
    }
  }
  for (const Aref& a : topArefs_) {
    for (int r = 0; r < a.rows; ++r) {
      for (int c = 0; c < a.cols; ++c) {
        if (!expandNamed(a.cellName, a.origin.x + c * a.pitchX,
                         a.origin.y + r * a.pitchY, maxDepth_ - 1, byName,
                         error)) {
          return false;
        }
      }
    }
  }
  return true;
}

bool FlattenStream::expandNamed(const std::string& name, geom::Coord dx,
                                geom::Coord dy, int depth,
                                const std::map<std::string, const Cell*>& byName,
                                std::string* error) {
  const auto it = byName.find(name);
  if (it == byName.end()) {
    if (name == topName_) {
      // flattenCell would re-expand the already-streamed top geometry.
      if (error != nullptr) {
        *error = "reference to top cell '" + name +
                 "' cannot be expanded while streaming";
      }
      return false;
    }
    return true;  // unresolvable names are skipped, like flattenCell
  }
  return expandCell(*it->second, dx, dy, depth, byName, error);
}

bool FlattenStream::expandCell(const Cell& cell, geom::Coord dx,
                               geom::Coord dy, int depth,
                               const std::map<std::string, const Cell*>& byName,
                               std::string* error) {
  for (const Boundary& b : cell.boundaries) {
    Boundary moved = b;
    for (geom::Point& p : moved.vertices) {
      p.x += dx;
      p.y += dy;
    }
    sink_(moved);
  }
  if (depth <= 0) return true;
  for (const Sref& s : cell.srefs) {
    if (!expandNamed(s.cellName, dx + s.origin.x, dy + s.origin.y, depth - 1,
                     byName, error)) {
      return false;
    }
  }
  for (const Aref& a : cell.arefs) {
    for (int r = 0; r < a.rows; ++r) {
      for (int c = 0; c < a.cols; ++c) {
        if (!expandNamed(a.cellName, dx + a.origin.x + c * a.pitchX,
                         dy + a.origin.y + r * a.pitchY, depth - 1, byName,
                         error)) {
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace ofl::gds
