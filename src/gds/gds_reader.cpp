#include "gds/gds_reader.hpp"

#include <cstdio>
#include <vector>

#include "gds/gds_records.hpp"
#include "gds/stream_reader.hpp"

namespace ofl::gds {
namespace {

struct Cursor {
  std::span<const std::uint8_t> bytes;
  std::size_t pos = 0;

  bool done() const { return pos >= bytes.size(); }

  // Reads the next record header; returns false at end or on corruption.
  bool next(RecordTag& tag, std::span<const std::uint8_t>& payload) {
    if (pos + 4 > bytes.size()) return false;
    const std::uint16_t len = getU16(bytes.data() + pos);
    if (len < 4 || pos + len > bytes.size()) return false;
    tag = static_cast<RecordTag>(getU16(bytes.data() + pos + 2));
    payload = bytes.subspan(pos + 4, len - 4);
    pos += len;
    return true;
  }
};

std::string asciiFrom(std::span<const std::uint8_t> payload) {
  std::string s(payload.begin(), payload.end());
  while (!s.empty() && s.back() == '\0') s.pop_back();
  return s;
}

std::uint64_t u64From(std::span<const std::uint8_t> p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

std::optional<Library> Reader::parse(std::span<const std::uint8_t> bytes) {
  Cursor cur{bytes};
  Library lib;
  Cell* cell = nullptr;
  Boundary* boundary = nullptr;
  Sref* sref = nullptr;
  Aref* aref = nullptr;

  RecordTag tag;
  std::span<const std::uint8_t> payload;
  bool sawHeader = false;
  while (cur.next(tag, payload)) {
    switch (tag) {
      case RecordTag::kHeader:
        sawHeader = true;
        break;
      case RecordTag::kBgnLib:
        break;
      case RecordTag::kLibName:
        lib.name = asciiFrom(payload);
        break;
      case RecordTag::kUnits:
        if (payload.size() != 16) return std::nullopt;
        lib.userUnitsPerDbu = decodeReal8(u64From(payload.subspan(0, 8)));
        lib.metersPerDbu = decodeReal8(u64From(payload.subspan(8, 8)));
        break;
      case RecordTag::kBgnStr:
        lib.cells.emplace_back();
        cell = &lib.cells.back();
        break;
      case RecordTag::kStrName:
        if (cell == nullptr) return std::nullopt;
        cell->name = asciiFrom(payload);
        break;
      case RecordTag::kBoundary:
        if (cell == nullptr) return std::nullopt;
        cell->boundaries.emplace_back();
        boundary = &cell->boundaries.back();
        break;
      case RecordTag::kSref:
        if (cell == nullptr) return std::nullopt;
        cell->srefs.emplace_back();
        sref = &cell->srefs.back();
        break;
      case RecordTag::kAref:
        if (cell == nullptr) return std::nullopt;
        cell->arefs.emplace_back();
        aref = &cell->arefs.back();
        break;
      case RecordTag::kSname:
        if (sref != nullptr) {
          sref->cellName = asciiFrom(payload);
        } else if (aref != nullptr) {
          aref->cellName = asciiFrom(payload);
        } else {
          return std::nullopt;
        }
        break;
      case RecordTag::kColRow:
        if (aref == nullptr || payload.size() < 4) return std::nullopt;
        aref->cols = getU16(payload.data());
        aref->rows = getU16(payload.data() + 2);
        break;
      case RecordTag::kLayer:
        if (boundary == nullptr || payload.size() < 2) return std::nullopt;
        boundary->layer = static_cast<std::int16_t>(getU16(payload.data()));
        break;
      case RecordTag::kDataType:
        if (boundary == nullptr || payload.size() < 2) return std::nullopt;
        boundary->datatype = static_cast<std::int16_t>(getU16(payload.data()));
        break;
      case RecordTag::kXy: {
        if (payload.size() % 8 != 0) return std::nullopt;
        if (sref != nullptr) {
          if (payload.size() < 8) return std::nullopt;
          sref->origin = {getI32(payload.data()), getI32(payload.data() + 4)};
          break;
        }
        if (aref != nullptr) {
          if (payload.size() < 24) return std::nullopt;
          const geom::Coord x0 = getI32(payload.data());
          const geom::Coord y0 = getI32(payload.data() + 4);
          const geom::Coord xc = getI32(payload.data() + 8);
          const geom::Coord yr = getI32(payload.data() + 20);
          aref->origin = {x0, y0};
          aref->pitchX = aref->cols > 0 ? (xc - x0) / aref->cols : 0;
          aref->pitchY = aref->rows > 0 ? (yr - y0) / aref->rows : 0;
          break;
        }
        if (boundary == nullptr) return std::nullopt;
        const std::size_t n = payload.size() / 8;
        boundary->vertices.clear();
        for (std::size_t i = 0; i < n; ++i) {
          const geom::Coord x = getI32(payload.data() + 8 * i);
          const geom::Coord y = getI32(payload.data() + 8 * i + 4);
          boundary->vertices.push_back({x, y});
        }
        // Strip the repeated closing vertex GDS stores on disk.
        if (boundary->vertices.size() >= 2 &&
            boundary->vertices.front() == boundary->vertices.back()) {
          boundary->vertices.pop_back();
        }
        break;
      }
      case RecordTag::kEndEl:
        boundary = nullptr;
        sref = nullptr;
        aref = nullptr;
        break;
      case RecordTag::kEndStr:
        cell = nullptr;
        boundary = nullptr;
        sref = nullptr;
        aref = nullptr;
        break;
      case RecordTag::kEndLib:
        return sawHeader ? std::optional<Library>(std::move(lib))
                         : std::nullopt;
      default:
        // Unknown records are skipped (forward compatibility).
        break;
    }
  }
  return std::nullopt;  // missing ENDLIB
}

std::optional<Library> Reader::readFile(const std::string& path) {
  // Stream the file through the bounded-buffer scanner instead of slurping
  // it: peak RSS stays O(record) even for multi-gigabyte inputs.
  LibraryCollector collector;
  if (!StreamReader::scan(path, collector, nullptr)) return std::nullopt;
  return collector.takeLibrary();
}

}  // namespace ofl::gds
