// Shared GDSII record encoders.
//
// Writer::serialize (in-memory) and StreamWriter (bounded-memory append)
// both emit bytes through these helpers, so the streamed output is
// byte-identical to the batch output by construction rather than by test
// alone. Payload layouts follow gds_records.hpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gds/gds_records.hpp"
#include "gds/gds_writer.hpp"

namespace ofl::gds::record {

void append(std::vector<std::uint8_t>& out, RecordTag tag,
            const std::vector<std::uint8_t>& payload = {});

std::vector<std::uint8_t> asciiPayload(const std::string& s);

/// 12 zeroed int16 fields (modification + access time). The fixed epoch
/// keeps output byte-identical across runs, which the tests rely on.
std::vector<std::uint8_t> timestampPayload();

/// HEADER + BGNLIB + LIBNAME + UNITS.
void appendFilePrologue(std::vector<std::uint8_t>& out,
                        const std::string& libName, double userUnitsPerDbu,
                        double metersPerDbu);

/// BGNSTR + STRNAME.
void appendCellBegin(std::vector<std::uint8_t>& out, const std::string& name);

void appendBoundary(std::vector<std::uint8_t>& out, const Boundary& b);
void appendSref(std::vector<std::uint8_t>& out, const Sref& s);
void appendAref(std::vector<std::uint8_t>& out, const Aref& a);

/// One rect as a BOUNDARY, in Writer::addRect vertex order.
void appendRect(std::vector<std::uint8_t>& out, std::int16_t layer,
                const geom::Rect& r, std::int16_t datatype = 0);

void appendCellEnd(std::vector<std::uint8_t>& out);
void appendFileEpilogue(std::vector<std::uint8_t>& out);

}  // namespace ofl::gds::record
