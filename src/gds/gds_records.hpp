// GDSII stream-format primitives: record tags, big-endian packing and the
// excess-64 base-16 8-byte real used by the UNITS record.
#pragma once

#include <cstdint>
#include <vector>

namespace ofl::gds {

// Record type byte << 8 | data type byte, as conventionally written.
enum class RecordTag : std::uint16_t {
  kHeader = 0x0002,
  kBgnLib = 0x0102,
  kLibName = 0x0206,
  kUnits = 0x0305,
  kEndLib = 0x0400,
  kBgnStr = 0x0502,
  kStrName = 0x0606,
  kEndStr = 0x0700,
  kBoundary = 0x0800,
  kSref = 0x0A00,
  kAref = 0x0B00,
  kLayer = 0x0D02,
  kDataType = 0x0E02,
  kXy = 0x1003,
  kEndEl = 0x1100,
  kSname = 0x1206,
  kColRow = 0x1302,
};

/// Appends big-endian bytes to `out`.
void putU16(std::vector<std::uint8_t>& out, std::uint16_t v);
void putI32(std::vector<std::uint8_t>& out, std::int32_t v);

/// Reads big-endian values; caller guarantees bounds.
std::uint16_t getU16(const std::uint8_t* p);
std::int32_t getI32(const std::uint8_t* p);

/// IBM hex floating point (GDSII REAL8): sign bit, 7-bit excess-64 base-16
/// exponent, 56-bit mantissa.
std::uint64_t encodeReal8(double value);
double decodeReal8(std::uint64_t bits);

}  // namespace ofl::gds
