#include "gds/gds_writer.hpp"

#include <cstdio>

#include "gds/gds_records.hpp"
#include "gds/record_builder.hpp"

namespace ofl::gds {

namespace record {

void append(std::vector<std::uint8_t>& out, RecordTag tag,
            const std::vector<std::uint8_t>& payload) {
  putU16(out, static_cast<std::uint16_t>(4 + payload.size()));
  putU16(out, static_cast<std::uint16_t>(tag));
  out.insert(out.end(), payload.begin(), payload.end());
}

std::vector<std::uint8_t> asciiPayload(const std::string& s) {
  std::vector<std::uint8_t> p(s.begin(), s.end());
  if (p.size() % 2 != 0) p.push_back(0);  // GDS pads strings to even length
  return p;
}

std::vector<std::uint8_t> timestampPayload() {
  std::vector<std::uint8_t> p;
  for (int i = 0; i < 12; ++i) putU16(p, 0);
  return p;
}

void appendFilePrologue(std::vector<std::uint8_t>& out,
                        const std::string& libName, double userUnitsPerDbu,
                        double metersPerDbu) {
  {
    std::vector<std::uint8_t> p;
    putU16(p, 600);  // stream version
    append(out, RecordTag::kHeader, p);
  }
  append(out, RecordTag::kBgnLib, timestampPayload());
  append(out, RecordTag::kLibName, asciiPayload(libName));
  {
    std::vector<std::uint8_t> p;
    const std::uint64_t uu = encodeReal8(userUnitsPerDbu);
    const std::uint64_t mu = encodeReal8(metersPerDbu);
    for (int i = 7; i >= 0; --i)
      p.push_back(static_cast<std::uint8_t>((uu >> (8 * i)) & 0xFF));
    for (int i = 7; i >= 0; --i)
      p.push_back(static_cast<std::uint8_t>((mu >> (8 * i)) & 0xFF));
    append(out, RecordTag::kUnits, p);
  }
}

void appendCellBegin(std::vector<std::uint8_t>& out, const std::string& name) {
  append(out, RecordTag::kBgnStr, timestampPayload());
  append(out, RecordTag::kStrName, asciiPayload(name));
}

void appendSref(std::vector<std::uint8_t>& out, const Sref& s) {
  append(out, RecordTag::kSref);
  append(out, RecordTag::kSname, asciiPayload(s.cellName));
  std::vector<std::uint8_t> p;
  putI32(p, static_cast<std::int32_t>(s.origin.x));
  putI32(p, static_cast<std::int32_t>(s.origin.y));
  append(out, RecordTag::kXy, p);
  append(out, RecordTag::kEndEl);
}

void appendAref(std::vector<std::uint8_t>& out, const Aref& a) {
  append(out, RecordTag::kAref);
  append(out, RecordTag::kSname, asciiPayload(a.cellName));
  {
    std::vector<std::uint8_t> p;
    putU16(p, static_cast<std::uint16_t>(a.cols));
    putU16(p, static_cast<std::uint16_t>(a.rows));
    append(out, RecordTag::kColRow, p);
  }
  // AREF XY: origin, origin displaced cols*pitchX in x, origin displaced
  // rows*pitchY in y (GDSII stores the far lattice corners).
  std::vector<std::uint8_t> p;
  putI32(p, static_cast<std::int32_t>(a.origin.x));
  putI32(p, static_cast<std::int32_t>(a.origin.y));
  putI32(p, static_cast<std::int32_t>(a.origin.x + a.cols * a.pitchX));
  putI32(p, static_cast<std::int32_t>(a.origin.y));
  putI32(p, static_cast<std::int32_t>(a.origin.x));
  putI32(p, static_cast<std::int32_t>(a.origin.y + a.rows * a.pitchY));
  append(out, RecordTag::kXy, p);
  append(out, RecordTag::kEndEl);
}

void appendBoundary(std::vector<std::uint8_t>& out, const Boundary& b) {
  append(out, RecordTag::kBoundary);
  {
    std::vector<std::uint8_t> p;
    putU16(p, static_cast<std::uint16_t>(b.layer));
    append(out, RecordTag::kLayer, p);
  }
  {
    std::vector<std::uint8_t> p;
    putU16(p, static_cast<std::uint16_t>(b.datatype));
    append(out, RecordTag::kDataType, p);
  }
  {
    std::vector<std::uint8_t> p;
    for (const geom::Point& pt : b.vertices) {
      putI32(p, static_cast<std::int32_t>(pt.x));
      putI32(p, static_cast<std::int32_t>(pt.y));
    }
    // GDS repeats the first vertex to close the loop.
    if (!b.vertices.empty()) {
      putI32(p, static_cast<std::int32_t>(b.vertices.front().x));
      putI32(p, static_cast<std::int32_t>(b.vertices.front().y));
    }
    append(out, RecordTag::kXy, p);
  }
  append(out, RecordTag::kEndEl);
}

void appendRect(std::vector<std::uint8_t>& out, std::int16_t layer,
                const geom::Rect& r, std::int16_t datatype) {
  Boundary b;
  b.layer = layer;
  b.datatype = datatype;
  b.vertices = {{r.xl, r.yl}, {r.xh, r.yl}, {r.xh, r.yh}, {r.xl, r.yh}};
  appendBoundary(out, b);
}

void appendCellEnd(std::vector<std::uint8_t>& out) {
  append(out, RecordTag::kEndStr);
}

void appendFileEpilogue(std::vector<std::uint8_t>& out) {
  append(out, RecordTag::kEndLib);
}

}  // namespace record

std::vector<std::uint8_t> Writer::serialize(const Library& lib) {
  std::vector<std::uint8_t> out;
  record::appendFilePrologue(out, lib.name, lib.userUnitsPerDbu,
                             lib.metersPerDbu);
  for (const Cell& cell : lib.cells) {
    record::appendCellBegin(out, cell.name);
    for (const Boundary& b : cell.boundaries) record::appendBoundary(out, b);
    for (const Sref& s : cell.srefs) record::appendSref(out, s);
    for (const Aref& a : cell.arefs) record::appendAref(out, a);
    record::appendCellEnd(out);
  }
  record::appendFileEpilogue(out);
  return out;
}

long long Writer::writeFile(const Library& lib, const std::string& path) {
  const std::vector<std::uint8_t> bytes = serialize(lib);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return -1;
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  return written == bytes.size() ? static_cast<long long>(bytes.size()) : -1;
}

long long Writer::streamSize(const Library& lib) {
  // Closed-form accounting mirroring serialize(); kept in sync by the
  // round-trip unit test.
  long long size = 4 + 2;           // HEADER
  size += 4 + 24;                   // BGNLIB
  size += 4 + static_cast<long long>((lib.name.size() + 1) / 2 * 2);
  size += 4 + 16;                   // UNITS
  for (const Cell& cell : lib.cells) {
    size += 4 + 24;                 // BGNSTR
    size += 4 + static_cast<long long>((cell.name.size() + 1) / 2 * 2);
    for (const Boundary& b : cell.boundaries) {
      size += 4;                    // BOUNDARY
      size += 4 + 2;                // LAYER
      size += 4 + 2;                // DATATYPE
      size += 4 + 8 * static_cast<long long>(b.vertices.size() + 1);  // XY
      size += 4;                    // ENDEL
    }
    for (const Sref& s : cell.srefs) {
      size += 4;                    // SREF
      size += 4 + static_cast<long long>((s.cellName.size() + 1) / 2 * 2);
      size += 4 + 8;                // XY
      size += 4;                    // ENDEL
    }
    for (const Aref& a : cell.arefs) {
      size += 4;                    // AREF
      size += 4 + static_cast<long long>((a.cellName.size() + 1) / 2 * 2);
      size += 4 + 4;                // COLROW
      size += 4 + 24;               // XY (3 points)
      size += 4;                    // ENDEL
    }
    size += 4;                      // ENDSTR
  }
  size += 4;                        // ENDLIB
  return size;
}

void Writer::addRect(Cell& cell, std::int16_t layer, const geom::Rect& r,
                     std::int16_t datatype) {
  Boundary b;
  b.layer = layer;
  b.datatype = datatype;
  b.vertices = {{r.xl, r.yl}, {r.xh, r.yl}, {r.xh, r.yh}, {r.xl, r.yh}};
  cell.boundaries.push_back(std::move(b));
}

}  // namespace ofl::gds
