#include "gds/byte_source.hpp"

#include <algorithm>
#include <cstring>

namespace ofl::gds {

ByteSource::ByteSource(const std::string& path)
    : ByteSource(path, Options{}) {}

ByteSource::ByteSource(const std::string& path, const Options& options)
    : chunkBytes_(std::max<std::size_t>(options.chunkBytes, 1)) {
  file_ = std::fopen(path.c_str(), "rb");
}

ByteSource::~ByteSource() {
  if (file_ != nullptr) std::fclose(file_);
}

std::size_t ByteSource::ensure(std::size_t n) {
  if (available() >= n) return available();
  if (file_ == nullptr || fileDone_) return available();

  // Slide the unconsumed tail to the front so the buffer never grows past
  // max(chunk, largest single request).
  if (pos_ > 0) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  while (buffer_.size() < n && !fileDone_) {
    const std::size_t want = std::max(chunkBytes_, n - buffer_.size());
    const std::size_t old = buffer_.size();
    buffer_.resize(old + want);
    const std::size_t got = std::fread(buffer_.data() + old, 1, want, file_);
    buffer_.resize(old + got);
    if (got < want) {
      fileDone_ = true;
      ioError_ = std::ferror(file_) != 0;
    }
  }
  return available();
}

void ByteSource::consume(std::size_t n) {
  const std::size_t take = std::min(n, available());
  pos_ += take;
  consumed_ += take;
}

}  // namespace ofl::gds
