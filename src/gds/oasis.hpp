// OASIS-style compact layout serialization ("OFL-OASIS").
//
// The contest motivates the file-size score with layout-storage cost and
// names OASIS as the compact alternative to GDSII (paper Section 1). This
// module implements the OASIS *techniques* — LEB128 variable-length
// integers, modal variables (layer/datatype/width/height persist across
// records), signed coordinate deltas, and grid repetitions — on the same
// Library model the GDS writer uses. The container framing is our own
// (magic "OFLOASIS1"), i.e. this is an OASIS-flavored format, not a
// bit-compatible SEMI OASIS stream; see DESIGN.md.
//
// Typical result: 3-6x smaller than the equivalent GDSII stream for flat
// fill output, more when repetitions apply.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "gds/gds_writer.hpp"
#include "gds/stream_reader.hpp"

namespace ofl::gds {

class OasisWriter {
 public:
  static std::vector<std::uint8_t> serialize(const Library& lib);
  static long long writeFile(const Library& lib, const std::string& path);
  /// Size the serialized stream would have.
  static long long streamSize(const Library& lib);
};

class OasisReader {
 public:
  static std::optional<Library> parse(std::span<const std::uint8_t> bytes);
  static std::optional<Library> readFile(const std::string& path);
};

/// Chunked OFL-OASIS scanner: the OASIS counterpart of StreamReader.
/// Decodes records (varints read incrementally) from a bounded buffer and
/// fires the same StreamEvents, so the sharded ingest path and
/// OasisReader::readFile share one bounded-memory front end.
class OasisStreamReader {
 public:
  struct Options {
    std::size_t chunkBytes = 256 * 1024;
    /// Cap on one string payload (cell/library names). parse() accepts
    /// anything that fits in the file; the streaming path bounds its
    /// buffer explicitly instead.
    std::size_t maxStringBytes = 1 << 20;
  };

  static bool scan(const std::string& path, StreamEvents& events,
                   std::string* error);
  static bool scan(const std::string& path, StreamEvents& events,
                   std::string* error, const Options& options);
};

// Exposed for tests: LEB128 unsigned and zigzag-signed varints.
void putVarUint(std::vector<std::uint8_t>& out, std::uint64_t v);
void putVarInt(std::vector<std::uint8_t>& out, std::int64_t v);
/// Reads a varint at `pos`, advancing it; nullopt on truncation/overflow.
std::optional<std::uint64_t> getVarUint(std::span<const std::uint8_t> bytes,
                                        std::size_t& pos);
std::optional<std::int64_t> getVarInt(std::span<const std::uint8_t> bytes,
                                      std::size_t& pos);

}  // namespace ofl::gds
