#include "layout/gds_compact.hpp"

#include <algorithm>
#include <map>
#include <string>
#include <vector>

namespace ofl::layout {
namespace {

using geom::Coord;
using geom::Rect;

// A horizontal run of equal-size fills at one y with constant pitch.
struct XRun {
  Coord xl;
  Coord yl;
  int count;
  Coord pitchX;  // 0 for single-element runs
};

// Splits the x-sorted positions of one row into maximal constant-pitch
// runs.
std::vector<XRun> findXRuns(Coord yl, std::vector<Coord> xs) {
  std::sort(xs.begin(), xs.end());
  std::vector<XRun> runs;
  std::size_t i = 0;
  while (i < xs.size()) {
    if (i + 1 >= xs.size()) {
      runs.push_back({xs[i], yl, 1, 0});
      break;
    }
    const Coord pitch = xs[i + 1] - xs[i];
    std::size_t j = i + 1;
    while (j + 1 < xs.size() && xs[j + 1] - xs[j] == pitch) ++j;
    const int count = static_cast<int>(j - i + 1);
    if (count >= 2) {
      runs.push_back({xs[i], yl, count, pitch});
      i = j + 1;
    } else {
      runs.push_back({xs[i], yl, 1, 0});
      ++i;
    }
  }
  return runs;
}

// Key identifying x-runs that can stack vertically into one 2-D array.
struct StackKey {
  Coord xl;
  int count;
  Coord pitchX;
  bool operator<(const StackKey& o) const {
    if (xl != o.xl) return xl < o.xl;
    if (count != o.count) return count < o.count;
    return pitchX < o.pitchX;
  }
};

}  // namespace

gds::Library toCompactGds(const Layout& layout, const CompactOptions& options,
                          const std::string& topName) {
  gds::Library lib;
  lib.cells.emplace_back();
  lib.cells[0].name = topName;

  // Fill cells created on demand, keyed by (layer, w, h).
  std::map<std::tuple<int, Coord, Coord>, std::string> fillCells;
  auto fillCellName = [&](int layer, Coord w, Coord h) {
    const auto key = std::make_tuple(layer, w, h);
    auto it = fillCells.find(key);
    if (it != fillCells.end()) return it->second;
    const std::string name = "FILL_" + std::to_string(w) + "x" +
                             std::to_string(h) + "_L" +
                             std::to_string(layer + 1);
    gds::Cell cell;
    cell.name = name;
    gds::Writer::addRect(cell, static_cast<std::int16_t>(layer + 1),
                         {0, 0, w, h}, /*datatype=*/1);
    lib.cells.push_back(std::move(cell));
    fillCells.emplace(key, name);
    return name;
  };

  for (int l = 0; l < layout.numLayers(); ++l) {
    gds::Cell& top = lib.cells[0];  // re-take: lib.cells may reallocate
    const auto gdsLayer = static_cast<std::int16_t>(l + 1);
    for (const Rect& r : layout.layer(l).wires) {
      gds::Writer::addRect(top, gdsLayer, r, /*datatype=*/0);
    }

    // Group fills by exact size.
    std::map<std::pair<Coord, Coord>, std::map<Coord, std::vector<Coord>>>
        bySize;  // (w,h) -> yl -> xl list
    for (const Rect& r : layout.layer(l).fills) {
      bySize[{r.width(), r.height()}][r.yl].push_back(r.xl);
    }

    for (auto& [size, rows] : bySize) {
      const auto [w, h] = size;
      // Per row: constant-pitch x-runs.
      std::map<StackKey, std::vector<XRun>> stacks;
      std::vector<XRun> singles;
      for (auto& [yl, xs] : rows) {
        for (const XRun& run : findXRuns(yl, std::move(xs))) {
          if (run.count == 1) {
            singles.push_back(run);
          } else {
            stacks[{run.xl, run.count, run.pitchX}].push_back(run);
          }
        }
      }

      auto emitRun = [&](const XRun& run, int numRows, Coord pitchY) {
        gds::Cell& topCell = lib.cells[0];
        const int total = run.count * numRows;
        if (total < options.minRunLength) {
          // Too small to pay for a reference: flat boundaries.
          for (int rr = 0; rr < numRows; ++rr) {
            for (int cc = 0; cc < run.count; ++cc) {
              const Coord x = run.xl + cc * run.pitchX;
              const Coord y = run.yl + rr * pitchY;
              gds::Writer::addRect(topCell, gdsLayer, {x, y, x + w, y + h},
                                   /*datatype=*/1);
            }
          }
          return;
        }
        const std::string cellName = fillCellName(l, w, h);
        gds::Cell& topAfter = lib.cells[0];  // fillCellName may reallocate
        if (total == 1) {
          topAfter.srefs.push_back({cellName, {run.xl, run.yl}});
        } else {
          gds::Aref aref;
          aref.cellName = cellName;
          aref.origin = {run.xl, run.yl};
          aref.cols = run.count;
          aref.rows = numRows;
          // GDS requires nonzero pitches even for 1-wide arrays.
          aref.pitchX = run.count > 1 ? run.pitchX : w;
          aref.pitchY = numRows > 1 ? pitchY : h;
          topAfter.arefs.push_back(std::move(aref));
        }
      };

      // Stack equal x-runs at constant y pitch into 2-D arrays.
      for (auto& [key, runs] : stacks) {
        std::sort(runs.begin(), runs.end(),
                  [](const XRun& a, const XRun& b) { return a.yl < b.yl; });
        std::size_t i = 0;
        while (i < runs.size()) {
          std::size_t j = i;
          Coord pitchY = 0;
          if (i + 1 < runs.size()) {
            pitchY = runs[i + 1].yl - runs[i].yl;
            j = i + 1;
            while (j + 1 < runs.size() &&
                   runs[j + 1].yl - runs[j].yl == pitchY) {
              ++j;
            }
          }
          const int numRows = static_cast<int>(j - i + 1);
          if (numRows >= 2) {
            emitRun(runs[i], numRows, pitchY);
            i = j + 1;
          } else {
            emitRun(runs[i], 1, 0);
            ++i;
          }
        }
      }
      for (const XRun& run : singles) emitRun(run, 1, 0);
    }
  }
  return lib;
}

}  // namespace ofl::layout
