// Lithography-friendliness analysis — the paper's stated future work
// ("evaluation on lithography related impacts and methodologies
// considering lithograph-friendliness during dummy fill insertion").
//
// Model: facing shape edges at a gap inside a forbidden-pitch band
// [forbiddenLo, forbiddenHi) print poorly (classic forbidden-pitch rule).
// The checker finds same-layer shape pairs whose axis-aligned gap falls in
// the band while the shapes overlap in the other axis. The fill engine can
// avoid creating such gaps by widening candidate gutters past the band
// (CandidateGenerator::Options::lithoGutter).
#pragma once

#include <vector>

#include "layout/layout.hpp"

namespace ofl::layout {

struct LithoRules {
  geom::Coord forbiddenLo = 12;  // gaps in [lo, hi) are hotspots
  geom::Coord forbiddenHi = 18;
};

struct LithoHotspot {
  int layer;
  geom::Rect a;
  geom::Rect b;
  geom::Coord gap;
};

class LithoChecker {
 public:
  explicit LithoChecker(LithoRules rules) : rules_(rules) {}

  /// Fill-fill and fill-wire forbidden-gap pairs across all layers.
  /// Wire-wire gaps are the routing tool's responsibility and not counted.
  std::vector<LithoHotspot> check(const Layout& layout,
                                  std::size_t maxHotspots = 10000) const;

  /// Count only (no hotspot materialization).
  std::size_t count(const Layout& layout) const;

 private:
  LithoRules rules_;
};

}  // namespace ofl::layout
