#include "layout/shard_store.hpp"

#include <algorithm>
#include <cstdio>

namespace ofl::layout {

namespace {
// Spill granularity when replaying a file: 4096 rects = 128 KiB.
constexpr std::size_t kReadChunkRects = 4096;
}  // namespace

ShardStore::ShardStore(const Options& options) : options_(options) {
  if (options_.spillDir.empty()) options_.spillDir = ".";
}

ShardStore::~ShardStore() {
  for (Spool& s : spools_) {
    if (!s.path.empty()) std::remove(s.path.c_str());
  }
}

ShardStore::SpoolId ShardStore::createSpool() {
  spools_.emplace_back();
  return spools_.size() - 1;
}

void ShardStore::append(SpoolId id, const geom::Rect& r) {
  Spool& s = spools_[id];
  s.mem.push_back(r);
  ++s.total;
  memoryBytes_ += sizeof(geom::Rect);
  maybeSpill();
}

void ShardStore::maybeSpill() {
  if (memoryBytes_ <= options_.memBudgetBytes) return;
  ++spillEvents_;
  for (Spool& s : spools_) {
    if (!s.mem.empty() && !s.released) spill(s);
  }
}

void ShardStore::spill(Spool& s) {
  if (s.path.empty()) {
    s.path = options_.spillDir + "/ofl_spool_" + std::to_string(fileSerial_++) +
             "_" + std::to_string(reinterpret_cast<std::uintptr_t>(this)) +
             ".bin";
  }
  std::FILE* f = std::fopen(s.path.c_str(), "ab");
  if (f == nullptr) {
    ioError_ = true;
    return;
  }
  const std::size_t written =
      std::fwrite(s.mem.data(), sizeof(geom::Rect), s.mem.size(), f);
  if (written != s.mem.size() || std::fclose(f) != 0) ioError_ = true;
  s.onDisk += written;
  spilledBytes_ += written * sizeof(geom::Rect);
  memoryBytes_ -= s.mem.size() * sizeof(geom::Rect);
  s.mem.clear();
  s.mem.shrink_to_fit();
}

ShardStore::Reader::Reader(ShardStore* store, SpoolId id)
    : store_(store), id_(id) {
  const Spool& s = store_->spools_[id];
  remainingOnDisk_ = s.onDisk;
  if (remainingOnDisk_ > 0) {
    file_ = std::fopen(s.path.c_str(), "rb");
    if (file_ == nullptr) {
      store_->ioError_ = true;
      done_ = true;
    }
  }
}

ShardStore::Reader::Reader(Reader&& other) noexcept
    : store_(other.store_),
      id_(other.id_),
      file_(other.file_),
      remainingOnDisk_(other.remainingOnDisk_),
      memPos_(other.memPos_),
      chunk_(std::move(other.chunk_)),
      chunkPos_(other.chunkPos_),
      done_(other.done_) {
  other.file_ = nullptr;
  other.done_ = true;
}

ShardStore::Reader::~Reader() {
  if (file_ != nullptr) std::fclose(file_);
}

bool ShardStore::Reader::next(geom::Rect& out) {
  if (done_) return false;
  if (chunkPos_ < chunk_.size()) {
    out = chunk_[chunkPos_++];
    return true;
  }
  if (remainingOnDisk_ > 0) {
    const std::size_t want = static_cast<std::size_t>(
        std::min<std::uint64_t>(remainingOnDisk_, kReadChunkRects));
    chunk_.resize(want);
    const std::size_t got =
        std::fread(chunk_.data(), sizeof(geom::Rect), want, file_);
    chunk_.resize(got);
    chunkPos_ = 0;
    remainingOnDisk_ -= got;
    if (got < want) {
      store_->ioError_ = true;
      remainingOnDisk_ = 0;
    }
    if (got > 0) {
      out = chunk_[chunkPos_++];
      return true;
    }
  }
  const Spool& s = store_->spools_[id_];
  if (memPos_ < s.mem.size()) {
    out = s.mem[memPos_++];
    return true;
  }
  done_ = true;
  return false;
}

ShardStore::Reader ShardStore::read(SpoolId id) { return Reader(this, id); }

void ShardStore::forEach(SpoolId id,
                         const std::function<void(const geom::Rect&)>& fn) {
  Reader r = read(id);
  geom::Rect rect;
  while (r.next(rect)) fn(rect);
}

std::uint64_t ShardStore::count(SpoolId id) const { return spools_[id].total; }

void ShardStore::release(SpoolId id) {
  Spool& s = spools_[id];
  if (s.released) return;
  memoryBytes_ -= s.mem.size() * sizeof(geom::Rect);
  s.mem.clear();
  s.mem.shrink_to_fit();
  if (!s.path.empty()) {
    std::remove(s.path.c_str());
    s.path.clear();
  }
  s.onDisk = 0;
  s.released = true;
}

}  // namespace ofl::layout
