#include "layout/window_grid.hpp"

#include <algorithm>
#include <cassert>

#include "geometry/boolean.hpp"

namespace ofl::layout {

WindowGrid::WindowGrid(const geom::Rect& die, geom::Coord windowSize)
    : die_(die), windowSize_(std::max<geom::Coord>(windowSize, 1)) {
  cols_ = static_cast<int>((die.width() + windowSize_ - 1) / windowSize_);
  rows_ = static_cast<int>((die.height() + windowSize_ - 1) / windowSize_);
  cols_ = std::max(cols_, 1);
  rows_ = std::max(rows_, 1);
}

geom::Rect WindowGrid::windowRect(int i, int j) const {
  assert(i >= 0 && i < cols_ && j >= 0 && j < rows_);
  const geom::Coord xl = die_.xl + i * windowSize_;
  const geom::Coord yl = die_.yl + j * windowSize_;
  return {xl, yl, std::min(xl + windowSize_, die_.xh),
          std::min(yl + windowSize_, die_.yh)};
}

void WindowGrid::windowRange(const geom::Rect& r, int& i0, int& j0, int& i1,
                             int& j1) const {
  auto clampCol = [this](geom::Coord v) {
    return static_cast<int>(std::clamp<geom::Coord>(v, 0, cols_ - 1));
  };
  auto clampRow = [this](geom::Coord v) {
    return static_cast<int>(std::clamp<geom::Coord>(v, 0, rows_ - 1));
  };
  i0 = clampCol((r.xl - die_.xl) / windowSize_);
  j0 = clampRow((r.yl - die_.yl) / windowSize_);
  i1 = clampCol((r.xh - 1 - die_.xl) / windowSize_);
  j1 = clampRow((r.yh - 1 - die_.yl) / windowSize_);
  if (i1 < i0) i1 = i0;
  if (j1 < j0) j1 = j0;
}

std::vector<std::vector<geom::Rect>> WindowGrid::bucketClipped(
    const std::vector<geom::Rect>& rects) const {
  std::vector<std::vector<geom::Rect>> buckets(
      static_cast<std::size_t>(windowCount()));
  for (const geom::Rect& r : rects) {
    if (r.empty()) continue;
    int i0, j0, i1, j1;
    windowRange(r, i0, j0, i1, j1);
    for (int j = j0; j <= j1; ++j) {
      for (int i = i0; i <= i1; ++i) {
        const geom::Rect clip = r.intersection(windowRect(i, j));
        if (!clip.empty()) {
          buckets[static_cast<std::size_t>(flatIndex(i, j))].push_back(clip);
        }
      }
    }
  }
  return buckets;
}

std::vector<geom::Area> WindowGrid::coveredAreaPerWindow(
    const std::vector<geom::Rect>& rects) const {
  const auto buckets = bucketClipped(rects);
  std::vector<geom::Area> areas(buckets.size(), 0);
  for (std::size_t w = 0; w < buckets.size(); ++w) {
    // Shapes within one window may overlap (e.g. crossing wires), so the
    // union area is required, not the plain sum.
    areas[w] = geom::unionArea(buckets[w]);
  }
  return areas;
}

}  // namespace ofl::layout
