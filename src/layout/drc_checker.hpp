// Post-fill DRC verification.
//
// Checks every fill shape against the rules the sizing stage must satisfy
// (paper constraints 9e-9g): min width, min area, min spacing to other
// fills and to wires on the same layer, die containment and no overlap
// with same-layer shapes. Used by tests and by the Evaluator to reject
// illegal solutions.
#pragma once

#include <string>
#include <vector>

#include "layout/design_rules.hpp"
#include "layout/layout.hpp"

namespace ofl::layout {

enum class DrcViolationKind {
  kMinWidth,
  kMinArea,
  kSpacingFillFill,
  kSpacingFillWire,
  kOverlapSameLayer,
  kOutsideDie,
};

struct DrcViolation {
  DrcViolationKind kind;
  int layer;
  geom::Rect a;
  geom::Rect b;  // second shape for pairwise violations; empty otherwise

  std::string str() const;
};

class DrcChecker {
 public:
  explicit DrcChecker(DesignRules rules) : rules_(rules) {}

  /// All violations among fills of `layout` (wires are assumed legal input).
  /// Stops after `maxViolations` to bound runtime on broken solutions.
  std::vector<DrcViolation> check(const Layout& layout,
                                  std::size_t maxViolations = 1000) const;

 private:
  DesignRules rules_;
};

}  // namespace ofl::layout
