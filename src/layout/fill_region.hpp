// Feasible fill region extraction (paper Fig. 3, "Initial Fill Regions").
//
// The fill region of a layer is the die area minus wires inflated by the
// min fill-to-wire spacing. Computed per window so each window carries its
// own free space for planning and candidate generation.
#pragma once

#include <vector>

#include "geometry/region.hpp"
#include "layout/design_rules.hpp"
#include "layout/layout.hpp"
#include "layout/window_grid.hpp"

namespace ofl::layout {

/// Per-window fill regions for one layer, indexed by WindowGrid::flatIndex.
/// The regions already honor fill-to-wire spacing and die clipping; they do
/// NOT yet honor min width/area (candidate generation handles that).
///
/// When `blockedOut` is given it receives the per-window inflated-wire
/// clips the regions were derived from, i.e. the exact rect sets with
/// region[w] == windowRect(w) minus the union of blockedOut[w]. Downstream
/// kernels use that identity to recompute region combinations from the few
/// source shapes instead of the many decomposed slabs (candidate
/// generation's shared-region kernel).
std::vector<geom::Region> computeFillRegions(
    const Layout& layout, int layer, const WindowGrid& grid,
    const DesignRules& rules,
    std::vector<std::vector<geom::Rect>>* blockedOut = nullptr);

/// Whole-layer fill region (union over windows); used by baselines that do
/// not operate window-by-window.
geom::Region computeLayerFillRegion(const Layout& layout, int layer,
                                    const DesignRules& rules);

}  // namespace ofl::layout
