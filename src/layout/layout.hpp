// Multi-layer layout database.
//
// A Layout holds, per metal layer, the signal wire shapes (fixed input) and
// the dummy fill shapes (the output of a filler). All shapes are axis-
// aligned rectangles in DBU; polygon inputs are decomposed on load (paper
// Section 3, "convert polygons to rectangles").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gds/gds_writer.hpp"
#include "geometry/rect.hpp"

namespace ofl::layout {

struct Layer {
  std::string name;
  std::vector<geom::Rect> wires;
  std::vector<geom::Rect> fills;
};

class Layout {
 public:
  Layout() = default;
  Layout(geom::Rect die, int numLayers);

  const geom::Rect& die() const { return die_; }
  int numLayers() const { return static_cast<int>(layers_.size()); }

  Layer& layer(int l) { return layers_[static_cast<std::size_t>(l)]; }
  const Layer& layer(int l) const {
    return layers_[static_cast<std::size_t>(l)];
  }

  std::size_t wireCount() const;
  std::size_t fillCount() const;

  /// Removes all fills (so a fresh filler can run on the same input).
  void clearFills();

  /// GDSII conversion. Wires carry datatype 0 and fills datatype 1 on GDS
  /// layer l+1 (GDS layer numbers are conventionally 1-based).
  gds::Library toGds(const std::string& topName = "TOP") const;

  /// Builds a layout from a GDS library produced by toGds(). `numLayers`
  /// caps the layer count; boundaries are decomposed into rectangles.
  static Layout fromGds(const gds::Library& lib, const geom::Rect& die,
                        int numLayers);

 private:
  geom::Rect die_;
  std::vector<Layer> layers_;
};

}  // namespace ofl::layout
