#include "layout/design_rules.hpp"

// DesignRules is a plain aggregate; TU anchors the target.
namespace ofl::layout {}
