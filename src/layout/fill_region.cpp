#include "layout/fill_region.hpp"

#include "geometry/boolean.hpp"

namespace ofl::layout {
namespace {

// Wires inflated by spacing, bucketed per window. A wire near a window
// border blocks space in the adjacent window too, which bucketing the
// *inflated* shape captures.
std::vector<std::vector<geom::Rect>> inflatedWiresPerWindow(
    const Layout& layout, int layer, const WindowGrid& grid,
    const DesignRules& rules) {
  std::vector<geom::Rect> inflated;
  inflated.reserve(layout.layer(layer).wires.size());
  for (const geom::Rect& w : layout.layer(layer).wires) {
    inflated.push_back(w.expanded(rules.minSpacing));
  }
  return grid.bucketClipped(inflated);
}

}  // namespace

std::vector<geom::Region> computeFillRegions(
    const Layout& layout, int layer, const WindowGrid& grid,
    const DesignRules& rules,
    std::vector<std::vector<geom::Rect>>* blockedOut) {
  auto blocked = inflatedWiresPerWindow(layout, layer, grid, rules);
  std::vector<geom::Region> regions(static_cast<std::size_t>(grid.windowCount()));
  for (int j = 0; j < grid.rows(); ++j) {
    for (int i = 0; i < grid.cols(); ++i) {
      const auto w = static_cast<std::size_t>(grid.flatIndex(i, j));
      const std::vector<geom::Rect> windowRects{grid.windowRect(i, j)};
      regions[w] = geom::Region::fromDisjoint(
          geom::booleanOp(windowRects, blocked[w], geom::BoolOp::kSubtract));
    }
  }
  if (blockedOut != nullptr) *blockedOut = std::move(blocked);
  return regions;
}

geom::Region computeLayerFillRegion(const Layout& layout, int layer,
                                    const DesignRules& rules) {
  std::vector<geom::Rect> inflated;
  inflated.reserve(layout.layer(layer).wires.size());
  for (const geom::Rect& w : layout.layer(layer).wires) {
    inflated.push_back(w.expanded(rules.minSpacing));
  }
  const std::vector<geom::Rect> dieRects{layout.die()};
  return geom::Region::fromDisjoint(
      geom::booleanOp(dieRects, inflated, geom::BoolOp::kSubtract));
}

}  // namespace ofl::layout
