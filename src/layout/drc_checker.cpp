#include "layout/drc_checker.hpp"

#include <cstdio>

#include "geometry/grid_index.hpp"

namespace ofl::layout {

std::string DrcViolation::str() const {
  const char* names[] = {"min-width",    "min-area",         "fill-fill-spacing",
                         "fill-wire-spacing", "overlap-same-layer", "outside-die"};
  char buf[192];
  std::snprintf(buf, sizeof(buf), "%s layer=%d a=%s b=%s",
                names[static_cast<int>(kind)], layer, a.str().c_str(),
                b.str().c_str());
  return buf;
}

std::vector<DrcViolation> DrcChecker::check(const Layout& layout,
                                            std::size_t maxViolations) const {
  std::vector<DrcViolation> out;
  auto add = [&out, maxViolations](DrcViolation v) {
    if (out.size() < maxViolations) out.push_back(std::move(v));
  };

  for (int l = 0; l < layout.numLayers(); ++l) {
    const Layer& layer = layout.layer(l);
    const auto& fills = layer.fills;

    // Shape-local rules and die containment.
    for (const geom::Rect& f : fills) {
      if (f.width() < rules_.minWidth || f.height() < rules_.minWidth) {
        add({DrcViolationKind::kMinWidth, l, f, {}});
      }
      if (f.area() < rules_.minArea) {
        add({DrcViolationKind::kMinArea, l, f, {}});
      }
      if (!layout.die().contains(f)) {
        add({DrcViolationKind::kOutsideDie, l, f, {}});
      }
    }

    // Pairwise rules via a spatial index over fills and wires. Cell size
    // tracks the query radius so neighbor lists stay short.
    if (fills.empty()) continue;
    const geom::Coord cell =
        std::max<geom::Coord>(4 * rules_.maxFillSize, 64);
    geom::GridIndex fillIndex(layout.die(), cell);
    for (std::size_t i = 0; i < fills.size(); ++i) {
      fillIndex.insert(static_cast<std::uint32_t>(i), fills[i]);
    }
    geom::GridIndex wireIndex(layout.die(), cell);
    for (std::size_t i = 0; i < layer.wires.size(); ++i) {
      wireIndex.insert(static_cast<std::uint32_t>(i), layer.wires[i]);
    }

    for (std::size_t i = 0; i < fills.size(); ++i) {
      const geom::Rect probe = fills[i].expanded(rules_.minSpacing);
      fillIndex.visit(probe, [&](std::uint32_t id) {
        if (id <= i) return;  // report each pair once
        const geom::Rect& other = fills[id];
        if (fills[i].overlaps(other)) {
          add({DrcViolationKind::kOverlapSameLayer, l, fills[i], other});
        } else if (fills[i].distance(other) <
                   static_cast<double>(rules_.minSpacing)) {
          add({DrcViolationKind::kSpacingFillFill, l, fills[i], other});
        }
      });
      wireIndex.visit(probe, [&](std::uint32_t id) {
        const geom::Rect& wire = layer.wires[id];
        if (fills[i].overlaps(wire)) {
          add({DrcViolationKind::kOverlapSameLayer, l, fills[i], wire});
        } else if (fills[i].distance(wire) <
                   static_cast<double>(rules_.minSpacing)) {
          add({DrcViolationKind::kSpacingFillWire, l, fills[i], wire});
        }
      });
      if (out.size() >= maxViolations) return out;
    }
  }
  return out;
}

}  // namespace ofl::layout
