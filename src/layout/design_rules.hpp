// DRC rules relevant to fill insertion (paper Table 1: sm, wm, am) plus
// the practical knobs a fill generator needs.
#pragma once

#include "geometry/rect.hpp"

namespace ofl::layout {

struct DesignRules {
  geom::Coord minWidth = 10;     // wm: min fill width/height
  geom::Coord minSpacing = 10;   // sm: min fill-fill and fill-wire spacing
  geom::Area minArea = 100;      // am: min fill area
  /// Maximum fill dimension; bounds metal pattern size for manufacturability
  /// and caps the per-window problem size.
  geom::Coord maxFillSize = 400;
  /// Foundry maximum window density (dishing limit); 1.0 disables the cap.
  /// Planning clamps every window target to this value.
  double maxDensity = 1.0;

  /// True when `r` alone satisfies the width/area rules.
  bool shapeOk(const geom::Rect& r) const {
    return r.width() >= minWidth && r.height() >= minWidth &&
           r.area() >= minArea;
  }
};

}  // namespace ofl::layout
