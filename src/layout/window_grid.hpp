// Fixed-dissection window grid (paper Fig. 1 / Fig. 2(b)).
//
// The die is divided into N columns x M rows of w x w square windows.
// Windows on the top/right edges may be clipped when the die is not an
// exact multiple of w; density always normalizes by the true window area.
#pragma once

#include <functional>
#include <vector>

#include "geometry/rect.hpp"

namespace ofl::layout {

class WindowGrid {
 public:
  WindowGrid() = default;
  WindowGrid(const geom::Rect& die, geom::Coord windowSize);

  int cols() const { return cols_; }                 // N
  int rows() const { return rows_; }                 // M
  int windowCount() const { return cols_ * rows_; }
  geom::Coord windowSize() const { return windowSize_; }
  const geom::Rect& die() const { return die_; }

  /// Window (i, j): column i in [0, N), row j in [0, M).
  geom::Rect windowRect(int i, int j) const;

  /// Flat index for (i, j); row-major over columns.
  int flatIndex(int i, int j) const { return j * cols_ + i; }

  /// Column/row range of windows a rect touches (clamped to the grid).
  void windowRange(const geom::Rect& r, int& i0, int& j0, int& i1,
                   int& j1) const;

  /// Buckets rects into windows, clipping each to the window boundary.
  /// Result is indexed by flatIndex.
  std::vector<std::vector<geom::Rect>> bucketClipped(
      const std::vector<geom::Rect>& rects) const;

  /// Per-window covered area of a (possibly overlapping) rect set; the
  /// basis of density analysis.
  std::vector<geom::Area> coveredAreaPerWindow(
      const std::vector<geom::Rect>& rects) const;

 private:
  geom::Rect die_;
  geom::Coord windowSize_ = 1;
  int cols_ = 0;
  int rows_ = 0;
};

}  // namespace ofl::layout
