// Budgeted rect spools backing the window-sharded fill pipeline.
//
// The streaming ingest routes every decomposed wire rect into per-
// (layer, window-row) spools plus per-layer pass-through spools; candidate
// and fill rects flow through further spools between passes. A ShardStore
// owns all of them under one byte budget: appends land in memory, and when
// the total exceeds the budget every buffered spool flushes to its own
// spill file (append order preserved: file bytes replay before the
// in-memory tail). Spill files live under `spillDir` and are removed on
// release/destruction.
//
// Not thread-safe: the sharded engine appends and replays from its
// orchestration thread only (workers touch per-window slots, never the
// store).
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "geometry/rect.hpp"

namespace ofl::layout {

class ShardStore {
 public:
  struct Options {
    std::size_t memBudgetBytes = 256u << 20;
    /// Directory for spill files (must exist; "." default).
    std::string spillDir = ".";
  };

  using SpoolId = std::size_t;

  explicit ShardStore(const Options& options);
  ~ShardStore();

  ShardStore(const ShardStore&) = delete;
  ShardStore& operator=(const ShardStore&) = delete;

  SpoolId createSpool();

  void append(SpoolId id, const geom::Rect& r);

  /// Streams one spool's rects in append order (spilled prefix first,
  /// then the in-memory tail). Valid until the spool is appended to,
  /// released, or spilled.
  class Reader {
   public:
    /// False at end of spool (or on read error; see ShardStore::ioError).
    bool next(geom::Rect& out);

   private:
    friend class ShardStore;
    Reader(ShardStore* store, SpoolId id);
    ShardStore* store_;
    SpoolId id_;
    std::FILE* file_ = nullptr;
    std::uint64_t remainingOnDisk_ = 0;
    std::size_t memPos_ = 0;
    std::vector<geom::Rect> chunk_;
    std::size_t chunkPos_ = 0;
    bool done_ = false;

   public:
    Reader(Reader&& other) noexcept;
    Reader& operator=(Reader&&) = delete;
    ~Reader();
  };

  Reader read(SpoolId id);

  /// Replays a whole spool through `fn` (convenience over read()).
  void forEach(SpoolId id, const std::function<void(const geom::Rect&)>& fn);

  std::uint64_t count(SpoolId id) const;

  /// Drops the spool's memory and deletes its spill file.
  void release(SpoolId id);

  /// Current in-memory bytes across all spools.
  std::uint64_t memoryBytes() const { return memoryBytes_; }
  /// Total bytes ever written to spill files.
  std::uint64_t spilledBytes() const { return spilledBytes_; }
  /// Budget-triggered flushes.
  std::uint64_t spillEvents() const { return spillEvents_; }
  bool ioError() const { return ioError_; }

 private:
  struct Spool {
    std::vector<geom::Rect> mem;
    std::string path;       // spill file; empty until first spill
    std::uint64_t onDisk = 0;  // rects in the spill file
    std::uint64_t total = 0;   // rects appended overall
    bool released = false;
  };

  void maybeSpill();
  void spill(Spool& s);

  Options options_;
  std::vector<Spool> spools_;
  std::uint64_t memoryBytes_ = 0;
  std::uint64_t spilledBytes_ = 0;
  std::uint64_t spillEvents_ = 0;
  std::uint64_t fileSerial_ = 0;
  bool ioError_ = false;
};

}  // namespace ofl::layout
