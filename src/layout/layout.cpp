#include "layout/layout.hpp"

#include "gds/flatten.hpp"
#include "geometry/decompose.hpp"

namespace ofl::layout {

Layout::Layout(geom::Rect die, int numLayers) : die_(die) {
  layers_.resize(static_cast<std::size_t>(numLayers));
  for (int l = 0; l < numLayers; ++l) {
    layers_[static_cast<std::size_t>(l)].name = "metal" + std::to_string(l + 1);
  }
}

std::size_t Layout::wireCount() const {
  std::size_t n = 0;
  for (const Layer& layer : layers_) n += layer.wires.size();
  return n;
}

std::size_t Layout::fillCount() const {
  std::size_t n = 0;
  for (const Layer& layer : layers_) n += layer.fills.size();
  return n;
}

void Layout::clearFills() {
  for (Layer& layer : layers_) layer.fills.clear();
}

gds::Library Layout::toGds(const std::string& topName) const {
  gds::Library lib;
  lib.cells.emplace_back();
  gds::Cell& cell = lib.cells.back();
  cell.name = topName;
  for (int l = 0; l < numLayers(); ++l) {
    const auto gdsLayer = static_cast<std::int16_t>(l + 1);
    for (const geom::Rect& r : layer(l).wires) {
      gds::Writer::addRect(cell, gdsLayer, r, /*datatype=*/0);
    }
    for (const geom::Rect& r : layer(l).fills) {
      gds::Writer::addRect(cell, gdsLayer, r, /*datatype=*/1);
    }
  }
  return lib;
}

Layout Layout::fromGds(const gds::Library& lib, const geom::Rect& die,
                       int numLayers) {
  Layout layout(die, numLayers);
  // Resolve any hierarchy (e.g. compacted fill arrays) into boundaries.
  // Referenced cells' shapes are placed where their instances put them, so
  // only the TOP-level expansion is loaded: expanding every cell would
  // duplicate the fill-cell masters at the origin.
  gds::Library flat;
  if (!lib.cells.empty()) {
    flat.cells.push_back(gds::flattenCell(lib));
  }
  for (const gds::Cell& cell : flat.cells) {
    for (const gds::Boundary& b : cell.boundaries) {
      const int l = b.layer - 1;
      if (l < 0 || l >= numLayers) continue;
      const std::vector<geom::Rect> rects =
          geom::decompose(geom::Polygon(b.vertices));
      auto& bucket = (b.datatype == 1) ? layout.layer(l).fills
                                       : layout.layer(l).wires;
      bucket.insert(bucket.end(), rects.begin(), rects.end());
    }
  }
  return layout;
}

}  // namespace ofl::layout
