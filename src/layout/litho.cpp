#include "layout/litho.hpp"

#include <algorithm>

#include "geometry/grid_index.hpp"

namespace ofl::layout {
namespace {

// Axis gap between two rects when their projections on the other axis
// overlap; -1 when there is no facing relation (corner or overlap).
geom::Coord facingGap(const geom::Rect& a, const geom::Rect& b) {
  const bool xOverlap = a.xl < b.xh && b.xl < a.xh;
  const bool yOverlap = a.yl < b.yh && b.yl < a.yh;
  if (xOverlap == yOverlap) return -1;  // disjoint corners or overlapping
  if (yOverlap) {
    return std::max(b.xl - a.xh, a.xl - b.xh);
  }
  return std::max(b.yl - a.yh, a.yl - b.yh);
}

}  // namespace

std::vector<LithoHotspot> LithoChecker::check(const Layout& layout,
                                              std::size_t maxHotspots) const {
  std::vector<LithoHotspot> out;
  for (int l = 0; l < layout.numLayers(); ++l) {
    const Layer& layer = layout.layer(l);
    if (layer.fills.empty()) continue;

    // One index over fills and wires; ids >= fills.size() are wires.
    const geom::Coord cell = std::max<geom::Coord>(8 * rules_.forbiddenHi, 64);
    geom::GridIndex index(layout.die(), cell);
    for (std::size_t i = 0; i < layer.fills.size(); ++i) {
      index.insert(static_cast<std::uint32_t>(i), layer.fills[i]);
    }
    for (std::size_t i = 0; i < layer.wires.size(); ++i) {
      index.insert(static_cast<std::uint32_t>(layer.fills.size() + i),
                   layer.wires[i]);
    }

    for (std::size_t i = 0; i < layer.fills.size(); ++i) {
      const geom::Rect probe = layer.fills[i].expanded(rules_.forbiddenHi);
      index.visit(probe, [&](std::uint32_t id) {
        const bool otherIsWire = id >= layer.fills.size();
        // Count each fill-fill pair once; fill-wire pairs always from the
        // fill's side.
        if (!otherIsWire && id <= i) return;
        const geom::Rect& other =
            otherIsWire ? layer.wires[id - layer.fills.size()]
                        : layer.fills[id];
        const geom::Coord gap = facingGap(layer.fills[i], other);
        if (gap >= rules_.forbiddenLo && gap < rules_.forbiddenHi &&
            out.size() < maxHotspots) {
          out.push_back({l, layer.fills[i], other, gap});
        }
      });
      if (out.size() >= maxHotspots) return out;
    }
  }
  return out;
}

std::size_t LithoChecker::count(const Layout& layout) const {
  return check(layout).size();
}

}  // namespace ofl::layout
