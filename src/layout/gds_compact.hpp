// Hierarchical (fill-array) GDS output.
//
// Dummy fill is overwhelmingly regular: the candidate generator emits
// grids of equal-size cells. Encoding each run as a GDSII AREF of a shared
// per-size fill cell instead of N flat boundaries cuts the output stream
// dramatically — and file size is a scored objective (paper Section 1:
// "large number of fills ... increases the cost of layout storage").
//
// Detection is exact and lossless: fills are grouped by (width, height),
// split into x-runs of >= minRunLength equal-pitch shapes per row, and
// equal x-runs stacked at a constant y pitch merge into 2-D arrays.
// Flattening the result (gds::flatten) reproduces the input rects exactly.
#pragma once

#include "gds/gds_writer.hpp"
#include "layout/layout.hpp"

namespace ofl::layout {

struct CompactOptions {
  /// Minimum shapes in a run before an AREF pays off (an AREF costs about
  /// as much as two boundaries).
  int minRunLength = 3;
};

/// Hierarchical equivalent of Layout::toGds(): wires stay flat in TOP;
/// fill arrays become AREFs of per-size "FILL_<w>x<h>_L<layer>" cells.
gds::Library toCompactGds(const Layout& layout,
                          const CompactOptions& options = {},
                          const std::string& topName = "TOP");

}  // namespace ofl::layout
