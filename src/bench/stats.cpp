#include "bench/stats.hpp"

#include <algorithm>
#include <cmath>
#include <random>

namespace ofl::bench {

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  const double hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  const double lo =
      *std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

double medianAbsDeviation(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  const double med = median(v);
  std::vector<double> dev;
  dev.reserve(v.size());
  for (const double x : v) dev.push_back(std::fabs(x - med));
  return median(std::move(dev));
}

std::vector<std::size_t> madOutliers(const std::vector<double>& v,
                                     double cutoff) {
  std::vector<std::size_t> out;
  if (v.size() < 3) return out;
  const double mad = medianAbsDeviation(v);
  if (mad <= 0.0) return out;
  const double med = median(v);
  for (std::size_t i = 0; i < v.size(); ++i) {
    const double z = 0.6745 * (v[i] - med) / mad;
    if (std::fabs(z) > cutoff) out.push_back(i);
  }
  // A rejection pass that would discard everything (pathological cutoff)
  // keeps the data instead: stats over zero samples are worse than stats
  // over noisy ones.
  if (out.size() >= v.size()) out.clear();
  return out;
}

SeriesStats computeStats(std::vector<double> samples,
                         const StatsOptions& options) {
  SeriesStats s;
  s.samples = std::move(samples);
  s.ciLevel = options.ciLevel;
  if (s.samples.empty()) return s;

  const std::vector<std::size_t> rejected =
      madOutliers(s.samples, options.madCutoff);
  s.rejectedOutliers = rejected.size();
  std::vector<double> kept;
  kept.reserve(s.samples.size());
  std::size_t r = 0;
  for (std::size_t i = 0; i < s.samples.size(); ++i) {
    if (r < rejected.size() && rejected[r] == i) {
      ++r;
      continue;
    }
    kept.push_back(s.samples[i]);
  }

  const auto n = static_cast<double>(kept.size());
  double sum = 0.0;
  s.min = kept.front();
  s.max = kept.front();
  for (const double x : kept) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / n;
  if (kept.size() >= 2) {
    double sq = 0.0;
    for (const double x : kept) sq += (x - s.mean) * (x - s.mean);
    s.stddev = std::sqrt(sq / (n - 1.0));
  }
  s.median = median(kept);

  if (kept.size() == 1) {
    s.ciLo = s.ciHi = s.mean;
    return s;
  }

  // Percentile bootstrap for the mean. mt19937_64 with a fixed seed keeps
  // the bounds reproducible across runs and platforms (the distribution
  // functions below avoid std::uniform_int_distribution, whose mapping is
  // implementation-defined).
  std::mt19937_64 rng(options.seed);
  const std::size_t resamples =
      static_cast<std::size_t>(std::max(1, options.bootstrapResamples));
  std::vector<double> means;
  means.reserve(resamples);
  for (std::size_t b = 0; b < resamples; ++b) {
    double acc = 0.0;
    for (std::size_t i = 0; i < kept.size(); ++i) {
      acc += kept[rng() % kept.size()];
    }
    means.push_back(acc / n);
  }
  std::sort(means.begin(), means.end());
  const double alpha = (1.0 - options.ciLevel) / 2.0;
  const auto pick = [&means](double q) {
    const double pos = q * static_cast<double>(means.size() - 1);
    const auto idx = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(idx);
    if (idx + 1 >= means.size()) return means.back();
    return means[idx] * (1.0 - frac) + means[idx + 1] * frac;
  };
  s.ciLo = pick(alpha);
  s.ciHi = pick(1.0 - alpha);
  return s;
}

}  // namespace ofl::bench
