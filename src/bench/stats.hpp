// Measurement statistics for the shared benchmark harness
// (docs/architecture.md, "Benchmark harness").
//
// Every recorded series goes through the same pipeline: MAD-based outlier
// rejection (modified z-score over the median absolute deviation — robust
// against the scheduler spikes that plague 1-core CI containers), then
// mean/min/max/stddev/median over the surviving samples, then a bootstrap
// percentile confidence interval for the mean. The bootstrap is seeded,
// so identical samples always produce identical CI bounds — the property
// the regression gate and the schema round-trip tests rely on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ofl::bench {

/// Knobs for computeStats. The defaults are what every bench binary and
/// the committed baselines use; tests override them to probe edge cases.
struct StatsOptions {
  /// Modified z-score cutoff: samples with |0.6745*(x-median)/MAD| above
  /// this are rejected as outliers (3.5 is the classic Iglewicz-Hoaglin
  /// recommendation). Rejection is skipped entirely when MAD == 0.
  double madCutoff = 3.5;
  /// Bootstrap resamples for the CI of the mean.
  int bootstrapResamples = 2000;
  /// Two-sided CI level (0.95 -> [2.5%, 97.5%] percentile bounds).
  double ciLevel = 0.95;
  /// Seed for the bootstrap resampler; fixed so stats are a pure function
  /// of the samples.
  std::uint64_t seed = 0x0f111edbeefull;
};

/// Summary of one sample series. `samples` preserves the raw recording
/// order; all other fields are computed over the post-rejection subset.
struct SeriesStats {
  std::vector<double> samples;  // raw, in record order
  std::size_t rejectedOutliers = 0;

  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double stddev = 0.0;  // sample stddev (n-1); 0 when n < 2
  double median = 0.0;
  double ciLo = 0.0;  // bootstrap CI of the mean; == mean when n == 1
  double ciHi = 0.0;
  double ciLevel = 0.95;

  std::size_t kept() const { return samples.size() - rejectedOutliers; }
};

/// Median of `v` (v is copied; empty -> 0).
double median(std::vector<double> v);

/// Median absolute deviation about the median (empty -> 0).
double medianAbsDeviation(const std::vector<double>& v);

/// Indices of samples whose modified z-score exceeds `cutoff`. Returns an
/// empty set when MAD == 0 (constant series) or v.size() < 3 — rejecting
/// from one or two samples is meaningless.
std::vector<std::size_t> madOutliers(const std::vector<double>& v,
                                     double cutoff);

/// Full pipeline: rejection, moments, seeded bootstrap CI.
SeriesStats computeStats(std::vector<double> samples,
                         const StatsOptions& options = {});

}  // namespace ofl::bench
