#include "bench/harness.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>

#include "common/json_util.hpp"
#include "common/memory_usage.hpp"
#include "obs/metrics.hpp"

namespace ofl::bench {
namespace {

const char* directionTag(Direction d) {
  return d == Direction::kLowerIsBetter ? "lower" : "higher";
}

const char* scaleTag(Scale s) {
  return s == Scale::kWallClock ? "wall" : "ratio";
}

}  // namespace

void Series::record(double v) {
  if (harness_ != nullptr && !harness_->recording()) return;
  samples_.push_back(v);
}

Harness::Harness(Options options) : options_(std::move(options)) {
  if (options_.reps < 1) options_.reps = 1;
  if (options_.warmup < 0) options_.warmup = 0;
  if (options_.outPath.empty()) {
    options_.outPath = "BENCH_" + options_.name + ".json";
  }
  machine_ = MachineInfo::capture();
}

Series& Harness::series(const std::string& name, const std::string& unit,
                        Direction direction, Scale scale) {
  for (Series& s : series_) {
    if (s.name_ == name) return s;
  }
  series_.emplace_back(Series(this, name, unit, direction, scale));
  return series_.back();
}

void Harness::runInterleaved(const std::vector<std::function<void()>>& bodies) {
  // Warmup rounds execute every variant with recording suppressed: each
  // variant pays the cold start once and none of it lands in the stats.
  for (int w = 0; w < options_.warmup; ++w) {
    recording_ = false;
    for (const auto& body : bodies) body();
  }
  recording_ = true;
  for (int r = 0; r < options_.reps; ++r) {
    for (const auto& body : bodies) body();
  }
}

Series& Harness::recordRatio(const std::string& name, const Series& numerator,
                             const Series& denominator, Direction direction) {
  Series& out = series(name, "x", direction, Scale::kRatio);
  const std::size_t n =
      std::min(numerator.samples().size(), denominator.samples().size());
  for (std::size_t i = out.samples().size(); i < n; ++i) {
    const double den = denominator.samples()[i];
    out.samples_.push_back(den != 0.0 ? numerator.samples()[i] / den : 0.0);
  }
  return out;
}

bool Harness::check(const std::string& name, bool ok) {
  checks_.push_back({name, ok});
  if (!ok) allOk_ = false;
  return ok;
}

void Harness::param(const std::string& key, const std::string& value) {
  std::string v = "\"";
  json::appendEscaped(v, value);
  v += "\"";
  params_.push_back({key, std::move(v)});
}

void Harness::param(const std::string& key, double value) {
  std::string v;
  json::appendNumber(v, value);
  params_.push_back({key, std::move(v)});
}

void Harness::param(const std::string& key, std::int64_t value) {
  std::string v;
  json::appendNumber(v, value);
  params_.push_back({key, std::move(v)});
}

double Harness::timeIt(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

double Harness::nsPerOp(const std::function<void()>& fn, double minSeconds) {
  // Doubling batches until one batch runs long enough that per-call clock
  // overhead is negligible; returns ns/call for the final batch only.
  std::uint64_t batch = 1;
  for (;;) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < batch; ++i) fn();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (secs >= minSeconds || batch >= (1ull << 40)) {
      return secs * 1e9 / static_cast<double>(batch);
    }
    // Aim past minSeconds with headroom, at least doubling.
    if (secs <= 0.0) {
      batch *= 8;
    } else {
      const double want = 1.5 * minSeconds / secs;
      batch = batch * static_cast<std::uint64_t>(want < 2.0 ? 2.0 : want);
    }
  }
}

std::string Harness::json() const {
  std::string out = "{\"schema\": \"openfill-bench-v1\", \"benchmark\": \"";
  json::appendEscaped(out, options_.name);
  out += "\", \"suite\": \"";
  json::appendEscaped(out, options_.suite);
  out += "\", \"created_unix\": ";
  json::appendNumber(
      out, static_cast<std::int64_t>(std::time(nullptr)));
  out += ", \"reps\": ";
  json::appendNumber(out, static_cast<std::int64_t>(options_.reps));
  out += ", \"warmup\": ";
  json::appendNumber(out, static_cast<std::int64_t>(options_.warmup));
  out += ", \"machine\": " + machine_.json();
  out += ", \"peak_rss_mib\": ";
  json::appendNumber(out, peakMemoryMiB());

  out += ", \"params\": {";
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (i != 0) out += ", ";
    out += "\"";
    json::appendEscaped(out, params_[i].key);
    out += "\": " + params_[i].jsonValue;
  }
  out += "}, \"checks\": {";
  for (std::size_t i = 0; i < checks_.size(); ++i) {
    if (i != 0) out += ", ";
    out += "\"";
    json::appendEscaped(out, checks_[i].name);
    out += checks_[i].ok ? "\": true" : "\": false";
  }
  out += "}, \"ok\": ";
  out += allOk_ ? "true" : "false";

  out += ", \"series\": {";
  bool first = true;
  for (const Series& s : series_) {
    if (!first) out += ", ";
    first = false;
    const SeriesStats st = computeStats(s.samples_, options_.stats);
    out += "\"";
    json::appendEscaped(out, s.name_);
    out += "\": {\"unit\": \"";
    json::appendEscaped(out, s.unit_);
    out += "\", \"direction\": \"";
    out += directionTag(s.direction_);
    out += "\", \"scale\": \"";
    out += scaleTag(s.scale_);
    out += "\", \"samples\": [";
    for (std::size_t i = 0; i < st.samples.size(); ++i) {
      if (i != 0) out += ", ";
      json::appendNumber(out, st.samples[i]);
    }
    out += "], \"rejected_outliers\": ";
    json::appendNumber(out, static_cast<std::uint64_t>(st.rejectedOutliers));
    out += ", \"mean\": ";
    json::appendNumber(out, st.mean);
    out += ", \"min\": ";
    json::appendNumber(out, st.min);
    out += ", \"max\": ";
    json::appendNumber(out, st.max);
    out += ", \"stddev\": ";
    json::appendNumber(out, st.stddev);
    out += ", \"median\": ";
    json::appendNumber(out, st.median);
    out += ", \"ci_lo\": ";
    json::appendNumber(out, st.ciLo);
    out += ", \"ci_hi\": ";
    json::appendNumber(out, st.ciHi);
    out += ", \"ci_level\": ";
    json::appendNumber(out, st.ciLevel);
    out += "}";
  }
  out += "}}";
  return out;
}

int Harness::finish() {
  // Publish into the PR-5 metrics registry so traced runs and `openfill
  // stats --require 'bench.*'` see benchmark results alongside engine
  // metrics. find-or-create works regardless of the enabled flag.
  auto& metrics = obs::MetricsRegistry::instance();
  const std::string prefix = "bench." + options_.name + ".";
  for (const Series& s : series_) {
    const SeriesStats st = computeStats(s.samples_, options_.stats);
    if (st.samples.empty()) continue;
    metrics.gauge(prefix + s.name_).set(st.mean);
  }
  metrics.gauge(prefix + "peak_rss_mib").set(peakMemoryMiB());

  // Human summary.
  std::printf("-- BENCH %s", options_.name.c_str());
  if (!options_.suite.empty()) {
    std::printf(" (suite %s)", options_.suite.c_str());
  }
  std::printf(": %d reps + %d warmup", options_.reps, options_.warmup);
  if (!machine_.gitSha.empty()) {
    std::printf(", git %.10s", machine_.gitSha.c_str());
  }
  std::printf(" --\n");
  std::printf("  %-34s %12s %26s %12s %-4s\n", "series", "mean", "ci95",
              "min", "unit");
  for (const Series& s : series_) {
    const SeriesStats st = computeStats(s.samples_, options_.stats);
    std::printf("  %-34s %12.6g [%11.6g, %11.6g] %12.6g %-4s%s\n",
                s.name_.c_str(), st.mean, st.ciLo, st.ciHi, st.min,
                s.unit_.c_str(),
                st.rejectedOutliers > 0 ? "  (outliers rejected)" : "");
  }
  for (const CheckEntry& c : checks_) {
    std::printf("  check %-28s %s\n", c.name.c_str(),
                c.ok ? "OK" : "FAILED");
  }

  std::ofstream out(options_.outPath);
  if (!out) {
    std::fprintf(stderr, "BENCH %s: cannot write %s\n", options_.name.c_str(),
                 options_.outPath.c_str());
    return 1;
  }
  out << json() << "\n";
  out.close();
  std::printf("  wrote %s%s\n", options_.outPath.c_str(),
              allOk_ ? "" : "  [CHECKS FAILED]");
  return allOk_ ? 0 : 1;
}

BenchArgs BenchArgs::parse(int argc, char** argv,
                           const std::string& defaultSuite, int defaultReps,
                           int defaultWarmup) {
  BenchArgs a;
  a.suite = defaultSuite;
  a.reps = defaultReps;
  a.warmup = defaultWarmup;
  bool sawSuite = false;
  bool sawPositionalReps = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto intValue = [&](const char* flag) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", argv[0], flag);
        std::exit(2);
      }
      char* end = nullptr;
      const long v = std::strtol(argv[++i], &end, 10);
      if (end == nullptr || *end != '\0' || v < 0) {
        std::fprintf(stderr, "%s: bad %s value '%s'\n", argv[0], flag,
                     argv[i]);
        std::exit(2);
      }
      return static_cast<int>(v);
    };
    if (arg == "--reps") {
      a.reps = intValue("--reps");
    } else if (arg == "--warmup") {
      a.warmup = intValue("--warmup");
    } else if (arg == "--out") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: --out needs a value\n", argv[0]);
        std::exit(2);
      }
      a.outPath = argv[++i];
    } else if (arg.rfind("--", 0) == 0) {
      // Bench-specific flags (e.g. --json PATH) pass through untouched,
      // together with their value if one follows.
      a.positional.push_back(arg);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        a.positional.push_back(argv[++i]);
      }
    } else if (!sawSuite) {
      a.suite = arg;
      sawSuite = true;
    } else if (!sawPositionalReps) {
      char* end = nullptr;
      const long v = std::strtol(arg.c_str(), &end, 10);
      if (end != nullptr && *end == '\0' && v > 0) {
        a.reps = static_cast<int>(v);
        sawPositionalReps = true;
      } else {
        a.positional.push_back(arg);
      }
    } else {
      a.positional.push_back(arg);
    }
  }
  return a;
}

Harness::Options BenchArgs::harnessOptions(const std::string& benchName) const {
  Harness::Options o;
  o.name = benchName;
  o.suite = suite;
  o.reps = reps;
  o.warmup = warmup;
  o.outPath = outPath;
  return o;
}

}  // namespace ofl::bench
