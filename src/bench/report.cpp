#include "bench/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "common/json_util.hpp"

namespace ofl::bench {
namespace {

std::string fmtDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string fmtPercent(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", v * 100.0);
  return buf;
}

const char* verdictTag(Verdict v) {
  switch (v) {
    case Verdict::kOk: return "ok";
    case Verdict::kImproved: return "improved";
    case Verdict::kRegressed: return "REGRESSED";
    case Verdict::kSkipped: return "skipped";
    case Verdict::kMissing: return "MISSING";
  }
  return "?";
}

void appendHtmlEscaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      default: out += c;
    }
  }
}

}  // namespace

const SeriesDoc* BenchDoc::find(const std::string& name) const {
  for (const SeriesDoc& s : series) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

bool BenchDoc::fromJson(const std::string& text, BenchDoc& out,
                        std::string& error) {
  const std::optional<json::Value> parsed = json::Value::parse(text);
  if (!parsed || !parsed->isObject()) {
    error = "not a JSON object";
    return false;
  }
  const json::Value& root = *parsed;
  const json::Value* schema = root.find("schema");
  if (schema == nullptr || !schema->isString() ||
      schema->str != "openfill-bench-v1") {
    error = "missing or unsupported schema (want openfill-bench-v1)";
    return false;
  }
  out = BenchDoc{};
  out.schema = schema->str;
  if (const auto* v = root.find("benchmark"); v && v->isString()) {
    out.benchmark = v->str;
  }
  if (const auto* v = root.find("suite"); v && v->isString()) {
    out.suite = v->str;
  }
  if (const auto* v = root.find("created_unix"); v && v->isNumber()) {
    out.createdUnix = static_cast<long long>(v->number);
  }
  if (const auto* v = root.find("reps"); v && v->isNumber()) {
    out.reps = static_cast<int>(v->number);
  }
  if (const auto* v = root.find("warmup"); v && v->isNumber()) {
    out.warmup = static_cast<int>(v->number);
  }
  if (const auto* v = root.find("peak_rss_mib"); v && v->isNumber()) {
    out.peakRssMiB = v->number;
  }
  if (const auto* v = root.find("ok")) {
    out.ok = v->kind != json::Value::Kind::kBool || v->boolean;
  }
  if (const auto* m = root.find("machine"); m && m->isObject()) {
    std::string cpu;
    int cores = 0;
    if (const auto* v = m->find("cpu"); v && v->isString()) cpu = v->str;
    if (const auto* v = m->find("cores"); v && v->isNumber()) {
      cores = static_cast<int>(v->number);
    }
    out.fingerprint = cpu + "/" + std::to_string(cores);
    if (const auto* v = m->find("git_sha"); v && v->isString()) {
      out.gitSha = v->str;
    }
  }
  if (const auto* c = root.find("checks"); c && c->isObject()) {
    for (const auto& [name, v] : c->object) {
      out.checks.emplace_back(name,
                              v.kind != json::Value::Kind::kBool || v.boolean);
    }
  }
  const json::Value* series = root.find("series");
  if (series == nullptr || !series->isObject()) {
    error = "missing series object";
    return false;
  }
  for (const auto& [name, sv] : series->object) {
    if (!sv.isObject()) continue;
    SeriesDoc s;
    s.name = name;
    if (const auto* v = sv.find("unit"); v && v->isString()) s.unit = v->str;
    if (const auto* v = sv.find("direction"); v && v->isString()) {
      s.higherIsBetter = v->str == "higher";
    }
    if (const auto* v = sv.find("scale"); v && v->isString()) {
      s.wallClock = v->str != "ratio";
    }
    if (const auto* v = sv.find("samples"); v && v->isArray()) {
      for (const json::Value& x : v->array) {
        if (x.isNumber()) s.samples.push_back(x.number);
      }
    }
    if (const auto* v = sv.find("rejected_outliers"); v && v->isNumber()) {
      s.rejectedOutliers = static_cast<std::size_t>(v->number);
    }
    const auto num = [&sv](const char* key, double& dst) {
      if (const auto* v = sv.find(key); v && v->isNumber()) dst = v->number;
    };
    num("mean", s.mean);
    num("min", s.min);
    num("max", s.max);
    num("stddev", s.stddev);
    num("median", s.median);
    num("ci_lo", s.ciLo);
    num("ci_hi", s.ciHi);
    num("ci_level", s.ciLevel);
    out.series.push_back(std::move(s));
  }
  return true;
}

bool BenchDoc::load(const std::string& path, BenchDoc& out,
                    std::string& error) {
  std::ifstream in(path);
  if (!in) {
    error = "cannot open " + path;
    return false;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  if (!fromJson(buf.str(), out, error)) {
    error = path + ": " + error;
    return false;
  }
  out.sourcePath = path;
  return true;
}

CompareResult compare(const BenchDoc& baseline, const BenchDoc& current,
                      double threshold) {
  CompareResult result;
  for (const auto& [name, ok] : current.checks) {
    if (!ok) result.checksFailed = true;
  }
  const bool sameMachine =
      !baseline.fingerprint.empty() &&
      baseline.fingerprint == current.fingerprint;

  for (const SeriesDoc& base : baseline.series) {
    SeriesComparison c;
    c.name = base.name;
    c.baselineMean = base.mean;
    const SeriesDoc* cur = current.find(base.name);
    if (cur == nullptr) {
      c.verdict = Verdict::kMissing;
      c.detail = "series absent in current run";
      ++result.missing;
      result.series.push_back(std::move(c));
      continue;
    }
    c.currentMean = cur->mean;
    if (base.wallClock && !sameMachine) {
      c.verdict = Verdict::kSkipped;
      c.detail = "wall-clock series, machine fingerprints differ";
      ++result.skipped;
      result.series.push_back(std::move(c));
      continue;
    }
    // Signed "how much worse": positive = moved the bad way.
    double rel = 0.0;
    if (base.mean != 0.0) {
      rel = (cur->mean - base.mean) / std::fabs(base.mean);
      if (base.higherIsBetter) rel = -rel;
    }
    c.relativeDelta = rel;
    // CI test: does the current interval exclude the baseline mean?
    const bool ciExcludes =
        base.mean < cur->ciLo || base.mean > cur->ciHi;
    if (rel > threshold && ciExcludes) {
      c.verdict = Verdict::kRegressed;
      c.detail = fmtPercent(rel) + " worse, CI [" + fmtDouble(cur->ciLo) +
                 ", " + fmtDouble(cur->ciHi) + "] excludes baseline " +
                 fmtDouble(base.mean);
      ++result.regressions;
    } else if (rel < -threshold && ciExcludes) {
      c.verdict = Verdict::kImproved;
      c.detail = fmtPercent(-rel) + " better";
      ++result.improvements;
    } else {
      c.verdict = Verdict::kOk;
      c.detail = ciExcludes ? "within threshold" : "within CI";
    }
    result.series.push_back(std::move(c));
  }
  return result;
}

std::string renderCompareText(const BenchDoc& baseline,
                              const BenchDoc& current,
                              const CompareResult& result) {
  std::string out;
  char line[512];
  std::snprintf(line, sizeof(line),
                "bench-compare: %s (suite %s)\n  baseline: %s (git %.10s)\n"
                "  current:  %s (git %.10s)\n",
                current.benchmark.c_str(), current.suite.c_str(),
                baseline.sourcePath.empty() ? "<inline>"
                                            : baseline.sourcePath.c_str(),
                baseline.gitSha.c_str(),
                current.sourcePath.empty() ? "<inline>"
                                           : current.sourcePath.c_str(),
                current.gitSha.c_str());
  out += line;
  std::snprintf(line, sizeof(line), "  %-34s %12s %12s %9s  %s\n", "series",
                "baseline", "current", "delta", "verdict");
  out += line;
  for (const SeriesComparison& c : result.series) {
    std::snprintf(line, sizeof(line), "  %-34s %12.6g %12.6g %9s  %-9s %s\n",
                  c.name.c_str(), c.baselineMean, c.currentMean,
                  c.verdict == Verdict::kMissing
                      ? "-"
                      : fmtPercent(c.relativeDelta).c_str(),
                  verdictTag(c.verdict), c.detail.c_str());
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "  %zu regressed, %zu improved, %zu skipped, %zu missing%s\n",
                result.regressions, result.improvements, result.skipped,
                result.missing,
                result.checksFailed ? ", CHECKS FAILED in current run" : "");
  out += line;
  return out;
}

std::string renderTrendReport(std::vector<BenchDoc> docs, double threshold,
                              bool html) {
  // Group by (benchmark, suite); order within a group by creation time so
  // the oldest doc is the baseline and the newest is "current".
  std::map<std::string, std::vector<BenchDoc>> groups;
  for (BenchDoc& d : docs) {
    groups[d.benchmark + " / " + (d.suite.empty() ? "-" : d.suite)]
        .push_back(std::move(d));
  }
  std::string out;
  if (html) {
    out += "<!doctype html>\n<html><head><meta charset=\"utf-8\">"
           "<title>openfill bench trends</title><style>"
           "body{font-family:monospace} table{border-collapse:collapse} "
           "td,th{border:1px solid #999;padding:2px 8px;text-align:right} "
           "th{background:#eee} td.name{text-align:left} "
           ".regressed{background:#fbb} .improved{background:#bfb}"
           "</style></head><body>\n<h1>openfill bench trends</h1>\n";
  } else {
    out += "# openfill bench trends\n";
  }
  for (auto& [key, group] : groups) {
    std::stable_sort(group.begin(), group.end(),
                     [](const BenchDoc& a, const BenchDoc& b) {
                       return a.createdUnix < b.createdUnix;
                     });
    const BenchDoc& base = group.front();
    const BenchDoc& cur = group.back();
    const CompareResult cmp = compare(base, cur, threshold);
    char line[512];
    if (html) {
      out += "<h2>";
      appendHtmlEscaped(out, key);
      std::snprintf(line, sizeof(line), " (%zu runs)</h2>\n", group.size());
      out += line;
      out += "<table><tr><th>series</th><th>oldest</th><th>newest</th>"
             "<th>delta</th><th>verdict</th></tr>\n";
      for (const SeriesComparison& c : cmp.series) {
        const char* cls = c.verdict == Verdict::kRegressed ? " class=\"regressed\""
                          : c.verdict == Verdict::kImproved ? " class=\"improved\""
                                                            : "";
        out += "<tr><td class=\"name\">";
        appendHtmlEscaped(out, c.name);
        std::snprintf(line, sizeof(line),
                      "</td><td>%s</td><td>%s</td><td%s>%s</td><td%s>%s</td>"
                      "</tr>\n",
                      fmtDouble(c.baselineMean).c_str(),
                      fmtDouble(c.currentMean).c_str(), cls,
                      c.verdict == Verdict::kMissing
                          ? "-"
                          : fmtPercent(c.relativeDelta).c_str(),
                      cls, verdictTag(c.verdict));
        out += line;
      }
      out += "</table>\n";
    } else {
      std::snprintf(line, sizeof(line), "\n## %s (%zu runs)\n\n", key.c_str(),
                    group.size());
      out += line;
      out += "| series | oldest | newest | delta | verdict |\n";
      out += "|---|---:|---:|---:|---|\n";
      for (const SeriesComparison& c : cmp.series) {
        std::snprintf(line, sizeof(line), "| %s | %s | %s | %s | %s |\n",
                      c.name.c_str(), fmtDouble(c.baselineMean).c_str(),
                      fmtDouble(c.currentMean).c_str(),
                      c.verdict == Verdict::kMissing
                          ? "-"
                          : fmtPercent(c.relativeDelta).c_str(),
                      verdictTag(c.verdict));
        out += line;
      }
    }
  }
  if (html) out += "</body></html>\n";
  return out;
}

}  // namespace ofl::bench
