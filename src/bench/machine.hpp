// Machine/build metadata stamped into every BENCH_*.json.
//
// Performance numbers are only comparable against the same hardware and
// build, so the harness records where a measurement came from and
// `openfill bench-compare` refuses to gate wall-clock series across
// differing machine fingerprints (ratio series — speedups, hit rates —
// stay comparable everywhere).
#pragma once

#include <string>

namespace ofl::bench {

struct MachineInfo {
  std::string cpuModel;    // /proc/cpuinfo "model name" (first core)
  int cores = 0;           // std::thread::hardware_concurrency
  std::string governor;    // cpufreq scaling_governor, "" if unreadable
  std::string hostname;    // gethostname(), "" if unreadable
  std::string gitSha;      // $OFL_GIT_SHA, else `git rev-parse HEAD`
  std::string buildType;   // CMAKE_BUILD_TYPE baked in at compile time
  std::string buildFlags;  // CMAKE_CXX_FLAGS baked in at compile time

  static MachineInfo capture();

  /// CPU model + core count — the "same hardware" test bench-compare uses
  /// before gating wall-clock series.
  std::string fingerprint() const;

  /// {"cpu": ..., "cores": ..., ...} via json_util (byte-stable).
  std::string json() const;
};

}  // namespace ofl::bench
