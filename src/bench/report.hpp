// Reading and comparing BENCH_*.json artifacts (openfill-bench-v1).
//
// Backs two CLI surfaces:
//   openfill bench-compare A.json B.json --fail-on-regression --threshold P
//     — per-series regression verdict using the stored bootstrap CIs;
//   openfill bench-report DIR
//     — markdown/HTML trend table over a directory of accumulated
//       artifacts, flagging series whose current CI excludes the
//       baseline mean.
//
// Gating rules (see compare()): a series regresses when its mean moved
// in the worse direction by more than the threshold AND the current CI
// excludes the baseline mean — so ordinary 1-core container jitter
// (inside the CI) never trips the gate, while a real slowdown (CI fully
// past baseline) always does. Wall-clock series are only gated when
// both artifacts carry the same machine fingerprint; ratio series
// (speedups, hit rates, counts) gate everywhere.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ofl::bench {

/// One parsed series from a BENCH artifact.
struct SeriesDoc {
  std::string name;
  std::string unit;
  bool higherIsBetter = false;
  bool wallClock = true;
  std::vector<double> samples;
  std::size_t rejectedOutliers = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double stddev = 0.0;
  double median = 0.0;
  double ciLo = 0.0;
  double ciHi = 0.0;
  double ciLevel = 0.95;
};

/// One parsed BENCH_*.json document.
struct BenchDoc {
  std::string schema;
  std::string benchmark;
  std::string suite;
  long long createdUnix = 0;
  int reps = 0;
  int warmup = 0;
  std::string fingerprint;  // machine cpu "/" cores
  std::string gitSha;
  double peakRssMiB = 0.0;
  bool ok = true;
  std::vector<std::pair<std::string, bool>> checks;
  std::vector<SeriesDoc> series;
  std::string sourcePath;  // where it was loaded from ("" for fromJson)

  const SeriesDoc* find(const std::string& name) const;

  /// Parses an openfill-bench-v1 document; on failure returns false and
  /// sets `error`.
  static bool fromJson(const std::string& text, BenchDoc& out,
                       std::string& error);
  static bool load(const std::string& path, BenchDoc& out,
                   std::string& error);
};

enum class Verdict {
  kOk,           // within threshold or CI overlaps baseline mean
  kImproved,     // moved the good way and CI excludes baseline mean
  kRegressed,    // moved the bad way past threshold, CI excludes baseline
  kSkipped,      // wall-clock series across differing machines
  kMissing,      // present in baseline, absent in current
};

struct SeriesComparison {
  std::string name;
  Verdict verdict = Verdict::kOk;
  double baselineMean = 0.0;
  double currentMean = 0.0;
  double relativeDelta = 0.0;  // signed, >0 means worse for the series
  std::string detail;          // human one-liner
};

struct CompareResult {
  std::vector<SeriesComparison> series;
  std::size_t regressions = 0;
  std::size_t improvements = 0;
  std::size_t skipped = 0;
  std::size_t missing = 0;
  bool checksFailed = false;  // current doc has a failed check

  bool hasRegression() const { return regressions > 0 || missing > 0; }
};

/// Compares `current` against `baseline`. `threshold` is the relative
/// mean delta (0.05 = 5%) that must be exceeded, in the series' worse
/// direction, before the CI test is even consulted.
CompareResult compare(const BenchDoc& baseline, const BenchDoc& current,
                      double threshold);

/// Renders a compare result as an aligned text table (stdout of
/// bench-compare).
std::string renderCompareText(const BenchDoc& baseline,
                              const BenchDoc& current,
                              const CompareResult& result);

/// Trend report over accumulated artifacts. Documents are grouped by
/// (benchmark, suite); within each group the oldest document is the
/// baseline and the newest is the current row. Markdown by default,
/// HTML when `html` is set.
std::string renderTrendReport(std::vector<BenchDoc> docs, double threshold,
                              bool html);

}  // namespace ofl::bench
