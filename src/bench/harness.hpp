// Shared benchmark harness (docs/architecture.md, "Benchmark harness").
//
// One measurement layer for every bench_* binary: warmup rounds that are
// executed but never recorded (so every variant pays the cold-cache cost
// equally — the bias the old hand-rolled best-of-3 loops had), N recorded
// repetitions with A/B variants interleaved inside each round (a
// background-load spike lands on all variants instead of skewing one),
// MAD outlier rejection + mean/min/stddev/median + seeded bootstrap
// confidence intervals per series (bench/stats), machine metadata and
// peak RSS capture (bench/machine, common/memory_usage), publication of
// every series mean into the PR-5 metrics registry under
// `bench.<benchmark>.<series>`, and a single versioned BENCH_*.json
// schema emitted through common/json_util:
//
//   {"schema": "openfill-bench-v1", "benchmark": ..., "suite": ...,
//    "created_unix": ..., "reps": ..., "warmup": ...,
//    "machine": {"cpu", "cores", "governor", "hostname", "git_sha",
//                "build_type", "build_flags"},
//    "peak_rss_mib": ..., "params": {...}, "checks": {...}, "ok": ...,
//    "series": {name: {"unit", "direction", "scale", "samples": [...],
//                      "rejected_outliers", "mean", "min", "max",
//                      "stddev", "median", "ci_lo", "ci_hi",
//                      "ci_level"}}}
//
// `openfill bench-compare` / `bench-report` consume the schema
// (bench/report); per-suite baselines live under bench/baselines/.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "bench/machine.hpp"
#include "bench/stats.hpp"

namespace ofl::bench {

/// Whether smaller or larger sample values are the improvement; drives
/// the regression verdict in bench-compare.
enum class Direction { kLowerIsBetter, kHigherIsBetter };

/// Gating class: wall-clock series are machine-dependent and only gate
/// against baselines recorded on the same machine fingerprint; ratio
/// series (speedups, hit rates, counts) gate everywhere.
enum class Scale { kWallClock, kRatio };

class Harness;

/// A named sample series. record() is a no-op during warmup rounds, so
/// bench bodies run identical code cold and hot.
class Series {
 public:
  void record(double v);

  const std::string& name() const { return name_; }
  const std::vector<double>& samples() const { return samples_; }

 private:
  friend class Harness;
  Series(Harness* harness, std::string name, std::string unit,
         Direction direction, Scale scale)
      : harness_(harness), name_(std::move(name)), unit_(std::move(unit)),
        direction_(direction), scale_(scale) {}

  Harness* harness_;
  std::string name_;
  std::string unit_;
  Direction direction_;
  Scale scale_;
  std::vector<double> samples_;
};

class Harness {
 public:
  struct Options {
    std::string name;     // "hotpath" -> BENCH_hotpath.json
    std::string suite;    // contest suite the bench ran on ("" if n/a)
    int reps = 3;         // recorded rounds
    int warmup = 1;       // discarded rounds (run first, never recorded)
    std::string outPath;  // override; default "BENCH_<name>.json"
    StatsOptions stats;
  };

  explicit Harness(Options options);

  /// Find-or-create; the returned reference stays valid for the harness
  /// lifetime. Unit/direction/scale are fixed by the first call.
  Series& series(const std::string& name, const std::string& unit,
                 Direction direction = Direction::kLowerIsBetter,
                 Scale scale = Scale::kWallClock);

  /// Runs every round-body `warmup + reps` times, interleaved: round 0
  /// runs body A, B, C unrecorded (all variants pay the cold start),
  /// rounds 1..reps run A, B, C with Series::record live. Bodies capture
  /// their Series references and record whatever they measure.
  void runInterleaved(const std::vector<std::function<void()>>& bodies);

  /// True while runInterleaved is in a recorded (non-warmup) round; also
  /// true outside runInterleaved, so single-shot benches can record
  /// directly without a round loop.
  bool recording() const { return recording_; }
  int reps() const { return options_.reps; }
  int warmup() const { return options_.warmup; }
  const std::string& suite() const { return options_.suite; }

  /// Elementwise num[i]/den[i] recorded into a ratio series — per-rep
  /// speedups from two timed variants of the same round.
  Series& recordRatio(const std::string& name, const Series& numerator,
                      const Series& denominator,
                      Direction direction = Direction::kHigherIsBetter);

  /// Named pass/fail contract (bit-identical output, budget held, ...).
  /// Recorded into the JSON "checks" object; any failure makes exitCode()
  /// nonzero. Returns `ok` for inline use.
  bool check(const std::string& name, bool ok);

  /// Free-form run parameters recorded into the JSON "params" object.
  void param(const std::string& key, const std::string& value);
  void param(const std::string& key, double value);
  void param(const std::string& key, std::int64_t value);

  /// Seconds spent in fn (one steady-clock pair).
  static double timeIt(const std::function<void()>& fn);

  /// Micro-benchmark helper: runs fn in doubling batches until the batch
  /// takes >= minSeconds, then returns nanoseconds per call — one sample.
  static double nsPerOp(const std::function<void()>& fn,
                        double minSeconds = 0.02);

  /// Computes statistics for every series, captures machine metadata and
  /// peak RSS, publishes `bench.<name>.<series>` gauges into the metrics
  /// registry, writes the BENCH_*.json artifact, and prints a summary
  /// table to stdout. Returns the process exit code: 0 when every check
  /// passed and the artifact was written, 1 otherwise.
  int finish();

  /// The artifact body finish() writes (also available before finish for
  /// tests). Stats are recomputed on each call.
  std::string json() const;

  const MachineInfo& machine() const { return machine_; }

 private:
  struct CheckEntry {
    std::string name;
    bool ok;
  };
  struct ParamEntry {
    std::string key;
    std::string jsonValue;  // pre-rendered (quoted string or bare number)
  };

  Options options_;
  MachineInfo machine_;
  std::deque<Series> series_;  // deque: Series& stays valid as it grows
  std::vector<CheckEntry> checks_;
  std::vector<ParamEntry> params_;
  bool recording_ = true;
  bool allOk_ = true;
};

/// Shared argv convention for bench binaries:
///   bench_x [suite] [reps] [--reps N] [--warmup N] [--out FILE]
/// The positional reps keeps the pre-harness CLI working; --reps wins
/// when both are given. Unknown flags abort with a usage message.
struct BenchArgs {
  std::string suite;
  int reps = 3;
  int warmup = 1;
  std::string outPath;                   // "" = harness default
  std::vector<std::string> positional;   // extras after suite/reps

  static BenchArgs parse(int argc, char** argv,
                         const std::string& defaultSuite, int defaultReps,
                         int defaultWarmup = 1);

  /// Harness options pre-filled from the parsed args.
  Harness::Options harnessOptions(const std::string& benchName) const;
};

}  // namespace ofl::bench
