#include "bench/machine.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <thread>

#include "common/json_util.hpp"

#ifndef OFL_BUILD_TYPE
#define OFL_BUILD_TYPE ""
#endif
#ifndef OFL_CXX_FLAGS
#define OFL_CXX_FLAGS ""
#endif

namespace ofl::bench {
namespace {

std::string firstLineMatching(const char* path, const std::string& prefix) {
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(prefix, 0) == 0) {
      const std::size_t colon = line.find(':');
      if (colon == std::string::npos) return line;
      std::size_t start = colon + 1;
      while (start < line.size() && line[start] == ' ') ++start;
      return line.substr(start);
    }
  }
  return "";
}

std::string readTrimmed(const char* path) {
  std::ifstream in(path);
  std::string s;
  std::getline(in, s);
  while (!s.empty() && (s.back() == '\n' || s.back() == '\r' ||
                        s.back() == ' ')) {
    s.pop_back();
  }
  return s;
}

std::string gitHeadSha() {
  if (const char* env = std::getenv("OFL_GIT_SHA");
      env != nullptr && env[0] != '\0') {
    return env;
  }
  // Benches run from arbitrary build subdirectories; `git` walks up to
  // the enclosing work tree on its own. Failure (no git, no repo) leaves
  // the field empty rather than erroring the bench.
  std::FILE* pipe = ::popen("git rev-parse HEAD 2>/dev/null", "r");
  if (pipe == nullptr) return "";
  char buf[128] = {0};
  std::string sha;
  if (std::fgets(buf, sizeof(buf), pipe) != nullptr) sha = buf;
  ::pclose(pipe);
  while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
    sha.pop_back();
  }
  // A sha is 40 hex chars; anything else is git noise, not a revision.
  if (sha.size() != 40) return "";
  for (const char c : sha) {
    if (std::isxdigit(static_cast<unsigned char>(c)) == 0) return "";
  }
  return sha;
}

}  // namespace

MachineInfo MachineInfo::capture() {
  MachineInfo m;
  m.cpuModel = firstLineMatching("/proc/cpuinfo", "model name");
  m.cores = static_cast<int>(std::thread::hardware_concurrency());
  m.governor =
      readTrimmed("/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor");
  char host[256] = {0};
  if (::gethostname(host, sizeof(host) - 1) == 0) m.hostname = host;
  m.gitSha = gitHeadSha();
  m.buildType = OFL_BUILD_TYPE;
  m.buildFlags = OFL_CXX_FLAGS;
  return m;
}

std::string MachineInfo::fingerprint() const {
  return cpuModel + "/" + std::to_string(cores);
}

std::string MachineInfo::json() const {
  std::string out = "{\"cpu\": \"";
  json::appendEscaped(out, cpuModel);
  out += "\", \"cores\": ";
  json::appendNumber(out, static_cast<std::int64_t>(cores));
  out += ", \"governor\": \"";
  json::appendEscaped(out, governor);
  out += "\", \"hostname\": \"";
  json::appendEscaped(out, hostname);
  out += "\", \"git_sha\": \"";
  json::appendEscaped(out, gitSha);
  out += "\", \"build_type\": \"";
  json::appendEscaped(out, buildType);
  out += "\", \"build_flags\": \"";
  json::appendEscaped(out, buildFlags);
  out += "\"}";
  return out;
}

}  // namespace ofl::bench
