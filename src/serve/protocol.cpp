#include "serve/protocol.hpp"

#include <cstdio>

namespace ofl::serve {

namespace {

void appendKey(std::string& out, const char* key) {
  out += '"';
  out += key;
  out += "\":";
}

void appendString(std::string& out, const char* key, const std::string& v) {
  appendKey(out, key);
  out += '"';
  json::appendEscaped(out, v);
  out += '"';
}

}  // namespace

const char* Request::typeName(Type t) {
  switch (t) {
    case Type::kPing: return "ping";
    case Type::kFill: return "fill";
    case Type::kEco: return "eco";
    case Type::kCheck: return "check";
    case Type::kStats: return "stats";
    case Type::kMetrics: return "metrics";
    case Type::kMetricsJson: return "metrics-json";
    case Type::kTrace: return "trace";
    case Type::kReload: return "reload";
    case Type::kShutdown: return "shutdown";
  }
  return "?";
}

std::optional<Request::Type> Request::typeFromName(const std::string& name) {
  for (const Type t :
       {Type::kPing, Type::kFill, Type::kEco, Type::kCheck, Type::kStats,
        Type::kMetrics, Type::kMetricsJson, Type::kTrace, Type::kReload,
        Type::kShutdown}) {
    if (name == typeName(t)) return t;
  }
  return std::nullopt;
}

std::optional<Request> Request::parse(const std::string& text,
                                      std::string* error) {
  const auto doc = json::Value::parse(text);
  if (!doc.has_value() || !doc->isObject()) {
    *error = "request is not a JSON object";
    return std::nullopt;
  }
  const json::Value* type = doc->find("type");
  if (type == nullptr || !type->isString()) {
    *error = "request missing \"type\"";
    return std::nullopt;
  }
  const auto t = typeFromName(type->str);
  if (!t.has_value()) {
    *error = "unknown request type \"" + type->str + "\"";
    return std::nullopt;
  }
  Request req;
  req.type = *t;
  if (const json::Value* v = doc->find("client"); v != nullptr) {
    if (!v->isString()) {
      *error = "\"client\" must be a string";
      return std::nullopt;
    }
    req.client = v->str;
  }
  if (const json::Value* v = doc->find("spec"); v != nullptr) {
    if (!v->isString()) {
      *error = "\"spec\" must be a string";
      return std::nullopt;
    }
    req.spec = v->str;
  }
  if (const json::Value* v = doc->find("changed"); v != nullptr) {
    if (!v->isArray() || v->array.size() != 4 ||
        !v->array[0].isNumber() || !v->array[1].isNumber() ||
        !v->array[2].isNumber() || !v->array[3].isNumber()) {
      *error = "\"changed\" must be [xl,yl,xh,yh]";
      return std::nullopt;
    }
    req.changed = geom::Rect{static_cast<geom::Coord>(v->array[0].number),
                             static_cast<geom::Coord>(v->array[1].number),
                             static_cast<geom::Coord>(v->array[2].number),
                             static_cast<geom::Coord>(v->array[3].number)};
    req.hasChanged = true;
  }
  if (const json::Value* v = doc->find("timeoutS"); v != nullptr) {
    if (!v->isNumber()) {
      *error = "\"timeoutS\" must be a number";
      return std::nullopt;
    }
    req.timeoutSeconds = v->number;
  }
  if (const json::Value* v = doc->find("suite"); v != nullptr) {
    if (!v->isString()) {
      *error = "\"suite\" must be a string";
      return std::nullopt;
    }
    req.suite = v->str;
  }
  if (const json::Value* v = doc->find("determinism"); v != nullptr) {
    req.determinism = v->kind == json::Value::Kind::kBool && v->boolean;
  }
  if (const json::Value* v = doc->find("jobId"); v != nullptr) {
    if (!v->isNumber()) {
      *error = "\"jobId\" must be a number";
      return std::nullopt;
    }
    req.jobId = static_cast<std::int64_t>(v->number);
  }
  // Per-type required fields.
  if ((req.type == Type::kFill || req.type == Type::kEco ||
       req.type == Type::kCheck) &&
      req.spec.empty()) {
    *error = std::string(typeName(req.type)) + " request missing \"spec\"";
    return std::nullopt;
  }
  if (req.type == Type::kEco && !req.hasChanged) {
    *error = "eco request missing \"changed\"";
    return std::nullopt;
  }
  if (req.type == Type::kTrace && req.jobId < 0) {
    *error = "trace request missing \"jobId\"";
    return std::nullopt;
  }
  return req;
}

std::string Request::toJson() const {
  std::string out = "{";
  appendString(out, "type", typeName(type));
  if (!client.empty()) {
    out += ',';
    appendString(out, "client", client);
  }
  if (!spec.empty()) {
    out += ',';
    appendString(out, "spec", spec);
  }
  if (hasChanged) {
    out += ",\"changed\":[";
    json::appendNumber(out, static_cast<std::int64_t>(changed.xl));
    out += ',';
    json::appendNumber(out, static_cast<std::int64_t>(changed.yl));
    out += ',';
    json::appendNumber(out, static_cast<std::int64_t>(changed.xh));
    out += ',';
    json::appendNumber(out, static_cast<std::int64_t>(changed.yh));
    out += ']';
  }
  if (timeoutSeconds > 0) {
    out += ",\"timeoutS\":";
    json::appendNumber(out, timeoutSeconds);
  }
  if (type == Type::kCheck) {
    out += ',';
    appendString(out, "suite", suite);
    out += ",\"determinism\":";
    out += determinism ? "true" : "false";
  }
  if (type == Type::kTrace) {
    out += ",\"jobId\":";
    json::appendNumber(out, static_cast<std::int64_t>(jobId));
  }
  out += '}';
  return out;
}

std::string errorResponse(const std::string& message, bool rejected,
                          bool draining) {
  std::string out = "{\"ok\":false,";
  appendString(out, "error", message);
  if (rejected) out += ",\"rejected\":true";
  if (draining) out += ",\"draining\":true";
  out += '}';
  return out;
}

std::string okResponse() { return "{\"ok\":true}"; }

std::string toJson(const JobResponse& r) {
  std::string out = "{\"ok\":";
  out += r.status == service::JobStatus::kSucceeded ? "true" : "false";
  out += ",\"jobId\":";
  json::appendNumber(out, static_cast<std::uint64_t>(r.jobId));
  out += ',';
  appendString(out, "status", service::toString(r.status));
  if (!r.error.empty()) {
    out += ',';
    appendString(out, "error", r.error);
  }
  out += ",\"fills\":";
  json::appendNumber(out, static_cast<std::uint64_t>(r.fills));
  out += ",\"cacheHit\":";
  out += r.cacheHit ? "true" : "false";
  out += ",\"cacheKey\":\"";
  char key[24];
  std::snprintf(key, sizeof(key), "%016llx",
                static_cast<unsigned long long>(r.cacheKey));
  out += key;
  out += "\",\"queueSeconds\":";
  json::appendNumber(out, r.queueSeconds);
  out += ",\"runSeconds\":";
  json::appendNumber(out, r.runSeconds);
  out += ",\"outputBytes\":";
  json::appendNumber(out, static_cast<std::int64_t>(r.outputBytes));
  out += ",\"ecoWindowsSkipped\":";
  json::appendNumber(out, static_cast<std::uint64_t>(r.ecoWindowsSkipped));
  out += '}';
  return out;
}

std::string wrapRawJson(const std::string& key, const std::string& rawJson) {
  std::string out = "{\"ok\":true,\"";
  out += key;
  out += "\":";
  out += rawJson;
  out += '}';
  return out;
}

std::string wrapText(const std::string& key, const std::string& text) {
  std::string out = "{\"ok\":true,";
  appendString(out, key.c_str(), text);
  out += '}';
  return out;
}

std::optional<ParsedResponse> ParsedResponse::parse(const std::string& text) {
  auto doc = json::Value::parse(text);
  if (!doc.has_value() || !doc->isObject()) return std::nullopt;
  ParsedResponse r;
  const json::Value* ok = doc->find("ok");
  r.ok = ok != nullptr && ok->kind == json::Value::Kind::kBool && ok->boolean;
  if (const json::Value* e = doc->find("error");
      e != nullptr && e->isString()) {
    r.error = e->str;
  }
  const json::Value* rej = doc->find("rejected");
  r.rejected =
      rej != nullptr && rej->kind == json::Value::Kind::kBool && rej->boolean;
  const json::Value* drain = doc->find("draining");
  r.draining = drain != nullptr && drain->kind == json::Value::Kind::kBool &&
               drain->boolean;
  r.body = std::move(*doc);
  r.raw = text;
  return r;
}

}  // namespace ofl::serve
