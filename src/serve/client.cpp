#include "serve/client.hpp"

#include "serve/frame.hpp"

namespace ofl::serve {

Client::Client(std::string host, int port, double timeoutSeconds)
    : timeout_(timeoutSeconds) {
  fd_ = connectTo(host, port, timeoutSeconds, &error_);
}

std::optional<ParsedResponse> Client::call(const Request& req) {
  return callRaw(req.toJson());
}

std::optional<ParsedResponse> Client::callRaw(const std::string& payload) {
  if (!fd_.valid()) {
    if (error_.empty()) error_ = "not connected";
    return std::nullopt;
  }
  std::string detail;
  if (!writeFrame(fd_.get(), payload, timeout_, &detail)) {
    error_ = "write failed: " + detail;
    fd_.reset();
    return std::nullopt;
  }
  std::string response;
  // Job calls block until the job finishes server-side, which can far
  // exceed the transport timeout — wait for the first response byte
  // without a deadline, then apply the timeout to the frame body.
  const int ready = waitReadable(fd_.get(), -1.0);
  if (ready < 0) {
    error_ = "connection closed while waiting for response";
    fd_.reset();
    return std::nullopt;
  }
  const FrameStatus st =
      readFrame(fd_.get(), &response, timeout_, kDefaultMaxFrameBytes, &detail);
  if (st != FrameStatus::kOk) {
    error_ = std::string("read failed: ") + toString(st);
    if (!detail.empty()) error_ += " (" + detail + ")";
    fd_.reset();
    return std::nullopt;
  }
  auto parsed = ParsedResponse::parse(response);
  if (!parsed.has_value()) error_ = "malformed response: " + response;
  return parsed;
}

}  // namespace ofl::serve
