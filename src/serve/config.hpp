// Daemon configuration for `openfill serve`.
//
// Sources, later wins: built-in defaults -> --config FILE (simple
// `key = value` lines, '#' comments) -> command-line flags. A SIGHUP or a
// `reload` admin request re-reads the file and applies the HOT-RELOADABLE
// subset live (job timeouts, per-client admission limit, frame limits,
// idle timeout); the cold settings (port, worker counts, cache
// sizes/directory) keep their boot values until restart.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ofl::serve {

struct ServeConfig {
  // --- cold (boot-only) ---
  std::string host = "127.0.0.1";
  int port = 0;  // 0 = ephemeral (resolved port printed / queryable)
  int jobs = 1;             // concurrent engine jobs (Scheduler workers)
  int threadsPerJob = 0;    // engine threads per job (0 = split cores)
  std::size_t queueCapacity = 64;
  std::size_t cacheBytes = 64u << 20;         // in-memory result cache
  std::string cacheDir;                       // empty = no persistence
  std::size_t persistentCacheBytes = 256u << 20;  // on-disk budget
  int maxConnections = 64;

  // --- hot-reloadable ---
  double defaultTimeoutSeconds = 0.0;  // per-job deadline (0 = none)
  int maxInflightPerClient = 4;        // admission: jobs in flight per client
  std::size_t maxFrameBytes = 16u << 20;
  double frameTimeoutSeconds = 10.0;  // whole-frame deadline (slow loris)
  double idleTimeoutSeconds = 300.0;  // between requests (0 = forever)
  double writeTimeoutSeconds = 30.0;  // response write deadline

  /// The file this config was loaded from ("" = none); reload re-reads it.
  std::string configPath;

  /// Parses a config file into `*out` (on top of its current values).
  /// Unknown keys and malformed values are collected into `*errors` with
  /// line numbers; returns false when the file cannot be read.
  static bool loadFile(const std::string& path, ServeConfig* out,
                       std::vector<std::string>* errors);

  /// Applies the hot-reloadable subset of `fresh` to `*this`. Returns a
  /// human-readable summary of what changed.
  std::string applyHotReload(const ServeConfig& fresh);
};

}  // namespace ofl::serve
