// Minimal POSIX TCP helpers for the fill daemon (src/serve).
//
// Everything the serve subsystem needs from the socket API, wrapped so the
// server, client and tests never touch raw ::socket calls: an owning fd
// handle, bind/listen on a host:port (port 0 = ephemeral, resolved port
// readable afterwards), accept and connect, and deadline-bounded
// read/write loops built on poll(2). All functions are loopback/IPv4 —
// the daemon is a trusted-network tool, not an internet-facing server
// (docs/architecture.md, "Fill as a service").
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace ofl::serve {

/// Owning file-descriptor handle (move-only; closes on destruction).
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Fd& operator=(Fd&& o) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release();
  void reset();

 private:
  int fd_ = -1;
};

/// Creates a listening TCP socket on `host:port` (SO_REUSEADDR, backlog
/// 64). `port` 0 binds an ephemeral port; `*resolvedPort` (never null)
/// receives the actual port. Returns an invalid Fd and sets `*error` on
/// failure.
Fd listenOn(const std::string& host, int port, int* resolvedPort,
            std::string* error);

/// Accepts one connection; blocks. Returns an invalid Fd on error (the
/// caller decides whether that is fatal — EINTR/ECONNABORTED are not).
Fd acceptOn(int listenFd);

/// Connects to `host:port` with a deadline. Returns an invalid Fd and
/// sets `*error` on failure.
Fd connectTo(const std::string& host, int port, double timeoutSeconds,
             std::string* error);

/// poll(2) the fd for readability up to `timeoutSeconds` (< 0 = forever).
/// Returns +1 readable, 0 timeout, -1 error/hangup-with-no-data.
int waitReadable(int fd, double timeoutSeconds);

/// True when the peer has closed its end (recv(MSG_PEEK) == 0). Pending
/// unread data (e.g. a pipelined request) reports false: the connection
/// is still alive.
bool peerClosed(int fd);

/// Reads exactly `n` bytes with a per-call deadline (`timeoutSeconds`
/// <= 0 = no deadline). Returns n on success, 0 on clean EOF before any
/// byte, -1 on error/timeout/mid-buffer EOF (`*error` set when non-null).
long long readFull(int fd, void* buf, std::size_t n, double timeoutSeconds,
                   std::string* error);

/// Writes all `n` bytes with a deadline. False on error/timeout.
bool writeFull(int fd, const void* buf, std::size_t n, double timeoutSeconds,
               std::string* error);

/// Half-closes the read side so a blocked reader wakes with EOF; used by
/// the server drain to nudge idle connections.
void shutdownRead(int fd);
void shutdownWrite(int fd);

}  // namespace ofl::serve
