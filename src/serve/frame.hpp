// Length-prefixed JSON framing for the fill daemon's wire protocol.
//
// A frame is a 4-byte big-endian payload length followed by that many
// bytes of UTF-8 JSON. The length may not be zero and may not exceed the
// reader's `maxBytes` (default 16 MiB) — a hostile or corrupt length
// prefix is rejected before any allocation of that size. Reads are
// deadline-bounded end to end: once the first byte of a frame arrives the
// whole frame must land within the deadline, so a slow-loris client that
// dribbles one byte per second cannot pin a connection handler forever.
//
// Errors are deliberately coarse: the daemon maps every failure to "log,
// best-effort error frame, close connection" — a malformed client must
// never crash or wedge the server (tests/serve/protocol_hardening).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace ofl::serve {

/// Hard ceiling a reader enforces on the advertised payload length.
constexpr std::size_t kDefaultMaxFrameBytes = 16u << 20;

enum class FrameStatus {
  kOk,
  kEof,       // clean close at a frame boundary (no bytes of a new frame)
  kTooLarge,  // advertised length exceeds maxBytes
  kBadFrame,  // zero length, or the connection died mid-frame
  kTimeout,   // deadline expired (slow loris / stalled peer)
  kIo,        // socket error
};

const char* toString(FrameStatus s);

/// Reads one frame into `*payload`. `timeoutSeconds` bounds the whole
/// frame (<= 0 waits forever); `maxBytes` bounds the advertised length.
FrameStatus readFrame(int fd, std::string* payload, double timeoutSeconds,
                      std::size_t maxBytes = kDefaultMaxFrameBytes,
                      std::string* detail = nullptr);

/// Writes one frame. False on error/timeout (detail set when non-null).
bool writeFrame(int fd, const std::string& payload, double timeoutSeconds,
                std::string* detail = nullptr);

/// Encodes the 4-byte length prefix (exposed for tests that hand-craft
/// malformed frames).
void encodeLength(std::uint32_t n, unsigned char out[4]);
std::uint32_t decodeLength(const unsigned char in[4]);

}  // namespace ofl::serve
