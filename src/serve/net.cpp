#include "serve/net.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace ofl::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::string errnoString(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// Remaining whole milliseconds until `deadline`; -1 when no deadline.
int remainingMs(bool hasDeadline, Clock::time_point deadline) {
  if (!hasDeadline) return -1;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  const long long ms = left.count();
  if (ms <= 0) return 0;
  return ms > 1'000'000 ? 1'000'000 : static_cast<int>(ms);
}

bool parseAddr(const std::string& host, int port, sockaddr_in* addr,
               std::string* error) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(static_cast<std::uint16_t>(port));
  const std::string h = host.empty() ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, h.c_str(), &addr->sin_addr) != 1) {
    if (error != nullptr) *error = "invalid IPv4 address: " + h;
    return false;
  }
  return true;
}

}  // namespace

Fd& Fd::operator=(Fd&& o) noexcept {
  if (this != &o) {
    reset();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

int Fd::release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

void Fd::reset() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

Fd listenOn(const std::string& host, int port, int* resolvedPort,
            std::string* error) {
  sockaddr_in addr;
  if (!parseAddr(host, port, &addr, error)) return Fd();
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) {
    *error = errnoString("socket");
    return Fd();
  }
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    *error = errnoString("bind");
    return Fd();
  }
  if (::listen(fd.get(), 64) != 0) {
    *error = errnoString("listen");
    return Fd();
  }
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    *error = errnoString("getsockname");
    return Fd();
  }
  *resolvedPort = static_cast<int>(ntohs(bound.sin_port));
  return fd;
}

Fd acceptOn(int listenFd) {
  return Fd(::accept4(listenFd, nullptr, nullptr, SOCK_CLOEXEC));
}

Fd connectTo(const std::string& host, int port, double timeoutSeconds,
             std::string* error) {
  sockaddr_in addr;
  if (!parseAddr(host, port, &addr, error)) return Fd();
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) {
    *error = errnoString("socket");
    return Fd();
  }
  // Non-blocking connect + poll so a dead host honors the deadline.
  const int flags = ::fcntl(fd.get(), F_GETFL, 0);
  ::fcntl(fd.get(), F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    *error = errnoString("connect");
    return Fd();
  }
  if (rc != 0) {
    pollfd p{fd.get(), POLLOUT, 0};
    const int ms = timeoutSeconds > 0
                       ? static_cast<int>(timeoutSeconds * 1000.0)
                       : -1;
    rc = ::poll(&p, 1, ms);
    if (rc <= 0) {
      *error = rc == 0 ? "connect: timed out" : errnoString("poll");
      return Fd();
    }
    int soError = 0;
    socklen_t len = sizeof(soError);
    ::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &soError, &len);
    if (soError != 0) {
      *error = std::string("connect: ") + std::strerror(soError);
      return Fd();
    }
  }
  ::fcntl(fd.get(), F_SETFL, flags);
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

int waitReadable(int fd, double timeoutSeconds) {
  pollfd p{fd, POLLIN, 0};
  const int ms = timeoutSeconds < 0
                     ? -1
                     : static_cast<int>(timeoutSeconds * 1000.0);
  const int rc = ::poll(&p, 1, ms);
  if (rc == 0) return 0;
  if (rc < 0) return errno == EINTR ? 0 : -1;
  if ((p.revents & (POLLIN | POLLHUP)) != 0) return 1;
  return -1;  // POLLERR / POLLNVAL
}

bool peerClosed(int fd) {
  char c;
  const long long n = ::recv(fd, &c, 1, MSG_PEEK | MSG_DONTWAIT);
  if (n == 0) return true;
  if (n > 0) return false;
  return !(errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR);
}

long long readFull(int fd, void* buf, std::size_t n, double timeoutSeconds,
                   std::string* error) {
  const bool hasDeadline = timeoutSeconds > 0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             hasDeadline ? timeoutSeconds : 0.0));
  std::size_t got = 0;
  char* out = static_cast<char*>(buf);
  while (got < n) {
    pollfd p{fd, POLLIN, 0};
    const int ms = remainingMs(hasDeadline, deadline);
    if (ms == 0) {
      if (error != nullptr) *error = "read: timed out";
      return -1;
    }
    const int rc = ::poll(&p, 1, ms);
    if (rc == 0) {
      if (error != nullptr) *error = "read: timed out";
      return -1;
    }
    if (rc < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) *error = errnoString("poll");
      return -1;
    }
    const long long r = ::recv(fd, out + got, n - got, 0);
    if (r == 0) {
      if (got == 0) return 0;  // clean EOF at a frame boundary
      if (error != nullptr) *error = "read: connection closed mid-buffer";
      return -1;
    }
    if (r < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      if (error != nullptr) *error = errnoString("recv");
      return -1;
    }
    got += static_cast<std::size_t>(r);
  }
  return static_cast<long long>(got);
}

bool writeFull(int fd, const void* buf, std::size_t n, double timeoutSeconds,
               std::string* error) {
  const bool hasDeadline = timeoutSeconds > 0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             hasDeadline ? timeoutSeconds : 0.0));
  std::size_t sent = 0;
  const char* in = static_cast<const char*>(buf);
  while (sent < n) {
    pollfd p{fd, POLLOUT, 0};
    const int ms = remainingMs(hasDeadline, deadline);
    if (ms == 0) {
      if (error != nullptr) *error = "write: timed out";
      return false;
    }
    const int rc = ::poll(&p, 1, ms);
    if (rc == 0) {
      if (error != nullptr) *error = "write: timed out";
      return false;
    }
    if (rc < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) *error = errnoString("poll");
      return false;
    }
    const long long w = ::send(fd, in + sent, n - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      if (error != nullptr) *error = errnoString("send");
      return false;
    }
    sent += static_cast<std::size_t>(w);
  }
  return true;
}

void shutdownRead(int fd) { ::shutdown(fd, SHUT_RD); }
void shutdownWrite(int fd) { ::shutdown(fd, SHUT_WR); }

}  // namespace ofl::serve
