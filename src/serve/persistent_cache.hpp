// Persistent on-disk result store backing the in-memory ResultCache.
//
// The daemon points this at a directory; every cached fill solution is
// written through as one file named `<16-hex-key>.ofc` containing a
// fixed header (magic, version, key, payload length, FNV-1a payload
// hash) followed by the serialized solution (per-layer fill rects plus
// the producing run's report scalars). A restart re-opens the same
// directory, re-validates every entry header and rebuilds the index, so
// a resubmitted job hits without re-running the engine — the counters
// report these as persistent hits (`cache.persistent_hits`).
//
// Integrity: load() re-reads the payload and recomputes the hash on every
// probe; an entry whose header, size, or hash disagrees is QUARANTINED —
// moved into `<dir>/quarantine/` (best-effort delete on failure) and
// counted, never served. A bit flip on disk degrades to a cache miss.
//
// Budget: the directory is LRU-bounded by `byteBudget` (payload+header
// bytes on disk). Recency is tracked in memory and persisted via file
// mtimes (touch on hit), so the LRU order approximately survives
// restarts. Eviction deletes files oldest-first until under budget.
//
// Thread-safety: one mutex around index and filesystem mutations;
// concurrent load()s of distinct keys serialize on it (entries are
// small — hundreds of KB — so a probe holds the lock only briefly).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "service/result_cache.hpp"

namespace ofl::serve {

class PersistentCache : public service::ResultStore {
 public:
  /// Opens (creating if needed) `dir`. `byteBudget` bounds the on-disk
  /// footprint; 0 disables persistence entirely (load misses, store
  /// drops). Existing entries are validated lazily on first load.
  PersistentCache(std::string dir, std::size_t byteBudget);

  /// False when the directory could not be created/opened; the daemon
  /// refuses to start with a broken cache dir.
  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }
  const std::string& dir() const { return dir_; }

  std::shared_ptr<const service::CachedFill> load(std::uint64_t key) override;
  void store(std::uint64_t key, const service::CachedFill& entry) override;

  struct Counters {
    std::uint64_t loads = 0;
    std::uint64_t loadHits = 0;
    std::uint64_t stores = 0;
    std::uint64_t evictions = 0;
    std::uint64_t quarantined = 0;
    std::size_t entries = 0;
    std::size_t bytesUsed = 0;
    std::size_t byteBudget = 0;
  };
  Counters counters() const;

  /// Serialization used by the entry files (exposed for tests).
  static std::string serialize(const service::CachedFill& entry);
  static std::shared_ptr<const service::CachedFill> deserialize(
      const std::string& payload);

 private:
  struct IndexEntry {
    std::size_t fileBytes = 0;
    std::uint64_t lastUse = 0;  // monotonic use counter (LRU order)
  };

  std::string pathFor(std::uint64_t key) const;
  void scanLocked();
  void evictOverBudgetLocked();
  void quarantineLocked(std::uint64_t key, const std::string& reason);

  std::string dir_;
  std::size_t budget_ = 0;
  bool ok_ = false;
  std::string error_;

  mutable std::mutex mutex_;
  std::map<std::uint64_t, IndexEntry> index_;
  std::size_t bytesUsed_ = 0;
  std::uint64_t useClock_ = 0;
  Counters counters_;
};

}  // namespace ofl::serve
