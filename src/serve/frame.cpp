#include "serve/frame.hpp"

#include "serve/net.hpp"

namespace ofl::serve {

const char* toString(FrameStatus s) {
  switch (s) {
    case FrameStatus::kOk: return "ok";
    case FrameStatus::kEof: return "eof";
    case FrameStatus::kTooLarge: return "frame too large";
    case FrameStatus::kBadFrame: return "malformed frame";
    case FrameStatus::kTimeout: return "timed out";
    case FrameStatus::kIo: return "io error";
  }
  return "?";
}

void encodeLength(std::uint32_t n, unsigned char out[4]) {
  out[0] = static_cast<unsigned char>((n >> 24) & 0xff);
  out[1] = static_cast<unsigned char>((n >> 16) & 0xff);
  out[2] = static_cast<unsigned char>((n >> 8) & 0xff);
  out[3] = static_cast<unsigned char>(n & 0xff);
}

std::uint32_t decodeLength(const unsigned char in[4]) {
  return (static_cast<std::uint32_t>(in[0]) << 24) |
         (static_cast<std::uint32_t>(in[1]) << 16) |
         (static_cast<std::uint32_t>(in[2]) << 8) |
         static_cast<std::uint32_t>(in[3]);
}

FrameStatus readFrame(int fd, std::string* payload, double timeoutSeconds,
                      std::size_t maxBytes, std::string* detail) {
  unsigned char header[4];
  std::string err;
  const long long h = readFull(fd, header, sizeof(header), timeoutSeconds, &err);
  if (h == 0) return FrameStatus::kEof;
  if (h < 0) {
    if (detail != nullptr) *detail = err;
    return err.find("timed out") != std::string::npos ? FrameStatus::kTimeout
                                                      : FrameStatus::kBadFrame;
  }
  const std::uint32_t n = decodeLength(header);
  if (n == 0) {
    if (detail != nullptr) *detail = "zero-length frame";
    return FrameStatus::kBadFrame;
  }
  if (n > maxBytes) {
    if (detail != nullptr) {
      *detail = "frame of " + std::to_string(n) + " bytes exceeds limit of " +
                std::to_string(maxBytes);
    }
    return FrameStatus::kTooLarge;
  }
  payload->resize(n);
  const long long b = readFull(fd, payload->data(), n, timeoutSeconds, &err);
  if (b != static_cast<long long>(n)) {
    if (detail != nullptr) *detail = err.empty() ? "truncated frame" : err;
    payload->clear();
    return err.find("timed out") != std::string::npos ? FrameStatus::kTimeout
                                                      : FrameStatus::kBadFrame;
  }
  return FrameStatus::kOk;
}

bool writeFrame(int fd, const std::string& payload, double timeoutSeconds,
                std::string* detail) {
  if (payload.empty() || payload.size() > 0xffffffffull) {
    if (detail != nullptr) *detail = "payload size out of range";
    return false;
  }
  unsigned char header[4];
  encodeLength(static_cast<std::uint32_t>(payload.size()), header);
  std::string frame(reinterpret_cast<const char*>(header), sizeof(header));
  frame += payload;
  return writeFull(fd, frame.data(), frame.size(), timeoutSeconds, detail);
}

}  // namespace ofl::serve
