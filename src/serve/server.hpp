// The `openfill serve` daemon core (docs/architecture.md, "Fill as a
// service").
//
// One Server owns a listening socket, an accept thread, one handler
// thread per connection, and a shared FillService whose ResultCache is
// backed by the on-disk PersistentCache — so concurrent clients, and
// clients across a daemon restart, share fill results by content hash.
//
// Request lifecycle (per connection, requests handled in order):
//   read frame -> parse Request -> admission -> dispatch -> write frame.
// Admission enforces a global connection cap and a per-client in-flight
// job cap (Request::client); over-limit jobs get {"rejected":true} and
// the connection stays open. While a job runs, the handler polls both the
// job and the socket: a client that disconnects mid-job cancels it
// through the service's CancelToken.
//
// Drain (SIGTERM / shutdown request): stop admitting (draining error
// frames), cancel queued + running jobs, nudge idle connections awake,
// join every handler, leave the write-through persistent cache intact,
// return. The CLI then exits 0.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "serve/config.hpp"
#include "serve/net.hpp"
#include "serve/persistent_cache.hpp"
#include "serve/protocol.hpp"
#include "service/fill_service.hpp"

namespace ofl::serve {

class Server {
 public:
  explicit Server(ServeConfig config);
  ~Server();  // drains if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and starts the accept thread. False + `*error` when
  /// the port cannot be bound or the cache directory is unusable.
  bool start(std::string* error);

  /// The bound port (resolved when config.port was 0).
  int port() const { return port_; }

  /// True once a shutdown request or drain() stopped admission.
  bool draining() const { return draining_.load(std::memory_order_acquire); }
  /// Set by a {"type":"shutdown"} request; the owning loop should then
  /// call drain().
  bool shutdownRequested() const {
    return shutdownRequested_.load(std::memory_order_acquire);
  }

  /// Graceful shutdown: stop admitting, cancel in-flight jobs, join every
  /// connection and the accept thread. Idempotent.
  void drain();

  /// Re-reads the config file (SIGHUP / {"type":"reload"}); returns a
  /// summary of applied hot-reloadable keys or the load error.
  std::string reload();

  struct Counters {
    std::uint64_t connectionsAccepted = 0;
    std::uint64_t connectionsRejected = 0;
    std::uint64_t requests = 0;
    std::uint64_t badFrames = 0;   // malformed/oversized/timed-out frames
    std::uint64_t jobsSubmitted = 0;
    std::uint64_t jobsRejected = 0;  // per-client admission
    std::uint64_t jobsCancelledByDisconnect = 0;
    std::size_t activeConnections = 0;
  };
  Counters counters() const;

  service::FillService& service() { return *service_; }
  const PersistentCache* persistentCache() const { return persist_.get(); }

 private:
  struct Conn {
    Fd fd;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void acceptLoop();
  void handleConnection(Conn* conn);
  /// Dispatches one parsed request; returns the response payload.
  std::string dispatch(const Request& req, int fd);
  std::string runJobRequest(const Request& req, int fd);
  std::string runCheckRequest(const Request& req);
  std::string statsJson();
  std::string traceJson(std::int64_t jobId) const;
  void reapFinishedLocked();

  ServeConfig config_;     // hot fields guarded by configMutex_
  mutable std::mutex configMutex_;
  double frameTimeout() const;
  double writeTimeout() const;
  double idleTimeout() const;
  std::size_t maxFrame() const;
  int maxInflightPerClient() const;
  double defaultJobTimeout() const;

  std::unique_ptr<PersistentCache> persist_;
  std::unique_ptr<service::FillService> service_;

  Fd listenFd_;
  int port_ = 0;
  std::thread acceptThread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> shutdownRequested_{false};

  mutable std::mutex mutex_;  // connections + counters + inflight
  std::list<std::unique_ptr<Conn>> connections_;
  std::map<std::string, int> inflightByClient_;
  Counters counters_;
};

}  // namespace ofl::serve
