#include "serve/persistent_cache.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "common/hash.hpp"
#include "common/logging.hpp"
#include "obs/metrics.hpp"

namespace ofl::serve {

namespace fs = std::filesystem;

namespace {

constexpr char kMagic[8] = {'O', 'F', 'L', 'C', 'A', 'C', 'H', '1'};
constexpr std::uint32_t kVersion = 1;
// magic + version + key + payloadSize + payloadHash
constexpr std::size_t kHeaderBytes = 8 + 4 + 8 + 8 + 8;

void putBytes(std::string& out, const void* p, std::size_t n) {
  out.append(static_cast<const char*>(p), n);
}
void putU32(std::string& out, std::uint32_t v) { putBytes(out, &v, sizeof(v)); }
void putU64(std::string& out, std::uint64_t v) { putBytes(out, &v, sizeof(v)); }
void putI64(std::string& out, std::int64_t v) { putBytes(out, &v, sizeof(v)); }
void putF64(std::string& out, double v) { putBytes(out, &v, sizeof(v)); }

/// Bounds-checked sequential reader over a payload buffer.
class ByteReader {
 public:
  explicit ByteReader(const std::string& buf) : buf_(buf) {}
  bool read(void* out, std::size_t n) {
    if (pos_ + n > buf_.size()) return false;
    std::memcpy(out, buf_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  bool u32(std::uint32_t* v) { return read(v, sizeof(*v)); }
  bool u64(std::uint64_t* v) { return read(v, sizeof(*v)); }
  bool i64(std::int64_t* v) { return read(v, sizeof(*v)); }
  bool f64(double* v) { return read(v, sizeof(*v)); }
  bool atEnd() const { return pos_ == buf_.size(); }

 private:
  const std::string& buf_;
  std::size_t pos_ = 0;
};

std::string headerFor(std::uint64_t key, const std::string& payload) {
  std::string h;
  h.reserve(kHeaderBytes);
  putBytes(h, kMagic, sizeof(kMagic));
  putU32(h, kVersion);
  putU64(h, key);
  putU64(h, payload.size());
  putU64(h, fnv1a64(payload.data(), payload.size()));
  return h;
}

bool readFileBytes(const fs::path& p, std::string* out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  in.seekg(0, std::ios::end);
  const auto size = in.tellg();
  if (size < 0) return false;
  out->resize(static_cast<std::size_t>(size));
  in.seekg(0);
  in.read(out->data(), size);
  return static_cast<bool>(in);
}

std::size_t approximateBytes(
    const std::vector<std::vector<geom::Rect>>& fillsPerLayer) {
  std::size_t bytes = 256;  // matches CachedFill::capture's bookkeeping
  for (const auto& fills : fillsPerLayer) {
    bytes += 64 + fills.size() * sizeof(geom::Rect);
  }
  return bytes;
}

}  // namespace

std::string PersistentCache::serialize(const service::CachedFill& entry) {
  std::string out;
  const fill::FillReport& rep = entry.report;
  putF64(out, rep.planningSeconds);
  putF64(out, rep.candidateSeconds);
  putF64(out, rep.sizingSeconds);
  putF64(out, rep.totalSeconds);
  putU64(out, rep.candidateCount);
  putU64(out, rep.fillCount);
  putU64(out, rep.ecoWindowsSkipped);
  putU32(out, static_cast<std::uint32_t>(rep.threadsUsed));
  putU32(out, static_cast<std::uint32_t>(rep.layerTargets.size()));
  for (const double t : rep.layerTargets) putF64(out, t);
  putU32(out, static_cast<std::uint32_t>(entry.fillsPerLayer.size()));
  for (const auto& fills : entry.fillsPerLayer) {
    putU64(out, fills.size());
    for (const geom::Rect& f : fills) {
      putI64(out, f.xl);
      putI64(out, f.yl);
      putI64(out, f.xh);
      putI64(out, f.yh);
    }
  }
  return out;
}

std::shared_ptr<const service::CachedFill> PersistentCache::deserialize(
    const std::string& payload) {
  ByteReader in(payload);
  auto entry = std::make_shared<service::CachedFill>();
  fill::FillReport& rep = entry->report;
  std::uint32_t threads = 0, targets = 0, layers = 0;
  if (!in.f64(&rep.planningSeconds) || !in.f64(&rep.candidateSeconds) ||
      !in.f64(&rep.sizingSeconds) || !in.f64(&rep.totalSeconds)) {
    return nullptr;
  }
  std::uint64_t candidateCount = 0, fillCount = 0, ecoSkipped = 0;
  if (!in.u64(&candidateCount) || !in.u64(&fillCount) ||
      !in.u64(&ecoSkipped) || !in.u32(&threads) || !in.u32(&targets)) {
    return nullptr;
  }
  rep.candidateCount = candidateCount;
  rep.fillCount = fillCount;
  rep.ecoWindowsSkipped = ecoSkipped;
  rep.threadsUsed = static_cast<int>(threads);
  // Sanity bounds: a corrupt count must not drive a giant allocation.
  if (targets > 4096) return nullptr;
  rep.layerTargets.resize(targets);
  for (double& t : rep.layerTargets) {
    if (!in.f64(&t)) return nullptr;
  }
  if (!in.u32(&layers) || layers > 4096) return nullptr;
  entry->fillsPerLayer.resize(layers);
  for (auto& fills : entry->fillsPerLayer) {
    std::uint64_t count = 0;
    if (!in.u64(&count)) return nullptr;
    // Remaining payload must plausibly hold `count` rects.
    if (count > (payload.size() / (4 * sizeof(std::int64_t))) + 1) {
      return nullptr;
    }
    fills.resize(count);
    for (geom::Rect& f : fills) {
      if (!in.i64(&f.xl) || !in.i64(&f.yl) || !in.i64(&f.xh) ||
          !in.i64(&f.yh)) {
        return nullptr;
      }
    }
  }
  if (!in.atEnd()) return nullptr;  // trailing garbage
  entry->bytes = approximateBytes(entry->fillsPerLayer);
  return entry;
}

PersistentCache::PersistentCache(std::string dir, std::size_t byteBudget)
    : dir_(std::move(dir)), budget_(byteBudget) {
  counters_.byteBudget = byteBudget;
  if (budget_ == 0) {
    ok_ = true;  // disabled, never touches the filesystem
    return;
  }
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec || !fs::is_directory(dir_, ec)) {
    error_ = "cannot create cache directory " + dir_ + ": " + ec.message();
    return;
  }
  ok_ = true;
  std::lock_guard<std::mutex> lock(mutex_);
  scanLocked();
}

std::string PersistentCache::pathFor(std::uint64_t key) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%016llx.ofc",
                static_cast<unsigned long long>(key));
  return (fs::path(dir_) / name).string();
}

void PersistentCache::scanLocked() {
  struct Found {
    fs::file_time_type mtime;
    std::uint64_t key;
    std::size_t bytes;
  };
  std::vector<Found> found;
  std::error_code ec;
  for (const auto& de : fs::directory_iterator(dir_, ec)) {
    if (!de.is_regular_file(ec)) continue;
    const fs::path& p = de.path();
    if (p.extension() != ".ofc") continue;
    std::uint64_t key = 0;
    if (std::sscanf(p.stem().string().c_str(), "%llx",
                    reinterpret_cast<unsigned long long*>(&key)) != 1) {
      continue;
    }
    const std::size_t size = static_cast<std::size_t>(de.file_size(ec));
    if (ec || size < kHeaderBytes) {
      // Too short to even hold a header: quarantine immediately.
      quarantineLocked(key, "undersized entry file");
      continue;
    }
    found.push_back({de.last_write_time(ec), key, size});
  }
  // Oldest first, so use-counter order reproduces the on-disk LRU.
  std::sort(found.begin(), found.end(),
            [](const Found& a, const Found& b) { return a.mtime < b.mtime; });
  for (const Found& f : found) {
    index_[f.key] = {f.bytes, ++useClock_};
    bytesUsed_ += f.bytes;
  }
  counters_.entries = index_.size();
  counters_.bytesUsed = bytesUsed_;
  evictOverBudgetLocked();
}

void PersistentCache::quarantineLocked(std::uint64_t key,
                                       const std::string& reason) {
  const fs::path src = pathFor(key);
  std::error_code ec;
  const fs::path qdir = fs::path(dir_) / "quarantine";
  fs::create_directories(qdir, ec);
  fs::rename(src, qdir / src.filename(), ec);
  if (ec) fs::remove(src, ec);  // rename failed: at least drop it
  ++counters_.quarantined;
  if (obs::metricsEnabled()) {
    obs::MetricsRegistry::instance().counter("cache.quarantined").add();
  }
  logFields(LogLevel::kWarn, "cache.quarantine",
            {{"key", std::to_string(key)}, {"reason", reason}});
  const auto it = index_.find(key);
  if (it != index_.end()) {
    bytesUsed_ -= std::min(bytesUsed_, it->second.fileBytes);
    index_.erase(it);
  }
  counters_.entries = index_.size();
  counters_.bytesUsed = bytesUsed_;
}

std::shared_ptr<const service::CachedFill> PersistentCache::load(
    std::uint64_t key) {
  if (budget_ == 0 || !ok_) return nullptr;
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.loads;
  const auto it = index_.find(key);
  if (it == index_.end()) return nullptr;

  std::string bytes;
  if (!readFileBytes(pathFor(key), &bytes) || bytes.size() < kHeaderBytes) {
    quarantineLocked(key, "unreadable entry");
    return nullptr;
  }
  // Validate the header field by field, then the payload hash.
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    quarantineLocked(key, "bad magic");
    return nullptr;
  }
  std::uint32_t version = 0;
  std::uint64_t storedKey = 0, payloadSize = 0, payloadHash = 0;
  std::memcpy(&version, bytes.data() + 8, sizeof(version));
  std::memcpy(&storedKey, bytes.data() + 12, sizeof(storedKey));
  std::memcpy(&payloadSize, bytes.data() + 20, sizeof(payloadSize));
  std::memcpy(&payloadHash, bytes.data() + 28, sizeof(payloadHash));
  if (version != kVersion || storedKey != key ||
      bytes.size() != kHeaderBytes + payloadSize) {
    quarantineLocked(key, "header mismatch");
    return nullptr;
  }
  const std::string payload = bytes.substr(kHeaderBytes);
  if (fnv1a64(payload.data(), payload.size()) != payloadHash) {
    quarantineLocked(key, "payload hash mismatch");
    return nullptr;
  }
  const auto entry = deserialize(payload);
  if (entry == nullptr) {
    quarantineLocked(key, "undecodable payload");
    return nullptr;
  }
  // Refresh recency in memory and on disk (mtime survives restarts).
  it->second.lastUse = ++useClock_;
  std::error_code ec;
  fs::last_write_time(pathFor(key), fs::file_time_type::clock::now(), ec);
  ++counters_.loadHits;
  return entry;
}

void PersistentCache::store(std::uint64_t key,
                            const service::CachedFill& entry) {
  if (budget_ == 0 || !ok_) return;
  const std::string payload = serialize(entry);
  const std::string header = headerFor(key, payload);
  if (header.size() + payload.size() > budget_) return;  // oversized

  std::lock_guard<std::mutex> lock(mutex_);
  const fs::path path = pathFor(key);
  const fs::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return;
    out.write(header.data(), static_cast<std::streamsize>(header.size()));
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    if (!out) {
      std::error_code ec;
      fs::remove(tmp, ec);
      return;
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);  // atomic replace: no torn entries on crash
  if (ec) {
    fs::remove(tmp, ec);
    return;
  }
  const std::size_t fileBytes = header.size() + payload.size();
  const auto it = index_.find(key);
  if (it != index_.end()) {
    bytesUsed_ -= std::min(bytesUsed_, it->second.fileBytes);
  }
  index_[key] = {fileBytes, ++useClock_};
  bytesUsed_ += fileBytes;
  ++counters_.stores;
  counters_.entries = index_.size();
  counters_.bytesUsed = bytesUsed_;
  evictOverBudgetLocked();
}

void PersistentCache::evictOverBudgetLocked() {
  while (bytesUsed_ > budget_ && index_.size() > 1) {
    auto victim = index_.begin();
    for (auto it = index_.begin(); it != index_.end(); ++it) {
      if (it->second.lastUse < victim->second.lastUse) victim = it;
    }
    std::error_code ec;
    fs::remove(pathFor(victim->first), ec);
    bytesUsed_ -= std::min(bytesUsed_, victim->second.fileBytes);
    index_.erase(victim);
    ++counters_.evictions;
  }
  counters_.entries = index_.size();
  counters_.bytesUsed = bytesUsed_;
}

PersistentCache::Counters PersistentCache::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

}  // namespace ofl::serve
