// Wire protocol message types for `openfill serve` (docs/architecture.md,
// "Fill as a service").
//
// Every frame payload is one JSON object. Requests carry a "type" plus
// type-specific fields; job specs reuse the batch manifest line syntax
// (service/manifest.hpp) verbatim, so a job submitted over the wire and a
// manifest line with the same options produce byte-identical output.
//
//   {"type":"ping"}
//   {"type":"fill","client":"ci","spec":"wires.gds --out f.gds --window 1200"}
//   {"type":"eco","spec":"filled.gds --out f2.gds","changed":[xl,yl,xh,yh]}
//   {"type":"check","spec":"filled.gds","suite":"s"}
//   {"type":"stats"}            -> service + serve counters (JSON object)
//   {"type":"metrics"}          -> Prometheus text exposition
//   {"type":"metrics-json"}     -> metrics snapshot (openfill stats schema)
//   {"type":"trace","jobId":3}  -> spans recorded for that job id
//   {"type":"reload"}           -> re-read --config (admin; like SIGHUP)
//   {"type":"shutdown"}         -> graceful drain (admin; like SIGTERM)
//
// Responses always carry "ok" (bool) and, when false, "error" (string).
// Job responses add jobId/status/fills/cacheHit/queueSeconds/runSeconds/
// outputBytes. Parsing is strict: an unknown type or malformed field is a
// per-request error response, never a dropped connection.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/json_util.hpp"
#include "geometry/rect.hpp"
#include "service/job.hpp"

namespace ofl::serve {

struct Request {
  enum class Type {
    kPing,
    kFill,
    kEco,
    kCheck,
    kStats,
    kMetrics,
    kMetricsJson,
    kTrace,
    kReload,
    kShutdown,
  };

  Type type = Type::kPing;
  /// Logical client identity for admission/fairness accounting; empty
  /// defaults to "anon". A client may hold several connections.
  std::string client;
  /// Manifest-style job line (fill/eco/check): input path + options.
  std::string spec;
  /// ECO: the wires-changed region.
  geom::Rect changed;
  bool hasChanged = false;
  /// Per-job deadline override in seconds (<= 0 uses the server default).
  double timeoutSeconds = 0.0;
  /// check: score-table suite and whether to run the 3-run determinism
  /// check (expensive; off by default over the wire).
  std::string suite = "s";
  bool determinism = false;
  /// trace: which job's spans to return.
  std::int64_t jobId = -1;

  static const char* typeName(Type t);
  static std::optional<Type> typeFromName(const std::string& name);

  /// Parses a request payload. nullopt + `*error` on malformed JSON,
  /// unknown type, or wrong field shape.
  static std::optional<Request> parse(const std::string& json,
                                      std::string* error);
  std::string toJson() const;
};

/// Response builders (server side). All return complete JSON objects.
std::string errorResponse(const std::string& message, bool rejected = false,
                          bool draining = false);
std::string okResponse();

struct JobResponse {
  std::uint64_t jobId = 0;
  service::JobStatus status = service::JobStatus::kFailed;
  std::string error;
  std::size_t fills = 0;
  bool cacheHit = false;
  std::uint64_t cacheKey = 0;
  double queueSeconds = 0.0;
  double runSeconds = 0.0;
  long long outputBytes = -1;
  std::size_t ecoWindowsSkipped = 0;
};
std::string toJson(const JobResponse& r);

/// Wraps a pre-rendered JSON object (service stats, metrics snapshot)
/// under the given key: {"ok":true,"<key>":<raw>}.
std::string wrapRawJson(const std::string& key, const std::string& rawJson);
/// Same for a text payload that needs escaping (Prometheus exposition).
std::string wrapText(const std::string& key, const std::string& text);

/// Client-side response accessors.
struct ParsedResponse {
  bool ok = false;
  bool rejected = false;  // admission rejection (retry later)
  bool draining = false;  // server shutting down
  std::string error;
  json::Value body;  // full response object
  std::string raw;   // the payload text verbatim (submit --json prints it)

  static std::optional<ParsedResponse> parse(const std::string& json);
};

}  // namespace ofl::serve
