// Self-pipe signal plumbing shared by `openfill serve` and `openfill
// batch`. Installing handlers routes SIGTERM/SIGINT/SIGHUP onto a pipe
// whose read end can be polled alongside sockets; the handlers only
// write one byte, so everything else stays async-signal-safe.
#pragma once

namespace ofl::serve {

enum class SignalKind {
  kNone,   // poll timed out, no signal pending
  kDrain,  // SIGTERM or SIGINT: stop admitting, finish in-flight, exit 0
  kReload, // SIGHUP: re-read the config file
};

/// Installs handlers for SIGTERM, SIGINT and (when `withReload`) SIGHUP.
/// Returns false if the pipe could not be created. Call once per process.
bool installSignalHandlers(bool withReload);

/// Restores default dispositions and closes the pipe (tests call this so
/// repeated install/uninstall cycles stay balanced).
void uninstallSignalHandlers();

/// Waits up to `timeoutSeconds` (<0 = forever) for a pending signal and
/// consumes it. Returns kNone on timeout.
SignalKind waitSignal(double timeoutSeconds);

/// Non-blocking probe: consumes and returns a pending signal, if any.
SignalKind pollSignal();

/// File descriptor of the pipe read end (-1 when not installed); poll it
/// with POLLIN to multiplex signals with socket readiness.
int signalFd();

}  // namespace ofl::serve
