#include "serve/server.hpp"

#include <cstdio>

#include "common/json_util.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/frame.hpp"
#include "service/layout_io.hpp"
#include "service/manifest.hpp"
#include "verify/invariants.hpp"

namespace ofl::serve {

namespace {

// Handler poll granularity: how often a job-waiting handler checks the
// socket for a disconnect, and an idle handler checks for drain.
constexpr double kPollSliceSeconds = 0.1;

void bumpCounter(const char* name) {
  obs::MetricsRegistry::instance().counter(name).add();
}

}  // namespace

Server::Server(ServeConfig config) : config_(std::move(config)) {}

Server::~Server() { drain(); }

double Server::frameTimeout() const {
  std::lock_guard<std::mutex> lock(configMutex_);
  return config_.frameTimeoutSeconds;
}
double Server::writeTimeout() const {
  std::lock_guard<std::mutex> lock(configMutex_);
  return config_.writeTimeoutSeconds;
}
double Server::idleTimeout() const {
  std::lock_guard<std::mutex> lock(configMutex_);
  return config_.idleTimeoutSeconds;
}
std::size_t Server::maxFrame() const {
  std::lock_guard<std::mutex> lock(configMutex_);
  return config_.maxFrameBytes;
}
int Server::maxInflightPerClient() const {
  std::lock_guard<std::mutex> lock(configMutex_);
  return config_.maxInflightPerClient;
}
double Server::defaultJobTimeout() const {
  std::lock_guard<std::mutex> lock(configMutex_);
  return config_.defaultTimeoutSeconds;
}

bool Server::start(std::string* error) {
  if (running_.load()) {
    *error = "server already started";
    return false;
  }
  if (!config_.cacheDir.empty()) {
    persist_ = std::make_unique<PersistentCache>(config_.cacheDir,
                                                 config_.persistentCacheBytes);
    if (!persist_->ok()) {
      *error = "persistent cache: " + persist_->error();
      return false;
    }
  }
  service::ServiceOptions sopts;
  sopts.maxConcurrentJobs = config_.jobs;
  sopts.threadsPerJob = config_.threadsPerJob;
  sopts.cacheBytes = config_.cacheBytes;
  sopts.defaultTimeoutSeconds = 0.0;  // deadlines applied per job spec
  sopts.queueCapacity = config_.queueCapacity;
  sopts.resultStore = persist_.get();
  service_ = std::make_unique<service::FillService>(sopts);

  listenFd_ = listenOn(config_.host, config_.port, &port_, error);
  if (!listenFd_.valid()) return false;

  // The daemon always collects metrics and spans: stats/metrics/trace
  // requests must work without a restart.
  obs::MetricsRegistry::instance().setEnabled(true);
  obs::registerCoreSeries();
  auto& reg = obs::MetricsRegistry::instance();
  reg.counter("serve.connections_accepted");
  reg.counter("serve.connections_rejected");
  reg.counter("serve.requests");
  reg.counter("serve.bad_frames");
  reg.counter("serve.jobs_submitted");
  reg.counter("serve.jobs_rejected");
  reg.counter("serve.jobs_cancelled_by_disconnect");
  reg.gauge("serve.active_connections");
  reg.gauge("serve.clients");
  reg.gauge("serve.cache.persistent_hit_ratio");
  reg.histogram("serve.queue_seconds");
  obs::Tracer::instance().setEnabled(true);

  running_.store(true);
  acceptThread_ = std::thread([this] { acceptLoop(); });
  return true;
}

void Server::acceptLoop() {
  while (!draining_.load(std::memory_order_acquire)) {
    const int ready = waitReadable(listenFd_.get(), kPollSliceSeconds);
    if (ready < 0) break;
    if (ready == 0) {
      std::lock_guard<std::mutex> lock(mutex_);
      reapFinishedLocked();
      continue;
    }
    Fd client = acceptOn(listenFd_.get());
    if (!client.valid()) continue;
    std::lock_guard<std::mutex> lock(mutex_);
    reapFinishedLocked();
    if (draining_.load(std::memory_order_acquire) ||
        connections_.size() >= static_cast<std::size_t>(config_.maxConnections)) {
      ++counters_.connectionsRejected;
      bumpCounter("serve.connections_rejected");
      const std::string err = errorResponse(
          draining_.load() ? "server is draining" : "too many connections",
          /*rejected=*/true, /*draining=*/draining_.load());
      std::string detail;
      writeFrame(client.get(), err, writeTimeout(), &detail);
      continue;  // client Fd closes on scope exit
    }
    ++counters_.connectionsAccepted;
    bumpCounter("serve.connections_accepted");
    auto conn = std::make_unique<Conn>();
    conn->fd = std::move(client);
    Conn* raw = conn.get();
    connections_.push_back(std::move(conn));
    obs::MetricsRegistry::instance().gauge("serve.active_connections")
        .set(static_cast<double>(connections_.size()));
    raw->thread = std::thread([this, raw] { handleConnection(raw); });
  }
}

void Server::reapFinishedLocked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
  obs::MetricsRegistry::instance().gauge("serve.active_connections")
      .set(static_cast<double>(connections_.size()));
}

void Server::handleConnection(Conn* conn) {
  const int fd = conn->fd.get();
  double idleFor = 0.0;
  while (true) {
    if (draining_.load(std::memory_order_acquire)) break;
    const int ready = waitReadable(fd, kPollSliceSeconds);
    if (ready < 0) break;  // hangup/error with nothing to read
    if (ready == 0) {
      idleFor += kPollSliceSeconds;
      const double limit = idleTimeout();
      if (limit > 0 && idleFor >= limit) break;
      continue;
    }
    idleFor = 0.0;
    std::string payload;
    std::string detail;
    const FrameStatus st =
        readFrame(fd, &payload, frameTimeout(), maxFrame(), &detail);
    if (st == FrameStatus::kEof) break;
    if (st != FrameStatus::kOk) {
      // Malformed/oversized/stalled frame: best-effort error frame, then
      // close — resynchronizing a byte stream after a bad length prefix
      // is not possible.
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.badFrames;
      }
      bumpCounter("serve.bad_frames");
      std::string msg = std::string("bad frame: ") + toString(st);
      if (!detail.empty()) msg += " (" + detail + ")";
      writeFrame(fd, errorResponse(msg), writeTimeout(), nullptr);
      break;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++counters_.requests;
    }
    bumpCounter("serve.requests");

    std::string response;
    std::string parseError;
    const auto req = Request::parse(payload, &parseError);
    if (!req.has_value()) {
      response = errorResponse(parseError);
    } else {
      response = dispatch(*req, fd);
    }
    if (response.empty()) break;  // client vanished mid-job; just close
    if (!writeFrame(fd, response, writeTimeout(), &detail)) break;
  }
  shutdownWrite(fd);
  conn->done.store(true, std::memory_order_release);
}

std::string Server::dispatch(const Request& req, int fd) {
  switch (req.type) {
    case Request::Type::kPing:
      return okResponse();
    case Request::Type::kFill:
    case Request::Type::kEco:
      return runJobRequest(req, fd);
    case Request::Type::kCheck:
      return runCheckRequest(req);
    case Request::Type::kStats:
      return wrapRawJson("stats", statsJson());
    case Request::Type::kMetrics: {
      service::exportToMetrics(service_->stats());
      obs::updateProcessGauges();
      return wrapText("metrics",
                      obs::MetricsRegistry::instance().snapshot().prometheus());
    }
    case Request::Type::kMetricsJson: {
      service::exportToMetrics(service_->stats());
      obs::updateProcessGauges();
      return wrapRawJson("metrics",
                         obs::MetricsRegistry::instance().snapshot().json());
    }
    case Request::Type::kTrace:
      return wrapRawJson("spans", traceJson(req.jobId));
    case Request::Type::kReload:
      return wrapText("reload", reload());
    case Request::Type::kShutdown:
      shutdownRequested_.store(true, std::memory_order_release);
      return okResponse();
  }
  return errorResponse("unhandled request type");
}

std::string Server::runJobRequest(const Request& req, int fd) {
  if (draining_.load(std::memory_order_acquire)) {
    return errorResponse("server is draining", /*rejected=*/true,
                         /*draining=*/true);
  }
  const service::ManifestParse parsed = service::parseManifestText(req.spec);
  if (!parsed.ok() || parsed.jobs.size() != 1) {
    std::string msg = "bad job spec";
    if (!parsed.errors.empty()) msg += ": " + parsed.errors.front().message;
    return errorResponse(msg);
  }
  service::JobSpec spec = parsed.jobs.front();
  if (req.type == Request::Type::kEco) {
    spec.kind = service::JobKind::kEco;
    spec.ecoChanged = req.changed;
  }
  if (req.timeoutSeconds > 0) {
    spec.timeoutSeconds = req.timeoutSeconds;
  } else if (spec.timeoutSeconds <= 0) {
    spec.timeoutSeconds = defaultJobTimeout();
  }

  const std::string client = req.client.empty() ? "anon" : req.client;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (inflightByClient_[client] >= maxInflightPerClient()) {
      ++counters_.jobsRejected;
      bumpCounter("serve.jobs_rejected");
      return errorResponse("client \"" + client +
                               "\" is at its in-flight job limit",
                           /*rejected=*/true);
    }
    ++inflightByClient_[client];
    ++counters_.jobsSubmitted;
    obs::MetricsRegistry::instance()
        .gauge("serve.clients")
        .set(static_cast<double>(inflightByClient_.size()));
  }
  bumpCounter("serve.jobs_submitted");
  obs::MetricsRegistry::instance()
      .counter("serve.client." + client + ".jobs")
      .add();

  const std::uint64_t id = service_->submit(std::move(spec));

  // Poll the job AND the socket: a disconnected client cancels its job.
  // Not during drain — drain shuts the read side of every connection
  // down (which looks like EOF to peerClosed) but expects the in-flight
  // job's cancelled response to still be delivered.
  bool clientGone = false;
  while (!service_->waitFor(id, kPollSliceSeconds)) {
    if (!clientGone && !draining_.load(std::memory_order_acquire) &&
        peerClosed(fd)) {
      clientGone = true;
      if (service_->cancel(id)) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.jobsCancelledByDisconnect;
        bumpCounter("serve.jobs_cancelled_by_disconnect");
      }
    }
  }
  const service::JobResult r = service_->wait(id);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --inflightByClient_[client];
  }
  obs::MetricsRegistry::instance()
      .histogram("serve.queue_seconds")
      .observe(r.queueSeconds);
  const service::ServiceStats stats = service_->stats();
  const std::uint64_t pProbes =
      stats.cache.persistentHits + stats.cache.persistentMisses;
  obs::MetricsRegistry::instance()
      .gauge("serve.cache.persistent_hit_ratio")
      .set(pProbes > 0 ? static_cast<double>(stats.cache.persistentHits) /
                             static_cast<double>(pProbes)
                       : 0.0);
  if (clientGone) return "";  // nobody to answer; caller closes

  JobResponse resp;
  resp.jobId = id;
  resp.status = r.status;
  resp.error = r.error;
  resp.fills = r.fillCount;
  resp.cacheHit = r.cacheHit;
  resp.cacheKey = r.cacheKey;
  resp.queueSeconds = r.queueSeconds;
  resp.runSeconds = r.runSeconds;
  resp.outputBytes = r.outputBytes;
  resp.ecoWindowsSkipped = r.report.ecoWindowsSkipped;
  return toJson(resp);
}

std::string Server::runCheckRequest(const Request& req) {
  const service::ManifestParse parsed = service::parseManifestText(req.spec);
  if (!parsed.ok() || parsed.jobs.size() != 1) {
    std::string msg = "bad check spec";
    if (!parsed.errors.empty()) msg += ": " + parsed.errors.front().message;
    return errorResponse(msg);
  }
  const service::JobSpec& spec = parsed.jobs.front();
  layout::Layout chip;
  std::string error;
  if (!service::loadFlatLayout(spec.inputPath, spec.die, &chip, &error)) {
    return errorResponse("check: " + error);
  }
  verify::InvariantChecker::Options vopts;
  vopts.engine = spec.engine;
  vopts.suite = req.suite;
  vopts.checkDeterminism = req.determinism;
  const verify::VerifyReport report =
      verify::InvariantChecker(vopts).check(chip);
  std::string out = "{\"ok\":";
  out += report.ok() ? "true" : "false";
  out += ",\"report\":";
  out += verify::toJson(report);
  out += '}';
  return out;
}

std::string Server::statsJson() {
  const Counters c = counters();
  std::string out = "{\"service\":";
  out += service::toJson(service_->stats());
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      ",\"serve\":{\"connectionsAccepted\":%llu,\"connectionsRejected\":%llu,"
      "\"requests\":%llu,\"badFrames\":%llu,\"jobsSubmitted\":%llu,"
      "\"jobsRejected\":%llu,\"jobsCancelledByDisconnect\":%llu,"
      "\"activeConnections\":%zu,\"draining\":%s}",
      static_cast<unsigned long long>(c.connectionsAccepted),
      static_cast<unsigned long long>(c.connectionsRejected),
      static_cast<unsigned long long>(c.requests),
      static_cast<unsigned long long>(c.badFrames),
      static_cast<unsigned long long>(c.jobsSubmitted),
      static_cast<unsigned long long>(c.jobsRejected),
      static_cast<unsigned long long>(c.jobsCancelledByDisconnect),
      c.activeConnections, draining() ? "true" : "false");
  out += buf;
  if (persist_ != nullptr) {
    const PersistentCache::Counters p = persist_->counters();
    std::snprintf(
        buf, sizeof(buf),
        ",\"persistent\":{\"loads\":%llu,\"loadHits\":%llu,\"stores\":%llu,"
        "\"evictions\":%llu,\"quarantined\":%llu,\"entries\":%zu,"
        "\"bytesUsed\":%zu,\"byteBudget\":%zu}",
        static_cast<unsigned long long>(p.loads),
        static_cast<unsigned long long>(p.loadHits),
        static_cast<unsigned long long>(p.stores),
        static_cast<unsigned long long>(p.evictions),
        static_cast<unsigned long long>(p.quarantined), p.entries, p.bytesUsed,
        p.byteBudget);
    out += buf;
  }
  out += '}';
  return out;
}

std::string Server::traceJson(std::int64_t jobId) const {
  // Spans recorded for one job: every event whose "job" arg matches.
  const auto events = obs::Tracer::instance().collect();
  std::string out = "[";
  bool first = true;
  char buf[160];
  for (const auto& ce : events) {
    const obs::TraceEvent& e = ce.event;
    bool match = false;
    for (int i = 0; i < e.argCount; ++i) {
      if (std::string(e.argKeys[i]) == "job" &&
          e.argValues[i] == static_cast<double>(jobId)) {
        match = true;
        break;
      }
    }
    if (!match) continue;
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    json::appendEscaped(out, e.name);
    out += "\",\"cat\":\"";
    json::appendEscaped(out, e.cat);
    std::snprintf(buf, sizeof(buf),
                  "\",\"ph\":\"%c\",\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f",
                  e.phase, ce.tid, static_cast<double>(e.startNs) / 1e3,
                  static_cast<double>(e.durNs) / 1e3);
    out += buf;
    if (e.argCount > 0) {
      out += ",\"args\":{";
      for (int i = 0; i < e.argCount; ++i) {
        if (i > 0) out += ',';
        out += '"';
        json::appendEscaped(out, e.argKeys[i]);
        out += "\":";
        json::appendNumber(out, e.argValues[i]);
      }
      out += '}';
    }
    out += '}';
  }
  out += ']';
  return out;
}

std::string Server::reload() {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(configMutex_);
    path = config_.configPath;
  }
  if (path.empty()) return "no config file to reload";
  ServeConfig fresh;
  std::vector<std::string> errors;
  if (!ServeConfig::loadFile(path, &fresh, &errors)) {
    return errors.empty() ? "reload failed" : errors.front();
  }
  std::string summary;
  {
    std::lock_guard<std::mutex> lock(configMutex_);
    summary = config_.applyHotReload(fresh);
  }
  for (const std::string& e : errors) summary += "; warning: " + e;
  return summary;
}

void Server::drain() {
  if (!running_.exchange(false)) return;
  draining_.store(true, std::memory_order_release);
  // Cancel queued + running jobs so handlers unblock quickly; their
  // clients see status "cancelled".
  if (service_ != nullptr) service_->cancelAll();
  // Nudge handlers blocked waiting for a request.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& conn : connections_) shutdownRead(conn->fd.get());
  }
  if (acceptThread_.joinable()) acceptThread_.join();
  listenFd_.reset();
  // Handlers observe draining_ / read EOF and finish; join them all.
  while (true) {
    std::unique_ptr<Conn> victim;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (connections_.empty()) break;
      victim = std::move(connections_.front());
      connections_.pop_front();
    }
    if (victim->thread.joinable()) victim->thread.join();
  }
  // The persistent cache is write-through: every result already sits on
  // disk, so "flush" is a no-op by construction.
}

Server::Counters Server::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Counters c = counters_;
  c.activeConnections = connections_.size();
  return c;
}

}  // namespace ofl::serve
