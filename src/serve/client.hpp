// Thin synchronous client for the fill daemon: one connection, one
// request/response at a time over the length-prefixed JSON framing.
// Used by `openfill submit`, bench_serve and the serve tests.
#pragma once

#include <optional>
#include <string>

#include "serve/net.hpp"
#include "serve/protocol.hpp"

namespace ofl::serve {

class Client {
 public:
  /// `timeoutSeconds` bounds connect and each call's read/write.
  Client(std::string host, int port, double timeoutSeconds = 30.0);

  bool connected() const { return fd_.valid(); }
  const std::string& error() const { return error_; }

  /// Sends one request and waits for its response. nullopt on transport
  /// failure (error() explains); a server-side failure still parses —
  /// check ParsedResponse::ok.
  std::optional<ParsedResponse> call(const Request& req);
  /// Raw variant for tests that need to send hand-crafted payloads.
  std::optional<ParsedResponse> callRaw(const std::string& payload);

  /// The underlying socket (tests poke it to simulate disconnects).
  int fd() const { return fd_.get(); }
  void close() { fd_.reset(); }

 private:
  Fd fd_;
  double timeout_;
  std::string error_;
};

}  // namespace ofl::serve
