#include "serve/config.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace ofl::serve {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

bool parseInt(const std::string& v, long long* out) {
  char* end = nullptr;
  const long long n = std::strtoll(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0') return false;
  *out = n;
  return true;
}

bool parseDouble(const std::string& v, double* out) {
  char* end = nullptr;
  const double d = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0') return false;
  *out = d;
  return true;
}

// Byte sizes accept an optional K/M/G suffix (binary).
bool parseBytes(const std::string& v, std::size_t* out) {
  std::string num = v;
  std::size_t mult = 1;
  if (!num.empty()) {
    const char c = num.back();
    if (c == 'K' || c == 'k') mult = 1u << 10;
    if (c == 'M' || c == 'm') mult = 1u << 20;
    if (c == 'G' || c == 'g') mult = 1u << 30;
    if (mult != 1) num.pop_back();
  }
  long long n = 0;
  if (!parseInt(num, &n) || n < 0) return false;
  *out = static_cast<std::size_t>(n) * mult;
  return true;
}

}  // namespace

bool ServeConfig::loadFile(const std::string& path, ServeConfig* out,
                           std::vector<std::string>* errors) {
  std::ifstream in(path);
  if (!in.is_open()) {
    errors->push_back("cannot open config file: " + path);
    return false;
  }
  std::string line;
  int lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    if (const std::size_t hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    line = trim(line);
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      errors->push_back("line " + std::to_string(lineNo) +
                        ": expected key = value");
      continue;
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string val = trim(line.substr(eq + 1));
    bool bad = false;
    long long n = 0;
    if (key == "host") {
      out->host = val;
    } else if (key == "port") {
      bad = !parseInt(val, &n) || n < 0 || n > 65535;
      if (!bad) out->port = static_cast<int>(n);
    } else if (key == "jobs") {
      bad = !parseInt(val, &n) || n < 1;
      if (!bad) out->jobs = static_cast<int>(n);
    } else if (key == "threads_per_job") {
      bad = !parseInt(val, &n) || n < 0;
      if (!bad) out->threadsPerJob = static_cast<int>(n);
    } else if (key == "queue_capacity") {
      bad = !parseInt(val, &n) || n < 1;
      if (!bad) out->queueCapacity = static_cast<std::size_t>(n);
    } else if (key == "cache_bytes") {
      bad = !parseBytes(val, &out->cacheBytes);
    } else if (key == "cache_dir") {
      out->cacheDir = val;
    } else if (key == "persistent_cache_bytes") {
      bad = !parseBytes(val, &out->persistentCacheBytes);
    } else if (key == "max_connections") {
      bad = !parseInt(val, &n) || n < 1;
      if (!bad) out->maxConnections = static_cast<int>(n);
    } else if (key == "default_timeout_s") {
      bad = !parseDouble(val, &out->defaultTimeoutSeconds);
    } else if (key == "max_inflight_per_client") {
      bad = !parseInt(val, &n) || n < 1;
      if (!bad) out->maxInflightPerClient = static_cast<int>(n);
    } else if (key == "max_frame_bytes") {
      bad = !parseBytes(val, &out->maxFrameBytes) || out->maxFrameBytes < 8;
    } else if (key == "frame_timeout_s") {
      bad = !parseDouble(val, &out->frameTimeoutSeconds);
    } else if (key == "idle_timeout_s") {
      bad = !parseDouble(val, &out->idleTimeoutSeconds);
    } else if (key == "write_timeout_s") {
      bad = !parseDouble(val, &out->writeTimeoutSeconds);
    } else {
      errors->push_back("line " + std::to_string(lineNo) + ": unknown key \"" +
                        key + "\"");
      continue;
    }
    if (bad) {
      errors->push_back("line " + std::to_string(lineNo) + ": bad value for " +
                        key + ": \"" + val + "\"");
    }
  }
  out->configPath = path;
  return true;
}

std::string ServeConfig::applyHotReload(const ServeConfig& fresh) {
  std::ostringstream changed;
  const auto note = [&changed](const char* key) {
    if (changed.tellp() > 0) changed << ", ";
    changed << key;
  };
  if (defaultTimeoutSeconds != fresh.defaultTimeoutSeconds) {
    defaultTimeoutSeconds = fresh.defaultTimeoutSeconds;
    note("default_timeout_s");
  }
  if (maxInflightPerClient != fresh.maxInflightPerClient) {
    maxInflightPerClient = fresh.maxInflightPerClient;
    note("max_inflight_per_client");
  }
  if (maxFrameBytes != fresh.maxFrameBytes) {
    maxFrameBytes = fresh.maxFrameBytes;
    note("max_frame_bytes");
  }
  if (frameTimeoutSeconds != fresh.frameTimeoutSeconds) {
    frameTimeoutSeconds = fresh.frameTimeoutSeconds;
    note("frame_timeout_s");
  }
  if (idleTimeoutSeconds != fresh.idleTimeoutSeconds) {
    idleTimeoutSeconds = fresh.idleTimeoutSeconds;
    note("idle_timeout_s");
  }
  if (writeTimeoutSeconds != fresh.writeTimeoutSeconds) {
    writeTimeoutSeconds = fresh.writeTimeoutSeconds;
    note("write_timeout_s");
  }
  std::string summary = changed.str();
  return summary.empty() ? "no hot-reloadable changes" : "reloaded: " + summary;
}

}  // namespace ofl::serve
