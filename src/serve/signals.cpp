#include "serve/signals.hpp"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <cmath>

namespace ofl::serve {

namespace {

// One pipe per process; handlers write a tag byte identifying the signal.
int gPipe[2] = {-1, -1};
bool gInstalled = false;
bool gWithReload = false;

constexpr char kTagDrain = 'd';
constexpr char kTagReload = 'r';

void onSignal(int sig) {
  const char tag = (sig == SIGHUP) ? kTagReload : kTagDrain;
  const int saved = errno;
  // Best effort: a full pipe means a signal is already pending.
  [[maybe_unused]] ssize_t n = ::write(gPipe[1], &tag, 1);
  errno = saved;
}

bool setHandler(int sig, void (*fn)(int)) {
  struct sigaction sa = {};
  sa.sa_handler = fn;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = fn == SIG_DFL ? 0 : SA_RESTART;
  return sigaction(sig, &sa, nullptr) == 0;
}

}  // namespace

bool installSignalHandlers(bool withReload) {
  if (gInstalled) return true;
  if (::pipe(gPipe) != 0) return false;
  for (const int end : gPipe) {
    const int flags = ::fcntl(end, F_GETFL, 0);
    ::fcntl(end, F_SETFL, flags | O_NONBLOCK);
    ::fcntl(end, F_SETFD, FD_CLOEXEC);
  }
  setHandler(SIGTERM, &onSignal);
  setHandler(SIGINT, &onSignal);
  if (withReload) setHandler(SIGHUP, &onSignal);
  setHandler(SIGPIPE, SIG_IGN);  // write errors surface as EPIPE instead
  gWithReload = withReload;
  gInstalled = true;
  return true;
}

void uninstallSignalHandlers() {
  if (!gInstalled) return;
  setHandler(SIGTERM, SIG_DFL);
  setHandler(SIGINT, SIG_DFL);
  if (gWithReload) setHandler(SIGHUP, SIG_DFL);
  ::close(gPipe[0]);
  ::close(gPipe[1]);
  gPipe[0] = gPipe[1] = -1;
  gInstalled = false;
}

SignalKind pollSignal() { return waitSignal(0.0); }

SignalKind waitSignal(double timeoutSeconds) {
  if (!gInstalled) return SignalKind::kNone;
  struct pollfd pfd = {};
  pfd.fd = gPipe[0];
  pfd.events = POLLIN;
  const int timeoutMs =
      timeoutSeconds < 0 ? -1
                         : static_cast<int>(std::lround(timeoutSeconds * 1e3));
  int rc;
  do {
    rc = ::poll(&pfd, 1, timeoutMs);
  } while (rc < 0 && errno == EINTR && timeoutMs < 0);
  if (rc <= 0) return SignalKind::kNone;
  // Drain every pending byte; a drain request wins over reload.
  char buf[16];
  SignalKind kind = SignalKind::kNone;
  ssize_t n;
  while ((n = ::read(gPipe[0], buf, sizeof(buf))) > 0) {
    for (ssize_t i = 0; i < n; ++i) {
      if (buf[i] == kTagDrain) {
        kind = SignalKind::kDrain;
      } else if (kind == SignalKind::kNone) {
        kind = SignalKind::kReload;
      }
    }
  }
  return kind;
}

int signalFd() { return gInstalled ? gPipe[0] : -1; }

}  // namespace ofl::serve
