#include "common/timer.hpp"

// Header-only in practice; this TU exists so the target has a stable archive
// member and to host any future platform-specific timing code.
namespace ofl {}
