// Peak-RSS probing for the contest memory score (Table 2/3: Memory*).
#pragma once

#include <cstdint>

namespace ofl {

/// Peak resident set size of this process in MiB, read from
/// /proc/self/status (VmHWM). Returns 0 if the probe fails.
double peakMemoryMiB();

/// Current resident set size in MiB (VmRSS). Returns 0 if the probe fails.
double currentMemoryMiB();

}  // namespace ofl
