// Locale-independent JSON building blocks plus a minimal parser.
//
// Every JSON artifact this project emits (prof snapshots, metrics
// snapshots, Chrome traces, service stats) must be byte-stable across
// machines and locales: number formatting goes through std::to_chars
// (never printf "%f", whose decimal point follows the C locale), and all
// string payloads are escaped here. The parser is a small recursive-
// descent reader sufficient for the formats we write ourselves — used by
// `openfill stats --metrics`, the prof round-trip tests and the trace
// validators, not meant as a general-purpose JSON library.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ofl::json {

/// Appends `s` escaped for inclusion inside a JSON string literal
/// (quotes, backslash, control characters; no surrounding quotes).
void appendEscaped(std::string& out, std::string_view s);
std::string escaped(std::string_view s);

/// Appends a double via std::to_chars (shortest round-trip form, always
/// '.' as the decimal separator). Non-finite values render as 0 — JSON
/// has no NaN/Inf and our series never legitimately produce them.
void appendNumber(std::string& out, double v);
void appendNumber(std::string& out, std::uint64_t v);
void appendNumber(std::string& out, std::int64_t v);

/// Parsed JSON value. Numbers are stored as double (adequate for every
/// artifact we emit; counters stay exact up to 2^53).
class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses a complete JSON document (trailing whitespace allowed).
  /// Returns nullopt on any syntax error.
  static std::optional<Value> parse(std::string_view text);

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  bool isObject() const { return kind == Kind::kObject; }
  bool isArray() const { return kind == Kind::kArray; }
  bool isNumber() const { return kind == Kind::kNumber; }
  bool isString() const { return kind == Kind::kString; }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(const std::string& key) const;
  /// Dotted-path lookup through nested objects ("cache.hits").
  const Value* findPath(const std::string& dottedPath) const;
};

}  // namespace ofl::json
