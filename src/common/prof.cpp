#include "common/prof.hpp"

#include <cstdio>

#include "common/json_util.hpp"

namespace ofl::prof {
namespace {

// Indented names mark kernels nested inside the preceding engine stage.
constexpr const char* kStageNames[] = {
    "region-prep",
    "density-compute",
    "planning",
    "candidates",
    "  shared-region",
    "  slice",
    "  overlay-score",
    "  refine",
    "sizing",
    "  overlay-marginals",
    "  mcf-solve",
    "output",
};
static_assert(sizeof(kStageNames) / sizeof(kStageNames[0]) ==
              static_cast<std::size_t>(Stage::kCount));

constexpr const char* kCounterNames[] = {
    "windows",          "candidates",        "index-builds",
    "index-queries",    "mcf-solves",        "mcf-network-reuses",
    "mcf-warm-starts",  "mcf-early-exits",   "eco-windows-skipped",
};
static_assert(sizeof(kCounterNames) / sizeof(kCounterNames[0]) ==
              static_cast<std::size_t>(Counter::kCount));

// JSON keys: the stage names without indentation, dashes kept.
std::string jsonKey(const char* name) {
  std::string key;
  for (const char* p = name; *p != '\0'; ++p) {
    if (*p != ' ') key.push_back(*p);
  }
  return key;
}

}  // namespace

const char* stageName(Stage stage) {
  return kStageNames[static_cast<std::size_t>(stage)];
}

const char* counterName(Counter counter) {
  return kCounterNames[static_cast<std::size_t>(counter)];
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

void Registry::reset() {
  for (auto& s : stages_) {
    s.calls.store(0, std::memory_order_relaxed);
    s.nanos.store(0, std::memory_order_relaxed);
  }
  for (auto& c : counters_) c.store(0, std::memory_order_relaxed);
}

Snapshot Registry::snapshot() const {
  Snapshot out;
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    out.stages[i].calls = stages_[i].calls.load(std::memory_order_relaxed);
    out.stages[i].nanos = stages_[i].nanos.load(std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    out.counters[i] = counters_[i].load(std::memory_order_relaxed);
  }
  return out;
}

bool Snapshot::empty() const {
  for (const StageStats& s : stages) {
    if (s.calls != 0) return false;
  }
  for (const std::uint64_t c : counters) {
    if (c != 0) return false;
  }
  return true;
}

std::string Snapshot::human() const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line), "%-22s %12s %12s %14s\n", "stage",
                "seconds", "calls", "ns/call");
  out += line;
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const StageStats& s = stages[i];
    if (s.calls == 0) continue;
    std::snprintf(line, sizeof(line), "%-22s %12.4f %12llu %14.0f\n",
                  kStageNames[i], s.seconds(),
                  static_cast<unsigned long long>(s.calls),
                  static_cast<double>(s.nanos) /
                      static_cast<double>(s.calls));
    out += line;
  }
  bool anyCounter = false;
  for (const std::uint64_t c : counters) anyCounter = anyCounter || c != 0;
  if (anyCounter) {
    out += "counters:\n";
    for (std::size_t i = 0; i < counters.size(); ++i) {
      if (counters[i] == 0) continue;
      std::snprintf(line, sizeof(line), "  %-20s %12llu\n", kCounterNames[i],
                    static_cast<unsigned long long>(counters[i]));
      out += line;
    }
  }
  return out;
}

std::string Snapshot::json() const {
  // Emitted via common/json_util: stage names are escaped (future stages
  // may carry arbitrary labels) and numbers are formatted with
  // std::to_chars, so the output is byte-stable under any C locale.
  // Round-trip coverage: ProfTest.JsonRoundTripsThroughParser.
  std::string out = "{\"stages\": {";
  bool first = true;
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const StageStats& s = stages[i];
    out += first ? "\"" : ", \"";
    first = false;
    json::appendEscaped(out, jsonKey(kStageNames[i]));
    out += "\": {\"seconds\": ";
    json::appendNumber(out, s.seconds());
    out += ", \"calls\": ";
    json::appendNumber(out, s.calls);
    out += "}";
  }
  out += "}, \"counters\": {";
  first = true;
  for (std::size_t i = 0; i < counters.size(); ++i) {
    out += first ? "\"" : ", \"";
    first = false;
    json::appendEscaped(out, kCounterNames[i]);
    out += "\": ";
    json::appendNumber(out, counters[i]);
  }
  out += "}}";
  return out;
}

}  // namespace ofl::prof
