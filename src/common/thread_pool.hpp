// Reusable worker-thread pool with a parallel-for primitive.
//
// The fill flow decomposes into independent per-(layer,window) subproblems
// (see docs/architecture.md, "Parallel execution"), so the only parallel
// construct the library needs is an index-space parallelFor. Determinism is
// the callers' contract: workers may claim indices in any order, but every
// call site writes item i's result into a pre-sized slot i and merges the
// slots sequentially afterwards, so results are bit-identical for any
// thread count (including 1, which runs inline on the caller).
//
// The pool is reusable: construct once, issue many parallelFor calls (the
// FillEngine keeps one pool per run and drives every stage through it).
// parallelFor calls must not be nested or issued concurrently from several
// threads; the pool is a fork-join helper, not a task scheduler.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ofl {

class ThreadPool {
 public:
  /// `numThreads` <= 0 requests one thread per hardware core
  /// (hardwareThreads()). A pool of size 1 spawns no workers at all:
  /// parallelFor then runs inline on the caller, byte-for-byte the serial
  /// code path.
  explicit ThreadPool(int numThreads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads that execute work: workers plus the calling thread.
  int size() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(0..numItems-1), each index exactly once, and blocks until all
  /// are done. The caller participates in the work. If any invocation
  /// throws, the remaining unclaimed indices are abandoned and the first
  /// captured exception is rethrown here.
  void parallelFor(std::size_t numItems,
                   const std::function<void(std::size_t)>& fn);

  /// std::thread::hardware_concurrency with a floor of 1 (the standard
  /// allows it to report 0 on exotic platforms).
  static int hardwareThreads();

  /// Resolves a requested thread count (<= 0 = one per hardware core) and
  /// clamps it to `cap` when cap > 0, with a floor of 1. The batch service
  /// uses this to split the machine between concurrent jobs: each job's
  /// engine pool is sized cappedThreads(0, hardware / jobs) so N jobs
  /// running at once do not oversubscribe the cores.
  static int cappedThreads(int requested, int cap);

 private:
  void workerMain();
  void drain();

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable wake_;   // workers wait here between jobs
  std::condition_variable done_;   // parallelFor waits here for completion
  std::uint64_t generation_ = 0;   // bumped per parallelFor; wakes workers
  bool stopping_ = false;

  // Job state, written under mutex_ before workers are woken. parallelFor
  // does not return until every worker has arrived at the current
  // generation (arrivedWorkers_ == workers_.size()) and finished draining
  // (activeWorkers_ == 0), so each worker passes through the mutex between
  // the job-state writes and its lock-free reads inside drain(), and no
  // worker can still be headed for a stale generation when the next job
  // overwrites this state.
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t jobSize_ = 0;
  std::atomic<std::size_t> nextIndex_{0};
  std::size_t arrivedWorkers_ = 0;  // workers that woke for generation_
  int activeWorkers_ = 0;           // workers inside drain()
  std::exception_ptr firstError_;
};

/// One-shot helper for call sites without a long-lived pool: runs fn over
/// [0, numItems) on `numThreads` threads (<= 1 or 0 items runs inline
/// without touching a pool).
void parallelFor(int numThreads, std::size_t numItems,
                 const std::function<void(std::size_t)>& fn);

}  // namespace ofl
