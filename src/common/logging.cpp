#include "common/logging.hpp"

#include <cstdio>

namespace ofl {
namespace {

LogLevel g_level = LogLevel::kInfo;

void vlog(LogLevel level, const char* tag, const char* fmt, va_list args) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) return;
  std::fprintf(stderr, "[%s] ", tag);
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
}

}  // namespace

void setLogLevel(LogLevel level) { g_level = level; }
LogLevel logLevel() { return g_level; }

#define OFL_DEFINE_LOG(fn, level, tag)      \
  void fn(const char* fmt, ...) {           \
    va_list args;                           \
    va_start(args, fmt);                    \
    vlog(level, tag, fmt, args);            \
    va_end(args);                           \
  }

OFL_DEFINE_LOG(logDebug, LogLevel::kDebug, "debug")
OFL_DEFINE_LOG(logInfo, LogLevel::kInfo, "info")
OFL_DEFINE_LOG(logWarn, LogLevel::kWarn, "warn")
OFL_DEFINE_LOG(logError, LogLevel::kError, "error")

#undef OFL_DEFINE_LOG

}  // namespace ofl
