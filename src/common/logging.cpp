#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace ofl {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};

// Serializes whole messages: fill-stage workers log concurrently, and
// without this the tag/body/newline triplets interleave.
std::mutex& sinkMutex() {
  static std::mutex m;
  return m;
}

void vlog(LogLevel level, const char* tag, const char* fmt, va_list args) {
  if (static_cast<int>(level) <
      static_cast<int>(g_level.load(std::memory_order_relaxed))) {
    return;
  }
  std::lock_guard<std::mutex> lock(sinkMutex());
  std::fprintf(stderr, "[%s] ", tag);
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
}

}  // namespace

void setLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel logLevel() { return g_level.load(std::memory_order_relaxed); }

#define OFL_DEFINE_LOG(fn, level, tag)      \
  void fn(const char* fmt, ...) {           \
    va_list args;                           \
    va_start(args, fmt);                    \
    vlog(level, tag, fmt, args);            \
    va_end(args);                           \
  }

OFL_DEFINE_LOG(logDebug, LogLevel::kDebug, "debug")
OFL_DEFINE_LOG(logInfo, LogLevel::kInfo, "info")
OFL_DEFINE_LOG(logWarn, LogLevel::kWarn, "warn")
OFL_DEFINE_LOG(logError, LogLevel::kError, "error")

#undef OFL_DEFINE_LOG

}  // namespace ofl
