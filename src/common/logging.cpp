#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace ofl {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};

// Thread-local log context ("job=3 name=x"); guards append and truncate.
std::string& contextSlot() {
  thread_local std::string context;
  return context;
}

// Serializes whole messages: fill-stage workers log concurrently, and
// without this the tag/body/newline triplets interleave.
std::mutex& sinkMutex() {
  static std::mutex m;
  return m;
}

void vlog(LogLevel level, const char* tag, const char* fmt, va_list args) {
  if (static_cast<int>(level) <
      static_cast<int>(g_level.load(std::memory_order_relaxed))) {
    return;
  }
  const std::string& context = contextSlot();
  std::lock_guard<std::mutex> lock(sinkMutex());
  if (context.empty()) {
    std::fprintf(stderr, "[%s] ", tag);
  } else {
    std::fprintf(stderr, "[%s] %s ", tag, context.c_str());
  }
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
}

}  // namespace

void setLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel logLevel() { return g_level.load(std::memory_order_relaxed); }

#define OFL_DEFINE_LOG(fn, level, tag)      \
  void fn(const char* fmt, ...) {           \
    va_list args;                           \
    va_start(args, fmt);                    \
    vlog(level, tag, fmt, args);            \
    va_end(args);                           \
  }

OFL_DEFINE_LOG(logDebug, LogLevel::kDebug, "debug")
OFL_DEFINE_LOG(logInfo, LogLevel::kInfo, "info")
OFL_DEFINE_LOG(logWarn, LogLevel::kWarn, "warn")
OFL_DEFINE_LOG(logError, LogLevel::kError, "error")

#undef OFL_DEFINE_LOG

ScopedLogContext::ScopedLogContext(const char* key, long long value)
    : ScopedLogContext(key, std::to_string(value)) {}

ScopedLogContext::ScopedLogContext(const char* key, const std::string& value) {
  std::string& context = contextSlot();
  savedSize_ = context.size();
  if (!context.empty()) context += ' ';
  context += key;
  context += '=';
  context += value;
}

ScopedLogContext::~ScopedLogContext() { contextSlot().resize(savedSize_); }

const std::string& logContext() { return contextSlot(); }

std::string formatFields(const char* event,
                         std::initializer_list<LogField> fields) {
  std::string out = event;
  for (const LogField& f : fields) {
    out += ' ';
    out += f.first;
    out += '=';
    out += f.second;
  }
  return out;
}

void logFields(LogLevel level, const char* event,
               std::initializer_list<LogField> fields) {
  const std::string line = formatFields(event, fields);
  switch (level) {
    case LogLevel::kDebug: logDebug("%s", line.c_str()); break;
    case LogLevel::kInfo: logInfo("%s", line.c_str()); break;
    case LogLevel::kWarn: logWarn("%s", line.c_str()); break;
    case LogLevel::kError: logError("%s", line.c_str()); break;
    case LogLevel::kSilent: break;
  }
}

}  // namespace ofl
