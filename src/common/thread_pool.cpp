#include "common/thread_pool.hpp"

#include <algorithm>

namespace ofl {

int ThreadPool::hardwareThreads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

int ThreadPool::cappedThreads(int requested, int cap) {
  int n = requested <= 0 ? hardwareThreads() : requested;
  if (cap > 0) n = std::min(n, cap);
  return std::max(1, n);
}

ThreadPool::ThreadPool(int numThreads) {
  const int resolved = numThreads <= 0 ? hardwareThreads() : numThreads;
  workers_.reserve(static_cast<std::size_t>(resolved - 1));
  for (int t = 1; t < resolved; ++t) {
    workers_.emplace_back([this] { workerMain(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::parallelFor(std::size_t numItems,
                             const std::function<void(std::size_t)>& fn) {
  if (numItems == 0) return;
  if (workers_.empty() || numItems == 1) {
    for (std::size_t i = 0; i < numItems; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    jobSize_ = numItems;
    nextIndex_.store(0, std::memory_order_relaxed);
    firstError_ = nullptr;
    arrivedWorkers_ = 0;
    ++generation_;
  }
  wake_.notify_all();
  drain();  // the caller claims indices alongside the workers
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // Wait for every worker to have (a) woken for THIS generation and
    // (b) finished draining it. Waiting on activeWorkers_ alone is not
    // enough: a worker that has not yet woken was never counted active,
    // and resetting job_/jobSize_/nextIndex_ for the next job while it is
    // still headed into drain() for this one would race. Requiring all
    // arrivals first means every worker's drain() reads are bracketed by
    // mutex passages on both sides of this job's state writes.
    done_.wait(lock, [this] {
      return arrivedWorkers_ == workers_.size() && activeWorkers_ == 0;
    });
    job_ = nullptr;
    error = firstError_;
    firstError_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::drain() {
  // job_/jobSize_ were written under mutex_ before this thread entered
  // drain() (workers pass through workerMain's lock; the caller wrote
  // them itself), and parallelFor keeps them unchanged until every worker
  // has arrived for this generation and drained, so the plain reads here
  // are synchronized.
  const std::function<void(std::size_t)>* job = job_;
  const std::size_t size = jobSize_;
  for (;;) {
    const std::size_t i = nextIndex_.fetch_add(1, std::memory_order_relaxed);
    if (i >= size) return;
    try {
      (*job)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!firstError_) firstError_ = std::current_exception();
      // Abandon the unclaimed tail: everyone's next claim fails.
      nextIndex_.store(size, std::memory_order_relaxed);
    }
  }
}

void ThreadPool::workerMain() {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    wake_.wait(lock, [&] { return stopping_ || generation_ != seen; });
    if (stopping_) return;
    seen = generation_;
    // Arrival is recorded under the mutex: parallelFor will not tear down
    // or replace the job until all workers have arrived, so the unlocked
    // reads in drain() below cannot see a later job's state.
    ++arrivedWorkers_;
    ++activeWorkers_;
    lock.unlock();
    drain();
    lock.lock();
    if (--activeWorkers_ == 0) done_.notify_all();
  }
}

void parallelFor(int numThreads, std::size_t numItems,
                 const std::function<void(std::size_t)>& fn) {
  const int resolved =
      numThreads <= 0 ? ThreadPool::hardwareThreads() : numThreads;
  if (resolved <= 1 || numItems <= 1) {
    for (std::size_t i = 0; i < numItems; ++i) fn(i);
    return;
  }
  ThreadPool pool(resolved);
  pool.parallelFor(numItems, fn);
}

}  // namespace ofl
