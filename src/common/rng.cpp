#include "common/rng.hpp"

#include <cassert>
#include <vector>

namespace ofl {

std::int64_t Rng::uniformInt(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::uniformReal(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return std::bernoulli_distribution(p)(engine_);
}

double Rng::normal(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

std::size_t Rng::weightedIndex(const std::vector<double>& weights) {
  assert(!weights.empty());
  std::discrete_distribution<std::size_t> dist(weights.begin(), weights.end());
  return dist(engine_);
}

}  // namespace ofl
