// Deterministic random number generation.
//
// Every stochastic component (benchmark generator, Monte-Carlo baseline,
// property tests) takes an explicit Rng so runs are reproducible from a seed.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace ofl {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi).
  double uniformReal(double lo, double hi);

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p);

  /// Normal variate.
  double normal(double mean, double stddev);

  /// Pick an index in [0, weights.size()) proportional to weights.
  std::size_t weightedIndex(const std::vector<double>& weights);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace ofl
