#include "common/hash.hpp"

#include <cstring>

namespace ofl {
namespace {
constexpr std::uint64_t kPrime = 1099511628211ull;
}

void Fnv1a64::bytes(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h_ ^= p[i];
    h_ *= kPrime;
  }
}

void Fnv1a64::u64(std::uint64_t v) {
  // Byte-order-independent: feed the value little-endian byte by byte.
  for (int i = 0; i < 8; ++i) {
    h_ ^= (v >> (8 * i)) & 0xffu;
    h_ *= kPrime;
  }
}

void Fnv1a64::f64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void Fnv1a64::str(const std::string& s) {
  u64(s.size());
  bytes(s.data(), s.size());
}

std::uint64_t fnv1a64(const void* data, std::size_t n) {
  Fnv1a64 h;
  h.bytes(data, n);
  return h.digest();
}

std::uint64_t hashCombine(std::uint64_t a, std::uint64_t b) {
  Fnv1a64 h;
  h.u64(a);
  h.u64(b);
  return h.digest();
}

}  // namespace ofl
