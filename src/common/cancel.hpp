// Cooperative cancellation for long-running library calls.
//
// A CancelToken is owned by whoever wants to stop the work (the batch
// service's per-job state, a test, an embedding application) and is passed
// by pointer into the work (FillEngineOptions::cancel). The work polls
// expired() at natural checkpoints — stage boundaries and once per window —
// and unwinds by throwing CancelledError. Polling never changes results:
// a run that is not cancelled is byte-identical to one without a token.
#pragma once

#include <atomic>
#include <chrono>
#include <stdexcept>

namespace ofl {

/// Thrown by cancellable work when its token expires mid-run.
struct CancelledError : std::runtime_error {
  CancelledError() : std::runtime_error("cancelled") {}
};

struct CancelToken {
  /// Explicit cancellation (FillService::cancel, user code).
  std::atomic<bool> cancelled{false};
  /// Optional deadline; ignored until armDeadline() sets it.
  std::chrono::steady_clock::time_point deadline{};
  bool hasDeadline = false;

  void cancel() { cancelled.store(true, std::memory_order_relaxed); }

  /// Sets the deadline `seconds` from now (<= 0 means no deadline).
  void armDeadline(double seconds) {
    if (seconds <= 0) return;
    deadline = std::chrono::steady_clock::now() +
               std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double>(seconds));
    hasDeadline = true;
  }

  /// True once cancelled or past the deadline. The flag is checked first so
  /// the common not-cancelled case is one relaxed atomic load when no
  /// deadline is armed.
  bool expired() const {
    if (cancelled.load(std::memory_order_relaxed)) return true;
    return hasDeadline && std::chrono::steady_clock::now() >= deadline;
  }

  /// Throws CancelledError if expired; the checkpoint cancellable work
  /// sprinkles through its stages.
  void throwIfExpired() const {
    if (expired()) throw CancelledError();
  }
};

}  // namespace ofl
