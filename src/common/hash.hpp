// Stable 64-bit content hashing (FNV-1a).
//
// Used wherever the library needs a deterministic fingerprint of structured
// data — notably the batch service's result-cache keys, which must be stable
// across runs, platforms and thread counts. Not cryptographic; collision
// resistance is the 64-bit birthday bound, which is ample for cache keying
// (a false hit needs two distinct inputs in the same cache generation to
// collide).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace ofl {

/// Streaming FNV-1a accumulator. Feed values through the typed mixers and
/// read the digest at any point; the digest depends on the exact byte
/// sequence fed, so callers should fix a field order and keep it stable.
class Fnv1a64 {
 public:
  void bytes(const void* data, std::size_t n);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void i32(std::int32_t v) { u64(static_cast<std::uint64_t>(
      static_cast<std::uint32_t>(v))); }
  void boolean(bool v) { u64(v ? 1u : 0u); }
  /// Hashes the IEEE-754 bit pattern (so -0.0 != 0.0; callers that care
  /// should normalize first — the option structs never produce -0.0).
  void f64(double v);
  /// Length-prefixed, so ("ab","c") and ("a","bc") differ.
  void str(const std::string& s);

  std::uint64_t digest() const { return h_; }

 private:
  std::uint64_t h_ = 1469598103934665603ull;  // FNV offset basis
};

/// One-shot convenience over a byte buffer.
std::uint64_t fnv1a64(const void* data, std::size_t n);

/// Mixes two 64-bit hashes into one (order-sensitive).
std::uint64_t hashCombine(std::uint64_t a, std::uint64_t b);

}  // namespace ofl
