// Lightweight leveled logger for the OpenFill library.
//
// All library components log through this interface so that applications can
// raise/lower verbosity globally (e.g. benches run at Warn to keep output
// clean while examples run at Info).
#pragma once

#include <cstdarg>
#include <string>

namespace ofl {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kSilent = 4,
};

/// Global log threshold; messages below it are dropped.
void setLogLevel(LogLevel level);
LogLevel logLevel();

/// printf-style logging. Thread-safe: fill-stage workers may log
/// concurrently (see common/thread_pool.hpp), so the sink serializes whole
/// messages and the level is atomic. ScopedLogLevel still assumes the
/// level is changed from one thread at a time (tests and CLI do).
void logDebug(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void logInfo(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void logWarn(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void logError(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// RAII guard that silences (or changes) the log level within a scope.
class ScopedLogLevel {
 public:
  explicit ScopedLogLevel(LogLevel level) : saved_(logLevel()) {
    setLogLevel(level);
  }
  ~ScopedLogLevel() { setLogLevel(saved_); }
  ScopedLogLevel(const ScopedLogLevel&) = delete;
  ScopedLogLevel& operator=(const ScopedLogLevel&) = delete;

 private:
  LogLevel saved_;
};

}  // namespace ofl
