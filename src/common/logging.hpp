// Lightweight leveled logger for the OpenFill library.
//
// All library components log through this interface so that applications can
// raise/lower verbosity globally (e.g. benches run at Warn to keep output
// clean while examples run at Info).
#pragma once

#include <cstdarg>
#include <cstddef>
#include <initializer_list>
#include <string>
#include <utility>

namespace ofl {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kSilent = 4,
};

/// Global log threshold; messages below it are dropped.
void setLogLevel(LogLevel level);
LogLevel logLevel();

/// printf-style logging. Thread-safe: fill-stage workers may log
/// concurrently (see common/thread_pool.hpp), so the sink serializes whole
/// messages and the level is atomic. ScopedLogLevel still assumes the
/// level is changed from one thread at a time (tests and CLI do).
void logDebug(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void logInfo(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void logWarn(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void logError(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Thread-local key=value context prepended to every log line the thread
/// emits while the guard lives, e.g. "[info] job=3 loaded 4 layers".
/// Batch-service workers interleave on stderr; the job-id context makes
/// each line attributable. Nestable (inner guards append further pairs);
/// the context does NOT propagate into pool worker threads — the engine
/// instead tags its telemetry with FillEngineOptions::jobId.
class ScopedLogContext {
 public:
  ScopedLogContext(const char* key, long long value);
  ScopedLogContext(const char* key, const std::string& value);
  ~ScopedLogContext();
  ScopedLogContext(const ScopedLogContext&) = delete;
  ScopedLogContext& operator=(const ScopedLogContext&) = delete;

 private:
  std::size_t savedSize_;
};

/// The calling thread's current context ("" when none, otherwise
/// "key=value key2=value2").
const std::string& logContext();

/// A structured field; values are logged verbatim (no quoting), so keep
/// them free of spaces where grep-ability matters.
using LogField = std::pair<const char*, std::string>;

/// Renders "event key=value key2=value2" — the canonical structured form.
std::string formatFields(const char* event,
                         std::initializer_list<LogField> fields);

/// Structured logging: emits formatFields(event, fields) at `level`
/// (plus the thread's ScopedLogContext like every other log call).
void logFields(LogLevel level, const char* event,
               std::initializer_list<LogField> fields);

/// RAII guard that silences (or changes) the log level within a scope.
class ScopedLogLevel {
 public:
  explicit ScopedLogLevel(LogLevel level) : saved_(logLevel()) {
    setLogLevel(level);
  }
  ~ScopedLogLevel() { setLogLevel(saved_); }
  ScopedLogLevel(const ScopedLogLevel&) = delete;
  ScopedLogLevel& operator=(const ScopedLogLevel&) = delete;

 private:
  LogLevel saved_;
};

}  // namespace ofl
