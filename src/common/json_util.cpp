#include "common/json_util.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace ofl::json {

void appendEscaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
}

std::string escaped(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  appendEscaped(out, s);
  return out;
}

void appendNumber(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "0";
    return;
  }
  char buf[32];
  const auto r = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, r.ptr);
}

void appendNumber(std::string& out, std::uint64_t v) {
  char buf[24];
  const auto r = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, r.ptr);
}

void appendNumber(std::string& out, std::int64_t v) {
  char buf[24];
  const auto r = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, r.ptr);
}

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  bool ok = true;

  void skipWs() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }
  bool consume(char c) {
    skipWs();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) == word) {
      pos += word.size();
      return true;
    }
    ok = false;
    return false;
  }

  Value parseValue() {
    skipWs();
    if (pos >= text.size()) {
      ok = false;
      return {};
    }
    const char c = text[pos];
    if (c == '{') return parseObject();
    if (c == '[') return parseArray();
    if (c == '"') return parseString();
    if (c == 't') {
      Value v;
      v.kind = Value::Kind::kBool;
      v.boolean = true;
      literal("true");
      return v;
    }
    if (c == 'f') {
      Value v;
      v.kind = Value::Kind::kBool;
      literal("false");
      return v;
    }
    if (c == 'n') {
      literal("null");
      return {};
    }
    return parseNumber();
  }

  Value parseString() {
    Value v;
    v.kind = Value::Kind::kString;
    if (!consume('"')) {
      ok = false;
      return v;
    }
    while (pos < text.size() && text[pos] != '"') {
      char c = text[pos++];
      if (c == '\\' && pos < text.size()) {
        const char esc = text[pos++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'u': {
            // \uXXXX — decode the low byte only (our emitters only escape
            // control characters, which fit in one byte).
            unsigned code = 0;
            if (pos + 4 <= text.size() &&
                std::from_chars(text.data() + pos, text.data() + pos + 4, code,
                                16)
                        .ec == std::errc()) {
              pos += 4;
              c = static_cast<char>(code & 0xff);
            } else {
              ok = false;
              return v;
            }
            break;
          }
          default: c = esc;
        }
      }
      v.str.push_back(c);
    }
    if (!consume('"')) ok = false;
    return v;
  }

  Value parseNumber() {
    Value v;
    v.kind = Value::Kind::kNumber;
    const std::size_t start = pos;
    if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) != 0 ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '-' || text[pos] == '+')) {
      ++pos;
    }
    const auto r = std::from_chars(text.data() + start, text.data() + pos,
                                   v.number);
    if (r.ec != std::errc() || r.ptr != text.data() + pos || pos == start) {
      ok = false;
    }
    return v;
  }

  Value parseArray() {
    Value v;
    v.kind = Value::Kind::kArray;
    consume('[');
    skipWs();
    if (consume(']')) return v;
    for (;;) {
      v.array.push_back(parseValue());
      if (!ok) return v;
      if (consume(']')) return v;
      if (!consume(',')) {
        ok = false;
        return v;
      }
    }
  }

  Value parseObject() {
    Value v;
    v.kind = Value::Kind::kObject;
    consume('{');
    skipWs();
    if (consume('}')) return v;
    for (;;) {
      skipWs();
      const Value key = parseString();
      if (!ok || !consume(':')) {
        ok = false;
        return v;
      }
      v.object[key.str] = parseValue();
      if (!ok) return v;
      if (consume('}')) return v;
      if (!consume(',')) {
        ok = false;
        return v;
      }
    }
  }
};

}  // namespace

std::optional<Value> Value::parse(std::string_view text) {
  Parser p{text};
  Value v = p.parseValue();
  p.skipWs();
  if (!p.ok || p.pos != p.text.size()) return std::nullopt;
  return v;
}

const Value* Value::find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  const auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

const Value* Value::findPath(const std::string& dottedPath) const {
  const Value* cur = this;
  std::size_t start = 0;
  while (cur != nullptr && start <= dottedPath.size()) {
    const std::size_t dot = dottedPath.find('.', start);
    const std::string key = dottedPath.substr(
        start, dot == std::string::npos ? std::string::npos : dot - start);
    // Full remaining suffix first: metric names themselves contain dots
    // ("cache.hits" is one key in the metrics snapshot), so prefer the
    // literal member over recursing through nested objects.
    if (const Value* direct = cur->find(dottedPath.substr(start));
        direct != nullptr) {
      return direct;
    }
    if (dot == std::string::npos) return cur->find(key);
    cur = cur->find(key);
    start = dot + 1;
  }
  return nullptr;
}

}  // namespace ofl::json
