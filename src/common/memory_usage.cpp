#include "common/memory_usage.hpp"

#include <cstdio>
#include <cstring>

namespace ofl {
namespace {

// Reads a "Vm...: <n> kB" field from /proc/self/status.
double readStatusFieldMiB(const char* key) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0.0;
  char line[256];
  double result = 0.0;
  const std::size_t keyLen = std::strlen(key);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, key, keyLen) == 0) {
      long kb = 0;
      if (std::sscanf(line + keyLen, ": %ld kB", &kb) == 1) {
        result = static_cast<double>(kb) / 1024.0;
      }
      break;
    }
  }
  std::fclose(f);
  return result;
}

}  // namespace

double peakMemoryMiB() { return readStatusFieldMiB("VmHWM"); }
double currentMemoryMiB() { return readStatusFieldMiB("VmRSS"); }

}  // namespace ofl
