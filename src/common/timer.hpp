// Wall-clock stopwatch used for the contest runtime score and for the
// per-stage timing breakdown the FillEngine reports.
#pragma once

#include <chrono>
#include <string>

namespace ofl {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Seconds elapsed since construction or the last reset().
  double elapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  void reset() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates elapsed time across start/stop pairs; used to attribute
/// runtime to flow stages (planning / generation / sizing / IO).
class StageTimer {
 public:
  void start() { running_ = true; timer_.reset(); }
  void stop() {
    if (running_) total_ += timer_.elapsedSeconds();
    running_ = false;
  }
  double totalSeconds() const {
    return total_ + (running_ ? timer_.elapsedSeconds() : 0.0);
  }

 private:
  Timer timer_;
  double total_ = 0.0;
  bool running_ = false;
};

}  // namespace ofl
