// Hot-path profiling registry (docs/architecture.md, "Hot-path
// profiling").
//
// A process-global table of per-stage timers and event counters with a
// fixed stage taxonomy mirroring the fill pipeline (region prep, density,
// planning, candidate generation, sizing, MCF solves, output). Collection
// is OFF by default and costs one relaxed atomic load per probe site; when
// enabled, ScopedTimer adds two steady_clock reads and one relaxed
// fetch_add, cheap enough to leave in per-window and per-solve code.
//
// Aggregation is thread-safe and cumulative across threads: a stage's
// seconds are the SUM of the time every worker spent inside it (thread-
// seconds, not wall time), so on N threads a perfectly parallel stage
// shows up to N times the wall clock. calls() disambiguates. snapshot()
// renders either a human table or a JSON object (`openfill fill
// --profile` / `batch --profile`).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace ofl::prof {

/// Pipeline stages, in report order. Engine stages first, then the
/// fine-grained kernels nested inside them (indented in the human table).
enum class Stage : int {
  kRegionPrep = 0,    // free-space regions + wire bucketing (engine stage 0)
  kDensityCompute,    // wire/current density map recomputation
  kPlanning,          // density bounds + target planning (both rounds)
  kCandidates,        // per-window candidate generation (engine stage 2)
  kCandidateRegion,   //   - Case I shared-region intersection (Fig. 4)
  kCandidateSlice,    //   - region slicing into candidate cells
  kCandidateScore,    //   - Eqn. 8 overlay scoring of even layers
  kCandidateRefine,   //   - hierarchical small-cell backfill
  kSizing,            // per-window fill sizing (engine stage 4)
  kSizerOverlay,      //   - overlay marginals + close-pair search
  kMcfSolve,          //   - differential-LP / min-cost-flow solves
  kOutput,            // fill merge + layout output
  kCount
};

/// Event counters surfaced next to the timers.
enum class Counter : int {
  kWindows = 0,        // window problems generated
  kCandidates,         // candidate fills emitted
  kIndexBuilds,        // spatial-index (re)builds
  kIndexQueries,       // spatial-index queries
  kMcfSolves,          // dual-LP solves
  kMcfNetworkReuses,   // solves that reused a cached network topology
  kMcfWarmStarts,      // solves warm-started from a previous basis
  kMcfEarlyExits,      // solves skipped via the sensitivity memo
  kEcoWindowsSkipped,  // ECO windows served from the window cache
  kCount
};

const char* stageName(Stage stage);
const char* counterName(Counter counter);

struct StageStats {
  std::uint64_t calls = 0;
  std::uint64_t nanos = 0;

  double seconds() const { return static_cast<double>(nanos) * 1e-9; }
};

/// Point-in-time copy of the registry, safe to keep after reset().
struct Snapshot {
  std::array<StageStats, static_cast<std::size_t>(Stage::kCount)> stages{};
  std::array<std::uint64_t, static_cast<std::size_t>(Counter::kCount)>
      counters{};

  const StageStats& stage(Stage s) const {
    return stages[static_cast<std::size_t>(s)];
  }
  std::uint64_t counter(Counter c) const {
    return counters[static_cast<std::size_t>(c)];
  }
  bool empty() const;

  /// Aligned human-readable table (stage seconds, calls, counters).
  std::string human() const;
  /// JSON object: {"stages": {...}, "counters": {...}} — the schema
  /// documented in docs/architecture.md and written by bench_hotpath.
  std::string json() const;
};

class Registry {
 public:
  static Registry& instance();

  /// Global collection switch. Probes are no-ops while disabled; enabling
  /// does NOT reset accumulated data (call reset() for a clean run).
  void setEnabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  static bool enabled() {
    return instance().enabled_.load(std::memory_order_relaxed);
  }

  void reset();
  Snapshot snapshot() const;

  void addTiming(Stage stage, std::uint64_t nanos) {
    auto& slot = stages_[static_cast<std::size_t>(stage)];
    slot.calls.fetch_add(1, std::memory_order_relaxed);
    slot.nanos.fetch_add(nanos, std::memory_order_relaxed);
  }
  void addCount(Counter counter, std::uint64_t n = 1) {
    counters_[static_cast<std::size_t>(counter)].fetch_add(
        n, std::memory_order_relaxed);
  }

 private:
  struct AtomicStage {
    std::atomic<std::uint64_t> calls{0};
    std::atomic<std::uint64_t> nanos{0};
  };

  std::atomic<bool> enabled_{false};
  std::array<AtomicStage, static_cast<std::size_t>(Stage::kCount)> stages_;
  std::array<std::atomic<std::uint64_t>,
             static_cast<std::size_t>(Counter::kCount)>
      counters_{};
};

/// Records wall time spent between construction and destruction into
/// `stage`; a no-op (no clock reads) when collection is disabled.
class ScopedTimer {
 public:
  explicit ScopedTimer(Stage stage)
      : stage_(stage), armed_(Registry::enabled()) {
    if (armed_) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (armed_) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
      Registry::instance().addTiming(stage_,
                                     static_cast<std::uint64_t>(ns));
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Stage stage_;
  bool armed_;
  std::chrono::steady_clock::time_point start_;
};

/// Counter probe; no-op when collection is disabled.
inline void count(Counter counter, std::uint64_t n = 1) {
  if (Registry::enabled()) Registry::instance().addCount(counter, n);
}

}  // namespace ofl::prof
