// LRU result cache for fill solutions, keyed by content hash.
//
// Entries hold the per-layer fill rectangles a run produced (plus its
// FillReport) and are charged an approximate byte cost; the cache evicts
// least-recently-used entries whenever the total exceeds the byte budget.
// Thread-safe: concurrent jobs probe and insert under one mutex (the
// critical sections are pointer moves, never geometry copies). Two
// concurrent misses on the same key may both compute; the second insert
// replaces the first — wasted work, never wrong results.
//
// An optional second-level ResultStore (serve/persistent_cache implements
// it over a directory of integrity-hashed files) makes hits survive
// process restarts: a memory miss probes the store before reporting a
// miss, and every insert writes through. The store is only consulted
// outside the cache mutex — persistent I/O never blocks concurrent
// in-memory probes.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "fill/fill_engine.hpp"
#include "layout/layout.hpp"

namespace ofl::service {

/// A cached fill solution. Immutable once inserted (shared_ptr<const>), so
/// readers replay it without holding the cache lock.
struct CachedFill {
  std::vector<std::vector<geom::Rect>> fillsPerLayer;
  fill::FillReport report;
  std::size_t bytes = 0;  // approximate footprint, computed by capture()

  /// Snapshots `chip`'s fills (after an engine run).
  static std::shared_ptr<const CachedFill> capture(
      const layout::Layout& chip, const fill::FillReport& report);

  /// Replays the cached solution into `chip` (which must have the same
  /// layer count — guaranteed by key equality). Replaces existing fills.
  void applyTo(layout::Layout& chip) const;
};

/// Second-level result store (persistent cache). Implementations must be
/// thread-safe; load() returns nullptr on a miss or an invalid entry.
class ResultStore {
 public:
  virtual ~ResultStore() = default;
  virtual std::shared_ptr<const CachedFill> load(std::uint64_t key) = 0;
  virtual void store(std::uint64_t key, const CachedFill& entry) = 0;
};

class ResultCache {
 public:
  /// `byteBudget` 0 disables the cache: every probe misses, inserts are
  /// dropped. (That is `openfill batch --cache-mb 0`.) `store` (optional,
  /// caller-owned, must outlive the cache) backs misses and inserts with
  /// a persistent second level; a disabled cache never touches it.
  explicit ResultCache(std::size_t byteBudget, ResultStore* store = nullptr);

  /// Probe; counts a hit (and refreshes LRU position) or a miss. A memory
  /// miss falls through to the persistent store when one is attached; a
  /// store hit is promoted into the in-memory LRU and counted in both
  /// `hits` and `persistentHits`.
  std::shared_ptr<const CachedFill> find(std::uint64_t key);

  /// Inserts or replaces. Entries larger than the whole budget are
  /// dropped (counted in `oversized`), never inserted-then-evicted.
  void insert(std::uint64_t key, std::shared_ptr<const CachedFill> entry);

  struct Counters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t oversized = 0;
    /// Hits served from the persistent store (subset of `hits`); misses
    /// that probed the store and found nothing (subset of `misses`).
    std::uint64_t persistentHits = 0;
    std::uint64_t persistentMisses = 0;
    std::size_t entries = 0;
    std::size_t bytesUsed = 0;
    std::size_t byteBudget = 0;
  };
  Counters counters() const;

 private:
  void evictOverBudgetLocked();

  const std::size_t budget_;
  ResultStore* const store_;
  mutable std::mutex mutex_;
  // Front = most recently used. The map indexes into the list.
  using LruEntry = std::pair<std::uint64_t, std::shared_ptr<const CachedFill>>;
  std::list<LruEntry> lru_;
  std::unordered_map<std::uint64_t, std::list<LruEntry>::iterator> index_;
  Counters counters_;
};

}  // namespace ofl::service
