// FillService: the batch fill facade.
//
// submit() admits jobs through the bounded scheduler queue; each job loads
// its layout, probes the result cache by content hash, runs the FillEngine
// on a miss (capped at threads-per-job workers, cancellable on deadline),
// writes its output file, and publishes a JobResult. wait()/waitAll()
// surface results in deterministic submission order regardless of
// completion order; stats() aggregates throughput, queue latency,
// per-stage engine seconds and cache behavior.
//
// Output determinism: a job's bytes depend only on its own spec — never on
// the concurrency settings. Engine runs are thread-count-invariant (PR-1
// contract) and a cache hit replays fills captured from an identical-key
// run, so `batch --jobs N --threads-per-job M` equals N sequential
// `openfill fill` runs byte for byte.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/cancel.hpp"
#include "common/prof.hpp"
#include "service/job.hpp"
#include "service/result_cache.hpp"
#include "service/scheduler.hpp"

namespace ofl::service {

struct ServiceOptions {
  /// Concurrent jobs (`openfill batch --jobs`).
  int maxConcurrentJobs = 1;
  /// Engine threads per job (`--threads-per-job`); 0 splits the hardware
  /// cores evenly across concurrent jobs (floor 1).
  int threadsPerJob = 0;
  /// Result-cache byte budget (`--cache-mb`, here in bytes); 0 disables.
  std::size_t cacheBytes = 64ull << 20;
  /// Default per-job deadline in seconds; 0 = none.
  double defaultTimeoutSeconds = 0.0;
  /// Admitted-but-not-started jobs before submit() blocks.
  std::size_t queueCapacity = 64;
  /// Optional persistent second-level result store (caller-owned, must
  /// outlive the service); see ResultCache. The daemon plugs the on-disk
  /// cache (serve/persistent_cache) in here so results survive restarts.
  ResultStore* resultStore = nullptr;
};

struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t succeeded = 0;
  std::uint64_t failed = 0;
  std::uint64_t timedOut = 0;
  std::uint64_t cancelled = 0;

  double wallSeconds = 0.0;     // first submit -> last completion
  double jobsPerSecond = 0.0;   // completed / wallSeconds
  double queueSecondsTotal = 0.0;
  double queueSecondsMax = 0.0;
  double queueSecondsMean = 0.0;

  // Per-stage engine seconds summed over non-cached successful runs.
  double planningSeconds = 0.0;
  double candidateSeconds = 0.0;
  double sizingSeconds = 0.0;
  double engineSeconds = 0.0;  // sum of FillReport::totalSeconds

  std::uint64_t jobCacheHits = 0;  // successful jobs served from cache
  ResultCache::Counters cache;
  double cacheHitRate = 0.0;  // cache.hits / (hits + misses)

  /// Highest process peak RSS (MiB) observed at any job completion; covers
  /// the whole batch since jobs share one address space.
  double peakRssMiB = 0.0;

  /// Hot-path profile over every engine run the process executed since the
  /// caller's last prof::Registry::reset() (the registry is global, so
  /// concurrent jobs aggregate into one table). Empty unless collection
  /// was enabled (`openfill batch --profile`).
  prof::Snapshot profile;
};

/// Renders stats as a JSON object (used by `openfill batch --json` and
/// bench_throughput).
std::string toJson(const ServiceStats& stats);

/// Mirrors the stats into the unified metrics registry as service.* gauges
/// (no-op when collection is off). Called by the CLI before a metrics
/// snapshot is written so `--metrics-out` carries the batch summary.
void exportToMetrics(const ServiceStats& stats);

class FillService {
 public:
  explicit FillService(ServiceOptions options);
  /// Drains: outstanding jobs finish before destruction returns.
  ~FillService();

  FillService(const FillService&) = delete;
  FillService& operator=(const FillService&) = delete;

  /// Admits a job; blocks while the admission queue is full. Returns the
  /// job id (dense, counting from 0 in submission order).
  std::uint64_t submit(JobSpec spec);

  /// Blocks until job `id` finishes and returns its result.
  JobResult wait(std::uint64_t id);

  /// Waits up to `seconds` for job `id` to finish. Returns true when done
  /// (wait(id) then returns immediately); the daemon uses this to poll a
  /// job while also watching the client socket for disconnects.
  bool waitFor(std::uint64_t id, double seconds);

  /// Requests cooperative cancellation. Returns true if the job had not
  /// finished (it will surface as kCancelled once a checkpoint notices);
  /// false when already done.
  bool cancel(std::uint64_t id);

  /// Cancels every job that has not finished (graceful drain: queued jobs
  /// surface as kCancelled immediately on pickup, running jobs unwind at
  /// their next checkpoint). Returns the number of jobs cancelled.
  std::size_t cancelAll();

  /// Waits for every submitted job; results indexed by job id, i.e. in
  /// submission order.
  std::vector<JobResult> waitAll();

  ServiceStats stats() const;

  const ServiceOptions& options() const { return options_; }
  /// Resolved engine threads each job runs with.
  int threadsPerJob() const { return threadsPerJob_; }

 private:
  struct Job {
    std::uint64_t id = 0;
    JobSpec spec;
    CancelToken token;
    std::chrono::steady_clock::time_point submitTime;
    JobResult result;
    bool done = false;
  };

  void execute(Job& job);
  JobResult runJob(Job& job) const;

  ServiceOptions options_;
  int threadsPerJob_ = 1;
  mutable ResultCache cache_;

  mutable std::mutex mutex_;
  std::condition_variable done_;
  std::deque<std::unique_ptr<Job>> jobs_;  // index = job id
  bool anySubmitted_ = false;
  std::chrono::steady_clock::time_point firstSubmit_;
  std::chrono::steady_clock::time_point lastFinish_;

  // Last member: its destructor drains workers while the rest of the
  // service (jobs_, cache_) is still alive for them to write into.
  std::unique_ptr<Scheduler> scheduler_;
};

}  // namespace ofl::service
