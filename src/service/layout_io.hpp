// Loading flattened layouts from disk for the batch service and the CLI.
#pragma once

#include <optional>
#include <string>

#include "layout/layout.hpp"

namespace ofl::service {

/// Loads a layout from a GDS or OFL-OASIS file (auto-detected by trying
/// both readers). The die is `die` when given, else the bounding box of
/// every shape; the layer count is the highest GDS layer seen (floor 1).
/// Returns false and sets `*error` (never null) on unreadable files or an
/// empty layout with no die.
bool loadFlatLayout(const std::string& path,
                    const std::optional<geom::Rect>& die, layout::Layout* out,
                    std::string* error);

}  // namespace ofl::service
