#include "service/scheduler.hpp"

#include <algorithm>

namespace ofl::service {

Scheduler::Scheduler(int maxConcurrent, std::size_t queueCapacity)
    : capacity_(std::max<std::size_t>(1, queueCapacity)) {
  const int workers = std::max(1, maxConcurrent);
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { workerMain(); });
  }
}

Scheduler::~Scheduler() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void Scheduler::submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    notFull_.wait(lock, [this] { return queue_.size() < capacity_; });
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
}

void Scheduler::waitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

void Scheduler::workerMain() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    notFull_.notify_one();
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --running_;
      if (queue_.empty() && running_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace ofl::service
