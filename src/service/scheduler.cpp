#include "service/scheduler.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ofl::service {

namespace {

// Registry lookups cached once; addresses are stable for the process
// lifetime (obs/metrics.hpp contract), so this is race-free and cheap.
void recordQueueDepth(std::size_t depth) {
  static obs::Gauge& gauge =
      obs::MetricsRegistry::instance().gauge("sched.queue_depth");
  gauge.set(static_cast<double>(depth));
}

}  // namespace

Scheduler::Scheduler(int maxConcurrent, std::size_t queueCapacity)
    : capacity_(std::max<std::size_t>(1, queueCapacity)) {
  const int workers = std::max(1, maxConcurrent);
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { workerMain(); });
  }
}

Scheduler::~Scheduler() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void Scheduler::submit(std::function<void()> task) {
  QueuedTask item;
  item.run = std::move(task);
  // Unconditional: one clock read per job admission, and the queue-wait
  // probes stay correct however collection toggles between admission and
  // pickup.
  item.enqueueNs = obs::Tracer::instance().nowNs();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    notFull_.wait(lock, [this] { return queue_.size() < capacity_; });
    item.seq = nextSeq_++;
    queue_.push_back(std::move(item));
    if (obs::metricsEnabled()) {
      obs::MetricsRegistry::instance().counter("sched.tasks_submitted").add();
      recordQueueDepth(queue_.size());
    }
  }
  wake_.notify_one();
}

void Scheduler::waitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

void Scheduler::workerMain() {
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
      if (obs::metricsEnabled()) recordQueueDepth(queue_.size());
    }
    notFull_.notify_one();
    if (obs::Tracer::enabled()) {
      const std::uint64_t now = obs::Tracer::instance().nowNs();
      obs::completeSpan("sched.queue_wait", "sched", task.enqueueNs,
                        now > task.enqueueNs ? now - task.enqueueNs : 0,
                        {{"seq", static_cast<double>(task.seq)}});
    }
    if (obs::metricsEnabled()) {
      obs::MetricsRegistry::instance()
          .histogram("sched.queue_wait_seconds")
          .observe(static_cast<double>(obs::Tracer::instance().nowNs() -
                                       task.enqueueNs) *
                   1e-9);
    }
    {
      obs::ScopedSpan span("sched.execute", "sched",
                           {{"seq", static_cast<double>(task.seq)}});
      task.run();
    }
    if (obs::metricsEnabled()) {
      obs::MetricsRegistry::instance().counter("sched.tasks_completed").add();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --running_;
      if (queue_.empty() && running_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace ofl::service
