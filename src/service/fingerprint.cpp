#include "service/fingerprint.hpp"

#include "common/hash.hpp"

namespace ofl::service {

std::uint64_t layoutContentHash(const layout::Layout& chip) {
  Fnv1a64 h;
  const geom::Rect& die = chip.die();
  h.i64(die.xl);
  h.i64(die.yl);
  h.i64(die.xh);
  h.i64(die.yh);
  h.i32(chip.numLayers());
  for (int l = 0; l < chip.numLayers(); ++l) {
    const auto& wires = chip.layer(l).wires;
    h.u64(wires.size());
    for (const geom::Rect& w : wires) {
      h.i64(w.xl);
      h.i64(w.yl);
      h.i64(w.xh);
      h.i64(w.yh);
    }
  }
  return h.digest();
}

std::uint64_t optionsFingerprint(const fill::FillEngineOptions& o) {
  Fnv1a64 h;
  h.i64(o.windowSize);
  // Design rules.
  h.i64(o.rules.minWidth);
  h.i64(o.rules.minSpacing);
  h.i64(o.rules.minArea);
  h.i64(o.rules.maxFillSize);
  h.f64(o.rules.maxDensity);
  // Planner weights.
  h.f64(o.plannerWeights.wSigma);
  h.f64(o.plannerWeights.wLine);
  h.f64(o.plannerWeights.wOutlier);
  h.f64(o.plannerWeights.betaSigma);
  h.f64(o.plannerWeights.betaLine);
  h.f64(o.plannerWeights.betaOutlier);
  // Candidate generation.
  h.f64(o.candidate.lambda);
  h.f64(o.candidate.gamma);
  h.boolean(o.candidate.lithoAvoid.has_value());
  if (o.candidate.lithoAvoid.has_value()) {
    h.i64(o.candidate.lithoAvoid->forbiddenLo);
    h.i64(o.candidate.lithoAvoid->forbiddenHi);
  }
  h.boolean(o.candidate.uniformCells);
  // Sizer. The backend is included even though every backend reaches the
  // same optimum: per-window step budgets can tie-break differently, and
  // byte-identity of cached replays must hold exactly.
  h.f64(o.sizer.eta);
  h.f64(o.sizer.etaWireFactor);
  h.i32(o.sizer.iterations);
  h.i32(static_cast<int>(o.sizer.backend));
  h.boolean(o.sizer.useLpSolver);
  // numThreads and cancel deliberately excluded (see header).
  return h.digest();
}

std::uint64_t cacheKey(const layout::Layout& chip,
                       const fill::FillEngineOptions& options) {
  return hashCombine(layoutContentHash(chip), optionsFingerprint(options));
}

std::uint64_t layoutFillsHash(const layout::Layout& chip) {
  Fnv1a64 h;
  h.i32(chip.numLayers());
  for (int l = 0; l < chip.numLayers(); ++l) {
    const auto& fills = chip.layer(l).fills;
    h.u64(fills.size());
    for (const geom::Rect& f : fills) {
      h.i64(f.xl);
      h.i64(f.yl);
      h.i64(f.xh);
      h.i64(f.yh);
    }
  }
  return h.digest();
}

std::uint64_t ecoCacheKey(const layout::Layout& chip,
                          const fill::FillEngineOptions& options,
                          const geom::Rect& changed) {
  Fnv1a64 h;
  h.str("eco");  // domain-separate from full-fill keys
  h.u64(cacheKey(chip, options));
  h.u64(layoutFillsHash(chip));
  h.i64(changed.xl);
  h.i64(changed.yl);
  h.i64(changed.xh);
  h.i64(changed.yh);
  return h.digest();
}

}  // namespace ofl::service
