// Bounded-concurrency job executor for the batch fill service.
//
// A fixed crew of worker threads drains a FIFO task queue with a bounded
// admission capacity: submit() blocks the producer while the queue is full
// (back-pressure, so a million-line manifest never materializes a
// million queued jobs). Tasks START in submission order; completion order
// is up to the tasks, and the FillService surfaces results in submission
// order regardless.
//
// This is deliberately not the fork-join ThreadPool (common/thread_pool):
// that pool is a barrier primitive driven by one caller at a time, while
// the scheduler runs long, independent, possibly-blocking jobs — each of
// which drives its own capped fork-join pool inside FillEngine::run.
// Observability: when collection is on (obs/trace.hpp, obs/metrics.hpp),
// every task records a "sched.queue_wait" span (submit -> picked up) and a
// "sched.execute" span, correlated by a per-scheduler task sequence number
// ("seq" span arg), plus sched.* counters/histograms and a queue-depth
// gauge. All probes are relaxed-atomic-gated no-ops when collection is
// off.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ofl::service {

class Scheduler {
 public:
  /// `maxConcurrent` worker threads (floor 1); `queueCapacity` bounds the
  /// number of admitted-but-not-started tasks (floor 1).
  Scheduler(int maxConcurrent, std::size_t queueCapacity);

  /// Drains: every admitted task still runs before destruction returns.
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Enqueues a task, blocking while the admission queue is full. Tasks
  /// must not throw (the service wraps all job work in its own catch).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void waitIdle();

  int workerCount() const { return static_cast<int>(workers_.size()); }

 private:
  void workerMain();

  const std::size_t capacity_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable wake_;     // workers: queue non-empty or stopping
  std::condition_variable notFull_;  // producers: admission slot free
  std::condition_variable idle_;     // waitIdle / drain
  struct QueuedTask {
    std::function<void()> run;
    std::uint64_t seq = 0;
    std::uint64_t enqueueNs = 0;  // tracer-epoch time of admission
  };
  std::deque<QueuedTask> queue_;
  std::uint64_t nextSeq_ = 0;
  int running_ = 0;
  bool stopping_ = false;
};

}  // namespace ofl::service
