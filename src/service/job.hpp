// Batch fill service: job description and result types.
//
// A JobSpec names one fill run — an input layout (file path or in-memory),
// the engine options that shape the solution, an optional per-job deadline
// and an optional output file. The service executes jobs with bounded
// concurrency (service/scheduler.hpp) and consults a content-addressed
// result cache (service/result_cache.hpp) before running the engine.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "fill/fill_engine.hpp"
#include "layout/layout.hpp"

namespace ofl::service {

/// Output serialization of a job (mirrors `openfill fill --format/--compact`).
enum class OutputFormat { kGds, kOasis };

/// What the service runs for this job. kFill replaces any existing fills
/// with a fresh solution; kEco expects the input layout to already carry a
/// fill solution whose wires changed only inside `ecoChanged` and repairs
/// just the affected windows (FillEngine::runIncremental).
enum class JobKind { kFill, kEco };

struct JobSpec {
  /// Label used in reports; defaults to the input path when empty.
  std::string name;

  JobKind kind = JobKind::kFill;
  /// ECO jobs only: the region the wires changed in. The cache key of an
  /// ECO job covers the input fills and this rect on top of the usual
  /// wires+options fingerprint, since the result depends on both.
  geom::Rect ecoChanged;

  /// Input: either a layout file (GDS or OFL-OASIS, auto-detected) ...
  std::string inputPath;
  /// ... or an in-memory layout (takes precedence when set). Shared so a
  /// manifest of repeated inputs does not copy until the job runs.
  std::shared_ptr<const layout::Layout> layout;
  /// Die override for file inputs; default is the shape bounding box.
  std::optional<geom::Rect> die;

  /// Engine options. numThreads and cancel are overwritten by the service
  /// (per-job thread cap, per-job cancellation token).
  fill::FillEngineOptions engine;

  /// Per-job deadline in seconds from submission; <= 0 uses the service
  /// default (ServiceOptions::defaultTimeoutSeconds, 0 = none).
  double timeoutSeconds = 0.0;

  /// When non-empty the filled layout is written here.
  std::string outputPath;
  OutputFormat format = OutputFormat::kGds;
  bool compact = false;  // AREF-compacted GDS (layout::toCompactGds)

  /// Run through the bounded-memory sharded pipeline (fill::ShardedEngine,
  /// `openfill fill --stream`): file in, file out, byte-identical to the
  /// in-memory path. Requires inputPath and outputPath; incompatible with
  /// kEco, compact, OASIS output, in-memory layout input, keepLayout and
  /// the result cache (streamed jobs always run).
  bool stream = false;
  /// Peak-memory target for streamed jobs (`--mem-budget-mb`).
  std::size_t memBudgetMiB = 512;

  /// Keep the filled layout in JobResult::layout (for in-process callers
  /// that want the geometry, e.g. bench_throughput).
  bool keepLayout = false;
};

enum class JobStatus {
  kSucceeded,
  kFailed,     // load/engine/write error; see JobResult::error
  kTimedOut,   // deadline expired (queued too long or cancelled mid-run)
  kCancelled,  // FillService::cancel
};

struct JobResult {
  JobStatus status = JobStatus::kFailed;
  std::string error;

  fill::FillReport report;  // the producing run's report (cached on a hit)
  std::size_t fillCount = 0;
  bool cacheHit = false;
  std::uint64_t cacheKey = 0;

  long long outputBytes = -1;  // bytes written, -1 when no output requested
  double queueSeconds = 0.0;   // submission -> job picked by a worker
  double runSeconds = 0.0;     // load + cache lookup + engine + write
  /// Process peak RSS (MiB) sampled when the job finished. Jobs share one
  /// address space, so this is a high-water mark "as of job completion",
  /// not a per-job allocation figure.
  double peakRssMiB = 0.0;

  /// Filled layout when JobSpec::keepLayout was set and the job succeeded.
  std::shared_ptr<const layout::Layout> layout;
};

inline const char* toString(JobStatus s) {
  switch (s) {
    case JobStatus::kSucceeded: return "ok";
    case JobStatus::kFailed: return "failed";
    case JobStatus::kTimedOut: return "timeout";
    case JobStatus::kCancelled: return "cancelled";
  }
  return "?";
}

}  // namespace ofl::service
