#include "service/result_cache.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ofl::service {

namespace {

// Live cache counters in the metrics registry (references are stable for
// the process lifetime) — the same numbers ServiceStats reports, but
// usable mid-run by the periodic batch metrics dump and Prometheus
// scrapes.
void recordProbe(bool hit) {
  if (!obs::metricsEnabled()) return;
  static obs::Counter& hits =
      obs::MetricsRegistry::instance().counter("cache.hits");
  static obs::Counter& misses =
      obs::MetricsRegistry::instance().counter("cache.misses");
  (hit ? hits : misses).add();
}

}  // namespace

std::shared_ptr<const CachedFill> CachedFill::capture(
    const layout::Layout& chip, const fill::FillReport& report) {
  auto entry = std::make_shared<CachedFill>();
  entry->report = report;
  entry->fillsPerLayer.reserve(static_cast<std::size_t>(chip.numLayers()));
  std::size_t bytes = 256;  // fixed bookkeeping overhead per entry
  for (int l = 0; l < chip.numLayers(); ++l) {
    entry->fillsPerLayer.push_back(chip.layer(l).fills);
    bytes += 64 + entry->fillsPerLayer.back().size() * sizeof(geom::Rect);
  }
  entry->bytes = bytes;
  return entry;
}

void CachedFill::applyTo(layout::Layout& chip) const {
  for (int l = 0; l < chip.numLayers(); ++l) {
    chip.layer(l).fills = fillsPerLayer[static_cast<std::size_t>(l)];
  }
}

ResultCache::ResultCache(std::size_t byteBudget, ResultStore* store)
    : budget_(byteBudget), store_(byteBudget > 0 ? store : nullptr) {
  counters_.byteBudget = byteBudget;
}

std::shared_ptr<const CachedFill> ResultCache::find(std::uint64_t key) {
  obs::ScopedSpan span("cache.find", "cache");
  bool hit = false;
  std::shared_ptr<const CachedFill> result;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      hit = true;
      ++counters_.hits;
      lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
      result = it->second->second;
    }
  }
  if (!hit && store_ != nullptr) {
    // Persistent probe outside the mutex: disk I/O must not serialize
    // concurrent in-memory probes. Two racing misses may both load the
    // same entry; the second insert replaces the first, never wrong.
    result = store_->load(key);
    std::lock_guard<std::mutex> lock(mutex_);
    if (result != nullptr) {
      hit = true;
      ++counters_.hits;
      ++counters_.persistentHits;
      if (obs::metricsEnabled()) {
        obs::MetricsRegistry::instance()
            .counter("cache.persistent_hits")
            .add();
      }
    } else {
      ++counters_.persistentMisses;
    }
  }
  if (!hit) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.misses;
  }
  recordProbe(hit);
  obs::instant(hit ? "cache.hit" : "cache.miss", "cache", {});
  if (hit && result != nullptr) {
    // Promote a store hit into the in-memory LRU so repeats stay in RAM.
    std::lock_guard<std::mutex> lock(mutex_);
    if (index_.find(key) == index_.end() && result->bytes <= budget_) {
      lru_.emplace_front(key, result);
      index_[key] = lru_.begin();
      counters_.bytesUsed += result->bytes;
      counters_.entries = lru_.size();
      evictOverBudgetLocked();
    }
  }
  return result;
}

void ResultCache::insert(std::uint64_t key,
                         std::shared_ptr<const CachedFill> entry) {
  obs::ScopedSpan span("cache.insert", "cache");
  if (store_ != nullptr && entry->bytes <= budget_) {
    store_->store(key, *entry);  // write-through, outside the mutex
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (entry->bytes > budget_) {  // also covers budget_ == 0 (disabled)
    ++counters_.oversized;
    return;
  }
  const auto it = index_.find(key);
  if (it != index_.end()) {
    counters_.bytesUsed -= it->second->second->bytes;
    lru_.erase(it->second);
    index_.erase(it);
  }
  lru_.emplace_front(key, std::move(entry));
  index_[key] = lru_.begin();
  counters_.bytesUsed += lru_.front().second->bytes;
  ++counters_.insertions;
  counters_.entries = lru_.size();
  evictOverBudgetLocked();
}

void ResultCache::evictOverBudgetLocked() {
  while (counters_.bytesUsed > budget_ && lru_.size() > 1) {
    const LruEntry& victim = lru_.back();
    counters_.bytesUsed -= victim.second->bytes;
    index_.erase(victim.first);
    lru_.pop_back();
    ++counters_.evictions;
    if (obs::metricsEnabled()) {
      obs::MetricsRegistry::instance().counter("cache.evictions").add();
    }
  }
  counters_.entries = lru_.size();
  if (obs::metricsEnabled()) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
    reg.gauge("cache.bytes_used").set(static_cast<double>(counters_.bytesUsed));
    reg.gauge("cache.entries").set(static_cast<double>(counters_.entries));
  }
}

ResultCache::Counters ResultCache::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

}  // namespace ofl::service
