#include "service/manifest.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace ofl::service {
namespace {

std::vector<std::string> splitTokens(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) {
    if (tok[0] == '#') break;  // comment to end of line
    tokens.push_back(tok);
  }
  return tokens;
}

bool parseInt(const std::string& v, long long* out) {
  if (v.empty()) return false;
  char* end = nullptr;
  *out = std::strtoll(v.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

bool parseReal(const std::string& v, double* out) {
  if (v.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(v.c_str(), &end);
  return end != nullptr && *end == '\0';
}

bool parseLine(const std::vector<std::string>& tokens, JobSpec* spec,
               std::string* err) {
  if (tokens.front().rfind("--", 0) == 0) {
    *err = "expected an input path before options, got " + tokens.front();
    return false;
  }
  spec->engine = defaultEngineOptions();
  spec->inputPath = tokens.front();
  spec->name = tokens.front();

  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const std::string& tok = tokens[i];
    if (tok.rfind("--", 0) != 0) {
      *err = "expected an option, got " + tok;
      return false;
    }
    std::string key = tok.substr(2);
    std::string value;
    bool hasValue = false;
    if (const std::size_t eq = key.find('='); eq != std::string::npos) {
      value = key.substr(eq + 1);
      key = key.substr(0, eq);
      hasValue = true;
    } else if (i + 1 < tokens.size() && tokens[i + 1].rfind("--", 0) != 0) {
      value = tokens[i + 1];
      hasValue = true;
      ++i;
    }

    const auto needValue = [&]() -> bool {
      if (!hasValue) *err = "--" + key + " expects a value";
      return hasValue;
    };
    const auto intValue = [&](long long* out) -> bool {
      if (!needValue()) return false;
      if (!parseInt(value, out)) {
        *err = "--" + key + " expects an integer, got \"" + value + "\"";
        return false;
      }
      return true;
    };
    const auto realValue = [&](double* out) -> bool {
      if (!needValue()) return false;
      if (!parseReal(value, out)) {
        *err = "--" + key + " expects a number, got \"" + value + "\"";
        return false;
      }
      return true;
    };

    long long n = 0;
    double x = 0.0;
    if (key == "out") {
      if (!needValue()) return false;
      spec->outputPath = value;
    } else if (key == "window") {
      if (!intValue(&n)) return false;
      spec->engine.windowSize = n;
    } else if (key == "iterations") {
      if (!intValue(&n)) return false;
      spec->engine.sizer.iterations = static_cast<int>(n);
    } else if (key == "min-width") {
      if (!intValue(&n)) return false;
      spec->engine.rules.minWidth = n;
    } else if (key == "min-spacing") {
      if (!intValue(&n)) return false;
      spec->engine.rules.minSpacing = n;
    } else if (key == "min-area") {
      if (!intValue(&n)) return false;
      spec->engine.rules.minArea = n;
    } else if (key == "max-fill") {
      if (!intValue(&n)) return false;
      spec->engine.rules.maxFillSize = n;
    } else if (key == "lambda") {
      if (!realValue(&x)) return false;
      spec->engine.candidate.lambda = x;
    } else if (key == "gamma") {
      if (!realValue(&x)) return false;
      spec->engine.candidate.gamma = x;
    } else if (key == "eta") {
      if (!realValue(&x)) return false;
      spec->engine.sizer.eta = x;
    } else if (key == "timeout-s") {
      if (!realValue(&x)) return false;
      spec->timeoutSeconds = x;
    } else if (key == "backend") {
      if (!needValue()) return false;
      if (value == "ns") {
        spec->engine.sizer.backend = mcf::McfBackend::kNetworkSimplex;
        spec->engine.sizer.useLpSolver = false;
      } else if (value == "ssp") {
        spec->engine.sizer.backend = mcf::McfBackend::kSuccessiveShortestPath;
        spec->engine.sizer.useLpSolver = false;
      } else if (value == "lp") {
        spec->engine.sizer.useLpSolver = true;
      } else {
        *err = "--backend expects ns|ssp|lp, got \"" + value + "\"";
        return false;
      }
    } else if (key == "format") {
      if (!needValue()) return false;
      if (value == "gds") {
        spec->format = OutputFormat::kGds;
      } else if (value == "oasis") {
        spec->format = OutputFormat::kOasis;
      } else {
        *err = "--format expects gds|oasis, got \"" + value + "\"";
        return false;
      }
    } else if (key == "die") {
      if (!needValue()) return false;
      long long xl, yl, xh, yh;
      if (std::sscanf(value.c_str(), "%lld,%lld,%lld,%lld", &xl, &yl, &xh,
                      &yh) != 4) {
        *err = "--die expects xl,yl,xh,yh, got \"" + value + "\"";
        return false;
      }
      spec->die = geom::Rect{xl, yl, xh, yh};
    } else if (key == "compact") {
      if (hasValue) {
        *err = "--compact is a flag and takes no value";
        return false;
      }
      spec->compact = true;
    } else if (key == "stream") {
      if (hasValue) {
        *err = "--stream is a flag and takes no value";
        return false;
      }
      spec->stream = true;
    } else if (key == "mem-budget-mb") {
      if (!intValue(&n)) return false;
      if (n <= 0) {
        *err = "--mem-budget-mb expects a positive integer";
        return false;
      }
      spec->memBudgetMiB = static_cast<std::size_t>(n);
    } else {
      *err = "unknown option --" + key;
      return false;
    }
  }
  return true;
}

}  // namespace

fill::FillEngineOptions defaultEngineOptions() {
  fill::FillEngineOptions o;
  o.windowSize = 1200;
  o.rules.minWidth = 10;
  o.rules.minSpacing = 10;
  o.rules.minArea = 200;
  o.rules.maxFillSize = 300;
  return o;
}

ManifestParse parseManifest(std::istream& in) {
  ManifestParse result;
  std::string line;
  int lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    const std::vector<std::string> tokens = splitTokens(line);
    if (tokens.empty()) continue;  // blank or comment-only line
    JobSpec spec;
    std::string err;
    if (parseLine(tokens, &spec, &err)) {
      result.jobs.push_back(std::move(spec));
    } else {
      result.errors.push_back({lineNo, err});
    }
  }
  return result;
}

ManifestParse parseManifestText(const std::string& text) {
  std::istringstream in(text);
  return parseManifest(in);
}

bool parseManifestFile(const std::string& path, ManifestParse* out,
                       std::string* ioError) {
  std::ifstream in(path);
  if (!in) {
    *ioError = "cannot open manifest: " + path;
    return false;
  }
  *out = parseManifest(in);
  return true;
}

}  // namespace ofl::service
